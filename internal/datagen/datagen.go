// Package datagen generates the synthetic and simulated datasets behind the
// paper's evaluation (Section 6.1). The classic independent / correlated /
// anti-correlated generators follow Börzsönyi et al. (the paper uses that
// code for Figure 21); the domain generators simulate the statistical shape
// of the four real datasets the paper crawls (CSMetrics, FIFA, Blue Nile,
// US DoT on-time flights), which are not redistributable. DESIGN.md explains
// why each substitution preserves the behaviour the experiments measure.
//
// All generators take an explicit *rand.Rand so every experiment is
// reproducible from a seed, and return datasets already normalized to
// [0, 1] with larger-is-better orientation, as the algorithms assume.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"stablerank/internal/dataset"
)

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Independent returns n items with d attributes drawn i.i.d. uniform [0, 1].
func Independent(rng *rand.Rand, n, d int) *dataset.Dataset {
	ds := dataset.MustNew(d)
	v := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = rng.Float64()
		}
		ds.MustAdd(fmt.Sprintf("i%d", i), v...)
	}
	return ds
}

// Correlated returns n items whose attributes are positively correlated:
// each item has a latent quality and every attribute is a noisy logistic
// squash of it (the Börzsönyi "correlated" workload: points concentrated
// around the main diagonal). The smooth squash — rather than hard clamping —
// keeps extreme items distinct, so the top of the ranking never degenerates
// into exact ties.
func Correlated(rng *rand.Rand, n, d int) *dataset.Dataset {
	ds := dataset.MustNew(d)
	v := make([]float64, d)
	for i := 0; i < n; i++ {
		z := rng.NormFloat64()
		for j := range v {
			v[j] = sigmoid(1.1*z + 0.45*rng.NormFloat64())
		}
		ds.MustAdd(fmt.Sprintf("c%d", i), v...)
	}
	return ds
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// AntiCorrelated returns n items whose attributes are negatively correlated:
// points concentrated around the anti-diagonal hyperplane sum(x) ~ const, so
// an item good in one attribute tends to be poor in the others (the
// Börzsönyi "anti-correlated" workload).
func AntiCorrelated(rng *rand.Rand, n, d int) *dataset.Dataset {
	ds := dataset.MustNew(d)
	v := make([]float64, d)
	for i := 0; i < n; i++ {
		// Total budget near d/2 with small spread, split by a random point
		// of the simplex (normalized exponentials).
		budget := float64(d) * (0.5 + 0.05*rng.NormFloat64())
		var sum float64
		for j := range v {
			v[j] = rng.ExpFloat64()
			sum += v[j]
		}
		for j := range v {
			v[j] = clamp01(v[j] / sum * budget)
		}
		ds.MustAdd(fmt.Sprintf("a%d", i), v...)
	}
	return ds
}

// CorrelationKind selects one of the three synthetic workloads of Figure 21.
type CorrelationKind int

const (
	KindIndependent CorrelationKind = iota
	KindCorrelated
	KindAntiCorrelated
)

// String implements fmt.Stringer.
func (k CorrelationKind) String() string {
	switch k {
	case KindIndependent:
		return "independent"
	case KindCorrelated:
		return "correlated"
	case KindAntiCorrelated:
		return "anti-correlated"
	default:
		return fmt.Sprintf("CorrelationKind(%d)", int(k))
	}
}

// Synthetic dispatches on kind.
func Synthetic(rng *rand.Rand, kind CorrelationKind, n, d int) *dataset.Dataset {
	switch kind {
	case KindCorrelated:
		return Correlated(rng, n, d)
	case KindAntiCorrelated:
		return AntiCorrelated(rng, n, d)
	default:
		return Independent(rng, n, d)
	}
}

// CSMetrics simulates the CSMetrics institution ranking data (d = 2).
// Institutions have heavy-tailed citation counts; the measured (M) and
// predicted (P) counts share a latent quality with correlation ~0.9. As on
// the CSMetrics site, the score (M^alpha)(P^(1-alpha)) is linearized by
// x1 = log M, x2 = log P (Section 6.1), then min-max normalized. The
// reference scoring function uses alpha = 0.3, i.e. weights (0.3, 0.7).
func CSMetrics(rng *rand.Rand, n int) *dataset.Dataset {
	raw := dataset.MustNew(2)
	for i := 0; i < n; i++ {
		// Latent log-quality decreasing in expectation with rank, so the
		// simulated crawl resembles a "top-n" slice of a heavy tail.
		q := 10 - 2.2*math.Log(1+float64(i)) + 0.35*rng.NormFloat64()
		m := q + 0.25*rng.NormFloat64()
		p := q + 0.25*rng.NormFloat64()
		raw.MustAdd(fmt.Sprintf("inst%03d", i+1), m, p) // already log scale
	}
	norm, err := raw.Normalize(nil)
	if err != nil {
		panic(err) // n >= 1 guaranteed by callers; Normalize cannot fail
	}
	return norm
}

// CSMetricsReferenceWeights is the CSMetrics default alpha = 0.3, expressed
// as the linear weight vector over (log M, log P).
func CSMetricsReferenceWeights() []float64 { return []float64{0.3, 0.7} }

// FIFA simulates the FIFA men's ranking data (d = 4): per-team performance
// in the current year and the three preceding years. Teams have a persistent
// latent strength plus yearly form noise, giving four positively correlated
// attributes, as in the real ranking table.
func FIFA(rng *rand.Rand, n int) *dataset.Dataset {
	raw := dataset.MustNew(4)
	for i := 0; i < n; i++ {
		strength := 1600 - 9*float64(i) + 60*rng.NormFloat64()
		attrs := make([]float64, 4)
		for j := range attrs {
			attrs[j] = strength + 110*rng.NormFloat64()
		}
		raw.MustAdd(fmt.Sprintf("team%03d", i+1), attrs...)
	}
	norm, err := raw.Normalize(nil)
	if err != nil {
		panic(err)
	}
	return norm
}

// FIFAReferenceWeights is the published FIFA aggregation
// t[1] + 0.5 t[2] + 0.3 t[3] + 0.2 t[4] (Section 6.1).
func FIFAReferenceWeights() []float64 { return []float64{1, 0.5, 0.3, 0.2} }

// Diamonds simulates the Blue Nile catalog (d = 5): Price, Carat, Depth,
// LengthWidthRatio, Table. Carat is log-normal; price grows superlinearly
// with carat with multiplicative noise; the cut proportions are near-normal.
// As in Section 6.1, price is lower-preferred and is flipped during
// normalization; all other attributes are higher-preferred.
func Diamonds(rng *rand.Rand, n int) *dataset.Dataset {
	raw := dataset.MustNew(5)
	for i := 0; i < n; i++ {
		carat := math.Exp(-0.4 + 0.55*rng.NormFloat64())
		price := 4000 * math.Pow(carat, 1.7) * math.Exp(0.25*rng.NormFloat64())
		depth := 61.8 + 1.4*rng.NormFloat64()
		lw := 1.01 + 0.05*math.Abs(rng.NormFloat64())
		table := 57 + 2.2*rng.NormFloat64()
		raw.MustAdd(fmt.Sprintf("d%06d", i), price, carat, depth, lw, table)
	}
	norm, err := raw.Normalize([]dataset.Direction{
		dataset.LowerBetter, // price
		dataset.HigherBetter,
		dataset.HigherBetter,
		dataset.HigherBetter,
		dataset.HigherBetter,
	})
	if err != nil {
		panic(err)
	}
	return norm
}

// Flights simulates the US DoT on-time dataset (d = 3): air-time, taxi-in
// and taxi-out minutes. Air time is a short-haul/long-haul mixture; taxi
// times are right-skewed (sums of exponentials). The paper ranks on these
// three attributes directly; we normalize higher-preferred as the paper's
// pipeline does after its transform.
func Flights(rng *rand.Rand, n int) *dataset.Dataset {
	raw := dataset.MustNew(3)
	for i := 0; i < n; i++ {
		var air float64
		if rng.Float64() < 0.65 {
			air = 95 + 30*rng.NormFloat64() // short haul
		} else {
			air = 280 + 70*rng.NormFloat64() // long haul
		}
		if air < 20 {
			air = 20 + rng.Float64()*10
		}
		taxiIn := 4 + rng.ExpFloat64()*4 + rng.ExpFloat64()*2
		taxiOut := 10 + rng.ExpFloat64()*7 + rng.ExpFloat64()*3
		raw.MustAdd(fmt.Sprintf("f%07d", i), air, taxiIn, taxiOut)
	}
	norm, err := raw.Normalize(nil)
	if err != nil {
		panic(err)
	}
	return norm
}
