package datagen

import (
	"math"
	"math/rand"
	"testing"

	"stablerank/internal/dataset"
)

func pearson(ds *dataset.Dataset, j, k int) float64 {
	n := float64(ds.N())
	var mj, mk float64
	for i := 0; i < ds.N(); i++ {
		mj += ds.Attrs(i)[j]
		mk += ds.Attrs(i)[k]
	}
	mj /= n
	mk /= n
	var sjk, sj, sk float64
	for i := 0; i < ds.N(); i++ {
		a := ds.Attrs(i)[j] - mj
		b := ds.Attrs(i)[k] - mk
		sjk += a * b
		sj += a * a
		sk += b * b
	}
	if sj == 0 || sk == 0 {
		return 0
	}
	return sjk / math.Sqrt(sj*sk)
}

func inUnitBox(t *testing.T, ds *dataset.Dataset) {
	t.Helper()
	for i := 0; i < ds.N(); i++ {
		for j, v := range ds.Attrs(i) {
			if v < 0 || v > 1 {
				t.Fatalf("item %d attr %d = %v outside [0,1]", i, j, v)
			}
		}
	}
}

func TestIndependentShapeAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	ds := Independent(rng, 5000, 3)
	if ds.N() != 5000 || ds.D() != 3 {
		t.Fatalf("shape %dx%d", ds.N(), ds.D())
	}
	inUnitBox(t, ds)
	if r := pearson(ds, 0, 1); math.Abs(r) > 0.05 {
		t.Errorf("independent correlation = %v, want ~0", r)
	}
}

func TestCorrelatedHasPositiveCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	ds := Correlated(rng, 5000, 3)
	inUnitBox(t, ds)
	for j := 0; j < 3; j++ {
		for k := j + 1; k < 3; k++ {
			if r := pearson(ds, j, k); r < 0.5 {
				t.Errorf("correlated attrs (%d,%d) correlation = %v, want > 0.5", j, k, r)
			}
		}
	}
}

func TestAntiCorrelatedHasNegativeCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	ds := AntiCorrelated(rng, 5000, 2)
	inUnitBox(t, ds)
	if r := pearson(ds, 0, 1); r > -0.5 {
		t.Errorf("anti-correlated correlation = %v, want < -0.5", r)
	}
	// In higher d, pairwise correlation is milder but still negative.
	ds3 := AntiCorrelated(rng, 5000, 3)
	if r := pearson(ds3, 0, 1); r > -0.2 {
		t.Errorf("anti-correlated d=3 correlation = %v, want < -0.2", r)
	}
}

func TestSyntheticDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for _, kind := range []CorrelationKind{KindIndependent, KindCorrelated, KindAntiCorrelated} {
		ds := Synthetic(rng, kind, 100, 3)
		if ds.N() != 100 || ds.D() != 3 {
			t.Errorf("%v: shape %dx%d", kind, ds.N(), ds.D())
		}
	}
	if KindCorrelated.String() != "correlated" || KindAntiCorrelated.String() != "anti-correlated" ||
		KindIndependent.String() != "independent" {
		t.Error("CorrelationKind.String wrong")
	}
	if CorrelationKind(99).String() == "" {
		t.Error("unknown kind should still print")
	}
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	a := CSMetrics(rand.New(rand.NewSource(7)), 50)
	b := CSMetrics(rand.New(rand.NewSource(7)), 50)
	for i := 0; i < a.N(); i++ {
		if !a.Attrs(i).Equal(b.Attrs(i), 0) {
			t.Fatal("same seed produced different data")
		}
	}
	c := CSMetrics(rand.New(rand.NewSource(8)), 50)
	same := true
	for i := 0; i < a.N(); i++ {
		if !a.Attrs(i).Equal(c.Attrs(i), 0) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestCSMetricsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	ds := CSMetrics(rng, 100)
	if ds.N() != 100 || ds.D() != 2 {
		t.Fatalf("shape %dx%d", ds.N(), ds.D())
	}
	inUnitBox(t, ds)
	// Measured and predicted citations must be strongly correlated.
	if r := pearson(ds, 0, 1); r < 0.7 {
		t.Errorf("CSMetrics M/P correlation = %v, want > 0.7", r)
	}
	// Top institutions should generally dominate bottom ones: the data has a
	// strong quality gradient.
	top, bottom := 0, 0
	for i := 0; i < 10; i++ {
		if ds.Attrs(i)[0] > ds.Attrs(90 + i)[0] {
			top++
		} else {
			bottom++
		}
	}
	if top < 8 {
		t.Errorf("quality gradient weak: top wins %d/10", top)
	}
	w := CSMetricsReferenceWeights()
	if len(w) != 2 || w[0] != 0.3 || w[1] != 0.7 {
		t.Errorf("reference weights = %v", w)
	}
}

func TestFIFAShape(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	ds := FIFA(rng, 100)
	if ds.N() != 100 || ds.D() != 4 {
		t.Fatalf("shape %dx%d", ds.N(), ds.D())
	}
	inUnitBox(t, ds)
	// Yearly performances of the same team are positively correlated.
	if r := pearson(ds, 0, 3); r < 0.2 {
		t.Errorf("FIFA year correlation = %v, want > 0.2", r)
	}
	w := FIFAReferenceWeights()
	if len(w) != 4 || w[0] != 1 || w[3] != 0.2 {
		t.Errorf("reference weights = %v", w)
	}
}

func TestDiamondsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	ds := Diamonds(rng, 2000)
	if ds.N() != 2000 || ds.D() != 5 {
		t.Fatalf("shape %dx%d", ds.N(), ds.D())
	}
	inUnitBox(t, ds)
	// After the lower-better flip, normalized price and carat must be
	// anti-correlated (big diamonds cost more, so cheapness anti-tracks
	// carat).
	if r := pearson(ds, 0, 1); r > -0.3 {
		t.Errorf("flipped price vs carat correlation = %v, want strongly negative", r)
	}
}

func TestFlightsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	ds := Flights(rng, 5000)
	if ds.N() != 5000 || ds.D() != 3 {
		t.Fatalf("shape %dx%d", ds.N(), ds.D())
	}
	inUnitBox(t, ds)
	// Air time is bimodal: the middle of the range is sparse relative to the
	// two humps. Check variance is substantial (mixture, not point mass).
	var mean, m2 float64
	for i := 0; i < ds.N(); i++ {
		mean += ds.Attrs(i)[0]
	}
	mean /= float64(ds.N())
	for i := 0; i < ds.N(); i++ {
		d := ds.Attrs(i)[0] - mean
		m2 += d * d
	}
	if sd := math.Sqrt(m2 / float64(ds.N())); sd < 0.1 {
		t.Errorf("air-time stddev = %v, want a spread mixture", sd)
	}
}

func TestGeneratorsUniqueIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for name, ds := range map[string]*dataset.Dataset{
		"csmetrics": CSMetrics(rng, 50),
		"fifa":      FIFA(rng, 50),
		"diamonds":  Diamonds(rng, 50),
		"flights":   Flights(rng, 50),
		"synthetic": Independent(rng, 50, 3),
	} {
		seen := map[string]bool{}
		for i := 0; i < ds.N(); i++ {
			id := ds.Item(i).ID
			if seen[id] {
				t.Errorf("%s: duplicate id %q", name, id)
			}
			seen[id] = true
		}
	}
}
