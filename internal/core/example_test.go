package core_test

import (
	"context"
	"fmt"
	"log"

	"stablerank/internal/core"
	"stablerank/internal/dataset"
	"stablerank/internal/mc"
)

// ctx is the default context threaded through the cancellable API in
// tests that do not exercise cancellation.
var ctx = context.Background()

// ExampleAnalyzer_VerifyStability verifies the stability of the published
// ranking of the paper's Figure 1 database (the consumer's Problem 1).
func ExampleAnalyzer_VerifyStability() {
	ds := dataset.Figure1()
	a, err := core.New(ds)
	if err != nil {
		log.Fatal(err)
	}
	published := core.RankingOf(ds, []float64{1, 1})
	v, err := a.VerifyStability(ctx, published)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\nstability %.4f (exact: %v)\n",
		published.Describe(ds, 0), v.Stability, v.Exact)
	// Output:
	// t2 > t4 > t3 > t5 > t1
	// stability 0.0880 (exact: true)
}

// ExampleAnalyzer_Enumerator iterates rankings from most to least stable
// (the producer's Problem 3, GET-NEXT).
func ExampleAnalyzer_Enumerator() {
	ds := dataset.Figure1()
	a, err := core.New(ds)
	if err != nil {
		log.Fatal(err)
	}
	e, err := a.Enumerator(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s, err := e.Next(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d. %.4f %s\n", i+1, s.Stability, s.Ranking.Describe(ds, 3))
	}
	// Output:
	// 1. 0.3949 t2 > t4 > t1 > ...
	// 2. 0.1444 t5 > t3 > t1 > ...
	// 3. 0.1013 t2 > t5 > t3 > ...
}

// ExampleAnalyzer_Randomized finds the most stable top-3 set of the
// Section 2.2.5 toy database — {t2, t3, t4}, which is not a subset of the
// skyline {t1, t2, t5}.
func ExampleAnalyzer_Randomized() {
	ds := dataset.Toy225()
	a, err := core.New(ds, core.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	r, err := a.Randomized(mc.TopKSet, 3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := r.NextFixedBudget(ctx, 20000)
	if err != nil {
		log.Fatal(err)
	}
	for _, idx := range res.Items {
		fmt.Println(ds.Item(idx).ID)
	}
	// Output:
	// t2
	// t3
	// t4
}

// ExampleAnalyzer_Boundary names the item swaps that bound the published
// ranking's region: perturbing the weights far enough realizes one of these
// swaps first.
func ExampleAnalyzer_Boundary() {
	ds := dataset.Figure1()
	a, err := core.New(ds)
	if err != nil {
		log.Fatal(err)
	}
	published := core.RankingOf(ds, []float64{1, 1})
	facets, err := a.Boundary(published)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range facets {
		fmt.Println(f.Describe(ds))
	}
	// Output:
	// t4 <-> t3
	// t5 <-> t1
}
