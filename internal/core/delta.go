package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/mc"
	"stablerank/internal/rank"
	"stablerank/internal/vecmat"
)

// Delta is one dataset mutation; see dataset.Delta.
type Delta = dataset.Delta

// Delta operations, re-exported so callers depend only on this package.
const (
	ItemAdd    = dataset.ItemAdd
	ItemRemove = dataset.ItemRemove
	AttrUpdate = dataset.AttrUpdate
)

// Drift reports how one delta shifted stability mass: the score displacement
// of the touched item across the Monte-Carlo pool (one blocked row-pass) and
// its rank displacement across a sample of pool rows. For an ItemAdd the
// "before" side is empty (score 0, rank n+1); for an ItemRemove the "after"
// side is.
type Drift struct {
	ID string
	Op dataset.DeltaOp
	// PoolRows is the number of pool samples the score pass covered.
	PoolRows int
	// MeanScoreDelta / MaxAbsScoreDelta summarize after-before score changes
	// of the touched item across the pool (a missing side scores 0).
	MeanScoreDelta   float64
	MaxAbsScoreDelta float64
	// Shift is the rank displacement over the sampled pool rows.
	Shift mc.Shift
}

// scoreStat is one delta's pool-wide score displacement.
type scoreStat struct {
	mean   float64
	maxAbs float64
	rows   int
}

// deltaRecord retains what LastDrift needs about the most recent ApplyDelta:
// the resolution trace, the endpoint datasets' attrs matrices, and the lazily
// computed score pass over the pool.
type deltaRecord struct {
	trace    []dataset.Applied
	oldDS    *dataset.Dataset
	oldAttrs vecmat.Matrix
	newAttrs vecmat.Matrix

	passMu   sync.Mutex
	passDone bool
	passErr  error
	stats    []scoreStat
}

// equalWeights is the canonical baseline scoring function: all attributes
// weighted 1, the paper's default example weighting.
func equalWeights(d int) geom.Vector {
	w := make(geom.Vector, d)
	for i := range w {
		w[i] = 1
	}
	return w
}

// baselineState lazily builds the incrementally maintained baseline ranking
// (equal weights) and the contiguous attrs matrix. Both are immutable once
// built: ApplyDelta clones them and splices the clones, so concurrent readers
// never observe a mutation.
func (a *Analyzer) baselineState() (*rank.Spliced, vecmat.Matrix) {
	a.baselineMu.Lock()
	defer a.baselineMu.Unlock()
	if a.baseline == nil {
		n := a.ds.N()
		attrs := vecmat.New(n, a.ds.D())
		for i := 0; i < n; i++ {
			attrs.SetRow(i, a.ds.Attrs(i))
		}
		scores := make([]float64, n)
		attrs.MulVec(equalWeights(a.ds.D()), scores)
		a.baseline = rank.NewSpliced(scores)
		a.baselineAttrs = attrs
	}
	return a.baseline, a.baselineAttrs
}

// Baseline returns the incrementally maintained equal-weights ranking. After
// any chain of ApplyDelta calls it is bit-identical to the ranking a fresh
// analyzer over the same dataset would compute.
func (a *Analyzer) Baseline() rank.Ranking {
	sp, _ := a.baselineState()
	return sp.Ranking().Clone()
}

// BaselineKey returns an order-sensitive digest of the baseline ranking,
// cheap to compare against a rebuild.
func (a *Analyzer) BaselineKey() uint64 {
	sp, _ := a.baselineState()
	return sp.Hash()
}

// DeltasApplied returns how many deltas produced this analyzer (accumulated
// along the ApplyDelta chain).
func (a *Analyzer) DeltasApplied() int64 { return a.deltasApplied.Load() }

// DeltaSplices returns how many delta operations were resolved by splicing
// the ranking state in place.
func (a *Analyzer) DeltaSplices() int64 { return a.deltaSpliced.Load() }

// DeltaResorts returns how many delta operations fell back to a full re-sort
// because the spliced key tied an existing one.
func (a *Analyzer) DeltaResorts() int64 { return a.deltaResorted.Load() }

// Warm draws (or restores) the shared Monte-Carlo sample pool now instead of
// on first query, so callers can separate pool cost from query cost.
func (a *Analyzer) Warm(ctx context.Context) error {
	_, err := a.samplePool(ctx)
	return err
}

// ApplyDelta returns a new Analyzer over the dataset with the deltas applied,
// reusing everything expensive from the receiver instead of rebuilding:
//
//   - The Monte-Carlo sample pool is carried over as-is. Pool samples are
//     weight-space points drawn from (region, seed, n) only — they never
//     depend on dataset content — so the new analyzer answers queries
//     without drawing a single sample.
//   - The baseline ranking state is spliced, not re-sorted: each delta
//     recomputes one item's score and moves one interned 64-bit key, falling
//     back to a canonical full sort only when the new key ties an existing
//     one. The spliced state is bit-identical to a from-scratch rebuild.
//
// The receiver is unchanged and remains fully usable; both analyzers may be
// queried concurrently. Configuration (region, seed, sample count, workers,
// adaptive target, pool cache/filler) carries over. An invalid delta batch
// fails atomically with no new analyzer.
func (a *Analyzer) ApplyDelta(ctx context.Context, deltas ...Delta) (*Analyzer, error) {
	if len(deltas) == 0 {
		return a, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nds, trace, err := dataset.ApplyDeltasTrace(a.ds, deltas...)
	if err != nil {
		return nil, err
	}
	if nds.N() == 0 {
		return nil, dataset.ErrEmptyDataset
	}
	sp, attrs := a.baselineState()
	nsp := sp.Clone()
	nattrs := attrs.Clone()
	w := equalWeights(a.ds.D())
	for _, ap := range trace {
		switch ap.Delta.Op {
		case dataset.AttrUpdate:
			nattrs.SetRow(ap.Index, ap.Delta.Attrs)
			nsp.Update(ap.Index, vecmat.Dot(w, nattrs.Row(ap.Index)))
		case dataset.ItemAdd:
			nattrs = appendRow(nattrs, ap.Delta.Attrs)
			nsp.Add(vecmat.Dot(w, nattrs.Row(ap.Index)))
		case dataset.ItemRemove:
			nattrs = removeRow(nattrs, ap.Index)
			nsp.Remove(ap.Index)
		}
	}

	n := &Analyzer{
		ds:          nds,
		roi:         a.roi,
		seed:        a.seed,
		sampleCount: a.sampleCount,
		alpha:       a.alpha,
		workers:     a.workers,
		adaptiveErr: a.adaptiveErr,
		poolCache:   a.poolCache,
		poolFiller:  a.poolFiller,
	}
	n.baseline = nsp         //srlint:lockscope n is freshly constructed and unshared; no other goroutine can see it yet
	n.baselineAttrs = nattrs //srlint:lockscope n is freshly constructed and unshared; no other goroutine can see it yet
	carry(&n.poolBuilds, &a.poolBuilds)
	carry(&n.poolBuildNanos, &a.poolBuildNanos)
	carry(&n.poolRestores, &a.poolRestores)
	carry(&n.sweeps, &a.sweeps)
	carry(&n.adaptiveStops, &a.adaptiveStops)
	carry(&n.adaptiveRowsSaved, &a.adaptiveRowsSaved)
	n.deltasApplied.Store(a.deltasApplied.Load() + int64(len(trace)))
	spl, rs := nsp.Counters()
	n.deltaSpliced.Store(spl)
	n.deltaResorted.Store(rs)

	rec := &deltaRecord{trace: trace, oldDS: a.ds, oldAttrs: attrs, newAttrs: nattrs}
	if st := a.pool.Load(); st != nil && st.built.Load() {
		// Share the built pool verbatim: the poolState cell is immutable once
		// built, so both analyzers sweep the same backing matrix. The blocked
		// row-pass pricing the delta against every sample is deferred to
		// LastDrift, so callers that never read drift pay only for the
		// splice.
		n.pool.Store(st)
	} else {
		n.pool.Store(&poolState{})
	}
	n.last = rec
	return n, nil
}

// carry copies a counter from src to dst.
func carry(dst, src *atomic.Int64) { dst.Store(src.Load()) }

// appendRow returns a copy of m with one extra row appended.
func appendRow(m vecmat.Matrix, row []float64) vecmat.Matrix {
	out := vecmat.New(m.Rows()+1, m.Stride())
	for i := 0; i < m.Rows(); i++ {
		out.SetRow(i, m.Row(i))
	}
	out.SetRow(m.Rows(), row)
	return out
}

// removeRow returns a copy of m with row idx removed (later rows shift up).
func removeRow(m vecmat.Matrix, idx int) vecmat.Matrix {
	out := vecmat.New(m.Rows()-1, m.Stride())
	for i, o := 0, 0; i < m.Rows(); i++ {
		if i == idx {
			continue
		}
		out.SetRow(o, m.Row(i))
		o++
	}
	return out
}

// pass runs the per-delta score pass over the pool at most once: one
// EvalRowsBlocked sweep evaluating every touched item's before/after
// attribute vectors against every pool sample. Fixed-size chunks are
// sharded across workers and the partial sums are reduced in chunk order,
// so the statistics are bit-deterministic for every worker count.
// A completed pass (success or deterministic failure) is latched and shared
// by every later call; a pass aborted by the caller's context is NOT — the
// cancellation is returned to that caller only, and the next call with a
// live context retries the sweep.
func (rec *deltaRecord) pass(ctx context.Context, pool vecmat.Matrix, workers int) ([]scoreStat, error) {
	rec.passMu.Lock()
	defer rec.passMu.Unlock()
	if rec.passDone {
		return rec.stats, rec.passErr
	}
	stats, err := rec.scorePass(ctx, pool, workers)
	if err != nil && ctx.Err() != nil {
		return nil, err
	}
	rec.stats, rec.passErr = stats, err
	rec.passDone = true
	return stats, err
}

const deltaChunkRows = 4096

func (rec *deltaRecord) scorePass(ctx context.Context, pool vecmat.Matrix, workers int) ([]scoreStat, error) {
	k := len(rec.trace)
	d := pool.Stride()
	// One normals row per delta side that exists: before (the displaced
	// attrs) and after (the new attrs).
	type pair struct{ before, after int }
	pairs := make([]pair, k)
	sides := 0
	for i, ap := range rec.trace {
		pairs[i] = pair{before: -1, after: -1}
		if ap.Delta.Op != dataset.ItemAdd {
			pairs[i].before = sides
			sides++
		}
		if ap.Delta.Op != dataset.ItemRemove {
			pairs[i].after = sides
			sides++
		}
	}
	normals := vecmat.New(sides, d)
	for i, ap := range rec.trace {
		if pairs[i].before >= 0 {
			normals.SetRow(pairs[i].before, ap.Prev)
		}
		if pairs[i].after >= 0 {
			normals.SetRow(pairs[i].after, ap.Delta.Attrs)
		}
	}

	rows := pool.Rows()
	chunks := (rows + deltaChunkRows - 1) / deltaChunkRows
	sums := make([][]float64, chunks)
	maxs := make([][]float64, chunks)
	if workers < 1 {
		workers = 1
	}
	if workers > chunks {
		workers = chunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, deltaChunkRows*sides)
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks || ctx.Err() != nil {
					return
				}
				lo := c * deltaChunkRows
				hi := lo + deltaChunkRows
				if hi > rows {
					hi = rows
				}
				pool.EvalRowsBlocked(normals, lo, hi, out)
				sum := make([]float64, k)
				mx := make([]float64, k)
				for r := 0; r < hi-lo; r++ {
					base := r * sides
					for i := range pairs {
						var before, after float64
						if pairs[i].before >= 0 {
							before = out[base+pairs[i].before]
						}
						if pairs[i].after >= 0 {
							after = out[base+pairs[i].after]
						}
						dlt := after - before
						sum[i] += dlt
						if dlt < 0 {
							dlt = -dlt
						}
						if dlt > mx[i] {
							mx[i] = dlt
						}
					}
				}
				sums[c] = sum
				maxs[c] = mx
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stats := make([]scoreStat, k)
	for c := 0; c < chunks; c++ {
		if sums[c] == nil {
			return nil, fmt.Errorf("core: delta score pass missing chunk %d", c)
		}
		for i := 0; i < k; i++ {
			stats[i].mean += sums[c][i]
			if maxs[c][i] > stats[i].maxAbs {
				stats[i].maxAbs = maxs[c][i]
			}
		}
	}
	for i := range stats {
		stats[i].rows = rows
		if rows > 0 {
			stats[i].mean /= float64(rows)
		}
	}
	return stats, nil
}

// LastDrift reports the stability drift of the most recent ApplyDelta that
// produced this analyzer: per touched item, the score displacement across
// the whole pool and the rank displacement across the first rankRows pool
// samples (rankRows <= 0 means all — at O(n) per sample, cap it for large
// pools). Returns nil when this analyzer was not produced by ApplyDelta.
// Items touched more than once in the batch are compared between the two
// endpoint datasets, not the intermediate states.
func (a *Analyzer) LastDrift(ctx context.Context, rankRows int) ([]Drift, error) {
	rec := a.last
	if rec == nil {
		return nil, nil
	}
	pool, err := a.samplePool(ctx)
	if err != nil {
		return nil, err
	}
	stats, err := rec.pass(ctx, pool, a.Workers())
	if err != nil {
		return nil, err
	}
	out := make([]Drift, len(rec.trace))
	for i, ap := range rec.trace {
		oldIdx := indexOf(rec.oldDS, ap.Delta.ID)
		newIdx := indexOf(a.ds, ap.Delta.ID)
		sh, err := mc.RankShift(ctx, rec.oldAttrs, rec.newAttrs, oldIdx, newIdx, pool, rankRows)
		if err != nil {
			return nil, err
		}
		out[i] = Drift{
			ID:               ap.Delta.ID,
			Op:               ap.Delta.Op,
			PoolRows:         stats[i].rows,
			MeanScoreDelta:   stats[i].mean,
			MaxAbsScoreDelta: stats[i].maxAbs,
			Shift:            sh,
		}
	}
	return out, nil
}

// indexOf returns the index of the first item with the given ID, or -1.
func indexOf(ds *dataset.Dataset, id string) int {
	for i, n := 0, ds.N(); i < n; i++ {
		if ds.Item(i).ID == id {
			return i
		}
	}
	return -1
}
