package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
)

func deltaDS(t *testing.T, n, d int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.MustNew(d)
	for i := 0; i < n; i++ {
		attrs := make(geom.Vector, d)
		for j := range attrs {
			// A coarse grid makes score ties common, exercising the re-sort
			// fallback.
			attrs[j] = float64(rng.Intn(5))
		}
		if err := ds.Add(fmt.Sprintf("i%d", i), attrs); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

// TestApplyDeltaSharesPool pins the headline property: the mutated analyzer
// inherits the built pool (zero new builds) and its spliced baseline matches
// a from-scratch rebuild bit for bit.
func TestApplyDeltaSharesPool(t *testing.T) {
	ctx := context.Background()
	ds := deltaDS(t, 40, 3, 1)
	a, err := New(ds, WithSampleCount(2000), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Warm(ctx); err != nil {
		t.Fatal(err)
	}
	builds := a.PoolBuilds()

	deltas := []Delta{
		{Op: AttrUpdate, ID: "i3", Attrs: geom.NewVector(9, 1, 2)},
		{Op: ItemRemove, ID: "i7"},
		{Op: ItemAdd, ID: "x", Attrs: geom.NewVector(2, 2, 2)},
	}
	na, err := a.ApplyDelta(ctx, deltas...)
	if err != nil {
		t.Fatal(err)
	}
	if na.PoolBuilds() != builds || !na.PoolBuilt() {
		t.Fatalf("pool not shared: builds %d -> %d, built=%v", builds, na.PoolBuilds(), na.PoolBuilt())
	}
	if na.DeltasApplied() != 3 {
		t.Fatalf("DeltasApplied = %d", na.DeltasApplied())
	}
	if na.DeltaSplices()+na.DeltaResorts() != 3 {
		t.Fatalf("splices %d + resorts %d != 3", na.DeltaSplices(), na.DeltaResorts())
	}

	nds, err := dataset.ApplyDeltas(ds, deltas...)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(nds, WithSampleCount(2000), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !na.Baseline().Equal(fresh.Baseline()) || na.BaselineKey() != fresh.BaselineKey() {
		t.Fatal("spliced baseline differs from rebuild")
	}
	// Query results must match the rebuild bitwise: same pool, same dataset.
	r := RankingOf(nds, equalWeights(3))
	v1, err := na.VerifyStability(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := fresh.VerifyStability(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Stability != v2.Stability {
		t.Fatalf("stability %v vs rebuild %v", v1.Stability, v2.Stability)
	}
	// The original analyzer is untouched.
	if a.Dataset().N() != 40 || a.DeltasApplied() != 0 {
		t.Fatal("receiver mutated by ApplyDelta")
	}
}

func TestApplyDeltaColdPool(t *testing.T) {
	ctx := context.Background()
	a, err := New(deltaDS(t, 10, 3, 2), WithSampleCount(500))
	if err != nil {
		t.Fatal(err)
	}
	na, err := a.ApplyDelta(ctx, Delta{Op: AttrUpdate, ID: "i0", Attrs: geom.NewVector(1, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if na.PoolBuilt() {
		t.Fatal("no pool should exist before first query")
	}
	// First query draws the pool lazily, as on a fresh analyzer; a Monte-Carlo
	// verify may report infeasible for a tie-broken ranking, which is fine —
	// the point is that the pool got built.
	if _, err := na.ItemRankDistribution(ctx, 0, 0); err != nil {
		t.Fatal(err)
	}
	if na.PoolBuilds() != 1 {
		t.Fatalf("PoolBuilds = %d", na.PoolBuilds())
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	ctx := context.Background()
	a, err := New(deltaDS(t, 3, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ApplyDelta(ctx, Delta{Op: ItemRemove, ID: "nope"}); err == nil {
		t.Fatal("unknown id should fail")
	}
	if _, err := a.ApplyDelta(ctx,
		Delta{Op: ItemRemove, ID: "i0"},
		Delta{Op: ItemRemove, ID: "i1"},
		Delta{Op: ItemRemove, ID: "i2"},
	); err != dataset.ErrEmptyDataset {
		t.Fatalf("emptying dataset: err=%v", err)
	}
	if na, err := a.ApplyDelta(ctx); err != nil || na != a {
		t.Fatalf("empty delta batch should return the receiver, got %v/%v", na, err)
	}
}

// TestLastDriftRetriesAfterCancel: a context cancelled during the drift
// score pass must not be latched into the delta record — the same caller's
// next LastDrift with a live context gets the real statistics.
func TestLastDriftRetriesAfterCancel(t *testing.T) {
	ctx := context.Background()
	a, err := New(deltaDS(t, 12, 2, 4), WithSampleCount(1000), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Warm(ctx); err != nil {
		t.Fatal(err)
	}
	na, err := a.ApplyDelta(ctx, Delta{Op: AttrUpdate, ID: "i1", Attrs: geom.NewVector(100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := na.LastDrift(cctx, 8); err == nil {
		t.Fatal("LastDrift with a cancelled context should fail")
	}
	drift, err := na.LastDrift(ctx, 8)
	if err != nil {
		t.Fatalf("LastDrift after a cancelled attempt: %v", err)
	}
	if len(drift) != 1 || drift[0].PoolRows != 1000 || drift[0].MeanScoreDelta <= 0 {
		t.Fatalf("retried drift = %+v", drift)
	}
}

func TestLastDrift(t *testing.T) {
	ctx := context.Background()
	a, err := New(deltaDS(t, 12, 2, 4), WithSampleCount(1000), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if d, err := a.LastDrift(ctx, 0); err != nil || d != nil {
		t.Fatalf("fresh analyzer drift = %v/%v", d, err)
	}
	na, err := a.ApplyDelta(ctx,
		Delta{Op: AttrUpdate, ID: "i1", Attrs: geom.NewVector(100, 100)},
		Delta{Op: ItemRemove, ID: "i2"},
		Delta{Op: ItemAdd, ID: "y", Attrs: geom.NewVector(50, 50)},
	)
	if err != nil {
		t.Fatal(err)
	}
	drift, err := na.LastDrift(ctx, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(drift) != 3 {
		t.Fatalf("drift rows = %d", len(drift))
	}
	up := drift[0]
	if up.ID != "i1" || up.Op != AttrUpdate || up.PoolRows != 1000 {
		t.Fatalf("drift[0] = %+v", up)
	}
	if up.MeanScoreDelta <= 0 || up.MaxAbsScoreDelta <= 0 {
		t.Fatalf("jumping to (100,100) should raise scores: %+v", up)
	}
	if up.Shift.Rows != 64 || up.Shift.MeanAfter >= up.Shift.MeanBefore {
		t.Fatalf("rank should improve: %+v", up.Shift)
	}
	rm := drift[1]
	if rm.Op != ItemRemove || rm.Shift.MeanAfter != float64(na.Dataset().N()+1) {
		t.Fatalf("removed item should rank n+1 after: %+v", rm.Shift)
	}
	ad := drift[2]
	if ad.Op != ItemAdd || ad.Shift.MeanBefore != 13 {
		t.Fatalf("added item should rank n_old+1=13 before: %+v", ad.Shift)
	}
}
