// Package core is the public face of the library: it ties the exact 2D
// algorithms, the multi-dimensional delayed-arrangement engine, and the
// randomized Monte-Carlo operators behind one Analyzer with the three
// problem interfaces of Section 2.2 — stability verification for consumers
// (Problem 1) and batch / iterative stable-ranking enumeration for producers
// (Problems 2 and 3) — over an acceptable region of scoring functions
// (Section 2.2.2).
//
// Typical use:
//
//	a, _ := core.New(ds, core.WithCosineSimilarity([]float64{1, 1}, 0.998))
//	v, _ := a.VerifyStability(ctx, core.RankingOf(ds, []float64{1, 1}))
//	e, _ := a.Enumerator(ctx)
//	first, _ := e.Next(ctx) // the most stable ranking in the region
//
// This package is wrapped by the root stablerank package, which is the
// supported import path; everything here may change between releases.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/mc"
	"stablerank/internal/md"
	"stablerank/internal/plan"
	"stablerank/internal/rank"
	"stablerank/internal/sampling"
	"stablerank/internal/stats"
	"stablerank/internal/store"
	"stablerank/internal/twod"
	"stablerank/internal/vecmat"
)

// Sentinel errors, re-exported so callers depend only on this package.
var (
	// ErrInfeasibleRanking reports that no scoring function in the region of
	// interest induces the given ranking.
	ErrInfeasibleRanking = errors.New("core: ranking is not achievable in the region of interest")
	// ErrExhausted reports that enumeration has produced every ranking.
	ErrExhausted = errors.New("core: no further rankings")
)

// Analyzer answers stability questions about one dataset within one region
// of interest. It is safe for concurrent use by multiple goroutines: the
// configuration is immutable after New, and the lazily drawn Monte-Carlo
// sample pool is built exactly once (behind a sync.Once) and never mutated
// afterwards. Enumerator and Randomized values it hands out are iteration
// cursors and are NOT individually goroutine-safe; create one per goroutine
// (creating them concurrently from a shared Analyzer is fine).
type Analyzer struct {
	ds          *dataset.Dataset
	roi         geom.Region
	seed        int64
	sampleCount int
	alpha       float64
	workers     int
	adaptiveErr float64
	poolCache   PoolCache
	poolFiller  PoolFiller

	// pool holds the lazily drawn shared sample pool. The indirection via an
	// atomic pointer to a once-guarded cell (instead of a bare sync.Once on
	// the Analyzer) lets a build aborted by context cancellation be retried:
	// on failure the cell is swapped for a fresh one, while a successful pool
	// is published exactly once and is immutable afterwards.
	pool atomic.Pointer[poolState]

	// poolBuilds counts entries into drawPool, so callers sharing an
	// Analyzer can observe that concurrent first uses coalesced into a
	// single pool construction.
	poolBuilds atomic.Int64

	// poolBuildNanos records the wall time of the last successful pool build,
	// for operational visibility (/statsz reports it per analyzer).
	poolBuildNanos atomic.Int64

	// poolRestores counts pools installed from a snapshot cache instead of
	// drawn: a warm restart answers its first query with poolBuilds == 0 and
	// poolRestores == 1.
	poolRestores atomic.Int64

	// sweeps counts fused sample-pool sweeps (see Sweeps); together with
	// poolBuilds it makes the sharing behaviour of Do observable.
	sweeps atomic.Int64

	// adaptiveStops counts verify queries that adaptive verification stopped
	// before the pool was exhausted; adaptiveRowsSaved accumulates the pool
	// rows those early stops skipped. Both are 0 without WithAdaptive.
	adaptiveStops     atomic.Int64
	adaptiveRowsSaved atomic.Int64

	// baseline is the incrementally maintained equal-weights ranking state
	// that ApplyDelta splices instead of re-sorting, with baselineAttrs the
	// matching contiguous attrs matrix; both are built lazily under
	// baselineMu. The delta counters and the last delta record feed /statsz
	// and the drift stream (see delta.go).
	baselineMu    sync.Mutex
	baseline      *rank.Spliced // guarded by baselineMu
	baselineAttrs vecmat.Matrix // guarded by baselineMu

	deltasApplied atomic.Int64
	deltaSpliced  atomic.Int64
	deltaResorted atomic.Int64

	last *deltaRecord
}

// poolState is one attempt at building the shared sample pool. The pool is
// one contiguous row-major matrix (stride = the dataset dimension), the
// storage every flat verification and enumeration kernel sweeps directly.
type poolState struct {
	once    sync.Once
	samples vecmat.Matrix
	err     error
	// key is the interned snapshot-cache key the pool was restored from or
	// saved under ("" without a cache). It is analyzer-resident for the
	// pool's lifetime, so PoolMemoryBytes accounts for it alongside the
	// matrix backing array.
	key string
	// built is set (after once completes) iff the attempt succeeded; it lets
	// PoolBuilt peek without racing a build in flight.
	built atomic.Bool
}

// PoolCache is an external snapshot store for the Monte-Carlo sample pool,
// the warm-restart hook stablerankd plugs its persistent store into. Load
// returns a previously saved snapshot (encoded with the versioned snapshot
// codec) or false on a miss — a cache that serves corrupt or mismatched
// bytes degrades to a miss plus a rebuild, never an error. Save is called at
// most once, after a successful build. Key returns the cache's canonical
// identity for this analyzer's pool (dataset hash, region, seed, sample
// count, layout version); the analyzer interns it for observability.
// Implementations must be safe for concurrent use.
type PoolCache interface {
	Key() string
	Load() ([]byte, bool)
	Save(snapshot []byte)
}

// PoolFiller is an alternative construction strategy for the Monte-Carlo
// sample pool — the hook stablerankd plugs its cluster coordinator into so a
// pool can be assembled from chunks computed on remote fill workers. A
// filler MUST honour the determinism contract: the matrix it returns must be
// bit-identical to the local draw for the analyzer's (region, seed, n) —
// the per-chunk seeding makes that natural, since chunk contents never
// depend on where they were computed. The analyzer treats the filler as
// best-effort: a filler error (other than context cancellation) or a
// wrong-shape result falls back to the local draw, which is always safe for
// the same reason. Implementations must be safe for concurrent use.
type PoolFiller interface {
	FillPool(ctx context.Context, total, d int) (vecmat.Matrix, error)
}

// Option configures an Analyzer.
type Option func(*Analyzer) error

// WithRegion sets the acceptable region U* directly.
func WithRegion(r geom.Region) Option {
	return func(a *Analyzer) error {
		if r == nil {
			return errors.New("core: nil region")
		}
		a.roi = r
		return nil
	}
}

// WithCone restricts scoring functions to a hypercone of half-angle theta
// around the reference weight vector.
func WithCone(weights []float64, theta float64) Option {
	return func(a *Analyzer) error {
		c, err := geom.NewCone(geom.NewVector(weights...), theta)
		if err != nil {
			return err
		}
		a.roi = c
		return nil
	}
}

// WithCosineSimilarity restricts scoring functions to those within the given
// minimum cosine similarity of the reference weight vector, as in the
// paper's "0.998 cosine similarity around the CSMetrics weights".
func WithCosineSimilarity(weights []float64, minCosine float64) Option {
	return func(a *Analyzer) error {
		c, err := geom.NewConeFromCosine(geom.NewVector(weights...), minCosine)
		if err != nil {
			return err
		}
		a.roi = c
		return nil
	}
}

// WithConstraints restricts scoring functions to a convex cone of linear
// weight constraints, e.g. "w2 at most w1".
func WithConstraints(d int, constraints ...geom.Halfspace) Option {
	return func(a *Analyzer) error {
		r, err := geom.NewConstraintRegion(d, constraints...)
		if err != nil {
			return err
		}
		a.roi = r
		return nil
	}
}

// WithSeed fixes the random seed of every sampler the analyzer creates
// (default 1). Identical seeds give identical results.
func WithSeed(seed int64) Option {
	return func(a *Analyzer) error {
		a.seed = seed
		return nil
	}
}

// WithSampleCount sets the Monte-Carlo sample pool used by verification and
// the multi-dimensional enumerator (default 100,000, the paper's Section 6.3
// choice for GET-NEXTmd).
func WithSampleCount(n int) Option {
	return func(a *Analyzer) error {
		if n < 1 {
			return fmt.Errorf("core: sample count %d < 1", n)
		}
		a.sampleCount = n
		return nil
	}
}

// WithWorkers sets how many goroutines shard the Monte-Carlo sample-pool
// build and the batch verification sweeps (default 0 = GOMAXPROCS). The
// worker count is a throughput knob only: per-chunk deterministic seeding
// makes every result bit-identical regardless of it.
func WithWorkers(n int) Option {
	return func(a *Analyzer) error {
		if n < 0 {
			return fmt.Errorf("core: worker count %d < 0", n)
		}
		a.workers = n
		return nil
	}
}

// WithPoolCache attaches a snapshot cache to the analyzer's sample pool. On
// first use the analyzer tries the cache before sampling: a hit whose
// decoded matrix matches the configured shape is installed verbatim —
// PoolBuilds stays 0, PoolRestores becomes 1, and every downstream result is
// bit-identical to a cold build because the snapshot codec round-trips float
// bits exactly. On a miss (or a corrupt/mismatched snapshot) the pool is
// drawn as usual and offered back via Save.
func WithPoolCache(c PoolCache) Option {
	return func(a *Analyzer) error {
		a.poolCache = c
		return nil
	}
}

// WithPoolFiller delegates the analyzer's pool construction to an external
// filler (typically a cluster coordinator farming chunks out to remote
// workers). The snapshot cache, when also configured, still wins: a filler
// only runs on a cache miss, and its output is offered back to the cache
// like any built pool. A nil filler leaves the local draw in place.
func WithPoolFiller(f PoolFiller) Option {
	return func(a *Analyzer) error {
		a.poolFiller = f
		return nil
	}
}

// WithConfidenceLevel sets 1-alpha for reported confidence errors (default
// alpha = 0.05).
func WithConfidenceLevel(alpha float64) Option {
	return func(a *Analyzer) error {
		if alpha <= 0 || alpha >= 1 {
			return fmt.Errorf("core: alpha %v out of (0,1)", alpha)
		}
		a.alpha = alpha
		return nil
	}
}

// WithAdaptive enables adaptive verification at the given target confidence
// error (0 < e < 1): verify queries sweep the Monte-Carlo pool in growing
// chunks and stop as soon as the confidence half-width of the running
// estimate — at the level configured by WithConfidenceLevel — drops to e.
// The pool rows are an iid draw, so any prefix is an unbiased sample; a
// query that never clears the target consumes the whole pool and reports
// exactly the non-adaptive answer. Stopping points depend only on the seed
// and pool size, never on the worker count, so adaptive results stay
// deterministic. Exact 2D verification, item-rank queries and enumeration
// are unaffected. Verification.Adaptive reports per query whether it
// stopped early; AdaptiveStops and AdaptiveRowsSaved aggregate the effect.
func WithAdaptive(targetError float64) Option {
	return func(a *Analyzer) error {
		if targetError <= 0 || targetError >= 1 {
			return fmt.Errorf("core: adaptive target error %v out of (0,1)", targetError)
		}
		a.adaptiveErr = targetError
		return nil
	}
}

// New builds an Analyzer over the dataset. Without options the region of
// interest is the whole function space U.
func New(ds *dataset.Dataset, opts ...Option) (*Analyzer, error) {
	if ds == nil || ds.N() == 0 {
		return nil, dataset.ErrEmptyDataset
	}
	if ds.D() < 2 {
		return nil, fmt.Errorf("core: dataset needs >= 2 scoring attributes, has %d", ds.D())
	}
	a := &Analyzer{
		ds:          ds,
		roi:         geom.FullSpace{D: ds.D()},
		seed:        1,
		sampleCount: 100_000,
		alpha:       0.05,
	}
	for _, opt := range opts {
		if err := opt(a); err != nil {
			return nil, err
		}
	}
	if a.roi.Dim() != ds.D() {
		return nil, fmt.Errorf("core: region dimension %d != dataset dimension %d", a.roi.Dim(), ds.D())
	}
	a.pool.Store(&poolState{})
	return a, nil
}

// Dataset returns the analyzed dataset.
func (a *Analyzer) Dataset() *dataset.Dataset { return a.ds }

// Region returns the region of interest.
func (a *Analyzer) Region() geom.Region { return a.roi }

// Seed returns the configured random seed.
func (a *Analyzer) Seed() int64 { return a.seed }

// SampleCount returns the configured Monte-Carlo sample pool size.
func (a *Analyzer) SampleCount() int { return a.sampleCount }

// Workers returns the effective worker count of the pool build and batch
// sweeps: the configured value, or GOMAXPROCS when unset.
func (a *Analyzer) Workers() int {
	if a.workers > 0 {
		return a.workers
	}
	return runtime.GOMAXPROCS(0)
}

// AdaptiveTargetError returns the adaptive-verification target confidence
// error, or 0 when adaptive verification is disabled.
func (a *Analyzer) AdaptiveTargetError() float64 { return a.adaptiveErr }

// AdaptiveStops returns how many verify queries adaptive verification has
// stopped before exhausting the sample pool.
func (a *Analyzer) AdaptiveStops() int64 { return a.adaptiveStops.Load() }

// AdaptiveRowsSaved returns the total number of pool rows early-stopped
// verify queries skipped — the work adaptive verification avoided.
func (a *Analyzer) AdaptiveRowsSaved() int64 { return a.adaptiveRowsSaved.Load() }

// PoolBuildDuration returns the wall time of the most recent successful
// sample-pool build, or 0 if none has completed yet.
func (a *Analyzer) PoolBuildDuration() time.Duration {
	return time.Duration(a.poolBuildNanos.Load())
}

// PoolBuilds returns how many times the shared sample pool has been (re)built,
// counting builds that a cancelled context aborted. Concurrent first uses of a
// shared Analyzer coalesce into one build, so after any number of successful
// calls this is 1; it only exceeds 1 when aborted builds were retried.
func (a *Analyzer) PoolBuilds() int64 { return a.poolBuilds.Load() }

// PoolBuilt reports whether the shared sample pool has been successfully
// drawn (it then stays resident for the Analyzer's lifetime).
func (a *Analyzer) PoolBuilt() bool {
	st := a.pool.Load()
	return st != nil && st.built.Load()
}

// RankingOf returns the ranking the weight vector induces on ds, the
// nabla_f(D) operator.
func RankingOf(ds *dataset.Dataset, weights []float64) rank.Ranking {
	return rank.Compute(ds, geom.NewVector(weights...))
}

// sampler returns a fresh unbiased sampler for the region of interest.
func (a *Analyzer) sampler(seedOffset int64) (sampling.Sampler, error) {
	return sampling.ForRegion(a.roi, rand.New(rand.NewSource(a.seed+seedOffset)))
}

// samplePool lazily draws the shared Monte-Carlo sample pool. Concurrent
// callers block on the same build; the winning build is published once and
// the slice is immutable afterwards. The build runs under the winning
// caller's context, so a cancelled winner fails the attempt for everyone
// blocked on it; the failed cell is then replaced and callers whose own
// context is still live retry with it instead of inheriting someone else's
// cancellation.
func (a *Analyzer) samplePool(ctx context.Context) (vecmat.Matrix, error) {
	for {
		st := a.pool.Load()
		st.once.Do(func() {
			st.samples, st.err = a.obtainPool(ctx) //srlint:onceerr not latched: the retry loop below swaps out a failed cell, and callers with live contexts rebuild
			if st.err == nil && a.poolCache != nil {
				st.key = a.poolCache.Key()
			}
			st.built.Store(st.err == nil)
		})
		if st.err == nil {
			return st.samples, nil
		}
		a.pool.CompareAndSwap(st, &poolState{})
		if ctxErr := ctx.Err(); ctxErr != nil {
			return vecmat.Matrix{}, ctxErr
		}
		if !errors.Is(st.err, context.Canceled) && !errors.Is(st.err, context.DeadlineExceeded) {
			// A deterministic failure (bad sampler, degenerate region) would
			// recur; surface it instead of spinning.
			return vecmat.Matrix{}, st.err
		}
	}
}

// obtainPool produces the sample pool: restored from the snapshot cache
// when an intact, shape-matching snapshot exists (a restore does NOT count
// as a pool build — that distinction is the warm-restart contract), drawn
// fresh otherwise and offered back to the cache. A snapshot that fails to
// decode, or whose shape disagrees with the configured sample count or
// dataset dimension, is treated as a miss: the cache layer has already
// quarantined damaged bytes, and rebuilding is always safe because the draw
// is deterministic in (region, seed, n).
func (a *Analyzer) obtainPool(ctx context.Context) (vecmat.Matrix, error) {
	if a.poolCache != nil {
		if raw, ok := a.poolCache.Load(); ok {
			if m, err := store.DecodeSnapshot(raw); err == nil &&
				m.Rows() == a.sampleCount && m.Stride() == a.ds.D() {
				a.poolRestores.Add(1)
				return m, nil
			}
		}
	}
	pool, err := a.drawPool(ctx)
	if err == nil && a.poolCache != nil {
		a.poolCache.Save(store.EncodeSnapshot(pool))
	}
	return pool, err
}

// drawPool draws the configured number of samples from the region of
// interest straight into one contiguous matrix, sharded across the
// configured workers. Each fixed-size chunk owns an RNG stream seeded from
// (seed, chunk index), so the pool is bit-identical for every worker count;
// cancellation is plumbed through every worker.
func (a *Analyzer) drawPool(ctx context.Context) (vecmat.Matrix, error) {
	a.poolBuilds.Add(1)
	start := time.Now()
	pool, err := a.buildPool(ctx)
	if err != nil {
		return vecmat.Matrix{}, err
	}
	a.poolBuildNanos.Store(time.Since(start).Nanoseconds())
	return pool, nil
}

// buildPool runs the configured PoolFiller when one is attached, otherwise
// (or when the filler fails or returns the wrong shape) the local draw. The
// fallback is silent by design: the filler's result and the local draw are
// bit-identical under the determinism contract, so degrading costs latency,
// never correctness. Context cancellation is the one filler error that
// propagates — retrying locally after the caller gave up helps nobody.
func (a *Analyzer) buildPool(ctx context.Context) (vecmat.Matrix, error) {
	if a.poolFiller != nil {
		pool, err := a.poolFiller.FillPool(ctx, a.sampleCount, a.ds.D())
		if err == nil && pool.Rows() == a.sampleCount && pool.Stride() == a.ds.D() {
			return pool, nil
		}
		if ctx.Err() != nil {
			return vecmat.Matrix{}, ctx.Err()
		}
	}
	return mc.BuildPoolMatrix(ctx, mc.ConeSamplers(a.roi, a.seed), a.sampleCount, a.ds.D(), a.workers)
}

// PoolMemoryBytes returns the resident size of the shared Monte-Carlo
// sample pool — the backing array plus the interned snapshot-key string
// kept alongside it — or 0 while no pool is built. This is the number
// stablerankd surfaces per analyzer in /statsz, so it must cover everything
// the pool pins, not just the matrix.
func (a *Analyzer) PoolMemoryBytes() int64 {
	st := a.pool.Load()
	if st == nil || !st.built.Load() {
		return 0
	}
	return st.samples.Bytes() + int64(len(st.key))
}

// PoolRestores returns how many times the pool was installed from the
// snapshot cache instead of drawn; with a warm cache the first query is
// served with PoolBuilds() == 0 and PoolRestores() == 1.
func (a *Analyzer) PoolRestores() int64 { return a.poolRestores.Load() }

// PoolSnapshotKey returns the interned snapshot-cache key of the built pool,
// or "" while no pool is built or no cache is attached.
func (a *Analyzer) PoolSnapshotKey() string {
	st := a.pool.Load()
	if st == nil || !st.built.Load() {
		return ""
	}
	return st.key
}

// is2D reports whether the exact 2D machinery applies.
func (a *Analyzer) is2D() bool { return a.ds.D() == 2 }

func (a *Analyzer) interval() (geom.Interval2D, error) {
	return geom.Interval2DOf(a.roi)
}

// Verification is the answer to the consumer's stability question
// (Problem 1). A feasible-by-dominance ranking with zero matching samples
// reports stability 0 rather than ErrInfeasibleRanking, as the Monte-Carlo
// evidence cannot distinguish the two.
type Verification = plan.Verification

// VerifyStability computes the stability of ranking r in the region of
// interest: the exact SV2D scan in two dimensions, the sampled SV oracle
// otherwise. It returns ErrInfeasibleRanking when no acceptable function
// induces r, and the context's error if ctx is cancelled while drawing the
// sample pool or sweeping it. It is a wrapper over Do.
func (a *Analyzer) VerifyStability(ctx context.Context, r rank.Ranking) (Verification, error) {
	res, err := a.Do(ctx, VerifyQuery{Ranking: r})
	if err != nil {
		return Verification{}, err
	}
	if res[0].Err != nil {
		return Verification{}, res[0].Err
	}
	return *res[0].Verification, nil
}

// BatchVerification is one ranking's outcome within VerifyBatch: either a
// Verification or that ranking's own error.
type BatchVerification struct {
	Verification
	// Err is ErrInfeasibleRanking (or a shape error) for this ranking alone;
	// nil on success. Other entries of the batch are unaffected.
	Err error
}

// VerifyBatch answers Problem 1 for many rankings at once. In two dimensions
// each ranking gets the exact SV2D scan; otherwise the Monte-Carlo sample
// pool is swept ONCE for the whole batch — the per-sample constraint tests of
// all rankings are fused into a single sharded pass — instead of once per
// ranking, which is the dominant cost when verifying many candidates.
// Per-ranking failures land in the matching BatchVerification.Err; the call
// itself only fails on context cancellation or an unusable region. It is a
// wrapper over Do.
func (a *Analyzer) VerifyBatch(ctx context.Context, rankings []rank.Ranking) ([]BatchVerification, error) {
	queries := make([]Query, len(rankings))
	for i, r := range rankings {
		queries[i] = VerifyQuery{Ranking: r}
	}
	res, err := a.Do(ctx, queries...)
	if err != nil {
		return nil, err
	}
	out := make([]BatchVerification, len(rankings))
	for i, r := range res {
		if r.Err != nil {
			out[i].Err = r.Err
			continue
		}
		out[i].Verification = *r.Verification
	}
	return out, nil
}

// Stable is one enumerated ranking with its stability.
type Stable = plan.Stable

// Enumerator yields rankings in decreasing stability (the GET-NEXT operator
// of Problem 3). In 2D it is exact; otherwise it runs the delayed
// arrangement construction over the Monte-Carlo sample pool.
type Enumerator struct {
	twoD *twod.Enumerator
	mdE  *md.Engine
	// conf computes the confidence half-width of a Monte-Carlo stability
	// estimate (nil for the exact 2D path).
	conf func(stability float64) float64
}

// Enumerator prepares the iterative stable-region enumeration. The returned
// Enumerator is a single iteration cursor and is not safe for concurrent
// use; calling this method concurrently to obtain one cursor per goroutine
// is safe.
func (a *Analyzer) Enumerator(ctx context.Context) (*Enumerator, error) {
	if a.is2D() {
		iv, err := a.interval()
		if err != nil {
			return nil, err
		}
		e, err := twod.NewEnumerator(a.ds, iv)
		if err != nil {
			return nil, err
		}
		return &Enumerator{twoD: e}, nil
	}
	pool, err := a.samplePool(ctx)
	if err != nil {
		return nil, err
	}
	// The engine partitions the pool in place; hand it a deep copy (one
	// contiguous memcpy) so verification calls on the analyzer keep their
	// own row ordering (contents are identical).
	e, err := md.NewEngineMatrix(a.ds, a.roi, pool.Clone(), md.SamplePartition)
	if err != nil {
		return nil, err
	}
	conf := func(s float64) float64 { return confidenceOf(s, pool.Rows(), a.alpha) }
	return &Enumerator{mdE: e, conf: conf}, nil
}

// Next returns the next most stable ranking, or ErrExhausted. Cancelling
// ctx makes Next return the context's error promptly; the enumeration state
// stays consistent, so a later call with a live context resumes.
func (e *Enumerator) Next(ctx context.Context) (Stable, error) {
	if e.twoD != nil {
		if err := ctx.Err(); err != nil {
			return Stable{}, err
		}
		r, err := e.twoD.Next()
		if errors.Is(err, twod.ErrExhausted) {
			return Stable{}, ErrExhausted
		}
		if err != nil {
			return Stable{}, err
		}
		return Stable{Ranking: r.Ranking, Stability: r.Stability, Weights: r.Region.Midpoint(), Exact: true}, nil
	}
	r, err := e.mdE.Next(ctx)
	if errors.Is(err, md.ErrExhausted) {
		return Stable{}, ErrExhausted
	}
	if err != nil {
		return Stable{}, err
	}
	return Stable{
		Ranking:         r.Ranking,
		Stability:       r.Stability,
		Weights:         r.Weights,
		ConfidenceError: e.conf(r.Stability),
	}, nil
}

// TopH returns the h most stable rankings (batch Problem 2, count form). It
// is a wrapper over Do.
func (a *Analyzer) TopH(ctx context.Context, h int) ([]Stable, error) {
	if h <= 0 {
		return nil, nil
	}
	res, err := a.Do(ctx, TopHQuery{H: h})
	if err != nil {
		return nil, err
	}
	return res[0].Stables, nil
}

// TopHBatch answers several top-h queries in one enumeration: the region is
// enumerated once to the largest requested h and each query receives a
// prefix of that single pass, so the sample pool is partitioned once instead
// of once per query. The returned slices share one backing enumeration and
// must be treated as read-only. It is a wrapper over Do.
func (a *Analyzer) TopHBatch(ctx context.Context, hs []int) ([][]Stable, error) {
	queries := make([]Query, len(hs))
	for i, h := range hs {
		if h < 0 {
			return nil, fmt.Errorf("core: negative h %d at index %d", h, i)
		}
		queries[i] = TopHQuery{H: h}
	}
	res, err := a.Do(ctx, queries...)
	if err != nil {
		return nil, err
	}
	out := make([][]Stable, len(hs))
	for i, r := range res {
		out[i] = r.Stables
	}
	return out, nil
}

// AboveThreshold returns every ranking with stability >= s (batch Problem 2,
// threshold form), in decreasing stability order. It is a wrapper over Do.
func (a *Analyzer) AboveThreshold(ctx context.Context, s float64) ([]Stable, error) {
	res, err := a.Do(ctx, AboveQuery{Threshold: s})
	if err != nil {
		return nil, err
	}
	return res[0].Stables, nil
}

// Randomized wraps the Monte-Carlo GET-NEXTr operator (Section 4.3) for
// complete rankings or top-k partial rankings.
type Randomized struct {
	op *mc.Operator
}

// Randomized builds the randomized operator with the given semantics; k is
// ignored for mc.Complete. Like Enumerator, the returned operator is a
// stateful cursor and is not safe for concurrent use; building one per
// goroutine from a shared Analyzer is safe.
func (a *Analyzer) Randomized(mode mc.Mode, k int) (*Randomized, error) {
	s, err := a.sampler(1)
	if err != nil {
		return nil, err
	}
	op, err := mc.NewOperator(a.ds, s,
		mc.WithMode(mode, k), mc.WithConfidenceLevel(a.alpha))
	if err != nil {
		return nil, err
	}
	return &Randomized{op: op}, nil
}

// NextFixedBudget draws n fresh samples and returns the most frequent
// undiscovered ranking (Algorithm 7).
func (r *Randomized) NextFixedBudget(ctx context.Context, n int) (mc.Result, error) {
	res, err := r.op.NextFixedBudget(ctx, n)
	if errors.Is(err, mc.ErrExhausted) {
		return mc.Result{}, ErrExhausted
	}
	return res, err
}

// NextFixedError samples until the next ranking's stability estimate reaches
// confidence error e (Algorithm 8).
func (r *Randomized) NextFixedError(ctx context.Context, e float64, maxSamples int) (mc.Result, error) {
	res, err := r.op.NextFixedError(ctx, e, maxSamples)
	if errors.Is(err, mc.ErrExhausted) {
		return mc.Result{}, ErrExhausted
	}
	return res, err
}

// TopH returns the h most stable rankings with the paper's budget schedule.
func (r *Randomized) TopH(ctx context.Context, h, firstBudget, stepBudget int) ([]mc.Result, error) {
	return r.op.TopH(ctx, h, firstBudget, stepBudget)
}

// TotalSamples reports the cumulative number of samples drawn.
func (r *Randomized) TotalSamples() int { return r.op.TotalSamples() }

// ItemRankDistribution returns the distribution of the given item's rank
// over n sampled scoring functions — the distributional form of Example 1's
// consumer question ("does Cornell make the top-10 under acceptable
// weights?"). In dimensions above two, requests that fit the shared
// Monte-Carlo pool are answered from it inside a fused sweep (n <= 0 uses
// the whole pool); in 2D, or when n exceeds the pool, a dedicated
// deterministic sampler stream is drawn. It is a wrapper over Do.
func (a *Analyzer) ItemRankDistribution(ctx context.Context, item, n int) (mc.RankDistribution, error) {
	res, err := a.Do(ctx, ItemRankQuery{Item: item, Samples: n})
	if err != nil {
		return mc.RankDistribution{}, err
	}
	if res[0].Err != nil {
		return mc.RankDistribution{}, res[0].Err
	}
	return *res[0].RankDistribution, nil
}

// Boundary returns the non-redundant boundary facets of ranking r's region:
// the item pairs whose exchange a weight perturbation can realize first
// (the Section 8 "characterize the boundaries" future work; see
// md.Boundary). It works in any dimension. It is a wrapper over Do.
func (a *Analyzer) Boundary(r rank.Ranking) ([]md.BoundaryFacet, error) {
	res, err := a.Do(context.Background(), BoundaryQuery{Ranking: r}) //srlint:ctxflow boundary facets are exact geometry, no sampling; exported signature predates context plumbing
	if err != nil {
		return nil, err
	}
	if res[0].Err != nil {
		return nil, res[0].Err
	}
	return res[0].Facets, nil
}

func confidenceOf(s float64, n int, alpha float64) float64 {
	if n <= 0 {
		return 1
	}
	return stats.ConfidenceError(s, n, alpha)
}
