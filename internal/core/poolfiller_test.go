package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/mc"
	"stablerank/internal/rank"
	"stablerank/internal/store"
	"stablerank/internal/vecmat"
)

// fakeFiller implements PoolFiller with a scripted behaviour so the tests
// can observe exactly how the analyzer consumes the hook.
type fakeFiller struct {
	calls atomic.Int64
	fill  func(ctx context.Context, total, d int) (vecmat.Matrix, error)
}

func (f *fakeFiller) FillPool(ctx context.Context, total, d int) (vecmat.Matrix, error) {
	f.calls.Add(1)
	return f.fill(ctx, total, d)
}

// fillerDataset is 3-dimensional on purpose: verification then runs the
// sampled oracle, which forces the pool build the filler hooks into (the 2D
// path is exact and never draws a pool).
func fillerDataset() *dataset.Dataset {
	ds := dataset.MustNew(3)
	ds.MustAdd("a", 0.9, 0.2, 0.4)
	ds.MustAdd("b", 0.3, 0.8, 0.5)
	ds.MustAdd("c", 0.5, 0.5, 0.9)
	ds.MustAdd("d", 0.7, 0.6, 0.1)
	return ds
}

func fillerRanking(ds *dataset.Dataset) rank.Ranking {
	return rank.Compute(ds, geom.Vector{1, 1, 1})
}

func verifyOnce(t *testing.T, a *Analyzer) Verification {
	t.Helper()
	v, err := a.VerifyStability(ctx, fillerRanking(a.Dataset()))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func assertSameVerification(t *testing.T, got, want Verification) {
	t.Helper()
	if got.Stability != want.Stability || got.ConfidenceError != want.ConfidenceError || got.Exact != want.Exact {
		t.Fatalf("verification (%v, %v, %v) != reference (%v, %v, %v)",
			got.Stability, got.ConfidenceError, got.Exact,
			want.Stability, want.ConfidenceError, want.Exact)
	}
}

func TestPoolFillerUsedForBuild(t *testing.T) {
	ds := fillerDataset()
	honest := &fakeFiller{}
	a, err := New(ds, WithSeed(11), WithSampleCount(2000), WithPoolFiller(honest))
	if err != nil {
		t.Fatal(err)
	}
	honest.fill = func(fctx context.Context, total, d int) (vecmat.Matrix, error) {
		return mc.BuildPoolMatrix(fctx, mc.ConeSamplers(a.Region(), a.Seed()), total, d, 0)
	}

	plain, err := New(ds, WithSeed(11), WithSampleCount(2000))
	if err != nil {
		t.Fatal(err)
	}
	assertSameVerification(t, verifyOnce(t, a), verifyOnce(t, plain))
	if honest.calls.Load() != 1 {
		t.Fatalf("filler called %d times, want 1", honest.calls.Load())
	}
	if a.PoolBuilds() != 1 {
		t.Fatalf("PoolBuilds = %d, want 1 (a filler build is still a build)", a.PoolBuilds())
	}
}

func TestPoolFillerFallsBackOnErrorAndBadShape(t *testing.T) {
	ds := fillerDataset()
	for name, fill := range map[string]func(context.Context, int, int) (vecmat.Matrix, error){
		"error":     func(context.Context, int, int) (vecmat.Matrix, error) { return vecmat.Matrix{}, errors.New("boom") },
		"bad shape": func(context.Context, int, int) (vecmat.Matrix, error) { return vecmat.New(3, 2), nil },
	} {
		t.Run(name, func(t *testing.T) {
			broken := &fakeFiller{fill: fill}
			a, err := New(ds, WithSeed(11), WithSampleCount(2000), WithPoolFiller(broken))
			if err != nil {
				t.Fatal(err)
			}
			plain, err := New(ds, WithSeed(11), WithSampleCount(2000))
			if err != nil {
				t.Fatal(err)
			}
			assertSameVerification(t, verifyOnce(t, a), verifyOnce(t, plain))
			if broken.calls.Load() != 1 {
				t.Fatalf("filler called %d times, want 1", broken.calls.Load())
			}
		})
	}
}

func TestPoolFillerCancellationPropagates(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	blocked := &fakeFiller{fill: func(fctx context.Context, total, d int) (vecmat.Matrix, error) {
		cancel() // the caller gives up while the filler is in flight
		<-fctx.Done()
		return vecmat.Matrix{}, fctx.Err()
	}}
	ds := fillerDataset()
	a, err := New(ds, WithSeed(11), WithSampleCount(2000), WithPoolFiller(blocked))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.VerifyStability(cancelled, fillerRanking(ds)); !errors.Is(err, context.Canceled) {
		t.Fatalf("VerifyStability under cancellation = %v, want context.Canceled", err)
	}
	// The aborted build must be retryable: a fresh context succeeds via the
	// local fallback (the filler now fails immediately).
	blocked.fill = func(context.Context, int, int) (vecmat.Matrix, error) {
		return vecmat.Matrix{}, errors.New("still broken")
	}
	if _, err := a.VerifyStability(ctx, fillerRanking(ds)); err != nil {
		t.Fatalf("retry after cancelled filler build: %v", err)
	}
}

func TestPoolFillerCacheStillWins(t *testing.T) {
	ds := fillerDataset()
	ref, err := mc.BuildPoolMatrix(ctx, mc.ConeSamplers(geom.FullSpace{D: 3}, 11), 2000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	filler := &fakeFiller{fill: func(context.Context, int, int) (vecmat.Matrix, error) {
		return vecmat.Matrix{}, errors.New("should not be called on a cache hit")
	}}
	a, err := New(ds, WithSeed(11), WithSampleCount(2000),
		WithPoolCache(staticCache{snap: store.EncodeSnapshot(ref)}), WithPoolFiller(filler))
	if err != nil {
		t.Fatal(err)
	}
	verifyOnce(t, a)
	if filler.calls.Load() != 0 {
		t.Fatalf("filler called %d times despite a warm cache", filler.calls.Load())
	}
	if a.PoolRestores() != 1 || a.PoolBuilds() != 0 {
		t.Fatalf("restores = %d, builds = %d; want a pure restore", a.PoolRestores(), a.PoolBuilds())
	}
}

type staticCache struct{ snap []byte }

func (c staticCache) Key() string          { return "static-test-key" }
func (c staticCache) Load() ([]byte, bool) { return c.snap, c.snap != nil }
func (c staticCache) Save(snapshot []byte) {}
