package core

import (
	"math"
	"testing"

	"stablerank/internal/dataset"
)

func TestTopHMergedStrictEqualsTopH(t *testing.T) {
	// tau = 0: every group is a single ranking, so merged enumeration must
	// reproduce plain TopH.
	ds := dataset.Figure1()
	a, err := New(ds)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := a.TopH(ctx, 1000)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := a.TopHMerged(ctx, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(plain) {
		t.Fatalf("merged %d groups, plain %d rankings", len(merged), len(plain))
	}
	for i := range merged {
		if merged[i].Members != 1 {
			t.Errorf("group %d has %d members with tau=0", i, merged[i].Members)
		}
		if math.Abs(merged[i].Stability-plain[i].Stability) > 1e-12 {
			t.Errorf("group %d stability %v vs plain %v", i, merged[i].Stability, plain[i].Stability)
		}
	}
}

func TestTopHMergedGroupsNeighbors(t *testing.T) {
	ds := dataset.Figure1()
	a, err := New(ds)
	if err != nil {
		t.Fatal(err)
	}
	// tau large enough to merge everything: n=5 so max distance is 10.
	all, err := a.TopHMerged(ctx, 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("tau=max should merge into 1 group, got %d", len(all))
	}
	if all[0].Members != 11 {
		t.Errorf("group holds %d members, want all 11 regions", all[0].Members)
	}
	if math.Abs(all[0].Stability-1) > 1e-9 {
		t.Errorf("total merged stability %v, want 1", all[0].Stability)
	}

	// Intermediate tau: groups are fewer than regions, stabilities still
	// partition.
	mid, err := a.TopHMerged(ctx, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) >= 11 || len(mid) < 1 {
		t.Fatalf("tau=2 groups = %d", len(mid))
	}
	var sum float64
	members := 0
	for _, g := range mid {
		sum += g.Stability
		members += g.Members
		if g.Stability < g.Representative.Stability-1e-12 {
			t.Error("group stability below its representative's")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("group stabilities sum to %v", sum)
	}
	if members != 11 {
		t.Errorf("groups cover %d rankings, want 11", members)
	}
	// Decreasing summed stability.
	for i := 1; i < len(mid); i++ {
		if mid[i].Stability > mid[i-1].Stability+1e-12 {
			t.Error("groups not sorted by summed stability")
		}
	}
}

func TestTopHMergedLimits(t *testing.T) {
	ds := dataset.Figure1()
	a, err := New(ds)
	if err != nil {
		t.Fatal(err)
	}
	two, err := a.TopHMerged(ctx, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 {
		t.Errorf("h=2 returned %d groups", len(two))
	}
	scanned, err := a.TopHMerged(ctx, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(scanned) != 3 {
		t.Errorf("maxScan=3 returned %d groups", len(scanned))
	}
}
