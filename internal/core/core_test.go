package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/mc"
	"stablerank/internal/rank"
)

// ctx is the default context threaded through the cancellable API in
// tests that do not exercise cancellation.
var ctx = context.Background()

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := New(dataset.MustNew(2)); !errors.Is(err, dataset.ErrEmptyDataset) {
		t.Error("empty dataset accepted")
	}
	one := dataset.MustNew(1)
	one.MustAdd("a", 1)
	if _, err := New(one); err == nil {
		t.Error("1-attribute dataset accepted")
	}
	ds := dataset.Figure1()
	if _, err := New(ds, WithRegion(nil)); err == nil {
		t.Error("nil region accepted")
	}
	if _, err := New(ds, WithRegion(geom.FullSpace{D: 3})); err == nil {
		t.Error("mismatched region accepted")
	}
	if _, err := New(ds, WithCone([]float64{1, 1}, -1)); err == nil {
		t.Error("bad cone accepted")
	}
	if _, err := New(ds, WithCosineSimilarity([]float64{1, 1}, 2)); err == nil {
		t.Error("bad cosine accepted")
	}
	if _, err := New(ds, WithSampleCount(0)); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := New(ds, WithConfidenceLevel(1)); err == nil {
		t.Error("alpha=1 accepted")
	}
	if _, err := New(ds, WithConstraints(3, geom.Halfspace{Normal: geom.Vector{1, 0, 0}})); err == nil {
		t.Error("constraint dimension mismatch accepted")
	}
	a, err := New(ds, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Dataset() != ds || a.Region().Dim() != 2 {
		t.Error("accessors wrong")
	}
}

func TestVerifyStability2DExact(t *testing.T) {
	ds := dataset.Figure1()
	a, err := New(ds)
	if err != nil {
		t.Fatal(err)
	}
	r := RankingOf(ds, []float64{1, 1})
	v, err := a.VerifyStability(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Exact || v.ConfidenceError != 0 || v.Interval == nil {
		t.Errorf("2D verification should be exact: %+v", v)
	}
	if v.Stability <= 0 || v.Stability >= 1 {
		t.Errorf("stability = %v", v.Stability)
	}
	// Infeasible ranking maps to the package sentinel.
	bad := rank.Ranking{Order: []int{0, 1, 2, 3, 4}}
	if _, err := a.VerifyStability(ctx, bad); !errors.Is(err, ErrInfeasibleRanking) {
		t.Errorf("infeasible error = %v", err)
	}
}

func TestVerifyStabilityMDMatches2DProjection(t *testing.T) {
	// Verify a 3-attribute dataset against the exact 3D oracle through the
	// public API only: MC stability with small confidence error.
	rr := rand.New(rand.NewSource(151))
	ds := dataset.MustNew(3)
	for i := 0; i < 10; i++ {
		ds.MustAdd("", rr.Float64(), rr.Float64(), rr.Float64())
	}
	a, err := New(ds, WithSampleCount(40000), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	r := RankingOf(ds, []float64{1, 1, 1})
	v, err := a.VerifyStability(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if v.Exact {
		t.Error("3D verification should be Monte-Carlo")
	}
	if v.Stability < 0 || v.Stability > 1 {
		t.Errorf("stability = %v", v.Stability)
	}
	if v.ConfidenceError <= 0 || v.ConfidenceError > 0.05 {
		t.Errorf("confidence error = %v", v.ConfidenceError)
	}
	if v.Constraints == nil {
		t.Error("constraints missing")
	}
	// Determinism: same analyzer setup gives identical estimates.
	b, _ := New(ds, WithSampleCount(40000), WithSeed(3))
	v2, err := b.VerifyStability(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if v.Stability != v2.Stability {
		t.Error("same seed gave different stability estimates")
	}
}

func TestEnumerator2D(t *testing.T) {
	ds := dataset.Figure1()
	a, _ := New(ds)
	e, err := a.Enumerator(ctx)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	prev := 2.0
	for {
		s, err := e.Next(ctx)
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !s.Exact {
			t.Error("2D enumeration should be exact")
		}
		if s.Stability > prev+1e-12 {
			t.Error("stability order violated")
		}
		prev = s.Stability
		count++
	}
	if count != 11 {
		t.Errorf("enumerated %d rankings, want 11 (Figure 1c)", count)
	}
}

func TestEnumeratorMD(t *testing.T) {
	rr := rand.New(rand.NewSource(152))
	ds := dataset.MustNew(3)
	for i := 0; i < 8; i++ {
		ds.MustAdd("", rr.Float64(), rr.Float64(), rr.Float64())
	}
	a, _ := New(ds, WithSampleCount(20000))
	e, err := a.Enumerator(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s.Exact {
		t.Error("MD enumeration should be Monte-Carlo")
	}
	// The reported stability must agree with verification of the same
	// ranking.
	v, err := a.VerifyStability(ctx, s.Ranking)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Stability-s.Stability) > 0.02 {
		t.Errorf("enumerated stability %v vs verified %v", s.Stability, v.Stability)
	}
	// The representative weights induce the ranking.
	if got := rank.Compute(ds, s.Weights); !got.Equal(s.Ranking) {
		t.Error("weights do not induce the enumerated ranking")
	}
}

func TestTopHAndThreshold(t *testing.T) {
	ds := dataset.Figure1()
	a, _ := New(ds)
	top, err := a.TopH(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("TopH = %d results", len(top))
	}
	all, err := a.TopH(ctx, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 11 {
		t.Errorf("full TopH = %d", len(all))
	}
	th, err := a.AboveThreshold(ctx, top[1].Stability)
	if err != nil {
		t.Fatal(err)
	}
	if len(th) < 2 {
		t.Errorf("threshold enumeration returned %d", len(th))
	}
	for _, s := range th {
		if s.Stability < top[1].Stability {
			t.Error("threshold violated")
		}
	}
}

func TestConeRestrictedAnalyzer(t *testing.T) {
	ds := dataset.Figure1()
	a, err := New(ds, WithCosineSimilarity([]float64{1, 1}, 0.951))
	if err != nil {
		t.Fatal(err)
	}
	all, err := a.TopH(ctx, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Fewer rankings fit in the narrow region than in all of U.
	if len(all) >= 11 || len(all) == 0 {
		t.Errorf("cone-restricted enumeration returned %d rankings", len(all))
	}
	var sum float64
	for _, s := range all {
		sum += s.Stability
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("cone-restricted stabilities sum to %v", sum)
	}
}

func TestConstraintRegionAnalyzer2D(t *testing.T) {
	ds := dataset.Figure1()
	// w1 <= w2 and 2 w1 >= w2 (Section 3.2's example region).
	a, err := New(ds, WithConstraints(2,
		geom.Halfspace{Normal: geom.Vector{-1, 1}, Positive: true},
		geom.Halfspace{Normal: geom.Vector{2, -1}, Positive: true},
	))
	if err != nil {
		t.Fatal(err)
	}
	all, err := a.TopH(ctx, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no rankings in constraint region")
	}
	for _, s := range all {
		ang := geom.Angle2D(s.Weights)
		if ang < math.Pi/4-1e-9 || ang > math.Atan(2)+1e-9 {
			t.Errorf("representative angle %v outside [pi/4, atan2]", ang)
		}
	}
}

func TestRandomizedThroughFacade(t *testing.T) {
	rr := rand.New(rand.NewSource(153))
	ds := dataset.MustNew(3)
	for i := 0; i < 60; i++ {
		ds.MustAdd("", rr.Float64(), rr.Float64(), rr.Float64())
	}
	a, _ := New(ds, WithSeed(5))
	r, err := a.Randomized(mc.TopKSet, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.NextFixedBudget(ctx, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 10 {
		t.Errorf("top-k items = %d", len(res.Items))
	}
	if r.TotalSamples() != 5000 {
		t.Errorf("TotalSamples = %d", r.TotalSamples())
	}
	res2, err := r.NextFixedError(ctx, 0.02, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Key == res.Key {
		t.Error("fixed-error call repeated the first key")
	}
	// Invalid mode parameters surface as errors.
	if _, err := a.Randomized(mc.TopKSet, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestItemRankDistributionThroughFacade(t *testing.T) {
	ds := dataset.Figure1()
	a, _ := New(ds, WithSeed(21))
	dist, err := a.ItemRankDistribution(ctx, 1, 5000) // t2
	if err != nil {
		t.Fatal(err)
	}
	if dist.Best != 1 {
		t.Errorf("t2 best rank = %d, want 1", dist.Best)
	}
	if dist.Samples != 5000 {
		t.Errorf("samples = %d", dist.Samples)
	}
	if _, err := a.ItemRankDistribution(ctx, 99, 10); err == nil {
		t.Error("out-of-range item accepted")
	}
	// Narrow cone around pure-x2 weights: t5 (highest x2) is always first.
	b, _ := New(ds, WithCone([]float64{0.05, 1}, 0.02), WithSeed(22))
	d5, err := b.ItemRankDistribution(ctx, 4, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if d5.Best != 1 || d5.Worst != 1 {
		t.Errorf("t5 rank range [%d, %d] in x2 cone, want [1, 1]", d5.Best, d5.Worst)
	}
}

func TestRandomizedMatchesExactIn2D(t *testing.T) {
	ds := dataset.Figure1()
	a, _ := New(ds, WithSeed(11))
	exact, err := a.TopH(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.Randomized(mc.Complete, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.NextFixedBudget(ctx, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != exact[0].Ranking.Key() {
		t.Errorf("randomized top %s != exact top %s", res.Key, exact[0].Ranking.Key())
	}
	if math.Abs(res.Stability-exact[0].Stability) > 0.02 {
		t.Errorf("randomized stability %v vs exact %v", res.Stability, exact[0].Stability)
	}
}
