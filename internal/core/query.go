package core

import (
	"context"
	"errors"
	"iter"

	"stablerank/internal/mc"
	"stablerank/internal/md"
	"stablerank/internal/plan"
	"stablerank/internal/twod"
)

// The unified query surface: every operation the Analyzer offers is a Query
// value, and Do answers any mix of them in one shared plan — one sample-pool
// build and one fused sweep for the verify/item-rank group, one enumeration
// cursor for the top-h/above/enumerate group. The per-operation methods
// (VerifyStability, TopH, ...) are thin wrappers over Do.

// Query is the sealed union of stability questions accepted by Do and
// Stream. The concrete types are VerifyQuery, TopHQuery, AboveQuery,
// ItemRankQuery, BoundaryQuery and EnumerateQuery.
type Query = plan.Query

// VerifyQuery asks for the stability of one ranking (Problem 1).
type VerifyQuery = plan.VerifyQuery

// TopHQuery asks for the H most stable rankings (Problem 2, count form).
type TopHQuery = plan.TopHQuery

// AboveQuery asks for every ranking with stability >= Threshold (Problem 2,
// threshold form).
type AboveQuery = plan.AboveQuery

// ItemRankQuery asks for the rank distribution of one item (Example 1).
type ItemRankQuery = plan.ItemRankQuery

// BoundaryQuery asks for the non-redundant boundary facets of one ranking's
// region (Section 8).
type BoundaryQuery = plan.BoundaryQuery

// EnumerateQuery asks for the Limit most stable rankings (every ranking when
// Limit <= 0) — the batch form of GET-NEXT, and the natural query to Stream.
type EnumerateQuery = plan.EnumerateQuery

// Result is one query's outcome within Do or Stream. The payload field
// matching the query's type is populated (Verification for VerifyQuery,
// Stables for the enumeration-shaped queries, and so on); Stable carries one
// incremental ranking when the result was produced by Stream.
type Result struct {
	// Query is the originating query, so heterogeneous result lists stay
	// self-describing.
	Query Query
	// Verification answers a VerifyQuery.
	Verification *Verification
	// Stables answers a TopHQuery, AboveQuery or EnumerateQuery in batch
	// mode. Mixed batches share one backing enumeration; treat as read-only.
	Stables []Stable
	// Stable is one enumerated ranking in Stream mode (nil in batch mode).
	Stable *Stable
	// RankDistribution answers an ItemRankQuery.
	RankDistribution *mc.RankDistribution
	// Facets answers a BoundaryQuery.
	Facets []md.BoundaryFacet
	// Err is this query's own failure (e.g. ErrInfeasibleRanking); other
	// queries in the batch are unaffected.
	Err error
}

// Do answers any mix of queries in one shared plan: all verify and
// (pool-sized) item-rank queries are folded into a single fused sweep of the
// Monte-Carlo sample pool, and all enumeration-shaped queries share a single
// cursor driven to the deepest demand. The sample pool is built at most once
// (and not at all for batches that need none, e.g. boundary-only or exact-2D
// ones). Per-query failures land in the matching Result.Err; Do itself only
// fails on context cancellation or an unusable region.
//
// Results are identical, bit for bit, to issuing each query through its
// per-operation method at the same seed — those methods are themselves
// wrappers over Do.
func (a *Analyzer) Do(ctx context.Context, queries ...Query) ([]Result, error) {
	outcomes, err := plan.Exec(ctx, a.planEnv(), queries)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(queries))
	for i, o := range outcomes {
		results[i] = Result{
			Query:            queries[i],
			Verification:     o.Verify,
			Stables:          o.Stables,
			RankDistribution: o.ItemRank,
			Facets:           o.Facets,
			Err:              mapQueryErr(o.Err),
		}
	}
	return results, nil
}

// Stream answers one query incrementally. For the enumeration-shaped queries
// (TopHQuery, AboveQuery, EnumerateQuery) it yields one Result per ranking —
// Result.Stable carries the ranking — in decreasing stability, stopping at
// the query's limit/threshold or exhaustion, without materializing the whole
// answer; breaking out of the loop stops the enumeration promptly. Any other
// query yields its single batch Result once. A failure — including ctx's
// error after cancellation — is yielded once as the iteration error, and the
// sequence stops.
func (a *Analyzer) Stream(ctx context.Context, q Query) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		switch q.(type) {
		case TopHQuery, AboveQuery, EnumerateQuery:
			a.streamEnum(ctx, q, yield)
		default:
			res, err := a.Do(ctx, q)
			if err != nil {
				yield(Result{Query: q, Err: err}, err)
				return
			}
			yield(res[0], res[0].Err)
		}
	}
}

func (a *Analyzer) streamEnum(ctx context.Context, q Query, yield func(Result, error) bool) {
	limit := 0 // 0 = unbounded
	threshold, hasThreshold := 0.0, false
	switch qq := q.(type) {
	case TopHQuery:
		if qq.H <= 0 {
			return
		}
		limit = qq.H
	case AboveQuery:
		threshold, hasThreshold = qq.Threshold, true
	case EnumerateQuery:
		if qq.Limit > 0 {
			limit = qq.Limit
		}
	}
	e, err := a.Enumerator(ctx)
	if err != nil {
		yield(Result{Query: q, Err: err}, err)
		return
	}
	yielded := 0
	for {
		s, err := e.Next(ctx)
		if errors.Is(err, ErrExhausted) {
			return
		}
		if err != nil {
			yield(Result{Query: q, Err: err}, err)
			return
		}
		if hasThreshold && s.Stability < threshold {
			return
		}
		if !yield(Result{Query: q, Stable: &s}, nil) {
			return
		}
		yielded++
		if limit > 0 && yielded >= limit {
			return
		}
	}
}

// planEnv wires the analyzer's mechanisms into the plan executor.
func (a *Analyzer) planEnv() *plan.Env {
	return &plan.Env{
		DS:       a.ds,
		TwoD:     a.is2D(),
		Interval: a.interval,
		Pool:     a.samplePool,
		PoolSize: a.sampleCount,
		Workers:  a.workers,
		Sampler:  a.sampler,
		NewCursor: func(ctx context.Context) (plan.Cursor, error) {
			e, err := a.Enumerator(ctx)
			if err != nil {
				return nil, err
			}
			return enumCursor{e}, nil
		},
		Confidence:    func(s float64, n int) float64 { return confidenceOf(s, n, a.alpha) },
		OnSweep:       func() { a.sweeps.Add(1) },
		AdaptiveError: a.adaptiveErr,
		OnAdaptiveStop: func(rowsUsed, poolRows int) {
			a.adaptiveStops.Add(1)
			a.adaptiveRowsSaved.Add(int64(poolRows - rowsUsed))
		},
	}
}

// enumCursor adapts the Analyzer's Enumerator to the plan's cursor shape.
type enumCursor struct{ e *Enumerator }

func (c enumCursor) Next(ctx context.Context) (plan.Stable, bool, error) {
	s, err := c.e.Next(ctx)
	if errors.Is(err, ErrExhausted) {
		return plan.Stable{}, false, nil
	}
	if err != nil {
		return plan.Stable{}, false, err
	}
	return s, true, nil
}

// mapQueryErr folds the engine-level sentinels into this package's, so
// errors.Is(err, ErrInfeasibleRanking) works on every Result.Err.
func mapQueryErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, md.ErrInfeasibleRanking), errors.Is(err, twod.ErrInfeasibleRanking):
		return ErrInfeasibleRanking
	default:
		return err
	}
}

// Sweeps returns how many fused sample-pool sweeps the analyzer has
// performed across Do calls and the per-operation wrappers — together with
// PoolBuilds, the observable proof that a heterogeneous batch shared one
// pool build and one sweep.
func (a *Analyzer) Sweeps() int64 { return a.sweeps.Load() }
