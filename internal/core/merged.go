package core

import (
	"context"
	"errors"
	"sort"

	"stablerank/internal/rank"
)

// Merged enumeration implements the first future-work direction of the
// paper's Section 8: "Our current definition of stability considers two
// rankings to be different if they differ in one pair of items. An
// alternative is to allow minor changes in the ranking." Here rankings
// within a Kendall-tau distance threshold of a group's representative are
// treated as the same outcome and their stabilities are summed.

// MergedStable is a group of near-identical rankings.
type MergedStable struct {
	// Representative is the most stable member of the group (the first one
	// enumerated, since enumeration is in decreasing stability).
	Representative Stable
	// Stability is the summed stability of every member.
	Stability float64
	// Members is the number of distinct rankings merged into the group.
	Members int
}

// TopHMerged enumerates ranking regions in decreasing stability, greedily
// merging each new ranking into the first existing group whose
// representative is within Kendall-tau distance tau (tau = 0 reproduces the
// paper's strict semantics). At most maxScan regions are examined
// (maxScan <= 0 scans until exhaustion — use with care in high dimensions).
// Groups are returned in decreasing summed stability, at most h of them.
func (a *Analyzer) TopHMerged(ctx context.Context, h, tau, maxScan int) ([]MergedStable, error) {
	e, err := a.Enumerator(ctx)
	if err != nil {
		return nil, err
	}
	var groups []MergedStable
	scanned := 0
	for maxScan <= 0 || scanned < maxScan {
		s, err := e.Next(ctx)
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			return nil, err
		}
		scanned++
		placed := false
		for i := range groups {
			d, err := rank.KendallTau(groups[i].Representative.Ranking, s.Ranking)
			if err != nil {
				return nil, err
			}
			if d <= tau {
				groups[i].Stability += s.Stability
				groups[i].Members++
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, MergedStable{
				Representative: s,
				Stability:      s.Stability,
				Members:        1,
			})
		}
	}
	sort.SliceStable(groups, func(i, j int) bool {
		return groups[i].Stability > groups[j].Stability
	})
	if h > 0 && len(groups) > h {
		groups = groups[:h]
	}
	return groups, nil
}
