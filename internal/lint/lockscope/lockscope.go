// Package lockscope enforces two locking conventions:
//
//  1. Struct fields annotated "// guarded by <mu>" may only be accessed from
//     functions that visibly lock <mu> (a <x>.<mu>.Lock() or RLock() call
//     somewhere in the function) or that declare the caller holds it by
//     ending their name in "Locked". Everything else is a data race waiting
//     for -race to get lucky.
//
//  2. Expensive calls — pool sweeps, drift pricing, outbound HTTP — must not
//     run while a mutex is held. Holding a lock across a pool-sized sweep
//     serializes every other goroutine touching the structure; this is the
//     deltaMu class fixed in ae926f8, where LastDrift priced drift against
//     the live pool while the delta mutex was held.
//
// The held-mutex tracking is a linear, source-order approximation: Lock()
// adds, Unlock() removes, deferred Unlock keeps the mutex held to the end of
// the function, and goroutine bodies and other function literals start with
// an empty held set. It is a lint heuristic, not an escape analysis — the
// //srlint:lockscope directive exists for the cases it gets wrong.
package lockscope

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"stablerank/internal/lint"
)

// DefaultExpensive lists substrings matched against a callee's full
// type-qualified name; a hit while any mutex is held is flagged. The
// defaults cover the repo's pool-scale sweeps and outbound HTTP.
var DefaultExpensive = []string{
	"LastDrift",
	"VerifyBatch",
	"BuildPool",
	"ParallelEstimate",
	"net/http.Client",
}

// New returns the lockscope analyzer. expensive overrides DefaultExpensive
// when non-empty.
func New(expensive ...string) *lint.Analyzer {
	if len(expensive) == 0 {
		expensive = DefaultExpensive
	}
	return &lint.Analyzer{
		Name: "lockscope",
		Doc: "enforces 'guarded by <mu>' field comments and flags expensive calls " +
			"(pool sweeps, drift pricing, HTTP) made while a mutex is held",
		Run: func(pass *lint.Pass) { run(pass, expensive) },
	}
}

func run(pass *lint.Pass, expensive []string) {
	guarded := collectGuarded(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGuardedAccess(pass, guarded, fn)
			checkHeldCalls(pass, fn.Body, expensive, nil)
		}
	}
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// collectGuarded maps struct field objects to the mutex name their
// "// guarded by <mu>" comment declares.
func collectGuarded(pass *lint.Pass) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardComment(field.Doc)
				if mu == "" {
					mu = guardComment(field.Comment)
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

func guardComment(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
		return m[1]
	}
	return ""
}

// checkGuardedAccess flags selector accesses to guarded fields from
// functions that neither lock the named mutex anywhere in their body nor
// carry the "Locked" suffix convention.
func checkGuardedAccess(pass *lint.Pass, guarded map[types.Object]string, fn *ast.FuncDecl) {
	if len(guarded) == 0 {
		return
	}
	name := fn.Name.Name
	if strings.HasSuffix(name, "Locked") || strings.HasSuffix(name, "locked") {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		mu, ok := guarded[selection.Obj()]
		if !ok {
			return true
		}
		if locksNamed(fn.Body, mu) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"field %s is guarded by %s, but %s neither locks %s nor is named with a Locked suffix (//srlint:lockscope <reason> to justify)",
			selection.Obj().Name(), mu, name, mu)
		return true
	})
}

// locksNamed reports whether the body contains a call of the shape
// <anything>.<mu>.Lock() or <anything>.<mu>.RLock().
func locksNamed(body *ast.BlockStmt, mu string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.SelectorExpr:
			found = x.Sel.Name == mu
		case *ast.Ident:
			found = x.Name == mu
		}
		return !found
	})
	return found
}

// checkHeldCalls walks a function body in source order, tracking which
// mutexes are held, and flags expensive calls made while any are. Function
// literals restart with an empty held set (they typically run on another
// goroutine or after the critical section).
func checkHeldCalls(pass *lint.Pass, body *ast.BlockStmt, expensive []string, held map[string]bool) {
	if held == nil {
		held = make(map[string]bool)
	}
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.DeferStmt:
			// A deferred Unlock keeps the mutex held for the rest of the
			// function; don't let the Unlock inside it clear the set.
			if mutexOp(pass, n.Call) != "" {
				return false
			}
			return true
		case *ast.CallExpr:
			switch op, key := mutexOpKey(pass, n); op {
			case "Lock", "RLock":
				held[key] = true
				return true
			case "Unlock", "RUnlock":
				delete(held, key)
				return true
			}
			if len(held) == 0 {
				return true
			}
			if name := expensiveCallee(pass, n, expensive); name != "" {
				pass.Reportf(n.Pos(),
					"call to %s while holding %s: expensive work under a mutex serializes everyone contending for it; "+
						"move the call outside the critical section (//srlint:lockscope <reason> to justify)",
					name, heldNames(held))
			}
		}
		return true
	})
	for _, lit := range lits {
		checkHeldCalls(pass, lit.Body, expensive, nil)
	}
}

// mutexOp returns the Lock/Unlock/RLock/RUnlock method name if the call is
// one on a sync.Mutex or sync.RWMutex, else "".
func mutexOp(pass *lint.Pass, call *ast.CallExpr) string {
	op, _ := mutexOpKey(pass, call)
	return op
}

func mutexOpKey(pass *lint.Pass, call *ast.CallExpr) (op, key string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	if !isMutex(pass.TypeOf(sel.X)) {
		return "", ""
	}
	return sel.Sel.Name, types.ExprString(sel.X)
}

func isMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// expensiveCallee returns the callee's full name if it matches the expensive
// list, else "".
func expensiveCallee(pass *lint.Pass, call *ast.CallExpr, expensive []string) string {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		if selection, ok := pass.Info.Selections[fun]; ok {
			obj = selection.Obj()
		} else {
			obj = pass.Info.Uses[fun.Sel]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	full := fn.FullName()
	for _, pat := range expensive {
		if strings.Contains(full, pat) {
			return full
		}
	}
	return ""
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for name := range held {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
