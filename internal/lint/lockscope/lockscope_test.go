package lockscope

import (
	"testing"

	"stablerank/internal/lint/linttest"
)

func TestLockscope(t *testing.T) {
	linttest.Run(t, "testdata/src/a", New())
}

// TestDeltaMuRegression pins the PR 9 review bug (fixed in ae926f8): drift
// was priced by a full pool sweep while deltaMu was held. The buggy shape
// must be flagged and the price-then-lock rewrite must pass clean.
func TestDeltaMuRegression(t *testing.T) {
	linttest.Run(t, "testdata/src/deltamu", New())
}
