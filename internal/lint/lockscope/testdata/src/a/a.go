// Package a exercises both halves of the lockscope analyzer: "guarded by"
// field-comment enforcement and expensive-call-while-locked detection.
package a

import "sync"

type store struct {
	mu    sync.Mutex
	items map[string]int // guarded by mu
	free  int
}

// get visibly locks mu, so the guarded access is fine.
func (s *store) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[k]
}

// peek touches the guarded field with no lock in sight.
func (s *store) peek(k string) int {
	return s.items[k] // want `field items is guarded by mu`
}

// sizeLocked declares via the suffix convention that its caller holds mu.
func (s *store) sizeLocked() int {
	return len(s.items)
}

// spare reads an unguarded field; no annotation, no finding.
func (s *store) spare() int { return s.free }

// approxSize is a deliberate unlocked read, justified.
func (s *store) approxSize() int {
	return len(s.items) //srlint:lockscope approximate size for metrics only; torn reads acceptable
}

// BuildPool stands in for the repo's pool-scale sweep; its name is on the
// default expensive list.
func BuildPool() {}

// rebuild runs the sweep inside the critical section.
func (s *store) rebuild() {
	s.mu.Lock()
	BuildPool() // want `call to .*BuildPool while holding s\.mu`
	s.mu.Unlock()
}

// rebuildOutside releases the lock first.
func (s *store) rebuildOutside() {
	s.mu.Lock()
	s.free = 0
	s.mu.Unlock()
	BuildPool()
}

// rebuildDeferred: a deferred Unlock holds the mutex to function exit, so
// the sweep still runs locked.
func (s *store) rebuildDeferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	BuildPool() // want `call to .*BuildPool while holding s\.mu`
}

// rebuildAsync hands the sweep to a goroutine; the goroutine body starts
// with an empty held set.
func (s *store) rebuildAsync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		BuildPool()
	}()
}

// rebuildJustified keeps the sweep under the lock on purpose.
func (s *store) rebuildJustified() {
	s.mu.Lock()
	defer s.mu.Unlock()
	BuildPool() //srlint:lockscope startup path, nothing else contends for mu yet
}
