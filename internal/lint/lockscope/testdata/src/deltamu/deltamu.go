// Package deltamu is the regression fixture distilled from the PR 9 review
// bug fixed in ae926f8: delta application priced drift via LastDrift — a
// full pool sweep — while still holding deltaMu, serializing every
// concurrent delta and query behind one sweep. lockscope must flag the old
// shape; the price-then-lock rewrite must pass clean.
package deltamu

import "sync"

type pool struct{ n int }

// LastDrift sweeps the whole pool to price drift; it is on the default
// expensive-call list.
func (p *pool) LastDrift() float64 {
	return float64(p.n)
}

type deltaState struct {
	deltaMu sync.Mutex
	drift   float64
}

// applyBuggy is the pre-ae926f8 shape: the sweep runs inside the critical
// section.
func (d *deltaState) applyBuggy(p *pool) {
	d.deltaMu.Lock()
	defer d.deltaMu.Unlock()
	d.drift = p.LastDrift() // want `call to .*LastDrift.* while holding d\.deltaMu`
}

// applyFixed is the ae926f8 rewrite: price the drift first, take the lock
// only to publish the number.
func (d *deltaState) applyFixed(p *pool) {
	drift := p.LastDrift()
	d.deltaMu.Lock()
	defer d.deltaMu.Unlock()
	d.drift = drift
}
