package detrange

import (
	"testing"

	"stablerank/internal/lint/linttest"
)

func TestDetrange(t *testing.T) {
	linttest.Run(t, "testdata/src/a", New("*"))
}

// TestDriftPickRegression pins the PR 9 review bug (fixed in ae926f8) as a
// permanent fixture: selecting the drift analyzer by map-iteration order
// must be flagged, and the sorted-smallest-key fix must pass clean.
func TestDriftPickRegression(t *testing.T) {
	linttest.Run(t, "testdata/src/driftpick", New("*"))
}

// TestPackageScope: outside the determinism-critical package list the
// analyzer stays silent, so the rest of the tree can use maps freely.
func TestPackageScope(t *testing.T) {
	linttest.Run(t, "testdata/src/scoped", New("some/other/pkg"))
}
