// Package a exercises the detrange analyzer: plain map ranges are flagged,
// the collect-and-sort idiom passes, justified //srlint:ordered directives
// suppress, and unjustified ones are themselves findings.
package a

import (
	"sort"
)

func plainRange(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map m iterates in runtime-randomized order`
		total += v
	}
	return total
}

func collectAndSort(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func collectWithFilterGuard(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for k, v := range m {
		if v == 0 {
			continue
		}
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func collectWithoutSort(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for k := range m { // want `range over map m iterates`
		names = append(names, k)
	}
	return names
}

func sideEffectBody(m map[string]int, sink func(string)) []string {
	names := make([]string, 0, len(m))
	for k := range m { // want `range over map m iterates`
		sink(k)
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func justified(m map[string]int) int {
	total := 0
	//srlint:ordered summation is commutative; order never escapes
	for _, v := range m {
		total += v
	}
	return total
}

func justifiedTrailing(m map[string]int) {
	for k := range m { //srlint:ordered delete set is order-independent
		delete(m, k)
	}
}

func sliceRangeIsFine(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

func multiReadySelect(a, b chan int) int {
	select { // want `select with 2 communication cases picks a ready case pseudorandomly`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func singleCaseSelect(stop chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}
