// Package scoped holds a map range that detrange must ignore when the
// package is not on the determinism-critical list.
package scoped

func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
