// Package driftpick is the regression fixture distilled from the PR 9
// review bug fixed in ae926f8: analyzerPool.applyDeltas picked "the first
// migrated analyzer" while ranging over the resident-entries map, so the
// analyzer that priced published drift numbers depended on map iteration
// order — different on every run. detrange must flag the selection loop.
package driftpick

import "sort"

type analyzer struct {
	key  string
	full bool
}

type pool struct {
	entries map[string]*analyzer
}

// firstByIteration is the buggy shape: the "first" match depends on
// runtime-randomized map order.
func (p *pool) firstByIteration() *analyzer {
	for _, a := range p.entries { // want `range over map p.entries iterates in runtime-randomized order`
		if a.full {
			return a
		}
	}
	return nil
}

// smallestKey is the ae926f8 fix: collect the keys, sort them, and take the
// deterministic minimum.
func (p *pool) smallestKey() *analyzer {
	keys := make([]string, 0, len(p.entries))
	for k := range p.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if a := p.entries[k]; a.full {
			return a
		}
	}
	return nil
}
