// Package detrange enforces the repo's bit-determinism contract: same seed
// ⇒ same pool ⇒ same rankings, for any worker count. Go randomizes both map
// iteration order and the choice among ready select cases, so inside the
// determinism-critical packages a `range` over a map (or a select with two
// or more ready communication cases) is an ordering decision the runtime
// makes differently on every run — the exact class of bug that made PR 9's
// drift-analyzer selection depend on which map entry happened to come first.
//
// A map range is accepted when it provably only collects keys or values into
// a slice that the same function sorts afterwards (the collect-and-sort
// idiom); everything else needs either a rewrite or a justified
// //srlint:ordered directive explaining why ordering cannot escape.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"stablerank/internal/lint"
)

// DefaultPackages are the determinism-critical import paths: the Monte-Carlo
// and ranking engines whose outputs are promised bit-identical across runs
// and worker counts, the query planner, and the server/cluster layers whose
// JSON renderings and peer fan-outs are pinned byte-stable by tests.
var DefaultPackages = []string{
	"stablerank",
	"stablerank/internal/mc",
	"stablerank/internal/md",
	"stablerank/internal/rank",
	"stablerank/internal/plan",
	"stablerank/internal/core",
	"stablerank/internal/vecmat",
	"stablerank/internal/twod",
	"stablerank/internal/cluster",
	"stablerank/server",
}

// New returns the detrange analyzer restricted to the given import paths.
// No paths means DefaultPackages; the single pattern "*" means every
// package (used by fixtures and one-off audits).
func New(pkgs ...string) *lint.Analyzer {
	if len(pkgs) == 0 {
		pkgs = DefaultPackages
	}
	return &lint.Analyzer{
		Name:      "detrange",
		Directive: "ordered",
		Doc: "flags nondeterministic iteration (map range, multi-ready select) in determinism-critical packages; " +
			"collect-and-sort loops pass, anything else needs //srlint:ordered <reason>",
		Run: func(pass *lint.Pass) { run(pass, pkgs) },
	}
}

func run(pass *lint.Pass, pkgs []string) {
	if !critical(pass.Pkg.Path(), pkgs) {
		return
	}
	for _, f := range pass.Files {
		funcs := collectFuncs(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				if fn := enclosing(funcs, n.Pos()); fn != nil && collectsAndSorts(pass, fn, n) {
					return true
				}
				pass.Reportf(n.Pos(),
					"range over map %s iterates in runtime-randomized order in a determinism-critical package; "+
						"iterate sorted keys (or justify with //srlint:ordered <reason>)",
					types.ExprString(n.X))
			case *ast.SelectStmt:
				ready := 0
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						ready++
					}
				}
				if ready >= 2 {
					pass.Reportf(n.Pos(),
						"select with %d communication cases picks a ready case pseudorandomly; "+
							"order the operations explicitly (or justify with //srlint:ordered <reason>)", ready)
				}
			}
			return true
		})
	}
}

func critical(path string, pkgs []string) bool {
	for _, p := range pkgs {
		if p == "*" || p == path {
			return true
		}
	}
	return false
}

// funcBody is one function scope: the node delimiting it and its body.
type funcBody struct {
	pos, end token.Pos
	body     *ast.BlockStmt
}

func collectFuncs(f *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, funcBody{n.Pos(), n.End(), n.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{n.Pos(), n.End(), n.Body})
		}
		return true
	})
	return out
}

// enclosing returns the innermost function containing pos.
func enclosing(funcs []funcBody, pos token.Pos) *funcBody {
	var best *funcBody
	for i := range funcs {
		fn := &funcs[i]
		if fn.pos <= pos && pos < fn.end {
			if best == nil || fn.pos > best.pos {
				best = fn
			}
		}
	}
	return best
}

// collectsAndSorts recognizes the one deterministic map-range idiom accepted
// without a directive: every statement in the loop body appends the key or
// value to a slice (filter guards of the form `if cond { continue }` are
// allowed), and every such slice is passed to a sort.* or slices.Sort* call
// after the loop in the same function.
func collectsAndSorts(pass *lint.Pass, fn *funcBody, rs *ast.RangeStmt) bool {
	targets := make(map[types.Object]bool)
	for _, st := range rs.Body.List {
		switch s := st.(type) {
		case *ast.AssignStmt:
			obj := appendTarget(pass, s)
			if obj == nil {
				return false
			}
			targets[obj] = true
		case *ast.IfStmt:
			if !isFilterGuard(s) {
				return false
			}
		default:
			return false
		}
	}
	if len(targets) == 0 {
		return false
	}
	for obj := range targets { //srlint:ordered membership check only; no order-dependent effect
		if !sortedAfter(pass, fn, rs.End(), obj) {
			return false
		}
	}
	return true
}

// appendTarget returns the object of x in `x = append(x, ...)`, else nil.
func appendTarget(pass *lint.Pass, s *ast.AssignStmt) types.Object {
	if s.Tok != token.ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return nil
	}
	if b, ok := pass.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.Info.Uses[first] != pass.Info.Uses[lhs] && pass.Info.Uses[first] != pass.Info.Defs[lhs] {
		return nil
	}
	if obj := pass.Info.Uses[lhs]; obj != nil {
		return obj
	}
	return pass.Info.Defs[lhs]
}

// isFilterGuard accepts `if cond { continue }` (any condition, body exactly
// one continue) so collect loops may skip entries.
func isFilterGuard(s *ast.IfStmt) bool {
	if s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	b, ok := s.Body.List[0].(*ast.BranchStmt)
	return ok && b.Tok == token.CONTINUE
}

// sortedAfter reports whether obj is passed to a sort call after pos within
// the function body.
func sortedAfter(pass *lint.Pass, fn *funcBody, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(fn.body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}

var sortFuncs = map[string]map[string]bool{
	"sort":   {"Strings": true, "Ints": true, "Float64s": true, "Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

func isSortCall(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[pkgID].(*types.PkgName)
	if !ok {
		return false
	}
	names, ok := sortFuncs[pn.Imported().Path()]
	return ok && names[sel.Sel.Name]
}
