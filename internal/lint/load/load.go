// Package load builds type-checked syntax trees for Go packages without
// depending on golang.org/x/tools. It shells out to `go list -export` for
// package discovery and compiled export data (the go command produces both
// offline), parses the target packages' sources with go/parser, and
// type-checks them with go/types against the export data of their
// dependencies — the same pipeline go/packages runs in LoadTypes|LoadSyntax
// mode, reduced to what the srlint analyzers need.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	Path  string // import path
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // parsed GoFiles, with comments
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Packages loads and type-checks the packages matching patterns, resolving
// imports through the export data `go list -export` emits for every
// transitive dependency. dir is the working directory for the go command
// (the module the patterns are relative to); empty means the current one.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, lp := range targets {
		filenames := make([]string, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			filenames = append(filenames, filepath.Join(lp.Dir, name))
		}
		pkg, err := typecheck(fset, imp, lp.ImportPath, lp.Dir, filenames)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// FromFiles parses and type-checks a single package from an explicit file
// list, resolving imports through lookup (an opener of compiled export data
// keyed by import path). This is the entry point for driving analyzers from
// a `go vet -vettool` unit config, where the go command has already planned
// the build and hands us the file and export-data lists directly.
func FromFiles(importPath, dir string, goFiles []string, lookup func(path string) (io.ReadCloser, error)) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)
	return typecheck(fset, imp, importPath, dir, goFiles)
}

func typecheck(fset *token.FileSet, imp types.Importer, importPath, dir string, filenames []string) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if len(typeErrs) < 10 {
				typeErrs = append(typeErrs, err.Error())
			}
		},
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s:\n\t%s", importPath, strings.Join(typeErrs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Name:  tpkg.Name(),
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
