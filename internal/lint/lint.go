// Package lint is a small, dependency-free analysis framework in the shape
// of golang.org/x/tools/go/analysis, carrying the project's determinism and
// concurrency invariants as mechanical checks. Each Analyzer inspects one
// type-checked package (loaded by internal/lint/load) and reports findings;
// the driver applies //srlint: suppression directives, so every exception to
// an invariant is written down next to the code it excuses.
//
// The invariants themselves (why map iteration, latched once-errors, and
// expensive work under mutexes are bugs here) are documented on the
// individual analyzers in the sibling packages detrange, onceerr, lockscope,
// and ctxflow.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"stablerank/internal/lint/load"
)

// Analyzer is one invariant check over a single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in findings and selects it on the
	// srlint command line.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Directive is the //srlint:<Directive> name that suppresses this
	// analyzer's findings at a site. Empty means Name.
	Directive string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// DirectiveName returns the suppression directive for the analyzer.
func (a *Analyzer) DirectiveName() string {
	if a.Directive != "" {
		return a.Directive
	}
	return a.Name
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is Info.TypeOf with a nil guard for robustness in analyzers.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// Finding is one reported invariant violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Suppression is one //srlint: directive site and how many findings it
// absorbed. Directives are themselves counted so `srlint -stats` can report
// how much of the tree lives on justified exceptions.
type Suppression struct {
	Pos    token.Position
	Name   string // directive name, e.g. "ordered"
	Reason string
	Hits   int
}

// Result is the outcome of running a set of analyzers over a set of
// packages: the surviving findings (position-sorted) and every suppression
// directive encountered.
type Result struct {
	Findings     []Finding
	Suppressions []Suppression
}

// directivePrefix introduces a suppression comment: //srlint:<name> <reason>.
const directivePrefix = "//srlint:"

// directive is one parsed //srlint: comment.
type directive struct {
	pos    token.Position
	name   string
	reason string
	hits   int
}

// parseDirectives scans a file's comments for //srlint: directives, keyed by
// the line they justify: a trailing directive suppresses its own line, a
// directive alone on a line suppresses the line below.
func parseDirectives(fset *token.FileSet, f *ast.File) []*directive {
	var ds []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			name, reason, _ := strings.Cut(rest, " ")
			ds = append(ds, &directive{
				pos:    fset.Position(c.Pos()),
				name:   name,
				reason: strings.TrimSpace(reason),
			})
		}
	}
	return ds
}

// suppresses reports whether d excuses a finding by an analyzer with
// directive name at line in the same file.
func (d *directive) suppresses(name string, file string, line int) bool {
	return d.name == name && d.reason != "" && d.pos.Filename == file &&
		(d.pos.Line == line || d.pos.Line == line-1)
}

// Run executes the analyzers over each package, validates and applies
// //srlint: directives, and returns surviving findings plus the suppression
// census. Directive misuse (an unknown name, or a directive with no reason)
// is itself a finding: an unexplained exception is exactly the rot these
// checks exist to stop.
func Run(pkgs []*load.Package, analyzers []*Analyzer) Result {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.DirectiveName()] = true
	}

	var res Result
	for _, pkg := range pkgs {
		var findings []Finding
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				findings: &findings,
			}
			a.Run(pass)
		}

		var directives []*directive
		for _, f := range pkg.Files {
			directives = append(directives, parseDirectives(pkg.Fset, f)...)
		}
		for _, d := range directives {
			switch {
			case !known[d.name]:
				findings = append(findings, Finding{
					Analyzer: "srlint",
					Pos:      d.pos,
					Message: fmt.Sprintf("unknown directive %q (known: %s)",
						directivePrefix+d.name, strings.Join(directiveNames(analyzers), ", ")),
				})
			case d.reason == "":
				findings = append(findings, Finding{
					Analyzer: "srlint",
					Pos:      d.pos,
					Message:  fmt.Sprintf("%s%s requires a non-empty justification", directivePrefix, d.name),
				})
			}
		}

		byName := make(map[string]string, len(analyzers)) // analyzer -> directive
		for _, a := range analyzers {
			byName[a.Name] = a.DirectiveName()
		}
		for _, f := range findings {
			dname := byName[f.Analyzer]
			suppressed := false
			for _, d := range directives {
				if dname != "" && d.suppresses(dname, f.Pos.Filename, f.Pos.Line) {
					d.hits++
					suppressed = true
					break
				}
			}
			if !suppressed {
				res.Findings = append(res.Findings, f)
			}
		}
		for _, d := range directives {
			res.Suppressions = append(res.Suppressions, Suppression{
				Pos: d.pos, Name: d.name, Reason: d.reason, Hits: d.hits,
			})
		}
	}

	sort.Slice(res.Findings, func(i, j int) bool { return posLess(res.Findings[i].Pos, res.Findings[j].Pos) })
	sort.Slice(res.Suppressions, func(i, j int) bool { return posLess(res.Suppressions[i].Pos, res.Suppressions[j].Pos) })
	return res
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func directiveNames(analyzers []*Analyzer) []string {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.DirectiveName())
	}
	sort.Strings(names)
	return names
}
