// Package directives exercises the driver's handling of //srlint: misuse:
// an empty-reason directive must not suppress anything and must itself be a
// finding, an unknown directive name must be a finding, and a well-formed
// directive must suppress exactly one finding and be counted.
package directives

func sum(m map[string]int) int {
	t := 0
	for _, v := range m { //srlint:ordered
		t += v
	}
	for _, v := range m { //srlint:nosuchcheck accumulation is commutative
		t += v
	}
	for _, v := range m { //srlint:ordered integer addition is commutative
		t += v
	}
	return t
}
