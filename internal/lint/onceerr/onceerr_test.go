package onceerr

import (
	"testing"

	"stablerank/internal/lint/linttest"
)

func TestOnceErr(t *testing.T) {
	linttest.Run(t, "testdata/src/a", New())
}

// TestLatchRegression pins the PR 9 review bug (fixed in ae926f8): the
// sync.Once in deltaRecord.pass latched a context-cancellation error for the
// record's lifetime. The buggy shape must be flagged and the fixed shape
// must pass clean.
func TestLatchRegression(t *testing.T) {
	linttest.Run(t, "testdata/src/latch", New())
}
