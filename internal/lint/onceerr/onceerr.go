// Package onceerr flags sync.Once closures that latch a context-derived
// error into state outside the closure. A sync.Once runs its function
// exactly once per lifetime — if the first caller arrives with an
// already-cancelled (or mid-flight-cancelled) context and the closure stores
// the resulting error, every later caller with a perfectly healthy context
// replays that cancellation forever. This is the exact bug fixed in ae926f8:
// deltaRecord.pass latched ctx.Err() through a sync.Once, so one cancelled
// LastDrift poisoned the delta record for good. The fix shape is a mutex
// plus a done flag that declines to latch when ctx.Err() != nil, or
// returning the error without storing it.
//
// Heuristic: a closure passed to (sync.Once).Do, sync.OnceFunc,
// sync.OnceValue, or sync.OnceValues is flagged when it (a) uses a
// context.Context and (b) assigns an error-typed value to a variable or
// field declared outside the closure (or, for OnceValue/OnceValues, returns
// an error type, which the runtime latches for you).
package onceerr

import (
	"go/ast"
	"go/types"

	"stablerank/internal/lint"
)

// New returns the onceerr analyzer.
func New() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "onceerr",
		Doc: "flags sync.Once closures that capture a context-derived error into outer state: " +
			"a cancelled first call is replayed to every later caller",
		Run: run,
	}
}

func run(pass *lint.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			lit, kind := onceClosure(pass, call)
			if lit == nil {
				return true
			}
			if !usesContext(pass, lit) {
				return true
			}
			for _, assign := range latchingAssignments(pass, lit) {
				pass.Reportf(assign.Pos(),
					"%s latches this error for the lifetime of the Once, and the closure uses a context.Context: "+
						"a cancelled first call would be replayed to every later caller; "+
						"return the error without storing it, or guard the latch on ctx.Err() == nil (//srlint:onceerr to justify)",
					kind)
			}
			if kind != "(*sync.Once).Do" && returnsError(pass, lit) {
				pass.Reportf(lit.Pos(),
					"%s memoizes this closure's error result, and the closure uses a context.Context: "+
						"a cancelled first call would be replayed to every later caller (//srlint:onceerr to justify)",
					kind)
			}
			return true
		})
	}
}

// onceClosure returns the func literal handed to a sync.Once-family call and
// which API it was: (*sync.Once).Do, sync.OnceFunc, sync.OnceValue, or
// sync.OnceValues.
func onceClosure(pass *lint.Pass, call *ast.CallExpr) (*ast.FuncLit, string) {
	if len(call.Args) != 1 {
		return nil, ""
	}
	lit, ok := call.Args[0].(*ast.FuncLit)
	if !ok {
		return nil, ""
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok {
			if m, ok := sel.Obj().(*types.Func); ok && m.FullName() == "(*sync.Once).Do" {
				return lit, "(*sync.Once).Do"
			}
			return nil, ""
		}
		// Package-qualified call: sync.OnceFunc and friends.
		if obj, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "OnceFunc", "OnceValue", "OnceValues":
				return lit, "sync." + obj.Name()
			}
		}
	}
	return nil, ""
}

// usesContext reports whether the closure uses a context.Context captured
// from outside it — a caller-specific context whose cancellation could be
// latched. Contexts minted inside the closure (context.Background() and the
// like) don't count: they can't carry a first caller's deadline.
func usesContext(pass *lint.Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if !isContext(pass.TypeOf(e)) {
			return true
		}
		if root := rootIdent(e); root != nil && declaredOutside(pass, root, lit) {
			found = true
		}
		return !found
	})
	return found
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// latchingAssignments returns assignments inside the closure whose target is
// an error-typed variable or field rooted outside the closure.
func latchingAssignments(pass *lint.Pass, lit *ast.FuncLit) []*ast.AssignStmt {
	var out []*ast.AssignStmt
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // a nested closure is somebody else's latch
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			if !isError(pass.TypeOf(lhs)) {
				continue
			}
			if root := rootIdent(lhs); root != nil && declaredOutside(pass, root, lit) {
				out = append(out, assign)
				break
			}
		}
		return true
	})
	return out
}

// returnsError reports whether the closure's result list includes an
// error-typed result (OnceValue/OnceValues latch results themselves).
func returnsError(pass *lint.Pass, lit *ast.FuncLit) bool {
	if lit.Type.Results == nil {
		return false
	}
	for _, field := range lit.Type.Results.List {
		if isError(pass.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isError(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// rootIdent walks x.y.z / x[i] chains down to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether id's object is declared outside the
// closure's extent (a captured variable, receiver, or parameter of the
// enclosing function).
func declaredOutside(pass *lint.Pass, id *ast.Ident, lit *ast.FuncLit) bool {
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
}
