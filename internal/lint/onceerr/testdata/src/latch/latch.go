// Package latch is the regression fixture distilled from the PR 9 review bug
// fixed in ae926f8: deltaRecord.pass ran its scoring pass under a sync.Once
// and stored the pass error alongside the stats. The first caller to arrive
// with a cancelled context latched context.Canceled into the record, and
// every later caller — healthy context or not — got the cancellation
// replayed. onceerr must flag the old shape; the mutex-plus-done-flag
// rewrite (which declines to latch a ctx-derived failure) must pass clean.
package latch

import (
	"context"
	"sync"
)

type record struct {
	passOnce sync.Once
	passMu   sync.Mutex
	passDone bool
	passErr  error
	stats    []float64
}

func scorePass(ctx context.Context) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return []float64{1}, nil
}

// pass is the pre-ae926f8 shape: one cancelled caller poisons the record.
func (r *record) pass(ctx context.Context) ([]float64, error) {
	r.passOnce.Do(func() {
		r.stats, r.passErr = scorePass(ctx) // want `latches this error for the lifetime of the Once`
	})
	return r.stats, r.passErr
}

// passFixed is the ae926f8 rewrite: a mutex and a done flag, and a
// ctx-derived failure is returned to its caller without being latched.
func (r *record) passFixed(ctx context.Context) ([]float64, error) {
	r.passMu.Lock()
	defer r.passMu.Unlock()
	if r.passDone {
		return r.stats, r.passErr
	}
	stats, err := scorePass(ctx)
	if err != nil {
		return nil, err
	}
	r.stats, r.passDone = stats, true
	return r.stats, nil
}
