// Package a exercises the onceerr analyzer: sync.Once-family closures that
// use a context and latch an error into outer state must be flagged;
// ctx-free or latch-free uses must stay silent.
package a

import (
	"context"
	"sync"
)

func work(ctx context.Context) error { return ctx.Err() }

type holder struct {
	once sync.Once
	err  error
	n    int
}

// latchField: the classic bug — a ctx-derived error stored in a field.
func (h *holder) latchField(ctx context.Context) error {
	h.once.Do(func() {
		h.err = work(ctx) // want `latches this error for the lifetime of the Once`
	})
	return h.err
}

// latchOuterVar: same bug with a captured local instead of a field.
func latchOuterVar(ctx context.Context) error {
	var once sync.Once
	var err error
	once.Do(func() {
		err = work(ctx) // want `latches this error for the lifetime of the Once`
	})
	return err
}

// noContext: latching an error is fine when no context is involved — the
// result can't encode a caller-specific cancellation.
func (h *holder) noContext() error {
	h.once.Do(func() {
		h.err = work(context.Background())
	})
	return h.err
}

// noLatch: uses ctx but only stores a non-error value.
func (h *holder) noLatch(ctx context.Context) int {
	h.once.Do(func() {
		if work(ctx) == nil {
			h.n = 1
		}
	})
	return h.n
}

// localError: the error never escapes the closure.
func (h *holder) localError(ctx context.Context) {
	h.once.Do(func() {
		if err := work(ctx); err == nil {
			h.n++
		}
	})
}

// onceValue: sync.OnceValue memoizes the closure's results itself, so a
// ctx-using closure returning error is the same latch.
func onceValue(ctx context.Context) func() error {
	return sync.OnceValue(func() error { // want `memoizes this closure's error result`
		return work(ctx)
	})
}

// onceFunc: latching through sync.OnceFunc into a captured variable.
func onceFunc(ctx context.Context) (func(), *error) {
	var err error
	f := sync.OnceFunc(func() {
		err = work(ctx) // want `latches this error for the lifetime of the Once`
	})
	return f, &err
}

// justified: the latch is intentional (e.g. the ctx is the process-lifetime
// root), so a reasoned directive silences it.
func (h *holder) justified(ctx context.Context) error {
	h.once.Do(func() {
		h.err = work(ctx) //srlint:onceerr ctx is the process root context, never cancelled before shutdown
	})
	return h.err
}
