package ctxflow

import (
	"testing"

	"stablerank/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, "testdata/src/a", New())
}

// TestMainExempt: package main is where root contexts belong; the analyzer
// must stay silent there.
func TestMainExempt(t *testing.T) {
	linttest.Run(t, "testdata/src/mainpkg", New())
}
