// Package a exercises the ctxflow analyzer: mid-stack context roots and
// struct-stored contexts are flagged; parameter plumbing is clean.
package a

import "context"

// detached mints its own root mid-stack.
func detached() error {
	ctx := context.Background() // want `context\.Background\(\) outside package main`
	return work(ctx)
}

// todoStub parks a TODO that will never get cleaned up.
func todoStub() error {
	return work(context.TODO()) // want `context\.TODO\(\) outside package main`
}

// plumbed accepts its context like everything should.
func plumbed(ctx context.Context) error {
	return work(ctx)
}

func work(ctx context.Context) error { return ctx.Err() }

type badJob struct {
	ctx  context.Context // want `context\.Context stored in a struct field`
	name string
}

type goodJob struct {
	name string
}

func (j *badJob) run() error                     { return work(j.ctx) }
func (j *goodJob) run(ctx context.Context) error { return work(ctx) }

// justified: a detached root for background maintenance, with a reason.
func maintenance() error {
	ctx := context.Background() //srlint:ctxflow maintenance loop owns its own lifetime, detached from any request
	return work(ctx)
}

var _ = badJob{}
