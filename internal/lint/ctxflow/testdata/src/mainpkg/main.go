// Command mainpkg shows the package-main exemption: root contexts
// legitimately live here.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error { return ctx.Err() }
