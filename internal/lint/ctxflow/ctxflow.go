// Package ctxflow enforces context plumbing discipline: contexts flow down
// call chains as parameters from a root owned by main. Minting
// context.Background() or context.TODO() mid-stack detaches the work below
// it from caller cancellation, and storing a context in a struct field
// freezes one request's deadline into state that outlives the request.
// Package main (and tests, which the loader never analyzes) are exempt:
// that is where roots legitimately live.
package ctxflow

import (
	"go/ast"
	"go/types"

	"stablerank/internal/lint"
)

// New returns the ctxflow analyzer.
func New() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "ctxflow",
		Doc: "flags context.Background()/TODO() outside package main and " +
			"context.Context stored in struct fields",
		Run: run,
	}
}

func run(pass *lint.Pass) {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isMain {
					return true
				}
				if name := rootCtor(pass, n); name != "" {
					pass.Reportf(n.Pos(),
						"context.%s() outside package main detaches this call tree from caller cancellation; "+
							"accept a ctx parameter instead (//srlint:ctxflow <reason> to justify)",
						name)
				}
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if !isContext(pass.TypeOf(field.Type)) {
						continue
					}
					pos := field.Type.Pos()
					if len(field.Names) > 0 {
						pos = field.Names[0].Pos()
					}
					pass.Reportf(pos,
						"context.Context stored in a struct field outlives the request that created it; "+
							"pass ctx as a parameter instead (//srlint:ctxflow <reason> to justify)")
				}
			}
			return true
		})
	}
}

// rootCtor returns "Background" or "TODO" if the call is the corresponding
// context constructor, else "".
func rootCtor(pass *lint.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return ""
	}
	switch obj.Name() {
	case "Background", "TODO":
		return obj.Name()
	}
	return ""
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
