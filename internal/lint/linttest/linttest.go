// Package linttest runs lint analyzers over testdata fixture packages and
// checks their findings against // want "regexp" comments, in the manner of
// golang.org/x/tools/go/analysis/analysistest: a finding must land on the
// exact line of a matching want comment, every want comment must be hit, and
// anything else fails the test. Fixtures may carry //srlint: directives, so
// suppression behavior is under test too.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"stablerank/internal/lint"
	"stablerank/internal/lint/load"
)

// Run loads the fixture package at pkgdir (relative to the test's working
// directory, e.g. "testdata/src/a"), runs the analyzers over it through the
// directive-aware driver, and diffs findings against // want comments.
func Run(t *testing.T, pkgdir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkgs, err := load.Packages("", "./"+strings.TrimPrefix(pkgdir, "./"))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgdir, err)
	}
	res := lint.Run(pkgs, analyzers)

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ws, err := parseWants(pkg.Fset, f)
			if err != nil {
				t.Fatalf("fixture %s: %v", pkgdir, err)
			}
			wants = append(wants, ws...)
		}
	}

	for _, f := range res.Findings {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// parseWants extracts // want "re" ["re" ...] comments. The expectation
// anchors to the line the comment sits on.
func parseWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(text)
			for rest != "" {
				if rest[0] != '"' && rest[0] != '`' {
					return nil, fmt.Errorf("%s: malformed want comment (expected quoted regexp): %s", pos, c.Text)
				}
				q, err := strconv.QuotedPrefix(rest)
				if err != nil {
					return nil, fmt.Errorf("%s: malformed want comment: %v", pos, err)
				}
				pat, _ := strconv.Unquote(q)
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				rest = strings.TrimSpace(rest[len(q):])
			}
		}
	}
	return wants, nil
}
