package lint_test

import (
	"strings"
	"testing"

	"stablerank/internal/lint"
	"stablerank/internal/lint/detrange"
	"stablerank/internal/lint/load"
)

// TestDirectiveMisuse checks the driver's directive validation directly
// (want-comments can't express these cases: a directive comment runs to end
// of line, so a same-line want would become part of its reason). The fixture
// has three map-range loops: one with an empty-reason directive, one with an
// unknown directive name, one correctly justified.
func TestDirectiveMisuse(t *testing.T) {
	pkgs, err := load.Packages("", "./testdata/src/directives")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	res := lint.Run(pkgs, []*lint.Analyzer{detrange.New("*")})

	var driver, ranges []lint.Finding
	for _, f := range res.Findings {
		switch f.Analyzer {
		case "srlint":
			driver = append(driver, f)
		case "detrange":
			ranges = append(ranges, f)
		}
	}

	// The empty-reason and unknown-name directives are driver findings...
	if len(driver) != 2 {
		t.Fatalf("driver findings = %d, want 2: %v", len(driver), driver)
	}
	if !strings.Contains(driver[0].Message, "//srlint:ordered requires a non-empty justification") {
		t.Errorf("empty-reason finding = %q", driver[0].Message)
	}
	if !strings.Contains(driver[1].Message, `unknown directive "//srlint:nosuchcheck"`) ||
		!strings.Contains(driver[1].Message, "known: ordered") {
		t.Errorf("unknown-name finding = %q", driver[1].Message)
	}

	// ...and neither suppresses its loop, while the justified loop is clean.
	if len(ranges) != 2 {
		t.Fatalf("detrange findings = %d, want 2 (misused directives must not suppress): %v", len(ranges), ranges)
	}

	// The suppression census lists all three directives; only the justified
	// one absorbed a finding.
	if len(res.Suppressions) != 3 {
		t.Fatalf("suppressions = %d, want 3: %v", len(res.Suppressions), res.Suppressions)
	}
	hits := 0
	for _, s := range res.Suppressions {
		hits += s.Hits
		if s.Hits > 0 && (s.Name != "ordered" || s.Reason == "") {
			t.Errorf("unexpected suppression credited: %+v", s)
		}
	}
	if hits != 1 {
		t.Errorf("total suppression hits = %d, want 1", hits)
	}
}

// TestDirectiveNameFallback: an analyzer without an explicit Directive uses
// its Name.
func TestDirectiveNameFallback(t *testing.T) {
	a := &lint.Analyzer{Name: "demo"}
	if got := a.DirectiveName(); got != "demo" {
		t.Errorf("DirectiveName() = %q, want %q", got, "demo")
	}
	a.Directive = "other"
	if got := a.DirectiveName(); got != "other" {
		t.Errorf("DirectiveName() = %q, want %q", got, "other")
	}
}
