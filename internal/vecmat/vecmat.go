// Package vecmat provides the contiguous row-major sample matrix and the
// flat floating-point kernels behind every Monte-Carlo hot loop in the
// library. The paper's operators — SV (Algorithm 4), GET-NEXTmd's delayed
// arrangement (Algorithm 6, Section 5.4) and the randomized estimators
// (Algorithms 7/8/12) — all reduce to the same inner loop: dot a hyperplane
// normal against tens of thousands of samples, partition them, and re-rank.
// Storing each sample as its own heap-allocated []float64 makes that loop
// pointer-chase one cache line per sample; storing the pool as one
// []float64 with a fixed stride turns it into a sequential sweep the
// hardware prefetcher can saturate.
//
// The package is deliberately dependency-free: a Matrix is just a data
// slice plus a stride, rows are plain []float64 views, and every kernel is
// allocation-free so callers can assert zero allocations per sample.
package vecmat

import "fmt"

// Matrix is a dense row-major matrix: Rows() rows of Stride() float64s each,
// stored back to back in one allocation. The zero value is an empty matrix.
// Matrix has slice semantics: copies share the underlying data.
type Matrix struct {
	data   []float64
	stride int
}

// New returns a zeroed rows x stride matrix in one contiguous allocation.
func New(rows, stride int) Matrix {
	if rows < 0 || stride <= 0 {
		panic(fmt.Sprintf("vecmat: invalid shape %dx%d", rows, stride))
	}
	return Matrix{data: make([]float64, rows*stride), stride: stride}
}

// FromData wraps an existing flat row-major array as a matrix without
// copying; len(data) must be a multiple of stride. The caller keeps
// ownership of the array: mutations are visible both ways.
func FromData(stride int, data []float64) (Matrix, error) {
	if stride <= 0 {
		return Matrix{}, fmt.Errorf("vecmat: stride %d < 1", stride)
	}
	if len(data)%stride != 0 {
		return Matrix{}, fmt.Errorf("vecmat: data length %d not a multiple of stride %d", len(data), stride)
	}
	return Matrix{data: data, stride: stride}, nil
}

// FromRows copies the given equal-length rows into a fresh matrix with
// stride d. It returns an error when a row's length differs from d.
func FromRows(d int, rows [][]float64) (Matrix, error) {
	m := New(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			return Matrix{}, fmt.Errorf("vecmat: row %d has length %d, want %d", i, len(r), d)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m Matrix) Rows() int {
	if m.stride == 0 {
		return 0
	}
	return len(m.data) / m.stride
}

// Stride returns the row length d.
func (m Matrix) Stride() int { return m.stride }

// Row returns the i-th row as a view into the matrix (no copy). The full
// slice expression pins cap so appends by callers cannot clobber row i+1.
func (m Matrix) Row(i int) []float64 {
	lo := i * m.stride
	return m.data[lo : lo+m.stride : lo+m.stride]
}

// SetRow copies v into row i; v must have exactly Stride elements.
func (m Matrix) SetRow(i int, v []float64) {
	if len(v) != m.stride {
		panic(fmt.Sprintf("vecmat: SetRow length %d, stride %d", len(v), m.stride))
	}
	copy(m.Row(i), v)
}

// Clone returns an independent deep copy sharing nothing with m.
func (m Matrix) Clone() Matrix {
	out := Matrix{data: make([]float64, len(m.data)), stride: m.stride}
	copy(out.data, m.data)
	return out
}

// Bytes returns the memory footprint of the backing array.
func (m Matrix) Bytes() int64 { return int64(len(m.data)) * 8 }

// Dot returns the inner product of two equal-length vectors. It is the
// shared scalar kernel of the package; the accumulation order is ascending
// index, matching a naive loop bit for bit.
func Dot(a, b []float64) float64 {
	b = b[:len(a)] // one bounds check, then the loop body is check-free
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// EvalRows writes normal . row(i) into out[i-lo] for every row in [lo, hi).
// out must have at least hi-lo elements. This is the batched hyperplane
// sweep: one pass over contiguous memory instead of hi-lo pointer chases.
func (m Matrix) EvalRows(normal []float64, lo, hi int, out []float64) {
	if len(normal) != m.stride {
		panic(fmt.Sprintf("vecmat: EvalRows normal length %d, stride %d", len(normal), m.stride))
	}
	d := m.stride
	switch d {
	case 2:
		n0, n1 := normal[0], normal[1]
		for i := lo; i < hi; i++ {
			r := m.data[i*2 : i*2+2 : i*2+2]
			out[i-lo] = n0*r[0] + n1*r[1]
		}
	case 3:
		n0, n1, n2 := normal[0], normal[1], normal[2]
		for i := lo; i < hi; i++ {
			r := m.data[i*3 : i*3+3 : i*3+3]
			out[i-lo] = n0*r[0] + n1*r[1] + n2*r[2]
		}
	case 4:
		n0, n1, n2, n3 := normal[0], normal[1], normal[2], normal[3]
		for i := lo; i < hi; i++ {
			r := m.data[i*4 : i*4+4 : i*4+4]
			out[i-lo] = n0*r[0] + n1*r[1] + n2*r[2] + n3*r[3]
		}
	default:
		for i := lo; i < hi; i++ {
			out[i-lo] = Dot(normal, m.Row(i))
		}
	}
}

// MulVec writes normal . row(i) into out[i] for every row; out must have
// Rows elements. It is EvalRows over the whole matrix — the dataset-scoring
// kernel of the ranking computer.
func (m Matrix) MulVec(normal, out []float64) {
	m.EvalRows(normal, 0, m.Rows(), out)
}

// EvalRowsBlocked evaluates a block of K = normals.Rows() hyperplane normals
// against every row of m in [lo, hi) in a single pass: it writes
// normals.Row(j) . m.Row(i) into out[(i-lo)*K + j]. out must have at least
// (hi-lo)*K elements. This is the matrix-matrix form of EvalRows: each pool
// row is loaded once — its components hoisted into registers for small
// strides — and streamed against the flat normals array, so K normals cost
// one pool pass instead of K. Each dot accumulates in ascending index order,
// so every entry is bit-identical to the corresponding EvalRows result.
func (m Matrix) EvalRowsBlocked(normals Matrix, lo, hi int, out []float64) {
	k := normals.Rows()
	if k > 0 && normals.stride != m.stride {
		panic(fmt.Sprintf("vecmat: EvalRowsBlocked normals stride %d, matrix stride %d", normals.stride, m.stride))
	}
	if lo >= hi || k == 0 {
		return
	}
	ns := normals.data
	switch m.stride {
	case 2:
		for i := lo; i < hi; i++ {
			r := m.data[i*2 : i*2+2 : i*2+2]
			p0, p1 := r[0], r[1]
			o := out[(i-lo)*k : (i-lo)*k+k : (i-lo)*k+k]
			for j := 0; j < k; j++ {
				o[j] = ns[j*2]*p0 + ns[j*2+1]*p1
			}
		}
	case 3:
		for i := lo; i < hi; i++ {
			r := m.data[i*3 : i*3+3 : i*3+3]
			p0, p1, p2 := r[0], r[1], r[2]
			o := out[(i-lo)*k : (i-lo)*k+k : (i-lo)*k+k]
			for j := 0; j < k; j++ {
				o[j] = ns[j*3]*p0 + ns[j*3+1]*p1 + ns[j*3+2]*p2
			}
		}
	case 4:
		for i := lo; i < hi; i++ {
			r := m.data[i*4 : i*4+4 : i*4+4]
			p0, p1, p2, p3 := r[0], r[1], r[2], r[3]
			o := out[(i-lo)*k : (i-lo)*k+k : (i-lo)*k+k]
			for j := 0; j < k; j++ {
				o[j] = ns[j*4]*p0 + ns[j*4+1]*p1 + ns[j*4+2]*p2 + ns[j*4+3]*p3
			}
		}
	default:
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			o := out[(i-lo)*k : (i-lo)*k+k : (i-lo)*k+k]
			for j := 0; j < k; j++ {
				o[j] = Dot(normals.Row(j), row)
			}
		}
	}
}

// PartitionRows reorders rows [lo, hi) in place so rows with
// normal . row < 0 come first, returning the split index — the quick-sort
// partition of Section 5.4. Rows exactly on the hyperplane go to the
// positive side. The swap sequence is identical to the classic
// slice-of-vectors implementation, so the resulting row order (and every
// centroid downstream) is bit-identical to it.
func (m Matrix) PartitionRows(normal []float64, lo, hi int) int {
	if len(normal) != m.stride {
		panic(fmt.Sprintf("vecmat: PartitionRows normal length %d, stride %d", len(normal), m.stride))
	}
	i := lo
	switch m.stride {
	case 2:
		n0, n1 := normal[0], normal[1]
		for j := lo; j < hi; j++ {
			r := m.data[j*2 : j*2+2 : j*2+2]
			if n0*r[0]+n1*r[1] < 0 {
				m.SwapRows(i, j)
				i++
			}
		}
	case 3:
		n0, n1, n2 := normal[0], normal[1], normal[2]
		for j := lo; j < hi; j++ {
			r := m.data[j*3 : j*3+3 : j*3+3]
			if n0*r[0]+n1*r[1]+n2*r[2] < 0 {
				m.SwapRows(i, j)
				i++
			}
		}
	case 4:
		n0, n1, n2, n3 := normal[0], normal[1], normal[2], normal[3]
		for j := lo; j < hi; j++ {
			r := m.data[j*4 : j*4+4 : j*4+4]
			if n0*r[0]+n1*r[1]+n2*r[2]+n3*r[3] < 0 {
				m.SwapRows(i, j)
				i++
			}
		}
	default:
		for j := lo; j < hi; j++ {
			if Dot(normal, m.Row(j)) < 0 {
				m.SwapRows(i, j)
				i++
			}
		}
	}
	return i
}

// SwapRows exchanges rows i and j element-wise (a no-op when i == j).
func (m Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	a, b := m.Row(i), m.Row(j)
	for k := range a {
		a[k], b[k] = b[k], a[k]
	}
}

// CentroidRows accumulates the component-wise sum of rows [lo, hi) into out
// (which must be zeroed by the caller and have Stride elements). The
// accumulation order is row-major ascending, matching the naive
// slice-of-vectors loop bit for bit.
func (m Matrix) CentroidRows(lo, hi int, out []float64) {
	if len(out) != m.stride {
		panic(fmt.Sprintf("vecmat: CentroidRows out length %d, stride %d", len(out), m.stride))
	}
	d := m.stride
	for i := lo; i < hi; i++ {
		r := m.data[i*d : i*d+d : i*d+d]
		for k, v := range r {
			out[k] += v
		}
	}
}

// Inside reports whether p satisfies every oriented constraint row:
// row . p >= 0 for all rows, with early exit on the first violation.
func (m Matrix) Inside(p []float64) bool {
	for i, n := 0, m.Rows(); i < n; i++ {
		if Dot(m.Row(i), p) < 0 {
			return false
		}
	}
	return true
}

// ConcatGroups vertically concatenates the given matrices (all of stride d;
// empty matrices are allowed) into one contiguous matrix, returning it
// together with the group index expected by CountInsideGrouped: starts has
// len(groups)+1 entries and group g owns rows [starts[g], starts[g+1]).
func ConcatGroups(d int, groups []Matrix) (Matrix, []int) {
	starts := make([]int, len(groups)+1)
	for g, m := range groups {
		if m.Rows() > 0 && m.stride != d {
			panic(fmt.Sprintf("vecmat: ConcatGroups group %d stride %d, want %d", g, m.stride, d))
		}
		starts[g+1] = starts[g] + m.Rows()
	}
	out := New(starts[len(groups)], d)
	for g, m := range groups {
		copy(out.data[starts[g]*d:], m.data)
	}
	return out, starts
}

// CountInsideGrouped counts pool membership for several constraint groups in
// one pass. cons is the vertical concatenation of G oriented constraint
// matrices; group g owns constraint rows [starts[g], starts[g+1]), so starts
// has G+1 entries with starts[0] == 0 and starts[G] == cons.Rows(). For each
// pool row in [lo, hi) it hoists the sample components into registers once
// and walks the flat constraint array across all groups, adding 1 to
// counts[g] when the row satisfies every constraint of group g. Each group
// keeps CountInside's early exit — on the first violated constraint the scan
// skips to the group's end — so per-group counts are bit-identical to G
// separate CountInside calls while the pool streams through cache once
// instead of G times. An empty group counts every row.
func CountInsideGrouped(cons Matrix, starts []int, pool Matrix, lo, hi int, counts []int) {
	g := len(starts) - 1
	if g < 0 || len(counts) < g {
		panic(fmt.Sprintf("vecmat: CountInsideGrouped starts length %d, counts length %d", len(starts), len(counts)))
	}
	if cons.Rows() > 0 && cons.stride != pool.stride {
		panic(fmt.Sprintf("vecmat: CountInsideGrouped stride %d vs pool stride %d", cons.stride, pool.stride))
	}
	if lo >= hi || g == 0 {
		return
	}
	cs := cons.data
	d := pool.stride
	switch d {
	case 2:
		data := pool.data[lo*2 : hi*2]
		for base := 0; base < len(data); base += 2 {
			p0, p1 := data[base], data[base+1]
			for gi := 0; gi < g; gi++ {
				inside := true
				for c, end := starts[gi]*2, starts[gi+1]*2; c < end; c += 2 {
					if cs[c]*p0+cs[c+1]*p1 < 0 {
						inside = false
						break
					}
				}
				if inside {
					counts[gi]++
				}
			}
		}
	case 3:
		data := pool.data[lo*3 : hi*3]
		for base := 0; base < len(data); base += 3 {
			p0, p1, p2 := data[base], data[base+1], data[base+2]
			for gi := 0; gi < g; gi++ {
				inside := true
				for c, end := starts[gi]*3, starts[gi+1]*3; c < end; c += 3 {
					if cs[c]*p0+cs[c+1]*p1+cs[c+2]*p2 < 0 {
						inside = false
						break
					}
				}
				if inside {
					counts[gi]++
				}
			}
		}
	case 4:
		data := pool.data[lo*4 : hi*4]
		for base := 0; base < len(data); base += 4 {
			p0, p1, p2, p3 := data[base], data[base+1], data[base+2], data[base+3]
			for gi := 0; gi < g; gi++ {
				inside := true
				for c, end := starts[gi]*4, starts[gi+1]*4; c < end; c += 4 {
					if cs[c]*p0+cs[c+1]*p1+cs[c+2]*p2+cs[c+3]*p3 < 0 {
						inside = false
						break
					}
				}
				if inside {
					counts[gi]++
				}
			}
		}
	default:
		for i := lo; i < hi; i++ {
			p := pool.Row(i)
			for gi := 0; gi < g; gi++ {
				inside := true
				for c := starts[gi]; c < starts[gi+1]; c++ {
					if Dot(cons.Row(c), p) < 0 {
						inside = false
						break
					}
				}
				if inside {
					counts[gi]++
				}
			}
		}
	}
}

// CountInside returns how many rows of pool in [lo, hi) satisfy every
// oriented constraint row of m (constraint . sample >= 0), the counting
// kernel of the stability oracle (Algorithm 12). An empty constraint matrix
// counts every row. Small strides hoist the sample components into
// registers and stream the flat constraint array sequentially with early
// exit on the first violation — the same work profile as the historical
// per-sample halfspace walk, without a slice header per dot product.
func (m Matrix) CountInside(pool Matrix, lo, hi int) int {
	if m.Rows() > 0 && m.stride != pool.stride {
		panic(fmt.Sprintf("vecmat: CountInside stride %d vs pool stride %d", m.stride, pool.stride))
	}
	if lo >= hi {
		return 0
	}
	cons := m.data
	count := 0
	switch pool.stride {
	case 2:
		data := pool.data[lo*2 : hi*2]
		for base := 0; base < len(data); base += 2 {
			p0, p1 := data[base], data[base+1]
			inside := true
			for c := 0; c+1 < len(cons); c += 2 {
				if cons[c]*p0+cons[c+1]*p1 < 0 {
					inside = false
					break
				}
			}
			if inside {
				count++
			}
		}
	case 3:
		data := pool.data[lo*3 : hi*3]
		for base := 0; base < len(data); base += 3 {
			p0, p1, p2 := data[base], data[base+1], data[base+2]
			inside := true
			for c := 0; c+2 < len(cons); c += 3 {
				if cons[c]*p0+cons[c+1]*p1+cons[c+2]*p2 < 0 {
					inside = false
					break
				}
			}
			if inside {
				count++
			}
		}
	case 4:
		data := pool.data[lo*4 : hi*4]
		for base := 0; base < len(data); base += 4 {
			p0, p1, p2, p3 := data[base], data[base+1], data[base+2], data[base+3]
			inside := true
			for c := 0; c+3 < len(cons); c += 4 {
				if cons[c]*p0+cons[c+1]*p1+cons[c+2]*p2+cons[c+3]*p3 < 0 {
					inside = false
					break
				}
			}
			if inside {
				count++
			}
		}
	default:
		for i := lo; i < hi; i++ {
			if m.Inside(pool.Row(i)) {
				count++
			}
		}
	}
	return count
}
