package vecmat

import (
	"math/rand"
	"testing"
)

// Property/metamorphic tests for the matrix-matrix kernels: EvalRowsBlocked
// must be bit-equal to K repeated EvalRows passes, and CountInsideGrouped
// bit-equal to per-group CountInside, for every K and stride combination —
// the blocked layout is a pure traversal-order change, never a numeric one.

// TestEvalRowsBlockedMatchesRepeated pins EvalRowsBlocked bit-equal to K
// separate EvalRows calls for K, d in {2, 3, 4, 7} (specialized strides plus
// the generic fallback) over random sub-ranges, including empty ranges and
// K = 0 blocks.
func TestEvalRowsBlockedMatchesRepeated(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{2, 3, 4, 7} {
		for _, k := range []int{2, 3, 4, 7} {
			for trial := 0; trial < 20; trial++ {
				n := 1 + rng.Intn(300)
				m := matrixOf(t, d, randRows(rng, n, d))
				normals := matrixOf(t, d, randRows(rng, k, d))

				lo := rng.Intn(n)
				hi := lo + rng.Intn(n-lo+1)
				blocked := make([]float64, (hi-lo)*k)
				for i := range blocked {
					blocked[i] = rng.NormFloat64() // must be fully overwritten
				}
				m.EvalRowsBlocked(normals, lo, hi, blocked)

				single := make([]float64, hi-lo)
				for j := 0; j < k; j++ {
					m.EvalRows(normals.Row(j), lo, hi, single)
					for i := lo; i < hi; i++ {
						if got, want := blocked[(i-lo)*k+j], single[i-lo]; got != want {
							t.Fatalf("d=%d K=%d blocked[%d,%d] = %v, want EvalRows %v", d, k, i, j, got, want)
						}
					}
				}
			}
		}
	}
}

// TestEvalRowsBlockedDegenerate: K = 0 and empty row ranges are no-ops that
// leave out untouched.
func TestEvalRowsBlockedDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := matrixOf(t, 3, randRows(rng, 10, 3))
	out := []float64{1, 2, 3}
	m.EvalRowsBlocked(Matrix{}, 0, 10, out)
	m.EvalRowsBlocked(matrixOf(t, 3, randRows(rng, 2, 3)), 5, 5, out)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("degenerate EvalRowsBlocked mutated out: %v", out)
	}
}

// TestCountInsideGroupedMatchesSingle pins the grouped counting kernel
// bit-equal to one CountInside call per group for group counts and strides
// in {2, 3, 4, 7}, with empty groups (count everything) and empty ranges
// mixed in.
func TestCountInsideGroupedMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, d := range []int{2, 3, 4, 7} {
		for _, g := range []int{1, 2, 3, 4, 7} {
			for trial := 0; trial < 20; trial++ {
				n := 1 + rng.Intn(300)
				pool := matrixOf(t, d, randRows(rng, n, d))

				// Build G groups of random sizes (0..4 constraints each) and
				// concatenate them into one flat matrix + starts index.
				starts := make([]int, g+1)
				var allRows [][]float64
				groups := make([]Matrix, g)
				for gi := 0; gi < g; gi++ {
					nc := rng.Intn(5)
					rows := randRows(rng, nc, d)
					groups[gi] = matrixOf(t, d, rows)
					allRows = append(allRows, rows...)
					starts[gi+1] = starts[gi] + nc
				}
				cons := matrixOf(t, d, allRows)

				lo := rng.Intn(n)
				hi := lo + rng.Intn(n-lo+1)
				counts := make([]int, g)
				CountInsideGrouped(cons, starts, pool, lo, hi, counts)
				for gi := 0; gi < g; gi++ {
					if want := groups[gi].CountInside(pool, lo, hi); counts[gi] != want {
						t.Fatalf("d=%d G=%d group %d count %d, want CountInside %d", d, g, gi, counts[gi], want)
					}
				}
			}
		}
	}
}

// TestCountInsideGroupedAccumulates: counts accumulate across calls, the
// contract the sharded sweep relies on when merging per-block results.
func TestCountInsideGroupedAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pool := matrixOf(t, 4, randRows(rng, 100, 4))
	cons := matrixOf(t, 4, randRows(rng, 3, 4))
	starts := []int{0, 1, 3}

	whole := make([]int, 2)
	CountInsideGrouped(cons, starts, pool, 0, 100, whole)
	split := make([]int, 2)
	CountInsideGrouped(cons, starts, pool, 0, 37, split)
	CountInsideGrouped(cons, starts, pool, 37, 100, split)
	for gi := range whole {
		if whole[gi] != split[gi] {
			t.Fatalf("group %d: whole %d, split-accumulated %d", gi, whole[gi], split[gi])
		}
	}
}
