package vecmat

import (
	"math/rand"
	"testing"
)

// Reference implementations over [][]float64 — the shapes the flat kernels
// replaced. The property tests drive random inputs through both and demand
// bit-identical results, including the exact row order after partitioning.

func refDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func refPartition(rows [][]float64, lo, hi int, normal []float64) int {
	i := lo
	for j := lo; j < hi; j++ {
		if refDot(normal, rows[j]) < 0 {
			rows[i], rows[j] = rows[j], rows[i]
			i++
		}
	}
	return i
}

func refCentroid(rows [][]float64, lo, hi, d int) []float64 {
	c := make([]float64, d)
	for i := lo; i < hi; i++ {
		for j := 0; j < d; j++ {
			c[j] += rows[i][j]
		}
	}
	return c
}

func refCountInside(cons [][]float64, rows [][]float64, lo, hi int) int {
	count := 0
	for i := lo; i < hi; i++ {
		inside := true
		for _, c := range cons {
			if refDot(c, rows[i]) < 0 {
				inside = false
				break
			}
		}
		if inside {
			count++
		}
	}
	return count
}

func randRows(rng *rand.Rand, n, d int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	return rows
}

func matrixOf(t *testing.T, d int, rows [][]float64) Matrix {
	t.Helper()
	m, err := FromRows(d, rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestKernelsMatchReference: EvalRows, PartitionRows (split index AND exact
// row order), CentroidRows, and CountInside agree with the slice-of-vector
// reference on random inputs across the specialized strides and the generic
// fallback.
func TestKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []int{2, 3, 4, 5, 8} {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(200)
			rows := randRows(rng, n, d)
			normal := randRows(rng, 1, d)[0]
			m := matrixOf(t, d, rows)

			// EvalRows over a random sub-range.
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo+1)
			out := make([]float64, hi-lo)
			m.EvalRows(normal, lo, hi, out)
			for i := lo; i < hi; i++ {
				if want := refDot(normal, rows[i]); out[i-lo] != want {
					t.Fatalf("d=%d EvalRows[%d] = %v, want %v", d, i, out[i-lo], want)
				}
			}

			// PartitionRows: same split and bit-identical row order.
			ref := make([][]float64, n)
			for i := range ref {
				ref[i] = append([]float64(nil), rows[i]...)
			}
			gotMid := m.PartitionRows(normal, lo, hi)
			wantMid := refPartition(ref, lo, hi, normal)
			if gotMid != wantMid {
				t.Fatalf("d=%d PartitionRows split %d, want %d", d, gotMid, wantMid)
			}
			for i := 0; i < n; i++ {
				row := m.Row(i)
				for j := 0; j < d; j++ {
					if row[j] != ref[i][j] {
						t.Fatalf("d=%d row %d differs after partition", d, i)
					}
				}
			}

			// CentroidRows over the partitioned state.
			sum := make([]float64, d)
			m.CentroidRows(lo, hi, sum)
			wantSum := refCentroid(ref, lo, hi, d)
			for j := 0; j < d; j++ {
				if sum[j] != wantSum[j] {
					t.Fatalf("d=%d CentroidRows[%d] = %v, want %v", d, j, sum[j], wantSum[j])
				}
			}

			// CountInside with a random constraint matrix (including empty).
			nc := rng.Intn(4)
			cons := randRows(rng, nc, d)
			cm := matrixOf(t, d, cons)
			if got, want := cm.CountInside(m, lo, hi), refCountInside(cons, ref, lo, hi); got != want {
				t.Fatalf("d=%d CountInside = %d, want %d", d, got, want)
			}
		}
	}
}

func TestMatrixBasics(t *testing.T) {
	m := New(3, 2)
	if m.Rows() != 3 || m.Stride() != 2 || m.Bytes() != 48 {
		t.Fatalf("shape = %dx%d, %d bytes", m.Rows(), m.Stride(), m.Bytes())
	}
	m.SetRow(1, []float64{4, 5})
	clone := m.Clone()
	m.SwapRows(0, 1)
	if m.Row(0)[0] != 4 || clone.Row(0)[0] != 0 {
		t.Fatal("SwapRows leaked into Clone or did not swap")
	}
	var empty Matrix
	if empty.Rows() != 0 {
		t.Fatalf("zero Matrix rows = %d", empty.Rows())
	}
	if _, err := FromData(3, make([]float64, 7)); err == nil {
		t.Fatal("FromData accepted a non-multiple length")
	}
	wrapped, err := FromData(2, []float64{1, 2, 3, 4})
	if err != nil || wrapped.Rows() != 2 || wrapped.Row(1)[0] != 3 {
		t.Fatalf("FromData = %v rows=%d", err, wrapped.Rows())
	}
	if _, err := FromRows(2, [][]float64{{1}}); err == nil {
		t.Fatal("FromRows accepted a short row")
	}
}

// TestKernelsAllocationFree: the inner loops of the hot path allocate
// nothing per sample — partition, eval, centroid and counting sweeps are
// all zero-allocation regardless of how many rows they touch.
func TestKernelsAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, d = 4096, 3
	m := matrixOf(t, d, randRows(rng, n, d))
	cons := matrixOf(t, d, randRows(rng, 8, d))
	normal := []float64{0.3, -0.2, 0.5}
	out := make([]float64, n)
	sum := make([]float64, d)
	cases := map[string]func(){
		"EvalRows":      func() { m.EvalRows(normal, 0, n, out) },
		"PartitionRows": func() { m.PartitionRows(normal, 0, n) },
		"CentroidRows":  func() { m.CentroidRows(0, n, sum) },
		"CountInside":   func() { cons.CountInside(m, 0, n) },
		"MulVec":        func() { m.MulVec(normal, out) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per run over %d rows, want 0", name, allocs, n)
		}
	}
}
