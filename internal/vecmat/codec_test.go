package vecmat

import (
	"encoding/binary"
	"math"
	"testing"
)

// TestCodecRoundTrip pins that Encode/Decode is the identity on float bits,
// including negative zero, subnormals and extreme exponents — the property
// that makes warm-started pools bit-identical to cold-built ones.
func TestCodecRoundTrip(t *testing.T) {
	m := New(4, 3)
	vals := []float64{0, math.Copysign(0, -1), 1.5, -2.25, math.SmallestNonzeroFloat64,
		math.MaxFloat64, -math.MaxFloat64, 1e-300, math.Pi, -math.E, 0.1, 3}
	for i := 0; i < m.Rows(); i++ {
		copy(m.Row(i), vals[i*3:i*3+3])
	}
	enc := m.Encode()
	if len(enc) != m.EncodedSize() {
		t.Fatalf("Encode length %d, EncodedSize %d", len(enc), m.EncodedSize())
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Rows() != m.Rows() || got.Stride() != m.Stride() {
		t.Fatalf("decoded shape %dx%d, want %dx%d", got.Rows(), got.Stride(), m.Rows(), m.Stride())
	}
	for i := 0; i < m.Rows(); i++ {
		a, b := m.Row(i), got.Row(i)
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("row %d col %d: bits %x != %x", i, j, math.Float64bits(a[j]), math.Float64bits(b[j]))
			}
		}
	}
	// The decoded matrix owns its array: mutating it must not touch m.
	got.Row(0)[0] = 42
	if m.Row(0)[0] == 42 {
		t.Fatal("decoded matrix aliases the source")
	}
}

// TestCodecRoundTripEmpty covers the zero-row matrix.
func TestCodecRoundTripEmpty(t *testing.T) {
	m := New(0, 5)
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatalf("Decode empty: %v", err)
	}
	if got.Rows() != 0 || got.Stride() != 5 {
		t.Fatalf("decoded shape %dx%d, want 0x5", got.Rows(), got.Stride())
	}
}

// TestDecodeRejectsMalformed walks the failure modes a damaged or hostile
// snapshot can exhibit; each must error, never panic.
func TestDecodeRejectsMalformed(t *testing.T) {
	valid := New(2, 2).Encode()
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":         {},
		"short header":  valid[:headerSize-1],
		"bad magic":     mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version":   mutate(func(b []byte) []byte { binary.LittleEndian.PutUint32(b[4:], 99); return b }),
		"zero stride":   mutate(func(b []byte) []byte { binary.LittleEndian.PutUint32(b[8:], 0); return b }),
		"truncated":     valid[:len(valid)-3],
		"extra payload": append(append([]byte(nil), valid...), 1, 2, 3),
		"huge shape":    mutate(func(b []byte) []byte { binary.LittleEndian.PutUint64(b[12:], 1<<60); return b }),
		"overflow shape": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], ^uint32(0))
			binary.LittleEndian.PutUint64(b[12:], ^uint64(0))
			return b
		}),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted malformed input", name)
		}
	}
	if _, err := Decode(valid); err != nil {
		t.Fatalf("control: %v", err)
	}
}
