package vecmat

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The on-disk matrix layout, version 1:
//
//	offset  size  field
//	0       4     magic "SRM1"
//	4       4     layout version (uint32, little endian)
//	8       4     stride d (uint32)
//	12      8     row count (uint64)
//	20      8*r*d float64 bits, row major, little endian
//
// Every float is stored bit-exactly (math.Float64bits), so a decoded matrix
// is indistinguishable from the encoded one: downstream partitions, ranks
// and stability estimates are bit-identical. Bump LayoutVersion whenever the
// byte layout changes so stale snapshots read as a cache miss, never as a
// silently misinterpreted pool.

// LayoutVersion identifies the current encoding; Decode rejects any other.
const LayoutVersion = 1

// codecMagic guards against feeding arbitrary files to Decode.
const codecMagic = "SRM1"

// headerSize is the fixed prefix before the float payload.
const headerSize = 4 + 4 + 4 + 8

// maxDecodeElems caps rows*stride so a corrupted header cannot make Decode
// attempt a multi-terabyte allocation: 1<<31 floats is 16 GiB, far beyond
// any real pool while still well inside int range on 64-bit platforms.
const maxDecodeElems = 1 << 31

// EncodedSize returns the exact Encode output length for m.
func (m Matrix) EncodedSize() int { return headerSize + 8*len(m.data) }

// Encode serializes the matrix in the versioned layout above.
func (m Matrix) Encode() []byte {
	buf := make([]byte, m.EncodedSize())
	copy(buf, codecMagic)
	binary.LittleEndian.PutUint32(buf[4:], LayoutVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(m.stride))
	binary.LittleEndian.PutUint64(buf[12:], uint64(m.Rows()))
	out := buf[headerSize:]
	for i, v := range m.data {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return buf
}

// Decode parses an encoded matrix. It never panics on arbitrary input: every
// header field is validated (magic, version, shape, payload length) before
// the single payload allocation, and malformed input returns an error. The
// decoded matrix owns a fresh backing array.
func Decode(data []byte) (Matrix, error) {
	if len(data) < headerSize {
		return Matrix{}, fmt.Errorf("vecmat: encoded matrix truncated at %d bytes", len(data))
	}
	if string(data[:4]) != codecMagic {
		return Matrix{}, fmt.Errorf("vecmat: bad matrix magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != LayoutVersion {
		return Matrix{}, fmt.Errorf("vecmat: unsupported layout version %d (have %d)", v, LayoutVersion)
	}
	stride := binary.LittleEndian.Uint32(data[8:])
	rows := binary.LittleEndian.Uint64(data[12:])
	if stride == 0 {
		return Matrix{}, fmt.Errorf("vecmat: encoded stride 0")
	}
	elems := rows * uint64(stride)
	if rows > maxDecodeElems || elems > maxDecodeElems {
		return Matrix{}, fmt.Errorf("vecmat: encoded shape %dx%d too large", rows, stride)
	}
	payload := data[headerSize:]
	if uint64(len(payload)) != 8*elems {
		return Matrix{}, fmt.Errorf("vecmat: payload %d bytes, want %d for %dx%d", len(payload), 8*elems, rows, stride)
	}
	out := make([]float64, elems)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return Matrix{data: out, stride: int(stride)}, nil
}
