package stats

import (
	"fmt"
	"math"
)

// The regularized incomplete beta function I_z(a, b), used by Equation 16 of
// the paper to express the spherical-cap CDF:
//
//	F(x) = I_{sin^2 x}((d-1)/2, 1/2) / I_{sin^2 theta}((d-1)/2, 1/2)
//
// Implemented with the standard continued-fraction expansion (modified
// Lentz's method), as in Numerical Recipes.

// LogBeta returns ln B(a, b) = ln Gamma(a) + ln Gamma(b) - ln Gamma(a+b).
func LogBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegularizedIncompleteBeta returns I_z(a, b) for z in [0, 1] and positive
// a, b. It panics on invalid arguments.
func RegularizedIncompleteBeta(z, a, b float64) float64 {
	if a <= 0 || b <= 0 {
		panic(fmt.Sprintf("stats: RegularizedIncompleteBeta requires positive a, b; got %v, %v", a, b))
	}
	if z < 0 || z > 1 {
		panic(fmt.Sprintf("stats: RegularizedIncompleteBeta z %v out of [0,1]", z))
	}
	if z == 0 {
		return 0
	}
	if z == 1 {
		return 1
	}
	// Front factor z^a (1-z)^b / (a B(a,b)).
	ln := a*math.Log(z) + b*math.Log(1-z) - LogBeta(a, b)
	front := math.Exp(ln)
	// Use the continued fraction directly when z < (a+1)/(a+b+2), otherwise
	// use the symmetry I_z(a,b) = 1 - I_{1-z}(b,a) for faster convergence.
	if z < (a+1)/(a+b+2) {
		return front * betaCF(z, a, b) / a
	}
	lnSym := b*math.Log(1-z) + a*math.Log(z) - LogBeta(b, a)
	return 1 - math.Exp(lnSym)*betaCF(1-z, b, a)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by modified Lentz's method.
func betaCF(x, a, b float64) float64 {
	const (
		maxIter = 300
		epsCF   = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsCF {
			return h
		}
	}
	return h // converged to working precision or exhausted iterations
}

// CapCDF returns the paper's Equation 16: the CDF at angle x of the polar
// angle of a uniform point on a d-spherical cap of half-angle theta,
//
//	F(x) = I_{sin^2 x}((d-1)/2, 1/2) / I_{sin^2 theta}((d-1)/2, 1/2)
//
// valid for 0 <= x <= theta <= pi/2 and d >= 2.
func CapCDF(x, theta float64, d int) float64 {
	if d < 2 {
		panic(fmt.Sprintf("stats: CapCDF dimension %d < 2", d))
	}
	if x <= 0 {
		return 0
	}
	if x >= theta {
		return 1
	}
	a := float64(d-1) / 2
	sx := math.Sin(x)
	st := math.Sin(theta)
	num := RegularizedIncompleteBeta(sx*sx, a, 0.5)
	den := RegularizedIncompleteBeta(st*st, a, 0.5)
	if den == 0 {
		return 0
	}
	return num / den
}

// CapCDF3DInverse is the closed-form inverse CDF for d = 3 (Equation 15):
// F^{-1}(y) = arccos(1 - (1 - cos theta) y).
func CapCDF3DInverse(y, theta float64) float64 {
	if y < 0 {
		y = 0
	}
	if y > 1 {
		y = 1
	}
	return math.Acos(1 - (1-math.Cos(theta))*y)
}
