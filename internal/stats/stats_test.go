package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestZQuantileKnownValues(t *testing.T) {
	tests := []struct {
		p    float64
		want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.95, 1.644854},
		{0.025, -1.959964},
	}
	for _, tc := range tests {
		if got := ZQuantile(tc.p); !almostEqual(got, tc.want, 1e-5) {
			t.Errorf("ZQuantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestZQuantileInvertsCDF(t *testing.T) {
	for p := 0.01; p < 1; p += 0.01 {
		if got := NormalCDF(ZQuantile(p)); !almostEqual(got, p, 1e-9) {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestZQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ZQuantile(%v) did not panic", p)
				}
			}()
			ZQuantile(p)
		}()
	}
}

func TestZForConfidence(t *testing.T) {
	if got := ZForConfidence(0.05); !almostEqual(got, 1.959964, 1e-5) {
		t.Errorf("ZForConfidence(0.05) = %v", got)
	}
}

func TestConfidenceError(t *testing.T) {
	// m=0.5, n=100, alpha=0.05: e = 1.96 * sqrt(0.25/100) = 0.098.
	if got := ConfidenceError(0.5, 100, 0.05); !almostEqual(got, 0.0979982, 1e-5) {
		t.Errorf("ConfidenceError = %v", got)
	}
	if got := ConfidenceError(0.5, 0, 0.05); !math.IsInf(got, 1) {
		t.Errorf("zero samples should give infinite error, got %v", got)
	}
	// Error shrinks as 1/sqrt(n).
	e1 := ConfidenceError(0.3, 100, 0.05)
	e2 := ConfidenceError(0.3, 400, 0.05)
	if !almostEqual(e1/e2, 2, 1e-9) {
		t.Errorf("error ratio = %v, want 2", e1/e2)
	}
	// Clamping out-of-range proportions: a negative proportion behaves
	// exactly like m = 0 (the Wilson boundary width, not a claim of
	// certainty).
	if got, want := ConfidenceError(-0.1, 10, 0.05), ConfidenceError(0, 10, 0.05); got != want {
		t.Errorf("negative proportion = %v, want the m=0 width %v", got, want)
	}
}

// TestConfidenceErrorEdgeCases is the table-driven boundary suite: degenerate
// proportions (0 observed hits, all hits) and single-sample estimates must
// never report a zero-width interval — the plug-in variance m(1-m) collapses
// there, so the Wilson score half-width z^2/(n+z^2) takes over.
func TestConfidenceErrorEdgeCases(t *testing.T) {
	const alpha = 0.05
	z := ZForConfidence(alpha)
	wilson := func(n int) float64 { return z * z / (float64(n) + z*z) }
	cases := []struct {
		name  string
		m     float64
		n     int
		want  float64
		exact bool
	}{
		{name: "zero hits n=1", m: 0, n: 1, want: wilson(1), exact: true},
		{name: "all hits n=1", m: 1, n: 1, want: wilson(1), exact: true},
		{name: "zero hits n=100", m: 0, n: 100, want: wilson(100), exact: true},
		{name: "all hits n=100", m: 1, n: 100, want: wilson(100), exact: true},
		{name: "zero hits n=1e6", m: 0, n: 1_000_000, want: wilson(1_000_000), exact: true},
		{name: "interior n=1", m: 0.5, n: 1, want: z * 0.5, exact: true},
		{name: "clamped above", m: 1.5, n: 10, want: wilson(10), exact: true},
		{name: "clamped below", m: -1, n: 10, want: wilson(10), exact: true},
		{name: "n=0", m: 0.5, n: 0, want: math.Inf(1), exact: true},
		{name: "n negative", m: 0, n: -3, want: math.Inf(1), exact: true},
	}
	for _, tc := range cases {
		got := ConfidenceError(tc.m, tc.n, alpha)
		if got != tc.want {
			t.Errorf("%s: ConfidenceError(%v, %d) = %v, want %v", tc.name, tc.m, tc.n, got, tc.want)
		}
	}

	// The boundary width is a genuine interval: positive, shrinking in n,
	// and at least as wide as nearby interior estimates are precise.
	if w1, w2 := ConfidenceError(0, 10, alpha), ConfidenceError(0, 1000, alpha); !(w1 > w2 && w2 > 0) {
		t.Errorf("boundary width not shrinking: n=10 %v, n=1000 %v", w1, w2)
	}
	// Continuity scale check: the m=0 width at n is within the width of the
	// smallest observable non-zero proportion 1/n, not orders of magnitude
	// off (both shrink like ~1/n vs ~1/sqrt(n * n) = 1/n here).
	n := 1000
	if w0, w1 := ConfidenceError(0, n, alpha), ConfidenceError(1.0/float64(n), n, alpha); w0 > 2*w1 {
		t.Errorf("m=0 width %v more than twice the 1/n-proportion width %v", w0, w1)
	}
}

// TestRequiredSamplesEdgeCases: Equation 11's plug-in demand is 0 at the
// degenerate proportions, but at least one sample is always required to have
// an estimate at all.
func TestRequiredSamplesEdgeCases(t *testing.T) {
	for _, s := range []float64{0, 1} {
		if got := RequiredSamples(s, 0.05, 0.01); got != 1 {
			t.Errorf("RequiredSamples(%v) = %d, want floor of 1", s, got)
		}
	}
	if got := RequiredSamples(0.5, 0.05, 0.5); got < 1 {
		t.Errorf("RequiredSamples loose target = %d, want >= 1", got)
	}
}

func TestRequiredSamples(t *testing.T) {
	// Equation 11 round-trip: with n = RequiredSamples the achieved error is
	// at most e.
	for _, s := range []float64{0.01, 0.1, 0.5} {
		for _, e := range []float64{0.01, 0.001} {
			n := RequiredSamples(s, 0.05, e)
			if got := ConfidenceError(s, n, 0.05); got > e*(1+1e-9) {
				t.Errorf("s=%v e=%v: n=%d achieves error %v", s, e, n, got)
			}
		}
	}
	if RequiredSamples(0.5, 0.05, 0) != math.MaxInt32 {
		t.Error("zero target error should demand MaxInt32 samples")
	}
}

func TestGeometric(t *testing.T) {
	if got := GeometricExpectation(0.02); !almostEqual(got, 50, 1e-9) {
		t.Errorf("GeometricExpectation(0.02) = %v", got)
	}
	if got := GeometricVariance(0.5); !almostEqual(got, 2, 1e-9) {
		t.Errorf("GeometricVariance(0.5) = %v, want 2", got)
	}
	if !math.IsInf(GeometricExpectation(0), 1) || !math.IsInf(GeometricVariance(0), 1) {
		t.Error("zero stability should have infinite discovery cost")
	}
}

func TestBernoulli(t *testing.T) {
	if BernoulliMean(0.3) != 0.3 {
		t.Error("BernoulliMean")
	}
	if got := BernoulliStdDev(0.5); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("BernoulliStdDev(0.5) = %v", got)
	}
	if !math.IsNaN(BernoulliStdDev(1.5)) {
		t.Error("out-of-range stddev should be NaN")
	}
}

func TestHoeffding(t *testing.T) {
	// Round trip: after HoeffdingSamples(e, a) samples the guaranteed error
	// is at most e.
	for _, e := range []float64{0.1, 0.01, 0.001} {
		for _, a := range []float64{0.05, 0.01} {
			n := HoeffdingSamples(e, a)
			if got := HoeffdingError(n, a); got > e*(1+1e-9) {
				t.Errorf("e=%v a=%v: n=%d gives error %v", e, a, n, got)
			}
			// One fewer sample must not suffice (tightness of the ceiling).
			if n > 1 {
				if got := HoeffdingError(n-1, a); got < e {
					t.Errorf("e=%v a=%v: n-1=%d already gives %v", e, a, n-1, got)
				}
			}
		}
	}
	// Hoeffding dominates the CLT bound at the worst-case proportion 1/2.
	if HoeffdingSamples(0.01, 0.05) < RequiredSamples(0.5, 0.05, 0.01) {
		t.Error("Hoeffding bound should be at least as conservative as CLT at s=0.5")
	}
	if HoeffdingSamples(0, 0.05) != math.MaxInt32 {
		t.Error("zero error should demand MaxInt32")
	}
	if !math.IsInf(HoeffdingError(0, 0.05), 1) {
		t.Error("zero samples should give infinite error")
	}
}

func TestRegularizedIncompleteBeta(t *testing.T) {
	tests := []struct {
		z, a, b float64
		want    float64
	}{
		{0, 2, 3, 0},
		{1, 2, 3, 1},
		{0.5, 1, 1, 0.5},      // I_z(1,1) = z
		{0.3, 1, 1, 0.3},      // uniform case
		{0.5, 2, 2, 0.5},      // symmetric beta at the midpoint
		{0.25, 2, 2, 0.15625}, // 3z^2 - 2z^3 at z = 0.25
		{0.5, 0.5, 0.5, 0.5},  // arcsine distribution midpoint
	}
	for _, tc := range tests {
		if got := RegularizedIncompleteBeta(tc.z, tc.a, tc.b); !almostEqual(got, tc.want, 1e-10) {
			t.Errorf("I_%v(%v,%v) = %v, want %v", tc.z, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestRegularizedIncompleteBetaSymmetry(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(21))}
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		z := rr.Float64()
		a := rr.Float64()*5 + 0.1
		b := rr.Float64()*5 + 0.1
		lhs := RegularizedIncompleteBeta(z, a, b)
		rhs := 1 - RegularizedIncompleteBeta(1-z, b, a)
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestRegularizedIncompleteBetaMonotone(t *testing.T) {
	prev := -1.0
	for z := 0.0; z <= 1.0001; z += 0.01 {
		zz := math.Min(z, 1)
		v := RegularizedIncompleteBeta(zz, 1.5, 0.5)
		if v < prev-1e-12 {
			t.Fatalf("I_z not monotone at z=%v", zz)
		}
		prev = v
	}
}

func TestCapCDFMatchesClosedForm3D(t *testing.T) {
	// For d = 3, F(x) = (1-cos x)/(1-cos theta) (Equation 15).
	theta := 0.8
	for x := 0.05; x < theta; x += 0.05 {
		want := (1 - math.Cos(x)) / (1 - math.Cos(theta))
		if got := CapCDF(x, theta, 3); !almostEqual(got, want, 1e-9) {
			t.Errorf("CapCDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestCapCDF3DInverse(t *testing.T) {
	theta := 0.6
	for y := 0.0; y <= 1; y += 0.1 {
		x := CapCDF3DInverse(y, theta)
		want := (1 - math.Cos(x)) / (1 - math.Cos(theta))
		if !almostEqual(want, y, 1e-9) {
			t.Errorf("inverse CDF roundtrip failed at y=%v", y)
		}
	}
	if got := CapCDF3DInverse(-1, theta); got != 0 {
		t.Errorf("clamped y<0 should give 0, got %v", got)
	}
	if got := CapCDF3DInverse(2, theta); !almostEqual(got, theta, 1e-9) {
		t.Errorf("clamped y>1 should give theta, got %v", got)
	}
}

func TestCapCDFBoundaries(t *testing.T) {
	if CapCDF(0, 0.5, 4) != 0 {
		t.Error("CapCDF(0) != 0")
	}
	if CapCDF(0.5, 0.5, 4) != 1 {
		t.Error("CapCDF(theta) != 1")
	}
	if CapCDF(0.7, 0.5, 4) != 1 {
		t.Error("CapCDF(x > theta) != 1")
	}
}

func TestRiemannTableMatchesBetaCDF(t *testing.T) {
	// The numeric table (Algorithm 10) must agree with the closed-form
	// Equation 16 CDF.
	for _, d := range []int{2, 3, 4, 5, 7} {
		tab, err := NewRiemannTable(d, 0.7, 20000)
		if err != nil {
			t.Fatal(err)
		}
		for x := 0.05; x < 0.7; x += 0.05 {
			want := CapCDF(x, 0.7, d)
			if got := tab.CDF(x); !almostEqual(got, want, 1e-4) {
				t.Errorf("d=%d: table CDF(%v) = %v, want %v", d, x, got, want)
			}
		}
	}
}

func TestRiemannInverseCDFRoundTrip(t *testing.T) {
	tab, err := NewRiemannTable(4, 0.9, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0.01; y < 1; y += 0.01 {
		x := tab.InverseCDF(y)
		if got := tab.CDF(x); !almostEqual(got, y, 1e-3) {
			t.Fatalf("CDF(InverseCDF(%v)) = %v", y, got)
		}
	}
	if tab.InverseCDF(0) != 0 {
		t.Error("InverseCDF(0) != 0")
	}
	if !almostEqual(tab.InverseCDF(1), 0.9, 1e-12) {
		t.Error("InverseCDF(1) != theta")
	}
}

func TestRiemannTableErrors(t *testing.T) {
	if _, err := NewRiemannTable(1, 0.5, 10); err == nil {
		t.Error("d=1 accepted")
	}
	if _, err := NewRiemannTable(3, 0, 10); err == nil {
		t.Error("theta=0 accepted")
	}
	if _, err := NewRiemannTable(3, 0.5, 0); err == nil {
		t.Error("gamma=0 accepted")
	}
}

func TestChiSquareStatistic(t *testing.T) {
	stat, err := ChiSquareStatistic([]int{10, 10, 10}, []float64{10, 10, 10})
	if err != nil || stat != 0 {
		t.Errorf("perfect fit: stat=%v err=%v", stat, err)
	}
	stat, err = ChiSquareStatistic([]int{12, 8}, []float64{10, 10})
	if err != nil || !almostEqual(stat, 0.8, 1e-12) {
		t.Errorf("stat = %v, want 0.8", stat)
	}
	if _, err := ChiSquareStatistic([]int{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ChiSquareStatistic([]int{1}, []float64{0}); err == nil {
		t.Error("zero expectation accepted")
	}
}

func TestChiSquareCritical(t *testing.T) {
	// Known values: chi2(0.95, 10) ~ 18.307, chi2(0.95, 30) ~ 43.773.
	if got := ChiSquareCritical(10, 0.05); math.Abs(got-18.307) > 0.3 {
		t.Errorf("critical(10, .05) = %v, want ~18.3", got)
	}
	if got := ChiSquareCritical(30, 0.05); math.Abs(got-43.773) > 0.3 {
		t.Errorf("critical(30, .05) = %v, want ~43.8", got)
	}
}

func TestUniformityTest(t *testing.T) {
	rr := rand.New(rand.NewSource(22))
	uniform := make([]float64, 20000)
	for i := range uniform {
		uniform[i] = rr.Float64()
	}
	_, _, ok, err := UniformityTest(uniform, 50, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("uniform samples rejected")
	}
	// Clearly non-uniform: squared uniforms pile up near zero.
	skewed := make([]float64, 20000)
	for i := range skewed {
		u := rr.Float64()
		skewed[i] = u * u
	}
	_, _, ok, err = UniformityTest(skewed, 50, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("skewed samples accepted as uniform")
	}
	// Error paths.
	if _, _, _, err := UniformityTest(uniform[:10], 50, 0.01); err == nil {
		t.Error("too-few samples accepted")
	}
	if _, _, _, err := UniformityTest([]float64{2, 0.5, 0.6, 0.7, 0.8, 0.9, 1, 0.1, 0.2, 0.3}, 2, 0.01); err == nil {
		t.Error("out-of-range sample accepted")
	}
}
