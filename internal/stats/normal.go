// Package stats provides the statistical substrate for the Monte-Carlo
// machinery of the paper: normal quantiles (replacing the Z-table used in
// Equations 9-11), Wald confidence intervals for Bernoulli proportions,
// geometric-distribution discovery costs (Theorem 2), the regularized
// incomplete beta function behind the spherical-cap CDF (Equation 16), the
// Riemann-sum tabulation of Algorithm 10, and a chi-square goodness-of-fit
// test used to verify sampler uniformity.
package stats

import (
	"fmt"
	"math"
)

// NormalCDF returns P(Z <= x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// ZQuantile returns the standard normal quantile z with P(Z <= z) = p,
// the "Z-table lookup" Z(p) used by the paper's confidence computations.
// It panics for p outside (0, 1).
func ZQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: ZQuantile probability %v out of (0,1)", p))
	}
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// ZForConfidence returns Z(1 - alpha/2), the two-sided critical value for
// confidence level 1-alpha. For alpha = 0.05 this is approximately 1.96.
func ZForConfidence(alpha float64) float64 {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stats: confidence alpha %v out of (0,1)", alpha))
	}
	return ZQuantile(1 - alpha/2)
}
