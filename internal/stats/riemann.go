package stats

import (
	"fmt"
	"math"
)

// RiemannTable implements Algorithm 10 of the paper: a tabulated, normalized
// cumulative integral of sin^{d-2}(phi) over a regular partition of
// [0, theta]. The table supports O(log gamma) inverse-CDF lookups for the
// cap sampler (Algorithm 11) in arbitrary dimension.
type RiemannTable struct {
	Theta float64   // cap half-angle
	D     int       // ambient dimension
	Step  float64   // partition width epsilon = theta/gamma
	L     []float64 // L[i] = F(i * Step), L[0] = 0, L[gamma] = 1
	Total float64   // unnormalized integral of sin^{d-2} over [0, theta]
	// guide[k] hints the first index i with L[i] >= k/len(guide), turning
	// the inverse-CDF lookup from a binary search into an O(1) bucket jump
	// plus a short exact scan. Purely an accelerator: lookups correct the
	// hint in both directions, so results are bit-identical with or without
	// it.
	guide []int32
}

// NewRiemannTable tabulates the cap CDF for dimension d and half-angle theta
// using gamma partitions (Algorithm 10). It returns an error for invalid
// arguments.
func NewRiemannTable(d int, theta float64, gamma int) (*RiemannTable, error) {
	if d < 2 {
		return nil, fmt.Errorf("stats: RiemannTable dimension %d < 2", d)
	}
	if theta <= 0 || theta > math.Pi {
		return nil, fmt.Errorf("stats: RiemannTable theta %v out of (0, pi]", theta)
	}
	if gamma < 1 {
		return nil, fmt.Errorf("stats: RiemannTable gamma %d < 1", gamma)
	}
	eps := theta / float64(gamma)
	l := make([]float64, gamma+1)
	var acc float64
	k := float64(d - 2)
	// Midpoint rule per panel: more accurate than the paper's right-endpoint
	// sum at identical cost, preserving the algorithm's structure.
	for i := 1; i <= gamma; i++ {
		mid := (float64(i) - 0.5) * eps
		acc += math.Pow(math.Sin(mid), k)
		l[i] = acc
	}
	if acc <= 0 {
		return nil, fmt.Errorf("stats: degenerate Riemann table (theta=%v, d=%d)", theta, d)
	}
	for i := range l {
		l[i] /= acc
	}
	guide := make([]int32, gamma)
	j := 0
	for k := range guide {
		yk := float64(k) / float64(gamma)
		for j < len(l) && l[j] < yk {
			j++
		}
		guide[k] = int32(j)
	}
	return &RiemannTable{Theta: theta, D: d, Step: eps, L: l, Total: acc * eps, guide: guide}, nil
}

// InverseCDF returns the angle x in [0, Theta] with F(x) ~ y, by binary
// search over the tabulated partial integrals followed by linear
// interpolation within the located partition (the paper draws uniformly
// within the partition; interpolation is the deterministic equivalent used
// here so the same y always maps to the same x).
func (t *RiemannTable) InverseCDF(y float64) float64 {
	if y <= 0 {
		return 0
	}
	if y >= 1 {
		return t.Theta
	}
	// First index with L[i] >= y: jump to the guide bucket's hint, then
	// correct exactly in both directions (the hint can be off by a step when
	// y*len(guide) rounds across an integer, and the forward scan is the
	// within-bucket search itself). The CDF is smooth, so the scans are a
	// couple of steps — far cheaper than a binary search over the table.
	var i int
	if len(t.guide) > 0 {
		k := int(y * float64(len(t.guide)))
		if k >= len(t.guide) {
			k = len(t.guide) - 1
		}
		i = int(t.guide[k])
		for i < len(t.L) && t.L[i] < y {
			i++
		}
		for i > 0 && t.L[i-1] >= y {
			i--
		}
	} else {
		for i < len(t.L) && t.L[i] < y {
			i++
		}
	}
	if i == 0 {
		return 0
	}
	lo, hi := t.L[i-1], t.L[i]
	frac := 0.5
	if hi > lo {
		frac = (y - lo) / (hi - lo)
	}
	return (float64(i-1) + frac) * t.Step
}

// CDF returns the tabulated CDF at angle x (linear interpolation).
func (t *RiemannTable) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= t.Theta {
		return 1
	}
	pos := x / t.Step
	i := int(pos)
	if i >= len(t.L)-1 {
		return 1
	}
	frac := pos - float64(i)
	return t.L[i] + frac*(t.L[i+1]-t.L[i])
}
