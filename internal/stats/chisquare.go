package stats

import (
	"fmt"
	"math"
)

// Chi-square goodness-of-fit support, used by the test suite to verify that
// the function-space samplers of Section 5 are unbiased (the paper argues
// uniformity visually in Figures 3, 4 and 6; the tests here check it
// statistically).

// ChiSquareStatistic returns the chi-square statistic for observed counts
// against expected counts. Slices must have equal length and positive
// expectations.
func ChiSquareStatistic(observed []int, expected []float64) (float64, error) {
	if len(observed) != len(expected) {
		return 0, fmt.Errorf("stats: chi-square length mismatch %d vs %d", len(observed), len(expected))
	}
	var x2 float64
	for i := range observed {
		if expected[i] <= 0 {
			return 0, fmt.Errorf("stats: chi-square expected count %v <= 0 at bin %d", expected[i], i)
		}
		d := float64(observed[i]) - expected[i]
		x2 += d * d / expected[i]
	}
	return x2, nil
}

// ChiSquareCritical returns an approximate upper critical value of the
// chi-square distribution with df degrees of freedom at tail probability
// alpha, using the Wilson-Hilferty cube approximation. Accurate to a few
// percent for df >= 3, which suffices for the uniformity tests.
func ChiSquareCritical(df int, alpha float64) float64 {
	if df < 1 {
		panic(fmt.Sprintf("stats: chi-square df %d < 1", df))
	}
	z := ZQuantile(1 - alpha)
	k := float64(df)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t
}

// UniformityTest bins unit-interval samples into bins equal-width buckets and
// reports whether the chi-square statistic is below the critical value at
// significance alpha (i.e. whether uniformity is NOT rejected).
func UniformityTest(samples []float64, bins int, alpha float64) (stat, critical float64, uniform bool, err error) {
	if bins < 2 {
		return 0, 0, false, fmt.Errorf("stats: uniformity test needs >= 2 bins, got %d", bins)
	}
	if len(samples) < 5*bins {
		return 0, 0, false, fmt.Errorf("stats: too few samples (%d) for %d bins", len(samples), bins)
	}
	obs := make([]int, bins)
	for _, s := range samples {
		if s < 0 || s > 1 {
			return 0, 0, false, fmt.Errorf("stats: sample %v outside [0,1]", s)
		}
		i := int(s * float64(bins))
		if i == bins {
			i = bins - 1
		}
		obs[i]++
	}
	exp := make([]float64, bins)
	e := float64(len(samples)) / float64(bins)
	for i := range exp {
		exp[i] = e
	}
	stat, err = ChiSquareStatistic(obs, exp)
	if err != nil {
		return 0, 0, false, err
	}
	critical = ChiSquareCritical(bins-1, alpha)
	return stat, critical, stat <= critical, nil
}
