package stats

import "math"

// Confidence machinery for the randomized GET-NEXT operators
// (Sections 4.4-4.5). Stability estimates are sample means of Bernoulli
// variables; the paper uses the central limit theorem with the plug-in
// standard deviation s = sqrt(m(1-m)) and the Z-table to bound the
// confidence error e = Z(1-alpha/2) * sqrt(m(1-m)/N)  (Equation 10).

// ConfidenceError returns the half-width e of the 1-alpha confidence
// interval around the sample proportion m after n samples (Equation 10).
// n must be positive; m is clamped to [0, 1].
//
// At the boundaries m = 0 and m = 1 the plug-in variance m(1-m) degenerates
// and Equation 10 claims a zero-width interval — after a single sample with
// zero hits it would report certainty. There the Wilson score half-width
// z^2/(n + z^2) is returned instead: for zero observed hits the Wilson upper
// bound is exactly z^2/(n + z^2) (the continuity-corrected cousin of the
// rule of three), which shrinks like 1/n instead of collapsing to 0.
// Interior proportions are untouched, so the function still agrees with the
// paper everywhere its formula is well-behaved.
func ConfidenceError(m float64, n int, alpha float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	if m < 0 {
		m = 0
	}
	if m > 1 {
		m = 1
	}
	z := ZForConfidence(alpha)
	if m == 0 || m == 1 {
		return z * z / (float64(n) + z*z)
	}
	return z * math.Sqrt(m*(1-m)/float64(n))
}

// RequiredSamples returns the expected number of samples needed to bound the
// confidence error of a proportion near s at level 1-alpha by e
// (Equation 11): N = s(1-s) * (Z(1-alpha/2)/e)^2, rounded up, and never less
// than one — the Equation 11 estimate is 0 at the degenerate proportions
// s = 0 and s = 1, but no estimate exists before the first sample.
func RequiredSamples(s, alpha, e float64) int {
	if e <= 0 {
		return math.MaxInt32
	}
	z := ZForConfidence(alpha)
	n := s * (1 - s) * (z / e) * (z / e)
	return max(int(math.Ceil(n)), 1)
}

// GeometricExpectation returns the expected number of independent trials
// until the first success for success probability s, i.e. 1/s: the expected
// sampling cost of first observing a ranking with stability s (Theorem 2).
func GeometricExpectation(s float64) float64 {
	if s <= 0 {
		return math.Inf(1)
	}
	return 1 / s
}

// GeometricVariance returns the variance (1-s)/s^2 of the first-success
// trial count for success probability s (Theorem 2).
func GeometricVariance(s float64) float64 {
	if s <= 0 {
		return math.Inf(1)
	}
	return (1 - s) / (s * s)
}

// BernoulliMean and BernoulliStdDev describe the per-trial distribution of
// the ranking-observation indicator with stability s (Section 4.4).
func BernoulliMean(s float64) float64 { return s }

// BernoulliStdDev returns sqrt(s(1-s)).
func BernoulliStdDev(s float64) float64 {
	if s < 0 || s > 1 {
		return math.NaN()
	}
	return math.Sqrt(s * (1 - s))
}

// HoeffdingSamples returns the distribution-free sample count guaranteeing
// |estimate - truth| <= e with probability 1-alpha for a bounded [0,1]
// variable (Hoeffding's inequality, the paper's reference [27]):
//
//	N >= ln(2/alpha) / (2 e^2)
//
// Unlike the CLT-based Equation 11 this bound needs no plug-in estimate of
// the proportion, at the cost of being conservative.
func HoeffdingSamples(e, alpha float64) int {
	if e <= 0 || alpha <= 0 || alpha >= 1 {
		return math.MaxInt32
	}
	return int(math.Ceil(math.Log(2/alpha) / (2 * e * e)))
}

// HoeffdingError returns the guaranteed half-width after n samples at
// confidence 1-alpha: e = sqrt(ln(2/alpha) / (2 n)).
func HoeffdingError(n int, alpha float64) float64 {
	if n <= 0 || alpha <= 0 || alpha >= 1 {
		return math.Inf(1)
	}
	return math.Sqrt(math.Log(2/alpha) / (2 * float64(n)))
}
