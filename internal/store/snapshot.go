package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"stablerank/internal/vecmat"
)

// Pool snapshots wrap the versioned vecmat matrix codec in a self-contained
// checksummed frame, so a snapshot's integrity travels with its bytes — it
// holds across backends (MemStore has no envelope CRC) and across files
// copied between data directories by operators:
//
//	offset  size  field
//	0       4     magic "SRSN"
//	4       4     snapshot version (uint32, little endian)
//	8       4     CRC-32C of the matrix bytes
//	12      ...   vecmat-encoded matrix (see vecmat.LayoutVersion)
//
// SnapshotLayoutVersion folds both framing versions into one number for
// cache keys: bumping either codec changes the key, so stale snapshots read
// as misses rather than decode errors.

const (
	snapMagic      = "SRSN"
	snapVersion    = 1
	snapHeaderSize = 4 + 4 + 4
)

// SnapshotLayoutVersion identifies the full snapshot byte layout (frame and
// matrix codec); it belongs in every snapshot cache key.
const SnapshotLayoutVersion = snapVersion<<16 | vecmat.LayoutVersion

// EncodeSnapshot frames an encoded sample-pool matrix for persistence.
func EncodeSnapshot(m vecmat.Matrix) []byte {
	body := m.Encode()
	buf := make([]byte, snapHeaderSize+len(body))
	copy(buf, snapMagic)
	binary.LittleEndian.PutUint32(buf[4:], snapVersion)
	binary.LittleEndian.PutUint32(buf[8:], crc32.Checksum(body, crcTable))
	copy(buf[snapHeaderSize:], body)
	return buf
}

// DecodeSnapshot verifies and decodes a pool snapshot. Framing and checksum
// failures report ErrCorrupt; like vecmat.Decode it never panics on
// arbitrary input, which FuzzSnapshotDecode pins.
func DecodeSnapshot(data []byte) (vecmat.Matrix, error) {
	if len(data) < snapHeaderSize {
		return vecmat.Matrix{}, fmt.Errorf("store: snapshot truncated at %d bytes: %w", len(data), ErrCorrupt)
	}
	if string(data[:4]) != snapMagic {
		return vecmat.Matrix{}, fmt.Errorf("store: bad snapshot magic %q: %w", data[:4], ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != snapVersion {
		return vecmat.Matrix{}, fmt.Errorf("store: unsupported snapshot version %d: %w", v, ErrCorrupt)
	}
	body := data[snapHeaderSize:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(data[8:]); got != want {
		return vecmat.Matrix{}, fmt.Errorf("store: snapshot checksum %08x, want %08x: %w", got, want, ErrCorrupt)
	}
	m, err := vecmat.Decode(body)
	if err != nil {
		return vecmat.Matrix{}, fmt.Errorf("store: snapshot matrix: %v: %w", err, ErrCorrupt)
	}
	return m, nil
}
