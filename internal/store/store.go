// Package store is the persistence subsystem behind stablerankd's durable
// state: the dataset catalog, the Monte-Carlo pool-snapshot cache, and the
// async-job checkpoint log. It deliberately exposes a tiny namespaced
// key-value contract — Put/Get/Delete/Entries over (namespace, key) pairs —
// so the durable layers above it stay backend-agnostic: the default
// FileStore keeps one checksummed file per entry on the local filesystem
// (zero new dependencies), MemStore backs tests and ephemeral servers, and a
// B-tree backend such as bbolt can slot in behind the same interface when
// single-file packing matters.
//
// Integrity is part of the contract, not an afterthought: every persisted
// value carries a CRC of its payload, Get verifies it on the way out, and a
// mismatch quarantines the entry (it stops being visible, the bytes are kept
// aside for inspection) and reports ErrCorrupt so callers rebuild instead of
// consuming garbage. ProvSQL's persistence of derived provenance artifacts
// alongside base data motivates the same discipline here: a snapshot is a
// cache of an expensive deterministic computation, so the only acceptable
// failure mode is "recompute", never "crash" or "serve corrupt samples".
package store

import (
	"errors"
	"time"
)

// Well-known namespaces used by the server's durable layers. Namespace names
// must be non-empty lowercase [a-z0-9_-] so every backend can map them to a
// directory or bucket verbatim.
const (
	NSDatasets    = "datasets"
	NSPools       = "pools"
	NSJobs        = "jobs"
	NSCheckpoints = "checkpoints"
)

// Sentinel errors of the Store contract.
var (
	// ErrNotFound reports that the (namespace, key) pair has no value.
	ErrNotFound = errors.New("store: key not found")
	// ErrCorrupt reports that a value failed its integrity check; the entry
	// has been quarantined and subsequent Gets return ErrNotFound.
	ErrCorrupt = errors.New("store: value failed integrity check")
)

// Entry describes one stored value, as reported by Entries.
type Entry struct {
	Key     string
	Bytes   int64     // size as accounted by SizeBytes (envelope included)
	ModTime time.Time // last write time, the eviction ordering key
}

// Store is the pluggable persistence contract. Implementations must be safe
// for concurrent use; Put must be atomic (a reader never observes a torn
// value) and Get must verify integrity, returning ErrCorrupt — after
// quarantining the entry — rather than a damaged value.
type Store interface {
	// Put durably stores value under (ns, key), replacing any previous value.
	Put(ns, key string, value []byte) error
	// Get returns the value stored under (ns, key), ErrNotFound when absent,
	// or ErrCorrupt when the stored bytes fail verification.
	Get(ns, key string) ([]byte, error)
	// Delete removes (ns, key); deleting an absent key is not an error.
	Delete(ns, key string) error
	// Entries lists a namespace's live entries sorted by ascending ModTime
	// (ties broken by key), the order size-capped caches evict in.
	Entries(ns string) ([]Entry, error)
	// SizeBytes returns the total accounted size of all live entries.
	SizeBytes() int64
	// Flush forces buffered state to durable storage.
	Flush() error
	// Close flushes and releases the store; the Store is unusable after.
	Close() error
}

// validNamespace gates namespace strings so every backend can use them as
// path components without escaping.
func validNamespace(ns string) bool {
	if ns == "" {
		return false
	}
	for _, c := range ns {
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}
