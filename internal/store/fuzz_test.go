package store

import (
	"errors"
	"math"
	"testing"

	"stablerank/internal/vecmat"
)

// FuzzSnapshotDecode drives the pool-snapshot decoder with arbitrary byte
// soup. The contract under fuzzing: DecodeSnapshot must never panic — a
// snapshot file is exactly the kind of input an operator can hand-copy,
// truncate with a full disk, or damage with bad RAM — every rejection must
// carry ErrCorrupt (the signal the cache layer rebuilds on), and any input
// that IS accepted must decode to a well-formed matrix that re-encodes to an
// accepted snapshot of the same shape.
func FuzzSnapshotDecode(f *testing.F) {
	// Seed the corpus from real encoded fixtures spanning the shapes the
	// server produces (pool stride = dataset dimension, 2..5)...
	for _, shape := range [][2]int{{0, 2}, {1, 2}, {7, 3}, {16, 4}, {3, 5}} {
		m := vecmat.New(shape[0], shape[1])
		for i := 0; i < m.Rows(); i++ {
			row := m.Row(i)
			for j := range row {
				row[j] = math.Sqrt(float64(i+1)) / float64(j+1)
			}
		}
		f.Add(EncodeSnapshot(m))
	}
	// ...plus damaged variants of a valid snapshot: truncations at every
	// boundary, a checksum-breaking bit flip, wrong magics and versions.
	valid := EncodeSnapshot(vecmat.New(2, 3))
	f.Add(valid[:snapHeaderSize])
	f.Add(valid[:snapHeaderSize-1])
	f.Add(valid[:len(valid)-1])
	f.Add(flipLast(valid))
	f.Add([]byte("SRSN"))
	f.Add([]byte("SRM1"))
	f.Add(append([]byte(nil), make([]byte, 64)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rejection not marked ErrCorrupt: %v", err)
			}
			return
		}
		// Accepted snapshots must be internally consistent and re-encodable.
		if m.Stride() < 1 {
			t.Fatalf("accepted matrix has stride %d", m.Stride())
		}
		back, err := DecodeSnapshot(EncodeSnapshot(m))
		if err != nil {
			t.Fatalf("re-encoded snapshot rejected: %v", err)
		}
		if back.Rows() != m.Rows() || back.Stride() != m.Stride() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d", m.Rows(), m.Stride(), back.Rows(), back.Stride())
		}
		for i := 0; i < m.Rows(); i++ {
			a, b := m.Row(i), back.Row(i)
			for j := range a {
				if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
					t.Fatalf("round trip changed row %d col %d", i, j)
				}
			}
		}
	})
}
