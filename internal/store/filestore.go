package store

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FileStore is the default durable Store: one file per entry under
// root/<namespace>/, needing nothing beyond the standard library. Keys are
// arbitrary strings (analyzer keys contain '|', '=' and ','), so filenames
// are the base64url encoding of the key plus a ".kv" suffix.
//
// Every file is a checksummed envelope:
//
//	offset  size  field
//	0       4     magic "SRKV"
//	4       4     envelope version (uint32, little endian)
//	8       4     CRC-32C (Castagnoli) of the payload
//	12      8     payload length (uint64)
//	20      ...   payload
//
// Writes are crash-atomic: the envelope goes to a same-directory temp file,
// is fsynced, then renamed over the destination, so a reader (including a
// process restarted mid-write) sees either the old value or the new one,
// never a prefix. Get verifies the checksum and quarantines mismatches by
// renaming the file to a ".corrupt" sibling — the entry disappears from the
// live set, the bytes stay on disk for inspection, and the caller gets
// ErrCorrupt to trigger a rebuild.
type FileStore struct {
	root string

	mu    sync.Mutex
	sizes map[string]map[string]int64 // ns -> filename -> envelope bytes
	total int64
	dirty bool // a write happened since the last Flush
}

const (
	fileMagic       = "SRKV"
	fileVersion     = 1
	fileHeaderSize  = 4 + 4 + 4 + 8
	fileSuffix      = ".kv"
	corruptSuffix   = ".corrupt"
	maxFilePayload  = 1 << 33 // 8 GiB; rejects absurd lengths from damaged headers
	tmpSuffixFormat = ".tmp"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Open opens (creating if needed) a file store rooted at dir and indexes the
// existing entries. Quarantined and temp files from earlier runs are ignored
// (stale temp files are removed).
func Open(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &FileStore{root: dir, sizes: make(map[string]map[string]int64)}
	nsDirs, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	for _, nd := range nsDirs {
		if !nd.IsDir() || !validNamespace(nd.Name()) {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, nd.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
		for _, f := range files {
			name := f.Name()
			if strings.HasSuffix(name, tmpSuffixFormat) {
				os.Remove(filepath.Join(dir, nd.Name(), name))
				continue
			}
			if !strings.HasSuffix(name, fileSuffix) {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			s.index(nd.Name(), name, info.Size())
		}
	}
	return s, nil
}

// Root returns the directory the store lives in.
func (s *FileStore) Root() string { return s.root }

func (s *FileStore) index(ns, filename string, size int64) {
	m := s.sizes[ns]
	if m == nil {
		m = make(map[string]int64)
		s.sizes[ns] = m
	}
	if old, ok := m[filename]; ok {
		s.total -= old
	}
	m[filename] = size
	s.total += size
}

func (s *FileStore) unindex(ns, filename string) {
	if old, ok := s.sizes[ns][filename]; ok {
		s.total -= old
		delete(s.sizes[ns], filename)
	}
}

func keyFilename(key string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(key)) + fileSuffix
}

func filenameKey(name string) (string, bool) {
	raw, err := base64.RawURLEncoding.DecodeString(strings.TrimSuffix(name, fileSuffix))
	if err != nil {
		return "", false
	}
	return string(raw), true
}

// Put implements Store with a checksummed write-temp-fsync-rename sequence.
func (s *FileStore) Put(ns, key string, value []byte) error {
	if !validNamespace(ns) {
		return fmt.Errorf("store: invalid namespace %q", ns)
	}
	nsDir := filepath.Join(s.root, ns)
	if err := os.MkdirAll(nsDir, 0o755); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", ns, key, err)
	}
	env := make([]byte, fileHeaderSize+len(value))
	copy(env, fileMagic)
	binary.LittleEndian.PutUint32(env[4:], fileVersion)
	binary.LittleEndian.PutUint32(env[8:], crc32.Checksum(value, crcTable))
	binary.LittleEndian.PutUint64(env[12:], uint64(len(value)))
	copy(env[fileHeaderSize:], value)

	name := keyFilename(key)
	dst := filepath.Join(nsDir, name)
	tmp, err := os.CreateTemp(nsDir, name+".*"+tmpSuffixFormat)
	if err != nil {
		return fmt.Errorf("store: put %s/%s: %w", ns, key, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put %s/%s: %w", ns, key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put %s/%s: %w", ns, key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", ns, key, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("store: put %s/%s: %w", ns, key, err)
	}
	syncDir(nsDir)

	s.mu.Lock()
	s.index(ns, name, int64(len(env)))
	s.dirty = true
	s.mu.Unlock()
	return nil
}

// Get implements Store; a file that fails magic, version, length or checksum
// verification is quarantined and reported as ErrCorrupt.
func (s *FileStore) Get(ns, key string) ([]byte, error) {
	name := keyFilename(key)
	path := filepath.Join(s.root, ns, name)
	env, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %s/%s: %w", ns, key, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: get %s/%s: %w", ns, key, err)
	}
	payload, verr := verifyEnvelope(env)
	if verr != nil {
		s.quarantine(ns, name, path)
		return nil, fmt.Errorf("store: %s/%s: %v: %w", ns, key, verr, ErrCorrupt)
	}
	return payload, nil
}

// verifyEnvelope checks the envelope framing and checksum, returning the
// payload. It never panics on arbitrary bytes.
func verifyEnvelope(env []byte) ([]byte, error) {
	if len(env) < fileHeaderSize {
		return nil, fmt.Errorf("truncated envelope (%d bytes)", len(env))
	}
	if string(env[:4]) != fileMagic {
		return nil, fmt.Errorf("bad magic %q", env[:4])
	}
	if v := binary.LittleEndian.Uint32(env[4:]); v != fileVersion {
		return nil, fmt.Errorf("unsupported envelope version %d", v)
	}
	n := binary.LittleEndian.Uint64(env[12:])
	if n > maxFilePayload || n != uint64(len(env)-fileHeaderSize) {
		return nil, fmt.Errorf("payload length %d does not match envelope (%d bytes)", n, len(env))
	}
	payload := env[fileHeaderSize:]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(env[8:]); got != want {
		return nil, fmt.Errorf("checksum %08x, want %08x", got, want)
	}
	return payload, nil
}

// quarantine moves a damaged entry aside (replacing any previous quarantine
// of the same key) so the live set no longer contains it.
func (s *FileStore) quarantine(ns, name, path string) {
	if err := os.Rename(path, path+corruptSuffix); err != nil {
		// Renaming failed (e.g. the file vanished); removing keeps the
		// guarantee that a corrupt entry never stays live.
		os.Remove(path)
	}
	s.mu.Lock()
	s.unindex(ns, name)
	s.mu.Unlock()
}

// Delete implements Store.
func (s *FileStore) Delete(ns, key string) error {
	name := keyFilename(key)
	err := os.Remove(filepath.Join(s.root, ns, name))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %s/%s: %w", ns, key, err)
	}
	s.mu.Lock()
	s.unindex(ns, name)
	s.dirty = true
	s.mu.Unlock()
	return nil
}

// Entries implements Store, reading sizes and mod times from the filesystem.
func (s *FileStore) Entries(ns string) ([]Entry, error) {
	files, err := os.ReadDir(filepath.Join(s.root, ns))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: entries %s: %w", ns, err)
	}
	out := make([]Entry, 0, len(files))
	for _, f := range files {
		if !strings.HasSuffix(f.Name(), fileSuffix) {
			continue
		}
		key, ok := filenameKey(f.Name())
		if !ok {
			continue
		}
		info, err := f.Info()
		if err != nil {
			continue
		}
		out = append(out, Entry{Key: key, Bytes: info.Size(), ModTime: info.ModTime()})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].ModTime.Equal(out[j].ModTime) {
			return out[i].ModTime.Before(out[j].ModTime)
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

// SizeBytes implements Store from the in-memory index (no filesystem walk).
func (s *FileStore) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Flush implements Store. Individual Puts already fsync file and directory,
// so Flush only re-syncs the namespace directories when anything was written
// since the last call — the explicit barrier Close and SIGTERM drains use.
func (s *FileStore) Flush() error {
	s.mu.Lock()
	dirty := s.dirty
	s.dirty = false
	var dirs []string
	for ns := range s.sizes {
		dirs = append(dirs, filepath.Join(s.root, ns))
	}
	s.mu.Unlock()
	if !dirty {
		return nil
	}
	for _, d := range dirs {
		syncDir(d)
	}
	syncDir(s.root)
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error { return s.Flush() }

// syncDir fsyncs a directory so a rename is durable; best-effort because
// some filesystems reject directory syncs.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
