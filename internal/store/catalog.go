package store

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"stablerank/internal/dataset"
)

// Dataset catalog records: the persisted form of one named dataset in the
// registry. The payload is the dataset's own CSV form (header row included)
// behind a small binary preamble carrying the generation counter, so
// analyzer and response-cache keys stay distinct across replacement cycles
// that span restarts:
//
//	offset  size  field
//	0       4     magic "SRDS"
//	4       4     record version (uint32, little endian)
//	8       8     generation (uint64)
//	16      ...   CSV (WriteCSV with header)
//
// CSV floats use strconv's shortest round-trip formatting, so a decode
// returns attribute values bit-identical to the encoded dataset and the
// content hash — the pool-snapshot cache key — is stable across restarts.

const (
	catalogMagic      = "SRDS"
	catalogVersion    = 1
	catalogHeaderSize = 4 + 4 + 8
)

// EncodeDataset serializes one catalog record.
func EncodeDataset(gen uint64, ds *dataset.Dataset) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(catalogHeaderSize + 32*ds.N())
	buf.WriteString(catalogMagic)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], catalogVersion)
	binary.LittleEndian.PutUint64(hdr[4:], gen)
	buf.Write(hdr[:])
	if err := ds.WriteCSV(&buf, true); err != nil {
		return nil, fmt.Errorf("store: encode dataset: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeDataset parses a catalog record. Malformed records report ErrCorrupt
// so the registry skips them (the file store has already quarantined the
// envelope-level damage; this guards record-level damage).
func DecodeDataset(data []byte) (uint64, *dataset.Dataset, error) {
	if len(data) < catalogHeaderSize {
		return 0, nil, fmt.Errorf("store: dataset record truncated at %d bytes: %w", len(data), ErrCorrupt)
	}
	if string(data[:4]) != catalogMagic {
		return 0, nil, fmt.Errorf("store: bad dataset record magic %q: %w", data[:4], ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != catalogVersion {
		return 0, nil, fmt.Errorf("store: unsupported dataset record version %d: %w", v, ErrCorrupt)
	}
	gen := binary.LittleEndian.Uint64(data[8:])
	ds, err := dataset.ReadCSV(bytes.NewReader(data[catalogHeaderSize:]), true)
	if err != nil {
		return 0, nil, fmt.Errorf("store: dataset record CSV: %v: %w", err, ErrCorrupt)
	}
	return gen, ds, nil
}
