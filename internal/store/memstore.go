package store

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// MemStore is the in-memory Store: the backend for tests and for servers
// that want the durable layers' code paths (snapshot reuse within a process,
// checkpoint bookkeeping) without touching disk. Values are copied on the
// way in and out, so callers cannot alias the stored bytes.
type MemStore struct {
	mu   sync.Mutex
	ns   map[string]map[string]memEntry
	size int64
	tick int64 // logical clock standing in for mod times
}

type memEntry struct {
	value []byte
	tick  int64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{ns: make(map[string]map[string]memEntry)}
}

// Put implements Store.
func (s *MemStore) Put(ns, key string, value []byte) error {
	if !validNamespace(ns) {
		return fmt.Errorf("store: invalid namespace %q", ns)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.ns[ns]
	if m == nil {
		m = make(map[string]memEntry)
		s.ns[ns] = m
	}
	if old, ok := m[key]; ok {
		s.size -= int64(len(old.value))
	}
	s.tick++
	m[key] = memEntry{value: append([]byte(nil), value...), tick: s.tick}
	s.size += int64(len(value))
	return nil
}

// Get implements Store.
func (s *MemStore) Get(ns, key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.ns[ns][key]
	if !ok {
		return nil, fmt.Errorf("store: %s/%s: %w", ns, key, ErrNotFound)
	}
	return append([]byte(nil), e.value...), nil
}

// Delete implements Store.
func (s *MemStore) Delete(ns, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.ns[ns][key]; ok {
		s.size -= int64(len(e.value))
		delete(s.ns[ns], key)
	}
	return nil
}

// Entries implements Store; mod times are synthesized from the insertion
// order so eviction ordering behaves like the file-backed store's.
func (s *MemStore) Entries(ns string) ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.ns[ns]
	out := make([]Entry, 0, len(m))
	base := time.Unix(0, 0)
	for k, e := range m {
		out = append(out, Entry{Key: k, Bytes: int64(len(e.value)), ModTime: base.Add(time.Duration(e.tick))})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].ModTime.Equal(out[j].ModTime) {
			return out[i].ModTime.Before(out[j].ModTime)
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

// SizeBytes implements Store.
func (s *MemStore) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Flush implements Store (a no-op: nothing is buffered).
func (s *MemStore) Flush() error { return nil }

// Close implements Store.
func (s *MemStore) Close() error { return nil }
