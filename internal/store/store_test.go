package store

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/vecmat"
)

// stores returns both implementations so the contract tests run against each.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"file": fs, "mem": NewMemStore()}
}

// TestStoreContract exercises Put/Get/Delete/Entries/SizeBytes on both
// backends, including keys full of filename-hostile characters.
func TestStoreContract(t *testing.T) {
	for name, st := range stores(t) {
		t.Run(name, func(t *testing.T) {
			key := `a1b2|w=[1,0.5];cos>=0.998|seed=42|n=100000|layout=65537`
			if _, err := st.Get(NSPools, key); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get absent = %v, want ErrNotFound", err)
			}
			if err := st.Put(NSPools, key, []byte("hello")); err != nil {
				t.Fatal(err)
			}
			if err := st.Put(NSPools, "other", []byte("world!")); err != nil {
				t.Fatal(err)
			}
			got, err := st.Get(NSPools, key)
			if err != nil || string(got) != "hello" {
				t.Fatalf("Get = %q, %v", got, err)
			}
			// Overwrite replaces and re-accounts.
			if err := st.Put(NSPools, key, []byte("hi")); err != nil {
				t.Fatal(err)
			}
			if got, _ = st.Get(NSPools, key); string(got) != "hi" {
				t.Fatalf("Get after overwrite = %q", got)
			}
			entries, err := st.Entries(NSPools)
			if err != nil || len(entries) != 2 {
				t.Fatalf("Entries = %v, %v", entries, err)
			}
			keys := map[string]bool{}
			var sum int64
			for _, e := range entries {
				keys[e.Key] = true
				sum += e.Bytes
			}
			if !keys[key] || !keys["other"] {
				t.Fatalf("Entries keys = %v", entries)
			}
			if st.SizeBytes() != sum {
				t.Errorf("SizeBytes %d != entry sum %d", st.SizeBytes(), sum)
			}
			if err := st.Delete(NSPools, key); err != nil {
				t.Fatal(err)
			}
			if err := st.Delete(NSPools, key); err != nil {
				t.Fatalf("Delete absent = %v", err)
			}
			if _, err := st.Get(NSPools, key); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get deleted = %v", err)
			}
			if err := st.Put("Bad NS", key, nil); err == nil {
				t.Error("Put accepted an invalid namespace")
			}
			if err := st.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFileStoreReopen pins that a fresh Open over an existing directory sees
// the previous entries with the right accounting and clears stale temp files.
func TestFileStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(NSDatasets, "alpha", []byte("payload-1")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(NSJobs, "j-1", []byte("payload-22")); err != nil {
		t.Fatal(err)
	}
	size := s1.SizeBytes()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	// A stale temp file from a crashed write must be swept, not indexed.
	stale := filepath.Join(dir, NSJobs, "zzz.123.tmp")
	if err := os.WriteFile(stale, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.SizeBytes() != size {
		t.Errorf("reopened SizeBytes %d, want %d", s2.SizeBytes(), size)
	}
	got, err := s2.Get(NSDatasets, "alpha")
	if err != nil || string(got) != "payload-1" {
		t.Fatalf("reopened Get = %q, %v", got, err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived reopen")
	}
}

// TestFileStoreQuarantine flips one payload byte on disk and checks the full
// corrupt-entry protocol: ErrCorrupt once, a .corrupt sibling kept for
// inspection, the live entry gone, and accounting shrunk.
func TestFileStoreQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(NSPools, "victim", []byte("precious bytes")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, NSPools, keyFilename("victim"))
	env, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	env[len(env)-1] ^= 0xFF
	if err := os.WriteFile(path, env, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(NSPools, "victim"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get corrupt = %v, want ErrCorrupt", err)
	}
	if _, err := s.Get(NSPools, "victim"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after quarantine = %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(path + corruptSuffix); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}
	if s.SizeBytes() != 0 {
		t.Errorf("SizeBytes after quarantine = %d, want 0", s.SizeBytes())
	}
	entries, err := s.Entries(NSPools)
	if err != nil || len(entries) != 0 {
		t.Errorf("Entries after quarantine = %v, %v", entries, err)
	}
}

// TestEnvelopeRejectsMalformed walks framing failure modes below the
// checksum: truncation, wrong magic/version, lying length fields.
func TestEnvelopeRejectsMalformed(t *testing.T) {
	for _, env := range [][]byte{
		nil,
		[]byte("SRKV"),
		[]byte("XXXXxxxxxxxxxxxxxxxx"),
		append([]byte("SRKV\x09\x00\x00\x00"), make([]byte, 12)...),                                  // bad version
		append([]byte("SRKV\x01\x00\x00\x00"), []byte{0, 0, 0, 0, 200, 0, 0, 0, 0, 0, 0, 0, 'x'}...), // lying length
	} {
		if _, err := verifyEnvelope(env); err == nil {
			t.Errorf("verifyEnvelope accepted %q", env)
		}
	}
}

// TestSnapshotRoundTrip pins the pool snapshot frame: bit-identical matrix
// out, ErrCorrupt (never a panic) on damaged frames.
func TestSnapshotRoundTrip(t *testing.T) {
	m := vecmat.New(3, 4)
	for i := 0; i < 3; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float64(i)*1.25 - float64(j)*math.Pi
		}
	}
	enc := EncodeSnapshot(m)
	got, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if got.Rows() != 3 || got.Stride() != 4 {
		t.Fatalf("decoded shape %dx%d", got.Rows(), got.Stride())
	}
	for i := 0; i < 3; i++ {
		a, b := m.Row(i), got.Row(i)
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
	for name, data := range map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("NOPE"), enc[4:]...),
		"bad version": append([]byte("SRSN\xff\x00\x00\x00"), enc[8:]...),
		"bit flip":    flipLast(enc),
		"truncated":   enc[:len(enc)-5],
	} {
		if _, err := DecodeSnapshot(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: DecodeSnapshot = %v, want ErrCorrupt", name, err)
		}
	}
}

func flipLast(b []byte) []byte {
	out := append([]byte(nil), b...)
	out[len(out)-1] ^= 1
	return out
}

// TestCatalogRoundTrip pins generation plus bit-exact dataset content — and
// therefore a stable content hash — across encode/decode.
func TestCatalogRoundTrip(t *testing.T) {
	ds := dataset.MustNew(3)
	ds.MustAdd("x", 0.1, 0.2, 0.3)
	ds.MustAdd("y", 1.0/3.0, math.Pi, 2.5e-17)
	rec, err := EncodeDataset(7, ds)
	if err != nil {
		t.Fatal(err)
	}
	gen, got, err := DecodeDataset(rec)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 7 {
		t.Errorf("gen = %d, want 7", gen)
	}
	if got.Hash() != ds.Hash() {
		t.Errorf("hash changed across round trip: %x != %x", got.Hash(), ds.Hash())
	}
	if got.N() != 2 || got.D() != 3 || got.Item(1).ID != "y" {
		t.Errorf("decoded dataset = %d items x %d", got.N(), got.D())
	}
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOPE"), rec[4:]...),
		"bad csv":   append(append([]byte(nil), rec[:catalogHeaderSize]...), []byte("id,a\nbroken")...),
	} {
		if _, _, err := DecodeDataset(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: DecodeDataset = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestDatasetHash sanity-checks the content hash: equal content hashes
// equal, any content change moves it.
func TestDatasetHash(t *testing.T) {
	mk := func(id string, v float64) *dataset.Dataset {
		ds := dataset.MustNew(2)
		ds.MustAdd(id, v, 1)
		return ds
	}
	if mk("a", 0.5).Hash() != mk("a", 0.5).Hash() {
		t.Error("equal datasets hash differently")
	}
	if mk("a", 0.5).Hash() == mk("b", 0.5).Hash() {
		t.Error("id change kept the hash")
	}
	if mk("a", 0.5).Hash() == mk("a", 0.25).Hash() {
		t.Error("value change kept the hash")
	}
}

// TestKeyFilenameRoundTrip checks the filename encoding is injective and
// reversible for hostile keys.
func TestKeyFilenameRoundTrip(t *testing.T) {
	for _, key := range []string{"", "plain", "a/b\\c", "sp ace", strings.Repeat("k", 100), "\x00\xff"} {
		name := keyFilename(key)
		if strings.ContainsAny(name, "/\\ ") {
			t.Errorf("filename %q not filesystem-safe", name)
		}
		got, ok := filenameKey(name)
		if !ok || got != key {
			t.Errorf("round trip %q -> %q -> %q, %v", key, name, got, ok)
		}
	}
}
