package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"stablerank/internal/geom"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("dimension 0 accepted")
	}
	ds, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.D() != 3 || ds.N() != 0 {
		t.Errorf("D=%d N=%d", ds.D(), ds.N())
	}
}

func TestAddAndAccessors(t *testing.T) {
	ds := MustNew(2)
	if err := ds.Add("a", geom.Vector{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Add("b", geom.Vector{1, 2, 3}); err == nil {
		t.Error("wrong-dimension item accepted")
	}
	if ds.N() != 1 {
		t.Errorf("N = %d", ds.N())
	}
	it := ds.Item(0)
	if it.ID != "a" || !it.Attrs.Equal(geom.Vector{1, 2}, 0) {
		t.Errorf("Item(0) = %+v", it)
	}
	// Add must copy the caller's slice.
	v := geom.Vector{5, 6}
	ds.Add("c", v)
	v[0] = 99
	if ds.Attrs(1)[0] != 5 {
		t.Error("Add aliases caller storage")
	}
	// Non-finite attributes are rejected.
	if err := ds.Add("nan", geom.Vector{math.NaN(), 1}); err == nil {
		t.Error("NaN attribute accepted")
	}
	if err := ds.Add("inf", geom.Vector{1, math.Inf(1)}); err == nil {
		t.Error("Inf attribute accepted")
	}
}

func TestScore(t *testing.T) {
	ds := Figure1()
	w := geom.Vector{1, 1}
	// Figure 1a scores.
	wants := []float64{1.34, 1.48, 1.36, 1.38, 1.35}
	for i, want := range wants {
		if got := ds.Score(w, i); math.Abs(got-want) > 1e-9 {
			t.Errorf("Score(%s) = %v, want %v", ds.Item(i).ID, got, want)
		}
	}
}

func TestDominates(t *testing.T) {
	tests := []struct {
		name string
		a, b geom.Vector
		want bool
	}{
		{"strictly better both", geom.Vector{2, 2}, geom.Vector{1, 1}, true},
		{"equal one better other", geom.Vector{2, 1}, geom.Vector{1, 1}, true},
		{"identical", geom.Vector{1, 1}, geom.Vector{1, 1}, false},
		{"incomparable", geom.Vector{2, 0}, geom.Vector{0, 2}, false},
		{"worse", geom.Vector{1, 1}, geom.Vector{2, 2}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			a := Item{ID: "a", Attrs: tc.a}
			b := Item{ID: "b", Attrs: tc.b}
			if got := Dominates(a, b); got != tc.want {
				t.Errorf("Dominates = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDominanceImpliesScoreOrder(t *testing.T) {
	// Property: if a dominates b then every non-negative weight scores a at
	// least as high as b.
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(31))}
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 2 + rr.Intn(4)
		a := make(geom.Vector, d)
		b := make(geom.Vector, d)
		for j := 0; j < d; j++ {
			b[j] = rr.Float64()
			a[j] = b[j] + rr.Float64()*0.5
		}
		w := make(geom.Vector, d)
		for j := range w {
			w[j] = rr.Float64()
		}
		if !Dominates(Item{Attrs: a}, Item{Attrs: b}) {
			return true // a == b coordinate-wise with probability ~0
		}
		return w.Dot(a) >= w.Dot(b)-1e-12
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestSkylineToyExample(t *testing.T) {
	// Section 2.2.5: skyline of the toy dataset is {t1, t2, t5}.
	ds := Toy225()
	got := ds.Skyline()
	want := []int{0, 1, 4}
	if len(got) != len(want) {
		t.Fatalf("skyline = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("skyline = %v, want %v", got, want)
		}
	}
	for _, i := range []int{2, 3} {
		if ds.IsSkylineMember(i) {
			t.Errorf("item %d should be dominated", i)
		}
	}
	if !ds.IsSkylineMember(1) {
		t.Error("t2 should be on the skyline")
	}
}

func TestSkylineAgainstBruteForce(t *testing.T) {
	rr := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rr.Intn(3)
		ds := MustNew(d)
		n := 50 + rr.Intn(100)
		for i := 0; i < n; i++ {
			v := make([]float64, d)
			for j := range v {
				v[j] = rr.Float64()
			}
			ds.MustAdd("", v...)
		}
		sky := ds.Skyline()
		inSky := make(map[int]bool, len(sky))
		for _, i := range sky {
			inSky[i] = true
		}
		for i := 0; i < n; i++ {
			if got, want := inSky[i], ds.IsSkylineMember(i); got != want {
				t.Fatalf("item %d: skyline membership %v, brute force %v", i, got, want)
			}
		}
	}
}

func TestSkylineEmpty(t *testing.T) {
	if got := MustNew(2).Skyline(); got != nil {
		t.Errorf("empty skyline = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	ds := MustNew(2)
	ds.MustAdd("a", 10, 100)
	ds.MustAdd("b", 20, 300)
	ds.MustAdd("c", 15, 200)
	norm, err := ds.Normalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !norm.Attrs(0).Equal(geom.Vector{0, 0}, 1e-12) {
		t.Errorf("a normalized = %v", norm.Attrs(0))
	}
	if !norm.Attrs(1).Equal(geom.Vector{1, 1}, 1e-12) {
		t.Errorf("b normalized = %v", norm.Attrs(1))
	}
	if !norm.Attrs(2).Equal(geom.Vector{0.5, 0.5}, 1e-12) {
		t.Errorf("c normalized = %v", norm.Attrs(2))
	}
	// Lower-better flips.
	flip, err := ds.Normalize([]Direction{LowerBetter, HigherBetter})
	if err != nil {
		t.Fatal(err)
	}
	if !flip.Attrs(0).Equal(geom.Vector{1, 0}, 1e-12) {
		t.Errorf("a flipped = %v", flip.Attrs(0))
	}
	// Original untouched.
	if ds.Attrs(0)[0] != 10 {
		t.Error("Normalize mutated the source dataset")
	}
}

func TestNormalizeEdgeCases(t *testing.T) {
	if _, err := MustNew(2).Normalize(nil); err == nil {
		t.Error("empty dataset normalized")
	}
	ds := MustNew(2)
	ds.MustAdd("a", 5, 1)
	ds.MustAdd("b", 5, 2)
	norm, err := ds.Normalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if norm.Attrs(0)[0] != 0 || norm.Attrs(1)[0] != 0 {
		t.Error("constant attribute should normalize to 0")
	}
	if _, err := ds.Normalize([]Direction{HigherBetter}); err == nil {
		t.Error("wrong direction count accepted")
	}
}

func TestStandardize(t *testing.T) {
	ds := MustNew(2)
	ds.MustAdd("a", 0, 0)
	ds.MustAdd("b", 2, 20)
	ds.MustAdd("c", 4, 40)
	std, err := ds.Standardize()
	if err != nil {
		t.Fatal(err)
	}
	// Both attributes must end with equal variance and min 0.
	for j := 0; j < 2; j++ {
		var mean, m2, min float64
		min = math.Inf(1)
		for i := 0; i < std.N(); i++ {
			v := std.Attrs(i)[j]
			mean += v
			if v < min {
				min = v
			}
		}
		mean /= float64(std.N())
		for i := 0; i < std.N(); i++ {
			d := std.Attrs(i)[j] - mean
			m2 += d * d
		}
		sd := math.Sqrt(m2 / float64(std.N()))
		if math.Abs(sd-1) > 1e-9 {
			t.Errorf("attr %d stddev = %v, want 1", j, sd)
		}
		if math.Abs(min) > 1e-12 {
			t.Errorf("attr %d min = %v, want 0", j, min)
		}
	}
	if _, err := MustNew(1).Standardize(); err == nil {
		t.Error("empty dataset standardized")
	}
}

func TestProjectAndHead(t *testing.T) {
	ds := MustNew(3)
	ds.MustAdd("a", 1, 2, 3)
	ds.MustAdd("b", 4, 5, 6)
	p, err := ds.Project(2)
	if err != nil {
		t.Fatal(err)
	}
	if p.D() != 2 || !p.Attrs(1).Equal(geom.Vector{4, 5}, 0) {
		t.Errorf("projection wrong: %v", p.Attrs(1))
	}
	if _, err := ds.Project(4); err == nil {
		t.Error("over-projection accepted")
	}
	h, err := ds.Head(1)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 1 || h.Item(0).ID != "a" {
		t.Errorf("head wrong: %+v", h.Item(0))
	}
	if _, err := ds.Head(5); err == nil {
		t.Error("oversized head accepted")
	}
}

func TestAttrRange(t *testing.T) {
	ds := MustNew(2)
	ds.MustAdd("a", 1, -5)
	ds.MustAdd("b", 3, 7)
	lo, hi, err := ds.AttrRange(1)
	if err != nil || lo != -5 || hi != 7 {
		t.Errorf("AttrRange = (%v, %v, %v)", lo, hi, err)
	}
	if _, _, err := ds.AttrRange(2); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	if _, _, err := MustNew(1).AttrRange(0); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := Figure1()
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.D() != ds.D() {
		t.Fatalf("round trip shape mismatch: %dx%d", back.N(), back.D())
	}
	for i := 0; i < ds.N(); i++ {
		if back.Item(i).ID != ds.Item(i).ID || !back.Attrs(i).Equal(ds.Attrs(i), 1e-12) {
			t.Errorf("item %d mismatch", i)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"id only", "a\nb\n"},
		{"bad float", "a,1,x\n"},
		{"ragged handled by csv pkg", "a,1,2\nb,3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.in), false); err == nil {
				t.Errorf("input %q accepted", tc.in)
			}
		})
	}
	// Header-only file is empty after the header.
	if _, err := ReadCSV(strings.NewReader("id,x1\n"), true); err == nil {
		t.Error("header-only file accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	ds := Figure1()
	c := ds.Clone()
	c.Attrs(0)[0] = 42
	if ds.Attrs(0)[0] == 42 {
		t.Error("Clone aliases item storage")
	}
}

func TestFixtureShapes(t *testing.T) {
	if ds := Figure1(); ds.N() != 5 || ds.D() != 2 {
		t.Error("Figure1 shape wrong")
	}
	if ds := Toy225(); ds.N() != 5 || ds.D() != 2 {
		t.Error("Toy225 shape wrong")
	}
}
