package dataset

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Hash returns a 64-bit content fingerprint of the dataset: dimension, item
// count, every identifier and every attribute's exact float bits, in order.
// Two datasets hash equal iff their contents are bit-identical, which is what
// makes derived artifacts (Monte-Carlo pool snapshots) safely addressable by
// dataset content rather than by mutable name/generation pairs. CSV output
// uses strconv's shortest round-trip formatting, so a dataset survives a
// persist/reload cycle with its hash intact.
func (ds *Dataset) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(ds.d))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(len(ds.items)))
	h.Write(buf[:])
	for _, it := range ds.items {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(it.ID)))
		h.Write(buf[:])
		h.Write([]byte(it.ID))
		for _, v := range it.Attrs {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}
