package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzLoadCSV drives ReadCSV with arbitrary byte soup. The contract under
// fuzzing: malformed headers, non-numeric or non-finite cells, ragged rows,
// and binary garbage must all surface as errors — never a panic — and any
// dataset that IS accepted must be internally consistent (uniform dimension,
// only finite attribute values).
func FuzzLoadCSV(f *testing.F) {
	// Seed the corpus from the bundled fixtures, both header modes...
	for _, ds := range []*Dataset{Figure1(), Toy225()} {
		for _, withHeader := range []bool{true, false} {
			var buf bytes.Buffer
			if err := ds.WriteCSV(&buf, withHeader); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.String(), withHeader)
		}
	}
	// ...plus handcrafted malformed shapes the parser must reject cleanly.
	for _, seed := range []string{
		"",                               // empty input
		"id,x1,x2\n",                     // header only
		"id,x1,x2\na,1\n",                // ragged row
		"id,x1,x2\na,1,NaN\n",            // NaN cell parses as a float but is not finite
		"id,x1,x2\na,1,+Inf\nb,2,-Inf\n", // infinities
		"id,x1,x2\na,1,two\n",            // non-numeric cell
		"onlyids\na\nb\n",                // no attribute columns
		"\"unterminated,1,2\n",           // broken quoting
		"id,x1,x2\r\na,1e308,2e308\r\n",  // CRLF + near-overflow floats
		"a,0.63,0.71\na,0.83,0.65\n",     // duplicate IDs (allowed today)
		"id;x1;x2\na;1;2\n",              // wrong delimiter: one giant column
		string([]byte{0xff, 0xfe, 0x00, ',', '1', '\n'}), // binary garbage
	} {
		f.Add(seed, true)
		f.Add(seed, false)
	}

	f.Fuzz(func(t *testing.T, data string, hasHeader bool) {
		ds, err := ReadCSV(strings.NewReader(data), hasHeader)
		if err != nil {
			if ds != nil {
				t.Fatalf("error %v with non-nil dataset", err)
			}
			return
		}
		// Accepted datasets must be well-formed.
		if ds.N() == 0 {
			t.Fatal("accepted dataset has no items")
		}
		if ds.D() < 1 {
			t.Fatalf("accepted dataset has dimension %d", ds.D())
		}
		for i := 0; i < ds.N(); i++ {
			attrs := ds.Attrs(i)
			if len(attrs) != ds.D() {
				t.Fatalf("item %d has %d attributes, dataset dimension %d", i, len(attrs), ds.D())
			}
			for j, v := range attrs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("item %d attribute %d is not finite: %v", i, j, v)
				}
			}
		}
		// An accepted dataset must round-trip: write it back out and reparse
		// to an identical catalog.
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf, false); err != nil {
			t.Fatalf("writing accepted dataset: %v", err)
		}
		back, err := ReadCSV(&buf, false)
		if err != nil {
			t.Fatalf("reparsing written dataset: %v", err)
		}
		if back.N() != ds.N() || back.D() != ds.D() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d", ds.N(), ds.D(), back.N(), back.D())
		}
		for i := 0; i < ds.N(); i++ {
			if back.Item(i).ID != ds.Item(i).ID {
				t.Fatalf("round trip changed item %d id", i)
			}
			for j := range ds.Attrs(i) {
				if back.Attrs(i)[j] != ds.Attrs(i)[j] {
					t.Fatalf("round trip changed item %d attribute %d", i, j)
				}
			}
		}
	})
}
