package dataset

// Fixtures from the paper, used across the test suites and examples.

// Figure1 returns the five-candidate HR database of Example 2 / Figure 1a.
// Under f = x1 + x2 the induced ranking is t2, t4, t3, t5, t1 and the full
// function space splits into 11 ranking regions (Figure 1c).
func Figure1() *Dataset {
	ds := MustNew(2)
	ds.MustAdd("t1", 0.63, 0.71)
	ds.MustAdd("t2", 0.83, 0.65)
	ds.MustAdd("t3", 0.58, 0.78)
	ds.MustAdd("t4", 0.70, 0.68)
	ds.MustAdd("t5", 0.53, 0.82)
	return ds
}

// Toy225 returns the Section 2.2.5 example
// D = {t1(1,0), t2(.99,.99), t3(.98,.98), t4(.97,.97), t5(0,1)} whose skyline
// is {t1, t2, t5} while the most stable top-3 is {t2, t3, t4}.
func Toy225() *Dataset {
	ds := MustNew(2)
	ds.MustAdd("t1", 1, 0)
	ds.MustAdd("t2", 0.99, 0.99)
	ds.MustAdd("t3", 0.98, 0.98)
	ds.MustAdd("t4", 0.97, 0.97)
	ds.MustAdd("t5", 0, 1)
	return ds
}
