package dataset

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"stablerank/internal/geom"
)

func deltaTestDS(t *testing.T, n int) *Dataset {
	t.Helper()
	ds := MustNew(2)
	for i := 0; i < n; i++ {
		if err := ds.Add(fmt.Sprintf("i%d", i), geom.NewVector(float64(i), float64(n-i))); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestApplyDeltasTrace(t *testing.T) {
	ds := deltaTestDS(t, 4)
	out, trace, err := ApplyDeltasTrace(ds,
		Delta{Op: AttrUpdate, ID: "i1", Attrs: geom.NewVector(9, 9)},
		Delta{Op: ItemRemove, ID: "i0"},
		Delta{Op: ItemAdd, ID: "new", Attrs: geom.NewVector(5, 5)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 4 {
		t.Fatalf("original mutated: n=%d", ds.N())
	}
	if out.N() != 4 {
		t.Fatalf("result n=%d, want 4", out.N())
	}
	// Update resolved at index 1, remove at 0, add appended at index 3 (after
	// the removal shifted everything down).
	if trace[0].Index != 1 || trace[1].Index != 0 || trace[2].Index != 3 {
		t.Fatalf("trace indices %d,%d,%d", trace[0].Index, trace[1].Index, trace[2].Index)
	}
	if trace[0].Prev == nil || trace[1].Prev == nil || trace[2].Prev != nil {
		t.Fatalf("trace prevs %v", trace)
	}
	if got := out.Item(0).ID; got != "i1" {
		t.Fatalf("item 0 = %q, want i1", got)
	}
	if got := out.Item(0).Attrs; got[0] != 9 || got[1] != 9 {
		t.Fatalf("update not applied: %v", got)
	}
	if got := out.Item(3).ID; got != "new" {
		t.Fatalf("item 3 = %q, want new", got)
	}
	// The result must equal a dataset built from scratch with the same
	// content — item order included.
	want := MustNew(2)
	for i := 0; i < out.N(); i++ {
		it := out.Item(i)
		if err := want.Add(it.ID, it.Attrs); err != nil {
			t.Fatal(err)
		}
	}
	if out.Hash() != want.Hash() {
		t.Fatal("delta result differs from from-scratch dataset")
	}
}

func TestApplyDeltasErrors(t *testing.T) {
	ds := deltaTestDS(t, 3)
	cases := []struct {
		name  string
		delta Delta
		want  string
	}{
		{"duplicate add", Delta{Op: ItemAdd, ID: "i0", Attrs: geom.NewVector(1, 1)}, "duplicate"},
		{"unknown remove", Delta{Op: ItemRemove, ID: "nope"}, "unknown"},
		{"unknown update", Delta{Op: AttrUpdate, ID: "nope", Attrs: geom.NewVector(1, 1)}, "unknown"},
		{"wrong dim", Delta{Op: AttrUpdate, ID: "i0", Attrs: geom.NewVector(1)}, "attributes"},
		{"nan attr", Delta{Op: AttrUpdate, ID: "i0", Attrs: geom.NewVector(1, math.NaN())}, "finite"},
		{"inf attr", Delta{Op: ItemAdd, ID: "x", Attrs: geom.NewVector(1, math.Inf(1))}, "finite"},
		{"bad op", Delta{Op: 0, ID: "i0"}, "unknown op"},
	}
	for _, tc := range cases {
		if _, err := ApplyDeltas(ds, tc.delta); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want containing %q", tc.name, err, tc.want)
		}
	}
	// A failing batch must leave no partial effect observable.
	if _, err := ApplyDeltas(ds, Delta{Op: ItemRemove, ID: "i2"}, Delta{Op: ItemRemove, ID: "i2"}); err == nil {
		t.Fatal("double remove should fail")
	}
	if ds.N() != 3 {
		t.Fatalf("failed batch mutated input: n=%d", ds.N())
	}
}

func TestDeltaOpString(t *testing.T) {
	if ItemAdd.String() != "add" || ItemRemove.String() != "remove" || AttrUpdate.String() != "update" {
		t.Fatal("op strings drifted from the PATCH wire format")
	}
	if !strings.Contains(DeltaOp(99).String(), "99") {
		t.Fatal("unknown op string should include the value")
	}
}
