// Package dataset implements the data model of Section 2.1.1: a fixed
// database of n items, each a d-length vector of scoring attributes,
// together with the preprocessing the paper assumes (min-max normalization
// with per-attribute preference direction, variance standardization),
// dominance tests, the skyline operator used for comparison in Section
// 2.2.5, and CSV input/output for the command-line tools.
package dataset

import (
	"errors"
	"fmt"
	"math"

	"stablerank/internal/geom"
)

// Item is a database item: an identifier plus its d scoring attributes.
// Non-scoring attributes are outside the model's concern (Section 2.1.1).
type Item struct {
	ID    string
	Attrs geom.Vector
}

// Dataset is an immutable-after-build collection of items sharing a common
// attribute dimension.
type Dataset struct {
	d     int
	items []Item
}

// New returns an empty dataset over d scoring attributes. d must be >= 1
// (the algorithms themselves require >= 2; 1 is permitted so projections can
// be built incrementally).
func New(d int) (*Dataset, error) {
	if d < 1 {
		return nil, fmt.Errorf("dataset: dimension %d < 1", d)
	}
	return &Dataset{d: d}, nil
}

// MustNew is New for statically-correct dimensions; it panics on error.
func MustNew(d int) *Dataset {
	ds, err := New(d)
	if err != nil {
		panic(err)
	}
	return ds
}

// Add appends an item. The attribute vector must have the dataset dimension
// and contain only finite values (NaN or infinite attributes would poison
// every downstream score comparison silently).
func (ds *Dataset) Add(id string, attrs geom.Vector) error {
	if len(attrs) != ds.d {
		return fmt.Errorf("dataset: item %q has %d attributes, want %d", id, len(attrs), ds.d)
	}
	for j, v := range attrs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dataset: item %q attribute %d is not finite (%v)", id, j, v)
		}
	}
	ds.items = append(ds.items, Item{ID: id, Attrs: attrs.Clone()})
	return nil
}

// MustAdd is Add that panics on dimension mismatch, for fixtures.
func (ds *Dataset) MustAdd(id string, attrs ...float64) {
	if err := ds.Add(id, geom.Vector(attrs)); err != nil {
		panic(err)
	}
}

// N returns the number of items.
func (ds *Dataset) N() int { return len(ds.items) }

// D returns the attribute dimension.
func (ds *Dataset) D() int { return ds.d }

// Item returns the i-th item (0-indexed insertion order).
func (ds *Dataset) Item(i int) Item { return ds.items[i] }

// Attrs returns the attribute vector of the i-th item without copying;
// callers must not modify it.
func (ds *Dataset) Attrs(i int) geom.Vector { return ds.items[i].Attrs }

// Score returns the linear score w . attrs of item i (Definition 1).
func (ds *Dataset) Score(w geom.Vector, i int) float64 {
	return w.Dot(ds.items[i].Attrs)
}

// Clone returns a deep copy.
func (ds *Dataset) Clone() *Dataset {
	out := &Dataset{d: ds.d, items: make([]Item, len(ds.items))}
	for i, it := range ds.items {
		out.items[i] = Item{ID: it.ID, Attrs: it.Attrs.Clone()}
	}
	return out
}

// Project returns a new dataset keeping only the first k attributes, the
// device the paper's experiments use to vary d over the Blue Nile data.
func (ds *Dataset) Project(k int) (*Dataset, error) {
	if k < 1 || k > ds.d {
		return nil, fmt.Errorf("dataset: cannot project %d attributes to %d", ds.d, k)
	}
	out := &Dataset{d: k, items: make([]Item, len(ds.items))}
	for i, it := range ds.items {
		out.items[i] = Item{ID: it.ID, Attrs: it.Attrs[:k].Clone()}
	}
	return out, nil
}

// Head returns a new dataset containing the first n items.
func (ds *Dataset) Head(n int) (*Dataset, error) {
	if n < 0 || n > len(ds.items) {
		return nil, fmt.Errorf("dataset: head %d out of range [0, %d]", n, len(ds.items))
	}
	out := &Dataset{d: ds.d, items: make([]Item, n)}
	copy(out.items, ds.items[:n])
	return out, nil
}

// Dominates reports whether item a dominates item b (Section 3): a is at
// least as good on every attribute and strictly better on at least one,
// larger values preferred.
func Dominates(a, b Item) bool {
	strict := false
	for j := range a.Attrs {
		if b.Attrs[j] > a.Attrs[j] {
			return false
		}
		if a.Attrs[j] > b.Attrs[j] {
			strict = true
		}
	}
	return strict
}

// DominatesIdx reports whether item i dominates item j in the dataset.
func (ds *Dataset) DominatesIdx(i, j int) bool {
	return Dominates(ds.items[i], ds.items[j])
}

// ErrEmptyDataset is returned by operations requiring at least one item.
var ErrEmptyDataset = errors.New("dataset: empty dataset")

// AttrRange returns the min and max of attribute j across the dataset.
func (ds *Dataset) AttrRange(j int) (lo, hi float64, err error) {
	if len(ds.items) == 0 {
		return 0, 0, ErrEmptyDataset
	}
	if j < 0 || j >= ds.d {
		return 0, 0, fmt.Errorf("dataset: attribute %d out of range", j)
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, it := range ds.items {
		v := it.Attrs[j]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, nil
}

// Direction states whether larger or smaller raw values of an attribute are
// preferred, controlling the min-max transform of Section 6.1.
type Direction int

const (
	// HigherBetter normalizes v to (v-min)/(max-min).
	HigherBetter Direction = iota
	// LowerBetter normalizes v to (max-v)/(max-min), as the paper does for
	// diamond Price.
	LowerBetter
)

// Normalize returns a new dataset with every attribute min-max normalized to
// [0, 1] respecting the given preference directions (one per attribute, or
// nil meaning all HigherBetter). Constant attributes map to 0.
func (ds *Dataset) Normalize(dirs []Direction) (*Dataset, error) {
	if len(ds.items) == 0 {
		return nil, ErrEmptyDataset
	}
	if dirs != nil && len(dirs) != ds.d {
		return nil, fmt.Errorf("dataset: %d directions for %d attributes", len(dirs), ds.d)
	}
	lows := make([]float64, ds.d)
	spans := make([]float64, ds.d)
	for j := 0; j < ds.d; j++ {
		lo, hi, err := ds.AttrRange(j)
		if err != nil {
			return nil, err
		}
		lows[j] = lo
		spans[j] = hi - lo
	}
	out := &Dataset{d: ds.d, items: make([]Item, len(ds.items))}
	for i, it := range ds.items {
		attrs := make(geom.Vector, ds.d)
		for j := 0; j < ds.d; j++ {
			var v float64
			if spans[j] > 0 {
				v = (it.Attrs[j] - lows[j]) / spans[j]
				if dirs != nil && dirs[j] == LowerBetter {
					v = 1 - v
				}
			}
			attrs[j] = v
		}
		out.items[i] = Item{ID: it.ID, Attrs: attrs}
	}
	return out, nil
}

// Standardize returns a new dataset where each attribute has been scaled to
// unit standard deviation and then shifted so its minimum is zero — the
// "standardized to have equivalent variance" preprocessing of Section 2.1.1
// while keeping all values non-negative as the algorithms assume. Constant
// attributes map to 0.
func (ds *Dataset) Standardize() (*Dataset, error) {
	if len(ds.items) == 0 {
		return nil, ErrEmptyDataset
	}
	n := float64(len(ds.items))
	means := make([]float64, ds.d)
	for _, it := range ds.items {
		for j, v := range it.Attrs {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= n
	}
	sds := make([]float64, ds.d)
	for _, it := range ds.items {
		for j, v := range it.Attrs {
			d := v - means[j]
			sds[j] += d * d
		}
	}
	for j := range sds {
		sds[j] = math.Sqrt(sds[j] / n)
	}
	out := &Dataset{d: ds.d, items: make([]Item, len(ds.items))}
	mins := make([]float64, ds.d)
	for j := range mins {
		mins[j] = math.Inf(1)
	}
	for i, it := range ds.items {
		attrs := make(geom.Vector, ds.d)
		for j, v := range it.Attrs {
			if sds[j] > 0 {
				attrs[j] = v / sds[j]
			}
			if attrs[j] < mins[j] {
				mins[j] = attrs[j]
			}
		}
		out.items[i] = Item{ID: it.ID, Attrs: attrs}
	}
	for i := range out.items {
		for j := range out.items[i].Attrs {
			out.items[i].Attrs[j] -= mins[j]
		}
	}
	return out, nil
}
