package dataset

import (
	"fmt"
	"math"

	"stablerank/internal/geom"
)

// DeltaOp names one kind of first-class dataset mutation.
type DeltaOp uint8

const (
	// ItemAdd appends a new item (the ID must not already exist).
	ItemAdd DeltaOp = iota + 1
	// ItemRemove deletes the item with the given ID; later items keep their
	// insertion order (their indices shift down by one).
	ItemRemove
	// AttrUpdate replaces the attribute vector of the item with the given ID.
	AttrUpdate
)

// String renders the op in the wire form the PATCH endpoint accepts.
func (op DeltaOp) String() string {
	switch op {
	case ItemAdd:
		return "add"
	case ItemRemove:
		return "remove"
	case AttrUpdate:
		return "update"
	}
	return fmt.Sprintf("DeltaOp(%d)", uint8(op))
}

// Delta is one dataset mutation, resolved by item ID (never by index: indices
// shift as deltas apply, IDs do not). Attrs is required for ItemAdd and
// AttrUpdate and must be ignored for ItemRemove.
type Delta struct {
	Op    DeltaOp
	ID    string
	Attrs geom.Vector
}

// Applied records how one delta resolved against the evolving dataset: the
// index the op acted on (the position updated or removed, or the position the
// new item was appended at) and the attribute vector it displaced (nil for
// ItemAdd). Incremental maintainers (rank splicing, attrs-matrix upkeep)
// replay exactly this trace.
type Applied struct {
	Delta Delta
	Index int
	Prev  geom.Vector
}

// ApplyDeltas returns a new dataset with the deltas applied in order; ds
// itself is never modified. The result is identical — item order included —
// to a dataset built from scratch with the same final content, which is what
// lets incrementally maintained derived state be checked bit-for-bit against
// a full rebuild. Any invalid delta (unknown or duplicate ID, wrong
// dimension, non-finite attribute) fails the whole batch with no effect.
func ApplyDeltas(ds *Dataset, deltas ...Delta) (*Dataset, error) {
	out, _, err := ApplyDeltasTrace(ds, deltas...)
	return out, err
}

// ApplyDeltasTrace is ApplyDeltas returning the per-delta resolution trace.
// When the dataset contains duplicate IDs (CSV input does not forbid them),
// an ID resolves to its first occurrence.
func ApplyDeltasTrace(ds *Dataset, deltas ...Delta) (*Dataset, []Applied, error) {
	if ds == nil {
		return nil, nil, ErrEmptyDataset
	}
	out := ds.Clone()
	index := make(map[string]int, len(out.items))
	for i := len(out.items) - 1; i >= 0; i-- {
		index[out.items[i].ID] = i
	}
	trace := make([]Applied, 0, len(deltas))
	for k, dl := range deltas {
		switch dl.Op {
		case ItemAdd:
			if _, ok := index[dl.ID]; ok {
				return nil, nil, fmt.Errorf("dataset: delta %d adds duplicate item id %q", k, dl.ID)
			}
			if err := validDeltaAttrs(dl, out.d); err != nil {
				return nil, nil, fmt.Errorf("dataset: delta %d: %w", k, err)
			}
			out.items = append(out.items, Item{ID: dl.ID, Attrs: dl.Attrs.Clone()})
			idx := len(out.items) - 1
			index[dl.ID] = idx
			trace = append(trace, Applied{Delta: dl, Index: idx})
		case ItemRemove:
			idx, ok := index[dl.ID]
			if !ok {
				return nil, nil, fmt.Errorf("dataset: delta %d removes unknown item id %q", k, dl.ID)
			}
			prev := out.items[idx].Attrs
			out.items = append(out.items[:idx], out.items[idx+1:]...)
			delete(index, dl.ID)
			for id, i := range index {
				if i > idx {
					index[id] = i - 1
				}
			}
			trace = append(trace, Applied{Delta: dl, Index: idx, Prev: prev})
		case AttrUpdate:
			idx, ok := index[dl.ID]
			if !ok {
				return nil, nil, fmt.Errorf("dataset: delta %d updates unknown item id %q", k, dl.ID)
			}
			if err := validDeltaAttrs(dl, out.d); err != nil {
				return nil, nil, fmt.Errorf("dataset: delta %d: %w", k, err)
			}
			prev := out.items[idx].Attrs
			out.items[idx].Attrs = dl.Attrs.Clone()
			trace = append(trace, Applied{Delta: dl, Index: idx, Prev: prev})
		default:
			return nil, nil, fmt.Errorf("dataset: delta %d has unknown op %d", k, dl.Op)
		}
	}
	return out, trace, nil
}

// validDeltaAttrs enforces the same attribute contract as Add: the dataset
// dimension and only finite values.
func validDeltaAttrs(dl Delta, d int) error {
	if len(dl.Attrs) != d {
		return fmt.Errorf("item %q has %d attributes, want %d", dl.ID, len(dl.Attrs), d)
	}
	for j, v := range dl.Attrs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("item %q attribute %d is not finite (%v)", dl.ID, j, v)
		}
	}
	return nil
}
