package dataset

import "sort"

// Skyline computes the set of non-dominated items (the pareto-optimal set,
// Börzsönyi et al.), returned as item indices in insertion order. It is used
// to demonstrate the Section 2.2.5 observation that the most stable top-k
// items are in general not a subset of the skyline.
//
// The implementation is the standard sort-filter skyline: items are sorted
// by decreasing attribute sum (an item can only be dominated by an item with
// a strictly larger or equal sum), then filtered against the running skyline.
// Worst case O(n^2 d), typically far less on real data.
func (ds *Dataset) Skyline() []int {
	n := len(ds.items)
	if n == 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sums := make([]float64, n)
	for i, it := range ds.items {
		var s float64
		for _, v := range it.Attrs {
			s += v
		}
		sums[i] = s
	}
	sort.SliceStable(order, func(a, b int) bool { return sums[order[a]] > sums[order[b]] })

	var skyIdx []int
	for _, i := range order {
		dominated := false
		for _, s := range skyIdx {
			if Dominates(ds.items[s], ds.items[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			skyIdx = append(skyIdx, i)
		}
	}
	sort.Ints(skyIdx)
	return skyIdx
}

// IsSkylineMember reports whether item i is dominated by no other item.
func (ds *Dataset) IsSkylineMember(i int) bool {
	for j := range ds.items {
		if j != i && Dominates(ds.items[j], ds.items[i]) {
			return false
		}
	}
	return true
}
