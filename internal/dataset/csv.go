package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"stablerank/internal/geom"
)

// CSV encoding for the command-line tools. The format is one row per item:
// the first column is the item identifier, the remaining columns are the
// scoring attributes. An optional header row is skipped when hasHeader is
// true.

// ReadCSV parses a dataset from r. All rows must have the same number of
// columns (>= 2: an ID plus at least one attribute).
func ReadCSV(r io.Reader, hasHeader bool) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if hasHeader && len(rows) > 0 {
		rows = rows[1:]
	}
	if len(rows) == 0 {
		return nil, ErrEmptyDataset
	}
	d := len(rows[0]) - 1
	if d < 1 {
		return nil, fmt.Errorf("dataset: csv rows need an id and at least one attribute, got %d columns", len(rows[0]))
	}
	ds, err := New(d)
	if err != nil {
		return nil, err
	}
	for ri, row := range rows {
		if len(row) != d+1 {
			return nil, fmt.Errorf("dataset: csv row %d has %d columns, want %d", ri+1, len(row), d+1)
		}
		attrs := make(geom.Vector, d)
		for j := 0; j < d; j++ {
			v, err := strconv.ParseFloat(row[j+1], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv row %d column %d: %w", ri+1, j+2, err)
			}
			attrs[j] = v
		}
		if err := ds.Add(row[0], attrs); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// WriteCSV writes the dataset to w, optionally with a header row naming the
// columns id, x1..xd.
func (ds *Dataset) WriteCSV(w io.Writer, withHeader bool) error {
	cw := csv.NewWriter(w)
	if withHeader {
		header := make([]string, ds.d+1)
		header[0] = "id"
		for j := 0; j < ds.d; j++ {
			header[j+1] = fmt.Sprintf("x%d", j+1)
		}
		if err := cw.Write(header); err != nil {
			return err
		}
	}
	row := make([]string, ds.d+1)
	for _, it := range ds.items {
		row[0] = it.ID
		for j, v := range it.Attrs {
			row[j+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
