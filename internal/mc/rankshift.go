package mc

import (
	"context"

	"stablerank/internal/vecmat"
)

// Shift summarizes how one item's rank moved across a sample of weight-space
// points after a dataset delta: the drift of stability mass the delta caused.
type Shift struct {
	// Rows is the number of pool samples evaluated.
	Rows int
	// Changed counts samples where the item's rank differs before vs after.
	Changed int
	// MeanBefore/MeanAfter are the item's mean rank across the samples. A
	// missing side (item added or removed) counts as rank n+1 of that side's
	// dataset, i.e. "below everything".
	MeanBefore float64
	MeanAfter  float64
	// MeanAbsShift is the mean |after-before| rank displacement.
	MeanAbsShift float64
	// MaxAbsShift is the largest single-sample rank displacement.
	MaxAbsShift int
	// Improved/Worsened count samples where the rank got strictly better
	// (smaller) or strictly worse (larger).
	Improved int
	Worsened int
}

// RankShift measures the rank displacement of one item across the first rows
// weight samples of the pool (rows <= 0 or beyond the pool means all).
// oldAttrs/oldItem address the item before the delta and newAttrs/newItem
// after; pass a negative item index for the side where the item does not
// exist (oldItem < 0 for an add, newItem < 0 for a remove), which scores as
// rank n+1 on that side. The sweep is sequential and deterministic: the pool
// rows are the analyzer's interned weight-space samples, so the same pool
// yields the same Shift on every replica.
func RankShift(ctx context.Context, oldAttrs, newAttrs vecmat.Matrix, oldItem, newItem int, pool vecmat.Matrix, rows int) (Shift, error) {
	if rows <= 0 || rows > pool.Rows() {
		rows = pool.Rows()
	}
	var sh Shift
	var sumBefore, sumAfter, sumAbs float64
	for r := 0; r < rows; r++ {
		if r%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return Shift{}, err
			}
		}
		w := pool.Row(r)
		before := oldAttrs.Rows() + 1
		if oldItem >= 0 {
			before = RankOf(oldAttrs, w, oldItem)
		}
		after := newAttrs.Rows() + 1
		if newItem >= 0 {
			after = RankOf(newAttrs, w, newItem)
		}
		sumBefore += float64(before)
		sumAfter += float64(after)
		d := after - before
		if d != 0 {
			sh.Changed++
			if d < 0 {
				sh.Improved++
			} else {
				sh.Worsened++
			}
		}
		ad := d
		if ad < 0 {
			ad = -ad
		}
		sumAbs += float64(ad)
		if ad > sh.MaxAbsShift {
			sh.MaxAbsShift = ad
		}
	}
	sh.Rows = rows
	if rows > 0 {
		sh.MeanBefore = sumBefore / float64(rows)
		sh.MeanAfter = sumAfter / float64(rows)
		sh.MeanAbsShift = sumAbs / float64(rows)
	}
	return sh, nil
}
