package mc

import (
	"math"
	"math/rand"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
	"stablerank/internal/sampling"
)

func TestItemRankDistributionFigure1(t *testing.T) {
	ds := dataset.Figure1()
	s, err := sampling.NewUniform(2, rand.New(rand.NewSource(231)))
	if err != nil {
		t.Fatal(err)
	}
	// t2 (index 1) is rank 1 whenever x1 matters and rank 5 under pure x2:
	// its distribution spans the extremes.
	dist, err := ItemRankDistribution(ctx, ds, s, 1, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Best != 1 {
		t.Errorf("t2 best rank = %d, want 1", dist.Best)
	}
	if dist.Samples != 20000 || dist.Item != 1 {
		t.Errorf("distribution metadata wrong: %+v", dist)
	}
	// From the Figure 1 regions: t2 is ranked first in regions up to angle
	// ~0.983 (the exchange with t5 at atan((.83-.53)/(.82-.65))... measured
	// against exact region spans instead: P(rank 1) equals the total span of
	// regions whose midpoint ranks t2 first.
	p1 := float64(dist.Counts[1]) / float64(dist.Samples)
	want := exactProbTopK(t, ds, 1, 1)
	if math.Abs(p1-want) > 0.02 {
		t.Errorf("P(t2 first) = %v, exact %v", p1, want)
	}
	// ProbabilityTopK consistency.
	if got := dist.ProbabilityTopK(ds.N()); math.Abs(got-1) > 1e-12 {
		t.Errorf("P(top-n) = %v, want 1", got)
	}
	if dist.ProbabilityTopK(0) != 0 {
		t.Error("P(top-0) should be 0")
	}
}

// exactProbTopK computes the exact probability that item lands in the top k
// from the 2D region decomposition.
func exactProbTopK(t *testing.T, ds *dataset.Dataset, item, k int) float64 {
	t.Helper()
	// Import cycle avoided: recompute spans by dense scan.
	const steps = 20000
	hits := 0
	for i := 0; i < steps; i++ {
		theta := (float64(i) + 0.5) / steps * math.Pi / 2
		r := rank.Compute(ds, geom.Ray2D(theta))
		if r.PositionOf(item) <= k {
			hits++
		}
	}
	return float64(hits) / steps
}

func TestItemRankDistributionDominatedItem(t *testing.T) {
	ds := dataset.MustNew(2)
	ds.MustAdd("top", 0.9, 0.9)
	ds.MustAdd("bottom", 0.1, 0.1)
	s, _ := sampling.NewUniform(2, rand.New(rand.NewSource(232)))
	dist, err := ItemRankDistribution(ctx, ds, s, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Best != 2 || dist.Worst != 2 {
		t.Errorf("dominated item rank range [%d, %d], want [2, 2]", dist.Best, dist.Worst)
	}
	if dist.ProbabilityTopK(1) != 0 {
		t.Error("dominated item cannot be first")
	}
	if dist.Quantile(0.5) != 2 || dist.Mode() != 2 {
		t.Errorf("quantile/mode wrong: %d, %d", dist.Quantile(0.5), dist.Mode())
	}
}

func TestItemRankDistributionQuantiles(t *testing.T) {
	d := RankDistribution{
		Counts:  map[int]int{1: 50, 3: 30, 7: 20},
		Samples: 100,
	}
	if q := d.Quantile(0.5); q != 1 {
		t.Errorf("median = %d, want 1", q)
	}
	if q := d.Quantile(0.8); q != 3 {
		t.Errorf("q80 = %d, want 3", q)
	}
	if q := d.Quantile(1.0); q != 7 {
		t.Errorf("q100 = %d, want 7", q)
	}
	if q := d.Quantile(-1); q != 1 {
		t.Errorf("clamped low quantile = %d", q)
	}
	if q := d.Quantile(2); q != 7 {
		t.Errorf("clamped high quantile = %d", q)
	}
	if d.Mode() != 1 {
		t.Errorf("mode = %d", d.Mode())
	}
	empty := RankDistribution{}
	if empty.Quantile(0.5) != 0 || empty.ProbabilityTopK(3) != 0 {
		t.Error("empty distribution should return zeros")
	}
}

func TestItemRankDistributionValidation(t *testing.T) {
	ds := dataset.Figure1()
	s, _ := sampling.NewUniform(2, rand.New(rand.NewSource(233)))
	if _, err := ItemRankDistribution(ctx, nil, s, 0, 10); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := ItemRankDistribution(ctx, ds, nil, 0, 10); err == nil {
		t.Error("nil sampler accepted")
	}
	if _, err := ItemRankDistribution(ctx, ds, s, 99, 10); err == nil {
		t.Error("out-of-range item accepted")
	}
	if _, err := ItemRankDistribution(ctx, ds, s, 0, 0); err == nil {
		t.Error("zero samples accepted")
	}
	s3, _ := sampling.NewUniform(3, rand.New(rand.NewSource(233)))
	if _, err := ItemRankDistribution(ctx, ds, s3, 0, 10); err == nil {
		t.Error("dimension mismatch accepted")
	}
}
