package mc

import (
	"math"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/twod"
)

func TestVerifyKeyMatchesExact(t *testing.T) {
	ds := dataset.Figure1()
	full := geom.Interval2D{Lo: 0, Hi: math.Pi / 2}
	exact, err := twod.EnumerateAll(ds, full)
	if err != nil {
		t.Fatal(err)
	}
	o := newOp(t, ds, geom.FullSpace{D: 2}, 211)
	for _, s := range exact[:3] {
		res, err := o.VerifyKey(s.Ranking.Key(), 20000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Stability-s.Stability) > 0.02 {
			t.Errorf("key %s: verified %v vs exact %v", s.Ranking.Key(), res.Stability, s.Stability)
		}
		if res.ConfidenceError <= 0 {
			t.Error("confidence error should be positive")
		}
	}
	// An impossible key has stability ~0.
	res, err := o.VerifyKey("4,3,2,1,0", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stability > 0.01 {
		t.Errorf("impossible ranking stability = %v", res.Stability)
	}
}

func TestVerifyItemsTopK(t *testing.T) {
	ds := dataset.Toy225()
	o := newOp(t, ds, geom.FullSpace{D: 2}, 212, WithMode(TopKSet, 3))
	// The dominant top-3 set {t2, t3, t4} in any order.
	res, err := o.VerifyItems([]int{3, 1, 2}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stability < 0.9 {
		t.Errorf("dominant set stability = %v, want ~0.96+", res.Stability)
	}
	// Wrong cardinality.
	if _, err := o.VerifyItems([]int{1, 2}, 100); err == nil {
		t.Error("wrong k accepted")
	}
}

func TestVerifyItemsComplete(t *testing.T) {
	ds := dataset.Figure1()
	o := newOp(t, ds, geom.FullSpace{D: 2}, 213)
	if _, err := o.VerifyItems([]int{0, 1}, 100); err == nil {
		t.Error("short complete target accepted")
	}
	res, err := o.VerifyItems([]int{1, 3, 2, 4, 0}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1's published ranking has exact stability 0.0880.
	if math.Abs(res.Stability-0.088) > 0.02 {
		t.Errorf("published ranking stability = %v, want ~0.088", res.Stability)
	}
}

func TestVerifyKeyValidation(t *testing.T) {
	ds := dataset.Figure1()
	o := newOp(t, ds, geom.FullSpace{D: 2}, 214)
	if _, err := o.VerifyKey("", 100); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := o.VerifyKey("0,1,2,3,4", 0); err == nil {
		t.Error("zero samples accepted")
	}
}
