package mc

import (
	"context"
	"testing"

	"stablerank/internal/vecmat"
)

func TestRankShiftUpdate(t *testing.T) {
	// Three items in 2D; the pool has two weight samples.
	old, err := vecmat.FromRows(2, [][]float64{{3, 0}, {2, 0}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Item 2 jumps to the top under both samples.
	upd, err := vecmat.FromRows(2, [][]float64{{3, 0}, {2, 0}, {9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := vecmat.FromRows(2, [][]float64{{1, 0}, {0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := RankShift(context.Background(), old, upd, 2, 2, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Rows != 2 || sh.Changed != 2 || sh.Improved != 2 || sh.Worsened != 0 {
		t.Fatalf("shift %+v", sh)
	}
	if sh.MeanBefore != 3 || sh.MeanAfter != 1 || sh.MaxAbsShift != 2 || sh.MeanAbsShift != 2 {
		t.Fatalf("shift %+v", sh)
	}
}

func TestRankShiftAddRemove(t *testing.T) {
	old, _ := vecmat.FromRows(2, [][]float64{{2, 0}, {1, 0}})
	with, _ := vecmat.FromRows(2, [][]float64{{2, 0}, {1, 0}, {3, 0}})
	pool, _ := vecmat.FromRows(2, [][]float64{{1, 0}})
	// Add: before side missing, counted as rank n_old+1 = 3; after rank 1.
	sh, err := RankShift(context.Background(), old, with, -1, 2, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sh.MeanBefore != 3 || sh.MeanAfter != 1 || sh.Improved != 1 {
		t.Fatalf("add shift %+v", sh)
	}
	// Remove: after side missing, counted as rank n_new+1 = 3.
	sh, err = RankShift(context.Background(), with, old, 2, -1, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sh.MeanBefore != 1 || sh.MeanAfter != 3 || sh.Worsened != 1 {
		t.Fatalf("remove shift %+v", sh)
	}
}

func TestRankShiftRowCapAndCancel(t *testing.T) {
	attrs, _ := vecmat.FromRows(2, [][]float64{{1, 0}, {2, 0}})
	pool := vecmat.New(8, 2)
	sh, err := RankShift(context.Background(), attrs, attrs, 0, 0, pool, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Rows != 3 || sh.Changed != 0 {
		t.Fatalf("capped shift %+v", sh)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RankShift(ctx, attrs, attrs, 0, 0, pool, 0); err == nil {
		t.Fatal("cancelled context should fail")
	}
}
