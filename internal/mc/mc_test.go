package mc

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
	"stablerank/internal/sampling"
	"stablerank/internal/twod"
)

// ctx is the default context threaded through the cancellable API in
// tests that do not exercise cancellation.
var ctx = context.Background()

func newOp(t *testing.T, ds *dataset.Dataset, roi geom.Region, seed int64, opts ...Option) *Operator {
	t.Helper()
	s, err := sampling.ForRegion(roi, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOperator(ds, s, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestFixedBudgetMatchesExact2D(t *testing.T) {
	// On Figure 1 the exact region spans are known; GET-NEXTr must recover
	// the top rankings with matching stabilities.
	ds := dataset.Figure1()
	full := geom.Interval2D{Lo: 0, Hi: math.Pi / 2}
	exact, err := twod.EnumerateAll(ds, full)
	if err != nil {
		t.Fatal(err)
	}
	o := newOp(t, ds, geom.FullSpace{D: 2}, 131)
	for i := 0; i < 3; i++ {
		res, err := o.NextFixedBudget(ctx, 20000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Key != exact[i].Ranking.Key() {
			t.Errorf("call %d: key %s, want %s", i, res.Key, exact[i].Ranking.Key())
		}
		if math.Abs(res.Stability-exact[i].Stability) > 0.02 {
			t.Errorf("call %d: stability %v, want %v", i, res.Stability, exact[i].Stability)
		}
		if res.ConfidenceError <= 0 || res.ConfidenceError > 0.02 {
			t.Errorf("call %d: confidence error %v out of expected range", i, res.ConfidenceError)
		}
	}
}

func TestFixedBudgetAccumulatesAcrossCalls(t *testing.T) {
	ds := dataset.Figure1()
	o := newOp(t, ds, geom.FullSpace{D: 2}, 132)
	r1, err := o.NextFixedBudget(ctx, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalSamples != 1000 || r1.SamplesUsed != 1000 {
		t.Errorf("first call totals: %+v", r1)
	}
	r2, err := o.NextFixedBudget(ctx, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r2.TotalSamples != 1500 || r2.SamplesUsed != 500 {
		t.Errorf("second call totals: used=%d total=%d", r2.SamplesUsed, r2.TotalSamples)
	}
	if r2.Key == r1.Key {
		t.Error("second call repeated the first ranking")
	}
	if r2.Stability > r1.Stability+0.05 {
		t.Errorf("stability order violated: %v then %v", r1.Stability, r2.Stability)
	}
}

func TestFixedBudgetExhaustion(t *testing.T) {
	// Two items, one exchange: at most 2 rankings exist.
	ds := dataset.MustNew(2)
	ds.MustAdd("a", 0.9, 0.1)
	ds.MustAdd("b", 0.1, 0.9)
	o := newOp(t, ds, geom.FullSpace{D: 2}, 133)
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		r, err := o.NextFixedBudget(ctx, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if seen[r.Key] {
			t.Error("duplicate ranking returned")
		}
		seen[r.Key] = true
	}
	if _, err := o.NextFixedBudget(ctx, 2000); !errors.Is(err, ErrExhausted) {
		t.Errorf("expected ErrExhausted, got %v", err)
	}
}

func TestFixedBudgetZeroAfterObservations(t *testing.T) {
	ds := dataset.Figure1()
	o := newOp(t, ds, geom.FullSpace{D: 2}, 134)
	if _, err := o.NextFixedBudget(ctx, 1000); err != nil {
		t.Fatal(err)
	}
	// Zero fresh samples: should still return the next-best observed key.
	r, err := o.NextFixedBudget(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.SamplesUsed != 0 {
		t.Errorf("SamplesUsed = %d", r.SamplesUsed)
	}
	if _, err := o.NextFixedBudget(ctx, -1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestFixedErrorReachesTarget(t *testing.T) {
	ds := dataset.Figure1()
	o := newOp(t, ds, geom.FullSpace{D: 2}, 135)
	res, err := o.NextFixedError(ctx, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConfidenceError > 0.01 {
		t.Errorf("confidence error %v above target", res.ConfidenceError)
	}
	// The Figure 1 top region spans ~0.2-0.4 of the quadrant; sample count
	// should be in the ballpark of Equation 11.
	if res.TotalSamples < 100 || res.TotalSamples > 50000 {
		t.Errorf("suspicious sample count %d", res.TotalSamples)
	}
}

func TestFixedErrorBudgetCap(t *testing.T) {
	ds := dataset.Figure1()
	o := newOp(t, ds, geom.FullSpace{D: 2}, 136)
	if _, err := o.NextFixedError(ctx, 1e-9, 1000); !errors.Is(err, ErrBudget) {
		t.Errorf("expected ErrBudget, got %v", err)
	}
	if _, err := o.NextFixedError(ctx, 0, 0); err == nil {
		t.Error("zero error target accepted")
	}
}

func TestTopKSetVersusRanked(t *testing.T) {
	// Top-k sets aggregate over orderings, so the top set stability is at
	// least the top ranked stability (Figures 17 and 20).
	rr := rand.New(rand.NewSource(137))
	ds := dataset.MustNew(3)
	for i := 0; i < 50; i++ {
		ds.MustAdd("", rr.Float64(), rr.Float64(), rr.Float64())
	}
	roi := geom.FullSpace{D: 3}
	k := 5
	set := newOp(t, ds, roi, 138, WithMode(TopKSet, k))
	ranked := newOp(t, ds, roi, 138, WithMode(TopKRanked, k))
	rs, err := set.NextFixedBudget(ctx, 20000)
	if err != nil {
		t.Fatal(err)
	}
	rr2, err := ranked.NextFixedBudget(ctx, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Stability < rr2.Stability-0.02 {
		t.Errorf("set stability %v < ranked stability %v", rs.Stability, rr2.Stability)
	}
	if len(rs.Items) != k || len(rr2.Items) != k {
		t.Errorf("item counts: %d, %d", len(rs.Items), len(rr2.Items))
	}
	if !sort.IntsAreSorted(rs.Items) {
		t.Error("set mode items not canonicalized")
	}
}

func TestTopKSetKeysAggregateOrder(t *testing.T) {
	// With 3 items all mutually incomparable and k = n, the set mode has
	// exactly one key while ranked mode has several.
	ds := dataset.MustNew(2)
	ds.MustAdd("a", 0.9, 0.1)
	ds.MustAdd("b", 0.5, 0.5)
	ds.MustAdd("c", 0.1, 0.9)
	set := newOp(t, ds, geom.FullSpace{D: 2}, 139, WithMode(TopKSet, 3))
	r, err := set.NextFixedBudget(ctx, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Stability-1) > 1e-9 {
		t.Errorf("full-set stability = %v, want 1", r.Stability)
	}
	if set.DistinctObserved() != 1 {
		t.Errorf("distinct sets = %d, want 1", set.DistinctObserved())
	}
	ranked := newOp(t, ds, geom.FullSpace{D: 2}, 140, WithMode(TopKRanked, 3))
	if _, err := ranked.NextFixedBudget(ctx, 5000); err != nil {
		t.Fatal(err)
	}
	if ranked.DistinctObserved() < 2 {
		t.Errorf("distinct ranked prefixes = %d, want >= 2", ranked.DistinctObserved())
	}
}

// The Section 2.2.5 toy example: the most stable top-3 set is {t2, t3, t4},
// not a subset of the skyline {t1, t2, t5}.
func TestStableTopKNotSkyline(t *testing.T) {
	ds := dataset.Toy225()
	o := newOp(t, ds, geom.FullSpace{D: 2}, 141, WithMode(TopKSet, 3))
	r, err := o.NextFixedBudget(ctx, 30000)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3} // t2, t3, t4 (0-indexed)
	if len(r.Items) != 3 || r.Items[0] != want[0] || r.Items[1] != want[1] || r.Items[2] != want[2] {
		t.Fatalf("most stable top-3 = %v, want %v", r.Items, want)
	}
	sky := ds.Skyline()
	inSky := map[int]bool{}
	for _, i := range sky {
		inSky[i] = true
	}
	overlap := 0
	for _, i := range r.Items {
		if inSky[i] {
			overlap++
		}
	}
	if overlap != 1 {
		t.Errorf("stable top-3 shares %d items with the skyline, paper says 1 (only t2)", overlap)
	}
}

func TestRepresentativeWeightsInduceKey(t *testing.T) {
	rr := rand.New(rand.NewSource(142))
	ds := dataset.MustNew(3)
	for i := 0; i < 30; i++ {
		ds.MustAdd("", rr.Float64(), rr.Float64(), rr.Float64())
	}
	o := newOp(t, ds, geom.FullSpace{D: 3}, 143)
	for i := 0; i < 3; i++ {
		res, err := o.NextFixedBudget(ctx, 5000)
		if err != nil {
			t.Fatal(err)
		}
		got := rank.Compute(ds, res.Weights)
		if got.Key() != res.Key {
			t.Errorf("representative weights do not reproduce the ranking")
		}
	}
}

func TestOperatorValidation(t *testing.T) {
	ds := dataset.Figure1()
	s, _ := sampling.NewUniform(2, rand.New(rand.NewSource(1)))
	if _, err := NewOperator(nil, s); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := NewOperator(dataset.MustNew(2), s); !errors.Is(err, dataset.ErrEmptyDataset) {
		t.Error("empty dataset accepted")
	}
	if _, err := NewOperator(ds, nil); err == nil {
		t.Error("nil sampler accepted")
	}
	s3, _ := sampling.NewUniform(3, rand.New(rand.NewSource(1)))
	if _, err := NewOperator(ds, s3); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := NewOperator(ds, s, WithMode(TopKSet, 0)); err == nil {
		t.Error("k=0 accepted for top-k mode")
	}
	if _, err := NewOperator(ds, s, WithMode(Mode(9), 1)); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := NewOperator(ds, s, WithConfidenceLevel(0)); err == nil {
		t.Error("alpha=0 accepted")
	}
	if Complete.String() != "complete" || TopKSet.String() != "top-k set" ||
		TopKRanked.String() != "ranked top-k" || Mode(9).String() == "" {
		t.Error("mode strings wrong")
	}
}

func TestTopHHelper(t *testing.T) {
	rr := rand.New(rand.NewSource(144))
	ds := dataset.MustNew(3)
	for i := 0; i < 40; i++ {
		ds.MustAdd("", rr.Float64(), rr.Float64(), rr.Float64())
	}
	o := newOp(t, ds, geom.FullSpace{D: 3}, 145, WithMode(TopKSet, 5))
	results, err := o.TopH(ctx, 10, 5000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	seen := map[string]bool{}
	for i, r := range results {
		if seen[r.Key] {
			t.Errorf("duplicate key at %d", i)
		}
		seen[r.Key] = true
	}
	// Roughly decreasing stability (Monte-Carlo noise tolerated).
	for i := 1; i < len(results); i++ {
		if results[i].Stability > results[i-1].Stability+0.05 {
			t.Errorf("stability at %d (%v) far above predecessor (%v)", i, results[i].Stability, results[i-1].Stability)
		}
	}
}

func TestDiscoveryCurve(t *testing.T) {
	ds := dataset.Figure1()
	o := newOp(t, ds, geom.FullSpace{D: 2}, 147)
	curve, err := o.DiscoveryCurve(ctx, 5000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 10 {
		t.Fatalf("curve has %d points, want 10", len(curve))
	}
	// Monotone in both coordinates, saturating at the 11 feasible rankings.
	for i := 1; i < len(curve); i++ {
		if curve[i].Samples <= curve[i-1].Samples || curve[i].Distinct < curve[i-1].Distinct {
			t.Fatal("curve not monotone")
		}
	}
	last := curve[len(curve)-1].Distinct
	if last < 8 || last > 11 {
		t.Errorf("discovered %d rankings after 5000 samples, want close to 11", last)
	}
	if _, err := o.DiscoveryCurve(ctx, -1, 10); err == nil {
		t.Error("negative budget accepted")
	}
	// The curve's aggregates feed Next calls.
	if _, err := o.NextFixedBudget(ctx, 0); err != nil {
		t.Errorf("NextFixedBudget after curve: %v", err)
	}
}

func TestExpectedDiscoveryCost(t *testing.T) {
	mean, variance := ExpectedDiscoveryCost(0.1)
	if mean != 10 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-90) > 1e-9 {
		t.Errorf("variance = %v, want 90", variance)
	}
}

// Empirical check of Theorem 2: the average first-discovery time of the top
// ranking approximates 1/S(r).
func TestDiscoveryCostEmpirical(t *testing.T) {
	ds := dataset.Figure1()
	full := geom.Interval2D{Lo: 0, Hi: math.Pi / 2}
	exact, err := twod.EnumerateAll(ds, full)
	if err != nil {
		t.Fatal(err)
	}
	target := exact[0].Ranking.Key()
	s := exact[0].Stability
	rr := rand.New(rand.NewSource(146))
	u, _ := sampling.NewUniform(2, rr)
	comp := rank.NewComputer(ds)
	trials := 300
	var total float64
	for i := 0; i < trials; i++ {
		n := 0
		for {
			w, err := u.Sample()
			if err != nil {
				t.Fatal(err)
			}
			n++
			if comp.Compute(w).Key() == target {
				break
			}
		}
		total += float64(n)
	}
	got := total / float64(trials)
	want := 1 / s
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("empirical discovery cost %v, Theorem 2 predicts %v", got, want)
	}
}
