package mc

import (
	"context"
	"testing"

	"stablerank/internal/geom"
	"stablerank/internal/vecmat"
)

func TestChunkRange(t *testing.T) {
	cases := []struct {
		chunk, total, lo, hi int
	}{
		{0, 100, 0, 100},
		{0, PoolChunk, 0, PoolChunk},
		{0, PoolChunk + 1, 0, PoolChunk},
		{1, PoolChunk + 1, PoolChunk, PoolChunk + 1},
		{2, 3 * PoolChunk, 2 * PoolChunk, 3 * PoolChunk},
		{-1, 100, 0, 0},
		{1, 100, 0, 0},
		{3, 3 * PoolChunk, 0, 0},
	}
	for _, c := range cases {
		lo, hi := ChunkRange(c.chunk, c.total)
		if lo != c.lo || hi != c.hi {
			t.Errorf("ChunkRange(%d, %d) = [%d, %d), want [%d, %d)", c.chunk, c.total, lo, hi, c.lo, c.hi)
		}
	}
	if got := Chunks(0); got != 0 {
		t.Errorf("Chunks(0) = %d, want 0", got)
	}
	if got := Chunks(2*PoolChunk + 1); got != 3 {
		t.Errorf("Chunks(%d) = %d, want 3", 2*PoolChunk+1, got)
	}
}

// TestFillChunkMatchesBuildPool pins the load-bearing invariant of the
// distributed layer: every chunk filled standalone (FillChunk) or spliced
// into a shared matrix (FillChunkInto) is bit-identical to the same rows of
// a monolithic BuildPoolMatrix build.
func TestFillChunkMatchesBuildPool(t *testing.T) {
	const (
		total = 2*PoolChunk + 777
		d     = 3
	)
	factory := ConeSamplers(geom.FullSpace{D: d}, 42)
	ctx := context.Background()

	want, err := BuildPoolMatrix(ctx, factory, total, d, 4)
	if err != nil {
		t.Fatalf("BuildPoolMatrix: %v", err)
	}

	stitched := vecmat.New(total, d)
	for chunk := 0; chunk < Chunks(total); chunk++ {
		lo, hi := ChunkRange(chunk, total)
		m, err := FillChunk(ctx, factory, chunk, total, d)
		if err != nil {
			t.Fatalf("FillChunk(%d): %v", chunk, err)
		}
		if m.Rows() != hi-lo {
			t.Fatalf("FillChunk(%d) rows = %d, want %d", chunk, m.Rows(), hi-lo)
		}
		for i := 0; i < m.Rows(); i++ {
			stitched.SetRow(lo+i, m.Row(i))
		}
	}
	assertMatrixEqual(t, "FillChunk stitch", want, stitched)

	inPlace := vecmat.New(total, d)
	for chunk := Chunks(total) - 1; chunk >= 0; chunk-- { // any fill order works
		if err := FillChunkInto(ctx, factory, chunk, total, inPlace); err != nil {
			t.Fatalf("FillChunkInto(%d): %v", chunk, err)
		}
	}
	assertMatrixEqual(t, "FillChunkInto", want, inPlace)
}

func TestFillChunkErrors(t *testing.T) {
	factory := ConeSamplers(geom.FullSpace{D: 2}, 1)
	ctx := context.Background()
	if _, err := FillChunk(ctx, nil, 0, 100, 2); err == nil {
		t.Error("FillChunk(nil factory): want error")
	}
	if _, err := FillChunk(ctx, factory, 5, 100, 2); err == nil {
		t.Error("FillChunk(out-of-range chunk): want error")
	}
	if _, err := FillChunk(ctx, factory, 0, 100, 0); err == nil {
		t.Error("FillChunk(d=0): want error")
	}
	if _, err := FillChunk(ctx, factory, 0, 100, 3); err == nil {
		t.Error("FillChunk(dimension mismatch): want error")
	}
	pool := vecmat.New(50, 2)
	if err := FillChunkInto(ctx, factory, 0, 100, pool); err == nil {
		t.Error("FillChunkInto(short pool): want error")
	}
	if err := FillChunkInto(ctx, nil, 0, 100, vecmat.New(100, 2)); err == nil {
		t.Error("FillChunkInto(nil factory): want error")
	}
	if err := FillChunkInto(ctx, factory, 9, 100, vecmat.New(100, 2)); err == nil {
		t.Error("FillChunkInto(out-of-range chunk): want error")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := FillChunk(cancelled, factory, 0, PoolChunk, 2); err == nil {
		t.Error("FillChunk(cancelled ctx): want error")
	}
}

func assertMatrixEqual(t *testing.T, label string, want, got vecmat.Matrix) {
	t.Helper()
	if want.Rows() != got.Rows() || want.Stride() != got.Stride() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows(), got.Stride(), want.Rows(), want.Stride())
	}
	for i := 0; i < want.Rows(); i++ {
		wr, gr := want.Row(i), got.Row(i)
		for j := range wr {
			if wr[j] != gr[j] {
				t.Fatalf("%s: row %d col %d = %v, want %v", label, i, j, gr[j], wr[j])
			}
		}
	}
}
