package mc

import (
	"bytes"
	"strconv"

	"stablerank/internal/geom"
	"stablerank/internal/rank"
)

// Ranking-identity interning for the Monte-Carlo counters. The historical
// implementation identified every observed ranking by a freshly built
// "i0,i1,..." string — one string allocation (of length O(n)) per sample,
// which dominated the randomized operators' profiles. The intern table
// identifies rankings by a 64-bit hash of the induced index sequence
// instead, collision-checked against the stored canonical order; the rare
// colliding identities fall back to exact string keys. String keys only
// materialize at API edges (Result.Key, Estimate.Counts).

// internEntry is one distinct observed ranking identity.
type internEntry struct {
	// order is the canonical index sequence (a private copy).
	order []int
	// count is the number of observations.
	count int
	// firstW is the first weight vector observed for the identity (set by
	// the Operator; unused by ParallelEstimate).
	firstW geom.Vector
	// returned marks identities already emitted by GET-NEXTr.
	returned bool
}

// key renders the entry's canonical string key (API edges only).
func (e *internEntry) key() string { return rank.Ranking{Order: e.order}.Key() }

// internTable maps index sequences to entries by 64-bit hash with exact
// collision handling: the first identity to claim a hash lives in entries;
// any later identity colliding on that hash is keyed by its exact string in
// overflow, so counts are always exact regardless of hash quality.
type internTable struct {
	hash     func([]int) uint64
	entries  map[uint64]*internEntry
	overflow map[string]*internEntry
	distinct int
}

func newInternTable() *internTable {
	return &internTable{hash: hashIndices, entries: make(map[uint64]*internEntry)}
}

// observe counts one observation of sel, creating the entry (with a private
// copy of sel) on first sight. It reports whether the entry is new.
func (t *internTable) observe(sel []int) (*internEntry, bool) {
	h := t.hash(sel)
	e, ok := t.entries[h]
	if !ok {
		e = &internEntry{order: append([]int(nil), sel...), count: 1}
		t.entries[h] = e
		t.distinct++
		return e, true
	}
	if equalIndices(e.order, sel) {
		e.count++
		return e, false
	}
	// Hash collision: this identity shares a hash with a different one.
	// Key it exactly so the counts stay correct.
	key := rank.Ranking{Order: sel}.Key()
	if t.overflow == nil {
		t.overflow = make(map[string]*internEntry)
	}
	e2, ok := t.overflow[key]
	if !ok {
		e2 = &internEntry{order: append([]int(nil), sel...), count: 1}
		t.overflow[key] = e2
		t.distinct++
		return e2, true
	}
	e2.count++
	return e2, false
}

// lookup returns the entry for sel, or nil when it was never observed.
func (t *internTable) lookup(sel []int) *internEntry {
	if e, ok := t.entries[t.hash(sel)]; ok && equalIndices(e.order, sel) {
		return e
	}
	if t.overflow != nil {
		if e, ok := t.overflow[rank.Ranking{Order: sel}.Key()]; ok {
			return e
		}
	}
	return nil
}

// forEach visits every distinct entry (iteration order is unspecified).
func (t *internTable) forEach(fn func(*internEntry)) {
	for _, e := range t.entries { //srlint:ordered visits are commutative; best() breaks count ties by entry key, not visit order
		fn(e)
	}
	for _, e := range t.overflow { //srlint:ordered visits are commutative; best() breaks count ties by entry key, not visit order
		fn(e)
	}
}

// best returns the unreturned entry with the maximum count, or nil when
// every entry has been returned. Count ties break by the entries' string
// keys — compared element-wise without materializing them — matching the
// historical map[string]int tie-break exactly.
func (t *internTable) best() *internEntry {
	var bestE *internEntry
	bestCount := -1
	t.forEach(func(e *internEntry) {
		if e.returned {
			return
		}
		if e.count > bestCount || (e.count == bestCount && lessIndicesAsKey(e.order, bestE.order)) {
			bestE, bestCount = e, e.count
		}
	})
	return bestE
}

// hashIndices is the default 64-bit ranking-identity hash: FNV-1a over the
// index words followed by a splitmix64 finalizer to spread the low-entropy
// small-integer inputs across the whole word.
func hashIndices(sel []int) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, v := range sel {
		h ^= uint64(v)
		h *= 0x100000001b3
	}
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

func equalIndices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lessIndicesAsKey reports whether encodeIndices(a) < encodeIndices(b)
// under byte-wise string comparison, without building either string. At the
// first differing element the decimal renderings decide: bytes.Compare on
// them matches the full-string comparison because the digit bytes decide
// directly when neither rendering prefixes the other, and when one is a
// proper prefix the next byte of the longer string is compared against the
// separator ',' (or end of string), both of which order below any digit —
// the same way bytes.Compare orders the shorter rendering first.
func lessIndicesAsKey(a, b []int) bool {
	var ba, bb [20]byte
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] == b[i] {
			continue
		}
		sa := strconv.AppendInt(ba[:0], int64(a[i]), 10)
		sb := strconv.AppendInt(bb[:0], int64(b[i]), 10)
		if c := bytes.Compare(sa, sb); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}
