// Package mc implements the randomized GET-NEXTr operators of Sections
// 4.3-4.5: Monte-Carlo enumeration of stable rankings by uniform sampling of
// the region of interest, with either a fixed sampling budget per call
// (Algorithm 7) or a fixed confidence error (Algorithm 8). Both variants
// support complete rankings and the two top-k semantics of Section 4.5.1
// (top-k sets and ranked top-k lists), which the exact multi-dimensional
// engine cannot handle because distinct ranking regions can share the same
// top-k.
package mc

import (
	"context"
	"errors"
	"fmt"
	"slices"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
	"stablerank/internal/sampling"
	"stablerank/internal/stats"
)

// Mode selects the ranking semantics being counted.
type Mode int

const (
	// Complete counts full rankings of all items.
	Complete Mode = iota
	// TopKSet counts unordered top-k item sets.
	TopKSet
	// TopKRanked counts ordered top-k prefixes.
	TopKRanked
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Complete:
		return "complete"
	case TopKSet:
		return "top-k set"
	case TopKRanked:
		return "ranked top-k"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ErrExhausted is returned when no undiscovered ranking remains among the
// observations (Algorithm 7 returns null).
var ErrExhausted = errors.New("mc: no further rankings observed")

// ErrBudget is returned by the fixed-confidence operator when it cannot
// reach the requested error within its sample cap.
var ErrBudget = errors.New("mc: sample budget exhausted before reaching the requested confidence error")

// Result is one stable ranking discovered by the operator.
type Result struct {
	// Key identifies the ranking under the operator's mode.
	Key string
	// Items is the ranking (Complete) or top-k prefix (TopKRanked) or
	// canonical sorted set (TopKSet) as item indices.
	Items []int
	// Weights is a representative scoring function that induced the ranking
	// (the first sample observed for it).
	Weights geom.Vector
	// Stability is the Monte-Carlo stability estimate count/N.
	Stability float64
	// ConfidenceError is the half-width of the confidence interval around
	// Stability at the operator's confidence level (Equation 10).
	ConfidenceError float64
	// SamplesUsed is the number of fresh samples drawn by this call.
	SamplesUsed int
	// TotalSamples is the cumulative sample count across calls.
	TotalSamples int
}

// Operator is the stateful GET-NEXTr: it accumulates ranking observations
// across calls (Algorithms 7 and 8 both reuse previous aggregates) and
// remembers which rankings it has already returned. Observations are
// counted under interned 64-bit ranking hashes (collision-checked; see
// intern.go) with the sample vector and top-k scratch reused across draws,
// so the per-sample loop performs no allocations beyond first-seen
// rankings.
type Operator struct {
	ds       *dataset.Dataset
	sampler  sampling.Sampler
	computer *rank.Computer
	mode     Mode
	k        int
	alpha    float64

	table  *internTable
	total  int
	wbuf   geom.Vector // reusable sample buffer
	setbuf []int       // reusable sorted top-k set buffer
}

// Option configures an Operator.
type Option func(*Operator) error

// WithMode selects the ranking semantics (default Complete). k is required
// (>= 1) for the top-k modes and ignored for Complete.
func WithMode(mode Mode, k int) Option {
	return func(o *Operator) error {
		switch mode {
		case Complete:
		case TopKSet, TopKRanked:
			if k < 1 {
				return fmt.Errorf("mc: top-k mode requires k >= 1, got %d", k)
			}
		default:
			return fmt.Errorf("mc: unknown mode %d", int(mode))
		}
		o.mode = mode
		o.k = k
		return nil
	}
}

// WithConfidenceLevel sets 1-alpha for the reported confidence errors
// (default alpha = 0.05, i.e. 95% confidence).
func WithConfidenceLevel(alpha float64) Option {
	return func(o *Operator) error {
		if alpha <= 0 || alpha >= 1 {
			return fmt.Errorf("mc: alpha %v out of (0,1)", alpha)
		}
		o.alpha = alpha
		return nil
	}
}

// NewOperator builds a GET-NEXTr over ds sampling from the given sampler
// (use sampling.ForRegion for a region of interest).
func NewOperator(ds *dataset.Dataset, sampler sampling.Sampler, opts ...Option) (*Operator, error) {
	if ds == nil || ds.N() == 0 {
		return nil, dataset.ErrEmptyDataset
	}
	if sampler == nil {
		return nil, errors.New("mc: nil sampler")
	}
	if sampler.Dim() != ds.D() {
		return nil, fmt.Errorf("mc: sampler dimension %d != dataset dimension %d", sampler.Dim(), ds.D())
	}
	o := &Operator{
		ds:       ds,
		sampler:  sampler,
		computer: rank.NewComputer(ds),
		mode:     Complete,
		alpha:    0.05,
		table:    newInternTable(),
		wbuf:     make(geom.Vector, ds.D()),
	}
	for _, opt := range opts {
		if err := opt(o); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// TotalSamples returns the cumulative number of samples drawn.
func (o *Operator) TotalSamples() int { return o.total }

// DistinctObserved returns the number of distinct rankings observed so far.
func (o *Operator) DistinctObserved() int { return o.table.distinct }

// observe draws one sample into the reused buffer, ranks, and updates the
// interned aggregates. Top-k modes use O(n log k) selection instead of a
// full sort (see rank.TopKSelect). No per-sample allocation happens beyond
// the first observation of each distinct ranking.
func (o *Operator) observe() error {
	if err := sampling.Into(o.sampler, o.wbuf); err != nil {
		return err
	}
	var sel []int
	switch o.mode {
	case TopKSet:
		o.setbuf = append(o.setbuf[:0], o.computer.TopKSelect(o.wbuf, o.k)...)
		slices.Sort(o.setbuf)
		sel = o.setbuf
	case TopKRanked:
		sel = o.computer.TopKSelect(o.wbuf, o.k)
	default:
		sel = o.computer.Compute(o.wbuf).Order
	}
	e, fresh := o.table.observe(sel)
	if fresh {
		e.firstW = o.wbuf.Clone()
	}
	o.total++
	return nil
}

// Cancellation policy: every observation ranks the whole dataset
// (O(n log n), or O(n log k) for top-k), so a ctx.Err() check per iteration
// is noise next to the work it guards, and cancellation lands within one
// observation even on million-row catalogs.

// resultFor assembles the Result for an interned entry and marks it
// returned. The string key only materializes here, at the API edge.
func (o *Operator) resultFor(e *internEntry, fresh int) (Result, error) {
	s := float64(e.count) / float64(o.total)
	e.returned = true
	return Result{
		Key:             e.key(),
		Items:           append([]int(nil), e.order...),
		Weights:         e.firstW,
		Stability:       s,
		ConfidenceError: stats.ConfidenceError(s, o.total, o.alpha),
		SamplesUsed:     fresh,
		TotalSamples:    o.total,
	}, nil
}

// NextFixedBudget draws exactly n fresh samples, then returns the most
// frequent not-yet-returned ranking with its stability estimate and
// confidence error (Algorithm 7). It returns ErrExhausted when every
// observed ranking has already been returned, and the context's error if ctx
// is cancelled mid-sweep.
func (o *Operator) NextFixedBudget(ctx context.Context, n int) (Result, error) {
	if n < 0 {
		return Result{}, fmt.Errorf("mc: negative budget %d", n)
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if err := o.observe(); err != nil {
			return Result{}, err
		}
	}
	e := o.table.best()
	if e == nil {
		return Result{}, ErrExhausted
	}
	return o.resultFor(e, n)
}

// NextFixedError samples until the confidence error of the stability
// estimate of the best undiscovered ranking is at most e (Algorithm 8),
// drawing at most maxSamples fresh samples (<= 0 means the package default).
// It returns ErrBudget if the cap is reached first, and the context's error
// if ctx is cancelled mid-sweep.
func (o *Operator) NextFixedError(ctx context.Context, e float64, maxSamples int) (Result, error) {
	if e <= 0 {
		return Result{}, fmt.Errorf("mc: confidence error %v must be positive", e)
	}
	if maxSamples <= 0 {
		maxSamples = DefaultMaxSamples
	}
	fresh := 0
	for {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if best := o.table.best(); best != nil && o.total >= minSamplesForCI {
			// The stopping rule uses a Laplace-adjusted proportion so that
			// extreme estimates (0 or 1) do not make the Wald half-width
			// collapse to zero after a handful of samples; the reported
			// error in the result remains the paper's Equation 10.
			adj := (float64(best.count) + 1) / (float64(o.total) + 2)
			if stats.ConfidenceError(adj, o.total, o.alpha) <= e {
				return o.resultFor(best, fresh)
			}
		}
		if fresh >= maxSamples {
			return Result{}, fmt.Errorf("%w (cap %d, error target %v)", ErrBudget, maxSamples, e)
		}
		if err := o.observe(); err != nil {
			return Result{}, err
		}
		fresh++
	}
}

// minSamplesForCI is the floor below which the central-limit-theorem
// interval of Equation 10 is not trusted by the fixed-error stopping rule.
const minSamplesForCI = 30

// DefaultMaxSamples caps a single fixed-error call; Equation 11 needs at
// most ~ (Z/e)^2 / 4 samples, so a million covers e >= 0.001 at 95%.
const DefaultMaxSamples = 1_000_000

// TopH returns the h most stable rankings using fixed budgets: firstBudget
// samples on the first call and stepBudget on each subsequent call,
// mirroring the experimental setup of Section 6.3 (5,000 then 1,000).
func (o *Operator) TopH(ctx context.Context, h, firstBudget, stepBudget int) ([]Result, error) {
	var out []Result
	for i := 0; i < h; i++ {
		budget := stepBudget
		if i == 0 {
			budget = firstBudget
		}
		r, err := o.NextFixedBudget(ctx, budget)
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ExpectedDiscoveryCost returns the expected number of samples to first
// observe a ranking of stability s, together with the variance (Theorem 2:
// the geometric distribution).
func ExpectedDiscoveryCost(s float64) (mean, variance float64) {
	return stats.GeometricExpectation(s), stats.GeometricVariance(s)
}

// CurvePoint is one step of a discovery curve.
type CurvePoint struct {
	// Samples is the cumulative sample count at this point.
	Samples int
	// Distinct is the number of distinct rankings observed so far.
	Distinct int
}

// DiscoveryCurve draws budget fresh samples, recording after every `every`
// samples how many distinct rankings have been observed in total. The curve
// saturates as the remaining undiscovered rankings become rare — the
// practical face of Theorem 2's 1/S(r) discovery costs. The aggregates feed
// subsequent Next* calls as usual.
func (o *Operator) DiscoveryCurve(ctx context.Context, budget, every int) ([]CurvePoint, error) {
	if budget < 0 {
		return nil, fmt.Errorf("mc: negative budget %d", budget)
	}
	if every < 1 {
		every = 1
	}
	var curve []CurvePoint
	for i := 1; i <= budget; i++ {
		if err := ctx.Err(); err != nil {
			return curve, err
		}
		if err := o.observe(); err != nil {
			return curve, err
		}
		if i%every == 0 || i == budget {
			curve = append(curve, CurvePoint{Samples: o.total, Distinct: o.table.distinct})
		}
	}
	return curve, nil
}
