package mc

import (
	"context"
	"errors"
	"math"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/sampling"
	"stablerank/internal/twod"
)

func TestParallelEstimateMatchesExact(t *testing.T) {
	ds := dataset.Figure1()
	full := geom.Interval2D{Lo: 0, Hi: math.Pi / 2}
	exact, err := twod.EnumerateAll(ds, full)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ParallelEstimate(ctx, ds, ConeSamplers(geom.FullSpace{D: 2}, 201),
		Complete, 0, 80000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != 80000 {
		t.Errorf("total = %d", est.Total)
	}
	for _, s := range exact[:4] {
		key := s.Ranking.Key()
		if got := est.Stability(key); math.Abs(got-s.Stability) > 0.01 {
			t.Errorf("key %s: parallel %v vs exact %v", key, got, s.Stability)
		}
	}
	top := est.Top(3)
	if len(top) != 3 || top[0] != exact[0].Ranking.Key() {
		t.Errorf("Top(3) = %v, want leader %s", top, exact[0].Ranking.Key())
	}
}

// TestParallelEstimateWorkerInvariance is the determinism contract: the
// merged counts must be bit-identical for every worker count, because shards
// are seeded by chunk index, never by worker index.
func TestParallelEstimateWorkerInvariance(t *testing.T) {
	ds := dataset.Figure1()
	var base Estimate
	for i, workers := range []int{1, 2, 8} {
		est, err := ParallelEstimate(ctx, ds, ConeSamplers(geom.FullSpace{D: 2}, 7), Complete, 0, 9000, workers)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = est
			continue
		}
		if len(est.Counts) != len(base.Counts) {
			t.Fatalf("workers=%d: key set differs (%d vs %d keys)", workers, len(est.Counts), len(base.Counts))
		}
		for k, c := range base.Counts {
			if est.Counts[k] != c {
				t.Fatalf("workers=%d key %s: %d vs %d", workers, k, est.Counts[k], c)
			}
		}
	}
}

func TestParallelEstimateTopKModes(t *testing.T) {
	ds := dataset.Toy225()
	est, err := ParallelEstimate(ctx, ds, ConeSamplers(geom.FullSpace{D: 2}, 8), TopKSet, 3, 20000, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Section 2.2.5: the dominant top-3 set is {t2, t3, t4} = indices 1,2,3.
	if top := est.Top(1); len(top) != 1 || top[0] != "1,2,3" {
		t.Errorf("dominant set = %v, want [1,2,3]", top)
	}
}

func TestParallelEstimateValidation(t *testing.T) {
	ds := dataset.Figure1()
	f := ConeSamplers(geom.FullSpace{D: 2}, 1)
	if _, err := ParallelEstimate(ctx, nil, f, Complete, 0, 10, 1); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := ParallelEstimate(ctx, ds, nil, Complete, 0, 10, 1); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := ParallelEstimate(ctx, ds, f, TopKSet, 0, 10, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ParallelEstimate(ctx, ds, f, Mode(9), 0, 10, 1); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := ParallelEstimate(ctx, ds, f, Complete, 0, -1, 1); err == nil {
		t.Error("negative total accepted")
	}
	// Dimension mismatch surfaces from the worker.
	bad := ConeSamplers(geom.FullSpace{D: 3}, 1)
	if _, err := ParallelEstimate(ctx, ds, bad, Complete, 0, 10, 2); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Zero samples: empty estimate.
	est, err := ParallelEstimate(ctx, ds, f, Complete, 0, 0, 4)
	if err != nil || est.Total != 0 || len(est.Counts) != 0 {
		t.Errorf("zero-total estimate: %+v, %v", est, err)
	}
	if est.Stability("anything") != 0 {
		t.Error("stability of empty estimate should be 0")
	}
	// More workers than samples.
	est, err = ParallelEstimate(ctx, ds, f, Complete, 0, 3, 16)
	if err != nil || est.Total != 3 {
		t.Errorf("workers>total: %+v, %v", est, err)
	}
}

func TestParallelEstimateCancelled(t *testing.T) {
	ds := dataset.Figure1()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ParallelEstimate(cancelled, ds, ConeSamplers(geom.FullSpace{D: 2}, 1), Complete, 0, 50000, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestBuildPoolWorkerInvariance: the pool is bit-identical for worker counts
// 1, 2 and 8 — including a total that is not a multiple of the chunk size, so
// the short tail chunk is covered.
func TestBuildPoolWorkerInvariance(t *testing.T) {
	factory := ConeSamplers(geom.FullSpace{D: 3}, 42)
	total := 2*PoolChunk + 777
	var base []geom.Vector
	for i, workers := range []int{1, 2, 8} {
		pool, err := BuildPool(ctx, factory, total, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(pool) != total {
			t.Fatalf("workers=%d: len = %d, want %d", workers, len(pool), total)
		}
		if i == 0 {
			base = pool
			continue
		}
		for j := range pool {
			for c := range pool[j] {
				if pool[j][c] != base[j][c] {
					t.Fatalf("workers=%d: sample %d component %d differs: %v vs %v",
						workers, j, c, pool[j][c], base[j][c])
				}
			}
		}
	}
}

// TestBuildPoolMatrixMatchesBuildPool: the matrix pool and the
// slice-of-vectors wrapper hold bit-identical samples (they share the
// chunked seeding), and the matrix build is worker-invariant too — the
// determinism contract survives the contiguous storage.
func TestBuildPoolMatrixMatchesBuildPool(t *testing.T) {
	factory := ConeSamplers(geom.FullSpace{D: 3}, 42)
	total := PoolChunk + 123
	pool, err := BuildPool(ctx, factory, total, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Comparing every worker count's matrix against the one BuildPool
	// result proves both matrix-vs-wrapper equality and worker invariance.
	for _, workers := range []int{1, 4} {
		m, err := BuildPoolMatrix(ctx, factory, total, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		if m.Rows() != total || m.Stride() != 3 {
			t.Fatalf("matrix shape %dx%d", m.Rows(), m.Stride())
		}
		for i := 0; i < total; i++ {
			row := m.Row(i)
			for c := range row {
				if row[c] != pool[i][c] {
					t.Fatalf("workers=%d: row %d component %d: %v vs %v", workers, i, c, row[c], pool[i][c])
				}
			}
		}
	}
	// Dimension mismatch between factory and pool is rejected.
	if _, err := BuildPoolMatrix(ctx, factory, 10, 4, 1); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// TestBuildPoolAllocationBudget: the chunked matrix build allocates per
// chunk (sampler construction), never per sample.
func TestBuildPoolAllocationBudget(t *testing.T) {
	factory := ConeSamplers(geom.FullSpace{D: 3}, 7)
	total := 2 * PoolChunk
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := BuildPoolMatrix(ctx, factory, total, 3, 1); err != nil {
			t.Fatal(err)
		}
	})
	// 2 chunks x a handful of sampler allocations + the pool itself; the
	// historical build allocated >= 2*total.
	if allocs > 64 {
		t.Errorf("BuildPoolMatrix allocates %.0f for %d samples (%.3f/sample), want per-chunk only",
			allocs, total, allocs/float64(total))
	}
}

func TestBuildPoolValidationAndCancel(t *testing.T) {
	factory := ConeSamplers(geom.FullSpace{D: 2}, 1)
	if _, err := BuildPool(ctx, nil, 10, 1); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := BuildPool(ctx, factory, -1, 1); err == nil {
		t.Error("negative total accepted")
	}
	pool, err := BuildPool(ctx, factory, 0, 4)
	if err != nil || len(pool) != 0 {
		t.Errorf("zero total: len=%d err=%v", len(pool), err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildPool(cancelled, factory, 100000, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// A failing factory surfaces its error.
	boom := errors.New("boom")
	_, err = BuildPool(ctx, func(int) (sampling.Sampler, error) { return nil, boom }, 10, 2)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}
