package mc

import (
	"math"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/twod"
)

func TestParallelEstimateMatchesExact(t *testing.T) {
	ds := dataset.Figure1()
	full := geom.Interval2D{Lo: 0, Hi: math.Pi / 2}
	exact, err := twod.EnumerateAll(ds, full)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ParallelEstimate(ds, ConeSamplers(geom.FullSpace{D: 2}, 201),
		Complete, 0, 80000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != 80000 {
		t.Errorf("total = %d", est.Total)
	}
	for _, s := range exact[:4] {
		key := s.Ranking.Key()
		if got := est.Stability(key); math.Abs(got-s.Stability) > 0.01 {
			t.Errorf("key %s: parallel %v vs exact %v", key, got, s.Stability)
		}
	}
	top := est.Top(3)
	if len(top) != 3 || top[0] != exact[0].Ranking.Key() {
		t.Errorf("Top(3) = %v, want leader %s", top, exact[0].Ranking.Key())
	}
}

func TestParallelEstimateDeterministic(t *testing.T) {
	ds := dataset.Figure1()
	a, err := ParallelEstimate(ds, ConeSamplers(geom.FullSpace{D: 2}, 7), Complete, 0, 5000, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParallelEstimate(ds, ConeSamplers(geom.FullSpace{D: 2}, 7), Complete, 0, 5000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Counts) != len(b.Counts) {
		t.Fatal("runs differ in key sets")
	}
	for k, c := range a.Counts {
		if b.Counts[k] != c {
			t.Fatalf("key %s: %d vs %d", k, c, b.Counts[k])
		}
	}
}

func TestParallelEstimateTopKModes(t *testing.T) {
	ds := dataset.Toy225()
	est, err := ParallelEstimate(ds, ConeSamplers(geom.FullSpace{D: 2}, 8), TopKSet, 3, 20000, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Section 2.2.5: the dominant top-3 set is {t2, t3, t4} = indices 1,2,3.
	if top := est.Top(1); len(top) != 1 || top[0] != "1,2,3" {
		t.Errorf("dominant set = %v, want [1,2,3]", top)
	}
}

func TestParallelEstimateValidation(t *testing.T) {
	ds := dataset.Figure1()
	f := ConeSamplers(geom.FullSpace{D: 2}, 1)
	if _, err := ParallelEstimate(nil, f, Complete, 0, 10, 1); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := ParallelEstimate(ds, nil, Complete, 0, 10, 1); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := ParallelEstimate(ds, f, TopKSet, 0, 10, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ParallelEstimate(ds, f, Mode(9), 0, 10, 1); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := ParallelEstimate(ds, f, Complete, 0, -1, 1); err == nil {
		t.Error("negative total accepted")
	}
	// Dimension mismatch surfaces from the worker.
	bad := ConeSamplers(geom.FullSpace{D: 3}, 1)
	if _, err := ParallelEstimate(ds, bad, Complete, 0, 10, 2); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Zero samples: empty estimate.
	est, err := ParallelEstimate(ds, f, Complete, 0, 0, 4)
	if err != nil || est.Total != 0 || len(est.Counts) != 0 {
		t.Errorf("zero-total estimate: %+v, %v", est, err)
	}
	if est.Stability("anything") != 0 {
		t.Error("stability of empty estimate should be 0")
	}
	// More workers than samples.
	est, err = ParallelEstimate(ds, f, Complete, 0, 3, 16)
	if err != nil || est.Total != 3 {
		t.Errorf("workers>total: %+v, %v", est, err)
	}
}
