package mc

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
	"stablerank/internal/sampling"
)

// Parallel estimation, an engineering extension beyond the paper: the
// Monte-Carlo sweep of Algorithm 7 is embarrassingly parallel, so the
// distribution of ranking (or top-k) frequencies can be gathered on all
// cores with deterministic per-worker seeds and merged. The result feeds
// the same stability/confidence machinery as the sequential operator.

// SamplerFactory builds one independent sampler per worker. Implementations
// must give distinct workers statistically independent streams; the helper
// ConeSamplers does this for the standard regions.
type SamplerFactory func(worker int) (sampling.Sampler, error)

// ConeSamplers returns a SamplerFactory drawing from the region of interest
// with per-worker seeds baseSeed+worker.
func ConeSamplers(region geom.Region, baseSeed int64) SamplerFactory {
	return func(worker int) (sampling.Sampler, error) {
		return sampling.ForRegion(region, rand.New(rand.NewSource(baseSeed+int64(worker))))
	}
}

// Estimate is the merged outcome of a parallel sweep.
type Estimate struct {
	// Counts maps ranking keys to observation counts.
	Counts map[string]int
	// Total is the number of samples drawn across all workers.
	Total int
}

// Stability returns the estimated stability of key.
func (e Estimate) Stability(key string) float64 {
	if e.Total == 0 {
		return 0
	}
	return float64(e.Counts[key]) / float64(e.Total)
}

// Top returns the h most frequent keys in decreasing count (ties broken by
// key for determinism).
func (e Estimate) Top(h int) []string {
	keys := make([]string, 0, len(e.Counts))
	for k := range e.Counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ci, cj := e.Counts[keys[i]], e.Counts[keys[j]]
		if ci != cj {
			return ci > cj
		}
		return keys[i] < keys[j]
	})
	if h > 0 && len(keys) > h {
		keys = keys[:h]
	}
	return keys
}

// ParallelEstimate draws `total` samples split across `workers` goroutines
// (workers <= 0 uses GOMAXPROCS) and returns the merged ranking-frequency
// distribution under the given mode/k. The outcome is deterministic for a
// fixed factory and worker count.
func ParallelEstimate(ds *dataset.Dataset, factory SamplerFactory, mode Mode, k, total, workers int) (Estimate, error) {
	if ds == nil || ds.N() == 0 {
		return Estimate{}, dataset.ErrEmptyDataset
	}
	if factory == nil {
		return Estimate{}, errors.New("mc: nil sampler factory")
	}
	if total < 0 {
		return Estimate{}, fmt.Errorf("mc: negative total %d", total)
	}
	switch mode {
	case Complete:
	case TopKSet, TopKRanked:
		if k < 1 {
			return Estimate{}, fmt.Errorf("mc: top-k mode requires k >= 1, got %d", k)
		}
	default:
		return Estimate{}, fmt.Errorf("mc: unknown mode %d", int(mode))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total && total > 0 {
		workers = total
	}
	if total == 0 {
		return Estimate{Counts: map[string]int{}}, nil
	}

	type partial struct {
		counts map[string]int
		err    error
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := total / workers
		if w < total%workers {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			s, err := factory(w)
			if err != nil {
				parts[w] = partial{err: err}
				return
			}
			if s.Dim() != ds.D() {
				parts[w] = partial{err: fmt.Errorf("mc: sampler dimension %d != dataset dimension %d", s.Dim(), ds.D())}
				return
			}
			comp := rank.NewComputer(ds)
			counts := make(map[string]int)
			for i := 0; i < share; i++ {
				wv, err := s.Sample()
				if err != nil {
					parts[w] = partial{err: err}
					return
				}
				var key string
				switch mode {
				case TopKSet:
					key = comp.TopKSetKeyOf(wv, k)
				case TopKRanked:
					key = comp.TopKRankedKeyOf(wv, k)
				default:
					key = comp.Compute(wv).Key()
				}
				counts[key]++
			}
			parts[w] = partial{counts: counts}
		}(w, share)
	}
	wg.Wait()
	merged := make(map[string]int)
	n := 0
	for _, p := range parts {
		if p.err != nil {
			return Estimate{}, p.err
		}
		for k, c := range p.counts {
			merged[k] += c
			n += c
		}
	}
	return Estimate{Counts: merged, Total: n}, nil
}
