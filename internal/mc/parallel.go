package mc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
	"stablerank/internal/sampling"
	"stablerank/internal/vecmat"
)

// Parallel estimation, an engineering extension beyond the paper: the
// Monte-Carlo sweeps of Algorithms 7 and 12 are embarrassingly parallel, so
// both the shared sample pool and the distribution of ranking (or top-k)
// frequencies can be gathered on all cores and merged.
//
// Determinism contract: the work is sharded into fixed-size chunks of
// PoolChunk samples, every chunk owns an independent RNG stream derived from
// the base seed and the CHUNK index (never the worker index), and chunk
// boundaries depend only on the total sample count. Workers merely pick up
// chunks; which worker draws a chunk cannot influence its contents. The
// result is therefore bit-identical for any worker count, including 1.

// PoolChunk is the fixed shard size of the deterministic parallel sweeps.
// Small enough that a cancelled context is honored promptly and the chunk
// queue load-balances uneven sampler costs, large enough that per-chunk
// sampler construction is amortized away.
const PoolChunk = 4096

// ChunkSeed derives the RNG seed of shard `chunk` from the base seed with a
// splitmix64 step, so per-chunk streams are decorrelated from each other and
// from the low-offset seeds (base+1, base+2, ...) that callers hand to
// sequential samplers.
func ChunkSeed(base int64, chunk int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(chunk+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// SamplerFactory builds one independent sampler per chunk. Implementations
// must give distinct chunks statistically independent streams; the helper
// ConeSamplers does this for the standard regions.
type SamplerFactory func(chunk int) (sampling.Sampler, error)

// ConeSamplers returns a SamplerFactory drawing from the region of interest
// with per-chunk seeds ChunkSeed(baseSeed, chunk).
func ConeSamplers(region geom.Region, baseSeed int64) SamplerFactory {
	return func(chunk int) (sampling.Sampler, error) {
		return sampling.ForRegion(region, rand.New(rand.NewSource(ChunkSeed(baseSeed, chunk))))
	}
}

// sweep runs fn over every chunk of total on the given worker count, stopping
// early on the first error or context cancellation. fn receives the chunk
// index and the [lo, hi) sample range it covers; it is called from multiple
// goroutines but never twice for the same chunk.
func sweep(ctx context.Context, total, workers int, fn func(chunk, lo, hi int) error) error {
	if total <= 0 {
		return nil
	}
	chunks := (total + PoolChunk - 1) / PoolChunk
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > chunks {
		workers = chunks
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		sweepErr error
	)
	stop := make(chan struct{})
	fail := func(err error) {
		errOnce.Do(func() {
			sweepErr = err
			close(stop)
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				lo := c * PoolChunk
				hi := min(lo+PoolChunk, total)
				if err := fn(c, lo, hi); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return sweepErr
}

// BuildPoolMatrix draws `total` d-dimensional samples through the factory
// directly into one contiguous row-major matrix, sharded into PoolChunk
// chunks spread across `workers` goroutines (workers <= 0 uses GOMAXPROCS).
// Each worker writes its chunk's rows in place (no per-sample allocation,
// via sampling.IntoSampler when the factory's samplers support it), and the
// per-chunk splitmix64 seeding is untouched, so the pool is bit-identical
// for every worker count; see the determinism contract above. Cancelling
// ctx aborts every worker promptly and returns the context's error.
func BuildPoolMatrix(ctx context.Context, factory SamplerFactory, total, d, workers int) (vecmat.Matrix, error) {
	if factory == nil {
		return vecmat.Matrix{}, errors.New("mc: nil sampler factory")
	}
	if total < 0 {
		return vecmat.Matrix{}, fmt.Errorf("mc: negative total %d", total)
	}
	if d < 1 {
		return vecmat.Matrix{}, fmt.Errorf("mc: dimension %d < 1", d)
	}
	pool := vecmat.New(total, d)
	err := sweep(ctx, total, workers, func(chunk, lo, hi int) error {
		return fillChunkRows(ctx, factory, chunk, lo, hi, pool, lo)
	})
	if err != nil {
		return vecmat.Matrix{}, err
	}
	return pool, nil
}

// BuildPool is BuildPoolMatrix returning the pool as per-sample vectors:
// the returned slice's elements are row views into one contiguous backing
// array, so the layout (and allocation count) matches the matrix form while
// the API stays slice-of-vectors. Contents are bit-identical to
// BuildPoolMatrix for every worker count.
func BuildPool(ctx context.Context, factory SamplerFactory, total, workers int) ([]geom.Vector, error) {
	if factory == nil {
		return nil, errors.New("mc: nil sampler factory")
	}
	if total < 0 {
		return nil, fmt.Errorf("mc: negative total %d", total)
	}
	if total == 0 {
		return make([]geom.Vector, 0), nil
	}
	// Probe one sampler for the dimension; chunk 0's sweep constructs its
	// own fresh sampler, so the probe perturbs nothing.
	probe, err := factory(0)
	if err != nil {
		return nil, err
	}
	m, err := BuildPoolMatrix(ctx, factory, total, probe.Dim(), workers)
	if err != nil {
		return nil, err
	}
	pool := make([]geom.Vector, total)
	for i := range pool {
		pool[i] = geom.Vector(m.Row(i))
	}
	return pool, nil
}

// Estimate is the merged outcome of a parallel sweep.
type Estimate struct {
	// Counts maps ranking keys to observation counts.
	Counts map[string]int
	// Total is the number of samples drawn across all workers.
	Total int
}

// Stability returns the estimated stability of key.
func (e Estimate) Stability(key string) float64 {
	if e.Total == 0 {
		return 0
	}
	return float64(e.Counts[key]) / float64(e.Total)
}

// Top returns the h most frequent keys in decreasing count (ties broken by
// key for determinism).
func (e Estimate) Top(h int) []string {
	keys := make([]string, 0, len(e.Counts))
	for k := range e.Counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ci, cj := e.Counts[keys[i]], e.Counts[keys[j]]
		if ci != cj {
			return ci > cj
		}
		return keys[i] < keys[j]
	})
	if h > 0 && len(keys) > h {
		keys = keys[:h]
	}
	return keys
}

// ParallelEstimate draws `total` samples split into PoolChunk shards across
// `workers` goroutines (workers <= 0 uses GOMAXPROCS) and returns the merged
// ranking-frequency distribution under the given mode/k. Per the determinism
// contract, the outcome is bit-identical for a fixed factory and total
// regardless of the worker count. Cancelling ctx aborts the sweep with the
// context's error.
func ParallelEstimate(ctx context.Context, ds *dataset.Dataset, factory SamplerFactory, mode Mode, k, total, workers int) (Estimate, error) {
	if ds == nil || ds.N() == 0 {
		return Estimate{}, dataset.ErrEmptyDataset
	}
	if factory == nil {
		return Estimate{}, errors.New("mc: nil sampler factory")
	}
	if total < 0 {
		return Estimate{}, fmt.Errorf("mc: negative total %d", total)
	}
	switch mode {
	case Complete:
	case TopKSet, TopKRanked:
		if k < 1 {
			return Estimate{}, fmt.Errorf("mc: top-k mode requires k >= 1, got %d", k)
		}
	default:
		return Estimate{}, fmt.Errorf("mc: unknown mode %d", int(mode))
	}
	if total == 0 {
		return Estimate{Counts: map[string]int{}}, nil
	}

	// One ranking computer and one partial intern table per worker slot
	// would race on chunk pickup, so allocate them per chunk instead: a
	// computer is cheap next to the PoolChunk rankings it then produces, and
	// merging per-chunk tables keeps the final counts independent of
	// scheduling. Within a chunk, rankings are counted under interned
	// 64-bit hashes (collision-checked) with the sample buffer reused, so
	// the per-sample loop allocates only for first-seen rankings; string
	// keys materialize once per distinct ranking during the merge.
	chunks := (total + PoolChunk - 1) / PoolChunk
	parts := make([]*internTable, chunks)
	err := sweep(ctx, total, workers, func(chunk, lo, hi int) error {
		s, err := factory(chunk)
		if err != nil {
			return err
		}
		if s.Dim() != ds.D() {
			return fmt.Errorf("mc: sampler dimension %d != dataset dimension %d", s.Dim(), ds.D())
		}
		into, _ := s.(sampling.IntoSampler)
		comp := rank.NewComputer(ds)
		table := newInternTable()
		wbuf := make(geom.Vector, ds.D())
		var setbuf []int
		for i := lo; i < hi; i++ {
			if into != nil {
				err = into.SampleInto(wbuf)
			} else {
				err = sampling.Into(s, wbuf)
			}
			if err != nil {
				return err
			}
			var sel []int
			switch mode {
			case TopKSet:
				setbuf = append(setbuf[:0], comp.TopKSelect(wbuf, k)...)
				sort.Ints(setbuf)
				sel = setbuf
			case TopKRanked:
				sel = comp.TopKSelect(wbuf, k)
			default:
				sel = comp.Compute(wbuf).Order
			}
			table.observe(sel)
		}
		parts[chunk] = table
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	merged := make(map[string]int)
	n := 0
	for _, p := range parts {
		p.forEach(func(e *internEntry) {
			merged[e.key()] += e.count
			n += e.count
		})
	}
	return Estimate{Counts: merged, Total: n}, nil
}
