package mc

import (
	"fmt"

	"stablerank/internal/rank"
	"stablerank/internal/stats"
)

// Top-k stability verification: the consumer's Problem 1 applied to partial
// rankings. A published top-k list (or set) is verified by estimating the
// fraction of the region of interest whose functions reproduce it — the
// natural composition of Algorithm 12's counting with the Section 4.5.1
// partial-ranking semantics, which the exact verifiers cannot provide
// because distinct ranking regions share top-k outcomes.

// VerifyResult is the outcome of randomized top-k verification.
type VerifyResult struct {
	// Stability is the estimated fraction of acceptable functions whose
	// top-k matches the target.
	Stability float64
	// ConfidenceError is the Equation 10 half-width at the operator's
	// confidence level.
	ConfidenceError float64
	// Samples is the number of samples drawn.
	Samples int
}

// VerifyKey estimates the stability of the given target key (a ranking key,
// top-k set key, or ranked top-k key matching the operator's mode) using n
// fresh samples. The observations also feed the operator's aggregates for
// subsequent Next* calls.
func (o *Operator) VerifyKey(target string, n int) (VerifyResult, error) {
	if target == "" {
		return VerifyResult{}, fmt.Errorf("mc: empty target key")
	}
	if n < 1 {
		return VerifyResult{}, fmt.Errorf("mc: verification needs >= 1 sample, got %d", n)
	}
	for i := 0; i < n; i++ {
		if err := o.observe(); err != nil {
			return VerifyResult{}, err
		}
	}
	count := 0
	// A malformed target can never have been observed; report stability 0
	// for it, matching the historical exact-string lookup.
	if items, err := rank.DecodeKey(target); err == nil {
		if e := o.table.lookup(items); e != nil {
			count = e.count
		}
	}
	s := float64(count) / float64(o.total)
	return VerifyResult{
		Stability:       s,
		ConfidenceError: stats.ConfidenceError(s, o.total, o.alpha),
		Samples:         o.total,
	}, nil
}

// VerifyItems is VerifyKey for a target given as item indices: the indices
// are encoded with the operator's mode semantics (sorted for TopKSet).
func (o *Operator) VerifyItems(items []int, n int) (VerifyResult, error) {
	key, err := o.encodeTarget(items)
	if err != nil {
		return VerifyResult{}, err
	}
	return o.VerifyKey(key, n)
}

func (o *Operator) encodeTarget(items []int) (string, error) {
	switch o.mode {
	case TopKSet, TopKRanked:
		if len(items) != o.k {
			return "", fmt.Errorf("mc: target has %d items, operator k is %d", len(items), o.k)
		}
	case Complete:
		if len(items) != o.ds.N() {
			return "", fmt.Errorf("mc: target has %d items, dataset has %d", len(items), o.ds.N())
		}
	}
	r := rank.Ranking{Order: items}
	switch o.mode {
	case TopKSet:
		return r.TopKSetKey(o.k), nil
	case TopKRanked:
		return r.TopKRankedKey(o.k), nil
	default:
		return r.Key(), nil
	}
}
