package mc

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"stablerank/internal/datagen"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
	"stablerank/internal/sampling"
)

// TestInternCollisionFallback forces every identity onto one hash bucket
// and checks that the exact-key overflow path keeps counts, distinct totals
// and lookups correct — the safety net behind the 64-bit interned keys.
func TestInternCollisionFallback(t *testing.T) {
	table := newInternTable()
	table.hash = func([]int) uint64 { return 42 } // adversarial hash: everything collides
	a, b, c := []int{0, 1, 2}, []int{2, 1, 0}, []int{1, 0, 2}
	for i, obs := range [][]int{a, b, a, c, b, a} {
		if _, fresh := table.observe(obs); fresh != (i == 0 || i == 1 || i == 3) {
			t.Fatalf("observation %d: fresh = %v", i, fresh)
		}
	}
	if table.distinct != 3 {
		t.Fatalf("distinct = %d, want 3", table.distinct)
	}
	for _, tc := range []struct {
		sel  []int
		want int
	}{{a, 3}, {b, 2}, {c, 1}, {[]int{0, 2, 1}, 0}} {
		e := table.lookup(tc.sel)
		switch {
		case tc.want == 0 && e != nil:
			t.Fatalf("lookup(%v) found phantom entry", tc.sel)
		case tc.want > 0 && (e == nil || e.count != tc.want):
			t.Fatalf("lookup(%v) = %+v, want count %d", tc.sel, e, tc.want)
		}
	}
	// best() drains in count order, ties by string key, across both maps.
	var got []string
	for e := table.best(); e != nil; e = table.best() {
		got = append(got, e.key())
		e.returned = true
	}
	want := []string{"0,1,2", "2,1,0", "1,0,2"}
	if len(got) != len(want) {
		t.Fatalf("best() drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("best() order %v, want %v", got, want)
		}
	}
}

// TestOperatorSurvivesCollidingHash runs the whole GET-NEXTr operator under
// the adversarial constant hash and checks it returns exactly the same
// results as the well-distributed default hash.
func TestOperatorSurvivesCollidingHash(t *testing.T) {
	ds := datagen.Synthetic(rand.New(rand.NewSource(5)), datagen.KindAntiCorrelated, 12, 3)
	build := func() *Operator {
		s, err := sampling.NewUniform(3, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		op, err := NewOperator(ds, s)
		if err != nil {
			t.Fatal(err)
		}
		return op
	}
	good, bad := build(), build()
	bad.table.hash = func([]int) uint64 { return 0 }
	for i := 0; i < 4; i++ {
		rg, errG := good.NextFixedBudget(context.Background(), 500)
		rb, errB := bad.NextFixedBudget(context.Background(), 500)
		if (errG == nil) != (errB == nil) {
			t.Fatalf("call %d: errors diverge: %v vs %v", i, errG, errB)
		}
		if errG != nil {
			break
		}
		if rg.Key != rb.Key || rg.Stability != rb.Stability {
			t.Fatalf("call %d: colliding hash changed results: %q/%v vs %q/%v",
				i, rg.Key, rg.Stability, rb.Key, rb.Stability)
		}
	}
	if good.DistinctObserved() != bad.DistinctObserved() {
		t.Fatalf("distinct: %d vs %d", good.DistinctObserved(), bad.DistinctObserved())
	}
}

// TestLessIndicesAsKeyMatchesStringCompare: the allocation-free tie-break
// must order exactly like comparing the encoded string keys.
func TestLessIndicesAsKeyMatchesStringCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(6)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			// Small and large values mixed so multi-digit prefixes occur
			// ("2" vs "23", "10" vs "9").
			a[i] = rng.Intn(130)
			b[i] = rng.Intn(130)
		}
		ka := rank.Ranking{Order: a}.Key()
		kb := rank.Ranking{Order: b}.Key()
		if got, want := lessIndicesAsKey(a, b), ka < kb; got != want {
			t.Fatalf("lessIndicesAsKey(%v, %v) = %v, string compare %q < %q = %v", a, b, got, ka, kb, want)
		}
	}
}

// TestObserveAllocationBudget: after the warm-up phase has interned every
// ranking the region can produce, further sampling must not allocate per
// sample — the point of the interned keys and reused buffers.
func TestObserveAllocationBudget(t *testing.T) {
	ds := datagen.Synthetic(rand.New(rand.NewSource(2)), datagen.KindCorrelated, 30, 3)
	for _, mode := range []struct {
		name string
		mode Mode
		k    int
	}{{"complete", Complete, 0}, {"topk-set", TopKSet, 5}, {"topk-ranked", TopKRanked, 5}} {
		t.Run(mode.name, func(t *testing.T) {
			// A narrow cone keeps the set of reachable rankings small, so
			// the warm-up really does intern all of them and steady state
			// measures pure counting.
			cone, err := geom.NewCone(geom.Vector{1, 1, 1}, 0.02)
			if err != nil {
				t.Fatal(err)
			}
			s, err := sampling.NewCap(cone, rand.New(rand.NewSource(4)))
			if err != nil {
				t.Fatal(err)
			}
			op, err := NewOperator(ds, s, WithMode(mode.mode, mode.k))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3000; i++ { // warm-up: discover the identities
				if err := op.observe(); err != nil {
					t.Fatal(err)
				}
			}
			const batch = 512
			allocs := testing.AllocsPerRun(3, func() {
				for i := 0; i < batch; i++ {
					if err := op.observe(); err != nil {
						t.Fatal(err)
					}
				}
			})
			// Tolerate a stray discovery or map rehash, but nothing per
			// sample: the historical implementation allocated >= 2 per
			// observation (key string + sample vector).
			if allocs > batch/8 {
				t.Errorf("%.1f allocs per %d observations (%.2f/sample), want ~0",
					allocs, batch, allocs/batch)
			}
		})
	}
}

// TestItemRankDistributionMatchesRanking cross-checks the flat rank sweep
// against full rankings computed by the rank package.
func TestItemRankDistributionFlatSweep(t *testing.T) {
	ds := datagen.Synthetic(rand.New(rand.NewSource(8)), datagen.KindIndependent, 40, 3)
	s, err := sampling.NewUniform(3, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ItemRankDistribution(context.Background(), ds, s, 7, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Re-draw the identical sample stream and rank fully.
	s2, err := sampling.NewUniform(3, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	comp := rank.NewComputer(ds)
	wantCounts := map[int]int{}
	for i := 0; i < 200; i++ {
		w, err := s2.Sample()
		if err != nil {
			t.Fatal(err)
		}
		wantCounts[comp.Compute(geom.Vector(w)).PositionOf(7)]++
	}
	if len(dist.Counts) != len(wantCounts) {
		t.Fatalf("rank histogram %v, want %v", dist.Counts, wantCounts)
	}
	ranks := make([]int, 0, len(wantCounts))
	for r := range wantCounts {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		if dist.Counts[r] != wantCounts[r] {
			t.Fatalf("rank %d: %d, want %d", r, dist.Counts[r], wantCounts[r])
		}
	}
}
