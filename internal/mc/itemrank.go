package mc

import (
	"context"
	"fmt"
	"sort"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/sampling"
	"stablerank/internal/vecmat"
)

// Per-item rank distributions: Example 1's consumer question in
// distributional form. CSMetrics places Cornell at rank 11 under alpha=0.3,
// just missing the top-10; the natural follow-up is the probability, over
// the acceptable weight region, that the item lands in the top-10 at all.
// One sample costs O(n) — the item's rank is one plus the number of items
// scoring strictly higher (or tying with a smaller index) — so no sorting is
// involved.

// RankDistribution summarizes the rank of one item across sampled scoring
// functions.
type RankDistribution struct {
	// Item is the dataset index analyzed.
	Item int
	// Counts[r] is the number of samples placing the item at 1-based rank
	// r+1... stored sparsely: Counts maps rank -> count.
	Counts map[int]int
	// Samples is the total number of samples drawn.
	Samples int
	// Best and Worst are the extreme observed ranks (1-based).
	Best, Worst int
}

// ProbabilityTopK returns the fraction of samples placing the item within
// the top k ranks.
func (d RankDistribution) ProbabilityTopK(k int) float64 {
	if d.Samples == 0 {
		return 0
	}
	total := 0
	for r, c := range d.Counts { //srlint:ordered integer summation is exact and commutative
		if r <= k {
			total += c
		}
	}
	return float64(total) / float64(d.Samples)
}

// Quantile returns the smallest rank r such that at least fraction q of the
// samples place the item at rank <= r. q is clamped to (0, 1].
func (d RankDistribution) Quantile(q float64) int {
	if d.Samples == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-12
	}
	if q > 1 {
		q = 1
	}
	ranks := make([]int, 0, len(d.Counts))
	for r := range d.Counts {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	need := int(q * float64(d.Samples))
	if need < 1 {
		need = 1
	}
	acc := 0
	for _, r := range ranks {
		acc += d.Counts[r]
		if acc >= need {
			return r
		}
	}
	return ranks[len(ranks)-1]
}

// Mode returns the most frequent rank (ties broken by the better rank).
func (d RankDistribution) Mode() int {
	best, bestCount := 0, -1
	ranks := make([]int, 0, len(d.Counts))
	for r := range d.Counts {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		if d.Counts[r] > bestCount {
			best, bestCount = r, d.Counts[r]
		}
	}
	return best
}

// ItemRankDistribution samples the region of interest n times and returns
// the distribution of the item's 1-based rank. Ranks use the same
// deterministic tie-break as the ranking operator (score ties go to the
// smaller index). Cancelling ctx aborts the sweep with the context's error.
func ItemRankDistribution(ctx context.Context, ds *dataset.Dataset, sampler sampling.Sampler, item, n int) (RankDistribution, error) {
	if ds == nil || ds.N() == 0 {
		return RankDistribution{}, dataset.ErrEmptyDataset
	}
	if sampler == nil {
		return RankDistribution{}, fmt.Errorf("mc: nil sampler")
	}
	if sampler.Dim() != ds.D() {
		return RankDistribution{}, fmt.Errorf("mc: sampler dimension %d != dataset dimension %d", sampler.Dim(), ds.D())
	}
	if item < 0 || item >= ds.N() {
		return RankDistribution{}, fmt.Errorf("mc: item %d out of range [0, %d)", item, ds.N())
	}
	if n < 1 {
		return RankDistribution{}, fmt.Errorf("mc: need >= 1 sample, got %d", n)
	}
	dist := RankDistribution{Item: item, Counts: make(map[int]int), Best: ds.N() + 1}
	// Copy the item attributes into one contiguous row-major matrix so the
	// per-sample rank sweep walks sequential memory, and reuse one sample
	// buffer across draws: the loop body is allocation-free.
	attrs := vecmat.New(ds.N(), ds.D())
	for i := 0; i < ds.N(); i++ {
		attrs.SetRow(i, ds.Attrs(i))
	}
	into, _ := sampler.(sampling.IntoSampler)
	wbuf := make(geom.Vector, ds.D())
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return RankDistribution{}, err
		}
		var err error
		if into != nil {
			err = into.SampleInto(wbuf)
		} else {
			err = sampling.Into(sampler, wbuf)
		}
		if err != nil {
			return RankDistribution{}, err
		}
		r := RankOf(attrs, wbuf, item)
		dist.Counts[r]++
		if r < dist.Best {
			dist.Best = r
		}
		if r > dist.Worst {
			dist.Worst = r
		}
	}
	dist.Samples = n
	return dist, nil
}

// RankOf returns the 1-based rank of item under w in one O(n) flat sweep
// over a contiguous attrs matrix (one row per dataset item): one plus the
// number of items scoring strictly higher (or tying with a smaller index).
// The per-item dot products accumulate in the same order as dataset.Score,
// so ranks match the slice-of-vectors implementation bit for bit. It is the
// kernel the fused query sweep shares with ItemRankDistribution.
func RankOf(attrs vecmat.Matrix, w geom.Vector, item int) int {
	score := vecmat.Dot(w, attrs.Row(item))
	rank := 1
	for i, n := 0, attrs.Rows(); i < n; i++ {
		if i == item {
			continue
		}
		s := vecmat.Dot(w, attrs.Row(i))
		if s > score || (s == score && i < item) {
			rank++
		}
	}
	return rank
}
