package mc

import (
	"context"
	"errors"
	"fmt"

	"stablerank/internal/geom"
	"stablerank/internal/sampling"
	"stablerank/internal/vecmat"
)

// Chunk-range fill API: the building blocks of the deterministic pool build,
// exported so a pool can be assembled from chunks computed anywhere — the
// distributed layer (internal/cluster) farms chunk ranges out to remote
// workers and falls back to these same functions locally. Every function
// here honors the determinism contract at the top of parallel.go: a chunk's
// contents depend only on (factory, chunk index, chunk range), never on who
// or where fills it, so a pool stitched together from any mix of local and
// remote chunk fills is bit-identical to BuildPoolMatrix's output.

// Chunks returns how many PoolChunk-sized shards cover total samples.
func Chunks(total int) int {
	if total <= 0 {
		return 0
	}
	return (total + PoolChunk - 1) / PoolChunk
}

// ChunkRange returns the [lo, hi) sample range of shard `chunk` within a
// pool of total samples. It returns (0, 0) when chunk is out of range.
func ChunkRange(chunk, total int) (lo, hi int) {
	if chunk < 0 || chunk >= Chunks(total) {
		return 0, 0
	}
	lo = chunk * PoolChunk
	hi = min(lo+PoolChunk, total)
	return lo, hi
}

// fillChunkRows draws shard `chunk`'s samples — the [lo, hi) range of a
// total-sized pool — into rows [off, off+hi-lo) of dst. It is the single
// fill loop shared by BuildPoolMatrix (off = lo, dst = the whole pool),
// FillChunk (off = 0, dst = a chunk-sized matrix) and FillChunkInto.
func fillChunkRows(ctx context.Context, factory SamplerFactory, chunk, lo, hi int, dst vecmat.Matrix, off int) error {
	s, err := factory(chunk)
	if err != nil {
		return err
	}
	if s.Dim() != dst.Stride() {
		return fmt.Errorf("mc: sampler dimension %d != pool dimension %d", s.Dim(), dst.Stride())
	}
	into, _ := s.(sampling.IntoSampler)
	for i := lo; i < hi; i++ {
		if (i-lo)%512 == 0 && i > lo {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		row := geom.Vector(dst.Row(off + i - lo))
		if into != nil {
			err = into.SampleInto(row)
		} else {
			err = sampling.Into(s, row)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// FillChunk draws shard `chunk` of a total-sized d-dimensional pool into a
// fresh (hi-lo) x d matrix: exactly the rows BuildPoolMatrix would write at
// [lo, hi). This is the unit of work a remote fill worker computes.
func FillChunk(ctx context.Context, factory SamplerFactory, chunk, total, d int) (vecmat.Matrix, error) {
	if factory == nil {
		return vecmat.Matrix{}, errors.New("mc: nil sampler factory")
	}
	if d < 1 {
		return vecmat.Matrix{}, fmt.Errorf("mc: dimension %d < 1", d)
	}
	lo, hi := ChunkRange(chunk, total)
	if hi <= lo {
		return vecmat.Matrix{}, fmt.Errorf("mc: chunk %d out of range for %d samples", chunk, total)
	}
	m := vecmat.New(hi-lo, d)
	if err := fillChunkRows(ctx, factory, chunk, lo, hi, m, 0); err != nil {
		return vecmat.Matrix{}, err
	}
	return m, nil
}

// FillChunkInto draws shard `chunk` directly into rows [lo, hi) of the
// shared pool matrix — the local-fallback path a coordinator uses for chunks
// a remote worker failed to deliver. pool must be the full total x d matrix.
func FillChunkInto(ctx context.Context, factory SamplerFactory, chunk, total int, pool vecmat.Matrix) error {
	if factory == nil {
		return errors.New("mc: nil sampler factory")
	}
	if pool.Rows() != total {
		return fmt.Errorf("mc: pool has %d rows, want %d", pool.Rows(), total)
	}
	lo, hi := ChunkRange(chunk, total)
	if hi <= lo {
		return fmt.Errorf("mc: chunk %d out of range for %d samples", chunk, total)
	}
	return fillChunkRows(ctx, factory, chunk, lo, hi, pool, lo)
}
