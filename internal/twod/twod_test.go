package twod

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
)

func fullU() geom.Interval2D { return geom.Interval2D{Lo: 0, Hi: math.Pi / 2} }

func randDataset(rr *rand.Rand, n int) *dataset.Dataset {
	ds := dataset.MustNew(2)
	for i := 0; i < n; i++ {
		ds.MustAdd("", rr.Float64(), rr.Float64())
	}
	return ds
}

// bruteForceRegions scans the interval at fine resolution and returns the
// distinct rankings and approximate spans found.
func bruteForceRegions(ds *dataset.Dataset, iv geom.Interval2D, steps int) map[string]float64 {
	spans := make(map[string]float64)
	dt := iv.Width() / float64(steps)
	for i := 0; i < steps; i++ {
		theta := iv.Lo + (float64(i)+0.5)*dt
		key := rank.Compute(ds, geom.Ray2D(theta)).Key()
		spans[key] += dt
	}
	return spans
}

func TestExchangeAngle(t *testing.T) {
	// Equation 6 for t1, t4 of Figure 1.
	a := geom.Vector{0.63, 0.71}
	b := geom.Vector{0.70, 0.68}
	theta, ok := ExchangeAngle(a, b)
	if !ok {
		t.Fatal("exchange expected")
	}
	want := math.Atan((0.70 - 0.63) / (0.71 - 0.68))
	if math.Abs(theta-want) > 1e-12 {
		t.Errorf("theta = %v, want %v", theta, want)
	}
	// At the exchange ray both items score equally.
	w := geom.Ray2D(theta)
	if math.Abs(w.Dot(a)-w.Dot(b)) > 1e-12 {
		t.Error("scores differ at the exchange angle")
	}
	// Dominance: no exchange.
	if _, ok := ExchangeAngle(geom.Vector{2, 2}, geom.Vector{1, 1}); ok {
		t.Error("dominated pair reported an exchange")
	}
	if _, ok := ExchangeAngle(geom.Vector{1, 1}, geom.Vector{1, 1}); ok {
		t.Error("identical pair reported an exchange")
	}
	if _, ok := ExchangeAngle(geom.Vector{1, 2}, geom.Vector{1, 1}); ok {
		t.Error("equal-x pair reported an exchange")
	}
}

func TestRaySweepFigure1(t *testing.T) {
	// Figure 1c: the sample database has exactly 11 ranking regions over U.
	ds := dataset.Figure1()
	regions, err := RaySweep(ds, fullU())
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 11 {
		t.Fatalf("got %d regions, want 11 (Figure 1c)", len(regions))
	}
	// Stabilities sum to 1 and regions tile the quadrant contiguously.
	var sum float64
	prev := 0.0
	for _, r := range regions {
		sum += r.Stability
		if math.Abs(r.Interval.Lo-prev) > 1e-9 {
			t.Errorf("gap before region at %v", r.Interval.Lo)
		}
		prev = r.Interval.Hi
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("stabilities sum to %v", sum)
	}
	if math.Abs(prev-math.Pi/2) > 1e-9 {
		t.Errorf("last region ends at %v", prev)
	}
	// The region containing pi/4 induces the Figure 1 ranking.
	for _, r := range regions {
		if r.Interval.Lo <= math.Pi/4 && math.Pi/4 <= r.Interval.Hi {
			got := rank.Compute(ds, r.Midpoint())
			want := []int{1, 3, 2, 4, 0}
			if !got.Equal(rank.Ranking{Order: want}) {
				t.Errorf("pi/4 region ranking = %v, want %v", got.Order, want)
			}
		}
	}
}

func TestRaySweepMatchesBruteForce(t *testing.T) {
	rr := rand.New(rand.NewSource(91))
	for trial := 0; trial < 20; trial++ {
		ds := randDataset(rr, 3+rr.Intn(12))
		regions, err := RaySweep(ds, fullU())
		if err != nil {
			t.Fatal(err)
		}
		brute := bruteForceRegions(ds, fullU(), 40000)
		// Every region's ranking must match the brute-force span.
		var total float64
		for _, r := range regions {
			key := rank.Compute(ds, r.Midpoint()).Key()
			span, ok := brute[key]
			if !ok {
				t.Fatalf("trial %d: swept region %v not found by scan", trial, r.Interval)
			}
			if math.Abs(span-r.Interval.Width()) > 3e-3 {
				t.Fatalf("trial %d: span mismatch for %s: %v vs %v", trial, key, r.Interval.Width(), span)
			}
			total += r.Stability
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("trial %d: stabilities sum to %v", trial, total)
		}
		if len(regions) != len(brute) {
			t.Fatalf("trial %d: %d regions vs %d brute-force rankings", trial, len(regions), len(brute))
		}
	}
}

func TestRaySweepSubInterval(t *testing.T) {
	rr := rand.New(rand.NewSource(92))
	ds := randDataset(rr, 20)
	iv, _ := geom.NewInterval2D(0.3, 0.8)
	regions, err := RaySweep(ds, iv)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range regions {
		if r.Interval.Lo < iv.Lo-1e-12 || r.Interval.Hi > iv.Hi+1e-12 {
			t.Errorf("region %v outside interval", r.Interval)
		}
		sum += r.Stability
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("stabilities sum to %v", sum)
	}
	// Brute force may miss slivers narrower than its resolution; require
	// that every brute-force ranking is found and that wide swept regions
	// are confirmed by the scan.
	brute := bruteForceRegions(ds, iv, 20000)
	if len(regions) < len(brute) {
		t.Errorf("%d regions < %d brute-force rankings", len(regions), len(brute))
	}
	dt := iv.Width() / 20000
	for _, r := range regions {
		key := rank.Compute(ds, r.Midpoint()).Key()
		if _, ok := brute[key]; !ok && r.Interval.Width() > 5*dt {
			t.Errorf("wide swept region %v missing from scan", r.Interval)
		}
	}
}

func TestRaySweepEdgeCases(t *testing.T) {
	if _, err := RaySweep(dataset.MustNew(2), fullU()); !errors.Is(err, dataset.ErrEmptyDataset) {
		t.Errorf("empty dataset error = %v", err)
	}
	one := dataset.MustNew(2)
	one.MustAdd("a", 0.5, 0.5)
	regions, err := RaySweep(one, fullU())
	if err != nil || len(regions) != 1 || regions[0].Stability != 1 {
		t.Errorf("singleton: %v, %v", regions, err)
	}
	three := dataset.MustNew(3)
	three.MustAdd("a", 1, 2, 3)
	if _, err := RaySweep(three, fullU()); err == nil {
		t.Error("3D dataset accepted")
	}
	// All-dominated chain: a single region.
	chain := dataset.MustNew(2)
	chain.MustAdd("a", 3, 3)
	chain.MustAdd("b", 2, 2)
	chain.MustAdd("c", 1, 1)
	regions, err = RaySweep(chain, fullU())
	if err != nil || len(regions) != 1 {
		t.Errorf("dominance chain: %d regions, err %v", len(regions), err)
	}
}

func TestRaySweepDuplicateItems(t *testing.T) {
	ds := dataset.MustNew(2)
	ds.MustAdd("a", 0.5, 0.5)
	ds.MustAdd("b", 0.5, 0.5)
	ds.MustAdd("c", 0.9, 0.1)
	regions, err := RaySweep(ds, fullU())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range regions {
		sum += r.Stability
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("stabilities sum to %v", sum)
	}
}

func TestVerifyFigure1(t *testing.T) {
	ds := dataset.Figure1()
	r := rank.Compute(ds, geom.Vector{1, 1})
	res, err := Verify(ds, r, fullU())
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the swept region containing pi/4.
	regions, _ := RaySweep(ds, fullU())
	for _, reg := range regions {
		if reg.Interval.Lo <= math.Pi/4 && math.Pi/4 <= reg.Interval.Hi {
			if math.Abs(res.Stability-reg.Stability) > 1e-9 {
				t.Errorf("Verify stability %v != swept %v", res.Stability, reg.Stability)
			}
			if math.Abs(res.Region.Lo-reg.Interval.Lo) > 1e-9 ||
				math.Abs(res.Region.Hi-reg.Interval.Hi) > 1e-9 {
				t.Errorf("Verify region %+v != swept %+v", res.Region, reg.Interval)
			}
		}
	}
}

func TestVerifyMatchesSweepEverywhere(t *testing.T) {
	rr := rand.New(rand.NewSource(93))
	for trial := 0; trial < 20; trial++ {
		ds := randDataset(rr, 3+rr.Intn(10))
		regions, err := RaySweep(ds, fullU())
		if err != nil {
			t.Fatal(err)
		}
		for _, reg := range regions {
			r := rank.Compute(ds, reg.Midpoint())
			res, err := Verify(ds, r, fullU())
			if err != nil {
				t.Fatalf("trial %d: Verify(%v): %v", trial, r.Order, err)
			}
			if math.Abs(res.Stability-reg.Stability) > 1e-9 {
				t.Fatalf("trial %d: stability %v vs %v", trial, res.Stability, reg.Stability)
			}
		}
	}
}

func TestVerifyInfeasible(t *testing.T) {
	ds := dataset.Figure1()
	// Reverse of a feasible ranking puts dominated t1 above its dominator...
	// construct directly: t4 dominates t1? t4=(0.70,0.68), t1=(0.63,0.71):
	// no. Use a crafted pair: t2=(0.83,0.65) vs t4=(0.70,0.68): incomparable.
	// A ranking placing t3 above t5 and t5 above t3 cannot both hold; instead
	// test with a dominated pair: add one.
	ds2 := dataset.MustNew(2)
	ds2.MustAdd("hi", 0.9, 0.9)
	ds2.MustAdd("lo", 0.1, 0.1)
	bad := rank.Ranking{Order: []int{1, 0}}
	if _, err := Verify(ds2, bad, fullU()); !errors.Is(err, ErrInfeasibleRanking) {
		t.Errorf("dominated-above ranking error = %v", err)
	}
	// Crossed bounds: a permutation of Figure 1 that needs incompatible
	// angle ranges.
	impossible := rank.Ranking{Order: []int{0, 1, 2, 3, 4}}
	if _, err := Verify(ds, impossible, fullU()); !errors.Is(err, ErrInfeasibleRanking) {
		t.Errorf("crossed-bounds ranking error = %v", err)
	}
	// Wrong length.
	if _, err := Verify(ds, rank.Ranking{Order: []int{0, 1}}, fullU()); err == nil {
		t.Error("short ranking accepted")
	}
}

func TestVerifyTiedItems(t *testing.T) {
	ds := dataset.MustNew(2)
	ds.MustAdd("a", 0.5, 0.5)
	ds.MustAdd("b", 0.5, 0.5)
	// Tie-break order (a before b) is feasible with stability 1.
	res, err := Verify(ds, rank.Ranking{Order: []int{0, 1}}, fullU())
	if err != nil || math.Abs(res.Stability-1) > 1e-12 {
		t.Errorf("tie-consistent ranking: %v, %v", res, err)
	}
	// Reversed tie order can never be produced by the deterministic
	// tie-break.
	if _, err := Verify(ds, rank.Ranking{Order: []int{1, 0}}, fullU()); !errors.Is(err, ErrInfeasibleRanking) {
		t.Errorf("tie-inconsistent ranking error = %v", err)
	}
}

func TestVerifyRestrictedInterval(t *testing.T) {
	ds := dataset.Figure1()
	iv, _ := geom.NewInterval2D(0.5, 1.0)
	r := rank.Compute(ds, geom.Ray2D(0.75))
	res, err := Verify(ds, r, iv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Region.Lo < iv.Lo-1e-12 || res.Region.Hi > iv.Hi+1e-12 {
		t.Errorf("region %+v escapes the interval", res.Region)
	}
	// A ranking whose region lies entirely below the interval is infeasible
	// inside it. The Figure 1 ranking at angle 0.05 has region [0, ~0.62],
	// so test against [1.2, 1.5].
	high, _ := geom.NewInterval2D(1.2, 1.5)
	outside := rank.Compute(ds, geom.Ray2D(0.05))
	if _, err := Verify(ds, outside, high); !errors.Is(err, ErrInfeasibleRanking) {
		t.Errorf("outside ranking error = %v", err)
	}
}

func TestEnumeratorOrderAndExhaustion(t *testing.T) {
	rr := rand.New(rand.NewSource(94))
	ds := randDataset(rr, 15)
	e, err := NewEnumerator(ds, fullU())
	if err != nil {
		t.Fatal(err)
	}
	total := e.Remaining()
	var prev float64 = 2
	seen := make(map[string]bool)
	count := 0
	for {
		res, err := e.Next()
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
		if res.Stability > prev+1e-12 {
			t.Fatalf("stability not non-increasing: %v after %v", res.Stability, prev)
		}
		prev = res.Stability
		key := res.Ranking.Key()
		if seen[key] {
			t.Fatalf("duplicate ranking %s (violates Theorem 1)", key)
		}
		seen[key] = true
	}
	if count != total {
		t.Errorf("enumerated %d, expected %d", count, total)
	}
	if _, err := e.Next(); !errors.Is(err, ErrExhausted) {
		t.Error("exhausted enumerator should keep returning ErrExhausted")
	}
}

func TestTopHAndThreshold(t *testing.T) {
	rr := rand.New(rand.NewSource(95))
	ds := randDataset(rr, 12)
	all, err := EnumerateAll(ds, fullU())
	if err != nil {
		t.Fatal(err)
	}
	top3, err := TopH(ds, fullU(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top3) != 3 {
		t.Fatalf("TopH returned %d", len(top3))
	}
	for i := range top3 {
		if math.Abs(top3[i].Stability-all[i].Stability) > 1e-12 {
			t.Errorf("TopH[%d] stability mismatch", i)
		}
	}
	// Oversized h returns everything.
	many, err := TopH(ds, fullU(), 10000)
	if err != nil || len(many) != len(all) {
		t.Errorf("oversized TopH: %d vs %d", len(many), len(all))
	}
	// Threshold form.
	s := all[len(all)/2].Stability
	th, err := AboveThreshold(ds, fullU(), s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range th {
		if r.Stability < s {
			t.Errorf("threshold violated: %v < %v", r.Stability, s)
		}
	}
	for _, r := range all[len(th):] {
		if r.Stability >= s && r.Stability > th[len(th)-1].Stability {
			t.Error("threshold missed a qualifying region")
		}
	}
}

// The number of feasible rankings is far below n! and bounded by the number
// of exchanges + 1.
func TestRegionCountBound(t *testing.T) {
	rr := rand.New(rand.NewSource(96))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rr.Intn(20)
		ds := randDataset(rr, n)
		regions, err := RaySweep(ds, fullU())
		if err != nil {
			t.Fatal(err)
		}
		maxRegions := n*(n-1)/2 + 1
		if len(regions) > maxRegions {
			t.Fatalf("%d regions exceeds bound %d", len(regions), maxRegions)
		}
	}
}
