package twod

import (
	"container/heap"
	"errors"
	"fmt"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
)

// CachedEnumerator implements the trade-off noted at the end of Section 3.2:
// "subsequent GET-NEXT2D calls can be done in the order of O(log n), with
// memory cost of O(n^3), by storing the ordered list L for every region in
// the RAYSWEEPING algorithm." Instead of recomputing the ranking from a
// representative function on every call (O(n log n)), the sweep materializes
// each region's ranking as it goes; Next is then a heap pop plus a slice
// copy.
//
// Memory is O(R * n) for R regions — up to O(n^3) — so construction takes a
// budget cap and fails cleanly when the arrangement is too fragmented to
// store.

// ErrCacheBudget is returned when materializing every region's ranking would
// exceed the memory budget.
var ErrCacheBudget = errors.New("twod: region-ranking cache budget exceeded")

// CachedEnumerator yields precomputed rankings in decreasing stability.
type CachedEnumerator struct {
	regions cachedHeap
}

type cachedRegion struct {
	region  Region2D
	ranking rank.Ranking
}

type cachedHeap []cachedRegion

func (h cachedHeap) Len() int            { return len(h) }
func (h cachedHeap) Less(i, j int) bool  { return h[i].region.Stability > h[j].region.Stability }
func (h cachedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cachedHeap) Push(x interface{}) { *h = append(*h, x.(cachedRegion)) }
func (h *cachedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewCachedEnumerator sweeps the region of interest and materializes the
// ranking of every region up front. maxCells bounds R*n (0 means
// DefaultCacheBudget). Construction costs O(R * n log n); every Next
// thereafter is O(log R), shifting all ranking work to setup exactly as the
// paper's note trades memory for per-call latency.
func NewCachedEnumerator(ds *dataset.Dataset, iv geom.Interval2D, maxCells int) (*CachedEnumerator, error) {
	if maxCells <= 0 {
		maxCells = DefaultCacheBudget
	}
	regions, err := RaySweep(ds, iv)
	if err != nil {
		return nil, err
	}
	if len(regions)*ds.N() > maxCells {
		return nil, fmt.Errorf("%w: %d regions x %d items > %d cells",
			ErrCacheBudget, len(regions), ds.N(), maxCells)
	}
	h := make(cachedHeap, 0, len(regions))
	computer := rank.NewComputer(ds) // one attrs matrix + sort buffers for all regions
	for _, reg := range regions {
		h = append(h, cachedRegion{
			region:  reg,
			ranking: computer.Compute(reg.Midpoint()).Clone(),
		})
	}
	heap.Init(&h)
	return &CachedEnumerator{regions: h}, nil
}

// DefaultCacheBudget caps the cached cells (regions x items) at roughly
// 100M ints (~800 MB), the practical ceiling of the paper's O(n^3) memory
// note on commodity hardware.
const DefaultCacheBudget = 100_000_000

// Next returns the next most stable ranking without recomputing it.
func (e *CachedEnumerator) Next() (Result, error) {
	if e.regions.Len() == 0 {
		return Result{}, ErrExhausted
	}
	c := heap.Pop(&e.regions).(cachedRegion)
	return Result{Ranking: c.ranking, Region: c.region, Stability: c.region.Stability}, nil
}

// Remaining returns the number of regions not yet enumerated.
func (e *CachedEnumerator) Remaining() int { return e.regions.Len() }
