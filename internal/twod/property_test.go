package twod

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
)

// Property: the region computed by Verify for the ranking induced by a
// random function contains that function's angle.
func TestVerifyRegionContainsGenerator(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(241))}
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		ds := randDataset(rr, 3+rr.Intn(15))
		theta := rr.Float64() * math.Pi / 2
		w := geom.Ray2D(theta)
		r := rank.Compute(ds, w)
		res, err := Verify(ds, r, fullU())
		if err != nil {
			return false
		}
		return res.Region.Lo-1e-9 <= theta && theta <= res.Region.Hi+1e-9
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: within a verified region, every probe angle induces the same
// ranking; just outside, the ranking differs.
func TestVerifyRegionIsExactlyTheRanking(t *testing.T) {
	rr := rand.New(rand.NewSource(242))
	for trial := 0; trial < 50; trial++ {
		ds := randDataset(rr, 4+rr.Intn(10))
		w := geom.Ray2D(rr.Float64() * math.Pi / 2)
		r := rank.Compute(ds, w)
		res, err := Verify(ds, r, fullU())
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := res.Region.Lo, res.Region.Hi
		// Inside probes.
		for i := 0; i < 10; i++ {
			theta := lo + (hi-lo)*(float64(i)+0.5)/10
			if !rank.Compute(ds, geom.Ray2D(theta)).Equal(r) {
				t.Fatalf("trial %d: interior angle %v induces a different ranking", trial, theta)
			}
		}
		// Outside probes (when the region does not touch the quadrant edge).
		const step = 1e-4
		if lo > step {
			if rank.Compute(ds, geom.Ray2D(lo-step)).Equal(r) {
				t.Fatalf("trial %d: angle below the region still induces the ranking", trial)
			}
		}
		if hi < math.Pi/2-step {
			if rank.Compute(ds, geom.Ray2D(hi+step)).Equal(r) {
				t.Fatalf("trial %d: angle above the region still induces the ranking", trial)
			}
		}
	}
}

// Property: RaySweep stability is scale-invariant — scaling all attribute
// values by a positive constant leaves every region unchanged.
func TestRaySweepScaleInvariance(t *testing.T) {
	rr := rand.New(rand.NewSource(243))
	for trial := 0; trial < 20; trial++ {
		ds := randDataset(rr, 3+rr.Intn(10))
		scaled := dataset.MustNew(2)
		c := 0.1 + rr.Float64()*10
		for i := 0; i < ds.N(); i++ {
			a := ds.Attrs(i)
			scaled.MustAdd("", a[0]*c, a[1]*c)
		}
		r1, err := RaySweep(ds, fullU())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RaySweep(scaled, fullU())
		if err != nil {
			t.Fatal(err)
		}
		if len(r1) != len(r2) {
			t.Fatalf("trial %d: region counts differ after scaling: %d vs %d", trial, len(r1), len(r2))
		}
		for i := range r1 {
			if math.Abs(r1[i].Stability-r2[i].Stability) > 1e-9 {
				t.Fatalf("trial %d: region %d stability changed under scaling", trial, i)
			}
		}
	}
}
