// Package twod implements the exact two-dimensional algorithms of Section 3:
// stability verification by a single scan of the ranked list (SV2D,
// Algorithm 1), region discovery by ray sweeping over the ordering exchanges
// (RAYSWEEPING, Algorithm 2), and iterative enumeration of regions in
// decreasing stability (GET-NEXT2D, Algorithm 3).
//
// In two dimensions a scoring function is a single angle in [0, pi/2], a
// region of interest is an angle interval, ordering exchanges are angles
// (Equation 6), and the stability of a ranking is the exact angular span of
// its region divided by the span of the region of interest.
package twod

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
)

// ErrInfeasibleRanking is returned when a ranking cannot be produced by any
// linear scoring function (a lower-ranked item dominates a higher-ranked
// one, or the exchange bounds cross).
var ErrInfeasibleRanking = errors.New("twod: ranking is not achievable by any scoring function in the region")

// ErrExhausted is returned by GetNext when every region has been reported.
var ErrExhausted = errors.New("twod: no further ranking regions")

// errNotTwoD guards the package against misuse on higher-dimensional data.
func checkTwoD(ds *dataset.Dataset) error {
	if ds.D() != 2 {
		return fmt.Errorf("twod: dataset has %d attributes, want 2", ds.D())
	}
	return nil
}

// ExchangeAngle returns the angle of the ordering exchange between items a
// and b (Equation 6): theta = arctan((b[0]-a[0]) / (a[1]-b[1])). The second
// return is false when the items do not exchange order in the open quadrant
// (one dominates the other, or they are identical).
func ExchangeAngle(a, b geom.Vector) (float64, bool) {
	dx := b[0] - a[0]
	dy := a[1] - b[1]
	if dx == 0 || dy == 0 {
		return 0, false // dominance or identical items: no exchange
	}
	if (dx > 0) != (dy > 0) {
		return 0, false // one dominates the other
	}
	return math.Atan2(math.Abs(dx), math.Abs(dy)), true
}

// VerifyResult is the outcome of stability verification in 2D.
type VerifyResult struct {
	// Stability is the exact fraction of the region of interest generating
	// the ranking.
	Stability float64
	// Region is the angle interval of scoring functions generating it.
	Region geom.Interval2D
}

// Verify computes the exact stability and ranking region of r within the
// angular region of interest iv (SV2D, Algorithm 1, generalized from U to an
// arbitrary interval). It returns ErrInfeasibleRanking if no function in iv
// induces r. Runs in O(n).
func Verify(ds *dataset.Dataset, r rank.Ranking, iv geom.Interval2D) (VerifyResult, error) {
	if err := checkTwoD(ds); err != nil {
		return VerifyResult{}, err
	}
	if len(r.Order) != ds.N() {
		return VerifyResult{}, fmt.Errorf("twod: ranking has %d items, dataset has %d", len(r.Order), ds.N())
	}
	lo, hi := iv.Lo, iv.Hi
	for i := 0; i+1 < len(r.Order); i++ {
		t := ds.Item(r.Order[i])
		u := ds.Item(r.Order[i+1])
		if equalAttrs(t.Attrs, u.Attrs) {
			// Tied everywhere: achievable iff the deterministic tie-break
			// (ascending item index) agrees with r.
			if r.Order[i] > r.Order[i+1] {
				return VerifyResult{}, ErrInfeasibleRanking
			}
			continue
		}
		if dataset.Dominates(t, u) {
			continue
		}
		if dataset.Dominates(u, t) {
			return VerifyResult{}, ErrInfeasibleRanking
		}
		theta, ok := ExchangeAngle(t.Attrs, u.Attrs)
		if !ok {
			continue
		}
		if t.Attrs[0] < u.Attrs[0] {
			// t wins only above the exchange: lower bound.
			if theta > lo {
				lo = theta
			}
		} else {
			// t wins only below the exchange: upper bound.
			if theta < hi {
				hi = theta
			}
		}
		if lo > hi {
			return VerifyResult{}, ErrInfeasibleRanking
		}
	}
	if hi-lo <= 0 {
		return VerifyResult{}, ErrInfeasibleRanking
	}
	region := geom.Interval2D{Lo: lo, Hi: hi}
	return VerifyResult{Stability: region.Width() / iv.Width(), Region: region}, nil
}

func equalAttrs(a, b geom.Vector) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Region2D is one cell of the 2D arrangement: a maximal angle interval whose
// functions all induce the same ranking.
type Region2D struct {
	Interval  geom.Interval2D
	Stability float64 // Interval width / region-of-interest width
}

// Midpoint returns the weight vector at the centre of the region, the
// representative scoring function GET-NEXT2D uses to materialize the
// ranking.
func (r Region2D) Midpoint() geom.Vector {
	return geom.Ray2D((r.Interval.Lo + r.Interval.Hi) / 2)
}

// sweepEvent is a pending ordering exchange between the items currently at
// positions holding itemA and itemB.
type sweepEvent struct {
	theta        float64
	itemA, itemB int // dataset indices; A is ranked above B below theta
}

type eventHeap []sweepEvent

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].theta < h[j].theta }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(sweepEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// RaySweep computes every ranking region inside the region of interest
// (RAYSWEEPING, Algorithm 2), returned in increasing angle order. It runs in
// O(K log n) where K <= n(n-1)/2 is the number of ordering exchanges inside
// the interval.
func RaySweep(ds *dataset.Dataset, iv geom.Interval2D) ([]Region2D, error) {
	if err := checkTwoD(ds); err != nil {
		return nil, err
	}
	n := ds.N()
	if n == 0 {
		return nil, dataset.ErrEmptyDataset
	}
	if n == 1 {
		return []Region2D{{Interval: iv, Stability: 1}}, nil
	}
	// Initial ordering at the left edge of the interval.
	l := rank.Compute(ds, geom.Ray2D(iv.Lo)).Order
	pos := make([]int, n) // pos[item] = index in l
	for i, item := range l {
		pos[item] = i
	}
	events := &eventHeap{}
	// In 2D every item pair exchanges order at most once. Exactly-concurrent
	// exchanges (three or more dual lines through one point) could otherwise
	// flip-flop at a single angle, so pairs swapped at the CURRENT sweep
	// angle are remembered; the set is cleared whenever the sweep advances,
	// keeping memory O(degeneracy) rather than O(n^2).
	swappedHere := make(map[[2]int]bool)
	sweepAngle := iv.Lo
	pushAdjacent := func(i int, after float64) {
		// Queue the exchange between l[i] and l[i+1] if it lies ahead.
		if i < 0 || i+1 >= n {
			return
		}
		a, b := l[i], l[i+1]
		theta, ok := ExchangeAngle(ds.Attrs(a), ds.Attrs(b))
		if !ok {
			return
		}
		if theta >= iv.Hi-angleEps {
			return
		}
		if theta > after+angleEps {
			heap.Push(events, sweepEvent{theta: theta, itemA: a, itemB: b})
		} else if theta > after-angleEps && !swappedHere[pairKey(a, b)] {
			// Concurrent with the current angle: admit once.
			heap.Push(events, sweepEvent{theta: theta, itemA: a, itemB: b})
		}
	}
	for i := 0; i < n-1; i++ {
		pushAdjacent(i, iv.Lo+2*angleEps)
	}
	var regions []Region2D
	width := iv.Width()
	prev := iv.Lo
	for events.Len() > 0 {
		e := heap.Pop(events).(sweepEvent)
		i, j := pos[e.itemA], pos[e.itemB]
		if j != i+1 {
			continue // stale event: the pair is no longer adjacent
		}
		if e.theta > sweepAngle+2*angleEps {
			sweepAngle = e.theta
			clear(swappedHere)
		} else if swappedHere[pairKey(e.itemA, e.itemB)] {
			continue // already swapped at this concurrent angle
		}
		swappedHere[pairKey(e.itemA, e.itemB)] = true
		if e.theta > prev+angleEps {
			regions = append(regions, Region2D{
				Interval:  geom.Interval2D{Lo: prev, Hi: e.theta},
				Stability: (e.theta - prev) / width,
			})
			prev = e.theta
		}
		// Swap the pair in the order.
		l[i], l[j] = l[j], l[i]
		pos[e.itemA], pos[e.itemB] = j, i
		pushAdjacent(i-1, e.theta)
		pushAdjacent(j, e.theta)
	}
	if iv.Hi > prev+angleEps {
		regions = append(regions, Region2D{
			Interval:  geom.Interval2D{Lo: prev, Hi: iv.Hi},
			Stability: (iv.Hi - prev) / width,
		})
	}
	return regions, nil
}

// angleEps collapses exchanges closer than ~1e-12 radians into a single
// event boundary, avoiding zero-width sliver regions from floating-point
// ties.
const angleEps = 1e-12

// pairKey canonicalizes an unordered item pair.
func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Enumerator yields ranking regions in decreasing stability (GET-NEXT2D,
// Algorithm 3). The first construction performs the ray sweep; each Next is
// O(log R + n log n) where R is the number of regions.
type Enumerator struct {
	ds       *dataset.Dataset
	regions  regionHeap
	computer *rank.Computer // amortizes the per-Next ranking
}

type regionHeap []Region2D

func (h regionHeap) Len() int            { return len(h) }
func (h regionHeap) Less(i, j int) bool  { return h[i].Stability > h[j].Stability }
func (h regionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *regionHeap) Push(x interface{}) { *h = append(*h, x.(Region2D)) }
func (h *regionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewEnumerator runs the ray sweep and prepares the stability heap.
func NewEnumerator(ds *dataset.Dataset, iv geom.Interval2D) (*Enumerator, error) {
	regions, err := RaySweep(ds, iv)
	if err != nil {
		return nil, err
	}
	h := regionHeap(regions)
	heap.Init(&h)
	return &Enumerator{ds: ds, regions: h, computer: rank.NewComputer(ds)}, nil
}

// Result is one enumerated stable ranking.
type Result struct {
	Ranking   rank.Ranking
	Region    Region2D
	Stability float64
}

// Next returns the next most stable ranking, or ErrExhausted.
func (e *Enumerator) Next() (Result, error) {
	if e.regions.Len() == 0 {
		return Result{}, ErrExhausted
	}
	r := heap.Pop(&e.regions).(Region2D)
	return Result{
		Ranking:   e.computer.Compute(r.Midpoint()).Clone(),
		Region:    r,
		Stability: r.Stability,
	}, nil
}

// Remaining returns the number of regions not yet enumerated.
func (e *Enumerator) Remaining() int { return e.regions.Len() }

// EnumerateAll returns every feasible ranking in the region of interest with
// its exact stability, in decreasing stability order — the batch problem
// (Problem 2) solved exactly in 2D. Regions inducing the same ranking never
// occur (Theorem 1), so the result is also the distribution plotted in
// Figure 7.
func EnumerateAll(ds *dataset.Dataset, iv geom.Interval2D) ([]Result, error) {
	e, err := NewEnumerator(ds, iv)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, e.Remaining())
	for {
		r, err := e.Next()
		if errors.Is(err, ErrExhausted) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
}

// TopH returns the h most stable rankings (or all, if fewer exist).
func TopH(ds *dataset.Dataset, iv geom.Interval2D, h int) ([]Result, error) {
	e, err := NewEnumerator(ds, iv)
	if err != nil {
		return nil, err
	}
	var out []Result
	for len(out) < h {
		r, err := e.Next()
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AboveThreshold returns every ranking with stability >= s, in decreasing
// stability order (the threshold form of Problem 2).
func AboveThreshold(ds *dataset.Dataset, iv geom.Interval2D, s float64) ([]Result, error) {
	e, err := NewEnumerator(ds, iv)
	if err != nil {
		return nil, err
	}
	var out []Result
	for {
		r, err := e.Next()
		if errors.Is(err, ErrExhausted) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if r.Stability < s {
			return out, nil
		}
		out = append(out, r)
	}
}
