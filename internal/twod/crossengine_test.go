package twod

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/mc"
	"stablerank/internal/md"
	"stablerank/internal/rank"
	"stablerank/internal/sampling"
)

// Cross-engine agreement properties: on random small 2D datasets the exact
// 2D engine, the multi-dimensional delayed-arrangement engine, and the
// randomized Monte-Carlo operator are three independent implementations of
// the same stability semantics, so their answers about the most stable
// ranking must coincide within Monte-Carlo confidence bounds. Seeds are
// fixed, so the checks are deterministic.

// mcBound is a conservative (~5 sigma plus discretization) deviation bound
// for a binomial stability estimate from n samples.
func mcBound(p float64, n int) float64 {
	return 5*math.Sqrt(p*(1-p)/float64(n)) + 2/float64(n)
}

// drawPool2D samples the full 2D function space n times.
func drawPool2D(t *testing.T, seed int64, n int) []geom.Vector {
	t.Helper()
	s, err := sampling.NewUniform(2, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	pool := make([]geom.Vector, n)
	for i := range pool {
		w, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		pool[i] = w
	}
	return pool
}

func TestCrossEngineTopRankingAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine agreement needs Monte-Carlo sample volume")
	}
	ctx := context.Background()
	const n = 40_000
	rr := rand.New(rand.NewSource(7001))
	for trial := 0; trial < 6; trial++ {
		ds := randDataset(rr, 5+rr.Intn(6))

		// Ground truth: the exact 2D enumerator's most stable ranking.
		en, err := NewEnumerator(ds, fullU())
		if err != nil {
			t.Fatal(err)
		}
		top, err := en.Next()
		if err != nil {
			t.Fatal(err)
		}
		exactTop := top.Stability

		pool := drawPool2D(t, int64(9000+trial), n)

		// Engine 2: the MD delayed-arrangement engine over the same space.
		poolCopy := make([]geom.Vector, len(pool))
		copy(poolCopy, pool)
		eng, err := md.NewEngine(ds, geom.FullSpace{D: 2}, poolCopy, md.SamplePartition)
		if err != nil {
			t.Fatal(err)
		}
		mdTop, err := eng.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		// The MD estimate must match the exact stability of the ranking it
		// returned...
		mdExact := exactOf(t, ds, mdTop.Ranking)
		if diff := math.Abs(mdTop.Stability - mdExact); diff > mcBound(mdExact, n) {
			t.Errorf("trial %d: md engine estimate %v vs exact %v (diff %v > bound %v)",
				trial, mdTop.Stability, mdExact, diff, mcBound(mdExact, n))
		}
		// ...and its pick must be top-ranked up to Monte-Carlo noise.
		if mdExact < exactTop-mcBound(exactTop, n) {
			t.Errorf("trial %d: md engine top ranking has exact stability %v, true top is %v",
				trial, mdExact, exactTop)
		}

		// Engine 2b: the MD sampled verification oracle on the exact top
		// ranking agrees with the exact stability.
		sv, err := md.Verify(ctx, ds, top.Ranking, pool)
		if err != nil {
			t.Fatalf("trial %d: md verify: %v", trial, err)
		}
		if diff := math.Abs(sv.Stability - exactTop); diff > mcBound(exactTop, n) {
			t.Errorf("trial %d: md verify %v vs exact %v (diff %v > bound %v)",
				trial, sv.Stability, exactTop, diff, mcBound(exactTop, n))
		}

		// Engine 3: the randomized GET-NEXTr operator's first result.
		sampler, err := sampling.NewUniform(2, rand.New(rand.NewSource(int64(100+trial))))
		if err != nil {
			t.Fatal(err)
		}
		op, err := mc.NewOperator(ds, sampler, mc.WithMode(mc.Complete, 0))
		if err != nil {
			t.Fatal(err)
		}
		mcTop, err := op.NextFixedBudget(ctx, n)
		if err != nil {
			t.Fatal(err)
		}
		mcExact := exactOf(t, ds, rank.Ranking{Order: mcTop.Items})
		if diff := math.Abs(mcTop.Stability - mcExact); diff > mcBound(mcExact, n) {
			t.Errorf("trial %d: mc estimate %v vs exact %v (diff %v > bound %v)",
				trial, mcTop.Stability, mcExact, diff, mcBound(mcExact, n))
		}
		if mcExact < exactTop-mcBound(exactTop, n) {
			t.Errorf("trial %d: mc top ranking has exact stability %v, true top is %v",
				trial, mcExact, exactTop)
		}
	}
}

// TestCrossEngineFullDistributionAgreement compares the complete stability
// distribution: every ranking the MD engine emits must carry an estimate
// within confidence bounds of its exact 2D stability, and the engines must
// discover the same heavyweight regions.
func TestCrossEngineFullDistributionAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine agreement needs Monte-Carlo sample volume")
	}
	ctx := context.Background()
	const n = 40_000
	rr := rand.New(rand.NewSource(7002))
	for trial := 0; trial < 3; trial++ {
		ds := randDataset(rr, 4+rr.Intn(4))
		exact, err := EnumerateAll(ds, fullU())
		if err != nil {
			t.Fatal(err)
		}
		exactByKey := make(map[string]float64, len(exact))
		for _, r := range exact {
			exactByKey[r.Ranking.Key()] = r.Stability
		}

		pool := drawPool2D(t, int64(9100+trial), n)
		eng, err := md.NewEngine(ds, geom.FullSpace{D: 2}, pool, md.SamplePartition)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool)
		for {
			res, err := eng.Next(ctx)
			if err != nil {
				break // exhausted
			}
			seen[res.Ranking.Key()] = true
			want, ok := exactByKey[res.Ranking.Key()]
			if !ok {
				t.Errorf("trial %d: md engine emitted a ranking the exact engine says is infeasible", trial)
				continue
			}
			if diff := math.Abs(res.Stability - want); diff > mcBound(want, n) {
				t.Errorf("trial %d: ranking %s estimate %v vs exact %v (bound %v)",
					trial, res.Ranking.Key(), res.Stability, want, mcBound(want, n))
			}
		}
		// Every region heavy enough that n samples cannot miss it must have
		// been found (a region of stability p is missed with prob (1-p)^n).
		for key, p := range exactByKey {
			if p > 0.001 && !seen[key] {
				t.Errorf("trial %d: md engine missed ranking %s with exact stability %v", trial, key, p)
			}
		}
	}
}

// exactOf returns the exact 2D stability of r, or 0 when r is infeasible.
func exactOf(t *testing.T, ds *dataset.Dataset, r rank.Ranking) float64 {
	t.Helper()
	res, err := Verify(ds, r, fullU())
	if err != nil {
		return 0
	}
	return res.Stability
}
