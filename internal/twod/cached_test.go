package twod

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"stablerank/internal/geom"
)

func TestCachedEnumeratorMatchesPlain(t *testing.T) {
	rr := rand.New(rand.NewSource(221))
	ds := randDataset(rr, 20)
	iv := geom.Interval2D{Lo: 0, Hi: math.Pi / 2}
	plain, err := NewEnumerator(ds, iv)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewCachedEnumerator(ds, iv, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Remaining() != plain.Remaining() {
		t.Fatalf("region counts differ: %d vs %d", cached.Remaining(), plain.Remaining())
	}
	for {
		p, errP := plain.Next()
		c, errC := cached.Next()
		if errors.Is(errP, ErrExhausted) != errors.Is(errC, ErrExhausted) {
			t.Fatal("enumerators exhaust at different points")
		}
		if errors.Is(errP, ErrExhausted) {
			break
		}
		if errP != nil || errC != nil {
			t.Fatalf("errors: %v, %v", errP, errC)
		}
		if !p.Ranking.Equal(c.Ranking) {
			t.Fatalf("rankings differ: %v vs %v", p.Ranking.Order, c.Ranking.Order)
		}
		if math.Abs(p.Stability-c.Stability) > 1e-12 {
			t.Fatalf("stabilities differ: %v vs %v", p.Stability, c.Stability)
		}
	}
}

func TestCachedEnumeratorBudget(t *testing.T) {
	rr := rand.New(rand.NewSource(222))
	ds := randDataset(rr, 30)
	iv := geom.Interval2D{Lo: 0, Hi: math.Pi / 2}
	if _, err := NewCachedEnumerator(ds, iv, 10); !errors.Is(err, ErrCacheBudget) {
		t.Errorf("tiny budget error = %v", err)
	}
}

func BenchmarkCachedVsPlainNext(b *testing.B) {
	// 150 items keep the untimed enumerator rebuilds (every ~11k pops) cheap
	// so the benchmark measures pops, not reconstruction.
	rr := rand.New(rand.NewSource(223))
	ds := randDataset(rr, 150)
	iv := geom.Interval2D{Lo: 0, Hi: math.Pi / 2}
	b.Run("plain-next", func(b *testing.B) {
		e, err := NewEnumerator(ds, iv)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Next(); errors.Is(err, ErrExhausted) {
				b.StopTimer()
				e, _ = NewEnumerator(ds, iv)
				b.StartTimer()
			}
		}
	})
	b.Run("cached-next", func(b *testing.B) {
		e, err := NewCachedEnumerator(ds, iv, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Next(); errors.Is(err, ErrExhausted) {
				b.StopTimer()
				e, _ = NewCachedEnumerator(ds, iv, 0)
				b.StartTimer()
			}
		}
	})
}
