package md

import (
	"math"
	"math/rand"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
	"stablerank/internal/twod"
)

func TestBoundaryFigure1(t *testing.T) {
	// In 2D a bounded ranking region has exactly two boundary facets (its
	// two delimiting exchange angles); an edge region touching the orthant
	// boundary has one.
	ds := dataset.Figure1()
	full := geom.Interval2D{Lo: 0, Hi: math.Pi / 2}
	regions, err := twod.RaySweep(ds, full)
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range regions {
		r := rank.Compute(ds, reg.Midpoint())
		facets, err := Boundary(ds, r)
		if err != nil {
			t.Fatalf("Boundary(%v): %v", r.Order, err)
		}
		interior := reg.Interval.Lo > 1e-9 && reg.Interval.Hi < math.Pi/2-1e-9
		if interior && len(facets) != 2 {
			t.Errorf("interior region %v has %d facets, want 2", reg.Interval, len(facets))
		}
		if !interior && (len(facets) < 1 || len(facets) > 2) {
			t.Errorf("edge region %v has %d facets", reg.Interval, len(facets))
		}
		// Each facet's exchange angle must coincide with one of the region's
		// two boundary angles.
		for _, f := range facets {
			theta, ok := twod.ExchangeAngle(ds.Attrs(f.Upper), ds.Attrs(f.Lower))
			if !ok {
				t.Fatalf("facet %s has no exchange", f.Describe(ds))
			}
			if math.Abs(theta-reg.Interval.Lo) > 1e-9 && math.Abs(theta-reg.Interval.Hi) > 1e-9 {
				t.Errorf("facet %s angle %v matches neither boundary of %v",
					f.Describe(ds), theta, reg.Interval)
			}
		}
	}
}

func TestBoundaryFacetsAreSubsetOfRegion(t *testing.T) {
	rr := rand.New(rand.NewSource(191))
	ds := randDataset(rr, 12, 3)
	r := rank.Compute(ds, geom.Vector{1, 1, 1})
	full, err := RankingRegion(ds, r)
	if err != nil {
		t.Fatal(err)
	}
	facets, err := Boundary(ds, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(facets) == 0 || len(facets) > len(full) {
		t.Fatalf("%d facets for %d constraints", len(facets), len(full))
	}
	// Every facet's constraint must appear among the region constraints.
	for _, f := range facets {
		found := false
		for _, hs := range full {
			if hs.Normal.Equal(f.Halfspace.Normal, 1e-12) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("facet %s not among region constraints", f.Describe(ds))
		}
	}
	// Crossing a facet must actually change the ranking: perturb the weight
	// across the facet's hyperplane and check the pair swaps.
	for _, f := range facets {
		w := geom.Vector{1, 1, 1}
		// Move against the facet normal until outside.
		n := f.Halfspace.Normal.MustNormalize()
		step := 2 * w.Dot(n)
		out := w.Sub(n.Scale(step))
		if out.NonNegative(0) {
			r2 := rank.Compute(ds, out)
			if r2.PositionOf(f.Upper) < r2.PositionOf(f.Lower) {
				t.Errorf("crossing facet %s did not swap the pair", f.Describe(ds))
			}
		}
	}
}

func TestBoundaryInfeasible(t *testing.T) {
	ds := dataset.MustNew(3)
	ds.MustAdd("hi", 0.9, 0.9, 0.9)
	ds.MustAdd("lo", 0.1, 0.1, 0.1)
	if _, err := Boundary(ds, rank.Ranking{Order: []int{1, 0}}); err == nil {
		t.Error("dominance-violating ranking accepted")
	}
	if _, err := Boundary(ds, rank.Ranking{Order: []int{0}}); err == nil {
		t.Error("short ranking accepted")
	}
	// Dominance chain: no exchanges, no facets, no error.
	facets, err := Boundary(ds, rank.Ranking{Order: []int{0, 1}})
	if err != nil || len(facets) != 0 {
		t.Errorf("dominance chain: %v facets, err %v", facets, err)
	}
}
