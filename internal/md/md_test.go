package md

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
	"stablerank/internal/sampling"
	"stablerank/internal/twod"
)

// ctx is the default context threaded through the cancellable API in
// tests that do not exercise cancellation.
var ctx = context.Background()

func drawSamples(t *testing.T, roi geom.Region, n int, seed int64) []geom.Vector {
	t.Helper()
	s, err := sampling.ForRegion(roi, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]geom.Vector, n)
	for i := range out {
		w, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = w
	}
	return out
}

func randDataset(rr *rand.Rand, n, d int) *dataset.Dataset {
	ds := dataset.MustNew(d)
	for i := 0; i < n; i++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rr.Float64()
		}
		ds.MustAdd("", v...)
	}
	return ds
}

func TestStabilityOracle(t *testing.T) {
	// Halfspace w1 >= w2 covers half the orthant by symmetry.
	samples := drawSamples(t, geom.FullSpace{D: 3}, 20000, 101)
	cs := []geom.Halfspace{{Normal: geom.Vector{1, -1, 0}, Positive: true}}
	s := StabilityOracle(cs, samples)
	if math.Abs(s-0.5) > 0.02 {
		t.Errorf("oracle = %v, want ~0.5", s)
	}
	// Empty constraint set: everything inside.
	if got := StabilityOracle(nil, samples); got != 1 {
		t.Errorf("no constraints = %v, want 1", got)
	}
	// No samples.
	if got := StabilityOracle(cs, nil); got != 0 {
		t.Errorf("no samples = %v, want 0", got)
	}
	// Negative halfspace is the complement.
	neg := []geom.Halfspace{{Normal: geom.Vector{1, -1, 0}, Positive: false}}
	if sum := StabilityOracle(cs, samples) + StabilityOracle(neg, samples); math.Abs(sum-1) > 1e-9 {
		t.Errorf("complementary halves sum to %v", sum)
	}
}

func TestVerifyAgainstExact2D(t *testing.T) {
	// The MD verifier on a 2-attribute dataset must agree with the exact 2D
	// result.
	rr := rand.New(rand.NewSource(102))
	ds := randDataset(rr, 12, 2)
	samples := drawSamples(t, geom.FullSpace{D: 2}, 40000, 103)
	full := geom.Interval2D{Lo: 0, Hi: math.Pi / 2}
	regions, err := twod.RaySweep(ds, full)
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range regions {
		if reg.Stability < 0.01 {
			continue // MC error dominates tiny regions
		}
		r := rank.Compute(ds, reg.Midpoint())
		res, err := Verify(ctx, ds, r, samples)
		if err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if math.Abs(res.Stability-reg.Stability) > 0.015 {
			t.Errorf("MC stability %v vs exact %v", res.Stability, reg.Stability)
		}
	}
}

func TestVerifyAgainstExact3D(t *testing.T) {
	rr := rand.New(rand.NewSource(104))
	ds := randDataset(rr, 8, 3)
	samples := drawSamples(t, geom.FullSpace{D: 3}, 60000, 105)
	for trial := 0; trial < 20; trial++ {
		w, _ := sampling.NewUniform(3, rr)
		wv, err := w.Sample()
		if err != nil {
			t.Fatal(err)
		}
		r := rank.Compute(ds, wv)
		mc, err := Verify(ctx, ds, r, samples)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := VerifyExact3D(ds, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mc.Stability-exact) > 0.02 {
			t.Errorf("trial %d: MC %v vs Girard exact %v", trial, mc.Stability, exact)
		}
	}
}

func TestVerifyInfeasible(t *testing.T) {
	ds := dataset.MustNew(3)
	ds.MustAdd("hi", 0.9, 0.9, 0.9)
	ds.MustAdd("lo", 0.1, 0.1, 0.1)
	samples := drawSamples(t, geom.FullSpace{D: 3}, 100, 106)
	if _, err := Verify(ctx, ds, rank.Ranking{Order: []int{1, 0}}, samples); !errors.Is(err, ErrInfeasibleRanking) {
		t.Errorf("dominance-violating ranking error = %v", err)
	}
	if _, err := Verify(ctx, ds, rank.Ranking{Order: []int{0}}, samples); err == nil {
		t.Error("short ranking accepted")
	}
	if _, err := Verify(ctx, ds, rank.Ranking{Order: []int{0, 1}}, nil); !errors.Is(err, ErrNoSamples) {
		t.Error("empty samples accepted")
	}
	// Tied items.
	tied := dataset.MustNew(3)
	tied.MustAdd("a", 0.5, 0.5, 0.5)
	tied.MustAdd("b", 0.5, 0.5, 0.5)
	if _, err := Verify(ctx, tied, rank.Ranking{Order: []int{1, 0}}, samples); !errors.Is(err, ErrInfeasibleRanking) {
		t.Errorf("tie-inconsistent ranking error = %v", err)
	}
	res, err := Verify(ctx, tied, rank.Ranking{Order: []int{0, 1}}, samples)
	if err != nil || res.Stability != 1 {
		t.Errorf("tie-consistent ranking: %+v, %v", res, err)
	}
}

func TestExchangeHyperplanes(t *testing.T) {
	ds := dataset.Figure1()
	hps := ExchangeHyperplanes(ds, geom.FullSpace{D: 2})
	// Figure 1c has 10 pairwise intersections drawn; dominated pairs are
	// excluded. Count non-dominating pairs directly.
	want := 0
	for i := 0; i < ds.N(); i++ {
		for j := i + 1; j < ds.N(); j++ {
			if !ds.DominatesIdx(i, j) && !ds.DominatesIdx(j, i) {
				want++
			}
		}
	}
	if len(hps) != want {
		t.Errorf("got %d hyperplanes, want %d", len(hps), want)
	}
	// A narrow cone keeps only a few.
	cone, _ := geom.NewCone(geom.Vector{1, 1}, math.Pi/40)
	coneHps := ExchangeHyperplanes(ds, cone)
	if len(coneHps) >= len(hps) {
		t.Errorf("cone filter kept %d of %d hyperplanes", len(coneHps), len(hps))
	}
}

func TestEngineMatchesExact2D(t *testing.T) {
	// Full engine enumeration on 2-attribute data must reproduce the exact
	// 2D region list (rankings and stabilities).
	rr := rand.New(rand.NewSource(107))
	ds := randDataset(rr, 10, 2)
	full := geom.Interval2D{Lo: 0, Hi: math.Pi / 2}
	exact, err := twod.EnumerateAll(ds, full)
	if err != nil {
		t.Fatal(err)
	}
	exactByKey := make(map[string]float64, len(exact))
	for _, r := range exact {
		exactByKey[r.Ranking.Key()] = r.Stability
	}
	samples := drawSamples(t, geom.FullSpace{D: 2}, 50000, 108)
	e, err := NewEngine(ds, geom.FullSpace{D: 2}, samples, SamplePartition)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	prev := 2.0
	for {
		res, err := e.Next(ctx)
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.Stability > prev+1e-12 {
			t.Fatalf("stability not non-increasing: %v after %v", res.Stability, prev)
		}
		prev = res.Stability
		want, ok := exactByKey[res.Ranking.Key()]
		if !ok {
			t.Fatalf("engine produced ranking %s unknown to exact 2D", res.Ranking.Key())
		}
		if math.Abs(res.Stability-want) > 0.01 {
			t.Errorf("ranking %s: MC %v vs exact %v", res.Ranking.Key(), res.Stability, want)
		}
		found++
	}
	// Every non-sliver exact region must be found.
	missed := 0
	for _, r := range exact {
		if r.Stability > 0.005 {
			continue
		}
		missed++
	}
	if found < len(exact)-missed {
		t.Errorf("engine found %d rankings, exact has %d (%d slivers)", found, len(exact), missed)
	}
}

func TestEngineLPMatchesSamplePartition(t *testing.T) {
	rr := rand.New(rand.NewSource(109))
	ds := randDataset(rr, 8, 3)
	roi := geom.FullSpace{D: 3}
	s1 := drawSamples(t, roi, 20000, 110)
	s2 := make([]geom.Vector, len(s1))
	for i, s := range s1 {
		s2[i] = s.Clone()
	}
	e1, err := NewEngine(ds, roi, s1, SamplePartition)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(ds, roi, s2, LPExact)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r1, err1 := e1.Next(ctx)
		r2, err2 := e2.Next(ctx)
		if errors.Is(err1, ErrExhausted) && errors.Is(err2, ErrExhausted) {
			break
		}
		if err1 != nil || err2 != nil {
			t.Fatalf("errors: %v, %v", err1, err2)
		}
		if r1.Ranking.Key() != r2.Ranking.Key() {
			t.Errorf("call %d: rankings differ: %s vs %s", i, r1.Ranking.Key(), r2.Ranking.Key())
		}
		if math.Abs(r1.Stability-r2.Stability) > 0.01 {
			t.Errorf("call %d: stabilities differ: %v vs %v", i, r1.Stability, r2.Stability)
		}
	}
	if e2.LPCalls() == 0 {
		t.Error("LP mode performed no LP calls")
	}
}

func TestEngineTopRankingIsMostStable(t *testing.T) {
	// The first result must match the maximum exact 3D stability over many
	// random probes.
	rr := rand.New(rand.NewSource(111))
	ds := randDataset(rr, 7, 3)
	roi := geom.FullSpace{D: 3}
	samples := drawSamples(t, roi, 30000, 112)
	e, err := NewEngine(ds, roi, samples, SamplePartition)
	if err != nil {
		t.Fatal(err)
	}
	first, err := e.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	exactFirst, err := VerifyExact3D(ds, first.Ranking)
	if err != nil {
		t.Fatal(err)
	}
	// Probe: no sampled ranking may have exact stability clearly above the
	// reported top.
	u, _ := sampling.NewUniform(3, rr)
	for i := 0; i < 300; i++ {
		w, _ := u.Sample()
		r := rank.Compute(ds, w)
		s, err := VerifyExact3D(ds, r)
		if err != nil {
			t.Fatal(err)
		}
		if s > exactFirst+0.02 {
			t.Fatalf("found ranking with stability %v above reported top %v", s, exactFirst)
		}
	}
}

func TestEngineConeROI(t *testing.T) {
	rr := rand.New(rand.NewSource(113))
	ds := randDataset(rr, 20, 4)
	axis := geom.Vector{1, 0.5, 0.3, 0.2}
	cone, err := geom.NewCone(axis, math.Pi/50)
	if err != nil {
		t.Fatal(err)
	}
	samples := drawSamples(t, cone, 10000, 114)
	e, err := NewEngine(ds, cone, samples, SamplePartition)
	if err != nil {
		t.Fatal(err)
	}
	results, err := TopH(ctx, e, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no rankings found in cone")
	}
	var sum float64
	seen := map[string]bool{}
	for _, r := range results {
		if seen[r.Ranking.Key()] {
			t.Error("duplicate ranking emitted")
		}
		seen[r.Ranking.Key()] = true
		sum += r.Stability
		if !cone.Contains(r.Weights) {
			t.Errorf("representative weights %v outside the cone", r.Weights)
		}
	}
	if sum > 1+1e-9 {
		t.Errorf("stabilities sum to %v > 1", sum)
	}
}

func TestEngineValidation(t *testing.T) {
	ds := dataset.Figure1()
	samples := drawSamples(t, geom.FullSpace{D: 2}, 100, 115)
	if _, err := NewEngine(dataset.MustNew(2), geom.FullSpace{D: 2}, samples, SamplePartition); !errors.Is(err, dataset.ErrEmptyDataset) {
		t.Errorf("empty dataset error = %v", err)
	}
	if _, err := NewEngine(ds, geom.FullSpace{D: 2}, nil, SamplePartition); !errors.Is(err, ErrNoSamples) {
		t.Errorf("no samples error = %v", err)
	}
	if _, err := NewEngine(ds, geom.FullSpace{D: 3}, samples, SamplePartition); err == nil {
		t.Error("ROI dimension mismatch accepted")
	}
	bad := []geom.Vector{{1, 2, 3}}
	if _, err := NewEngine(ds, geom.FullSpace{D: 2}, bad, SamplePartition); err == nil {
		t.Error("sample dimension mismatch accepted")
	}
}

func TestEngineExhaustion(t *testing.T) {
	ds := dataset.Figure1()
	samples := drawSamples(t, geom.FullSpace{D: 2}, 30000, 116)
	e, err := NewEngine(ds, geom.FullSpace{D: 2}, samples, SamplePartition)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		_, err := e.Next(ctx)
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	// Figure 1c: 11 regions; sampling may miss the thinnest.
	if count < 9 || count > 11 {
		t.Errorf("enumerated %d regions, want ~11", count)
	}
	if _, err := e.Next(ctx); !errors.Is(err, ErrExhausted) {
		t.Error("exhausted engine should keep returning ErrExhausted")
	}
}

func TestFullArrangementMatchesEngine(t *testing.T) {
	rr := rand.New(rand.NewSource(117))
	ds := randDataset(rr, 6, 3)
	roi := geom.FullSpace{D: 3}
	s1 := drawSamples(t, roi, 20000, 118)
	s2 := make([]geom.Vector, len(s1))
	for i, s := range s1 {
		s2[i] = s.Clone()
	}
	all, err := FullArrangement(ctx, ds, roi, s1, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ds, roi, s2, SamplePartition)
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		r, err := e.Next(ctx)
		if err != nil {
			t.Fatalf("engine ended early at %d of %d", i, len(all))
		}
		if r.Ranking.Key() != all[i].Ranking.Key() {
			t.Fatalf("position %d: %s vs %s", i, r.Ranking.Key(), all[i].Ranking.Key())
		}
	}
	// Capped construction stops early.
	s3 := drawSamples(t, roi, 5000, 119)
	capped, err := FullArrangement(ctx, ds, roi, s3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) > 3 {
		t.Errorf("cap ignored: %d results", len(capped))
	}
}

func TestVerifyExact3DErrors(t *testing.T) {
	ds := dataset.Figure1()
	if _, err := VerifyExact3D(ds, rank.Ranking{Order: []int{0, 1, 2, 3, 4}}); !errors.Is(err, ErrNotThreeD) {
		t.Errorf("2D dataset error = %v", err)
	}
}

// Property: stabilities over a full enumeration sum to ~1 (the sampled
// regions partition the region of interest).
func TestEngineStabilitySumsToOne(t *testing.T) {
	rr := rand.New(rand.NewSource(120))
	for trial := 0; trial < 5; trial++ {
		ds := randDataset(rr, 5+rr.Intn(4), 3)
		roi := geom.FullSpace{D: 3}
		samples := drawSamples(t, roi, 10000, int64(200+trial))
		all, err := FullArrangement(ctx, ds, roi, samples, 0)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, r := range all {
			sum += r.Stability
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: stabilities sum to %v", trial, sum)
		}
	}
}
