package md

import (
	"fmt"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/lp"
	"stablerank/internal/rank"
)

// Boundary characterization (the paper's Section 8 future work): reduce a
// ranking region's O(n) ordering-exchange constraints to the non-redundant
// subset that actually bounds it, and name each boundary by the item pair
// whose exchange it is.

// BoundaryFacet is one facet of a ranking region: crossing it swaps exactly
// the named item pair.
type BoundaryFacet struct {
	// Upper and Lower are the dataset indices of the adjacent items whose
	// exchange forms the facet: Upper outranks Lower inside the region.
	Upper, Lower int
	// Halfspace is the facet's constraint (positive side = inside).
	Halfspace geom.Halfspace
}

// Describe formats the facet using item identifiers.
func (f BoundaryFacet) Describe(ds *dataset.Dataset) string {
	return fmt.Sprintf("%s <-> %s", ds.Item(f.Upper).ID, ds.Item(f.Lower).ID)
}

// Boundary returns the non-redundant facets of ranking r's region: the
// adjacent-pair exchanges not implied by the remaining constraints and the
// orthant. These are the swaps a weight perturbation can realize first —
// the region's actual boundary. Cost: O(n) LP solves.
func Boundary(ds *dataset.Dataset, r rank.Ranking) ([]BoundaryFacet, error) {
	if len(r.Order) != ds.N() {
		return nil, fmt.Errorf("md: ranking has %d items, dataset has %d", len(r.Order), ds.N())
	}
	// Collect the adjacent-pair constraints with their pair labels, mirroring
	// RankingRegion but retaining provenance.
	type labelled struct {
		upper, lower int
		normal       geom.Vector
	}
	var cons []labelled
	for i := 0; i+1 < len(r.Order); i++ {
		t := ds.Item(r.Order[i])
		u := ds.Item(r.Order[i+1])
		if equalAttrs(t.Attrs, u.Attrs) {
			if r.Order[i] > r.Order[i+1] {
				return nil, ErrInfeasibleRanking
			}
			continue
		}
		if dataset.Dominates(t, u) {
			continue
		}
		if dataset.Dominates(u, t) {
			return nil, ErrInfeasibleRanking
		}
		cons = append(cons, labelled{
			upper:  r.Order[i],
			lower:  r.Order[i+1],
			normal: geom.OrderingExchange(t.Attrs, u.Attrs).Normal,
		})
	}
	normals := make([]geom.Vector, len(cons))
	for i, c := range cons {
		normals[i] = c.normal
	}
	keep, err := lp.NonRedundant(ds.D(), normals)
	if err != nil {
		return nil, err
	}
	facets := make([]BoundaryFacet, len(keep))
	for i, idx := range keep {
		facets[i] = BoundaryFacet{
			Upper:     cons[idx].upper,
			Lower:     cons[idx].lower,
			Halfspace: geom.Halfspace{Normal: cons[idx].normal, Positive: true},
		}
	}
	return facets, nil
}
