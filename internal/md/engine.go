package md

import (
	"container/heap"
	"context"
	"errors"
	"fmt"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/lp"
	"stablerank/internal/rank"
	"stablerank/internal/vecmat"
)

// Region is one (partially refined) cell of the arrangement of ordering
// exchanges, the data structure of Figure 2 in the paper: the halfspaces
// accumulated so far, the Monte-Carlo stability, the index of the first
// hyperplane not yet considered, and the [sb, se) range of the shared sample
// array holding exactly the samples inside the cell (Section 5.4).
type Region struct {
	Constraints []geom.Halfspace
	Stability   float64
	pending     int
	sb, se      int
}

// SampleCount returns the number of region-of-interest samples inside the
// region; Stability is SampleCount divided by the total sample count.
func (r *Region) SampleCount() int { return r.se - r.sb }

// Result is one stable ranking produced by the engine.
type Result struct {
	// Ranking is the full ranking induced by every function in the region.
	Ranking rank.Ranking
	// Stability is the Monte-Carlo stability estimate.
	Stability float64
	// Weights is the representative scoring function used to materialize the
	// ranking (the centroid of the region's samples).
	Weights geom.Vector
	// Region is the reported cell.
	Region *Region
}

// IntersectionMode selects how the engine tests whether a hyperplane passes
// through a region (the passThrough call in Algorithm 6).
type IntersectionMode int

const (
	// SamplePartition uses the Section 5.4 quick-sort partition over the
	// shared sample array: a hyperplane crosses a region iff the region's
	// samples fall on both of its sides. Unbiased, O(samples in region).
	SamplePartition IntersectionMode = iota
	// LPExact additionally confirms each split with the exact linear
	// program of Section 4.2 before accepting it, rejecting splits whose
	// smaller side is a numerical artifact. Slower; used for ablation.
	LPExact
)

// Engine performs delayed arrangement construction (GET-NEXTmd,
// Algorithm 6): it keeps a max-heap of regions by stability and refines only
// the most stable region until that region has no pending hyperplane left,
// at which point its ranking is emitted.
type Engine struct {
	ds       *dataset.Dataset
	hps      []geom.Hyperplane
	samples  vecmat.Matrix // shared contiguous matrix, partitioned in place
	total    int
	regions  regionHeap
	computer *rank.Computer
	mode     IntersectionMode
	returned map[string]bool
	// splits and lpCalls instrument the ablation benchmarks.
	splits  int
	lpCalls int
}

// NewEngine prepares GET-NEXTmd over the dataset within the region of
// interest, with samples drawn (by the caller) uniformly from that region.
// The samples are copied into the engine's contiguous matrix, so the input
// slice is left untouched; callers already holding a matrix pool should use
// NewEngineMatrix and skip the copy.
func NewEngine(ds *dataset.Dataset, roi geom.Region, samples []geom.Vector, mode IntersectionMode) (*Engine, error) {
	if ds.N() == 0 {
		return nil, dataset.ErrEmptyDataset
	}
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	d := ds.D()
	m := vecmat.New(len(samples), d)
	for i, s := range samples {
		if len(s) != d {
			return nil, fmt.Errorf("md: sample dimension %d != dataset dimension %d", len(s), d)
		}
		m.SetRow(i, s)
	}
	return NewEngineMatrix(ds, roi, m, mode)
}

// NewEngineMatrix is NewEngine over a contiguous row-major sample matrix
// (stride = the dataset dimension). The matrix is owned by the engine
// afterwards and its rows are reordered in place by the Section 5.4
// partition sweeps.
func NewEngineMatrix(ds *dataset.Dataset, roi geom.Region, samples vecmat.Matrix, mode IntersectionMode) (*Engine, error) {
	if ds.N() == 0 {
		return nil, dataset.ErrEmptyDataset
	}
	if samples.Rows() == 0 {
		return nil, ErrNoSamples
	}
	d := ds.D()
	if roi.Dim() != d {
		return nil, fmt.Errorf("md: region of interest dimension %d != dataset dimension %d", roi.Dim(), d)
	}
	if samples.Stride() != d {
		return nil, fmt.Errorf("md: sample dimension %d != dataset dimension %d", samples.Stride(), d)
	}
	e := &Engine{
		ds:       ds,
		hps:      ExchangeHyperplanes(ds, roi),
		samples:  samples,
		total:    samples.Rows(),
		computer: rank.NewComputer(ds),
		mode:     mode,
		returned: make(map[string]bool),
	}
	root := &Region{Stability: 1, pending: 0, sb: 0, se: samples.Rows()}
	e.regions = regionHeap{root}
	heap.Init(&e.regions)
	return e, nil
}

// HyperplaneCount returns the number of ordering exchanges intersecting the
// region of interest (|H| in Algorithm 6).
func (e *Engine) HyperplaneCount() int { return len(e.hps) }

// Splits returns the number of region splits performed so far.
func (e *Engine) Splits() int { return e.splits }

// LPCalls returns the number of exact LP intersection checks performed (only
// nonzero in LPExact mode).
func (e *Engine) LPCalls() int { return e.lpCalls }

// Next returns the next most stable ranking region (Algorithm 6). The search
// refines only the currently most stable region, so early calls avoid
// constructing the full arrangement. Cancelling ctx stops the refinement at
// the next region boundary and returns the context's error; the engine stays
// consistent and a later call with a live context resumes where it left off.
func (e *Engine) Next(ctx context.Context) (Result, error) {
	for e.regions.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		r := heap.Pop(&e.regions).(*Region)
		split := false
		for scanned := 0; r.pending < len(e.hps); scanned++ {
			// A single region can scan O(n^2) pending hyperplanes, each with a
			// partition pass over its samples; poll cancellation periodically
			// and re-push the popped region so the engine stays resumable.
			if scanned%64 == 0 {
				if err := ctx.Err(); err != nil {
					heap.Push(&e.regions, r)
					return Result{}, err
				}
			}
			h := e.hps[r.pending]
			r.pending++
			mid := e.samples.PartitionRows(h.Normal, r.sb, r.se)
			if mid == r.sb || mid == r.se {
				continue // does not pass through this region
			}
			if e.mode == LPExact {
				e.lpCalls++
				ok, err := lp.HyperplaneIntersects(e.ds.D(), h, orientedNormals(r.Constraints))
				if err != nil {
					// Keep the popped region so a retry does not silently
					// lose it (and its stability mass) from the enumeration,
					// and rewind pending so the retry re-tests this
					// hyperplane instead of skipping its split.
					r.pending--
					heap.Push(&e.regions, r)
					return Result{}, err
				}
				if !ok {
					// The split is a sampling artifact at the region
					// boundary; keep the larger side's samples and move on.
					continue
				}
			}
			neg := &Region{
				Constraints: appendHalfspace(r.Constraints, h.NegativeHalf()),
				Stability:   float64(mid-r.sb) / float64(e.total),
				pending:     r.pending,
				sb:          r.sb, se: mid,
			}
			pos := &Region{
				Constraints: appendHalfspace(r.Constraints, h.PositiveHalf()),
				Stability:   float64(r.se-mid) / float64(e.total),
				pending:     r.pending,
				sb:          mid, se: r.se,
			}
			heap.Push(&e.regions, neg)
			heap.Push(&e.regions, pos)
			e.splits++
			split = true
			break
		}
		if split {
			continue
		}
		// No pending hyperplane crosses the region: it is a final cell.
		if r.SampleCount() == 0 {
			continue // unreachable sliver: nothing to rank with
		}
		w := e.centroid(r)
		ranking := e.computer.Compute(w).Clone()
		key := ranking.Key()
		if e.returned[key] {
			// Two cells separated only by hyperplanes no sample straddles
			// can carry the same ranking; merge by skipping duplicates.
			continue
		}
		e.returned[key] = true
		return Result{Ranking: ranking, Stability: r.Stability, Weights: w, Region: r}, nil
	}
	return Result{}, ErrExhausted
}

// centroid returns the normalized average of the region's samples: a point
// interior to the (convex) region. The accumulation is a flat row sweep
// whose order matches the historical slice-of-vectors loop bit for bit.
func (e *Engine) centroid(r *Region) geom.Vector {
	c := make(geom.Vector, e.ds.D())
	e.samples.CentroidRows(r.sb, r.se, c)
	if u, err := c.Normalize(); err == nil {
		return u
	}
	return geom.Vector(e.samples.Row(r.sb)).Clone()
}

func appendHalfspace(cs []geom.Halfspace, hs geom.Halfspace) []geom.Halfspace {
	out := make([]geom.Halfspace, len(cs)+1)
	copy(out, cs)
	out[len(cs)] = hs
	return out
}

func orientedNormals(cs []geom.Halfspace) []geom.Vector {
	out := make([]geom.Vector, len(cs))
	for i, hs := range cs {
		out[i] = hs.Oriented()
	}
	return out
}

type regionHeap []*Region

func (h regionHeap) Len() int            { return len(h) }
func (h regionHeap) Less(i, j int) bool  { return h[i].Stability > h[j].Stability }
func (h regionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *regionHeap) Push(x interface{}) { *h = append(*h, x.(*Region)) }
func (h *regionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TopH returns the h most stable rankings in the region of interest.
func TopH(ctx context.Context, e *Engine, h int) ([]Result, error) {
	var out []Result
	for len(out) < h {
		r, err := e.Next(ctx)
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FullArrangement is the baseline of Section 4.2 that the delayed
// construction avoids: it refines every region against every hyperplane
// first and only then reports rankings in decreasing stability. maxRegions
// caps the construction (the arrangement can have O(n^{2d}) cells); 0 means
// no cap. Kept for the ablation benchmarks.
func FullArrangement(ctx context.Context, ds *dataset.Dataset, roi geom.Region, samples []geom.Vector, maxRegions int) ([]Result, error) {
	e, err := NewEngine(ds, roi, samples, SamplePartition)
	if err != nil {
		return nil, err
	}
	var out []Result
	for {
		if maxRegions > 0 && len(out) >= maxRegions {
			break
		}
		r, err := e.Next(ctx)
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
