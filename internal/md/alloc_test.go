package md

import (
	"context"
	"math/rand"
	"testing"

	"stablerank/internal/datagen"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
	"stablerank/internal/sampling"
	"stablerank/internal/vecmat"
)

// Allocation discipline of the verify hot path: the oracle sweep must not
// allocate per sample. The per-call allocations (constraint matrix,
// halfspace views, result) are O(dataset), so doubling the pool size must
// not change the allocation count at all.
func TestVerifyMatrixAllocsIndependentOfPoolSize(t *testing.T) {
	ds := datagen.Synthetic(rand.New(rand.NewSource(6)), datagen.KindIndependent, 50, 3)
	r := rank.Compute(ds, geom.Vector{1, 1, 1})
	pools := make([]vecmat.Matrix, 2)
	for pi, n := range []int{2000, 20000} {
		s, err := sampling.NewUniform(3, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		pool := vecmat.New(n, 3)
		for i := 0; i < n; i++ {
			if err := s.SampleInto(pool.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
		pools[pi] = pool
	}
	ctx := context.Background()
	measure := func(pool vecmat.Matrix) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := VerifyMatrix(ctx, ds, r, pool); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := measure(pools[0]), measure(pools[1])
	if small != large {
		t.Errorf("allocs scale with pool size: %v at 2k samples vs %v at 20k", small, large)
	}
	if large > 16 {
		t.Errorf("VerifyMatrix allocates %v per call, want a small constant", large)
	}
}

// The engine's partition/centroid sweeps share the same discipline: one
// Next call may allocate regions and the result, but nothing per sample, so
// a 10x larger pool must not raise the allocation count materially.
func TestEngineNextAllocsIndependentOfPoolSize(t *testing.T) {
	ds := datagen.Synthetic(rand.New(rand.NewSource(12)), datagen.KindIndependent, 25, 3)
	cone, err := geom.NewCone(geom.Vector{1, 1, 1}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(n int) float64 {
		var total float64
		const runs = 5
		for run := 0; run < runs; run++ {
			s, err := sampling.NewCap(cone, rand.New(rand.NewSource(31)))
			if err != nil {
				t.Fatal(err)
			}
			pool := vecmat.New(n, 3)
			for i := 0; i < n; i++ {
				if err := s.SampleInto(pool.Row(i)); err != nil {
					t.Fatal(err)
				}
			}
			e, err := NewEngineMatrix(ds, cone, pool, SamplePartition)
			if err != nil {
				t.Fatal(err)
			}
			total += testing.AllocsPerRun(1, func() {
				if _, err := e.Next(context.Background()); err != nil {
					t.Fatal(err)
				}
			})
		}
		return total / runs
	}
	small, large := measure(2000), measure(20000)
	// A denser pool legitimately allocates a few more Region nodes (more
	// hyperplanes get samples on both sides), but a per-sample allocation
	// anywhere in the partition sweep would show up as thousands of extra
	// allocations for the 10x pool. Demand sub-linear growth and a per-Next
	// budget far below one allocation per sample.
	if large > 4*small+64 {
		t.Errorf("engine Next allocations scale with pool size: %v at 2k vs %v at 20k samples", small, large)
	}
	if large > 2000/4 { // << 20000 samples
		t.Errorf("engine Next allocates %v per call over 20k samples; the partition sweep must be allocation-free per sample", large)
	}
}
