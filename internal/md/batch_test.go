package md

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"stablerank/internal/datagen"
	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
	"stablerank/internal/sampling"
)

func batchPool(t *testing.T, d, n int, seed int64) []geom.Vector {
	t.Helper()
	s, err := sampling.ForRegion(geom.FullSpace{D: d}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	pool := make([]geom.Vector, n)
	for i := range pool {
		if pool[i], err = s.Sample(); err != nil {
			t.Fatal(err)
		}
	}
	return pool
}

// TestVerifyBatchMatchesSingle: the batch sweep must agree exactly with
// per-ranking Verify calls over the same pool, for every worker count.
func TestVerifyBatchMatchesSingle(t *testing.T) {
	ds := datagen.Diamonds(rand.New(rand.NewSource(5)), 40)
	p, err := ds.Project(3)
	if err != nil {
		t.Fatal(err)
	}
	pool := batchPool(t, 3, 20000, 9)
	weights := [][]float64{{1, 1, 1}, {2, 1, 0.5}, {0.2, 1, 1}, {1, 3, 1}}
	rankings := make([]rank.Ranking, len(weights))
	for i, w := range weights {
		rankings[i] = rank.Compute(p, geom.NewVector(w...))
	}
	for _, workers := range []int{1, 3, 8} {
		batch, err := VerifyBatch(context.Background(), p, rankings, pool, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(rankings) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(batch), len(rankings))
		}
		for i, r := range rankings {
			single, err := Verify(context.Background(), p, r, pool)
			if err != nil {
				t.Fatal(err)
			}
			if batch[i].Err != nil {
				t.Fatalf("workers=%d ranking %d: unexpected err %v", workers, i, batch[i].Err)
			}
			if batch[i].Stability != single.Stability {
				t.Errorf("workers=%d ranking %d: batch %v vs single %v", workers, i, batch[i].Stability, single.Stability)
			}
			if batch[i].SampleCount != single.SampleCount {
				t.Errorf("workers=%d ranking %d: sample count %d vs %d", workers, i, batch[i].SampleCount, single.SampleCount)
			}
		}
	}
}

// TestVerifyBatchInfeasible: an infeasible ranking fails alone, not the
// whole batch.
func TestVerifyBatchInfeasible(t *testing.T) {
	ds := datagen.Diamonds(rand.New(rand.NewSource(5)), 30)
	p, err := ds.Project(3)
	if err != nil {
		t.Fatal(err)
	}
	pool := batchPool(t, 3, 5000, 2)
	good := rank.Compute(p, geom.NewVector(1, 1, 1))
	// An adjacent dominated-above-dominator pair makes a ranking infeasible
	// for every scoring function; find one such pair in the catalog.
	di, dj := -1, -1
	for i := 0; i < p.N() && di < 0; i++ {
		for j := 0; j < p.N(); j++ {
			if i != j && dataset.Dominates(p.Item(i), p.Item(j)) {
				di, dj = i, j
				break
			}
		}
	}
	if di < 0 {
		t.Skip("no dominating pair in this catalog")
	}
	bad := rank.Ranking{Order: make([]int, 0, p.N())}
	bad.Order = append(bad.Order, dj, di)
	for i := 0; i < p.N(); i++ {
		if i != di && i != dj {
			bad.Order = append(bad.Order, i)
		}
	}
	batch, err := VerifyBatch(context.Background(), p, []rank.Ranking{good, bad}, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].Err != nil {
		t.Errorf("feasible ranking: err = %v", batch[0].Err)
	}
	if batch[0].Stability <= 0 {
		t.Errorf("feasible ranking: stability = %v, want > 0", batch[0].Stability)
	}
	if !errors.Is(batch[1].Err, ErrInfeasibleRanking) {
		t.Errorf("dominated-first ranking: err = %v, want ErrInfeasibleRanking", batch[1].Err)
	}
}

func TestVerifyBatchEdgeCases(t *testing.T) {
	ds := datagen.Diamonds(rand.New(rand.NewSource(5)), 10)
	p, err := ds.Project(3)
	if err != nil {
		t.Fatal(err)
	}
	r := rank.Compute(p, geom.NewVector(1, 1, 1))
	// Empty batch: no error, no results.
	out, err := VerifyBatch(context.Background(), p, nil, nil, 0)
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v, %v", out, err)
	}
	// Empty pool with work to do: ErrNoSamples.
	if _, err := VerifyBatch(context.Background(), p, []rank.Ranking{r}, nil, 0); !errors.Is(err, ErrNoSamples) {
		t.Errorf("empty pool: err = %v, want ErrNoSamples", err)
	}
	// Cancelled context aborts the sweep.
	pool := batchPool(t, 3, 50000, 3)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := VerifyBatch(cancelled, p, []rank.Ranking{r}, pool, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled: err = %v, want context.Canceled", err)
	}
	// A batch of only broken rankings returns per-item errors, no sweep.
	short := rank.Ranking{Order: []int{0, 1}}
	out, err = VerifyBatch(context.Background(), p, []rank.Ranking{short}, pool, 0)
	if err != nil || out[0].Err == nil {
		t.Errorf("all-broken batch: %v, %v", out, err)
	}
}
