package md

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
	"stablerank/internal/vecmat"
)

// Batch verification: one sweep of the sample pool amortized across many
// rankings. A single Verify call costs O(n + |constraints| * |samples|); m
// separate calls re-walk the pool m times from cold caches, while VerifyBatch
// walks it once, testing every ranking's constraint set against each sample
// in turn, sharded across workers.

// BatchResult is one ranking's outcome within a VerifyBatch call.
type BatchResult struct {
	VerifyResult
	// Err is ErrInfeasibleRanking (or a shape error) for this ranking alone;
	// other rankings in the batch are unaffected.
	Err error
}

// batchBlock is the per-worker pool shard size of the batch sweep; context
// cancellation is polled once per block.
const batchBlock = 4096

// VerifyBatch verifies every ranking against the same sample pool in a
// single sharded sweep (workers <= 0 uses GOMAXPROCS). The samples are
// copied into a contiguous matrix first; callers holding a resident pool
// should use VerifyBatchMatrix and skip the copy.
func VerifyBatch(ctx context.Context, ds *dataset.Dataset, rankings []rank.Ranking, samples []geom.Vector, workers int) ([]BatchResult, error) {
	if len(rankings) == 0 {
		return make([]BatchResult, 0), nil
	}
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	pool, err := matrixOfSamples(ds.D(), samples)
	if err != nil {
		return nil, err
	}
	return VerifyBatchMatrix(ctx, ds, rankings, pool, workers)
}

// VerifyBatchMatrix verifies every ranking against one contiguous row-major
// sample pool in a single sharded sweep (workers <= 0 uses GOMAXPROCS).
// Within a pool block each live ranking's oriented constraint matrix sweeps
// the block with the flat counting kernel — no pointer chasing and no
// allocation per sample. Per-ranking failures (infeasibility, shape
// mismatches) are reported in the corresponding BatchResult.Err without
// failing the batch; only an empty pool or a cancelled context fails the
// call as a whole. The counts are exact sums, so the results are identical
// for every worker count.
func VerifyBatchMatrix(ctx context.Context, ds *dataset.Dataset, rankings []rank.Ranking, pool vecmat.Matrix, workers int) ([]BatchResult, error) {
	out := make([]BatchResult, len(rankings))
	if len(rankings) == 0 {
		return out, nil
	}
	if pool.Rows() == 0 {
		return nil, ErrNoSamples
	}
	constraints := make([][]geom.Halfspace, len(rankings))
	consMat := make([]vecmat.Matrix, 0, len(rankings))
	live := make([]int, 0, len(rankings))
	for i, r := range rankings {
		m, c, err := rankingRegionMatrix(ds, r)
		if err != nil {
			out[i].Err = err
			continue
		}
		constraints[i] = c
		consMat = append(consMat, m)
		live = append(live, i)
	}
	if len(live) == 0 {
		return out, nil
	}
	// Concatenate every live ranking's constraints into one flat matrix so a
	// pool block is streamed once for the whole batch (matrix-matrix sweep)
	// instead of once per ranking.
	grouped, starts := vecmat.ConcatGroups(ds.D(), consMat)

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	blocks := (pool.Rows() + batchBlock - 1) / batchBlock
	if workers > blocks {
		workers = blocks
	}
	counts := make([][]int, workers)
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		sweepErr error
	)
	stop := make(chan struct{})
	fail := func(err error) {
		errOnce.Do(func() {
			sweepErr = err
			close(stop)
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]int, len(live))
			counts[w] = local
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := int(next.Add(1)) - 1
				if b >= blocks {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				lo := b * batchBlock
				hi := min(lo+batchBlock, pool.Rows())
				// Sample-major within the block: each sample row is hoisted
				// into registers once and streamed against the concatenated
				// constraint matrix of every live ranking, with per-group
				// early exit — counts stay bit-identical to per-ranking
				// CountInside sweeps.
				vecmat.CountInsideGrouped(grouped, starts, pool, lo, hi, local)
			}
		}(w)
	}
	wg.Wait()
	if sweepErr != nil {
		return nil, sweepErr
	}
	total := make([]int, len(live))
	for _, local := range counts {
		for li, c := range local {
			total[li] += c
		}
	}
	for li, i := range live {
		out[i].VerifyResult = VerifyResult{
			Stability:   float64(total[li]) / float64(pool.Rows()),
			Constraints: constraints[i],
			SampleCount: pool.Rows(),
		}
	}
	return out, nil
}
