package md

import (
	"errors"
	"fmt"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/rank"
)

// Exact three-dimensional stability, an extension beyond the paper: in R^3 a
// ranking region is a convex cone and its spherical area has the closed
// Girard form (see geom.SphericalPolygonArea3D). The paper estimates all
// multi-dimensional volumes by Monte Carlo because exact polytope volume is
// #P-hard in general dimension; for d = 3 the exact value is cheap and the
// test suite uses it to validate the Monte-Carlo oracle end to end.

// ErrNotThreeD is returned by VerifyExact3D on datasets with d != 3.
var ErrNotThreeD = errors.New("md: exact verification requires exactly 3 attributes")

// VerifyExact3D returns the exact stability of ranking r over the full
// function space U in R^3: the spherical area of the ranking region divided
// by the area of the orthant. Degenerate (empty-interior) regions yield
// stability 0.
func VerifyExact3D(ds *dataset.Dataset, r rank.Ranking) (float64, error) {
	if ds.D() != 3 {
		return 0, fmt.Errorf("%w (got %d)", ErrNotThreeD, ds.D())
	}
	constraints, err := RankingRegion(ds, r)
	if err != nil {
		return 0, err
	}
	normals := make([]geom.Vector, 0, len(constraints)+3)
	for _, hs := range constraints {
		normals = append(normals, hs.Oriented())
	}
	for i := 0; i < 3; i++ {
		normals = append(normals, geom.Basis(3, i))
	}
	area, err := geom.SphericalPolygonArea3D(normals)
	if errors.Is(err, geom.ErrDegenerateCone) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return area / geom.OrthantArea(3), nil
}
