package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randUnit(r *rand.Rand, d int) Vector {
	for {
		v := randVec(r, d)
		if v.Norm() > 1e-6 {
			return v.MustNormalize()
		}
	}
}

func randOrthantUnit(r *rand.Rand, d int) Vector {
	v := make(Vector, d)
	for i := range v {
		v[i] = math.Abs(r.NormFloat64()) + 1e-3
	}
	return v.MustNormalize()
}

func rotationBuilders() map[string]func(Vector) (Rotation, error) {
	return map[string]func(Vector) (Rotation, error){
		"axis":   NewAxisRotation,
		"givens": NewGivensRotation,
	}
}

func TestRotationMapsAxisToTarget(t *testing.T) {
	rr := rand.New(rand.NewSource(7))
	for name, build := range rotationBuilders() {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 200; i++ {
				d := 2 + rr.Intn(6)
				target := randUnit(rr, d)
				rot, err := build(target)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				got := rot.Apply(Basis(d, d-1))
				if !got.Equal(target, 1e-9) {
					t.Fatalf("d=%d: R(e_d) = %v, want %v", d, got, target)
				}
			}
		})
	}
}

func TestRotationPreservesNormAndAngles(t *testing.T) {
	rr := rand.New(rand.NewSource(8))
	for name, build := range rotationBuilders() {
		t.Run(name, func(t *testing.T) {
			cfg := &quick.Config{MaxCount: 200, Rand: rr}
			prop := func(seed int64) bool {
				r2 := rand.New(rand.NewSource(seed))
				d := 2 + r2.Intn(5)
				rot, err := build(randUnit(r2, d))
				if err != nil {
					return false
				}
				a, b := randVec(r2, d), randVec(r2, d)
				ra, rb := rot.Apply(a), rot.Apply(b)
				if !almostEqual(ra.Norm(), a.Norm(), 1e-9) {
					return false
				}
				return almostEqual(ra.Dot(rb), a.Dot(b), 1e-9)
			}
			if err := quick.Check(prop, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestRotationImplementationsAgree(t *testing.T) {
	rr := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		d := 2 + rr.Intn(6)
		target := randUnit(rr, d)
		ra, err := NewAxisRotation(target)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := NewGivensRotation(target)
		if err != nil {
			t.Fatal(err)
		}
		// The two constructions may differ on the orthogonal complement of
		// span(e_d, target) in d > 3, but must agree on e_d and on any vector
		// in that plane.
		v := Basis(d, d-1)
		if !ra.Apply(v).Equal(rg.Apply(v), 1e-9) {
			t.Fatalf("d=%d: rotations disagree on e_d", d)
		}
	}
}

func TestRotationIdentityWhenTargetIsAxis(t *testing.T) {
	for d := 2; d <= 5; d++ {
		rot, err := NewAxisRotation(Basis(d, d-1))
		if err != nil {
			t.Fatal(err)
		}
		v := NewVector(make([]float64, d)...)
		for i := range v {
			v[i] = float64(i + 1)
		}
		if got := rot.Apply(v); !got.Equal(v, 1e-12) {
			t.Errorf("d=%d: identity rotation moved %v to %v", d, v, got)
		}
	}
}

func TestRotationAntipodal(t *testing.T) {
	d := 4
	target := Basis(d, d-1).Scale(-1)
	rot, err := NewAxisRotation(target)
	if err != nil {
		t.Fatal(err)
	}
	got := rot.Apply(Basis(d, d-1))
	if !got.Equal(target, 1e-9) {
		t.Errorf("antipodal rotation: R(e_d) = %v, want %v", got, target)
	}
	// Still orthogonal.
	a := Vector{1, 2, 3, 4}
	if !almostEqual(rot.Apply(a).Norm(), a.Norm(), 1e-9) {
		t.Error("antipodal rotation does not preserve norm")
	}
}

func TestRotationErrors(t *testing.T) {
	if _, err := NewAxisRotation(Vector{0, 0}); err == nil {
		t.Error("expected error for zero axis")
	}
	if _, err := NewGivensRotation(Vector{0, 0, 0}); err == nil {
		t.Error("expected error for zero axis")
	}
	if _, err := NewAxisRotation(Vector{1}); err == nil {
		t.Error("expected error for dimension 1")
	}
}

// Rotations of orthant axes keep cap samples near the target: a sanity check
// of the sampler's main use.
func TestRotationMovesCapOntoRay(t *testing.T) {
	rr := rand.New(rand.NewSource(10))
	for i := 0; i < 100; i++ {
		d := 3 + rr.Intn(3)
		target := randOrthantUnit(rr, d)
		rot, err := NewAxisRotation(target)
		if err != nil {
			t.Fatal(err)
		}
		// A point at polar angle x from e_d maps to a point at angle x from
		// the target.
		x := rr.Float64() * 0.3
		u := randUnit(rr, d-1)
		p := make(Vector, d)
		for j := 0; j < d-1; j++ {
			p[j] = math.Sin(x) * u[j]
		}
		p[d-1] = math.Cos(x)
		q := rot.Apply(p)
		a, err := Angle(q, target)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(a, x, 1e-9) {
			t.Fatalf("angle after rotation = %v, want %v", a, x)
		}
	}
}
