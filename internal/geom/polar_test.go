package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromPolar2D(t *testing.T) {
	tests := []struct {
		name  string
		theta float64
		want  Vector
	}{
		{"x axis", 0, Vector{1, 0}},
		{"y axis", math.Pi / 2, Vector{0, 1}},
		{"45 deg", math.Pi / 4, Vector{math.Sqrt2 / 2, math.Sqrt2 / 2}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := FromPolar(1, []float64{tc.theta})
			if !got.Equal(tc.want, 1e-12) {
				t.Errorf("FromPolar = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPolarRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 2 + rr.Intn(6)
		// Non-negative orthant vectors, as used by the algorithms.
		v := make(Vector, d)
		for i := range v {
			v[i] = rr.Float64() + 0.01
		}
		r, angles := ToPolar(v)
		back := FromPolar(r, angles)
		return back.Equal(v, 1e-9)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestToPolarAnglesInRange(t *testing.T) {
	rr := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		d := 2 + rr.Intn(5)
		v := make(Vector, d)
		for j := range v {
			v[j] = rr.Float64()
		}
		if v.Norm() < 1e-9 {
			continue
		}
		_, angles := ToPolar(v)
		for _, a := range angles {
			if a < -1e-12 || a > math.Pi/2+1e-12 {
				t.Fatalf("angle %v outside [0, pi/2] for orthant vector %v", a, v)
			}
		}
	}
}

func TestToPolarZeroVector(t *testing.T) {
	r, angles := ToPolar(Vector{0, 0, 0})
	if r != 0 {
		t.Errorf("radius = %v, want 0", r)
	}
	if len(angles) != 2 {
		t.Errorf("len(angles) = %d, want 2", len(angles))
	}
}

func TestDthAxisIsAllRightAngles(t *testing.T) {
	// With the package convention, FromPolar(1, [pi/2, ..., pi/2]) = e_d.
	for d := 2; d <= 6; d++ {
		angles := make([]float64, d-1)
		for i := range angles {
			angles[i] = math.Pi / 2
		}
		v := FromPolar(1, angles)
		if !v.Equal(Basis(d, d-1), 1e-12) {
			t.Errorf("d=%d: FromPolar(all pi/2) = %v, want e_d", d, v)
		}
	}
}

func TestAngle2DAndRay2D(t *testing.T) {
	for _, theta := range []float64{0, 0.1, math.Pi / 4, 1.2, math.Pi / 2} {
		v := Ray2D(theta)
		if got := Angle2D(v); !almostEqual(got, theta, 1e-12) {
			t.Errorf("Angle2D(Ray2D(%v)) = %v", theta, got)
		}
		if !almostEqual(v.Norm(), 1, 1e-12) {
			t.Errorf("Ray2D(%v) not unit", theta)
		}
	}
}
