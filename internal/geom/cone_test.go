package geom

import (
	"math"
	"testing"
)

func TestNewConeValidation(t *testing.T) {
	if _, err := NewCone(Vector{1, 1}, 0); err == nil {
		t.Error("zero angle accepted")
	}
	if _, err := NewCone(Vector{1, 1}, 2); err == nil {
		t.Error("angle > pi/2 accepted")
	}
	if _, err := NewCone(Vector{0, 0}, 0.1); err == nil {
		t.Error("zero axis accepted")
	}
	if _, err := NewCone(Vector{-1, 1}, 0.1); err == nil {
		t.Error("negative axis accepted")
	}
	c, err := NewCone(Vector{2, 2}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c.Axis.Norm(), 1, 1e-12) {
		t.Error("axis not normalized")
	}
}

func TestNewConeFromCosine(t *testing.T) {
	c, err := NewConeFromCosine(Vector{1, 1}, 0.998)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c.Theta, math.Acos(0.998), 1e-12) {
		t.Errorf("Theta = %v, want acos(0.998)", c.Theta)
	}
	if _, err := NewConeFromCosine(Vector{1, 1}, 1.5); err == nil {
		t.Error("cosine > 1 accepted")
	}
	if _, err := NewConeFromCosine(Vector{1, 1}, 0); err == nil {
		t.Error("cosine 0 accepted (use NewCone with pi/2 instead)")
	}
}

func TestConeContains(t *testing.T) {
	c, _ := NewCone(Vector{1, 1}, math.Pi/10)
	if !c.Contains(Vector{1, 1}) {
		t.Error("axis not contained")
	}
	if !c.Contains(Vector{5, 5}) {
		t.Error("scaled axis not contained (rays, not points)")
	}
	if !c.Contains(Ray2D(math.Pi/4 + math.Pi/10 - 1e-6)) {
		t.Error("boundary-adjacent ray rejected")
	}
	if c.Contains(Ray2D(math.Pi/4 + math.Pi/10 + 1e-3)) {
		t.Error("outside ray accepted")
	}
	if c.Contains(Vector{1, -1}) {
		t.Error("negative-component vector accepted")
	}
}

func TestFullSpace(t *testing.T) {
	f := FullSpace{D: 3}
	if !f.Contains(Vector{1, 2, 3}) {
		t.Error("orthant vector rejected")
	}
	if f.Contains(Vector{1, -2, 3}) {
		t.Error("non-orthant vector accepted")
	}
	if f.Dim() != 3 {
		t.Error("wrong dimension")
	}
}

func TestConstraintRegion(t *testing.T) {
	// w2 <= w1 and 2 w1 >= w2: the Example in Section 3.2 uses w1 <= w2 and
	// 2 w1 >= w2, giving angles [pi/4, arctan 2].
	r, err := NewConstraintRegion(2,
		Halfspace{Normal: Vector{-1, 1}, Positive: true}, // w2 >= w1
		Halfspace{Normal: Vector{2, -1}, Positive: true}, // 2 w1 >= w2
	)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(Vector{1, 1.5}) {
		t.Error("interior point rejected")
	}
	if r.Contains(Vector{1, 0.5}) {
		t.Error("w2 < w1 point accepted")
	}
	if r.Contains(Vector{1, 3}) {
		t.Error("w2 > 2w1 point accepted")
	}
	iv, err := Interval2DOf(r)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(iv.Lo, math.Pi/4, 1e-9) {
		t.Errorf("interval lo = %v, want pi/4", iv.Lo)
	}
	if !almostEqual(iv.Hi, math.Atan(2), 1e-9) {
		t.Errorf("interval hi = %v, want atan 2", iv.Hi)
	}
}

func TestNewConstraintRegionValidation(t *testing.T) {
	if _, err := NewConstraintRegion(1); err == nil {
		t.Error("dimension 1 accepted")
	}
	if _, err := NewConstraintRegion(2, Halfspace{Normal: Vector{1, 2, 3}}); err == nil {
		t.Error("mismatched constraint dimension accepted")
	}
	if _, err := NewConstraintRegion(2, Halfspace{Normal: Vector{0, 0}}); err == nil {
		t.Error("zero-normal constraint accepted")
	}
}

func TestInterval2DOf(t *testing.T) {
	iv, err := Interval2DOf(FullSpace{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 0 || !almostEqual(iv.Hi, math.Pi/2, 1e-12) {
		t.Errorf("full space interval = %+v", iv)
	}

	// Cone around f = x1 + x2 with angle pi/10: [3pi/20, 7pi/20] per
	// Section 3.2.
	c, _ := NewCone(Vector{1, 1}, math.Pi/10)
	iv, err = Interval2DOf(c)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(iv.Lo, 3*math.Pi/20, 1e-9) || !almostEqual(iv.Hi, 7*math.Pi/20, 1e-9) {
		t.Errorf("cone interval = [%v, %v], want [3pi/20, 7pi/20]", iv.Lo, iv.Hi)
	}

	// Cone clipped by the orthant boundary.
	edge, _ := NewCone(Vector{1, 0.02}, math.Pi/10)
	iv, err = Interval2DOf(edge)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 0 {
		t.Errorf("clipped cone lo = %v, want 0", iv.Lo)
	}

	if _, err := Interval2DOf(FullSpace{D: 3}); err == nil {
		t.Error("3D region accepted for 2D interval")
	}
}

func TestInterval2DContains(t *testing.T) {
	iv, _ := NewInterval2D(0.3, 0.9)
	if !iv.Contains(Ray2D(0.5)) {
		t.Error("interior ray rejected")
	}
	if iv.Contains(Ray2D(1.0)) {
		t.Error("outside ray accepted")
	}
	if iv.Contains(Vector{1, 2, 3}) {
		t.Error("wrong-dimension vector accepted")
	}
	if !almostEqual(iv.Width(), 0.6, 1e-12) {
		t.Errorf("Width = %v", iv.Width())
	}
	if _, err := NewInterval2D(0.9, 0.3); err == nil {
		t.Error("inverted interval accepted")
	}
}
