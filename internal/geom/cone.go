package geom

import (
	"errors"
	"fmt"
	"math"
)

// Regions of interest (Section 2.2.2). A producer restricts attention to an
// acceptable region U* of the function space, specified either as a
// hypercone around a reference weight vector (equivalently, a minimum cosine
// similarity) or as a convex cone cut out by linear constraints on the
// weights. Both are Region implementations; the whole space U (the
// non-negative orthant) is the special case FullSpace.

// Region is a subset of the function space. Membership is tested on weight
// vectors; implementations must be insensitive to positive scaling of w
// (regions are unions of rays).
type Region interface {
	// Contains reports whether the ray through w lies in the region.
	Contains(w Vector) bool
	// Dim returns the ambient dimension d.
	Dim() int
}

// FullSpace is the whole function space U: all rays in the non-negative
// orthant of R^d.
type FullSpace struct {
	D int
}

// Contains reports whether w has no significantly negative component.
func (f FullSpace) Contains(w Vector) bool { return w.NonNegative(Eps) }

// Dim returns the ambient dimension.
func (f FullSpace) Dim() int { return f.D }

// Cone is the set of rays within angle Theta of the unit Axis, intersected
// with the non-negative orthant. It corresponds to the "vector and angle
// distance" specification of an acceptable region: cosine similarity at
// least cos(Theta) with the reference function.
type Cone struct {
	Axis  Vector  // unit reference ray
	Theta float64 // half-angle in radians, in (0, pi/2]
}

// NewCone validates and constructs a Cone around the (not necessarily unit)
// reference weight vector, normalizing it.
func NewCone(axis Vector, theta float64) (Cone, error) {
	if theta <= 0 || theta > math.Pi/2 {
		return Cone{}, fmt.Errorf("geom: cone half-angle %v out of (0, pi/2]", theta)
	}
	u, err := axis.Normalize()
	if err != nil {
		return Cone{}, err
	}
	if !u.NonNegative(Eps) {
		return Cone{}, errors.New("geom: cone axis must lie in the non-negative orthant")
	}
	return Cone{Axis: u, Theta: theta}, nil
}

// NewConeFromCosine constructs a Cone from a minimum cosine similarity,
// e.g. 0.998 cosine similarity corresponds to Theta = acos(0.998).
func NewConeFromCosine(axis Vector, minCosine float64) (Cone, error) {
	if minCosine <= 0 || minCosine >= 1 {
		return Cone{}, fmt.Errorf("geom: minimum cosine %v out of (0, 1)", minCosine)
	}
	return NewCone(axis, math.Acos(minCosine))
}

// Contains reports whether the ray through w is within Theta of the axis and
// in the non-negative orthant.
func (c Cone) Contains(w Vector) bool {
	if !w.NonNegative(Eps) {
		return false
	}
	cos, err := CosineSimilarity(c.Axis, w)
	if err != nil {
		return false
	}
	return cos >= math.Cos(c.Theta)-Eps
}

// Dim returns the ambient dimension.
func (c Cone) Dim() int { return len(c.Axis) }

// ConstraintRegion is a convex cone given by a set of linear constraints on
// the weights (each a halfspace through the origin), intersected with the
// non-negative orthant. Example: {w2 <= w1} is Halfspace{Normal: (1,-1),
// Positive: true}.
type ConstraintRegion struct {
	D           int
	Constraints []Halfspace
}

// NewConstraintRegion validates dimensions and constructs the region.
func NewConstraintRegion(d int, constraints ...Halfspace) (ConstraintRegion, error) {
	if d < 2 {
		return ConstraintRegion{}, errors.New("geom: constraint region requires dimension >= 2")
	}
	for i, hs := range constraints {
		if len(hs.Normal) != d {
			return ConstraintRegion{}, fmt.Errorf("geom: constraint %d has dimension %d, want %d", i, len(hs.Normal), d)
		}
		if hs.Normal.Norm() < Eps {
			return ConstraintRegion{}, fmt.Errorf("geom: constraint %d has zero normal", i)
		}
	}
	return ConstraintRegion{D: d, Constraints: constraints}, nil
}

// Contains reports whether w satisfies every constraint and is in the
// non-negative orthant.
func (r ConstraintRegion) Contains(w Vector) bool {
	if !w.NonNegative(Eps) {
		return false
	}
	for _, hs := range r.Constraints {
		if !hs.Contains(w, Eps) {
			return false
		}
	}
	return true
}

// Dim returns the ambient dimension.
func (r ConstraintRegion) Dim() int { return r.D }

// OrientedNormals returns the constraint normals oriented so membership is
// Normal . w >= 0 for each, excluding the implicit orthant constraints.
func (r ConstraintRegion) OrientedNormals() []Vector {
	out := make([]Vector, len(r.Constraints))
	for i, hs := range r.Constraints {
		out[i] = hs.Oriented()
	}
	return out
}

// WithOrthant returns the oriented constraint normals including the d
// non-negativity constraints e_i . w >= 0.
func (r ConstraintRegion) WithOrthant() []Vector {
	out := r.OrientedNormals()
	for i := 0; i < r.D; i++ {
		out = append(out, Basis(r.D, i))
	}
	return out
}

// Interval2D describes a 2D region of interest as an angle range
// [Lo, Hi] within [0, pi/2], the representation used by the exact 2D
// algorithms (Section 3.2).
type Interval2D struct {
	Lo, Hi float64
}

// NewInterval2D validates the range.
func NewInterval2D(lo, hi float64) (Interval2D, error) {
	if lo < -Eps || hi > math.Pi/2+Eps || lo >= hi {
		return Interval2D{}, fmt.Errorf("geom: invalid 2D angle interval [%v, %v]", lo, hi)
	}
	return Interval2D{Lo: lo, Hi: hi}, nil
}

// Width returns the angular span of the interval.
func (iv Interval2D) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether the ray through the 2D vector w lies in the
// interval.
func (iv Interval2D) Contains(w Vector) bool {
	if len(w) != 2 || !w.NonNegative(Eps) {
		return false
	}
	a := Angle2D(w)
	return a >= iv.Lo-Eps && a <= iv.Hi+Eps
}

// Dim returns 2.
func (iv Interval2D) Dim() int { return 2 }

// Interval2DOf derives the 2D angle interval of a Region. Cones and
// Interval2D convert exactly; FullSpace maps to [0, pi/2]; constraint regions
// convert by intersecting the angle bounds implied by each 2D constraint.
func Interval2DOf(r Region) (Interval2D, error) {
	switch t := r.(type) {
	case Interval2D:
		return t, nil
	case FullSpace:
		if t.D != 2 {
			return Interval2D{}, fmt.Errorf("geom: full space has dimension %d, want 2", t.D)
		}
		return Interval2D{Lo: 0, Hi: math.Pi / 2}, nil
	case Cone:
		if t.Dim() != 2 {
			return Interval2D{}, fmt.Errorf("geom: cone has dimension %d, want 2", t.Dim())
		}
		mid := Angle2D(t.Axis)
		lo := math.Max(0, mid-t.Theta)
		hi := math.Min(math.Pi/2, mid+t.Theta)
		return NewInterval2D(lo, hi)
	case ConstraintRegion:
		if t.D != 2 {
			return Interval2D{}, fmt.Errorf("geom: constraint region has dimension %d, want 2", t.D)
		}
		lo, hi := 0.0, math.Pi/2
		for _, n := range t.OrientedNormals() {
			// The boundary n.w = 0 in 2D is the ray at angle
			// atan2(-n[0], n[1]) (where n.(cos a, sin a) = 0); the feasible
			// side is where n[0]cos a + n[1] sin a >= 0.
			b := math.Atan2(-n[0], n[1])
			// Normalize boundary into [0, pi) then clip.
			if b < 0 {
				b += math.Pi
			}
			if b > math.Pi/2 {
				// Boundary outside the quadrant: constraint either always or
				// never holds inside [0, pi/2]; test the midpoint.
				if n.Dot(Ray2D((lo+hi)/2)) < 0 {
					return Interval2D{}, errors.New("geom: empty 2D constraint region")
				}
				continue
			}
			// Decide which side of b is feasible by testing just above b.
			if n.Dot(Ray2D(math.Min(b+1e-9, math.Pi/2))) >= 0 {
				if b > lo {
					lo = b
				}
			} else {
				if b < hi {
					hi = b
				}
			}
		}
		return NewInterval2D(lo, hi)
	default:
		return Interval2D{}, fmt.Errorf("geom: cannot derive 2D interval from %T", r)
	}
}
