package geom

import "math"

// Hyperplanes and halfspaces through the origin. Ordering exchanges
// (Equation 7 of the paper) are hyperplanes of this form: the set of scoring
// functions assigning equal score to two items. Each such hyperplane splits
// the function space into the halfspace where the first item outranks the
// second and the halfspace where the order is reversed.

// Hyperplane is a hyperplane through the origin with the given normal:
// {x : Normal . x = 0}.
type Hyperplane struct {
	Normal Vector
}

// OrderingExchange returns the ordering-exchange hyperplane of two item
// attribute vectors a and b: the functions w with w.(a-b) = 0 score the items
// equally. On the positive side of the returned hyperplane, a outranks b.
func OrderingExchange(a, b Vector) Hyperplane {
	return Hyperplane{Normal: a.Sub(b)}
}

// Eval returns Normal . w, the signed (unnormalized) position of w relative
// to the hyperplane.
func (h Hyperplane) Eval(w Vector) float64 { return h.Normal.Dot(w) }

// Side returns +1, -1, or 0 according to the sign of Normal . w, with a
// tolerance band of tol around zero.
func (h Hyperplane) Side(w Vector, tol float64) int {
	v := h.Eval(w)
	switch {
	case v > tol:
		return 1
	case v < -tol:
		return -1
	default:
		return 0
	}
}

// IsDegenerate reports whether the normal is numerically zero, which happens
// for ordering exchanges between items with identical attribute vectors.
func (h Hyperplane) IsDegenerate() bool { return h.Normal.Norm() < Eps }

// MayIntersectCone reports whether the hyperplane can intersect the cone of
// unit rays within angle theta of axis. The test is exact for the full cap
// (ignoring any orthant restriction): the hyperplane meets the cap iff the
// angular distance from the axis to the plane is at most theta, i.e.
// |cos(angle(axis, normal))| <= sin(theta). A true result may still be
// filtered out later by the exact intersection tests; a false result is
// definitive.
func (h Hyperplane) MayIntersectCone(axis Vector, theta float64) bool {
	c, err := CosineSimilarity(axis, h.Normal)
	if err != nil {
		return false // degenerate hyperplane intersects nothing meaningfully
	}
	return math.Abs(c) <= math.Sin(theta)+Eps
}

// Halfspace is one side of an origin hyperplane: {x : Normal . x >= 0}
// (Positive true) or {x : Normal . x <= 0} (Positive false). Region
// membership treats the boundary as included; the boundary has measure zero
// under the stability measure so strictness does not affect volumes.
type Halfspace struct {
	Normal   Vector
	Positive bool
}

// PositiveHalf returns the halfspace Normal . x >= 0 of h.
func (h Hyperplane) PositiveHalf() Halfspace { return Halfspace{Normal: h.Normal, Positive: true} }

// NegativeHalf returns the halfspace Normal . x <= 0 of h.
func (h Hyperplane) NegativeHalf() Halfspace { return Halfspace{Normal: h.Normal, Positive: false} }

// Contains reports whether w lies in the halfspace, with tolerance tol on
// the boundary.
func (hs Halfspace) Contains(w Vector, tol float64) bool {
	v := hs.Normal.Dot(w)
	if hs.Positive {
		return v >= -tol
	}
	return v <= tol
}

// Oriented returns the halfspace's normal oriented so that membership is
// Normal . x >= 0; i.e. it negates the normal of a non-positive halfspace.
func (hs Halfspace) Oriented() Vector {
	if hs.Positive {
		return hs.Normal
	}
	return hs.Normal.Scale(-1)
}
