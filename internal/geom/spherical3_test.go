package geom

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func orthantNormals3() []Vector {
	return []Vector{Basis(3, 0), Basis(3, 1), Basis(3, 2)}
}

func TestSphericalPolygonAreaOctant(t *testing.T) {
	// The first octant of the sphere has area 4*pi/8 = pi/2.
	got, err := SphericalPolygonArea3D(orthantNormals3())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, math.Pi/2, 1e-9) {
		t.Errorf("octant area = %v, want pi/2", got)
	}
}

func TestSphericalPolygonAreaHalfOctant(t *testing.T) {
	// Cutting the octant with the plane x = y gives two congruent halves.
	normals := append(orthantNormals3(), Vector{1, -1, 0})
	got, err := SphericalPolygonArea3D(normals)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, math.Pi/4, 1e-9) {
		t.Errorf("half-octant area = %v, want pi/4", got)
	}
	// The complementary half.
	normals[3] = Vector{-1, 1, 0}
	got2, err := SphericalPolygonArea3D(normals)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got+got2, math.Pi/2, 1e-9) {
		t.Errorf("halves sum to %v, want pi/2", got+got2)
	}
}

func TestSphericalPolygonAreaThreeCuts(t *testing.T) {
	// Splitting the octant by the three diagonal planes x=y, y=z, x=z yields
	// six congruent cells of area pi/12 each. Take the cell x >= y >= z.
	normals := append(orthantNormals3(),
		Vector{1, -1, 0}, // x >= y
		Vector{0, 1, -1}, // y >= z
	)
	got, err := SphericalPolygonArea3D(normals)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, math.Pi/12, 1e-9) {
		t.Errorf("cell area = %v, want pi/12", got)
	}
}

func TestSphericalPolygonAreaEmpty(t *testing.T) {
	// Contradictory constraints: x >= y and y >= x+ (strictly inside via a
	// third plane that excludes the boundary region).
	normals := []Vector{
		Basis(3, 2),        // z >= 0
		Vector{1, -1, -1},  // x >= y + z
		Vector{-1, 1, -1},  // y >= x + z
		Vector{-1, -1, 10}, // 10 z >= x + y ... combined leaves ~a point
		Vector{0, 0, -1},   // z <= 0 -> contradiction with the cone interior
	}
	if _, err := SphericalPolygonArea3D(normals); !errors.Is(err, ErrDegenerateCone) {
		t.Errorf("expected ErrDegenerateCone, got %v", err)
	}
}

func TestSphericalPolygonAreaWrongDim(t *testing.T) {
	if _, err := SphericalPolygonArea3D([]Vector{{1, 0}}); err == nil {
		t.Error("2D normals accepted")
	}
}

// Property: random partitions of the octant by a plane have areas that sum to
// the octant area.
func TestSphericalPolygonAreaAdditivity(t *testing.T) {
	rr := rand.New(rand.NewSource(12))
	for i := 0; i < 50; i++ {
		n := randUnit(rr, 3)
		a1, err1 := SphericalPolygonArea3D(append(orthantNormals3(), n))
		a2, err2 := SphericalPolygonArea3D(append(orthantNormals3(), n.Scale(-1)))
		v1, v2 := 0.0, 0.0
		if err1 == nil {
			v1 = a1
		} else if !errors.Is(err1, ErrDegenerateCone) {
			t.Fatal(err1)
		}
		if err2 == nil {
			v2 = a2
		} else if !errors.Is(err2, ErrDegenerateCone) {
			t.Fatal(err2)
		}
		if v1 == 0 && v2 == 0 {
			continue // plane missed the octant entirely in both orientations
		}
		if !almostEqual(v1+v2, math.Pi/2, 1e-6) {
			t.Fatalf("partition areas %v + %v != pi/2 (normal %v)", v1, v2, n)
		}
	}
}

// Cross-check a cap-like wedge against the closed-form cap area is not
// possible (caps are not polygons), but small random convex cones must have
// area below the octant's and above zero.
func TestSphericalPolygonAreaBounds(t *testing.T) {
	rr := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		normals := orthantNormals3()
		for j := 0; j < 2+rr.Intn(3); j++ {
			normals = append(normals, randVec(rr, 3))
		}
		area, err := SphericalPolygonArea3D(normals)
		if errors.Is(err, ErrDegenerateCone) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if area < 0 || area > math.Pi/2+1e-9 {
			t.Fatalf("area %v outside [0, pi/2]", area)
		}
	}
}
