package geom

import (
	"math"
	"testing"
)

func TestSphereSurfaceArea(t *testing.T) {
	tests := []struct {
		name  string
		delta int
		r     float64
		want  float64
	}{
		{"circle circumference", 2, 1, 2 * math.Pi},
		{"circle radius 3", 2, 3, 6 * math.Pi},
		{"sphere", 3, 1, 4 * math.Pi},
		{"sphere radius 2", 3, 2, 16 * math.Pi},
		{"3-sphere in R4", 4, 1, 2 * math.Pi * math.Pi},
		{"interval endpoints", 1, 5, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := SphereSurfaceArea(tc.delta, tc.r)
			if math.Abs(got-tc.want) > 1e-9*math.Max(1, tc.want) {
				t.Errorf("SphereSurfaceArea(%d, %v) = %v, want %v", tc.delta, tc.r, got, tc.want)
			}
		})
	}
}

func TestSinPowIntegralClosedForms(t *testing.T) {
	if got := SinPowIntegral(0, 1.3, 100); !almostEqual(got, 1.3, 1e-12) {
		t.Errorf("integral sin^0 = %v, want 1.3", got)
	}
	want := 1 - math.Cos(0.7)
	if got := SinPowIntegral(1, 0.7, 100); !almostEqual(got, want, 1e-12) {
		t.Errorf("integral sin^1 = %v, want %v", got, want)
	}
	// sin^2 over [0, theta] = theta/2 - sin(2 theta)/4.
	theta := 1.1
	want2 := theta/2 - math.Sin(2*theta)/4
	if got := SinPowIntegral(2, theta, 4096); !almostEqual(got, want2, 1e-10) {
		t.Errorf("integral sin^2 = %v, want %v", got, want2)
	}
	// sin^3 over [0, pi] = 4/3.
	if got := SinPowIntegral(3, math.Pi, 4096); !almostEqual(got, 4.0/3, 1e-9) {
		t.Errorf("integral sin^3 over [0,pi] = %v, want 4/3", got)
	}
	if got := SinPowIntegral(5, -1, 10); got != 0 {
		t.Errorf("negative theta should integrate to 0, got %v", got)
	}
}

func TestCapAreaFullSphere(t *testing.T) {
	// A cap of half-angle pi is the whole sphere.
	for d := 2; d <= 6; d++ {
		got := CapArea(d, math.Pi)
		want := SphereSurfaceArea(d, 1)
		if math.Abs(got-want)/want > 1e-8 {
			t.Errorf("d=%d: CapArea(pi) = %v, want full sphere %v", d, got, want)
		}
	}
}

func TestCapAreaHemisphere(t *testing.T) {
	for d := 2; d <= 6; d++ {
		got := CapArea(d, math.Pi/2)
		want := SphereSurfaceArea(d, 1) / 2
		if math.Abs(got-want)/want > 1e-8 {
			t.Errorf("d=%d: CapArea(pi/2) = %v, want hemisphere %v", d, got, want)
		}
	}
}

func TestCapArea3DClosedForm(t *testing.T) {
	// In R^3 the cap area is 2*pi*(1-cos theta).
	for _, theta := range []float64{0.1, 0.5, 1.0, 1.5} {
		got := CapArea(3, theta)
		want := 2 * math.Pi * (1 - math.Cos(theta))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("CapArea(3, %v) = %v, want %v", theta, got, want)
		}
	}
}

func TestCapAreaMonotone(t *testing.T) {
	for d := 2; d <= 5; d++ {
		prev := 0.0
		for theta := 0.1; theta < math.Pi; theta += 0.1 {
			a := CapArea(d, theta)
			if a < prev {
				t.Fatalf("d=%d: cap area not monotone at theta=%v", d, theta)
			}
			prev = a
		}
	}
}

func TestOrthantArea(t *testing.T) {
	// 2D: quarter circle = pi/2. 3D: octant = 4pi/8 = pi/2.
	if got := OrthantArea(2); !almostEqual(got, math.Pi/2, 1e-12) {
		t.Errorf("OrthantArea(2) = %v, want pi/2", got)
	}
	if got := OrthantArea(3); !almostEqual(got, math.Pi/2, 1e-12) {
		t.Errorf("OrthantArea(3) = %v, want pi/2", got)
	}
}

func TestCapFraction(t *testing.T) {
	if got := CapFraction(3, math.Pi); !almostEqual(got, 1, 1e-9) {
		t.Errorf("full cap fraction = %v, want 1", got)
	}
	if got := CapFraction(4, math.Pi/2); !almostEqual(got, 0.5, 1e-9) {
		t.Errorf("hemisphere fraction = %v, want 0.5", got)
	}
}
