package geom

import (
	"math"
	"math/rand"
	"testing"
)

// Monte-Carlo cross-checks of the closed-form areas: uniform points on the
// full sphere (via normalized normals) land in a cap of half-angle theta
// with probability CapFraction(d, theta).
func TestCapFractionMonteCarlo(t *testing.T) {
	rr := rand.New(rand.NewSource(251))
	const n = 60000
	for _, d := range []int{2, 3, 4, 5} {
		for _, theta := range []float64{0.3, 0.8, 1.4} {
			axis := Basis(d, 0)
			hits := 0
			for i := 0; i < n; i++ {
				v := make(Vector, d)
				for j := range v {
					v[j] = rr.NormFloat64()
				}
				u, err := v.Normalize()
				if err != nil {
					i--
					continue
				}
				a, err := Angle(u, axis)
				if err != nil {
					t.Fatal(err)
				}
				if a <= theta {
					hits++
				}
			}
			got := float64(hits) / n
			want := CapFraction(d, theta)
			if math.Abs(got-want) > 0.01 {
				t.Errorf("d=%d theta=%v: MC fraction %v vs closed form %v", d, theta, got, want)
			}
		}
	}
}

// The 3D Girard oracle agrees with Monte Carlo on random cones.
func TestSphericalPolygonAreaMonteCarlo(t *testing.T) {
	rr := rand.New(rand.NewSource(252))
	const n = 60000
	for trial := 0; trial < 10; trial++ {
		normals := orthantNormals3()
		for j := 0; j < 1+rr.Intn(2); j++ {
			normals = append(normals, randVec(rr, 3))
		}
		exact, err := SphericalPolygonArea3D(normals)
		if err != nil {
			continue // degenerate draw
		}
		hits := 0
		for i := 0; i < n; i++ {
			v := make(Vector, 3)
			for j := range v {
				v[j] = rr.NormFloat64()
			}
			u, err := v.Normalize()
			if err != nil {
				i--
				continue
			}
			ok := true
			for _, nm := range normals {
				if nm.Dot(u) < 0 {
					ok = false
					break
				}
			}
			if ok {
				hits++
			}
		}
		mc := float64(hits) / n * SphereSurfaceArea(3, 1)
		if math.Abs(mc-exact) > 0.05 {
			t.Errorf("trial %d: MC area %v vs Girard %v", trial, mc, exact)
		}
	}
}
