package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		want float64
	}{
		{"orthogonal", Vector{1, 0}, Vector{0, 1}, 0},
		{"parallel", Vector{1, 2, 3}, Vector{2, 4, 6}, 28},
		{"mixed signs", Vector{1, -1}, Vector{1, 1}, 0},
		{"zero", Vector{0, 0, 0}, Vector{1, 2, 3}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Dot(tc.b); !almostEqual(got, tc.want, 1e-12) {
				t.Errorf("Dot = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Vector{1, 2}.Dot(Vector{1, 2, 3})
}

func TestNorm(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want float64
	}{
		{"unit", Vector{1, 0, 0}, 1},
		{"345", Vector{3, 4}, 5},
		{"zero", Vector{0, 0}, 0},
		{"huge values no overflow", Vector{3e200, 4e200}, 5e200},
		{"tiny values no underflow", Vector{3e-200, 4e-200}, 5e-200},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.v.Norm()
			if tc.want == 0 {
				if got != 0 {
					t.Errorf("Norm = %v, want 0", got)
				}
				return
			}
			if math.Abs(got-tc.want)/tc.want > 1e-12 {
				t.Errorf("Norm = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	u, err := v.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if !u.Equal(Vector{0.6, 0.8}, 1e-12) {
		t.Errorf("Normalize = %v, want (0.6, 0.8)", u)
	}
	if _, err := (Vector{0, 0}).Normalize(); err == nil {
		t.Error("expected error normalizing zero vector")
	}
}

func TestAddSubScaleClone(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	if got := a.Add(b); !got.Equal(Vector{5, 7, 9}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); !got.Equal(Vector{3, 3, 3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); !got.Equal(Vector{2, 4, 6}, 0) {
		t.Errorf("Scale = %v", got)
	}
	c := a.Clone()
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone aliases original storage")
	}
}

func TestCosineSimilarityAndAngle(t *testing.T) {
	tests := []struct {
		name      string
		a, b      Vector
		wantCos   float64
		wantAngle float64
	}{
		{"same direction", Vector{1, 1}, Vector{2, 2}, 1, 0},
		{"orthogonal", Vector{1, 0}, Vector{0, 1}, 0, math.Pi / 2},
		{"opposite", Vector{1, 0}, Vector{-1, 0}, -1, math.Pi},
		{"45 degrees", Vector{1, 0}, Vector{1, 1}, math.Sqrt2 / 2, math.Pi / 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c, err := CosineSimilarity(tc.a, tc.b)
			if err != nil {
				t.Fatalf("CosineSimilarity: %v", err)
			}
			if !almostEqual(c, tc.wantCos, 1e-12) {
				t.Errorf("cos = %v, want %v", c, tc.wantCos)
			}
			a, err := Angle(tc.a, tc.b)
			if err != nil {
				t.Fatalf("Angle: %v", err)
			}
			if !almostEqual(a, tc.wantAngle, 1e-7) { // acos loses precision near cos = 1
				t.Errorf("angle = %v, want %v", a, tc.wantAngle)
			}
		})
	}
	if _, err := CosineSimilarity(Vector{0, 0}, Vector{1, 0}); err == nil {
		t.Error("expected error for zero vector")
	}
}

func TestCross(t *testing.T) {
	got := Cross(Vector{1, 0, 0}, Vector{0, 1, 0})
	if !got.Equal(Vector{0, 0, 1}, 0) {
		t.Errorf("Cross(e1, e2) = %v, want e3", got)
	}
	// Anticommutativity.
	a := Vector{1, 2, 3}
	b := Vector{-2, 0.5, 4}
	ab := Cross(a, b)
	ba := Cross(b, a)
	if !ab.Equal(ba.Scale(-1), 1e-12) {
		t.Error("cross product not anticommutative")
	}
	// Orthogonality.
	if !almostEqual(ab.Dot(a), 0, 1e-12) || !almostEqual(ab.Dot(b), 0, 1e-12) {
		t.Error("cross product not orthogonal to operands")
	}
}

func TestBasisAndZero(t *testing.T) {
	e2 := Basis(4, 2)
	want := Vector{0, 0, 1, 0}
	if !e2.Equal(want, 0) {
		t.Errorf("Basis(4,2) = %v", e2)
	}
	if z := Zero(3); !z.Equal(Vector{0, 0, 0}, 0) {
		t.Errorf("Zero(3) = %v", z)
	}
}

func randVec(r *rand.Rand, d int) Vector {
	v := make(Vector, d)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

// Property: Cauchy-Schwarz |a.b| <= |a||b| and triangle inequality.
func TestVectorProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 300, Rand: r}
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 2 + rr.Intn(6)
		a, b := randVec(rr, d), randVec(rr, d)
		if math.Abs(a.Dot(b)) > a.Norm()*b.Norm()+1e-9 {
			return false
		}
		if a.Add(b).Norm() > a.Norm()+b.Norm()+1e-9 {
			return false
		}
		// Scaling invariance of cosine similarity.
		if a.Norm() > 1e-6 && b.Norm() > 1e-6 {
			c1, _ := CosineSimilarity(a, b)
			c2, _ := CosineSimilarity(a.Scale(3.7), b.Scale(0.2))
			if !almostEqual(c1, c2, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestNonNegative(t *testing.T) {
	if !(Vector{0, 1, 2}).NonNegative(0) {
		t.Error("non-negative vector rejected")
	}
	if (Vector{0, -1}).NonNegative(1e-9) {
		t.Error("negative vector accepted")
	}
	if !(Vector{-1e-12, 1}).NonNegative(1e-9) {
		t.Error("tolerance not applied")
	}
}
