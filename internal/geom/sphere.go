package geom

import (
	"fmt"
	"math"
)

// Hypersphere surface areas and spherical-cap areas, Equations 12-13 of the
// paper. These normalize the stability measure: the volume of a region of
// the function space is the surface area it carves out of the unit
// (d-1)-sphere, and the stability of a ranking is that area divided by the
// area of the region of interest.

// SphereSurfaceArea returns the surface area of the (delta-1)-dimensional
// boundary of the ball of radius r in R^delta (Equation 12):
//
//	A_delta(r) = 2 pi^{delta/2} / Gamma(delta/2) * r^{delta-1}
//
// For delta = 2 this is the circumference 2*pi*r; for delta = 3 the familiar
// 4*pi*r^2.
func SphereSurfaceArea(delta int, r float64) float64 {
	if delta < 1 {
		panic(fmt.Sprintf("geom: SphereSurfaceArea dimension %d < 1", delta))
	}
	return 2 * math.Pow(math.Pi, float64(delta)/2) / math.Gamma(float64(delta)/2) * math.Pow(r, float64(delta-1))
}

// SinPowIntegral returns the integral of sin^k(phi) dphi over [0, theta],
// evaluated with closed forms for k <= 1 and composite Simpson's rule with
// the given number of panels otherwise (steps is rounded up to the next even
// number, minimum 2).
func SinPowIntegral(k int, theta float64, steps int) float64 {
	if theta <= 0 {
		return 0
	}
	switch k {
	case 0:
		return theta
	case 1:
		return 1 - math.Cos(theta)
	}
	if steps < 2 {
		steps = 2
	}
	if steps%2 == 1 {
		steps++
	}
	h := theta / float64(steps)
	f := func(x float64) float64 { return math.Pow(math.Sin(x), float64(k)) }
	sum := f(0) + f(theta)
	for i := 1; i < steps; i++ {
		x := float64(i) * h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// defaultSimpsonSteps balances accuracy (~1e-12 for smooth sin^k on
// [0, pi/2]) against setup cost for cap-area queries.
const defaultSimpsonSteps = 4096

// CapArea returns the surface area of the spherical cap of half-angle theta
// on the unit (d-1)-sphere in R^d (Equation 13):
//
//	A_cap = A_{d-1}(1) * Integral_0^theta sin^{d-2}(phi) dphi
//
// where A_{d-1}(1) is the surface area of the unit sphere in R^{d-1}.
// theta = pi reproduces the full sphere area.
func CapArea(d int, theta float64) float64 {
	if d < 2 {
		panic(fmt.Sprintf("geom: CapArea dimension %d < 2", d))
	}
	if theta < 0 {
		theta = 0
	}
	if theta > math.Pi {
		theta = math.Pi
	}
	return SphereSurfaceArea(d-1, 1) * SinPowIntegral(d-2, theta, defaultSimpsonSteps)
}

// OrthantArea returns the surface area of the non-negative orthant of the
// unit (d-1)-sphere in R^d: the full sphere area divided by 2^d. This is the
// normalizing volume vol(U) of the whole function space.
func OrthantArea(d int) float64 {
	return SphereSurfaceArea(d, 1) / math.Pow(2, float64(d))
}

// CapFraction returns the fraction of the full unit-sphere surface covered by
// a cap of half-angle theta in R^d.
func CapFraction(d int, theta float64) float64 {
	return CapArea(d, theta) / SphereSurfaceArea(d, 1)
}
