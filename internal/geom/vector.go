// Package geom provides the d-dimensional geometric substrate used by the
// stable-ranking algorithms: vectors, polar coordinates, rotations that map
// the d-th axis onto an arbitrary ray (Appendix A of the paper), hyperplanes
// and halfspaces through the origin (ordering exchanges), hypercones (regions
// of interest), hyperspherical cap areas (Equations 12-13), and an exact
// spherical-polygon area for 3-dimensional cones used as a validation oracle
// for the Monte-Carlo stability estimates.
//
// Throughout the package, the "function space" U of the paper is identified
// with the non-negative orthant of the unit (d-1)-sphere: every linear
// scoring function corresponds to the unit ray through its weight vector.
package geom

import (
	"errors"
	"fmt"
	"math"
)

// Eps is the default absolute tolerance for geometric predicates. Ordering
// exchanges between near-duplicate items produce near-zero normals; any
// comparison against zero in this package uses Eps unless stated otherwise.
const Eps = 1e-12

// ErrDimensionMismatch is returned by operations combining vectors of
// different lengths.
var ErrDimensionMismatch = errors.New("geom: dimension mismatch")

// Vector is a point or direction in R^d. The zero-length vector is invalid
// for all operations.
type Vector []float64

// NewVector returns a copy of xs as a Vector.
func NewVector(xs ...float64) Vector {
	v := make(Vector, len(xs))
	copy(v, xs)
	return v
}

// Zero returns the zero vector of dimension d.
func Zero(d int) Vector { return make(Vector, d) }

// Basis returns the i-th standard basis vector of dimension d (0-indexed).
func Basis(d, i int) Vector {
	v := make(Vector, d)
	v[i] = 1
	return v
}

// Dim returns the dimension of v.
func (v Vector) Dim() int { return len(v) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Dot returns the inner product of v and w. It panics if dimensions differ;
// callers constructing vectors from user input should validate first.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("geom: Dot dimension mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean length of v.
func (v Vector) Norm() float64 {
	// Two-pass scaling avoids overflow for extreme magnitudes.
	var maxAbs float64
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		r := x / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// Normalize returns v scaled to unit length. It returns an error if v is
// (numerically) the zero vector.
func (v Vector) Normalize() (Vector, error) {
	n := v.Norm()
	if n < Eps {
		return nil, errors.New("geom: cannot normalize zero vector")
	}
	return v.Scale(1 / n), nil
}

// MustNormalize is Normalize for inputs known to be nonzero; it panics on the
// zero vector.
func (v Vector) MustNormalize() Vector {
	u, err := v.Normalize()
	if err != nil {
		panic(err)
	}
	return u
}

// Scale returns a*v as a new vector.
func (v Vector) Scale(a float64) Vector {
	w := make(Vector, len(v))
	for i := range v {
		w[i] = a * v[i]
	}
	return w
}

// Add returns v+w as a new vector.
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("geom: Add dimension mismatch %d vs %d", len(v), len(w)))
	}
	u := make(Vector, len(v))
	for i := range v {
		u[i] = v[i] + w[i]
	}
	return u
}

// Sub returns v-w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("geom: Sub dimension mismatch %d vs %d", len(v), len(w)))
	}
	u := make(Vector, len(v))
	for i := range v {
		u[i] = v[i] - w[i]
	}
	return u
}

// Equal reports whether v and w agree component-wise within tol.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// NonNegative reports whether every component of v is >= -tol.
func (v Vector) NonNegative(tol float64) bool {
	for _, x := range v {
		if x < -tol {
			return false
		}
	}
	return true
}

// CosineSimilarity returns the cosine of the angle between v and w, clamped
// to [-1, 1]. It returns an error if either vector is zero.
func CosineSimilarity(v, w Vector) (float64, error) {
	nv, nw := v.Norm(), w.Norm()
	if nv < Eps || nw < Eps {
		return 0, errors.New("geom: cosine similarity undefined for zero vector")
	}
	c := v.Dot(w) / (nv * nw)
	return clamp(c, -1, 1), nil
}

// Angle returns the angle between v and w in radians, in [0, pi].
func Angle(v, w Vector) (float64, error) {
	c, err := CosineSimilarity(v, w)
	if err != nil {
		return 0, err
	}
	return math.Acos(c), nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Cross returns the 3D cross product of v and w. It panics unless both are
// 3-dimensional; it is used only by the exact 3D spherical-area oracle.
func Cross(v, w Vector) Vector {
	if len(v) != 3 || len(w) != 3 {
		panic("geom: Cross requires 3-dimensional vectors")
	}
	return Vector{
		v[1]*w[2] - v[2]*w[1],
		v[2]*w[0] - v[0]*w[2],
		v[0]*w[1] - v[1]*w[0],
	}
}
