package geom

import (
	"errors"
	"math"
	"sort"
)

// Exact spherical areas in R^3. A ranking region in three dimensions is a
// convex cone bounded by origin hyperplanes; its stability volume is the
// area of the convex spherical polygon the cone cuts from the unit sphere.
// Girard's theorem gives that area exactly as the angle excess
//
//	area = sum(interior angles) - (m-2)*pi.
//
// The paper estimates these volumes by Monte Carlo (exact polytope volume is
// #P-hard in general dimension); this 3D oracle is an extension used to
// validate the Monte-Carlo stability oracle in tests and experiments.

// ErrDegenerateCone is returned when a cone has an empty or lower-dimensional
// intersection with the sphere (fewer than three distinct vertices).
var ErrDegenerateCone = errors.New("geom: degenerate or empty spherical polygon")

// SphericalPolygonArea3D returns the exact area of the convex region
// {w on S^2 : n.w >= 0 for every n in normals}. The normals must include
// every bounding plane of the cone (callers restricting to the function
// space U pass the orthant constraints e_i explicitly). Redundant
// constraints are tolerated.
func SphericalPolygonArea3D(normals []Vector) (float64, error) {
	const tol = 1e-9
	for _, n := range normals {
		if len(n) != 3 {
			return 0, errors.New("geom: SphericalPolygonArea3D requires 3D normals")
		}
	}
	// Candidate vertices: intersections of pairs of boundary planes.
	var verts []Vector
	for i := 0; i < len(normals); i++ {
		for j := i + 1; j < len(normals); j++ {
			dir := Cross(normals[i], normals[j])
			if dir.Norm() < tol {
				continue // parallel planes
			}
			u := dir.MustNormalize()
			for _, cand := range []Vector{u, u.Scale(-1)} {
				if satisfiesAll(cand, normals, tol) {
					verts = appendUniqueVertex(verts, cand, 1e-7)
				}
			}
		}
	}
	if len(verts) < 3 {
		return 0, ErrDegenerateCone
	}
	// Order vertices around the interior direction (normalized centroid).
	center := Zero(3)
	for _, v := range verts {
		center = center.Add(v)
	}
	c, err := center.Normalize()
	if err != nil {
		return 0, ErrDegenerateCone
	}
	// Tangent basis at c.
	ref := Basis(3, 0)
	if math.Abs(c.Dot(ref)) > 0.9 {
		ref = Basis(3, 1)
	}
	e1 := ref.Sub(c.Scale(ref.Dot(c))).MustNormalize()
	e2 := Cross(c, e1)
	sort.Slice(verts, func(a, b int) bool {
		va, vb := verts[a], verts[b]
		return math.Atan2(va.Dot(e2), va.Dot(e1)) < math.Atan2(vb.Dot(e2), vb.Dot(e1))
	})
	// Girard's theorem.
	m := len(verts)
	var angleSum float64
	for i := 0; i < m; i++ {
		prev := verts[(i-1+m)%m]
		cur := verts[i]
		next := verts[(i+1)%m]
		ta := tangentAt(cur, prev)
		tb := tangentAt(cur, next)
		if ta == nil || tb == nil {
			return 0, ErrDegenerateCone
		}
		cosA := clamp(ta.Dot(tb), -1, 1)
		angleSum += math.Acos(cosA)
	}
	area := angleSum - float64(m-2)*math.Pi
	if area < 0 {
		area = 0
	}
	return area, nil
}

// tangentAt returns the unit tangent at point v (on the sphere) toward point
// w along the great circle through them, or nil if they are (anti)parallel.
func tangentAt(v, w Vector) Vector {
	t := w.Sub(v.Scale(w.Dot(v)))
	u, err := t.Normalize()
	if err != nil {
		return nil
	}
	return u
}

func satisfiesAll(w Vector, normals []Vector, tol float64) bool {
	for _, n := range normals {
		if n.Dot(w) < -tol {
			return false
		}
	}
	return true
}

func appendUniqueVertex(verts []Vector, v Vector, tol float64) []Vector {
	for _, u := range verts {
		if u.Equal(v, tol) {
			return verts
		}
	}
	return append(verts, v)
}
