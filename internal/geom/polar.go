package geom

import (
	"fmt"
	"math"
)

// Polar coordinates identify a ray in R^d by d-1 angles, following the
// geometric view in Section 2.1.2 of the paper: a linear scoring function is
// an origin-starting ray, and in the non-negative orthant every angle lies in
// [0, pi/2].
//
// The convention used here is the standard hyperspherical one:
//
//	x_1 = r * cos(a_1)
//	x_2 = r * sin(a_1) * cos(a_2)
//	...
//	x_{d-1} = r * sin(a_1)*...*sin(a_{d-2}) * cos(a_{d-1})
//	x_d     = r * sin(a_1)*...*sin(a_{d-2}) * sin(a_{d-1})
//
// so that the all-angles-pi/2 point is the d-th axis and, for d = 2, a single
// angle measured counterclockwise from the x1 axis (as in Section 3).

// FromPolar converts a radius and d-1 angles to Cartesian coordinates in R^d.
// len(angles)+1 is the dimension of the result; it panics on an empty angle
// slice since R^1 has no angular coordinate.
func FromPolar(r float64, angles []float64) Vector {
	if len(angles) == 0 {
		panic("geom: FromPolar requires at least one angle")
	}
	d := len(angles) + 1
	v := make(Vector, d)
	prod := r
	for i := 0; i < d-1; i++ {
		v[i] = prod * math.Cos(angles[i])
		prod *= math.Sin(angles[i])
	}
	v[d-1] = prod
	return v
}

// ToPolar converts a Cartesian vector to its radius and d-1 polar angles,
// inverting FromPolar. For vectors in the non-negative orthant all returned
// angles lie in [0, pi/2]. The zero vector yields radius 0 and zero angles.
func ToPolar(v Vector) (r float64, angles []float64) {
	d := len(v)
	if d < 2 {
		panic(fmt.Sprintf("geom: ToPolar requires dimension >= 2, got %d", d))
	}
	angles = make([]float64, d-1)
	r = v.Norm()
	if r == 0 {
		return 0, angles
	}
	// tail[i] = sqrt(v[i]^2 + ... + v[d-1]^2)
	tail := make([]float64, d)
	tail[d-1] = math.Abs(v[d-1])
	for i := d - 2; i >= 0; i-- {
		tail[i] = math.Hypot(v[i], tail[i+1])
	}
	for i := 0; i < d-2; i++ {
		angles[i] = math.Atan2(tail[i+1], v[i])
	}
	angles[d-2] = math.Atan2(v[d-1], v[d-2])
	return r, angles
}

// Angle2D returns the single polar angle of a 2-dimensional vector, measured
// from the x1 axis, in [0, pi/2] for vectors in the first quadrant. This is
// the angle representation used by the exact 2D algorithms in Section 3.
func Angle2D(v Vector) float64 {
	if len(v) != 2 {
		panic(fmt.Sprintf("geom: Angle2D requires dimension 2, got %d", len(v)))
	}
	return math.Atan2(v[1], v[0])
}

// Ray2D returns the unit vector at angle theta from the x1 axis in R^2.
func Ray2D(theta float64) Vector {
	return Vector{math.Cos(theta), math.Sin(theta)}
}
