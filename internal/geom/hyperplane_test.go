package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestOrderingExchange(t *testing.T) {
	// Items t1 = (0.63, 0.71), t4 = (0.7, 0.68) from Figure 1 of the paper.
	t1 := Vector{0.63, 0.71}
	t4 := Vector{0.7, 0.68}
	h := OrderingExchange(t1, t4)
	// On the positive side t1 outranks t4. The exchange angle is
	// arctan((t4[0]-t1[0])/(t1[1]-t4[1])) per Equation 6.
	theta := math.Atan2(t4[0]-t1[0], t1[1]-t4[1])
	boundary := Ray2D(theta)
	if s := h.Side(boundary, 1e-9); s != 0 {
		t.Errorf("exchange ray not on hyperplane, side=%d eval=%v", s, h.Eval(boundary))
	}
	// Left of the exchange (smaller angle... here t1 has higher x2 so t1 wins
	// at steep angles): check a function on each side scores consistently.
	fLow := Ray2D(theta - 0.05)
	fHigh := Ray2D(theta + 0.05)
	scoreLow1, scoreLow4 := fLow.Dot(t1), fLow.Dot(t4)
	if (h.Eval(fLow) > 0) != (scoreLow1 > scoreLow4) {
		t.Error("positive side does not correspond to t1 outranking t4 (low)")
	}
	scoreHigh1, scoreHigh4 := fHigh.Dot(t1), fHigh.Dot(t4)
	if (h.Eval(fHigh) > 0) != (scoreHigh1 > scoreHigh4) {
		t.Error("positive side does not correspond to t1 outranking t4 (high)")
	}
}

func TestHyperplaneSide(t *testing.T) {
	h := Hyperplane{Normal: Vector{1, -1}}
	tests := []struct {
		w    Vector
		want int
	}{
		{Vector{2, 1}, 1},
		{Vector{1, 2}, -1},
		{Vector{1, 1}, 0},
	}
	for _, tc := range tests {
		if got := h.Side(tc.w, 1e-9); got != tc.want {
			t.Errorf("Side(%v) = %d, want %d", tc.w, got, tc.want)
		}
	}
}

func TestIsDegenerate(t *testing.T) {
	if !(Hyperplane{Normal: Vector{0, 0, 0}}).IsDegenerate() {
		t.Error("zero normal not flagged degenerate")
	}
	if (Hyperplane{Normal: Vector{1e-3, 0}}).IsDegenerate() {
		t.Error("nonzero normal flagged degenerate")
	}
	a := Vector{0.5, 0.5}
	if !OrderingExchange(a, a.Clone()).IsDegenerate() {
		t.Error("exchange of identical items should be degenerate")
	}
}

func TestHalfspaceContains(t *testing.T) {
	hs := Halfspace{Normal: Vector{1, -2}, Positive: true}
	if !hs.Contains(Vector{3, 1}, 0) {
		t.Error("interior point rejected")
	}
	if hs.Contains(Vector{1, 3}, 0) {
		t.Error("exterior point accepted")
	}
	neg := Halfspace{Normal: Vector{1, -2}, Positive: false}
	if !neg.Contains(Vector{1, 3}, 0) {
		t.Error("negative halfspace rejected its interior")
	}
	if got := neg.Oriented(); !got.Equal(Vector{-1, 2}, 0) {
		t.Errorf("Oriented = %v", got)
	}
}

func TestMayIntersectCone(t *testing.T) {
	axis := Vector{1, 1, 1}.MustNormalize()
	// A hyperplane through the axis always intersects.
	through := Hyperplane{Normal: Vector{1, -1, 0}}
	if !through.MayIntersectCone(axis, 0.01) {
		t.Error("hyperplane containing axis should intersect any cone")
	}
	// A hyperplane whose normal is the axis touches the cap only for
	// theta >= pi/2.
	normalIsAxis := Hyperplane{Normal: axis}
	if normalIsAxis.MayIntersectCone(axis, 0.3) {
		t.Error("orthogonal-to-axis hyperplane should miss a narrow cone")
	}
	if !normalIsAxis.MayIntersectCone(axis, math.Pi/2) {
		t.Error("orthogonal-to-axis hyperplane should touch the hemisphere boundary")
	}
}

// Property: for random item pairs, the sign of the exchange evaluation at w
// equals the sign of the score difference.
func TestExchangeSignMatchesScoreDifference(t *testing.T) {
	rr := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		d := 2 + rr.Intn(5)
		a, b := randVec(rr, d), randVec(rr, d)
		w := make(Vector, d)
		for j := range w {
			w[j] = rr.Float64()
		}
		h := OrderingExchange(a, b)
		diff := w.Dot(a) - w.Dot(b)
		if math.Abs(diff) < 1e-9 {
			continue
		}
		if (h.Eval(w) > 0) != (diff > 0) {
			t.Fatalf("exchange sign mismatch: eval=%v scoreDiff=%v", h.Eval(w), diff)
		}
	}
}
