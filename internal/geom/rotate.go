package geom

import (
	"errors"
	"math"
)

// Rotation support for the unbiased cap sampler (Algorithm 11). The sampler
// draws points on a spherical cap centred on the d-th axis and must rotate
// the coordinate system so the cap centre falls on the reference ray rho.
// The paper's Appendix A builds the rotation from a chain of d-1 Givens
// (plane) rotations; this package provides that chain (NewGivensRotation)
// plus a closed-form rank-2 construction (NewAxisRotation) that is O(d^2) to
// apply. The two are tested against each other.

// Rotation is an orthogonal map R^d -> R^d with determinant +1 that carries
// the d-th standard basis vector onto a chosen unit ray.
type Rotation interface {
	// Apply returns the rotated image of v as a new vector.
	Apply(v Vector) Vector
	// ApplyTo writes the rotated image of v into dst without allocating.
	// dst must have the rotation's dimension; dst and v may alias.
	ApplyTo(dst, v Vector)
	// Dim returns the dimension the rotation operates in.
	Dim() int
}

// axisRotation implements the textbook rank-2 update rotating unit vector p
// onto unit vector q within their common plane and fixing the orthogonal
// complement:
//
//	R = I - (p+q)(p+q)^T / (1 + p.q) + 2 q p^T
type axisRotation struct {
	p, q, pq Vector // pq = p+q
	denom    float64
	identity bool
	flip     Vector // used when q = -p: 180-degree rotation in a fixed plane
}

// NewAxisRotation returns a Rotation mapping the d-th basis vector e_d onto
// the unit ray through axis. axis is normalized internally; an error is
// returned for the zero vector or dimension < 2.
func NewAxisRotation(axis Vector) (Rotation, error) {
	d := len(axis)
	if d < 2 {
		return nil, errors.New("geom: rotation requires dimension >= 2")
	}
	q, err := axis.Normalize()
	if err != nil {
		return nil, err
	}
	p := Basis(d, d-1)
	dot := p.Dot(q)
	if dot > 1-Eps {
		return &axisRotation{p: p, q: q, identity: true}, nil
	}
	if dot < -1+Eps {
		// q = -e_d: rotate by pi in the (e_1, e_d) plane.
		return &axisRotation{p: p, q: q, flip: Basis(d, 0)}, nil
	}
	return &axisRotation{p: p, q: q, pq: p.Add(q), denom: 1 + dot}, nil
}

func (r *axisRotation) Dim() int { return len(r.p) }

func (r *axisRotation) Apply(v Vector) Vector {
	out := make(Vector, len(v))
	r.ApplyTo(out, v)
	return out
}

func (r *axisRotation) ApplyTo(dst, v Vector) {
	if r.identity {
		copy(dst, v)
		return
	}
	if r.flip != nil {
		// 180-degree rotation in span(flip, p): negate both coordinates.
		a := r.flip.Dot(v)
		b := r.p.Dot(v)
		copy(dst, v)
		for i := range dst {
			dst[i] -= 2 * (a*r.flip[i] + b*r.p[i])
		}
		return
	}
	// R v = v - (p+q) * ((p+q).v)/(1+p.q) + 2 q (p.v)
	s := r.pq.Dot(v) / r.denom
	t := 2 * r.p.Dot(v)
	copy(dst, v)
	for i := range dst {
		dst[i] += -s*r.pq[i] + t*r.q[i]
	}
}

// givensRotation composes plane rotations, mirroring Appendix A: it is built
// by zeroing the components of the target ray one plane at a time and then
// inverting the product, which maps e_d onto the ray.
type givensRotation struct {
	d int
	// rotations to apply in order; each rotates the (i, j) plane by theta.
	planes []planeRot
}

type planeRot struct {
	i, j int
	c, s float64 // cos/sin of the rotation angle
}

// NewGivensRotation returns a Rotation mapping e_d onto the unit ray through
// axis, built as a chain of d-1 Givens rotations as in the paper's
// Appendix A. It is O(d) to apply per plane, O(d^2) total; NewAxisRotation is
// normally preferred, this construction exists for fidelity and testing.
func NewGivensRotation(axis Vector) (Rotation, error) {
	d := len(axis)
	if d < 2 {
		return nil, errors.New("geom: rotation requires dimension >= 2")
	}
	a, err := axis.Normalize()
	if err != nil {
		return nil, err
	}
	// Forward pass: rotate a so that it becomes e_d, recording each plane
	// rotation. Working copy w starts as a; rotate component i into
	// component d-1 for i = 0..d-2.
	w := a.Clone()
	forward := make([]planeRot, 0, d-1)
	for i := 0; i < d-1; i++ {
		x, y := w[i], w[d-1]
		r := math.Hypot(x, y)
		if r < Eps {
			continue
		}
		c, s := y/r, x/r
		// Rotation sending (x, y) -> (0, r) in the (i, d-1) plane:
		// [ c -s; s c ] applied as w_i' = c*x - s*y ... choose signs so
		// w_i' = 0, w_{d-1}' = r.
		w[i] = 0
		w[d-1] = r
		forward = append(forward, planeRot{i: i, j: d - 1, c: c, s: s})
	}
	// Inverse (transpose) in reverse order maps e_d back onto a.
	planes := make([]planeRot, 0, len(forward))
	for k := len(forward) - 1; k >= 0; k-- {
		f := forward[k]
		planes = append(planes, planeRot{i: f.i, j: f.j, c: f.c, s: -f.s})
	}
	return &givensRotation{d: d, planes: planes}, nil
}

func (g *givensRotation) Dim() int { return g.d }

func (g *givensRotation) Apply(v Vector) Vector {
	out := make(Vector, len(v))
	g.ApplyTo(out, v)
	return out
}

func (g *givensRotation) ApplyTo(dst, v Vector) {
	copy(dst, v)
	for _, p := range g.planes {
		x, y := dst[p.i], dst[p.j]
		dst[p.i] = p.c*x - p.s*y
		dst[p.j] = p.s*x + p.c*y
	}
}
