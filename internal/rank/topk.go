package rank

import (
	"sort"

	"stablerank/internal/geom"
)

// Top-k selection without a full sort. The randomized top-k operators
// (Section 4.5.1) rank the dataset for every Monte-Carlo sample but only
// consume the first k entries; selecting them with a bounded heap costs
// O(n log k) instead of the O(n log n) full sort, which is the difference
// between minutes and seconds at the paper's n = 10^6 scale (Figure 18).

// TopKSelect returns the indices of the k highest-scoring items under w, in
// rank order (ties broken by ascending item index, identically to Compute).
// The returned slice is owned by the computer and overwritten on the next
// call.
func (c *Computer) TopKSelect(w geom.Vector, k int) []int {
	n := c.ds.N()
	if k >= n {
		return c.Compute(w).Order
	}
	if k <= 0 {
		return c.order[:0]
	}
	c.scoreAll(w)
	// Bounded min-heap over c.order[:k]: the root is the WORST currently
	// kept item (lowest score; ties: largest index).
	h := c.order[:k]
	for i := 0; i < k; i++ {
		h[i] = i
	}
	for i := k/2 - 1; i >= 0; i-- {
		c.siftDown(h, i)
	}
	for i := k; i < n; i++ {
		if c.better(i, h[0]) {
			h[0] = i
			c.siftDown(h, 0)
		}
	}
	// Heap-sort the survivors into rank order: repeatedly remove the worst.
	for size := k; size > 1; size-- {
		h[0], h[size-1] = h[size-1], h[0]
		c.siftDown(h[:size-1], 0)
	}
	return h
}

// better reports whether item a outranks item b (higher score, ties by
// smaller index).
func (c *Computer) better(a, b int) bool {
	if c.scores[a] != c.scores[b] {
		return c.scores[a] > c.scores[b]
	}
	return a < b
}

// siftDown restores the min-heap property (root = worst item) at position i.
func (c *Computer) siftDown(h []int, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(h) && c.better(h[worst], h[l]) {
			worst = l
		}
		if r < len(h) && c.better(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// TopKRankedKeyOf returns the ranked top-k key of the selection (equivalent
// to Compute(w).TopKRankedKey(k) but without the full sort).
func (c *Computer) TopKRankedKeyOf(w geom.Vector, k int) string {
	return encodeIndices(c.TopKSelect(w, k))
}

// TopKSetKeyOf returns the set top-k key of the selection (equivalent to
// Compute(w).TopKSetKey(k) but without the full sort).
func (c *Computer) TopKSetKeyOf(w geom.Vector, k int) string {
	sel := c.TopKSelect(w, k)
	tmp := make([]int, len(sel))
	copy(tmp, sel)
	sort.Ints(tmp)
	return encodeIndices(tmp)
}
