package rank

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
)

// referenceCompute is the historical implementation — per-item ds.Score and
// a stable sort with the explicit tie-break — kept here as the oracle for
// the argsort rewrite.
func referenceCompute(ds *dataset.Dataset, w geom.Vector) Ranking {
	r := Ranking{Order: make([]int, ds.N())}
	scores := make([]float64, ds.N())
	for i := range r.Order {
		r.Order[i] = i
		scores[i] = ds.Score(w, i)
	}
	sort.SliceStable(r.Order, func(a, b int) bool {
		ia, ib := r.Order[a], r.Order[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return ia < ib
	})
	return r
}

// TestArgsortMatchesReference: random datasets (including negative
// attributes, exact duplicates, and zero weights that produce score ties)
// rank identically under the flat argsort and the historical stable sort.
func TestArgsortMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		d := 2 + rng.Intn(3)
		ds, err := dataset.New(d)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			attrs := make(geom.Vector, d)
			for j := range attrs {
				switch rng.Intn(4) {
				case 0:
					attrs[j] = 0 // ties and zero scores
				case 1:
					attrs[j] = -rng.Float64() // negative attributes
				default:
					attrs[j] = math.Floor(rng.Float64()*4) / 2 // coarse grid: duplicates
				}
			}
			if err := ds.Add("x", attrs); err != nil {
				t.Fatal(err)
			}
		}
		w := make(geom.Vector, d)
		for j := range w {
			w[j] = math.Floor(rng.Float64()*3) / 2 // zeros included
		}
		comp := NewComputer(ds)
		got := comp.Compute(w)
		want := referenceCompute(ds, w)
		if !got.Equal(want) {
			t.Fatalf("trial %d: argsort %v, reference %v (w=%v)", trial, got.Order, want.Order, w)
		}
		// And the free function delegates to the same logic.
		if free := Compute(ds, w); !free.Equal(want) {
			t.Fatalf("trial %d: Compute %v, reference %v", trial, free.Order, want.Order)
		}
	}
}

// TestComputeReturnsIndependentRanking: the free function's result must not
// alias internal buffers (callers retain it).
func TestComputeReturnsIndependentRanking(t *testing.T) {
	ds := dataset.MustNew(2)
	ds.MustAdd("a", 1, 0)
	ds.MustAdd("b", 0, 1)
	r1 := Compute(ds, geom.Vector{1, 0})
	r2 := Compute(ds, geom.Vector{0, 1})
	if r1.Equal(r2) {
		t.Fatal("opposite weights gave equal rankings")
	}
	if r1.Order[0] != 0 || r2.Order[0] != 1 {
		t.Fatalf("orders %v / %v", r1.Order, r2.Order)
	}
}

// TestComputerComputeAllocationFree: the ranking inner loop of every
// Monte-Carlo operator performs zero allocations per call.
func TestComputerComputeAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds, err := dataset.New(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := ds.Add("x", geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	comp := NewComputer(ds)
	w := geom.Vector{0.5, 0.3, 0.2}
	if allocs := testing.AllocsPerRun(10, func() { comp.Compute(w) }); allocs != 0 {
		t.Errorf("Computer.Compute allocates %.1f per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() { comp.TopKSelect(w, 10) }); allocs != 0 {
		t.Errorf("Computer.TopKSelect allocates %.1f per call, want 0", allocs)
	}
}

// TestSortKeyOrdering: the packed order key is monotone over the float
// order, descending, with both zeros collapsed.
func TestSortKeyOrdering(t *testing.T) {
	vals := []float64{math.Inf(-1), -2.5, -1e-300, math.Copysign(0, -1), 0, 1e-300, 0.5, 2.5, math.Inf(1)}
	for i := 0; i+1 < len(vals); i++ {
		a, b := vals[i], vals[i+1]
		ka, kb := sortKey(a), sortKey(b)
		switch {
		case a == b: // the two zeros
			if ka != kb {
				t.Errorf("sortKey(%v) != sortKey(%v)", a, b)
			}
		case ka <= kb:
			t.Errorf("sortKey not descending: key(%v)=%x <= key(%v)=%x", a, ka, b, kb)
		}
	}
}
