package rank

import (
	"fmt"
	"math"
)

// Rank-distance measures. The paper's closing remarks (Section 8) note that
// its stability notion treats rankings differing in a single pair as
// distinct and suggests allowing "minor changes" as future work; these
// metrics quantify such changes and are used in the experiment reports to
// compare reference rankings with most-stable rankings (e.g. the Cornell /
// Toronto and Tunisia / Mexico swaps of Section 6.2).

// KendallTau returns the number of discordant pairs between two rankings of
// the same item set, computed via merge-sort inversion counting in
// O(n log n). It returns an error if the rankings are not permutations of
// the same items.
func KendallTau(a, b Ranking) (int, error) {
	n := len(a.Order)
	if len(b.Order) != n {
		return 0, fmt.Errorf("rank: rankings have different lengths %d, %d", n, len(b.Order))
	}
	pos := make(map[int]int, n)
	for i, v := range b.Order {
		pos[v] = i
	}
	seq := make([]int, n)
	for i, v := range a.Order {
		p, ok := pos[v]
		if !ok {
			return 0, fmt.Errorf("rank: item %d missing from second ranking", v)
		}
		seq[i] = p
	}
	if len(pos) != n {
		return 0, fmt.Errorf("rank: second ranking contains duplicates")
	}
	buf := make([]int, n)
	return countInversions(seq, buf), nil
}

func countInversions(a, buf []int) int {
	n := len(a)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := countInversions(a[:mid], buf) + countInversions(a[mid:], buf)
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if a[i] <= a[j] {
			buf[k] = a[i]
			i++
		} else {
			buf[k] = a[j]
			inv += mid - i
			j++
		}
		k++
	}
	for i < mid {
		buf[k] = a[i]
		i++
		k++
	}
	for j < n {
		buf[k] = a[j]
		j++
		k++
	}
	copy(a, buf[:n])
	return inv
}

// KendallTauNormalized returns the Kendall tau distance scaled to [0, 1] by
// the maximum n(n-1)/2.
func KendallTauNormalized(a, b Ranking) (float64, error) {
	d, err := KendallTau(a, b)
	if err != nil {
		return 0, err
	}
	n := len(a.Order)
	if n < 2 {
		return 0, nil
	}
	return float64(d) / (float64(n) * float64(n-1) / 2), nil
}

// SpearmanFootrule returns the sum over items of the absolute difference of
// their positions in the two rankings.
func SpearmanFootrule(a, b Ranking) (int, error) {
	n := len(a.Order)
	if len(b.Order) != n {
		return 0, fmt.Errorf("rank: rankings have different lengths %d, %d", n, len(b.Order))
	}
	pos := make(map[int]int, n)
	for i, v := range b.Order {
		pos[v] = i
	}
	if len(pos) != n {
		return 0, fmt.Errorf("rank: second ranking contains duplicates")
	}
	var sum int
	for i, v := range a.Order {
		p, ok := pos[v]
		if !ok {
			return 0, fmt.Errorf("rank: item %d missing from second ranking", v)
		}
		sum += int(math.Abs(float64(i - p)))
	}
	return sum, nil
}

// MaxDisplacement returns the largest absolute position change of any item
// between the two rankings, the quantity behind observations like
// "Northeastern improves from 40 to 35" in Section 6.2.
func MaxDisplacement(a, b Ranking) (item, delta int, err error) {
	n := len(a.Order)
	if len(b.Order) != n {
		return 0, 0, fmt.Errorf("rank: rankings have different lengths %d, %d", n, len(b.Order))
	}
	pos := make(map[int]int, n)
	for i, v := range b.Order {
		pos[v] = i
	}
	best := -1
	for i, v := range a.Order {
		p, ok := pos[v]
		if !ok {
			return 0, 0, fmt.Errorf("rank: item %d missing from second ranking", v)
		}
		d := i - p
		if d < 0 {
			d = -d
		}
		if d > best {
			best = d
			item = v
		}
	}
	return item, best, nil
}
