package rank

import (
	"fmt"
	"slices"
	"sort"
)

// cmpScored is the one total order over argsort elements: ascending key
// (descending score) with the item index as tie-break. Compute's full sort
// and Spliced's incremental binary searches share it, which is what makes a
// spliced order bit-identical to a from-scratch sort.
func cmpScored(a, b scoredIdx) int {
	if a.key != b.key {
		if a.key < b.key {
			return -1
		}
		return 1
	}
	return int(a.idx) - int(b.idx)
}

// Spliced maintains a sorted ranking order under single-item score changes
// without re-sorting. A score update moves exactly one element, so the new
// order differs from the old one by one rotation: remove the item's old key,
// binary-search the insertion point of the new key, and splice. Each
// operation is O(n) slice movement + O(log n) search instead of an
// O(n log n) sort — and, more importantly for the Monte-Carlo analyzers, it
// avoids touching any other item's score.
//
// The maintained state is pinned to be bit-identical to a from-scratch
// Computer over the same scores: identical interned keys, identical order,
// identical tie-breaks.
type Spliced struct {
	keys  []scoredIdx
	order []int // order[pos] = item index, best first
	pos   []int // pos[item] = position in order; inverse of order
	// spliced counts operations resolved by pure splicing; resorted counts
	// the key-tie cases that fell back to a full sort (the splice position is
	// technically unambiguous thanks to the index tie-break, but a tie on the
	// interned key is re-verified with a canonical sort out of caution —
	// it is the one case where two items compare equal on score).
	spliced  int64
	resorted int64
}

// NewSpliced builds the spliced ranking state over one score per item.
func NewSpliced(scores []float64) *Spliced {
	s := &Spliced{
		keys:  make([]scoredIdx, len(scores)),
		order: make([]int, len(scores)),
		pos:   make([]int, len(scores)),
	}
	for i, sc := range scores {
		s.keys[i] = scoredIdx{key: sortKey(sc), idx: int32(i)}
	}
	s.sortAll()
	return s
}

// Len returns the number of ranked items.
func (s *Spliced) Len() int { return len(s.order) }

// Counters reports how many operations were resolved by splicing vs full
// re-sorts.
func (s *Spliced) Counters() (spliced, resorted int64) { return s.spliced, s.resorted }

// Ranking returns the current order as a Ranking view. The slice is owned by
// the Spliced state and mutated by later operations; callers retaining it
// must Clone.
func (s *Spliced) Ranking() Ranking { return Ranking{Order: s.order} }

// Hash returns an FNV-1a digest of the current order, cheap enough to
// compare spliced state against a rebuild in tests and /statsz.
func (s *Spliced) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range s.order {
		h ^= uint64(v)
		h *= prime
	}
	return h
}

// Clone returns an independent deep copy, counters included.
func (s *Spliced) Clone() *Spliced {
	return &Spliced{
		keys:     slices.Clone(s.keys),
		order:    slices.Clone(s.order),
		pos:      slices.Clone(s.pos),
		spliced:  s.spliced,
		resorted: s.resorted,
	}
}

// sortAll canonically re-sorts the keys and rebuilds order/pos.
func (s *Spliced) sortAll() {
	slices.SortFunc(s.keys, cmpScored)
	s.reindex(0, len(s.keys))
}

// reindex refreshes order/pos for positions [lo, hi).
func (s *Spliced) reindex(lo, hi int) {
	for p := lo; p < hi; p++ {
		item := int(s.keys[p].idx)
		s.order[p] = item
		s.pos[item] = p
	}
}

// searchKeys returns the position where k belongs in the (sorted) keys.
func (s *Spliced) searchKeys(k scoredIdx) int {
	return sort.Search(len(s.keys), func(i int) bool {
		return cmpScored(s.keys[i], k) >= 0
	})
}

// Update sets item's score and splices it into place. It reports whether the
// operation was resolved by splicing (true) or fell back to a full re-sort
// because the new key ties an existing one (false).
func (s *Spliced) Update(item int, score float64) bool {
	nk := scoredIdx{key: sortKey(score), idx: int32(item)}
	p := s.pos[item]
	if s.keys[p] == nk {
		s.spliced++
		return true
	}
	// Remove the stale key, then binary-search the new position in the
	// remaining sorted keys.
	copy(s.keys[p:], s.keys[p+1:])
	s.keys = s.keys[:len(s.keys)-1]
	t := s.searchKeys(nk)
	tie := (t > 0 && s.keys[t-1].key == nk.key) || (t < len(s.keys) && s.keys[t].key == nk.key)
	s.keys = append(s.keys, scoredIdx{})
	copy(s.keys[t+1:], s.keys[t:])
	s.keys[t] = nk
	if tie {
		// Ambiguous on score: re-establish the order canonically. The sort is
		// a semantic no-op (the index tie-break already fixed the position)
		// but guarantees the state matches a rebuild bit for bit.
		s.resorted++
		s.sortAll()
		return false
	}
	s.spliced++
	lo, hi := p, t
	if lo > hi {
		lo, hi = hi, lo
	}
	s.reindex(lo, hi+1)
	return true
}

// Add appends a new item (index Len()) with the given score and splices it
// into place, with the same splice/re-sort contract as Update.
func (s *Spliced) Add(score float64) bool {
	item := len(s.order)
	nk := scoredIdx{key: sortKey(score), idx: int32(item)}
	t := s.searchKeys(nk)
	tie := (t > 0 && s.keys[t-1].key == nk.key) || (t < len(s.keys) && s.keys[t].key == nk.key)
	s.keys = append(s.keys, scoredIdx{})
	copy(s.keys[t+1:], s.keys[t:])
	s.keys[t] = nk
	s.order = append(s.order, 0)
	s.pos = append(s.pos, 0)
	if tie {
		s.resorted++
		s.sortAll()
		return false
	}
	s.spliced++
	s.reindex(t, len(s.keys))
	return true
}

// Remove deletes item, shifting the indices of all later items down by one
// (matching dataset item removal). Shifting indices preserves the relative
// order within every key-tie group, so removal never needs a re-sort.
func (s *Spliced) Remove(item int) {
	p := s.pos[item]
	copy(s.keys[p:], s.keys[p+1:])
	s.keys = s.keys[:len(s.keys)-1]
	for i := range s.keys {
		if int(s.keys[i].idx) > item {
			s.keys[i].idx--
		}
	}
	s.order = s.order[:len(s.order)-1]
	s.pos = s.pos[:len(s.pos)-1]
	s.spliced++
	s.reindex(0, len(s.keys))
}

// check panics if the internal invariants are violated; used by tests.
func (s *Spliced) check() {
	if len(s.keys) != len(s.order) || len(s.order) != len(s.pos) {
		panic(fmt.Sprintf("rank: spliced length mismatch: %d keys, %d order, %d pos",
			len(s.keys), len(s.order), len(s.pos)))
	}
	for p := 1; p < len(s.keys); p++ {
		if cmpScored(s.keys[p-1], s.keys[p]) >= 0 {
			panic(fmt.Sprintf("rank: spliced keys out of order at %d", p))
		}
	}
	for p, item := range s.order {
		if s.pos[item] != p || int(s.keys[p].idx) != item {
			panic(fmt.Sprintf("rank: spliced order/pos mismatch at %d", p))
		}
	}
}
