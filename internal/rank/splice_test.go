package rank

import (
	"math/rand"
	"testing"
)

// refSpliced builds the state from scratch over the scores — the oracle the
// spliced state must match bit for bit.
func refSpliced(scores []float64) *Spliced { return NewSpliced(scores) }

func requireSameOrder(t *testing.T, got, want *Spliced) {
	t.Helper()
	if len(got.order) != len(want.order) {
		t.Fatalf("order length %d, want %d", len(got.order), len(want.order))
	}
	for i := range got.order {
		if got.order[i] != want.order[i] || got.keys[i] != want.keys[i] {
			t.Fatalf("position %d: got item %d key %x, want item %d key %x",
				i, got.order[i], got.keys[i].key, want.order[i], want.keys[i].key)
		}
	}
	if got.Hash() != want.Hash() {
		t.Fatalf("hash mismatch: %x vs %x", got.Hash(), want.Hash())
	}
}

// TestSplicedMatchesResort drives a long random sequence of updates, adds and
// removes — with a tie-heavy score distribution — and checks after every
// operation that the spliced state equals a from-scratch rebuild.
func TestSplicedMatchesResort(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		scores := make([]float64, 32)
		drawScore := func() float64 {
			// Half the draws land on a tiny integer grid to force key ties
			// (including exact 0, exercising the ±0 collapse).
			if rng.Intn(2) == 0 {
				return float64(rng.Intn(4))
			}
			return rng.NormFloat64()
		}
		for i := range scores {
			scores[i] = drawScore()
		}
		s := NewSpliced(scores)
		s.check()
		requireSameOrder(t, s, refSpliced(scores))
		for step := 0; step < 400; step++ {
			switch op := rng.Intn(3); {
			case op == 0 && len(scores) > 1:
				item := rng.Intn(len(scores))
				s.Remove(item)
				scores = append(scores[:item], scores[item+1:]...)
			case op == 1:
				scores = append(scores, drawScore())
				s.Add(scores[len(scores)-1])
			default:
				item := rng.Intn(len(scores))
				scores[item] = drawScore()
				s.Update(item, scores[item])
			}
			s.check()
			requireSameOrder(t, s, refSpliced(scores))
		}
		spliced, resorted := s.Counters()
		if spliced == 0 {
			t.Fatalf("seed %d: no operations spliced", seed)
		}
		if resorted == 0 {
			t.Fatalf("seed %d: tie-heavy scores never forced a re-sort", seed)
		}
	}
}

// TestSplicedMatchesComputer pins the spliced order against the Computer's
// full sort over the same scores (shared comparator, shared keys).
func TestSplicedMatchesComputer(t *testing.T) {
	scores := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 0, -0.0, 2}
	s := NewSpliced(scores)
	// Computer sorts scoredIdx the same way; replicate its key build.
	want := refSpliced(scores)
	requireSameOrder(t, s, want)
	// An in-place update to the identical score must be a no-op splice.
	before := s.Hash()
	if !s.Update(3, scores[3]) {
		t.Fatal("same-score update should splice")
	}
	if s.Hash() != before {
		t.Fatal("same-score update changed the order")
	}
}

func TestSplicedClone(t *testing.T) {
	s := NewSpliced([]float64{2, 1, 3})
	c := s.Clone()
	c.Update(0, -10)
	if s.order[0] != 2 || s.order[2] != 1 {
		t.Fatalf("clone mutation leaked into original: %v", s.order)
	}
	sp, _ := s.Counters()
	csp, _ := c.Counters()
	if sp != 0 || csp != 1 {
		t.Fatalf("counters not independent: %d vs %d", sp, csp)
	}
}
