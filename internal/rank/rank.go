// Package rank implements rankings induced by linear scoring functions
// (Definition 1 and the ranking operator of Section 2.1.1), with the
// deterministic tie-breaking the paper requires, plus the partial-ranking
// keys used by the randomized top-k operators (Section 4.5.1) and classical
// rank-distance measures used in the experiment reports.
package rank

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strconv"
	"strings"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/vecmat"
)

// Ranking is a permutation of item indices, best first. It is produced by
// scoring every item with a weight vector and sorting descending, breaking
// ties consistently by item index (a proxy for the paper's "item
// identifier" tie-break).
type Ranking struct {
	Order []int
}

// Compute returns the ranking of the dataset induced by the weight vector w.
// It is the operator named nabla_f(D) in the paper. It delegates to a
// one-shot Computer so the sort and tie-break logic exists in exactly one
// place; loops ranking the same dataset repeatedly should hold their own
// Computer to amortize its buffers.
func Compute(ds *dataset.Dataset, w geom.Vector) Ranking {
	return NewComputer(ds).Compute(w).Clone()
}

// Computer ranks one dataset repeatedly without allocating: the item
// attributes live in a contiguous row-major matrix (one dot-product sweep
// scores every item), and the sort is an argsort over precomputed order
// keys in reused buffers. The Monte-Carlo operators rank the same dataset
// tens of thousands of times, so Compute performs zero allocations per
// call.
type Computer struct {
	ds     *dataset.Dataset
	attrs  vecmat.Matrix // n x d contiguous copy of the item attributes
	order  []int
	scores []float64
	keys   []scoredIdx
}

// scoredIdx is one argsort element: a precomputed order key (ascending key
// = descending score; see sortKey) plus the item index as tie-break.
type scoredIdx struct {
	key uint64
	idx int32
}

// NewComputer returns a reusable ranking computer over ds.
func NewComputer(ds *dataset.Dataset) *Computer {
	n := ds.N()
	attrs := vecmat.New(n, ds.D())
	for i := 0; i < n; i++ {
		attrs.SetRow(i, ds.Attrs(i))
	}
	return &Computer{
		ds:     ds,
		attrs:  attrs,
		order:  make([]int, n),
		scores: make([]float64, n),
		keys:   make([]scoredIdx, n),
	}
}

// scoreAll fills c.scores with w . attrs for every item in one contiguous
// sweep. The per-item accumulation order matches dataset.Score bit for bit.
func (c *Computer) scoreAll(w geom.Vector) {
	c.attrs.MulVec(w, c.scores)
}

// sortKey maps a score to a uint64 whose ascending order is descending
// score order: the standard sign-flip trick makes float bits monotonic,
// and complementing reverses the direction. Both zeros collapse to one key
// so -0.0 and +0.0 tie (and fall through to the index tie-break), exactly
// like the == comparison of the historical comparator.
func sortKey(f float64) uint64 {
	if f == 0 {
		return ^(uint64(1) << 63)
	}
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		b = ^b
	} else {
		b |= 1 << 63
	}
	return ^b
}

// Compute returns the ranking induced by w. The returned slice is owned by
// the computer and overwritten on the next call; callers needing to retain
// it must copy (or use Ranking.Clone).
func (c *Computer) Compute(w geom.Vector) Ranking {
	c.scoreAll(w)
	for i, s := range c.scores {
		c.keys[i] = scoredIdx{key: sortKey(s), idx: int32(i)}
	}
	slices.SortFunc(c.keys, cmpScored)
	for i, p := range c.keys {
		c.order[i] = int(p.idx)
	}
	return Ranking{Order: c.order}
}

// TopK returns the first k entries of the ranking order; the computer owns
// the storage (see Compute).
func (c *Computer) TopK(w geom.Vector, k int) []int {
	if k > len(c.order) {
		k = len(c.order)
	}
	return c.Compute(w).Order[:k]
}

// Clone returns an independent copy of the ranking.
func (r Ranking) Clone() Ranking {
	o := make([]int, len(r.Order))
	copy(o, r.Order)
	return Ranking{Order: o}
}

// Equal reports whether two rankings order items identically.
func (r Ranking) Equal(s Ranking) bool {
	if len(r.Order) != len(s.Order) {
		return false
	}
	for i := range r.Order {
		if r.Order[i] != s.Order[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string key identifying the complete ranking, for use
// as a hash-map key in the Monte-Carlo counters (Algorithms 7 and 8).
func (r Ranking) Key() string { return encodeIndices(r.Order) }

// TopKRankedKey returns a key identifying the ordered top-k prefix: two
// weight vectors share it iff they select the same top-k items in the same
// order (the "ranked top-k" semantics of Section 4.5.1).
func (r Ranking) TopKRankedKey(k int) string {
	if k > len(r.Order) {
		k = len(r.Order)
	}
	return encodeIndices(r.Order[:k])
}

// TopKSetKey returns a key identifying the unordered top-k set: two weight
// vectors share it iff they select the same set of top-k items in any order
// (the "top-k set" semantics of Section 4.5.1).
func (r Ranking) TopKSetKey(k int) string {
	if k > len(r.Order) {
		k = len(r.Order)
	}
	top := make([]int, k)
	copy(top, r.Order[:k])
	sort.Ints(top)
	return encodeIndices(top)
}

func encodeIndices(idx []int) string {
	var b strings.Builder
	b.Grow(len(idx) * 4)
	for i, v := range idx {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// DecodeKey parses a key produced by Key/TopK*Key back into item indices.
func DecodeKey(key string) ([]int, error) {
	if key == "" {
		return nil, nil
	}
	parts := strings.Split(key, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("rank: bad key %q: %w", key, err)
		}
		out[i] = v
	}
	return out, nil
}

// PositionOf returns the 1-based rank of item idx in the ranking, or 0 if it
// does not appear.
func (r Ranking) PositionOf(idx int) int {
	for pos, v := range r.Order {
		if v == idx {
			return pos + 1
		}
	}
	return 0
}

// Describe formats the ranking as item IDs, best first, up to limit entries
// (limit <= 0 means all).
func (r Ranking) Describe(ds *dataset.Dataset, limit int) string {
	n := len(r.Order)
	if limit > 0 && limit < n {
		n = limit
	}
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = ds.Item(r.Order[i]).ID
	}
	s := strings.Join(ids, " > ")
	if n < len(r.Order) {
		s += " > ..."
	}
	return s
}
