// Package rank implements rankings induced by linear scoring functions
// (Definition 1 and the ranking operator of Section 2.1.1), with the
// deterministic tie-breaking the paper requires, plus the partial-ranking
// keys used by the randomized top-k operators (Section 4.5.1) and classical
// rank-distance measures used in the experiment reports.
package rank

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
)

// Ranking is a permutation of item indices, best first. It is produced by
// scoring every item with a weight vector and sorting descending, breaking
// ties consistently by item index (a proxy for the paper's "item
// identifier" tie-break).
type Ranking struct {
	Order []int
}

// Compute returns the ranking of the dataset induced by the weight vector w.
// It is the operator named nabla_f(D) in the paper.
func Compute(ds *dataset.Dataset, w geom.Vector) Ranking {
	r := Ranking{Order: make([]int, ds.N())}
	scores := make([]float64, ds.N())
	for i := range r.Order {
		r.Order[i] = i
		scores[i] = ds.Score(w, i)
	}
	sort.SliceStable(r.Order, func(a, b int) bool {
		ia, ib := r.Order[a], r.Order[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return ia < ib
	})
	return r
}

// buffersFor reuses allocations across repeated Compute calls; the Monte-
// Carlo operators rank the same dataset tens of thousands of times.
type Computer struct {
	ds     *dataset.Dataset
	order  []int
	scores []float64
}

// NewComputer returns a reusable ranking computer over ds.
func NewComputer(ds *dataset.Dataset) *Computer {
	return &Computer{
		ds:     ds,
		order:  make([]int, ds.N()),
		scores: make([]float64, ds.N()),
	}
}

// Compute returns the ranking induced by w. The returned slice is owned by
// the computer and overwritten on the next call; callers needing to retain
// it must copy (or use Ranking.Clone).
func (c *Computer) Compute(w geom.Vector) Ranking {
	for i := range c.order {
		c.order[i] = i
		c.scores[i] = c.ds.Score(w, i)
	}
	sort.SliceStable(c.order, func(a, b int) bool {
		ia, ib := c.order[a], c.order[b]
		if c.scores[ia] != c.scores[ib] {
			return c.scores[ia] > c.scores[ib]
		}
		return ia < ib
	})
	return Ranking{Order: c.order}
}

// TopK returns the first k entries of the ranking order; the computer owns
// the storage (see Compute).
func (c *Computer) TopK(w geom.Vector, k int) []int {
	if k > len(c.order) {
		k = len(c.order)
	}
	return c.Compute(w).Order[:k]
}

// Clone returns an independent copy of the ranking.
func (r Ranking) Clone() Ranking {
	o := make([]int, len(r.Order))
	copy(o, r.Order)
	return Ranking{Order: o}
}

// Equal reports whether two rankings order items identically.
func (r Ranking) Equal(s Ranking) bool {
	if len(r.Order) != len(s.Order) {
		return false
	}
	for i := range r.Order {
		if r.Order[i] != s.Order[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string key identifying the complete ranking, for use
// as a hash-map key in the Monte-Carlo counters (Algorithms 7 and 8).
func (r Ranking) Key() string { return encodeIndices(r.Order) }

// TopKRankedKey returns a key identifying the ordered top-k prefix: two
// weight vectors share it iff they select the same top-k items in the same
// order (the "ranked top-k" semantics of Section 4.5.1).
func (r Ranking) TopKRankedKey(k int) string {
	if k > len(r.Order) {
		k = len(r.Order)
	}
	return encodeIndices(r.Order[:k])
}

// TopKSetKey returns a key identifying the unordered top-k set: two weight
// vectors share it iff they select the same set of top-k items in any order
// (the "top-k set" semantics of Section 4.5.1).
func (r Ranking) TopKSetKey(k int) string {
	if k > len(r.Order) {
		k = len(r.Order)
	}
	top := make([]int, k)
	copy(top, r.Order[:k])
	sort.Ints(top)
	return encodeIndices(top)
}

func encodeIndices(idx []int) string {
	var b strings.Builder
	b.Grow(len(idx) * 4)
	for i, v := range idx {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// DecodeKey parses a key produced by Key/TopK*Key back into item indices.
func DecodeKey(key string) ([]int, error) {
	if key == "" {
		return nil, nil
	}
	parts := strings.Split(key, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("rank: bad key %q: %w", key, err)
		}
		out[i] = v
	}
	return out, nil
}

// PositionOf returns the 1-based rank of item idx in the ranking, or 0 if it
// does not appear.
func (r Ranking) PositionOf(idx int) int {
	for pos, v := range r.Order {
		if v == idx {
			return pos + 1
		}
	}
	return 0
}

// Describe formats the ranking as item IDs, best first, up to limit entries
// (limit <= 0 means all).
func (r Ranking) Describe(ds *dataset.Dataset, limit int) string {
	n := len(r.Order)
	if limit > 0 && limit < n {
		n = limit
	}
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = ds.Item(r.Order[i]).ID
	}
	s := strings.Join(ids, " > ")
	if n < len(r.Order) {
		s += " > ..."
	}
	return s
}
