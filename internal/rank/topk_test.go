package rank

import (
	"math/rand"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
)

func TestTopKSelectMatchesFullSort(t *testing.T) {
	rr := rand.New(rand.NewSource(161))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rr.Intn(200)
		d := 2 + rr.Intn(3)
		ds := dataset.MustNew(d)
		for i := 0; i < n; i++ {
			v := make([]float64, d)
			for j := range v {
				v[j] = rr.Float64()
			}
			ds.MustAdd("", v...)
		}
		c := NewComputer(ds)
		w := make(geom.Vector, d)
		for j := range w {
			w[j] = rr.Float64() + 0.01
		}
		full := Compute(ds, w)
		for _, k := range []int{1, 2, n / 2, n - 1, n, n + 10} {
			if k < 1 {
				continue
			}
			sel := c.TopKSelect(w, k)
			kk := k
			if kk > n {
				kk = n
			}
			if len(sel) != kk {
				t.Fatalf("n=%d k=%d: selection length %d", n, k, len(sel))
			}
			for i := 0; i < kk; i++ {
				if sel[i] != full.Order[i] {
					t.Fatalf("n=%d k=%d pos %d: selected %d, full sort %d",
						n, k, i, sel[i], full.Order[i])
				}
			}
		}
	}
}

func TestTopKSelectWithTies(t *testing.T) {
	ds := dataset.MustNew(2)
	// All items tie under w = (1, 1).
	ds.MustAdd("a", 0.6, 0.4)
	ds.MustAdd("b", 0.4, 0.6)
	ds.MustAdd("c", 0.5, 0.5)
	ds.MustAdd("d", 0.3, 0.7)
	c := NewComputer(ds)
	w := geom.Vector{1, 1}
	full := Compute(ds, w)
	sel := c.TopKSelect(w, 2)
	for i := 0; i < 2; i++ {
		if sel[i] != full.Order[i] {
			t.Fatalf("tie-break mismatch at %d: %d vs %d", i, sel[i], full.Order[i])
		}
	}
}

func TestTopKSelectZeroK(t *testing.T) {
	ds := dataset.Figure1()
	c := NewComputer(ds)
	if got := c.TopKSelect(geom.Vector{1, 1}, 0); len(got) != 0 {
		t.Errorf("k=0 selection length %d", len(got))
	}
}

func TestTopKKeyHelpers(t *testing.T) {
	rr := rand.New(rand.NewSource(162))
	ds := dataset.MustNew(3)
	for i := 0; i < 60; i++ {
		ds.MustAdd("", rr.Float64(), rr.Float64(), rr.Float64())
	}
	c := NewComputer(ds)
	for trial := 0; trial < 30; trial++ {
		w := geom.Vector{rr.Float64() + 0.01, rr.Float64() + 0.01, rr.Float64() + 0.01}
		k := 1 + rr.Intn(10)
		full := Compute(ds, w)
		if got, want := c.TopKRankedKeyOf(w, k), full.TopKRankedKey(k); got != want {
			t.Fatalf("ranked key %q != %q", got, want)
		}
		if got, want := c.TopKSetKeyOf(w, k), full.TopKSetKey(k); got != want {
			t.Fatalf("set key %q != %q", got, want)
		}
	}
}

func BenchmarkTopKSelectVsFullSort(b *testing.B) {
	rr := rand.New(rand.NewSource(163))
	ds := dataset.MustNew(3)
	for i := 0; i < 100_000; i++ {
		ds.MustAdd("", rr.Float64(), rr.Float64(), rr.Float64())
	}
	w := geom.Vector{1, 1, 1}
	b.Run("select-k10", func(b *testing.B) {
		c := NewComputer(ds)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.TopKSelect(w, 10)
		}
	})
	b.Run("full-sort", func(b *testing.B) {
		c := NewComputer(ds)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Compute(w)
		}
	})
}
