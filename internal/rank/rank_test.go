package rank

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
)

func TestComputeFigure1(t *testing.T) {
	// Figure 1b: under f = x1 + x2 the ranking is t2, t4, t3, t5, t1.
	ds := dataset.Figure1()
	r := Compute(ds, geom.Vector{1, 1})
	want := []int{1, 3, 2, 4, 0}
	if !r.Equal(Ranking{Order: want}) {
		t.Errorf("ranking = %v, want %v", r.Order, want)
	}
	// Extreme function x1 only: order by first attribute.
	r1 := Compute(ds, geom.Vector{1, 0})
	want1 := []int{1, 3, 0, 2, 4}
	if !r1.Equal(Ranking{Order: want1}) {
		t.Errorf("x1 ranking = %v, want %v", r1.Order, want1)
	}
	// Extreme function x2 only.
	r2 := Compute(ds, geom.Vector{0, 1})
	want2 := []int{4, 2, 0, 3, 1}
	if !r2.Equal(Ranking{Order: want2}) {
		t.Errorf("x2 ranking = %v, want %v", r2.Order, want2)
	}
}

func TestComputeTieBreaksByIndex(t *testing.T) {
	ds := dataset.MustNew(2)
	ds.MustAdd("a", 1, 0)
	ds.MustAdd("b", 0, 1)
	ds.MustAdd("c", 0.5, 0.5)
	r := Compute(ds, geom.Vector{1, 1})
	want := []int{0, 1, 2}
	if !r.Equal(Ranking{Order: want}) {
		t.Errorf("tied ranking = %v, want index order %v", r.Order, want)
	}
}

func TestComputeScaleInvariance(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(41))}
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 2 + rr.Intn(3)
		ds := dataset.MustNew(d)
		for i := 0; i < 20; i++ {
			v := make([]float64, d)
			for j := range v {
				v[j] = rr.Float64()
			}
			ds.MustAdd("", v...)
		}
		w := make(geom.Vector, d)
		for j := range w {
			w[j] = rr.Float64() + 0.01
		}
		r1 := Compute(ds, w)
		r2 := Compute(ds, w.Scale(7.3))
		return r1.Equal(r2)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestComputerMatchesCompute(t *testing.T) {
	rr := rand.New(rand.NewSource(42))
	ds := dataset.MustNew(3)
	for i := 0; i < 100; i++ {
		ds.MustAdd("", rr.Float64(), rr.Float64(), rr.Float64())
	}
	c := NewComputer(ds)
	for trial := 0; trial < 50; trial++ {
		w := geom.Vector{rr.Float64(), rr.Float64(), rr.Float64()}
		got := c.Compute(w)
		want := Compute(ds, w)
		if !got.Equal(want) {
			t.Fatalf("computer mismatch at trial %d", trial)
		}
	}
	top := c.TopK(geom.Vector{1, 1, 1}, 5)
	if len(top) != 5 {
		t.Errorf("TopK length = %d", len(top))
	}
	if got := c.TopK(geom.Vector{1, 1, 1}, 1000); len(got) != ds.N() {
		t.Errorf("oversized TopK length = %d", len(got))
	}
}

func TestKeys(t *testing.T) {
	r := Ranking{Order: []int{3, 1, 4, 0, 2}}
	if r.Key() != "3,1,4,0,2" {
		t.Errorf("Key = %q", r.Key())
	}
	if r.TopKRankedKey(3) != "3,1,4" {
		t.Errorf("TopKRankedKey = %q", r.TopKRankedKey(3))
	}
	if r.TopKSetKey(3) != "1,3,4" {
		t.Errorf("TopKSetKey = %q", r.TopKSetKey(3))
	}
	// Set key ignores order: a different permutation of the same top-3.
	s := Ranking{Order: []int{4, 3, 1, 2, 0}}
	if r.TopKSetKey(3) != s.TopKSetKey(3) {
		t.Error("set keys of same top-3 sets differ")
	}
	if r.TopKRankedKey(3) == s.TopKRankedKey(3) {
		t.Error("ranked keys of different orders collide")
	}
	// Oversized k clamps.
	if r.TopKRankedKey(99) != r.Key() {
		t.Error("oversized k should equal full key")
	}
}

func TestDecodeKey(t *testing.T) {
	idx, err := DecodeKey("3,1,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 3 || idx[0] != 3 || idx[2] != 4 {
		t.Errorf("DecodeKey = %v", idx)
	}
	if _, err := DecodeKey("1,x"); err == nil {
		t.Error("bad key accepted")
	}
	if idx, err := DecodeKey(""); err != nil || idx != nil {
		t.Errorf("empty key = %v, %v", idx, err)
	}
}

func TestPositionOf(t *testing.T) {
	r := Ranking{Order: []int{3, 1, 4}}
	if r.PositionOf(1) != 2 {
		t.Error("PositionOf(1) != 2")
	}
	if r.PositionOf(9) != 0 {
		t.Error("missing item should return 0")
	}
}

func TestDescribe(t *testing.T) {
	ds := dataset.Figure1()
	r := Compute(ds, geom.Vector{1, 1})
	if got := r.Describe(ds, 3); got != "t2 > t4 > t3 > ..." {
		t.Errorf("Describe = %q", got)
	}
	if got := r.Describe(ds, 0); got != "t2 > t4 > t3 > t5 > t1" {
		t.Errorf("full Describe = %q", got)
	}
}

func TestKendallTau(t *testing.T) {
	a := Ranking{Order: []int{0, 1, 2, 3}}
	tests := []struct {
		name string
		b    []int
		want int
	}{
		{"identical", []int{0, 1, 2, 3}, 0},
		{"one swap", []int{1, 0, 2, 3}, 1},
		{"reversed", []int{3, 2, 1, 0}, 6},
		{"rotation", []int{1, 2, 3, 0}, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := KendallTau(a, Ranking{Order: tc.b})
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("KendallTau = %d, want %d", got, tc.want)
			}
		})
	}
	if _, err := KendallTau(a, Ranking{Order: []int{0, 1}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := KendallTau(a, Ranking{Order: []int{0, 1, 2, 9}}); err == nil {
		t.Error("different item set accepted")
	}
	if _, err := KendallTau(a, Ranking{Order: []int{0, 1, 2, 2}}); err == nil {
		t.Error("duplicate items accepted")
	}
}

func TestKendallTauAgainstBruteForce(t *testing.T) {
	rr := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rr.Intn(30)
		a := Ranking{Order: rr.Perm(n)}
		b := Ranking{Order: rr.Perm(n)}
		got, err := KendallTau(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: count discordant pairs.
		posA := make([]int, n)
		posB := make([]int, n)
		for i, v := range a.Order {
			posA[v] = i
		}
		for i, v := range b.Order {
			posB[v] = i
		}
		want := 0
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				if (posA[x] < posA[y]) != (posB[x] < posB[y]) {
					want++
				}
			}
		}
		if got != want {
			t.Fatalf("n=%d KendallTau = %d, brute force %d", n, got, want)
		}
	}
}

func TestKendallTauMetricProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(44))}
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(15)
		a := Ranking{Order: rr.Perm(n)}
		b := Ranking{Order: rr.Perm(n)}
		c := Ranking{Order: rr.Perm(n)}
		dab, _ := KendallTau(a, b)
		dba, _ := KendallTau(b, a)
		if dab != dba {
			return false // symmetry
		}
		daa, _ := KendallTau(a, a)
		if daa != 0 {
			return false // identity
		}
		dac, _ := KendallTau(a, c)
		dcb, _ := KendallTau(c, b)
		return dab <= dac+dcb // triangle inequality
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestKendallTauNormalized(t *testing.T) {
	a := Ranking{Order: []int{0, 1, 2, 3}}
	b := Ranking{Order: []int{3, 2, 1, 0}}
	got, err := KendallTauNormalized(a, b)
	if err != nil || got != 1 {
		t.Errorf("normalized reversed = %v, %v", got, err)
	}
	one := Ranking{Order: []int{0}}
	if got, err := KendallTauNormalized(one, one); err != nil || got != 0 {
		t.Errorf("singleton = %v, %v", got, err)
	}
}

func TestSpearmanFootrule(t *testing.T) {
	a := Ranking{Order: []int{0, 1, 2}}
	b := Ranking{Order: []int{2, 1, 0}}
	got, err := SpearmanFootrule(a, b)
	if err != nil || got != 4 {
		t.Errorf("footrule = %d, %v; want 4", got, err)
	}
	if _, err := SpearmanFootrule(a, Ranking{Order: []int{0, 1}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SpearmanFootrule(a, Ranking{Order: []int{0, 1, 1}}); err == nil {
		t.Error("duplicates accepted")
	}
	if _, err := SpearmanFootrule(a, Ranking{Order: []int{0, 1, 9}}); err == nil {
		t.Error("foreign item accepted")
	}
}

func TestMaxDisplacement(t *testing.T) {
	a := Ranking{Order: []int{0, 1, 2, 3}}
	b := Ranking{Order: []int{1, 2, 3, 0}}
	item, delta, err := MaxDisplacement(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if item != 0 || delta != 3 {
		t.Errorf("MaxDisplacement = item %d delta %d, want item 0 delta 3", item, delta)
	}
	if _, _, err := MaxDisplacement(a, Ranking{Order: []int{0}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := MaxDisplacement(a, Ranking{Order: []int{0, 1, 2, 9}}); err == nil {
		t.Error("foreign item accepted")
	}
}
