package plan

import (
	"context"
	"runtime"
	"sync"

	"stablerank/internal/md"
	"stablerank/internal/vecmat"
)

// Adaptive verification: instead of always consuming the entire sample pool,
// sweep it in growing chunks and stop each verify query as soon as the
// confidence half-width of its running estimate (Equation 10 over the rows
// seen so far) reaches the caller's target. The pool rows are an iid draw,
// so any prefix is itself an unbiased sample and the prefix estimate carries
// the usual CLT guarantee at its own sample size.
//
// Determinism: chunk boundaries depend only on the pool size — never on the
// worker count — and each chunk accumulates exact integer counts, so the
// stopping row and the reported estimate are identical for every worker
// count at a fixed seed. A query that never clears its target consumes the
// whole pool and reports exactly the full-sweep answer (Adaptive = false).

const (
	// adaptiveChunkMin is the first chunk size: the smallest prefix on which
	// a confidence interval is ever consulted, and the floor on rows any
	// adaptive answer is based on.
	adaptiveChunkMin = sweepBlock
	// adaptiveChunkMax caps the doubling chunk schedule so stopping
	// opportunities keep a bounded spacing on large pools.
	adaptiveChunkMax = 16 * sweepBlock
)

// adaptiveSweep answers the verify queries with early stopping. It mirrors
// fusedSweep's failure contract: per-ranking infeasibility lands in the
// matching Outcome.Err, and only cancellation fails the call (clearing every
// partial verify outcome).
func adaptiveSweep(ctx context.Context, env *Env, pool vecmat.Matrix, queries []Query, verifyIdx []int, out []Outcome) error {
	type liveVerify struct {
		qi    int
		cons  vecmat.Matrix
		count int
	}
	live := make([]liveVerify, 0, len(verifyIdx))
	for _, i := range verifyIdx {
		q := queries[i].(VerifyQuery)
		m, constraints, err := md.ConstraintMatrix(env.DS, q.Ranking)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Verify = &Verification{Constraints: constraints}
		live = append(live, liveVerify{qi: i, cons: m})
	}
	if len(live) == 0 {
		return nil
	}
	if env.OnSweep != nil {
		env.OnSweep()
	}
	workers := env.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	rows := pool.Rows()
	grouped, starts := concatLive(env, live, func(v *liveVerify) vecmat.Matrix { return v.cons })
	counts := make([]int, len(live))
	pos, chunk := 0, adaptiveChunkMin
	for pos < rows && len(live) > 0 {
		if err := ctx.Err(); err != nil {
			for _, i := range verifyIdx {
				out[i].Verify = nil
			}
			return err
		}
		hi := min(pos+chunk, rows)
		countChunkGrouped(grouped, starts, pool, pos, hi, workers, counts)
		pos = hi
		if chunk < adaptiveChunkMax {
			chunk *= 2
		}

		// Consult the confidence interval at the fixed chunk boundary and
		// retire every query whose half-width has reached the target.
		survivors := live[:0]
		done := false
		for li := range live {
			v := live[li]
			v.count = counts[li]
			est := float64(v.count) / float64(pos)
			ci := env.Confidence(est, pos)
			if ci <= env.AdaptiveError && pos < rows {
				o := out[v.qi].Verify
				o.Stability = est
				o.ConfidenceError = ci
				o.SampleCount = pos
				o.Adaptive = true
				if env.OnAdaptiveStop != nil {
					env.OnAdaptiveStop(pos, rows)
				}
				done = true
				continue
			}
			survivors = append(survivors, v)
		}
		live = survivors
		if done && len(live) > 0 {
			// Compact the concatenated constraint matrix to the survivors so
			// retired queries stop costing dot products.
			grouped, starts = concatLive(env, live, func(v *liveVerify) vecmat.Matrix { return v.cons })
			counts = counts[:len(live)]
			for li := range live {
				counts[li] = live[li].count
			}
		}
	}
	// Whatever is still live consumed the entire pool: report exactly the
	// full-sweep answer.
	for li := range live {
		v := live[li]
		est := float64(counts[li]) / float64(rows)
		o := out[v.qi].Verify
		o.Stability = est
		o.ConfidenceError = env.Confidence(est, rows)
		o.SampleCount = rows
	}
	return nil
}

// concatLive rebuilds the concatenated constraint matrix for the surviving
// live set.
func concatLive[T any](env *Env, live []T, cons func(*T) vecmat.Matrix) (vecmat.Matrix, []int) {
	mats := make([]vecmat.Matrix, len(live))
	for i := range live {
		mats[i] = cons(&live[i])
	}
	return vecmat.ConcatGroups(env.DS.D(), mats)
}

// countChunkGrouped accumulates grouped membership counts for pool rows
// [lo, hi) into counts, sharding large chunks across workers. The shards are
// contiguous sub-ranges whose integer counts are summed, so the result is
// identical for every worker count.
func countChunkGrouped(grouped vecmat.Matrix, starts []int, pool vecmat.Matrix, lo, hi, workers int, counts []int) {
	n := hi - lo
	if w := n / sweepBlock; workers > w {
		workers = w
	}
	if workers <= 1 {
		vecmat.CountInsideGrouped(grouped, starts, pool, lo, hi, counts)
		return
	}
	part := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wlo := lo + w*n/workers
		whi := lo + (w+1)*n/workers
		local := make([]int, len(counts))
		part[w] = local
		wg.Add(1)
		go func(wlo, whi int, local []int) {
			defer wg.Done()
			vecmat.CountInsideGrouped(grouped, starts, pool, wlo, whi, local)
		}(wlo, whi, local)
	}
	wg.Wait()
	for _, local := range part {
		for i, c := range local {
			counts[i] += c
		}
	}
}
