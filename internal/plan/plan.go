// Package plan turns a heterogeneous list of stability queries into a
// shared execution plan. The paper's operations — stability verification
// (Problem 1), top-h and above-threshold enumeration (Problem 2), iterative
// enumeration (Problem 3), item-rank distributions (Example 1) and boundary
// facets (Section 8) — are all questions about the ranking distribution a
// region of scoring functions induces, so a batch of them can share the
// expensive machinery instead of re-running it per call:
//
//   - every verify and item-rank query is answered by ONE fused sweep of the
//     Monte-Carlo sample pool (generalizing the verify-only batch sweep to
//     mixed query sets), and
//   - every enumeration-shaped query (top-h, above-threshold, enumerate) is
//     answered from ONE cursor driven to the deepest demand, each query
//     taking a prefix of that single pass.
//
// The package is deliberately mechanism-free: it owns grouping and the fused
// sweep, while the Env callbacks supplied by internal/core own pool
// construction, cursor creation and confidence arithmetic. Results are
// deterministic for a fixed seed regardless of worker count — the sweep
// accumulates exact integer counts, so shard order cannot change them.
package plan

import (
	"context"
	"fmt"
	"math"

	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/mc"
	"stablerank/internal/md"
	"stablerank/internal/rank"
	"stablerank/internal/sampling"
	"stablerank/internal/twod"
	"stablerank/internal/vecmat"
)

// Query is the sealed union of stability questions. The concrete types are
// VerifyQuery, TopHQuery, AboveQuery, ItemRankQuery, BoundaryQuery and
// EnumerateQuery; external packages cannot add cases, which lets Exec treat
// an unknown dynamic type as a caller bug rather than silently skipping it.
type Query interface{ isQuery() }

// VerifyQuery asks for the stability of one ranking (Problem 1).
type VerifyQuery struct {
	// Ranking is the full ranking whose stability is requested.
	Ranking rank.Ranking
}

// TopHQuery asks for the H most stable rankings (Problem 2, count form).
type TopHQuery struct {
	// H is the number of rankings requested; H <= 0 yields none.
	H int
}

// AboveQuery asks for every ranking with stability >= Threshold (Problem 2,
// threshold form), in decreasing stability order.
type AboveQuery struct {
	Threshold float64
}

// ItemRankQuery asks for the rank distribution of one item across sampled
// scoring functions (Example 1 in distributional form).
type ItemRankQuery struct {
	// Item is the dataset index analyzed.
	Item int
	// Samples is the number of scoring-function samples; <= 0 uses the
	// analyzer's configured sample-pool size. When Samples fits in the shared
	// pool the distribution is computed inside the fused sweep (over the pool
	// prefix of that length); larger requests fall back to a dedicated
	// deterministic sampler stream.
	Samples int
}

// BoundaryQuery asks for the non-redundant boundary facets of one ranking's
// region (Section 8).
type BoundaryQuery struct {
	Ranking rank.Ranking
}

// EnumerateQuery asks for the Limit most stable rankings, or every ranking
// when Limit <= 0 — the batch form of GET-NEXT; it is also the natural query
// to stream.
type EnumerateQuery struct {
	Limit int
}

func (VerifyQuery) isQuery()    {}
func (TopHQuery) isQuery()      {}
func (AboveQuery) isQuery()     {}
func (ItemRankQuery) isQuery()  {}
func (BoundaryQuery) isQuery()  {}
func (EnumerateQuery) isQuery() {}

// Stable is one enumerated ranking with its stability, as produced by the
// Env's cursor. It is re-exported by internal/core and the root stablerank
// package.
type Stable struct {
	// Ranking is the full ranking of the dataset.
	Ranking rank.Ranking
	// Stability is exact in 2D, Monte-Carlo otherwise.
	Stability float64
	// Weights is a representative acceptable scoring function inducing the
	// ranking.
	Weights geom.Vector
	// Exact reports whether Stability is exact.
	Exact bool
	// ConfidenceError is the half-width of the confidence interval around a
	// Monte-Carlo stability estimate; 0 when Exact.
	ConfidenceError float64
}

// Verification is the answer to one VerifyQuery — the consumer's stability
// question (Problem 1). It is re-exported by internal/core and the root
// stablerank package.
type Verification struct {
	// Stability is the fraction of the region of interest generating the
	// ranking: exact in 2D, a Monte-Carlo estimate otherwise.
	Stability float64
	// ConfidenceError is the half-width of the confidence interval around a
	// Monte-Carlo estimate; 0 when Exact.
	ConfidenceError float64
	// Exact reports whether Stability is exact (2D) or estimated.
	Exact bool
	// Interval describes the ranking region in 2D (nil otherwise).
	Interval *geom.Interval2D
	// Constraints describes the ranking region in higher dimensions as
	// ordering-exchange halfspaces (nil in 2D).
	Constraints []geom.Halfspace
	// SampleCount is the number of Monte-Carlo samples behind an estimate
	// (0 when Exact). Under adaptive verification this is the number of pool
	// rows actually swept, which may be smaller than the pool.
	SampleCount int
	// Adaptive reports that the estimate was stopped early by adaptive
	// verification: the sweep consumed only SampleCount pool rows because the
	// confidence half-width had already reached the configured target. False
	// for exact answers and for adaptive sweeps that exhausted the pool.
	Adaptive bool
}

// Outcome is one query's raw result; exactly one payload field (or Err) is
// populated, matching the query's type.
type Outcome struct {
	Verify   *Verification
	Stables  []Stable
	ItemRank *mc.RankDistribution
	Facets   []md.BoundaryFacet
	// Err is this query's own failure (infeasible ranking, bad item index);
	// other queries in the batch are unaffected.
	Err error
}

// Cursor steps one shared enumeration in decreasing stability; ok = false
// reports clean exhaustion.
type Cursor interface {
	Next(ctx context.Context) (s Stable, ok bool, err error)
}

// Env supplies the analyzer-owned mechanisms a plan executes against. All
// callbacks must be safe for the duration of Exec; Pool and NewCursor are
// only invoked when a query in the batch needs them, so a batch of boundary
// queries never draws a sample pool.
type Env struct {
	// DS is the analyzed dataset.
	DS *dataset.Dataset
	// TwoD selects the exact 2D machinery for verification; item-rank queries
	// then use the sampler fallback (no pool exists in 2D).
	TwoD bool
	// Interval resolves the region of interest as a 2D angle interval
	// (TwoD only).
	Interval func() (geom.Interval2D, error)
	// Pool returns the shared Monte-Carlo sample pool, building it on first
	// need (multi-dimensional only).
	Pool func(context.Context) (vecmat.Matrix, error)
	// PoolSize is the configured pool size, known without building the pool;
	// it routes item-rank queries between the fused sweep and the sampler
	// fallback before any build happens.
	PoolSize int
	// Workers shards the fused sweep (<= 0 uses GOMAXPROCS). Results are
	// identical for every value.
	Workers int
	// Sampler returns a fresh deterministic sampler for the region at the
	// given seed offset (the item-rank fallback stream).
	Sampler func(seedOffset int64) (sampling.Sampler, error)
	// NewCursor starts one enumeration of the region's rankings in
	// decreasing stability.
	NewCursor func(context.Context) (Cursor, error)
	// Confidence returns the confidence half-width for a Monte-Carlo
	// stability estimate over n samples.
	Confidence func(stability float64, n int) float64
	// OnSweep is invoked once per fused pool sweep, letting callers count
	// sweeps (nil disables).
	OnSweep func()
	// AdaptiveError > 0 enables adaptive verification: verify queries are
	// swept in growing chunks of pool rows and stop as soon as the Confidence
	// half-width of the running estimate drops to this target. 0 (the
	// default) keeps the exact full-pool sweep. Requires Confidence.
	AdaptiveError float64
	// OnAdaptiveStop is invoked once per early-stopped verify query with the
	// pool rows actually swept and the full pool size (nil disables).
	OnAdaptiveStop func(rowsUsed, poolRows int)
}

// Exec answers every query in one shared plan. Per-query failures land in
// the matching Outcome.Err; Exec itself only fails on context cancellation
// or an unusable region/pool, in which case no outcomes are returned.
func Exec(ctx context.Context, env *Env, queries []Query) ([]Outcome, error) {
	out := make([]Outcome, len(queries))
	var verifyIdx, itemIdx, enumIdx, boundIdx []int
	for i, q := range queries {
		switch q.(type) {
		case VerifyQuery:
			verifyIdx = append(verifyIdx, i)
		case ItemRankQuery:
			itemIdx = append(itemIdx, i)
		case TopHQuery, AboveQuery, EnumerateQuery:
			enumIdx = append(enumIdx, i)
		case BoundaryQuery:
			boundIdx = append(boundIdx, i)
		case nil:
			out[i].Err = fmt.Errorf("plan: query %d is nil", i)
		default:
			out[i].Err = fmt.Errorf("plan: unknown query type %T", q)
		}
	}
	for _, i := range boundIdx {
		q := queries[i].(BoundaryQuery)
		out[i].Facets, out[i].Err = md.Boundary(env.DS, q.Ranking)
	}
	if err := execPoint(ctx, env, queries, verifyIdx, itemIdx, out); err != nil {
		return nil, err
	}
	if err := execEnum(ctx, env, queries, enumIdx, out); err != nil {
		return nil, err
	}
	return out, nil
}

// execPoint answers the verify and item-rank queries. In two dimensions
// verification is exact per ranking and item ranks come from the sampler
// stream; otherwise everything that fits the shared pool is answered by one
// fused sweep, with oversized item-rank requests on the sampler fallback.
func execPoint(ctx context.Context, env *Env, queries []Query, verifyIdx, itemIdx []int, out []Outcome) error {
	if len(verifyIdx)+len(itemIdx) == 0 {
		return nil
	}
	if env.TwoD {
		if len(verifyIdx) > 0 {
			iv, err := env.Interval()
			if err != nil {
				return err
			}
			for _, i := range verifyIdx {
				q := queries[i].(VerifyQuery)
				res, err := twod.Verify(env.DS, q.Ranking, iv)
				if err != nil {
					out[i].Err = err
					continue
				}
				region := res.Region
				out[i].Verify = &Verification{Stability: res.Stability, Exact: true, Interval: &region}
			}
		}
		for _, i := range itemIdx {
			q := queries[i].(ItemRankQuery)
			out[i].ItemRank, out[i].Err = sampledItemRank(ctx, env, q)
		}
		return nil
	}

	// Multi-dimensional: route item-rank queries by size, then answer the
	// fused group in one pool sweep.
	var fused []fusedItem
	var oversized []int
	for _, i := range itemIdx {
		q := queries[i].(ItemRankQuery)
		n := q.Samples
		if n <= 0 {
			n = env.PoolSize
		}
		if q.Item < 0 || q.Item >= env.DS.N() {
			out[i].Err = fmt.Errorf("plan: item %d out of range [0, %d)", q.Item, env.DS.N())
			continue
		}
		if n <= env.PoolSize {
			fused = append(fused, fusedItem{qi: i, item: q.Item, n: n})
		} else {
			oversized = append(oversized, i)
		}
	}
	if len(verifyIdx)+len(fused) > 0 {
		pool, err := env.Pool(ctx)
		if err != nil {
			return err
		}
		// Adaptive verification peels the verify queries off into the
		// early-stopping chunked sweep; item-rank queries always consume
		// their full sample prefix, so they stay on the fused sweep (a mixed
		// adaptive batch therefore reports two sweeps).
		if env.AdaptiveError > 0 && env.Confidence != nil && len(verifyIdx) > 0 {
			if err := adaptiveSweep(ctx, env, pool, queries, verifyIdx, out); err != nil {
				return err
			}
			verifyIdx = nil
		}
		if len(verifyIdx)+len(fused) > 0 {
			if err := fusedSweep(ctx, env, pool, queries, verifyIdx, fused, out); err != nil {
				return err
			}
		}
	}
	for _, i := range oversized {
		q := queries[i].(ItemRankQuery)
		out[i].ItemRank, out[i].Err = sampledItemRank(ctx, env, q)
	}
	return nil
}

// sampledItemRank answers an item-rank query from a dedicated deterministic
// sampler stream — the 2D path and the fallback for requests larger than the
// shared pool. Every query gets a fresh sampler at the same fixed offset, so
// a query's distribution is identical whether it runs alone or in a batch.
func sampledItemRank(ctx context.Context, env *Env, q ItemRankQuery) (*mc.RankDistribution, error) {
	n := q.Samples
	if n <= 0 {
		n = env.PoolSize
	}
	s, err := env.Sampler(itemRankSeedOffset)
	if err != nil {
		return nil, err
	}
	dist, err := mc.ItemRankDistribution(ctx, env.DS, s, q.Item, n)
	if err != nil {
		return nil, err
	}
	return &dist, nil
}

// itemRankSeedOffset is the historical seed offset of the item-rank sampler
// stream (the analyzer's enumeration sampler uses offset 1).
const itemRankSeedOffset = 2

// execEnum answers every enumeration-shaped query from one cursor: the
// enumeration runs to the deepest demand — the largest top-h / enumerate
// limit, past the smallest above-threshold, or to exhaustion — and each
// query takes a prefix of that single pass. The returned slices share one
// backing enumeration and must be treated as read-only.
func execEnum(ctx context.Context, env *Env, queries []Query, enumIdx []int, out []Outcome) error {
	needH := 0
	unbounded := false
	hasAbove := false
	minThreshold := math.Inf(1)
	var live []int
	for _, i := range enumIdx {
		switch q := queries[i].(type) {
		case TopHQuery:
			if q.H <= 0 {
				continue // nothing requested; Stables stays nil
			}
			needH = max(needH, q.H)
		case AboveQuery:
			hasAbove = true
			if q.Threshold < minThreshold {
				minThreshold = q.Threshold
			}
		case EnumerateQuery:
			if q.Limit <= 0 {
				unbounded = true
			} else {
				needH = max(needH, q.Limit)
			}
		}
		live = append(live, i)
	}
	if len(live) == 0 {
		return nil
	}
	cursor, err := env.NewCursor(ctx)
	if err != nil {
		return err
	}
	var all []Stable
	for {
		more := len(all) < needH || unbounded
		if hasAbove && (len(all) == 0 || all[len(all)-1].Stability >= minThreshold) {
			more = true
		}
		if !more {
			break
		}
		s, ok, err := cursor.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		all = append(all, s)
	}
	for _, i := range live {
		switch q := queries[i].(type) {
		case TopHQuery:
			out[i].Stables = all[:min(q.H, len(all))]
		case EnumerateQuery:
			if q.Limit <= 0 || q.Limit >= len(all) {
				out[i].Stables = all
			} else {
				out[i].Stables = all[:q.Limit]
			}
		case AboveQuery:
			k := 0
			for k < len(all) && all[k].Stability >= q.Threshold {
				k++
			}
			out[i].Stables = all[:k]
		}
	}
	return nil
}
