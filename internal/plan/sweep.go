package plan

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"stablerank/internal/geom"
	"stablerank/internal/mc"
	"stablerank/internal/md"
	"stablerank/internal/vecmat"
)

// The fused sweep: one sharded pass over the Monte-Carlo sample pool that
// answers every verify AND item-rank query in the batch. It generalizes the
// verify-only batch sweep (md.VerifyBatchMatrix): within each pool block,
// every live ranking's flat constraint matrix counts its members with the
// vecmat kernel, and every item-rank query accumulates the item's rank for
// each sample row. Counts are exact integer sums, so results are
// bit-identical for every worker count.

// sweepBlock is the per-worker pool shard size; context cancellation is
// polled once per block. It matches the historical batch-verification block
// so single-verify sweeps count in the same block order.
const sweepBlock = 4096

// fusedItem is one pool-resident item-rank query: the outcome index, the
// dataset item, and how many leading pool rows it consumes.
type fusedItem struct {
	qi, item, n int
}

// fusedSweep walks the pool once, feeding every verify constraint matrix and
// every fused item-rank accumulator, sharded across env.Workers. Per-ranking
// failures (infeasibility, shape mismatches) land in the matching
// Outcome.Err without failing the sweep; only cancellation fails the call.
func fusedSweep(ctx context.Context, env *Env, pool vecmat.Matrix, queries []Query, verifyIdx []int, items []fusedItem, out []Outcome) error {
	type liveVerify struct {
		qi   int
		cons vecmat.Matrix
	}
	live := make([]liveVerify, 0, len(verifyIdx))
	for _, i := range verifyIdx {
		q := queries[i].(VerifyQuery)
		m, constraints, err := md.ConstraintMatrix(env.DS, q.Ranking)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Verify = &Verification{Constraints: constraints, SampleCount: pool.Rows()}
		live = append(live, liveVerify{qi: i, cons: m})
	}
	if len(live)+len(items) == 0 {
		return nil
	}
	// Concatenate every live ranking's constraints into one flat matrix so a
	// pool block is streamed once for the whole batch (matrix-matrix sweep)
	// instead of once per ranking; per-group early exit keeps the counts
	// bit-identical to per-ranking CountInside sweeps.
	consMats := make([]vecmat.Matrix, len(live))
	for li, v := range live {
		consMats[li] = v.cons
	}
	grouped, starts := vecmat.ConcatGroups(env.DS.D(), consMats)
	var attrs vecmat.Matrix
	if len(items) > 0 {
		attrs = vecmat.New(env.DS.N(), env.DS.D())
		for i := 0; i < env.DS.N(); i++ {
			attrs.SetRow(i, env.DS.Attrs(i))
		}
	}
	if env.OnSweep != nil {
		env.OnSweep()
	}

	workers := env.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	blocks := (pool.Rows() + sweepBlock - 1) / sweepBlock
	if workers > blocks {
		workers = blocks
	}
	// Per-worker accumulators, merged after the sweep: one membership count
	// per live verify, one dense rank histogram (1..N) per item query.
	verifyCounts := make([][]int, workers)
	rankCounts := make([][][]int, workers)
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		sweepErr error
	)
	stop := make(chan struct{})
	fail := func(err error) {
		errOnce.Do(func() {
			sweepErr = err
			close(stop)
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vc := make([]int, len(live))
			verifyCounts[w] = vc
			rc := make([][]int, len(items))
			for k := range items {
				rc[k] = make([]int, env.DS.N()+1)
			}
			rankCounts[w] = rc
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := int(next.Add(1)) - 1
				if b >= blocks {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				lo := b * sweepBlock
				hi := min(lo+sweepBlock, pool.Rows())
				// Sample-major within the block: each sample row is hoisted
				// into registers once and streamed against the concatenated
				// constraint matrix of every live ranking.
				vecmat.CountInsideGrouped(grouped, starts, pool, lo, hi, vc)
				for k, it := range items {
					for row, rows := lo, min(hi, it.n); row < rows; row++ {
						r := mc.RankOf(attrs, geom.Vector(pool.Row(row)), it.item)
						rc[k][r]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if sweepErr != nil {
		// Clear the partially filled verify outcomes so a failed call leaves
		// no half-answered queries behind.
		for _, v := range live {
			out[v.qi].Verify = nil
		}
		return sweepErr
	}

	for li, v := range live {
		total := 0
		for w := range verifyCounts {
			total += verifyCounts[w][li]
		}
		o := out[v.qi].Verify
		o.Stability = float64(total) / float64(pool.Rows())
		if env.Confidence != nil {
			o.ConfidenceError = env.Confidence(o.Stability, pool.Rows())
		}
	}
	for k, it := range items {
		dist := &mc.RankDistribution{
			Item:    it.item,
			Counts:  make(map[int]int),
			Samples: it.n,
			Best:    env.DS.N() + 1,
		}
		for r := 1; r <= env.DS.N(); r++ {
			c := 0
			for w := range rankCounts {
				c += rankCounts[w][k][r]
			}
			if c == 0 {
				continue
			}
			dist.Counts[r] = c
			if r < dist.Best {
				dist.Best = r
			}
			if r > dist.Worst {
				dist.Worst = r
			}
		}
		out[it.qi].ItemRank = dist
	}
	return nil
}
