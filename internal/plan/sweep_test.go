package plan

import (
	"context"
	"math/rand"
	"testing"

	"stablerank/internal/dataset"
	"stablerank/internal/md"
	"stablerank/internal/rank"
	"stablerank/internal/sampling"
	"stablerank/internal/stats"
	"stablerank/internal/vecmat"
)

// Metamorphic equivalence layer for the matrix-matrix sweep: the fused
// blocked sweep must be bit-equal to the historical per-normal reference
// (one CountInside pass per ranking over the whole pool) for every seed and
// worker count, and the adaptive sweep must be deterministic in the worker
// count and collapse to exactly the full-sweep answer when the pool runs out.

var ctx = context.Background()

func testDataset(t *testing.T, seed int64, n, d int) *dataset.Dataset {
	t.Helper()
	rr := rand.New(rand.NewSource(seed))
	ds := dataset.MustNew(d)
	for i := 0; i < n; i++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rr.Float64()
		}
		ds.MustAdd("", v...)
	}
	return ds
}

func testPool(t *testing.T, seed int64, rows, d int) vecmat.Matrix {
	t.Helper()
	s, err := sampling.NewUniform(d, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	m := vecmat.New(rows, d)
	for i := 0; i < rows; i++ {
		if err := s.SampleInto(m.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func testEnv(ds *dataset.Dataset, pool vecmat.Matrix, workers int) *Env {
	return &Env{
		DS:       ds,
		Pool:     func(context.Context) (vecmat.Matrix, error) { return pool, nil },
		PoolSize: pool.Rows(),
		Workers:  workers,
		Confidence: func(s float64, n int) float64 {
			return stats.ConfidenceError(s, n, 0.05)
		},
	}
}

// verifyQueriesFor derives feasible rankings from random weight vectors so
// every query has a non-degenerate region.
func verifyQueriesFor(t *testing.T, ds *dataset.Dataset, seed int64, k int) []Query {
	t.Helper()
	s, err := sampling.NewUniform(ds.D(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]Query, 0, k)
	for i := 0; i < k; i++ {
		w, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, VerifyQuery{Ranking: rank.Compute(ds, w)})
	}
	return qs
}

// TestFusedSweepMatchesPerNormal pins the blocked fused sweep bit-equal to
// the per-normal reference — one whole-pool CountInside per ranking — across
// seeds, dimensions and worker counts.
func TestFusedSweepMatchesPerNormal(t *testing.T) {
	for _, d := range []int{3, 4, 7} {
		for _, seed := range []int64{1, 2, 3} {
			ds := testDataset(t, seed, 7, d)
			pool := testPool(t, seed+100, 20000, d)
			queries := verifyQueriesFor(t, ds, seed+200, 9)

			// Per-normal reference: the pre-blocking sweep shape.
			want := make([]float64, len(queries))
			for i, q := range queries {
				m, _, err := md.ConstraintMatrix(ds, q.(VerifyQuery).Ranking)
				if err != nil {
					t.Fatalf("d=%d seed=%d query %d: %v", d, seed, i, err)
				}
				want[i] = float64(m.CountInside(pool, 0, pool.Rows())) / float64(pool.Rows())
			}

			for _, workers := range []int{1, 2, 3, 8} {
				out, err := Exec(ctx, testEnv(ds, pool, workers), queries)
				if err != nil {
					t.Fatal(err)
				}
				for i := range queries {
					v := out[i].Verify
					if v == nil {
						t.Fatalf("d=%d seed=%d workers=%d query %d: no verification (err %v)", d, seed, workers, i, out[i].Err)
					}
					if v.Stability != want[i] {
						t.Fatalf("d=%d seed=%d workers=%d query %d: fused %v, per-normal %v",
							d, seed, workers, i, v.Stability, want[i])
					}
					if v.SampleCount != pool.Rows() || v.Adaptive {
						t.Fatalf("exact sweep reported SampleCount=%d Adaptive=%v", v.SampleCount, v.Adaptive)
					}
				}
			}
		}
	}
}

// TestFusedSweepMixedBatch: item-rank queries riding the same sweep are
// bit-identical across worker counts too.
func TestFusedSweepMixedBatch(t *testing.T) {
	ds := testDataset(t, 5, 6, 3)
	pool := testPool(t, 105, 12000, 3)
	queries := append(verifyQueriesFor(t, ds, 205, 4), ItemRankQuery{Item: 2}, ItemRankQuery{Item: 0, Samples: 5000})

	base, err := Exec(ctx, testEnv(ds, pool, 1), queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		out, err := Exec(ctx, testEnv(ds, pool, workers), queries)
		if err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			switch {
			case base[i].Verify != nil:
				if out[i].Verify.Stability != base[i].Verify.Stability {
					t.Fatalf("workers=%d query %d stability diverged", workers, i)
				}
			case base[i].ItemRank != nil:
				got, want := out[i].ItemRank, base[i].ItemRank
				if got.Samples != want.Samples || got.Best != want.Best || got.Worst != want.Worst || len(got.Counts) != len(want.Counts) {
					t.Fatalf("workers=%d query %d rank distribution diverged", workers, i)
				}
				for r, c := range want.Counts {
					if got.Counts[r] != c {
						t.Fatalf("workers=%d query %d rank %d count %d, want %d", workers, i, r, got.Counts[r], c)
					}
				}
			}
		}
	}
}

// TestAdaptiveSweepDeterministic: for a fixed pool, adaptive answers —
// including the stopping row — are identical for every worker count, and an
// adaptive sweep over a pool too small to clear the target reports exactly
// the full-sweep answer with Adaptive = false.
func TestAdaptiveSweepDeterministic(t *testing.T) {
	ds := testDataset(t, 9, 7, 4)
	pool := testPool(t, 109, 60000, 4)
	queries := verifyQueriesFor(t, ds, 209, 6)

	run := func(workers int, target float64) []Outcome {
		env := testEnv(ds, pool, workers)
		env.AdaptiveError = target
		out, err := Exec(ctx, env, queries)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	base := run(1, 0.02)
	stopped := 0
	for i := range queries {
		v := base[i].Verify
		if v == nil {
			t.Fatalf("query %d: %v", i, base[i].Err)
		}
		if v.Adaptive {
			stopped++
			if v.SampleCount >= pool.Rows() || v.SampleCount < adaptiveChunkMin {
				t.Fatalf("query %d: adaptive SampleCount %d out of range", i, v.SampleCount)
			}
			if v.ConfidenceError > 0.02 {
				t.Fatalf("query %d: stopped with CI %v above target", i, v.ConfidenceError)
			}
		}
	}
	if stopped == 0 {
		t.Fatal("no query stopped early at a loose target on a 60k pool")
	}
	for _, workers := range []int{2, 3, 8} {
		out := run(workers, 0.02)
		for i := range queries {
			g, w := out[i].Verify, base[i].Verify
			if g.Stability != w.Stability || g.SampleCount != w.SampleCount || g.Adaptive != w.Adaptive || g.ConfidenceError != w.ConfidenceError {
				t.Fatalf("workers=%d query %d: adaptive outcome diverged (%+v vs %+v)", workers, i, g, w)
			}
		}
	}

	// An unreachable target must fall through to the exact full-pool answer.
	exact, err := Exec(ctx, testEnv(ds, pool, 3), queries)
	if err != nil {
		t.Fatal(err)
	}
	strict := run(3, 1e-12)
	for i := range queries {
		g, w := strict[i].Verify, exact[i].Verify
		if g.Adaptive || g.SampleCount != pool.Rows() || g.Stability != w.Stability || g.ConfidenceError != w.ConfidenceError {
			t.Fatalf("query %d: exhausted adaptive sweep != exact sweep (%+v vs %+v)", i, g, w)
		}
	}
}
