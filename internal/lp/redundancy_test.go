package lp

import (
	"math"
	"math/rand"
	"testing"

	"stablerank/internal/geom"
)

func TestNonRedundantKeepsEssential(t *testing.T) {
	// 2D cone [pi/6, pi/3] given by two binding constraints plus a redundant
	// wider pair.
	bind := func(theta float64, lower bool) geom.Vector {
		// Feasible side is above (lower=true) or below the ray at theta.
		n := geom.Vector{-math.Sin(theta), math.Cos(theta)}
		if !lower {
			n = n.Scale(-1)
		}
		return n
	}
	normals := []geom.Vector{
		bind(math.Pi/6, true),    // angle >= pi/6 (essential)
		bind(math.Pi/3, false),   // angle <= pi/3 (essential)
		bind(math.Pi/12, true),   // angle >= pi/12 (implied)
		bind(math.Pi/2.2, false), // angle <= ~pi/2.2 (implied)
	}
	keep, err := NonRedundant(2, normals)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 2 || keep[0] != 0 || keep[1] != 1 {
		t.Errorf("kept %v, want [0 1]", keep)
	}
}

func TestNonRedundantAllEssential(t *testing.T) {
	// The three coordinate planes of a 3D cell cut by x>=y and y>=z: both
	// are essential.
	normals := []geom.Vector{
		{1, -1, 0},
		{0, 1, -1},
	}
	keep, err := NonRedundant(3, normals)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 2 {
		t.Errorf("kept %v, want both", keep)
	}
}

func TestNonRedundantDuplicates(t *testing.T) {
	normals := []geom.Vector{
		{1, -1},
		{2, -2}, // same hyperplane, scaled
		{1, -1}, // exact duplicate
	}
	keep, err := NonRedundant(2, normals)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 1 {
		t.Errorf("kept %d of 3 duplicates, want 1 (%v)", len(keep), keep)
	}
}

func TestNonRedundantZeroNormal(t *testing.T) {
	keep, err := NonRedundant(2, []geom.Vector{{0, 0}, {1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 1 || keep[0] != 1 {
		t.Errorf("kept %v, want [1]", keep)
	}
}

// Property: the kept subset defines the same cone as the full set (checked
// by sampling).
func TestNonRedundantPreservesCone(t *testing.T) {
	rr := rand.New(rand.NewSource(192))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rr.Intn(3)
		// Random constraints through a common interior point -> nonempty.
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = rr.Float64() + 0.1
		}
		var normals []geom.Vector
		for k := 0; k < 3+rr.Intn(6); k++ {
			n := make(geom.Vector, d)
			for j := range n {
				n[j] = rr.NormFloat64()
			}
			if n.Dot(p) < 0 {
				n = n.Scale(-1)
			}
			normals = append(normals, n)
		}
		keep, err := NonRedundant(d, normals)
		if err != nil {
			t.Fatal(err)
		}
		kept := make([]geom.Vector, len(keep))
		for i, idx := range keep {
			kept[i] = normals[idx]
		}
		for probe := 0; probe < 500; probe++ {
			x := make(geom.Vector, d)
			for j := range x {
				x[j] = rr.Float64()
			}
			inFull := true
			for _, n := range normals {
				if n.Dot(x) < -1e-9 {
					inFull = false
					break
				}
			}
			inKept := true
			for _, n := range kept {
				if n.Dot(x) < -1e-9 {
					inKept = false
					break
				}
			}
			if inFull != inKept {
				t.Fatalf("trial %d: point %v: full=%v kept=%v (kept %d of %d)",
					trial, x, inFull, inKept, len(keep), len(normals))
			}
		}
	}
}
