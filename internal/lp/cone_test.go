package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"stablerank/internal/geom"
)

func TestInteriorPointSimpleCone(t *testing.T) {
	// Cone w1 >= w2 in 2D: interior points have w1 > w2.
	x, err := InteriorPoint(2, []geom.Vector{{1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] <= x[1] {
		t.Errorf("interior point %v not strictly inside w1 >= w2", x)
	}
	if !almostEqual(x[0]+x[1], 1, 1e-8) {
		t.Errorf("interior point not on sum=1: %v", x)
	}
}

func TestInteriorPointEmptyCone(t *testing.T) {
	// w1 >= w2 + margin and w2 >= w1 + margin cannot both hold; encode as
	// strict-interior emptiness: the two opposing halfspaces leave only the
	// measure-zero line w1 = w2.
	_, err := InteriorPoint(2, []geom.Vector{{1, -1}, {-1, 1}})
	if !errors.Is(err, ErrEmptyCone) {
		t.Errorf("expected ErrEmptyCone, got %v", err)
	}
}

func TestInteriorPointFullSpace(t *testing.T) {
	x, err := InteriorPoint(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if v <= 0 {
			t.Errorf("interior point %v touches the orthant boundary", x)
		}
	}
}

func TestInteriorPointSatisfiesAllConstraints(t *testing.T) {
	rr := rand.New(rand.NewSource(82))
	for trial := 0; trial < 100; trial++ {
		d := 2 + rr.Intn(4)
		// Random halfspaces through a known interior point p, so the cone is
		// nonempty by construction.
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = rr.Float64() + 0.1
		}
		var normals []geom.Vector
		for k := 0; k < 1+rr.Intn(5); k++ {
			n := make(geom.Vector, d)
			for j := range n {
				n[j] = rr.NormFloat64()
			}
			if n.Dot(p) < 0 {
				n = n.Scale(-1)
			}
			normals = append(normals, n)
		}
		x, err := InteriorPoint(d, normals)
		if errors.Is(err, ErrEmptyCone) {
			continue // p may sit on a near-degenerate sliver; fine
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range normals {
			if n.Dot(x) < -1e-9 {
				t.Fatalf("interior point %v violates constraint %v", x, n)
			}
		}
	}
}

func TestHyperplaneIntersects(t *testing.T) {
	// Cone: full 2D orthant. The hyperplane w1 = w2 passes through it.
	ok, err := HyperplaneIntersects(2, geom.Hyperplane{Normal: geom.Vector{1, -1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("diagonal hyperplane should cross the orthant")
	}
	// Cone restricted to w1 >= 2 w2: the hyperplane w1 = w2 misses its
	// interior.
	ok, err = HyperplaneIntersects(2, geom.Hyperplane{Normal: geom.Vector{1, -1}},
		[]geom.Vector{{1, -2}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("hyperplane w1=w2 should miss the cone w1 >= 2 w2")
	}
	// Degenerate hyperplane.
	ok, err = HyperplaneIntersects(2, geom.Hyperplane{Normal: geom.Vector{0, 0}}, nil)
	if err != nil || ok {
		t.Errorf("degenerate hyperplane: ok=%v err=%v", ok, err)
	}
}

func TestHyperplaneIntersectsAgainstSampling(t *testing.T) {
	// Cross-validate the LP test against a dense angular scan in 2D.
	rr := rand.New(rand.NewSource(83))
	for trial := 0; trial < 100; trial++ {
		// Random cone [lo, hi] inside the quadrant, expressed as halfspaces.
		lo := rr.Float64() * 1.2
		hi := lo + 0.05 + rr.Float64()*(1.5-lo-0.05)
		if hi > math.Pi/2 {
			hi = math.Pi / 2
		}
		normals := []geom.Vector{
			{-math.Sin(lo), math.Cos(lo)}, // angle >= lo
			{math.Sin(hi), -math.Cos(hi)}, // angle <= hi
		}
		ha := rr.Float64() * math.Pi / 2
		h := geom.Hyperplane{Normal: geom.Vector{-math.Sin(ha), math.Cos(ha)}} // boundary ray at angle ha
		got, err := HyperplaneIntersects(2, h, normals)
		if err != nil {
			t.Fatal(err)
		}
		want := ha > lo+1e-6 && ha < hi-1e-6
		if got != want && math.Abs(ha-lo) > 1e-4 && math.Abs(ha-hi) > 1e-4 {
			t.Fatalf("trial %d: lo=%v hi=%v ha=%v: got %v want %v", trial, lo, hi, ha, got, want)
		}
	}
}

func TestHyperplaneIntersectsInCone(t *testing.T) {
	d := 3
	axis := geom.Vector{1, 1, 1}.MustNormalize()
	cone := geom.Cone{Axis: axis, Theta: math.Pi / 20}
	// A hyperplane through the axis intersects.
	h1 := geom.Hyperplane{Normal: geom.Vector{1, -1, 0}}
	ok, err := HyperplaneIntersectsInCone(d, h1, nil, cone)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("axis-containing hyperplane should intersect the cone")
	}
	// A hyperplane far from the cone: normal nearly parallel to the axis
	// means the plane is nearly orthogonal to it.
	h2 := geom.Hyperplane{Normal: axis}
	ok, err = HyperplaneIntersectsInCone(d, h2, nil, cone)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("orthogonal-to-axis hyperplane should miss a narrow cone")
	}
}

func TestInteriorPointInCone(t *testing.T) {
	axis := geom.Vector{1, 1}.MustNormalize()
	cone := geom.Cone{Axis: axis, Theta: math.Pi / 10}
	x, err := InteriorPointInCone(2, []geom.Vector{{1, -1}}, cone) // w1 >= w2 half of the cone
	if err != nil {
		t.Fatal(err)
	}
	if x[0] < x[1]-1e-9 {
		t.Errorf("point %v violates halfspace", x)
	}
	// Within the *relaxed* cone; for 2D the relaxation is modest, check the
	// true cone with slack.
	a, _ := geom.Angle(geom.Vector(x), axis)
	if a > cone.Theta+0.3 {
		t.Errorf("point %v at angle %v way outside cone", x, a)
	}
}

func TestCentralRay(t *testing.T) {
	region, err := geom.NewConstraintRegion(2,
		geom.Halfspace{Normal: geom.Vector{-1, 1}, Positive: true}, // w2 >= w1
		geom.Halfspace{Normal: geom.Vector{2, -1}, Positive: true}, // 2 w1 >= w2
	)
	if err != nil {
		t.Fatal(err)
	}
	axis, theta, err := CentralRay(region)
	if err != nil {
		t.Fatal(err)
	}
	if !region.Contains(axis) {
		t.Errorf("central ray %v outside region", axis)
	}
	if theta <= 0 || theta > math.Pi/2 {
		t.Errorf("theta = %v out of range", theta)
	}
	// Every region point must be within theta of the axis: check the two
	// extreme rays (pi/4 and atan 2).
	for _, a := range []float64{math.Pi / 4, math.Atan(2)} {
		u := geom.Ray2D(a)
		ang, _ := geom.Angle(u, axis)
		if ang > theta+1e-9 {
			t.Errorf("extreme ray at %v exceeds bounding angle %v", ang, theta)
		}
	}
	// Empty region.
	empty, err := geom.NewConstraintRegion(2,
		geom.Halfspace{Normal: geom.Vector{1, -1}, Positive: true},
		geom.Halfspace{Normal: geom.Vector{-1, 1}, Positive: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CentralRay(empty); !errors.Is(err, ErrEmptyCone) {
		t.Errorf("expected ErrEmptyCone, got %v", err)
	}
}
