package lp

import (
	"errors"
	"math"

	"stablerank/internal/geom"
)

// Cone-feasibility helpers built on the simplex core. Regions in the
// arrangement of ordering exchanges are convex cones
// {x >= 0 : n_i . x >= 0}; all the questions GET-NEXTmd asks about them
// reduce to linear programs after normalizing scale with sum(x) = 1.
//
// Hypercone (angular) regions of interest are not polyhedral; where a cone
// constraint must enter an LP it is replaced by its linear relaxation
//
//	axis . x >= cos(theta)/sqrt(d) * sum(x)
//
// which is implied by the true constraint axis . x >= cos(theta) |x|_2
// (since |x|_2 >= sum(x)/sqrt(d) on the orthant). The relaxation makes the
// feasibility tests conservative: they may report an intersection that the
// exact cap excludes, never the reverse. The sample-partition test of
// Section 5.4 remains the primary (and unbiased) mechanism; these LPs are
// the paper's "solve a linear program" alternative and are benchmarked as an
// ablation.

// interiorEps is the minimum max-min-slack for a cone to count as having a
// nonempty interior.
const interiorEps = 1e-9

// ErrEmptyCone is returned when a cone has no interior point.
var ErrEmptyCone = errors.New("lp: cone has empty interior")

// normalizeRows returns unit-norm copies of the normals, dropping numerically
// zero rows.
func normalizeRows(normals []geom.Vector) []geom.Vector {
	out := make([]geom.Vector, 0, len(normals))
	for _, n := range normals {
		if u, err := n.Normalize(); err == nil {
			out = append(out, u)
		}
	}
	return out
}

// coneRelaxation returns the linear-relaxation normal for a hypercone region
// of interest: (axis - cos(theta)/sqrt(d) * 1).
func coneRelaxation(cone geom.Cone) geom.Vector {
	d := cone.Dim()
	shift := math.Cos(cone.Theta) / math.Sqrt(float64(d))
	n := cone.Axis.Clone()
	for i := range n {
		n[i] -= shift
	}
	return n
}

// chebyshevProblem builds: maximize eps subject to n_i . x >= eps,
// x_j >= eps (the orthant constraints, so the centre is generic rather than
// a boundary vertex), extra equality rows, sum(x) = 1, x >= 0, eps >= 0.
// Variables: x_0..x_{d-1}, eps.
func chebyshevProblem(d int, normals []geom.Vector, equalities []geom.Vector) Problem {
	nv := d + 1
	obj := make([]float64, nv)
	obj[d] = 1
	var cons []Constraint
	for _, n := range normalizeRows(normals) {
		c := make([]float64, nv)
		copy(c, n)
		c[d] = -1
		cons = append(cons, Constraint{Coeffs: c, Op: GE, RHS: 0})
	}
	for j := 0; j < d; j++ {
		c := make([]float64, nv)
		c[j] = 1
		c[d] = -1
		cons = append(cons, Constraint{Coeffs: c, Op: GE, RHS: 0})
	}
	for _, e := range equalities {
		c := make([]float64, nv)
		copy(c, e)
		cons = append(cons, Constraint{Coeffs: c, Op: EQ, RHS: 0})
	}
	sum := make([]float64, nv)
	for j := 0; j < d; j++ {
		sum[j] = 1
	}
	cons = append(cons, Constraint{Coeffs: sum, Op: EQ, RHS: 1})
	// eps <= 1 keeps the LP bounded even with no normals.
	capEps := make([]float64, nv)
	capEps[d] = 1
	cons = append(cons, Constraint{Coeffs: capEps, Op: LE, RHS: 1})
	return Problem{NumVars: nv, Objective: obj, Constraints: cons}
}

// InteriorPoint returns a point x (sum(x) = 1, x >= 0) strictly inside the
// cone {x : n . x >= 0 for n in normals}, maximizing the minimum slack
// against the unit-normalized constraints (a Chebyshev-style centre). It
// returns ErrEmptyCone if no interior point exists.
func InteriorPoint(d int, normals []geom.Vector) (geom.Vector, error) {
	res, err := Solve(chebyshevProblem(d, normals, nil))
	if err != nil {
		return nil, err
	}
	if res.Status != Optimal || res.Objective < interiorEps {
		return nil, ErrEmptyCone
	}
	return geom.Vector(res.X[:d]).Clone(), nil
}

// InteriorPointInCone is InteriorPoint with an additional hypercone region
// of interest, entering via its linear relaxation (see package comment).
func InteriorPointInCone(d int, normals []geom.Vector, cone geom.Cone) (geom.Vector, error) {
	all := append(append([]geom.Vector{}, normals...), coneRelaxation(cone))
	return InteriorPoint(d, all)
}

// HyperplaneIntersects reports whether the hyperplane h (through the origin)
// passes through the interior of the cone {x >= 0 : n . x >= 0}: i.e.
// whether a point of the cone's interior lies exactly on h. This is the
// exact LP variant of the passThrough test in Algorithm 6.
func HyperplaneIntersects(d int, h geom.Hyperplane, normals []geom.Vector) (bool, error) {
	hn, err := h.Normal.Normalize()
	if err != nil {
		return false, nil // degenerate hyperplane: no crossing
	}
	res, err := Solve(chebyshevProblem(d, normals, []geom.Vector{hn}))
	if err != nil {
		return false, err
	}
	return res.Status == Optimal && res.Objective >= interiorEps, nil
}

// HyperplaneIntersectsInCone is HyperplaneIntersects restricted (via linear
// relaxation) to a hypercone region of interest.
func HyperplaneIntersectsInCone(d int, h geom.Hyperplane, normals []geom.Vector, cone geom.Cone) (bool, error) {
	all := append(append([]geom.Vector{}, normals...), coneRelaxation(cone))
	return HyperplaneIntersects(d, h, all)
}

// CentralRay returns the Chebyshev-style central ray of a constraint region
// together with a conservative bounding half-angle: every unit vector of the
// region lies within the returned angle of the returned ray. It implements
// the bounding step of Section 5.2 (the paper uses the minimum enclosing
// ball of the cone base); here the bound is acos(min_j axis_j), which is
// exact for the whole orthant around the given axis — for any unit x >= 0,
// axis . x >= min_j axis_j with equality at the basis vector of the smallest
// axis component — and therefore covers any region inside the orthant. The
// bound is conservative (possibly loose) for small regions, costing
// acceptance rate but never biasing the rejection sampler seeded with it.
func CentralRay(region geom.ConstraintRegion) (axis geom.Vector, theta float64, err error) {
	x, err := InteriorPoint(region.D, region.OrientedNormals())
	if err != nil {
		return nil, 0, err
	}
	axis, err = x.Normalize()
	if err != nil {
		return nil, 0, ErrEmptyCone
	}
	minComp := math.Inf(1)
	for _, v := range axis {
		if v < minComp {
			minComp = v
		}
	}
	if minComp < 0 {
		minComp = 0
	}
	if minComp > 1 {
		minComp = 1
	}
	theta = math.Min(math.Acos(minComp)+1e-9, math.Pi/2)
	return axis, theta, nil
}
