package lp

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveBasicMaximization(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
	p := Problem{
		NumVars:   2,
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Op: LE, RHS: 6},
		},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !almostEqual(res.Objective, 12, 1e-8) {
		t.Errorf("objective = %v, want 12", res.Objective)
	}
	if !almostEqual(res.X[0], 4, 1e-8) || !almostEqual(res.X[1], 0, 1e-8) {
		t.Errorf("x = %v", res.X)
	}
}

func TestSolveInteriorOptimum(t *testing.T) {
	// max x + y s.t. x <= 2, y <= 3 -> (2, 3), obj 5.
	p := Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Op: LE, RHS: 2},
			{Coeffs: []float64{0, 1}, Op: LE, RHS: 3},
		},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !almostEqual(res.Objective, 5, 1e-8) {
		t.Errorf("res = %+v", res)
	}
}

func TestSolveWithEquality(t *testing.T) {
	// max x s.t. x + y = 1, x - y <= 0 -> x = y = 0.5.
	p := Problem{
		NumVars:   2,
		Objective: []float64{1, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 1},
			{Coeffs: []float64{1, -1}, Op: LE, RHS: 0},
		},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !almostEqual(res.X[0], 0.5, 1e-8) || !almostEqual(res.X[1], 0.5, 1e-8) {
		t.Errorf("x = %v", res.X)
	}
}

func TestSolveWithGE(t *testing.T) {
	// min x + y s.t. x + 2y >= 4, 3x + y >= 6  (maximize the negative).
	// Optimum at intersection: x = 8/5, y = 6/5, obj -= 14/5.
	p := Problem{
		NumVars:   2,
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Op: GE, RHS: 4},
			{Coeffs: []float64{3, 1}, Op: GE, RHS: 6},
		},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !almostEqual(res.Objective, -14.0/5, 1e-8) {
		t.Errorf("objective = %v, want -2.8", res.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: GE, RHS: 5},
			{Coeffs: []float64{1}, Op: LE, RHS: 3},
		},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := Problem{
		NumVars:     2,
		Objective:   []float64{1, 0},
		Constraints: []Constraint{{Coeffs: []float64{0, 1}, Op: LE, RHS: 1}},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", res.Status)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// -x <= -2 means x >= 2; max -x -> x = 2.
	p := Problem{
		NumVars:     1,
		Objective:   []float64{-1},
		Constraints: []Constraint{{Coeffs: []float64{-1}, Op: LE, RHS: -2}},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !almostEqual(res.X[0], 2, 1e-8) {
		t.Errorf("res = %+v", res)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Redundant constraints exercising the artificial cleanup.
	p := Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 2},
			{Coeffs: []float64{2, 2}, Op: EQ, RHS: 4}, // redundant
			{Coeffs: []float64{1, 0}, Op: LE, RHS: 2},
		},
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !almostEqual(res.Objective, 2, 1e-8) {
		t.Errorf("res = %+v", res)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(Problem{NumVars: 0}); err == nil {
		t.Error("no variables accepted")
	}
	if _, err := Solve(Problem{NumVars: 2, Objective: []float64{1}}); err == nil {
		t.Error("short objective accepted")
	}
	p := Problem{NumVars: 2, Objective: []float64{1, 1},
		Constraints: []Constraint{{Coeffs: []float64{1}, Op: LE, RHS: 1}}}
	if _, err := Solve(p); err == nil {
		t.Error("short constraint accepted")
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
	if Status(9).String() == "" {
		t.Error("unknown status should print")
	}
}

// Randomized cross-check: for random feasible bounded LPs with box
// constraints, compare against brute-force over a fine grid of the 2D
// feasible region vertices.
func TestSolveRandom2DAgainstEnumeration(t *testing.T) {
	rr := rand.New(rand.NewSource(81))
	for trial := 0; trial < 200; trial++ {
		// Box [0, bx] x [0, by] plus one random <= cut; objective random
		// non-negative so the optimum is at a vertex of the cut box.
		bx := 1 + rr.Float64()*4
		by := 1 + rr.Float64()*4
		a := rr.Float64()*2 - 1
		b := rr.Float64()*2 - 1
		c := rr.Float64()*4 + 0.5
		obj := []float64{rr.Float64(), rr.Float64()}
		p := Problem{
			NumVars:   2,
			Objective: obj,
			Constraints: []Constraint{
				{Coeffs: []float64{1, 0}, Op: LE, RHS: bx},
				{Coeffs: []float64{0, 1}, Op: LE, RHS: by},
				{Coeffs: []float64{a, b}, Op: LE, RHS: c},
			},
		}
		res, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal {
			// Could be unbounded only if the box fails, which it cannot.
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		// Brute force over candidate vertices: intersections of all
		// constraint boundaries and axes.
		lines := [][3]float64{
			{1, 0, bx}, {0, 1, by}, {a, b, c}, {1, 0, 0}, {0, 1, 0},
		}
		best := math.Inf(-1)
		for i := 0; i < len(lines); i++ {
			for j := i + 1; j < len(lines); j++ {
				a1, b1, c1 := lines[i][0], lines[i][1], lines[i][2]
				a2, b2, c2 := lines[j][0], lines[j][1], lines[j][2]
				det := a1*b2 - a2*b1
				if math.Abs(det) < 1e-12 {
					continue
				}
				x := (c1*b2 - c2*b1) / det
				y := (a1*c2 - a2*c1) / det
				if x < -1e-9 || y < -1e-9 || x > bx+1e-9 || y > by+1e-9 || a*x+b*y > c+1e-9 {
					continue
				}
				if v := obj[0]*x + obj[1]*y; v > best {
					best = v
				}
			}
		}
		if !almostEqual(res.Objective, best, 1e-6) {
			t.Fatalf("trial %d: simplex %v vs enumeration %v", trial, res.Objective, best)
		}
	}
}
