// Package lp implements a small dense two-phase simplex solver and the
// cone-feasibility helpers built on it. GET-NEXTmd (Algorithm 6) tests
// whether an ordering-exchange hyperplane intersects a ranking region by
// "solving a linear program" (Section 4.2); this package provides that exact
// test, an interior-point finder for choosing a representative scoring
// function inside a region, and the central-ray computation used to bound
// constraint-specified regions of interest by a cone.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

const (
	// LE is <=.
	LE Op = iota
	// GE is >=.
	GE
	// EQ is =.
	EQ
)

// Constraint is a single linear constraint sum_j Coeffs[j] x_j  Op  RHS.
type Constraint struct {
	Coeffs []float64
	Op     Op
	RHS    float64
}

// Problem is a linear program in the conventional form
//
//	maximize  c . x   subject to   A x (<=|>=|=) b,  x >= 0.
type Problem struct {
	NumVars     int
	Objective   []float64
	Constraints []Constraint
}

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint set is empty.
	Infeasible
	// Unbounded means the objective is unbounded above on the feasible set.
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result carries the solution of a linear program.
type Result struct {
	Status    Status
	X         []float64
	Objective float64
}

const (
	pivotTol   = 1e-9
	feasTol    = 1e-7
	maxSimplex = 20000
)

// ErrMaxIterations is returned if the simplex fails to terminate within the
// iteration budget (should not happen with Bland's rule; kept as a guard).
var ErrMaxIterations = errors.New("lp: simplex iteration budget exhausted")

// Solve runs two-phase primal simplex with Bland's anti-cycling rule.
func Solve(p Problem) (Result, error) {
	if p.NumVars <= 0 {
		return Result{}, errors.New("lp: problem has no variables")
	}
	if len(p.Objective) != p.NumVars {
		return Result{}, fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != p.NumVars {
			return Result{}, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), p.NumVars)
		}
	}
	t := newTableau(p)
	// Phase 1: drive artificial variables to zero.
	if t.numArtificial > 0 {
		t.setPhase1Objective()
		if err := t.iterate(); err != nil {
			return Result{}, err
		}
		if t.objectiveValue() < -feasTol {
			return Result{Status: Infeasible}, nil
		}
		t.removeArtificialsFromBasis()
	}
	// Phase 2: the real objective.
	t.setPhase2Objective(p.Objective)
	if err := t.iterate(); err != nil {
		if errors.Is(err, errUnbounded) {
			return Result{Status: Unbounded}, nil
		}
		return Result{}, err
	}
	x := make([]float64, p.NumVars)
	for row, col := range t.basis {
		if col < p.NumVars {
			x[col] = t.rhs(row)
		}
	}
	var obj float64
	for j, c := range p.Objective {
		obj += c * x[j]
	}
	return Result{Status: Optimal, X: x, Objective: obj}, nil
}

var errUnbounded = errors.New("lp: unbounded")

// tableau is a dense simplex tableau. Columns are ordered: structural
// variables, slack/surplus variables, artificial variables; the last column
// is the right-hand side. The objective row is stored separately in obj
// (reduced-cost row) with objConst the current objective value negated.
type tableau struct {
	m, n          int // constraint rows, total columns excluding RHS
	numStruct     int
	numArtificial int
	artStart      int
	a             [][]float64 // m rows, n+1 columns (last = RHS)
	obj           []float64   // n reduced costs
	objConst      float64
	basis         []int // basis[row] = basic column of that row
}

func newTableau(p Problem) *tableau {
	m := len(p.Constraints)
	// Count extra columns.
	slacks := 0
	arts := 0
	for _, c := range p.Constraints {
		op := c.Op
		if c.RHS < 0 {
			op = flipOp(op)
		}
		switch op {
		case LE:
			slacks++
		case GE:
			slacks++
			arts++
		case EQ:
			arts++
		}
	}
	n := p.NumVars + slacks + arts
	t := &tableau{
		m:             m,
		n:             n,
		numStruct:     p.NumVars,
		numArtificial: arts,
		artStart:      p.NumVars + slacks,
		a:             make([][]float64, m),
		obj:           make([]float64, n),
		basis:         make([]int, m),
	}
	slackCol := p.NumVars
	artCol := t.artStart
	for i, c := range p.Constraints {
		row := make([]float64, n+1)
		sign := 1.0
		op := c.Op
		if c.RHS < 0 {
			sign = -1
			op = flipOp(op)
		}
		for j, v := range c.Coeffs {
			row[j] = sign * v
		}
		row[n] = sign * c.RHS
		switch op {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.a[i] = row
	}
	return t
}

func flipOp(op Op) Op {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

func (t *tableau) rhs(row int) float64 { return t.a[row][t.n] }

func (t *tableau) objectiveValue() float64 { return -t.objConst }

// setPhase1Objective installs "maximize -sum(artificials)" and prices out
// the basic artificial columns.
func (t *tableau) setPhase1Objective() {
	for j := range t.obj {
		t.obj[j] = 0
	}
	t.objConst = 0
	for j := t.artStart; j < t.n; j++ {
		t.obj[j] = -1
	}
	t.priceOutBasis()
}

// setPhase2Objective installs the real objective (artificial columns get a
// strongly negative cost so they never re-enter) and prices out the basis.
func (t *tableau) setPhase2Objective(c []float64) {
	for j := range t.obj {
		t.obj[j] = 0
	}
	t.objConst = 0
	copy(t.obj, c)
	for j := t.artStart; j < t.n; j++ {
		t.obj[j] = math.Inf(-1)
	}
	t.priceOutBasis()
}

// priceOutBasis makes reduced costs of basic columns zero by row operations
// on the objective row.
func (t *tableau) priceOutBasis() {
	for row, col := range t.basis {
		c := t.obj[col]
		if c == 0 {
			continue
		}
		if math.IsInf(c, -1) {
			// Basic artificial with -inf cost: treat as cost 0 (it is basic
			// at value >= 0 only transiently; removeArtificialsFromBasis
			// handles the degenerate leftovers).
			t.obj[col] = 0
			continue
		}
		for j := 0; j <= t.n; j++ {
			if j < t.n {
				t.obj[j] -= c * t.a[row][j]
			}
		}
		t.objConst -= c * t.rhs(row)
		t.obj[col] = 0
	}
}

// iterate runs primal simplex pivots until optimality (no improving column)
// using Bland's rule.
func (t *tableau) iterate() error {
	for iter := 0; iter < maxSimplex; iter++ {
		// Entering: lowest-index column with positive reduced cost.
		enter := -1
		for j := 0; j < t.n; j++ {
			if t.obj[j] > pivotTol && !math.IsInf(t.obj[j], -1) {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		// Leaving: min ratio, ties broken by lowest basic column (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij > pivotTol {
				ratio := t.rhs(i) / aij
				if ratio < bestRatio-pivotTol ||
					(ratio < bestRatio+pivotTol && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return errUnbounded
		}
		t.pivot(leave, enter)
	}
	return ErrMaxIterations
}

// pivot performs a Gauss-Jordan pivot on (row, col) and updates the basis
// and objective row.
func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	inv := 1 / p
	for j := 0; j <= t.n; j++ {
		t.a[row][j] *= inv
	}
	t.a[row][col] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.n; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.a[i][col] = 0
	}
	c := t.obj[col]
	if c != 0 && !math.IsInf(c, -1) {
		for j := 0; j < t.n; j++ {
			if math.IsInf(t.obj[j], -1) {
				continue
			}
			t.obj[j] -= c * t.a[row][j]
		}
		t.objConst -= c * t.rhs(row)
		t.obj[col] = 0
	}
	t.basis[row] = col
}

// removeArtificialsFromBasis pivots degenerate artificial variables out of
// the basis after phase 1 (they are basic at value zero). Rows whose
// artificial cannot be replaced are redundant and are zeroed.
func (t *tableau) removeArtificialsFromBasis() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		// Find any non-artificial column with a nonzero entry in this row.
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > pivotTol {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it; keep the artificial basic at 0.
			for j := 0; j <= t.n; j++ {
				t.a[i][j] = 0
			}
		}
	}
	// Freeze artificial columns so they never re-enter.
	for i := 0; i < t.m; i++ {
		for j := t.artStart; j < t.n; j++ {
			t.a[i][j] = 0
		}
	}
}
