package lp

import (
	"stablerank/internal/geom"
)

// Constraint-redundancy analysis, supporting the second future-work
// direction of the paper's Section 8 ("it would be nice, for some
// applications, to characterize the boundaries of the stable region"): a
// ranking region arrives as O(n) ordering-exchange halfspaces, but most are
// implied by the others; the non-redundant subset is exactly the region's
// boundary description.

// NonRedundant returns the indices of the normals that actually bound the
// cone {x >= 0 : n_i . x >= 0}: normal i is kept iff the region defined by
// the OTHER constraints (and the orthant) contains a point strictly
// violating it. Each test is one LP; the total cost is O(len(normals)) LP
// solves.
func NonRedundant(d int, normals []geom.Vector) ([]int, error) {
	var keep []int
	// rest holds the currently-believed-essential constraints plus the
	// not-yet-tested tail; testing against this (rather than all others)
	// implements the standard sequential redundancy filter.
	rest := make([]geom.Vector, len(normals))
	copy(rest, normals)
	for i := range normals {
		// Candidate set: everything except constraint i that has not
		// already been discarded.
		others := make([]geom.Vector, 0, len(rest)-1)
		for j, n := range rest {
			if j != i && n != nil {
				others = append(others, n)
			}
		}
		violating, err := canViolate(d, normals[i], others)
		if err != nil {
			return nil, err
		}
		if violating {
			keep = append(keep, i)
		} else {
			rest[i] = nil // redundant: drop from future tests
		}
	}
	return keep, nil
}

// canViolate reports whether some x >= 0 with sum(x) = 1 satisfies every
// constraint in others while strictly violating target (target . x < 0).
func canViolate(d int, target geom.Vector, others []geom.Vector) (bool, error) {
	tn, err := target.Normalize()
	if err != nil {
		return false, nil // zero normal bounds nothing
	}
	// maximize -target.x subject to others and the simplex normalization;
	// strictly positive optimum means the constraint is binding somewhere.
	nv := d
	obj := make([]float64, nv)
	for j := 0; j < d; j++ {
		obj[j] = -tn[j]
	}
	var cons []Constraint
	for _, n := range normalizeRows(others) {
		cons = append(cons, Constraint{Coeffs: append([]float64{}, n...), Op: GE, RHS: 0})
	}
	sum := make([]float64, nv)
	for j := 0; j < d; j++ {
		sum[j] = 1
	}
	cons = append(cons, Constraint{Coeffs: sum, Op: EQ, RHS: 1})
	res, err := Solve(Problem{NumVars: nv, Objective: obj, Constraints: cons})
	if err != nil {
		return false, err
	}
	return res.Status == Optimal && res.Objective > interiorEps, nil
}
