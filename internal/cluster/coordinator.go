package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stablerank/internal/mc"
	"stablerank/internal/vecmat"
)

// Coordinator assembles Monte-Carlo sample pools from remote chunk fills.
// FillPool partitions the pool's chunk index space across the configured
// fill workers, streams the computed chunks back over HTTP, and splices them
// into one shared matrix. Chunks a worker fails to deliver — it died
// mid-stream, timed out, returned garbage (CRC mismatch), or was never
// reachable — are retried once against the remaining workers and finally
// re-filled locally, so FillPool only fails on context cancellation (or an
// unusable region), and its output is ALWAYS bit-identical to a purely
// local mc.BuildPoolMatrix build. A Coordinator is safe for concurrent use.
type Coordinator struct {
	workers      []string
	client       *http.Client
	timeout      time.Duration
	retryRounds  int
	localWorkers int
	logf         func(format string, args ...any)

	requests        atomic.Int64
	poolsFilled     atomic.Int64
	remoteChunks    atomic.Int64
	localChunks     atomic.Int64
	duplicateChunks atomic.Int64
	corruptChunks   atomic.Int64
	workerErrors    atomic.Int64
	retriedChunks   atomic.Int64
}

// CoordinatorConfig parameterizes NewCoordinator; only Workers is required.
type CoordinatorConfig struct {
	// Workers lists the fill workers' base URLs (scheme://host:port).
	Workers []string
	// Client is the HTTP client for fill requests (default: a dedicated
	// client; the per-request timeout comes from RequestTimeout, not the
	// client, so streams of any length can complete).
	Client *http.Client
	// RequestTimeout bounds one chunk-range fill request end to end
	// (default 30s; the slowest acceptable worker defines it).
	RequestTimeout time.Duration
	// RetryRounds is how many redistribution passes failed chunks get
	// across the surviving workers before the local fill takes over
	// (default 1; negative disables retries).
	RetryRounds int
	// LocalWorkers is the goroutine count of the local fallback fill
	// (default 0 = GOMAXPROCS).
	LocalWorkers int
	// Logf receives one line per worker failure; nil disables logging.
	Logf func(format string, args ...any)
}

// NewCoordinator builds a Coordinator over the given fill workers. An empty
// worker list is valid: every chunk then fills locally, which keeps the
// single-node configuration on the exact same code path.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	c := &Coordinator{
		workers:      append([]string(nil), cfg.Workers...),
		client:       cfg.Client,
		timeout:      cfg.RequestTimeout,
		retryRounds:  cfg.RetryRounds,
		localWorkers: cfg.LocalWorkers,
		logf:         cfg.Logf,
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.timeout == 0 {
		c.timeout = 30 * time.Second
	}
	if c.retryRounds == 0 {
		c.retryRounds = 1
	}
	return c
}

// Workers returns the configured fill-worker URLs.
func (c *Coordinator) Workers() []string { return append([]string(nil), c.workers...) }

// CoordinatorStats is a point-in-time snapshot of the fill counters.
type CoordinatorStats struct {
	Workers         []string `json:"workers"`
	Requests        int64    `json:"requests"`
	PoolsFilled     int64    `json:"pools_filled"`
	RemoteChunks    int64    `json:"remote_chunks"`
	LocalChunks     int64    `json:"local_fallback_chunks"`
	DuplicateChunks int64    `json:"duplicate_chunks"`
	CorruptChunks   int64    `json:"corrupt_chunks"`
	WorkerErrors    int64    `json:"worker_errors"`
	RetriedChunks   int64    `json:"retried_chunks"`
}

// Stats returns the coordinator's counters.
func (c *Coordinator) Stats() CoordinatorStats {
	return CoordinatorStats{
		Workers:         c.Workers(),
		Requests:        c.requests.Load(),
		PoolsFilled:     c.poolsFilled.Load(),
		RemoteChunks:    c.remoteChunks.Load(),
		LocalChunks:     c.localChunks.Load(),
		DuplicateChunks: c.duplicateChunks.Load(),
		CorruptChunks:   c.corruptChunks.Load(),
		WorkerErrors:    c.workerErrors.Load(),
		RetriedChunks:   c.retriedChunks.Load(),
	}
}

// fillState tracks which chunks of one FillPool call have been spliced.
// Claims are serialized so duplicate deliveries (a retried worker and the
// original both answering) can never race on the same rows; the row copy
// itself happens outside the lock, safe because a chunk is claimed at most
// once and chunk row ranges are disjoint.
type fillState struct {
	mu        sync.Mutex
	filled    []bool
	remaining int
}

func (st *fillState) claim(idx int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.filled[idx] {
		return false
	}
	st.filled[idx] = true
	st.remaining--
	return true
}

func (st *fillState) missing() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []int
	for i, f := range st.filled {
		if !f {
			out = append(out, i)
		}
	}
	return out
}

// FillPool assembles the total-sample pool for (spec, seed): remote-first
// across the configured workers, retried across survivors, locally
// completed. The result is bit-identical to mc.BuildPoolMatrix over the
// same region and seed for ANY worker set, including none and including
// workers dying mid-stream — the load-bearing invariant the cluster tests
// pin. datasetHash is advisory context for worker logs.
func (c *Coordinator) FillPool(ctx context.Context, spec RegionSpec, seed int64, total int, datasetHash string) (vecmat.Matrix, error) {
	if total < 1 {
		return vecmat.Matrix{}, fmt.Errorf("cluster: pool size %d < 1", total)
	}
	region, err := spec.Region()
	if err != nil {
		return vecmat.Matrix{}, err
	}
	factory := mc.ConeSamplers(region, seed)
	nchunks := mc.Chunks(total)
	pool := vecmat.New(total, spec.D)
	st := &fillState{filled: make([]bool, nchunks), remaining: nchunks}

	if len(c.workers) > 0 {
		all := make([]int, nchunks)
		for i := range all {
			all[i] = i
		}
		c.fillRemote(ctx, spec, seed, total, datasetHash, pool, st, all, false)
		for round := 0; round < c.retryRounds; round++ {
			missing := st.missing()
			if len(missing) == 0 || ctx.Err() != nil {
				break
			}
			c.retriedChunks.Add(int64(len(missing)))
			c.fillRemote(ctx, spec, seed, total, datasetHash, pool, st, missing, true)
		}
	}
	if err := ctx.Err(); err != nil {
		return vecmat.Matrix{}, err
	}
	if missing := st.missing(); len(missing) > 0 {
		if err := c.fillLocal(ctx, factory, total, pool, st, missing); err != nil {
			return vecmat.Matrix{}, err
		}
	}
	if err := ctx.Err(); err != nil {
		return vecmat.Matrix{}, err
	}
	c.poolsFilled.Add(1)
	return pool, nil
}

// fillRemote distributes the given chunk indices contiguously across the
// workers and runs one streaming fill request per non-empty share. Failures
// only log and count: whatever is still missing afterwards is the caller's
// problem (retry or local fill).
func (c *Coordinator) fillRemote(ctx context.Context, spec RegionSpec, seed int64, total int, datasetHash string, pool vecmat.Matrix, st *fillState, chunks []int, isRetry bool) {
	n := len(c.workers)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		share := chunks[w*len(chunks)/n : (w+1)*len(chunks)/n]
		if len(share) == 0 {
			continue
		}
		wg.Add(1)
		go func(worker string, share []int) {
			defer wg.Done()
			if err := c.fetchChunks(ctx, worker, spec, seed, total, datasetHash, pool, st, share); err != nil {
				c.workerErrors.Add(1)
				verb := "fill"
				if isRetry {
					verb = "retry fill"
				}
				c.logfSafe("cluster: %s of %d chunk(s) from %s failed: %v", verb, len(share), worker, err)
			}
		}(c.workers[w], share)
	}
	wg.Wait()
}

// fetchChunks runs one streaming fill request and splices every valid chunk
// it yields. It returns an error when the stream ended before every
// requested chunk arrived (short stream, transport error, corrupt frame,
// non-200) — but every chunk spliced before the failure stays spliced, so a
// worker dying halfway through its share loses only the unfilled remainder.
func (c *Coordinator) fetchChunks(ctx context.Context, worker string, spec RegionSpec, seed int64, total int, datasetHash string, pool vecmat.Matrix, st *fillState, share []int) error {
	reqCtx := ctx
	if c.timeout > 0 {
		var cancel context.CancelFunc
		reqCtx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	body, err := json.Marshal(FillRequest{
		DatasetHash: datasetHash,
		Region:      spec,
		Seed:        seed,
		Total:       total,
		Chunks:      share,
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, worker+"/cluster/v1/fill", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	c.requests.Add(1)
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("worker answered %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	want := len(share)
	got := 0
	for {
		chunk, err := ReadChunk(resp.Body)
		if errors.Is(err, io.EOF) {
			if got < want {
				return fmt.Errorf("stream ended after %d of %d chunks", got, want)
			}
			return nil
		}
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				c.corruptChunks.Add(1)
			}
			return err
		}
		if err := c.splice(chunk, total, pool, st); err != nil {
			c.corruptChunks.Add(1)
			return err
		}
		got++
	}
}

// splice validates one delivered chunk against the pool's geometry and
// copies its rows in, exactly once per chunk index. A duplicate delivery is
// counted and dropped — determinism makes its contents redundant, not
// conflicting. A chunk whose claimed range or shape disagrees with the pool
// is corrupt by definition.
func (c *Coordinator) splice(chunk Chunk, total int, pool vecmat.Matrix, st *fillState) error {
	lo, hi := mc.ChunkRange(chunk.Index, total)
	if hi <= lo {
		return fmt.Errorf("chunk %d out of range for %d samples: %w", chunk.Index, total, ErrCorrupt)
	}
	if chunk.Lo != lo || chunk.Hi != hi {
		return fmt.Errorf("chunk %d claims range [%d, %d), pool says [%d, %d): %w",
			chunk.Index, chunk.Lo, chunk.Hi, lo, hi, ErrCorrupt)
	}
	if chunk.Rows.Stride() != pool.Stride() {
		return fmt.Errorf("chunk %d has dimension %d, pool has %d: %w",
			chunk.Index, chunk.Rows.Stride(), pool.Stride(), ErrCorrupt)
	}
	if !st.claim(chunk.Index) {
		c.duplicateChunks.Add(1)
		return nil
	}
	for i := 0; i < chunk.Rows.Rows(); i++ {
		pool.SetRow(lo+i, chunk.Rows.Row(i))
	}
	c.remoteChunks.Add(1)
	return nil
}

// fillLocal computes the remaining chunks in-process, sharded across the
// configured local workers — the path that guarantees FillPool completes
// with a bit-identical pool no matter what the remote workers did.
func (c *Coordinator) fillLocal(ctx context.Context, factory mc.SamplerFactory, total int, pool vecmat.Matrix, st *fillState, missing []int) error {
	workers := c.localWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(missing) {
		workers = len(missing)
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		fillErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(missing) || ctx.Err() != nil {
					return
				}
				idx := missing[i]
				if err := mc.FillChunkInto(ctx, factory, idx, total, pool); err != nil {
					errOnce.Do(func() { fillErr = err })
					return
				}
				st.claim(idx)
				c.localChunks.Add(1)
			}
		}()
	}
	wg.Wait()
	if fillErr != nil {
		return fillErr
	}
	return ctx.Err()
}

func (c *Coordinator) logfSafe(format string, args ...any) {
	if c.logf != nil {
		c.logf(format, args...)
	}
}
