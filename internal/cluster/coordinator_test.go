package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"stablerank/internal/mc"
	"stablerank/internal/vecmat"
)

// The coordinator tests all pin the same invariant: whatever the workers do
// — serve correctly, die mid-stream, time out, corrupt frames, duplicate
// chunks — FillPool's output is bit-identical to a purely local build.

const (
	// 4 chunks: enough for every worker in a 2-worker split to own at
	// least 2, so "dies after its first chunk" is observable.
	testPoolTotal = 3*mc.PoolChunk + 700
	testPoolD     = 3
	testPoolSeed  = int64(424242)
)

func testSpec() RegionSpec {
	return RegionSpec{D: testPoolD, Weights: []float64{0.5, 0.3, 0.2}, Theta: 0.35}
}

func referencePool(t testing.TB) vecmat.Matrix {
	t.Helper()
	region, err := testSpec().Region()
	if err != nil {
		t.Fatalf("region: %v", err)
	}
	pool, err := mc.BuildPoolMatrix(context.Background(), mc.ConeSamplers(region, testPoolSeed), testPoolTotal, testPoolD, 4)
	if err != nil {
		t.Fatalf("reference pool: %v", err)
	}
	return pool
}

func assertPoolIdentical(t *testing.T, got, want vecmat.Matrix) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Stride() != want.Stride() {
		t.Fatalf("pool shape (%d, %d), want (%d, %d)", got.Rows(), got.Stride(), want.Rows(), want.Stride())
	}
	if !bytes.Equal(got.Encode(), want.Encode()) {
		t.Fatal("pool bytes differ from the local build — determinism contract broken")
	}
}

func fillPool(t *testing.T, c *Coordinator) vecmat.Matrix {
	t.Helper()
	pool, err := c.FillPool(context.Background(), testSpec(), testPoolSeed, testPoolTotal, "testhash")
	if err != nil {
		t.Fatalf("FillPool: %v", err)
	}
	return pool
}

func newWorkerServer(t testing.TB) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer((&Worker{}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestClusterFillPoolMatchesLocalBuild(t *testing.T) {
	want := referencePool(t)

	t.Run("no workers", func(t *testing.T) {
		c := NewCoordinator(CoordinatorConfig{})
		assertPoolIdentical(t, fillPool(t, c), want)
		if s := c.Stats(); s.RemoteChunks != 0 || s.LocalChunks != int64(mc.Chunks(testPoolTotal)) {
			t.Fatalf("stats = %+v, want all-local fill", s)
		}
	})

	t.Run("one worker", func(t *testing.T) {
		c := NewCoordinator(CoordinatorConfig{Workers: []string{newWorkerServer(t).URL}})
		assertPoolIdentical(t, fillPool(t, c), want)
		if s := c.Stats(); s.RemoteChunks != int64(mc.Chunks(testPoolTotal)) || s.LocalChunks != 0 {
			t.Fatalf("stats = %+v, want all-remote fill", s)
		}
	})

	t.Run("three workers", func(t *testing.T) {
		c := NewCoordinator(CoordinatorConfig{Workers: []string{
			newWorkerServer(t).URL, newWorkerServer(t).URL, newWorkerServer(t).URL,
		}})
		assertPoolIdentical(t, fillPool(t, c), want)
	})
}

func TestClusterWorkerDiesMidStream(t *testing.T) {
	want := referencePool(t)
	// This "worker" serves exactly one chunk of its share, then drops the
	// connection — the short stream must cost nothing but a local refill.
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req FillRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		region, _ := req.Region.Region()
		factory := mc.ConeSamplers(region, req.Seed)
		chunk := req.Chunks[0]
		lo, hi := mc.ChunkRange(chunk, req.Total)
		rows, err := mc.FillChunk(r.Context(), factory, chunk, req.Total, req.Region.D)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_ = WriteChunk(w, Chunk{Index: chunk, Lo: lo, Hi: hi, Rows: rows})
	}))
	t.Cleanup(dying.Close)

	c := NewCoordinator(CoordinatorConfig{
		Workers: []string{dying.URL, newWorkerServer(t).URL},
	})
	assertPoolIdentical(t, fillPool(t, c), want)
	s := c.Stats()
	if s.WorkerErrors == 0 {
		t.Fatalf("stats = %+v, want worker errors recorded for the dying worker", s)
	}
	if s.RemoteChunks == 0 {
		t.Fatalf("stats = %+v, want some chunks served remotely before the death", s)
	}
}

func TestClusterWorkerTimeout(t *testing.T) {
	want := referencePool(t)
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server notices the client abandoning the
		// request and cancels the context.
		_, _ = io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	t.Cleanup(hang.Close)

	c := NewCoordinator(CoordinatorConfig{
		Workers:        []string{hang.URL},
		RequestTimeout: 100 * time.Millisecond,
	})
	start := time.Now()
	assertPoolIdentical(t, fillPool(t, c), want)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fill took %v — the timeout did not bound the hung worker", elapsed)
	}
	s := c.Stats()
	if s.WorkerErrors == 0 || s.LocalChunks != int64(mc.Chunks(testPoolTotal)) {
		t.Fatalf("stats = %+v, want timeouts recorded and a full local fill", s)
	}
}

func TestClusterCorruptChunkRefilledLocally(t *testing.T) {
	want := referencePool(t)
	// A worker whose first frame arrives with a flipped payload bit: the CRC
	// must reject it and the chunk (plus the aborted remainder) refills
	// locally, bit-identically.
	corrupting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req FillRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		region, _ := req.Region.Region()
		factory := mc.ConeSamplers(region, req.Seed)
		for i, chunk := range req.Chunks {
			lo, hi := mc.ChunkRange(chunk, req.Total)
			rows, err := mc.FillChunk(r.Context(), factory, chunk, req.Total, req.Region.D)
			if err != nil {
				return
			}
			var buf bytes.Buffer
			_ = WriteChunk(&buf, Chunk{Index: chunk, Lo: lo, Hi: hi, Rows: rows})
			frame := buf.Bytes()
			if i == 0 {
				frame[len(frame)-3] ^= 0x10
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
		}
	}))
	t.Cleanup(corrupting.Close)

	c := NewCoordinator(CoordinatorConfig{Workers: []string{corrupting.URL}, RetryRounds: -1})
	assertPoolIdentical(t, fillPool(t, c), want)
	s := c.Stats()
	if s.CorruptChunks == 0 {
		t.Fatalf("stats = %+v, want the corrupt frame counted", s)
	}
	if s.LocalChunks == 0 {
		t.Fatalf("stats = %+v, want the rejected chunks refilled locally", s)
	}
}

func TestClusterDuplicateChunksDropped(t *testing.T) {
	want := referencePool(t)
	// A worker that sends every chunk twice: the duplicates must be counted
	// and dropped, never spliced twice.
	doubling := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req FillRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		region, _ := req.Region.Region()
		factory := mc.ConeSamplers(region, req.Seed)
		for _, chunk := range req.Chunks {
			lo, hi := mc.ChunkRange(chunk, req.Total)
			rows, err := mc.FillChunk(r.Context(), factory, chunk, req.Total, req.Region.D)
			if err != nil {
				return
			}
			frame := Chunk{Index: chunk, Lo: lo, Hi: hi, Rows: rows}
			if err := WriteChunk(w, frame); err != nil {
				return
			}
			if err := WriteChunk(w, frame); err != nil {
				return
			}
		}
	}))
	t.Cleanup(doubling.Close)

	c := NewCoordinator(CoordinatorConfig{Workers: []string{doubling.URL}})
	assertPoolIdentical(t, fillPool(t, c), want)
	s := c.Stats()
	if s.DuplicateChunks == 0 {
		t.Fatalf("stats = %+v, want duplicate deliveries counted", s)
	}
	if s.RemoteChunks != int64(mc.Chunks(testPoolTotal)) {
		t.Fatalf("stats = %+v, want each chunk spliced exactly once", s)
	}
}

func TestClusterCancellationMidBuild(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	t.Cleanup(hang.Close)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	c := NewCoordinator(CoordinatorConfig{Workers: []string{hang.URL}})
	start := time.Now()
	_, err := c.FillPool(ctx, testSpec(), testPoolSeed, testPoolTotal, "")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FillPool under cancellation = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to propagate", elapsed)
	}
}

func TestClusterFillPoolRejectsBadInput(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{})
	if _, err := c.FillPool(context.Background(), testSpec(), testPoolSeed, 0, ""); err == nil {
		t.Fatal("FillPool(total=0) succeeded, want error")
	}
	if _, err := c.FillPool(context.Background(), RegionSpec{D: 1}, testPoolSeed, 100, ""); err == nil {
		t.Fatal("FillPool(d=1) succeeded, want error")
	}
}

func TestClusterWorkerRejectsBadRequests(t *testing.T) {
	srv := newWorkerServer(t)
	for name, body := range map[string]string{
		"not json":        "{",
		"zero total":      `{"region":{"d":3},"seed":1,"total":0,"chunks":[0]}`,
		"no chunks":       `{"region":{"d":3},"seed":1,"total":100,"chunks":[]}`,
		"chunk oob":       `{"region":{"d":3},"seed":1,"total":100,"chunks":[5]}`,
		"bad region":      `{"region":{"d":1},"seed":1,"total":100,"chunks":[0]}`,
		"total too large": `{"region":{"d":3},"seed":1,"total":99000000,"chunks":[0]}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/cluster/v1/fill", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
	resp, err := http.Get(srv.URL + "/cluster/v1/ping")
	if err != nil {
		t.Fatalf("GET ping: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ping status = %d, want 200", resp.StatusCode)
	}
}

// BenchmarkRemoteChunkFill compares a purely local pool build against the
// full remote round trip (serialize, HTTP over loopback, CRC, splice) so the
// perf gate can watch the protocol's overhead.
func BenchmarkRemoteChunkFill(b *testing.B) {
	spec := testSpec()
	const total = 4 * mc.PoolChunk

	b.Run("local", func(b *testing.B) {
		c := NewCoordinator(CoordinatorConfig{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.FillPool(context.Background(), spec, testPoolSeed, total, ""); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("remote", func(b *testing.B) {
		srv := httptest.NewServer((&Worker{}).Handler())
		defer srv.Close()
		c := NewCoordinator(CoordinatorConfig{Workers: []string{srv.URL}})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.FillPool(context.Background(), spec, testPoolSeed, total, ""); err != nil {
				b.Fatal(err)
			}
		}
		if s := c.Stats(); s.LocalChunks != 0 {
			b.Fatalf("remote benchmark fell back locally: %+v", s)
		}
	})
}
