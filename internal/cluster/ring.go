package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring placing analyzer keys on a replica set.
// Every replica builds its ring from the same node list (order-insensitive:
// nodes are sorted first) and the hash is a fixed FNV-1a, so all replicas
// agree on every key's owner without any coordination. Virtual nodes smooth
// the placement; with the default replica count the max/min load ratio over
// random keys stays close to 1.
//
// Ownership is a locality hint, not a correctness boundary: the determinism
// contract means any node can answer any key identically, so a caller that
// cannot reach a key's owner simply serves the key itself.
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVirtualNodes is the per-node virtual point count NewRing uses when
// given replicas <= 0.
const DefaultVirtualNodes = 128

// NewRing builds a ring over the given node names (base URLs, typically).
// Duplicate names are collapsed; an empty list yields a ring whose Owner is
// always "".
func NewRing(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*replicas)
	for _, n := range uniq {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break by node name so every
		// replica still agrees on the winner.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's distinct node names in sorted order.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// ringHash is FNV-1a pushed through a 64-bit avalanche finalizer. Raw FNV
// over short, nearly-identical strings ("node#0", "node#1", ...) leaves the
// high bits badly clustered, which skews ring ownership several-fold; the
// finalizer restores a near-uniform spread. The function must never change
// across versions — every replica's routing depends on it.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
