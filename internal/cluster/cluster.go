// Package cluster is the distributed layer of stablerankd: remote
// Monte-Carlo pool-chunk fill and consistent-hash placement of analyzer
// keys across a replica set.
//
// The chunked splitmix64 seeding of internal/mc makes every pool chunk a
// pure function of (region, seed, chunk index, chunk range) — independently
// computable anywhere, bit-deterministic everywhere. This package exploits
// that twice:
//
//   - Remote chunk fill: a Coordinator farms chunk ranges out to fill
//     workers over HTTP (WorkerHandler serves the other end) and splices the
//     returned chunks into one shared pool matrix. Each chunk frame carries
//     a CRC; corrupt, short, duplicate or missing chunks are re-filled
//     locally through the exact same deterministic draw, so the assembled
//     pool is bit-identical to a purely local build for ANY worker set —
//     including a worker dying mid-stream.
//
//   - Consistent-hash routing: a Ring places analyzer keys on an N-replica
//     set so each replica owns a disjoint slice of analyzers (and their
//     expensive sample pools). Routing is purely a locality optimization:
//     determinism means every replica computes identical answers for the
//     same key, so a misrouted or fallback-served request is never wrong,
//     only colder.
//
// The load-bearing invariant throughout is: same (dataset, region, seed,
// samples) key ⇒ identical pool ⇒ identical results, on every node.
package cluster

import "errors"

// ErrCorrupt reports a chunk frame that failed structural or checksum
// validation. Coordinators treat it as "re-fill locally", never as fatal.
var ErrCorrupt = errors.New("cluster: corrupt chunk frame")
