package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingAgreesAcrossNodeOrderings(t *testing.T) {
	a := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	b := NewRing([]string{"http://n3", "http://n1", "http://n2", "http://n1"}, 0)
	if !reflect.DeepEqual(a.Nodes(), b.Nodes()) {
		t.Fatalf("node lists disagree: %v vs %v", a.Nodes(), b.Nodes())
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("dataset-%d|region|seed", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings disagree on %q: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingCoversAllNodesRoughlyEvenly(t *testing.T) {
	nodes := []string{"http://n1", "http://n2", "http://n3", "http://n4"}
	r := NewRing(nodes, 0)
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, n := range nodes {
		got := counts[n]
		// Each of 4 nodes should own a meaningful share; with 128 virtual
		// points per node the spread stays well inside [half, double].
		if got < keys/8 || got > keys/2 {
			t.Fatalf("node %s owns %d of %d keys — placement badly skewed: %v", n, got, keys, counts)
		}
	}
}

func TestRingStablePlacementUnderMembershipChange(t *testing.T) {
	before := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	after := NewRing([]string{"http://n1", "http://n2", "http://n3", "http://n4"}, 0)
	const keys = 10000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		ob, oa := before.Owner(key), after.Owner(key)
		if ob != oa {
			if oa != "http://n4" {
				t.Fatalf("key %q moved %q -> %q, not to the new node", key, ob, oa)
			}
			moved++
		}
	}
	// Consistent hashing's point: adding 1 of 4 nodes moves ~1/4 of keys,
	// not most of them.
	if moved > keys/2 {
		t.Fatalf("%d of %d keys moved after adding one node", moved, keys)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil, 0).Owner("anything"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	solo := NewRing([]string{"http://only"}, 0)
	for i := 0; i < 100; i++ {
		if got := solo.Owner(fmt.Sprintf("k%d", i)); got != "http://only" {
			t.Fatalf("single-node ring owner = %q", got)
		}
	}
}
