package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"stablerank/internal/vecmat"
)

// The chunk wire frame, version 1 — one filled pool chunk in transit from a
// fill worker back to its coordinator:
//
//	offset  size  field
//	0       4     magic "SRCK"
//	4       4     frame version (uint32, little endian)
//	8       8     chunk index (uint64)
//	16      8     lo — first pool row the chunk covers (uint64)
//	24      8     hi — one past the last pool row (uint64)
//	32      4     CRC-32C of the matrix bytes
//	36      ...   vecmat-encoded (hi-lo) x d matrix (see vecmat.LayoutVersion)
//
// The CRC travels with the rows so a flipped bit anywhere between worker and
// coordinator is detected and the chunk is re-filled locally — the draw is
// deterministic, so a local re-fill is always bit-identical to what the
// worker should have sent. On the stream, frames are length-prefixed with a
// uint32 so many chunks ride one HTTP response body.

const (
	chunkMagic      = "SRCK"
	chunkVersion    = 1
	chunkHeaderSize = 4 + 4 + 8 + 8 + 8 + 4

	// maxFrameSize bounds one length-prefixed frame so a corrupted or
	// malicious length prefix cannot force a huge allocation: a chunk is at
	// most mc.PoolChunk rows and this comfortably covers any plausible
	// dimension (4096 rows x 256 columns of float64 is 8 MiB).
	maxFrameSize = 16 << 20
)

// Chunk is one decoded pool shard: the [Lo, Hi) row range of the pool it
// belongs to, and those rows.
type Chunk struct {
	Index  int
	Lo, Hi int
	Rows   vecmat.Matrix
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeChunk serializes one filled chunk into the framed wire form.
func EncodeChunk(c Chunk) []byte {
	body := c.Rows.Encode()
	buf := make([]byte, chunkHeaderSize+len(body))
	copy(buf, chunkMagic)
	binary.LittleEndian.PutUint32(buf[4:], chunkVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(c.Index))
	binary.LittleEndian.PutUint64(buf[16:], uint64(c.Lo))
	binary.LittleEndian.PutUint64(buf[24:], uint64(c.Hi))
	binary.LittleEndian.PutUint32(buf[32:], crc32.Checksum(body, crcTable))
	copy(buf[chunkHeaderSize:], body)
	return buf
}

// DecodeChunk validates and decodes one chunk frame. Every failure — short
// input, bad magic or version, checksum mismatch, malformed matrix, or a
// matrix whose row count disagrees with the [lo, hi) range — wraps
// ErrCorrupt; like vecmat.Decode it never panics on arbitrary input, which
// FuzzChunkDecode pins.
func DecodeChunk(data []byte) (Chunk, error) {
	if len(data) < chunkHeaderSize {
		return Chunk{}, fmt.Errorf("chunk frame truncated at %d bytes: %w", len(data), ErrCorrupt)
	}
	if string(data[:4]) != chunkMagic {
		return Chunk{}, fmt.Errorf("bad chunk magic %q: %w", data[:4], ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != chunkVersion {
		return Chunk{}, fmt.Errorf("unsupported chunk frame version %d: %w", v, ErrCorrupt)
	}
	index := binary.LittleEndian.Uint64(data[8:])
	lo := binary.LittleEndian.Uint64(data[16:])
	hi := binary.LittleEndian.Uint64(data[24:])
	const maxRange = 1 << 40 // far beyond any pool; guards the int conversions
	if index > maxRange || lo > maxRange || hi > maxRange || hi < lo {
		return Chunk{}, fmt.Errorf("chunk %d range [%d, %d) implausible: %w", index, lo, hi, ErrCorrupt)
	}
	body := data[chunkHeaderSize:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(data[32:]); got != want {
		return Chunk{}, fmt.Errorf("chunk %d checksum %08x, want %08x: %w", index, got, want, ErrCorrupt)
	}
	m, err := vecmat.Decode(body)
	if err != nil {
		return Chunk{}, fmt.Errorf("chunk %d matrix: %v: %w", index, err, ErrCorrupt)
	}
	if m.Rows() != int(hi-lo) {
		return Chunk{}, fmt.Errorf("chunk %d has %d rows, range [%d, %d) wants %d: %w",
			index, m.Rows(), lo, hi, hi-lo, ErrCorrupt)
	}
	return Chunk{Index: int(index), Lo: int(lo), Hi: int(hi), Rows: m}, nil
}

// WriteChunk writes one length-prefixed chunk frame to the stream.
func WriteChunk(w io.Writer, c Chunk) error {
	frame := EncodeChunk(c)
	var prefix [4]byte
	binary.LittleEndian.PutUint32(prefix[:], uint32(len(frame)))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// ReadChunk reads the next length-prefixed chunk frame from the stream. A
// clean end of stream returns io.EOF; a stream cut mid-frame returns
// io.ErrUnexpectedEOF, and structural damage returns an ErrCorrupt-wrapped
// error — both mean "whatever chunks are missing get re-filled locally".
func ReadChunk(r io.Reader) (Chunk, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Chunk{}, io.ErrUnexpectedEOF
		}
		return Chunk{}, err
	}
	n := binary.LittleEndian.Uint32(prefix[:])
	if n < chunkHeaderSize || n > maxFrameSize {
		return Chunk{}, fmt.Errorf("chunk frame length %d out of bounds: %w", n, ErrCorrupt)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return Chunk{}, io.ErrUnexpectedEOF
	}
	return DecodeChunk(frame)
}
