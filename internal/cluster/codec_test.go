package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"stablerank/internal/vecmat"
)

func testChunk(t *testing.T, index, lo, hi, d int) Chunk {
	t.Helper()
	m := vecmat.New(hi-lo, d)
	for i := 0; i < hi-lo; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = float64((lo+i)*d + j)
		}
		m.SetRow(i, row)
	}
	return Chunk{Index: index, Lo: lo, Hi: hi, Rows: m}
}

func TestChunkCodecRoundTrip(t *testing.T) {
	want := testChunk(t, 3, 12288, 12355, 4)
	got, err := DecodeChunk(EncodeChunk(want))
	if err != nil {
		t.Fatalf("DecodeChunk: %v", err)
	}
	if got.Index != want.Index || got.Lo != want.Lo || got.Hi != want.Hi {
		t.Fatalf("header round-trip: got (%d, %d, %d), want (%d, %d, %d)",
			got.Index, got.Lo, got.Hi, want.Index, want.Lo, want.Hi)
	}
	assertChunkRowsEqual(t, got.Rows, want.Rows)
}

func TestChunkCodecRejectsCorruption(t *testing.T) {
	frame := EncodeChunk(testChunk(t, 1, 4096, 4200, 3))
	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:chunkHeaderSize-1] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[4:], 99); return b }},
		{"implausible range", func(b []byte) []byte { binary.LittleEndian.PutUint64(b[16:], 1<<50); return b }},
		{"inverted range", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], 10)
			binary.LittleEndian.PutUint64(b[24:], 5)
			return b
		}},
		{"flipped body bit", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }},
		{"flipped crc", func(b []byte) []byte { b[33] ^= 0x01; return b }},
		{"row count mismatch", func(b []byte) []byte {
			// Shrink the claimed range without touching the matrix body:
			// the CRC still passes, the cross-check must catch it.
			binary.LittleEndian.PutUint64(b[24:], binary.LittleEndian.Uint64(b[24:])-1)
			return b
		}},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-8] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mangled := tc.mangle(append([]byte(nil), frame...))
			if _, err := DecodeChunk(mangled); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeChunk(%s) = %v, want ErrCorrupt", tc.name, err)
			}
		})
	}
}

func TestChunkStream(t *testing.T) {
	chunks := []Chunk{
		testChunk(t, 0, 0, 4096, 2),
		testChunk(t, 1, 4096, 8192, 2),
		testChunk(t, 2, 8192, 8200, 2),
	}
	var buf bytes.Buffer
	for _, c := range chunks {
		if err := WriteChunk(&buf, c); err != nil {
			t.Fatalf("WriteChunk: %v", err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range chunks {
		got, err := ReadChunk(r)
		if err != nil {
			t.Fatalf("ReadChunk #%d: %v", i, err)
		}
		if got.Index != want.Index {
			t.Fatalf("ReadChunk #%d index = %d, want %d", i, got.Index, want.Index)
		}
		assertChunkRowsEqual(t, got.Rows, want.Rows)
	}
	if _, err := ReadChunk(r); err != io.EOF {
		t.Fatalf("ReadChunk at end = %v, want io.EOF", err)
	}
}

func TestChunkStreamCutMidFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChunk(&buf, testChunk(t, 0, 0, 64, 2)); err != nil {
		t.Fatalf("WriteChunk: %v", err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadChunk(bytes.NewReader(cut)); err != io.ErrUnexpectedEOF {
		t.Fatalf("ReadChunk(cut stream) = %v, want io.ErrUnexpectedEOF", err)
	}

	// A length prefix alone, pointing past the end, is also a cut stream.
	if _, err := ReadChunk(bytes.NewReader(buf.Bytes()[:4])); err != io.ErrUnexpectedEOF {
		t.Fatalf("ReadChunk(prefix only) = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestChunkStreamBadLength(t *testing.T) {
	for _, n := range []uint32{0, chunkHeaderSize - 1, maxFrameSize + 1} {
		var prefix [4]byte
		binary.LittleEndian.PutUint32(prefix[:], n)
		if _, err := ReadChunk(bytes.NewReader(prefix[:])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("ReadChunk(length %d) = %v, want ErrCorrupt", n, err)
		}
	}
}

// FuzzChunkDecode pins that DecodeChunk never panics and either returns a
// structurally consistent chunk or an ErrCorrupt-wrapped error, no matter
// the input. Wired into the CI fuzz lane.
func FuzzChunkDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(chunkMagic))
	f.Add(EncodeChunk(Chunk{Index: 0, Lo: 0, Hi: 1, Rows: vecmat.New(1, 1)}))
	valid := EncodeChunk(Chunk{Index: 1, Lo: 4096, Hi: 4099, Rows: vecmat.New(3, 2)})
	f.Add(valid)
	mangled := append([]byte(nil), valid...)
	mangled[len(mangled)-1] ^= 0x01
	f.Add(mangled)
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeChunk(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeChunk error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		if c.Hi < c.Lo || c.Rows.Rows() != c.Hi-c.Lo {
			t.Fatalf("decoded chunk inconsistent: range [%d, %d) with %d rows", c.Lo, c.Hi, c.Rows.Rows())
		}
	})
}

func assertChunkRowsEqual(t *testing.T, got, want vecmat.Matrix) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Stride() != want.Stride() {
		t.Fatalf("matrix shape (%d, %d), want (%d, %d)", got.Rows(), got.Stride(), want.Rows(), want.Stride())
	}
	for i := 0; i < want.Rows(); i++ {
		g, w := got.Row(i), want.Row(i)
		for j := range w {
			if g[j] != w[j] {
				t.Fatalf("row %d col %d: %v != %v", i, j, g[j], w[j])
			}
		}
	}
}
