package cluster

import (
	"fmt"

	"stablerank/internal/geom"
)

// RegionSpec is the wire form of a region of interest — the textual
// parameterization the CLI flags, the HTTP query parameters and the fill
// protocol all share: reference weights plus either a hypercone half-angle
// or a minimum cosine similarity. With neither set the region is the whole
// non-negative function space of dimension D. Two nodes given equal specs
// reconstruct bit-identical regions, which (with seed and chunk index) is
// everything the deterministic chunk draw depends on.
type RegionSpec struct {
	D       int       `json:"d"`
	Weights []float64 `json:"weights,omitempty"`
	Theta   float64   `json:"theta,omitempty"`
	Cosine  float64   `json:"cosine,omitempty"`
}

// Region reconstructs the geometric region the spec describes.
func (rs RegionSpec) Region() (geom.Region, error) {
	if rs.D < 2 {
		return nil, fmt.Errorf("cluster: region dimension %d < 2", rs.D)
	}
	switch {
	case rs.Theta > 0 && rs.Cosine > 0:
		return nil, fmt.Errorf("cluster: region has both theta and cosine")
	case rs.Theta > 0 || rs.Cosine > 0:
		if len(rs.Weights) != rs.D {
			return nil, fmt.Errorf("cluster: region weights have %d components, want %d", len(rs.Weights), rs.D)
		}
		var (
			c   geom.Cone
			err error
		)
		if rs.Theta > 0 {
			c, err = geom.NewCone(geom.NewVector(rs.Weights...), rs.Theta)
		} else {
			c, err = geom.NewConeFromCosine(geom.NewVector(rs.Weights...), rs.Cosine)
		}
		if err != nil {
			return nil, err
		}
		return c, nil
	default:
		return geom.FullSpace{D: rs.D}, nil
	}
}
