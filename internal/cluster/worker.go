package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"stablerank/internal/mc"
)

// The fill worker: the remote end of the chunk-fill protocol. A worker is
// stateless and dataset-free — pool samples are weight-space draws, so all a
// worker needs is the region spec, the seed, and which chunks to compute.
// Any stablerankd node can serve as a fill worker (the endpoint is mounted
// on every node), and cmd/stablerankd's -worker mode runs ONLY this.

// FillRequest is the POST /cluster/v1/fill body: compute the listed chunks
// of a Total-sample pool drawn from Region with Seed. DatasetHash is
// advisory (logging/tracing); chunk contents never depend on it.
type FillRequest struct {
	DatasetHash string     `json:"dataset_hash,omitempty"`
	Region      RegionSpec `json:"region"`
	Seed        int64      `json:"seed"`
	Total       int        `json:"total"`
	Chunks      []int      `json:"chunks"`
}

// Validate checks the request's internal consistency against the worker's
// sample-count bound.
func (fr FillRequest) Validate(maxSamples int) error {
	if fr.Total < 1 || (maxSamples > 0 && fr.Total > maxSamples) {
		return fmt.Errorf("total %d out of range [1, %d]", fr.Total, maxSamples)
	}
	if _, err := fr.Region.Region(); err != nil {
		return err
	}
	n := mc.Chunks(fr.Total)
	if len(fr.Chunks) == 0 || len(fr.Chunks) > n {
		return fmt.Errorf("chunk list has %d entries, want 1..%d", len(fr.Chunks), n)
	}
	for _, c := range fr.Chunks {
		if c < 0 || c >= n {
			return fmt.Errorf("chunk %d out of range [0, %d)", c, n)
		}
	}
	return nil
}

// WorkerStats is a point-in-time snapshot of a fill worker's counters.
type WorkerStats struct {
	Requests     int64 `json:"requests"`
	ChunksServed int64 `json:"chunks_served"`
	RowsServed   int64 `json:"rows_served"`
	Rejected     int64 `json:"rejected"`
}

// Worker serves the chunk-fill protocol over HTTP.
type Worker struct {
	// MaxSamples rejects fill requests for pools beyond this bound
	// (0 = the 2,000,000 default, matching the server's MaxSampleCount).
	MaxSamples int
	// Logf receives one line per rejected request; nil disables logging.
	Logf func(format string, args ...any)

	requests     atomic.Int64
	chunksServed atomic.Int64
	rowsServed   atomic.Int64
	rejected     atomic.Int64
}

// Stats returns the worker's counters.
func (wk *Worker) Stats() WorkerStats {
	return WorkerStats{
		Requests:     wk.requests.Load(),
		ChunksServed: wk.chunksServed.Load(),
		RowsServed:   wk.rowsServed.Load(),
		Rejected:     wk.rejected.Load(),
	}
}

// Handler returns the worker's HTTP surface:
//
//	GET  /cluster/v1/ping  liveness (JSON)
//	POST /cluster/v1/fill  chunk fill (length-prefixed binary frames)
func (wk *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cluster/v1/ping", wk.handlePing)
	mux.HandleFunc("POST /cluster/v1/fill", wk.handleFill)
	return mux
}

func (wk *Worker) logf(format string, args ...any) {
	if wk.Logf != nil {
		wk.Logf(format, args...)
	}
}

func (wk *Worker) handlePing(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"status":"ok","role":"fill-worker"}` + "\n"))
}

// handleFill computes the requested chunks and streams them back as
// length-prefixed frames, flushing after each so the coordinator splices
// chunks as they arrive. A fill error mid-stream simply ends the response
// early: the coordinator detects the short stream and re-fills the missing
// chunks locally — bit-identically, per the determinism contract.
func (wk *Worker) handleFill(w http.ResponseWriter, r *http.Request) {
	wk.requests.Add(1)
	var req FillRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		wk.reject(w, http.StatusBadRequest, "decoding fill request: %v", err)
		return
	}
	maxSamples := wk.MaxSamples
	if maxSamples <= 0 {
		maxSamples = 2_000_000
	}
	if err := req.Validate(maxSamples); err != nil {
		wk.reject(w, http.StatusBadRequest, "fill request: %v", err)
		return
	}
	region, err := req.Region.Region()
	if err != nil {
		wk.reject(w, http.StatusBadRequest, "fill region: %v", err)
		return
	}
	factory := mc.ConeSamplers(region, req.Seed)
	w.Header().Set("Content-Type", "application/octet-stream")
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	for _, chunk := range req.Chunks {
		lo, hi := mc.ChunkRange(chunk, req.Total)
		rows, err := mc.FillChunk(ctx, factory, chunk, req.Total, req.Region.D)
		if err != nil {
			wk.logf("cluster worker: filling chunk %d of %d-sample pool: %v", chunk, req.Total, err)
			return
		}
		if err := WriteChunk(w, Chunk{Index: chunk, Lo: lo, Hi: hi, Rows: rows}); err != nil {
			return // coordinator went away; nothing useful left to do
		}
		wk.chunksServed.Add(1)
		wk.rowsServed.Add(int64(hi - lo))
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (wk *Worker) reject(w http.ResponseWriter, code int, format string, args ...any) {
	wk.rejected.Add(1)
	msg := fmt.Sprintf(format, args...)
	wk.logf("cluster worker: %s", msg)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
