package sampling

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"stablerank/internal/geom"
	"stablerank/internal/stats"
)

// Cap samples uniformly from the spherical cap of half-angle theta around a
// reference ray (Algorithm 11). The polar angle from the cap centre is drawn
// by inverse CDF — the closed form of Equation 15 for d = 3, the trivial
// uniform angle for d = 2, and the Riemann-sum table of Algorithm 10
// otherwise — then combined with a uniform direction on the (d-2)-sphere and
// rotated so the cap centre falls on the reference ray (Algorithm 13 /
// Appendix A).
//
// Because the paper's regions of interest are cones intersected with the
// non-negative orthant, samples falling outside the orthant (possible when
// the cap overhangs an axis plane) are rejected and redrawn.
type Cap struct {
	cone     geom.Cone
	rng      *rand.Rand
	rot      geom.Rotation
	table    *stats.RiemannTable // nil when a closed form applies
	maxTries int
	buf      geom.Vector // pre-rotation scratch point, reused across draws
}

// DefaultRiemannPartitions is the table resolution gamma used by NewCap for
// d > 3; the paper suggests O(n) partitions, 4096 keeps inverse-CDF error
// ~1e-4 radians for any theta <= pi/2.
const DefaultRiemannPartitions = 4096

// NewCap returns a uniform sampler over cone (intersected with the
// non-negative orthant).
func NewCap(cone geom.Cone, rng *rand.Rand) (*Cap, error) {
	if rng == nil {
		return nil, errors.New("sampling: nil rng")
	}
	d := cone.Dim()
	if d < 2 {
		return nil, fmt.Errorf("sampling: cone dimension %d < 2", d)
	}
	if cone.Theta <= 0 || cone.Theta > math.Pi/2 {
		return nil, fmt.Errorf("sampling: cone half-angle %v out of (0, pi/2]", cone.Theta)
	}
	rot, err := geom.NewAxisRotation(cone.Axis)
	if err != nil {
		return nil, err
	}
	c := &Cap{cone: cone, rng: rng, rot: rot, maxTries: DefaultRejectionBudget, buf: make(geom.Vector, d)}
	if d > 3 {
		tab, err := stats.NewRiemannTable(d, cone.Theta, DefaultRiemannPartitions)
		if err != nil {
			return nil, err
		}
		c.table = tab
	}
	return c, nil
}

// Dim returns the ambient dimension.
func (c *Cap) Dim() int { return c.cone.Dim() }

// polarAngle draws the angle from the cap centre with the density
// proportional to sin^{d-2}, by inverse CDF.
func (c *Cap) polarAngle() float64 {
	y := c.rng.Float64()
	d := c.cone.Dim()
	switch {
	case d == 2:
		// sin^0 = 1: the angle is uniform on [-theta, theta]; the sign is
		// the 0-sphere direction chosen in Sample.
		return y * c.cone.Theta
	case d == 3:
		return stats.CapCDF3DInverse(y, c.cone.Theta) // Equation 15
	default:
		return c.table.InverseCDF(y)
	}
}

// Sample draws a uniform point on the cap, rejecting draws outside the
// non-negative orthant.
func (c *Cap) Sample() (geom.Vector, error) {
	w := make(geom.Vector, c.cone.Dim())
	if err := c.SampleInto(w); err != nil {
		return nil, err
	}
	return w, nil
}

// SampleInto is Sample writing into dst (see IntoSampler): the
// pre-rotation point lives in a reused scratch buffer and the rotation
// writes straight into dst, so a draw performs no allocation.
func (c *Cap) SampleInto(dst geom.Vector) error {
	d := c.cone.Dim()
	if len(dst) != d {
		return fmt.Errorf("sampling: buffer dimension %d != sampler dimension %d", len(dst), d)
	}
	for try := 0; try < c.maxTries; try++ {
		x := c.polarAngle()
		p := c.buf
		if d == 2 {
			// The (d-2)-sphere is two points: choose the side at random.
			if c.rng.Intn(2) == 0 {
				x = -x
			}
			p[0] = math.Sin(x)
			p[1] = math.Cos(x)
		} else {
			// Uniform direction on the (d-2)-sphere in the first d-1
			// coordinates (normalized normals, Section 5.1), scaled by
			// sin(x); the cap axis (d-th coordinate) carries cos(x).
			var norm2 float64
			for i := 0; i < d-1; i++ {
				g := c.rng.NormFloat64()
				p[i] = g
				norm2 += g * g
			}
			if norm2 < 1e-24 {
				continue
			}
			scale := math.Sin(x) / math.Sqrt(norm2)
			for i := 0; i < d-1; i++ {
				p[i] *= scale
			}
			p[d-1] = math.Cos(x)
		}
		c.rot.ApplyTo(dst, p)
		if dst.NonNegative(geom.Eps) {
			// Clamp the numerically-negligible negatives introduced by the
			// rotation so downstream orthant checks see clean values.
			for i := range dst {
				if dst[i] < 0 {
					dst[i] = 0
				}
			}
			return nil
		}
	}
	return fmt.Errorf("%w (cap outside orthant too often)", ErrRejectionBudget)
}

// ForRegion returns an unbiased sampler for the given region of interest,
// choosing the specialized cap sampler for cones, the direct sampler for the
// full space, and acceptance-rejection from U for anything else (e.g.
// constraint regions).
func ForRegion(region geom.Region, rng *rand.Rand) (Sampler, error) {
	switch t := region.(type) {
	case geom.FullSpace:
		return NewUniform(t.D, rng)
	case geom.Cone:
		return NewCap(t, rng)
	case geom.Interval2D:
		cone, err := geom.NewCone(geom.Ray2D((t.Lo+t.Hi)/2), math.Max((t.Hi-t.Lo)/2, 1e-12))
		if err != nil {
			return nil, err
		}
		return NewCap(cone, rng)
	default:
		u, err := NewUniform(region.Dim(), rng)
		if err != nil {
			return nil, err
		}
		return NewRejection(u, region, 0)
	}
}

// RejectionCost is the expected number of proposals per accepted sample when
// rejecting from the full space U into a cap of half-angle theta in R^d: the
// area ratio of U to the cap portion inside the orthant is bounded below by
// the U-to-cap ratio, which Equation 13 gives in closed form.
func RejectionCost(d int, theta float64) float64 {
	area := geom.CapArea(d, theta)
	if area <= 0 {
		return math.Inf(1)
	}
	return geom.OrthantArea(d) / area
}

// PreferInverseCDF implements the paper's Section 5.2 cost comparison: the
// inverse-CDF sampler costs O(log gamma) per draw against the expected
// 1/acceptance draws of rejection; it reports true when the inverse-CDF
// method is expected to be cheaper.
func PreferInverseCDF(d int, theta float64, gamma int) bool {
	if gamma < 2 {
		gamma = 2
	}
	return math.Log2(float64(gamma)) < RejectionCost(d, theta)
}
