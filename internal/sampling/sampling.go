// Package sampling implements the unbiased function-space samplers of
// Section 5: uniform sampling of the whole function space U (Algorithm 9,
// normalized half-normal draws), the inverse-CDF spherical-cap sampler for a
// hypercone region of interest (Algorithms 10, 11 and 13, with the d = 3
// closed form of Equation 15), acceptance-rejection sampling for arbitrary
// regions (Section 5.2), the biased angle-uniform sampler the paper shows as
// a counterexample (Figure 3), and the cost model that selects between
// rejection and inverse-CDF sampling.
package sampling

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"stablerank/internal/geom"
)

// Sampler draws unit weight vectors uniformly at random from a region of the
// function space. Implementations are deterministic given the injected
// *rand.Rand.
type Sampler interface {
	// Sample returns a fresh unit vector in the region.
	Sample() (geom.Vector, error)
	// Dim returns the ambient dimension.
	Dim() int
}

// IntoSampler is implemented by samplers that can write the drawn vector
// into a caller-provided buffer, eliminating the per-sample allocation of
// Sample. SampleInto consumes exactly the same RNG stream as Sample, so a
// sequence of draws is bit-identical whichever entry point is used.
type IntoSampler interface {
	Sampler
	// SampleInto draws a fresh unit vector in the region into dst, which
	// must have the sampler's dimension.
	SampleInto(dst geom.Vector) error
}

// Into draws one sample into dst, using SampleInto when the sampler
// supports it and falling back to Sample plus a copy otherwise. Hot loops
// drawing many samples should hoist the type assertion themselves.
func Into(s Sampler, dst geom.Vector) error {
	if si, ok := s.(IntoSampler); ok {
		return si.SampleInto(dst)
	}
	w, err := s.Sample()
	if err != nil {
		return err
	}
	copy(dst, w)
	return nil
}

// ErrRejectionBudget is returned when acceptance-rejection sampling exceeds
// its trial budget, which indicates a region of (near-)zero volume.
var ErrRejectionBudget = errors.New("sampling: acceptance-rejection trial budget exhausted")

// Uniform samples the whole function space U: uniform points on the
// non-negative orthant of the unit (d-1)-sphere (Algorithm 9). Sampling the
// absolute values of d standard normals and normalizing is uniform because
// the spherical normal density is constant on spheres; taking absolute
// values folds the sphere onto the orthant, which preserves uniformity.
type Uniform struct {
	d   int
	rng *rand.Rand
}

// NewUniform returns a uniform sampler over U in R^d.
func NewUniform(d int, rng *rand.Rand) (*Uniform, error) {
	if d < 2 {
		return nil, fmt.Errorf("sampling: dimension %d < 2", d)
	}
	if rng == nil {
		return nil, errors.New("sampling: nil rng")
	}
	return &Uniform{d: d, rng: rng}, nil
}

// Dim returns the ambient dimension.
func (u *Uniform) Dim() int { return u.d }

// Sample implements Algorithm 9 (SampleU).
func (u *Uniform) Sample() (geom.Vector, error) {
	v := make(geom.Vector, u.d)
	if err := u.SampleInto(v); err != nil {
		return nil, err
	}
	return v, nil
}

// SampleInto is Sample writing into dst (see IntoSampler).
func (u *Uniform) SampleInto(dst geom.Vector) error {
	if len(dst) != u.d {
		return fmt.Errorf("sampling: buffer dimension %d != sampler dimension %d", len(dst), u.d)
	}
	for {
		var norm2 float64
		for i := range dst {
			x := math.Abs(u.rng.NormFloat64())
			dst[i] = x
			norm2 += x * x
		}
		if norm2 > 1e-24 {
			n := math.Sqrt(norm2)
			for i := range dst {
				dst[i] /= n
			}
			return nil
		}
		// All-zero draw: astronomically unlikely; retry.
	}
}

// BiasedAngles is the naive sampler of Figure 3: it draws the d-1 polar
// angles uniformly in [0, pi/2] and converts to Cartesian coordinates. The
// result is NOT uniform on the sphere for d > 2; it exists to demonstrate
// and test that bias, exactly as the paper does.
type BiasedAngles struct {
	d   int
	rng *rand.Rand
}

// NewBiasedAngles returns the angle-uniform (biased) sampler.
func NewBiasedAngles(d int, rng *rand.Rand) (*BiasedAngles, error) {
	if d < 2 {
		return nil, fmt.Errorf("sampling: dimension %d < 2", d)
	}
	if rng == nil {
		return nil, errors.New("sampling: nil rng")
	}
	return &BiasedAngles{d: d, rng: rng}, nil
}

// Dim returns the ambient dimension.
func (b *BiasedAngles) Dim() int { return b.d }

// Sample draws uniform angles and maps them onto the sphere.
func (b *BiasedAngles) Sample() (geom.Vector, error) {
	angles := make([]float64, b.d-1)
	for i := range angles {
		angles[i] = b.rng.Float64() * math.Pi / 2
	}
	return geom.FromPolar(1, angles), nil
}

// Rejection samples a region by drawing from a proposal sampler and keeping
// draws inside the region (Section 5.2). The proposal must cover the region.
type Rejection struct {
	proposal Sampler
	region   geom.Region
	maxTries int

	trials  int // total proposals drawn, for acceptance-rate reporting
	accepts int
}

// DefaultRejectionBudget bounds the number of consecutive rejected proposals
// before Sample gives up; 1/budget is the smallest region volume fraction
// reliably samplable.
const DefaultRejectionBudget = 2_000_000

// NewRejection wraps proposal with an accept test for region.
func NewRejection(proposal Sampler, region geom.Region, maxTries int) (*Rejection, error) {
	if proposal == nil {
		return nil, errors.New("sampling: nil proposal sampler")
	}
	if region == nil {
		return nil, errors.New("sampling: nil region")
	}
	if proposal.Dim() != region.Dim() {
		return nil, fmt.Errorf("sampling: proposal dimension %d != region dimension %d", proposal.Dim(), region.Dim())
	}
	if maxTries <= 0 {
		maxTries = DefaultRejectionBudget
	}
	return &Rejection{proposal: proposal, region: region, maxTries: maxTries}, nil
}

// Dim returns the ambient dimension.
func (r *Rejection) Dim() int { return r.proposal.Dim() }

// Sample draws until a proposal lands in the region or the budget runs out.
func (r *Rejection) Sample() (geom.Vector, error) {
	v := make(geom.Vector, r.Dim())
	if err := r.SampleInto(v); err != nil {
		return nil, err
	}
	return v, nil
}

// SampleInto is Sample writing into dst (see IntoSampler).
func (r *Rejection) SampleInto(dst geom.Vector) error {
	for i := 0; i < r.maxTries; i++ {
		if err := Into(r.proposal, dst); err != nil {
			return err
		}
		r.trials++
		if r.region.Contains(dst) {
			r.accepts++
			return nil
		}
	}
	return fmt.Errorf("%w (budget %d)", ErrRejectionBudget, r.maxTries)
}

// AcceptanceRate reports the empirical acceptance probability so far, or 0
// before the first trial.
func (r *Rejection) AcceptanceRate() float64 {
	if r.trials == 0 {
		return 0
	}
	return float64(r.accepts) / float64(r.trials)
}
