package sampling

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"stablerank/internal/geom"
	"stablerank/internal/stats"
)

func TestUniformSamplesAreUnitOrthant(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, d := range []int{2, 3, 5} {
		u, err := NewUniform(d, rng)
		if err != nil {
			t.Fatal(err)
		}
		if u.Dim() != d {
			t.Errorf("Dim = %d", u.Dim())
		}
		for i := 0; i < 500; i++ {
			w, err := u.Sample()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(w.Norm()-1) > 1e-9 {
				t.Fatalf("d=%d: sample norm %v", d, w.Norm())
			}
			if !w.NonNegative(0) {
				t.Fatalf("d=%d: sample %v outside orthant", d, w)
			}
		}
	}
}

func TestNewUniformValidation(t *testing.T) {
	if _, err := NewUniform(1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("d=1 accepted")
	}
	if _, err := NewUniform(3, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

// Uniformity on the sphere: for a uniform point on the orthant of S^2, the
// coordinate z has density proportional to 1 (Archimedes): z is uniform on
// [0, 1]. Check with a chi-square test.
func TestUniformArchimedesProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	u, _ := NewUniform(3, rng)
	zs := make([]float64, 40000)
	for i := range zs {
		w, err := u.Sample()
		if err != nil {
			t.Fatal(err)
		}
		zs[i] = w[2]
	}
	stat, crit, ok, err := stats.UniformityTest(zs, 40, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("z-projection of uniform sphere samples rejected: stat=%v crit=%v", stat, crit)
	}
}

// The biased angle sampler must FAIL the same projection test — this is the
// paper's Figure 3 demonstration.
func TestBiasedAnglesAreNotUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	b, err := NewBiasedAngles(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if b.Dim() != 3 {
		t.Error("Dim")
	}
	zs := make([]float64, 40000)
	for i := range zs {
		w, err := b.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w.Norm()-1) > 1e-9 {
			t.Fatal("biased sample not unit")
		}
		zs[i] = w[2]
	}
	_, _, ok, err := stats.UniformityTest(zs, 40, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("angle-uniform sampler passed the uniformity test; it should be biased (Figure 3)")
	}
}

func TestNewBiasedAnglesValidation(t *testing.T) {
	if _, err := NewBiasedAngles(1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("d=1 accepted")
	}
	if _, err := NewBiasedAngles(3, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestCapSamplesInsideCone(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for _, d := range []int{2, 3, 4, 5} {
		axis := make(geom.Vector, d)
		for i := range axis {
			axis[i] = 1
		}
		cone, err := geom.NewCone(axis, math.Pi/10)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCap(cone, rng)
		if err != nil {
			t.Fatal(err)
		}
		if c.Dim() != d {
			t.Errorf("Dim = %d", c.Dim())
		}
		for i := 0; i < 1000; i++ {
			w, err := c.Sample()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(w.Norm()-1) > 1e-9 {
				t.Fatalf("d=%d: cap sample norm %v", d, w.Norm())
			}
			a, err := geom.Angle(w, cone.Axis)
			if err != nil {
				t.Fatal(err)
			}
			if a > cone.Theta+1e-9 {
				t.Fatalf("d=%d: sample at angle %v > theta %v", d, a, cone.Theta)
			}
			if !w.NonNegative(0) {
				t.Fatalf("d=%d: cap sample %v outside orthant", d, w)
			}
		}
	}
}

// The polar angle of a uniform cap sample has CDF F(x) of Equation 16; apply
// the probability integral transform and chi-square the result.
func TestCapAngleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for _, d := range []int{2, 3, 4, 6} {
		// Cap fully inside the orthant (axis-to-boundary angle is
		// asin(1/sqrt(d)) ~ 0.42 for d = 6 > pi/8), so no orthant rejection
		// perturbs the radial law.
		axis := make(geom.Vector, d)
		for i := range axis {
			axis[i] = 1
		}
		axis = axis.MustNormalize()
		theta := math.Pi / 8
		cone := geom.Cone{Axis: axis, Theta: theta}
		c, err := NewCap(cone, rng)
		if err != nil {
			t.Fatal(err)
		}
		us := make([]float64, 20000)
		for i := range us {
			w, err := c.Sample()
			if err != nil {
				t.Fatal(err)
			}
			a, _ := geom.Angle(w, axis)
			if d == 2 {
				// F is the signed-angle CDF: angle is uniform on
				// [-theta, theta] so |angle| has CDF a/theta.
				us[i] = a / theta
			} else {
				us[i] = stats.CapCDF(a, theta, d)
			}
		}
		stat, crit, ok, err := stats.UniformityTest(us, 30, 0.001)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("d=%d: cap polar-angle PIT rejected: stat=%v crit=%v", d, stat, crit)
		}
	}
}

// Cap samples must be uniform within the cap, not merely have the right
// radial law: test rotational symmetry by checking the sign balance of a
// tangential coordinate.
func TestCapTangentialSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	axis := geom.Vector{1, 1, 1, 1}.MustNormalize()
	cone := geom.Cone{Axis: axis, Theta: math.Pi / 12}
	c, err := NewCap(cone, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Tangent direction orthogonal to the axis.
	tangent := geom.Vector{1, -1, 0, 0}.MustNormalize()
	pos, n := 0, 20000
	for i := 0; i < n; i++ {
		w, err := c.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if tangent.Dot(w) > 0 {
			pos++
		}
	}
	frac := float64(pos) / float64(n)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("tangential sign fraction = %v, want ~0.5", frac)
	}
}

func TestNewCapValidation(t *testing.T) {
	cone := geom.Cone{Axis: geom.Vector{1, 0}, Theta: 0.1}
	if _, err := NewCap(cone, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewCap(geom.Cone{Axis: geom.Vector{1, 0}, Theta: 0}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero angle accepted")
	}
	if _, err := NewCap(geom.Cone{Axis: geom.Vector{1}, Theta: 0.1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("d=1 accepted")
	}
}

func TestCapNearOrthantBoundary(t *testing.T) {
	// A cone hugging the x-axis overhangs the orthant; samples must still be
	// non-negative (overhang rejected internally).
	rng := rand.New(rand.NewSource(67))
	cone, err := geom.NewCone(geom.Vector{1, 0.05, 0.05}, math.Pi/8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCap(cone, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		w, err := c.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if !w.NonNegative(0) {
			t.Fatalf("sample %v outside orthant", w)
		}
	}
}

func TestRejectionSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	u, _ := NewUniform(3, rng)
	region, err := geom.NewConstraintRegion(3,
		geom.Halfspace{Normal: geom.Vector{1, -1, 0}, Positive: true}, // w1 >= w2
	)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRejection(u, region, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dim() != 3 {
		t.Error("Dim")
	}
	for i := 0; i < 2000; i++ {
		w, err := r.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if !region.Contains(w) {
			t.Fatalf("rejected-region sample %v outside region", w)
		}
	}
	// Half the orthant satisfies w1 >= w2 by symmetry.
	if rate := r.AcceptanceRate(); math.Abs(rate-0.5) > 0.05 {
		t.Errorf("acceptance rate = %v, want ~0.5", rate)
	}
}

func TestRejectionBudgetExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	u, _ := NewUniform(2, rng)
	// Empty region: contradictory constraints.
	region, err := geom.NewConstraintRegion(2,
		geom.Halfspace{Normal: geom.Vector{1, -1}, Positive: true},
		geom.Halfspace{Normal: geom.Vector{-1, 1}.Scale(1), Positive: true},
		geom.Halfspace{Normal: geom.Vector{0, -1}, Positive: true}, // w2 <= 0 and w1 = w2 -> measure zero
	)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRejection(u, region, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Sample(); !errors.Is(err, ErrRejectionBudget) {
		t.Errorf("expected budget error, got %v", err)
	}
	if r.AcceptanceRate() != 0 {
		t.Error("acceptance rate should be 0")
	}
}

func TestNewRejectionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	u, _ := NewUniform(2, rng)
	if _, err := NewRejection(nil, geom.FullSpace{D: 2}, 0); err == nil {
		t.Error("nil proposal accepted")
	}
	if _, err := NewRejection(u, nil, 0); err == nil {
		t.Error("nil region accepted")
	}
	if _, err := NewRejection(u, geom.FullSpace{D: 3}, 0); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestForRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	// Full space -> Uniform.
	s, err := ForRegion(geom.FullSpace{D: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*Uniform); !ok {
		t.Errorf("full space sampler is %T", s)
	}
	// Cone -> Cap.
	cone, _ := geom.NewCone(geom.Vector{1, 1, 1}, 0.2)
	s, err = ForRegion(cone, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*Cap); !ok {
		t.Errorf("cone sampler is %T", s)
	}
	// Interval2D -> Cap via equivalent cone.
	iv, _ := geom.NewInterval2D(0.2, 0.6)
	s, err = ForRegion(iv, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		w, err := s.Sample()
		if err != nil {
			t.Fatal(err)
		}
		a := geom.Angle2D(w)
		if a < 0.2-1e-9 || a > 0.6+1e-9 {
			t.Fatalf("interval sample at angle %v outside [0.2, 0.6]", a)
		}
	}
	// Constraint region -> Rejection.
	cr, _ := geom.NewConstraintRegion(2, geom.Halfspace{Normal: geom.Vector{1, -1}, Positive: true})
	s, err = ForRegion(cr, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*Rejection); !ok {
		t.Errorf("constraint sampler is %T", s)
	}
}

func TestRejectionCostAndPreference(t *testing.T) {
	// Narrow cones are expensive to hit by rejection.
	narrow := RejectionCost(3, math.Pi/100)
	wide := RejectionCost(3, math.Pi/4)
	if narrow <= wide {
		t.Errorf("narrow cone cost %v should exceed wide cone cost %v", narrow, wide)
	}
	if !PreferInverseCDF(3, math.Pi/100, 4096) {
		t.Error("inverse CDF should win for a narrow cone")
	}
	if PreferInverseCDF(2, math.Pi/2, 1<<30) {
		t.Error("rejection should win for a huge table and wide cone")
	}
	if !math.IsInf(RejectionCost(3, 0), 1) {
		t.Error("zero-angle cone should have infinite rejection cost")
	}
}

// Determinism: same seed, same stream.
func TestSamplersDeterministic(t *testing.T) {
	cone, _ := geom.NewCone(geom.Vector{1, 1, 1}, 0.3)
	a, _ := NewCap(cone, rand.New(rand.NewSource(99)))
	b, _ := NewCap(cone, rand.New(rand.NewSource(99)))
	for i := 0; i < 50; i++ {
		wa, _ := a.Sample()
		wb, _ := b.Sample()
		if !wa.Equal(wb, 0) {
			t.Fatal("cap sampler not deterministic for fixed seed")
		}
	}
}
