package server

import (
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"sync"

	"stablerank"
	"stablerank/internal/store"
)

// Registry is the named-dataset catalog the service queries against.
// Datasets are registered at startup (from CSV files) or at runtime (POST
// /datasets/{name}); both paths replace an existing name atomically and bump
// the name's generation so analyzers and cached results built against the
// old data are never served for the new. With a store attached (AttachStore),
// every registration is persisted and reloaded on the next boot.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*registryEntry // guarded by mu
	store   store.Store               // nil until AttachStore
}

type registryEntry struct {
	ds  *stablerank.Dataset
	gen int64
	// ver counts delta applications within one generation: a full replacement
	// bumps gen and resets ver, a PATCH bumps only ver. Keeping the two apart
	// lets delta-aware maintenance migrate derived state in place while
	// replacements still invalidate wholesale. ver is not persisted — every
	// ver-keyed artifact (analyzers, response cache) is in-memory, so after a
	// restart ver 0 over the persisted dataset is consistent by construction.
	ver int64
}

// datasetNameRE bounds names to something that is safe in URLs and cache
// keys.
var datasetNameRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// reservedDatasetNames are path segments the /v1 router claims for itself:
// GET /v1/jobs/{id} shares the /v1/{dataset}/{op} dispatcher, so a dataset
// named "jobs" would be unreachable. Registration rejects them loudly
// instead of creating a silently dead dataset.
var reservedDatasetNames = map[string]bool{"jobs": true}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*registryEntry)}
}

// Add registers ds under name, replacing any existing dataset with that name
// and invalidating results derived from it. The dataset must have at least
// one item and at least two scoring attributes (the analyzer's floor).
func (r *Registry) Add(name string, ds *stablerank.Dataset) error {
	if !datasetNameRE.MatchString(name) {
		return fmt.Errorf("server: invalid dataset name %q (want %s)", name, datasetNameRE)
	}
	if reservedDatasetNames[name] {
		return fmt.Errorf("server: dataset name %q is reserved by the /v1 API", name)
	}
	if ds == nil || ds.N() == 0 {
		return stablerank.ErrEmptyDataset
	}
	if ds.D() < 2 {
		return fmt.Errorf("server: dataset %q has %d scoring attributes, need >= 2", name, ds.D())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.entries[name]
	gen := int64(1)
	if prev != nil {
		gen = prev.gen + 1
	}
	e := &registryEntry{ds: ds, gen: gen}
	// Persist before installing: a dataset the client was told is registered
	// must survive a restart, so a write failure rejects the registration.
	if r.store != nil {
		if err := persistDataset(r.store, name, e); err != nil {
			return fmt.Errorf("server: persisting dataset %q: %w", name, err)
		}
	}
	r.entries[name] = e
	return nil
}

// persistDataset writes one catalog record. Callers hold r.mu.
func persistDataset(st store.Store, name string, e *registryEntry) error {
	data, err := store.EncodeDataset(uint64(e.gen), e.ds)
	if err != nil {
		return err
	}
	return st.Put(store.NSDatasets, name, data)
}

// AttachStore reloads the persisted catalog into the registry and starts
// persisting every subsequent Add through st. Merge rule when a name exists
// on both sides (a startup CSV flag naming an already persisted dataset): the
// in-memory dataset wins — the operator's explicit file is fresher than the
// stored copy — but adopts a generation past the persisted one, so analyzers
// and cached results keyed against the stored generation cannot be confused
// with the new content. Unreadable or corrupt records are skipped with a log
// line (the store has already quarantined them), never fatal: a damaged
// catalog entry costs one dataset, not the boot. Returns how many datasets
// were restored from the store.
func (r *Registry) AttachStore(st store.Store, logf func(format string, args ...any)) (int, error) {
	entries, err := st.Entries(store.NSDatasets)
	if err != nil {
		return 0, fmt.Errorf("server: listing persisted datasets: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	loaded := 0
	persisted := make(map[string]bool, len(entries))
	for _, ent := range entries {
		name := ent.Key
		if !datasetNameRE.MatchString(name) || reservedDatasetNames[name] {
			logf("stablerankd: persisted dataset %q has an invalid name, skipping", name)
			continue
		}
		data, err := st.Get(store.NSDatasets, name)
		if err != nil {
			logf("stablerankd: persisted dataset %q unreadable, skipping: %v", name, err)
			continue
		}
		gen, ds, err := store.DecodeDataset(data)
		if err != nil {
			logf("stablerankd: persisted dataset %q malformed, skipping: %v", name, err)
			continue
		}
		persisted[name] = true
		if prev, ok := r.entries[name]; ok {
			if g := int64(gen); g >= prev.gen {
				prev.gen = g + 1
			}
			if err := persistDataset(st, name, prev); err != nil {
				return loaded, fmt.Errorf("server: re-persisting dataset %q: %w", name, err)
			}
			continue
		}
		r.entries[name] = &registryEntry{ds: ds, gen: int64(gen)}
		loaded++
	}
	// First boot with startup CSVs: persist the entries the store has never
	// seen, in sorted order so the store sees a stable write sequence.
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if persisted[name] {
			continue
		}
		if err := persistDataset(st, name, r.entries[name]); err != nil {
			return loaded, fmt.Errorf("server: persisting dataset %q: %w", name, err)
		}
	}
	r.store = st
	return loaded, nil
}

// AddCSV parses a CSV dataset from rd and registers it under name.
func (r *Registry) AddCSV(name string, rd io.Reader, hasHeader bool) error {
	ds, err := stablerank.ReadCSV(rd, hasHeader)
	if err != nil {
		return err
	}
	return r.Add(name, ds)
}

// LoadCSVFile reads the CSV file at path and registers it under name.
func (r *Registry) LoadCSVFile(name, path string, hasHeader bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return r.AddCSV(name, f, hasHeader)
}

// Get returns the dataset registered under name together with its
// generation (monotonic per name, starting at 1) and its delta version
// (bumped by ApplyDeltas, reset by a full replacement).
func (r *Registry) Get(name string) (ds *stablerank.Dataset, gen, ver int64, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, 0, 0, false
	}
	return e.ds, e.gen, e.ver, true
}

// ApplyDeltas mutates the dataset registered under name by applying the
// deltas in order, installing the result under the same generation with the
// delta version bumped. Unlike Add, this does NOT bump the generation:
// derived state is migrated incrementally by the caller, not thrown away.
// The mutated dataset is persisted (under its unchanged generation) so it
// survives a restart. The whole batch fails atomically on any invalid delta
// or if it would empty the dataset.
func (r *Registry) ApplyDeltas(name string, deltas []stablerank.Delta) (ds *stablerank.Dataset, gen, ver int64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, ok := r.entries[name]
	if !ok {
		return nil, 0, 0, fmt.Errorf("server: dataset %q not found", name)
	}
	nds, err := stablerank.ApplyDeltas(prev.ds, deltas...)
	if err != nil {
		return nil, 0, 0, err
	}
	if nds.N() == 0 {
		return nil, 0, 0, fmt.Errorf("server: deltas would empty dataset %q", name)
	}
	e := &registryEntry{ds: nds, gen: prev.gen, ver: prev.ver + 1}
	if r.store != nil {
		if err := persistDataset(r.store, name, e); err != nil {
			return nil, 0, 0, fmt.Errorf("server: persisting dataset %q: %w", name, err)
		}
	}
	r.entries[name] = e
	return e.ds, e.gen, e.ver, nil
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
