package server

import (
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"sync"

	"stablerank"
)

// Registry is the named-dataset catalog the service queries against.
// Datasets are registered at startup (from CSV files) or at runtime (POST
// /datasets/{name}); both paths replace an existing name atomically and bump
// the name's generation so analyzers and cached results built against the
// old data are never served for the new.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*registryEntry
}

type registryEntry struct {
	ds  *stablerank.Dataset
	gen int64
}

// datasetNameRE bounds names to something that is safe in URLs and cache
// keys.
var datasetNameRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// reservedDatasetNames are path segments the /v1 router claims for itself:
// GET /v1/jobs/{id} shares the /v1/{dataset}/{op} dispatcher, so a dataset
// named "jobs" would be unreachable. Registration rejects them loudly
// instead of creating a silently dead dataset.
var reservedDatasetNames = map[string]bool{"jobs": true}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*registryEntry)}
}

// Add registers ds under name, replacing any existing dataset with that name
// and invalidating results derived from it. The dataset must have at least
// one item and at least two scoring attributes (the analyzer's floor).
func (r *Registry) Add(name string, ds *stablerank.Dataset) error {
	if !datasetNameRE.MatchString(name) {
		return fmt.Errorf("server: invalid dataset name %q (want %s)", name, datasetNameRE)
	}
	if reservedDatasetNames[name] {
		return fmt.Errorf("server: dataset name %q is reserved by the /v1 API", name)
	}
	if ds == nil || ds.N() == 0 {
		return stablerank.ErrEmptyDataset
	}
	if ds.D() < 2 {
		return fmt.Errorf("server: dataset %q has %d scoring attributes, need >= 2", name, ds.D())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.entries[name]
	gen := int64(1)
	if prev != nil {
		gen = prev.gen + 1
	}
	r.entries[name] = &registryEntry{ds: ds, gen: gen}
	return nil
}

// AddCSV parses a CSV dataset from rd and registers it under name.
func (r *Registry) AddCSV(name string, rd io.Reader, hasHeader bool) error {
	ds, err := stablerank.ReadCSV(rd, hasHeader)
	if err != nil {
		return err
	}
	return r.Add(name, ds)
}

// LoadCSVFile reads the CSV file at path and registers it under name.
func (r *Registry) LoadCSVFile(name, path string, hasHeader bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return r.AddCSV(name, f, hasHeader)
}

// Get returns the dataset registered under name together with its
// generation (monotonic per name, starting at 1).
func (r *Registry) Get(name string) (ds *stablerank.Dataset, gen int64, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, 0, false
	}
	return e.ds, e.gen, true
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
