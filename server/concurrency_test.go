package server

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"stablerank"
)

// TestConcurrentIdenticalQueriesShareOnePoolBuild hammers one analyzer key
// with 32 concurrent identical Monte-Carlo queries and proves the
// singleflight layering: exactly one Analyzer is constructed for the key,
// and that Analyzer draws its sample pool exactly once. Run under -race this
// also exercises the shared-Analyzer concurrency guarantees end to end.
func TestConcurrentIdenticalQueriesShareOnePoolBuild(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.DefaultSampleCount = 30_000 })

	const goroutines = 32
	// d=3 so the Monte-Carlo pool (not the exact 2D engine) answers.
	path := ts.URL + "/v1/ind3/verify?weights=1,2,1"
	bodies := make([]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			resp, err := http.Get(path)
			if err != nil {
				errs[g] = err
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[g] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[g] = fmt.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			bodies[g] = string(b)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	// Identical queries must produce byte-identical answers.
	for g := 1; g < goroutines; g++ {
		if bodies[g] != bodies[0] {
			t.Fatalf("goroutine %d saw a different response:\n%s\nvs\n%s", g, bodies[g], bodies[0])
		}
	}

	stats, builds, dedupHits, inflight, _ := s.analyzers.snapshot()
	if builds != 1 {
		t.Errorf("analyzer builds = %d, want 1", builds)
	}
	if dedupHits != goroutines-1 {
		t.Errorf("dedup hits = %d, want %d", dedupHits, goroutines-1)
	}
	if inflight != 0 {
		t.Errorf("inflight builds = %d after drain", inflight)
	}
	if len(stats) != 1 {
		t.Fatalf("%d resident analyzers, want 1", len(stats))
	}
	if !stats[0].PoolBuilt {
		t.Error("sample pool not built after 32 Monte-Carlo queries")
	}
	if stats[0].PoolBuilds != 1 {
		t.Errorf("sample pool built %d times, want exactly 1", stats[0].PoolBuilds)
	}
}

// TestAnalyzerPoolSingleflightDirect hammers the pool without HTTP in
// between: 32 goroutines requesting the same key get the same *Analyzer.
func TestAnalyzerPoolSingleflightDirect(t *testing.T) {
	pool := newAnalyzerPool(64, 0)
	ds := stablerank.Independent(rand.New(rand.NewSource(3)), 10, 3)
	key := analyzerKey{dataset: "d", gen: 1, region: "full:", seed: 1, samples: 1000}

	const goroutines = 32
	got := make([]*stablerank.Analyzer, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a, err := pool.get(key, ds, regionSpec{})
			if err != nil {
				t.Error(err)
				return
			}
			got[g] = a
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatalf("goroutine %d got a different Analyzer", g)
		}
	}
	if n := pool.builds.Load(); n != 1 {
		t.Errorf("builds = %d, want 1", n)
	}

	// A failing key (cone without weights) is retryable and never cached.
	badSpec := regionSpec{theta: 0.5}
	badKey := analyzerKey{dataset: "d", gen: 1, region: badSpec.canonical(), seed: 1, samples: 1000}
	for i := 0; i < 2; i++ {
		if _, err := pool.get(badKey, ds, badSpec); err == nil {
			t.Fatal("bad region spec accepted")
		}
	}
	if stats, _, _, _, _ := pool.snapshot(); len(stats) != 1 {
		t.Errorf("failed builds left %d resident analyzers, want 1", len(stats))
	}
}
