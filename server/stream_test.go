package server

import (
	"bufio"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"stablerank"
)

// readStream consumes an NDJSON response into parsed lines.
func readStream(t *testing.T, resp *http.Response) (lines []streamLine, summary *streamSummary) {
	t.Helper()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		var probe struct {
			Done *bool `json:"done"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatalf("bad NDJSON line: %s", raw)
		}
		if probe.Done != nil {
			summary = &streamSummary{}
			if err := json.Unmarshal(raw, summary); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var line streamLine
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatalf("bad stream line: %s", raw)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines, summary
}

// TestStreamNDJSON checks the happy path: ordered lines, monotone cumulative
// mass, per-line confidence, and a terminal summary.
func TestStreamNDJSON(t *testing.T) {
	s, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/query/stream?dataset=ind3&op=enumerate&limit=6&samples=5000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines, summary := readStream(t, resp)
	if len(lines) == 0 || len(lines) > 6 {
		t.Fatalf("streamed %d lines", len(lines))
	}
	prevStab, prevCum := 2.0, 0.0
	for i, l := range lines {
		if l.Rank != i+1 {
			t.Errorf("line %d has rank %d", i, l.Rank)
		}
		if l.Stability > prevStab+1e-12 {
			t.Error("stream violated decreasing stability")
		}
		if l.Cumulative <= prevCum-1e-12 {
			t.Error("cumulative mass not increasing")
		}
		if l.ConfidenceError <= 0 {
			t.Errorf("line %d missing confidence error", i)
		}
		if len(l.Items) == 0 {
			t.Errorf("line %d missing items", i)
		}
		prevStab, prevCum = l.Stability, l.Cumulative
	}
	if summary == nil || !summary.Done || summary.Count != len(lines) {
		t.Fatalf("summary = %+v after %d lines", summary, len(lines))
	}
	if got := s.streamedRows.Load(); got != int64(len(lines)) {
		t.Errorf("streamed_rows counter = %d, want %d", got, len(lines))
	}
	// toph and above modes work too.
	resp2, err := http.Get(ts.URL + "/v1/query/stream?dataset=fig1&op=toph&h=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	lines2, _ := readStream(t, resp2)
	if len(lines2) != 3 {
		t.Errorf("toph stream yielded %d lines", len(lines2))
	}
	resp3, err := http.Get(ts.URL + "/v1/query/stream?dataset=fig1&op=above&s=0.10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	lines3, _ := readStream(t, resp3)
	for i, l := range lines3 {
		if l.Stability < 0.10 {
			t.Errorf("above line %d below threshold: %v", i, l.Stability)
		}
	}
}

// TestStreamTruncation pins the summary's truncated flag: true only when
// MaxStreamRows actually cut the enumeration off, not when the stream ends
// exactly at the cap by exhaustion.
func TestStreamTruncation(t *testing.T) {
	// Figure 1 has exactly 11 rankings.
	_, tsExact := newTestServer(t, func(c *Config) { c.MaxStreamRows = 11 })
	resp, err := http.Get(tsExact.URL + "/v1/query/stream?dataset=fig1&op=enumerate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines, summary := readStream(t, resp)
	if len(lines) != 11 || summary == nil || summary.Truncated {
		t.Errorf("exhaustion at the cap: %d lines, summary %+v; want 11 untruncated", len(lines), summary)
	}

	_, tsCut := newTestServer(t, func(c *Config) { c.MaxStreamRows = 5 })
	resp2, err := http.Get(tsCut.URL + "/v1/query/stream?dataset=fig1&op=enumerate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	lines2, summary2 := readStream(t, resp2)
	if len(lines2) != 5 || summary2 == nil || !summary2.Truncated {
		t.Errorf("cap cut-off: %d lines, summary %+v; want 5 truncated", len(lines2), summary2)
	}
}

// TestStreamFlushReachesClient pins the middleware's Flush promotion: the
// wrapped writer must implement http.Flusher, and each NDJSON line must be
// pushed to the client before the handler returns.
func TestStreamFlushReachesClient(t *testing.T) {
	var _ http.Flusher = (*statusWriter)(nil)
	s, _ := newTestServer(t, nil)
	rec := &recordingFlusher{ResponseWriter: httptest.NewRecorder()}
	req := httptest.NewRequest("GET", "/v1/query/stream?dataset=fig1&op=toph&h=3", nil)
	s.Handler().ServeHTTP(rec, req)
	// 3 lines + summary, each flushed.
	if rec.flushes < 4 {
		t.Errorf("stream flushed %d times through the middleware, want >= 4", rec.flushes)
	}
}

type recordingFlusher struct {
	http.ResponseWriter
	flushes int
}

func (r *recordingFlusher) Flush() { r.flushes++ }

// TestStreamValidation covers the stream endpoint's failure modes.
func TestStreamValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		path string
		want int
	}{
		{"/v1/query/stream?dataset=nope", http.StatusNotFound},
		{"/v1/query/stream?dataset=fig1&op=wat", http.StatusBadRequest},
		{"/v1/query/stream?dataset=fig1&op=toph&h=0", http.StatusBadRequest},
		{"/v1/query/stream?dataset=fig1&op=above&s=2", http.StatusBadRequest},
		{"/v1/query/stream?dataset=fig1&op=enumerate&limit=-1", http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, _ := get(t, ts, tc.path, nil); code != tc.want {
			t.Errorf("%s: code = %d, want %d", tc.path, code, tc.want)
		}
	}
}

// TestStreamClientDisconnect pins the satellite requirement: a client
// closing the connection mid-stream cancels the enumeration promptly and
// leaks no goroutines.
func TestStreamClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		// A deep 4D enumeration that would stream for a long time.
		c.DefaultSampleCount = 30_000
	})
	ds := stablerank.Diamonds(rand.New(rand.NewSource(7)), 120)
	deep, err := ds.Project(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Registry().Add("deep", deep); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	req, err := http.NewRequest("GET", ts.URL+"/v1/query/stream?dataset=deep&op=enumerate", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a couple of lines to prove the stream is live, then hang up.
	sc := bufio.NewScanner(resp.Body)
	got := 0
	for got < 2 && sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			got++
		}
	}
	if got < 2 {
		t.Fatalf("stream produced only %d lines before disconnect test", got)
	}
	resp.Body.Close() // client goes away; server ctx cancels

	// The handler goroutine must finish promptly (the enumerator polls its
	// context), after which the goroutine census settles back.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across a client disconnect: %d -> %d", before, after)
	}
}
