package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"stablerank"
)

// GET /v1/query/stream: incremental enumeration as NDJSON. One line per
// ranking, in decreasing stability, each carrying the running cumulative
// stability mass and the per-ranking confidence error, flushed as produced —
// so a client watching a long enumeration sees results immediately and can
// simply close the connection to stop the work (the request context cancels
// the enumerator promptly). A closing summary line reports the total.
//
// Parameters: ?dataset= (required) plus the shared region/seed/samples
// parameters, and one of
//
//	?op=enumerate[&limit=N]   the N (default: all, capped) most stable rankings
//	?op=toph&h=N              exactly N rankings
//	?op=above&s=T             rankings with stability >= T
//
// The stream never emits more than MaxStreamRows lines; the summary line's
// "truncated" field reports whether the cap (rather than exhaustion or the
// query's own bound) ended it.

// streamLine is one enumerated ranking on the wire.
type streamLine struct {
	Rank            int       `json:"rank"`
	Stability       float64   `json:"stability"`
	ConfidenceError float64   `json:"confidence_error,omitempty"`
	Cumulative      float64   `json:"cumulative_stability"`
	Exact           bool      `json:"exact,omitempty"`
	Items           []itemRef `json:"items"`
	Weights         []float64 `json:"weights,omitempty"`
}

// streamSummary is the final NDJSON line.
type streamSummary struct {
	Done       bool    `json:"done"`
	Count      int     `json:"count"`
	Cumulative float64 `json:"cumulative_stability"`
	Truncated  bool    `json:"truncated"`
}

// streamError is the terminal line of a failed stream; once rows have been
// flushed the status code is already written, so mid-stream failures are
// reported in-band.
type streamError struct {
	Error string `json:"error"`
}

// handleQueryStream is GET /v1/query/stream.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	qc, err := s.queryContextNamed(r, q.Get("dataset"))
	if err != nil {
		writeError(w, err)
		return
	}
	var query stablerank.Query
	op := q.Get("op")
	if op == "" {
		op = "enumerate"
	}
	switch op {
	case "enumerate":
		limit, err := intParam(q.Get("limit"), 0)
		if err != nil || limit < 0 || limit > int64(s.cfg.MaxStreamRows) {
			writeError(w, errBadRequest("limit must be in [0, %d]", s.cfg.MaxStreamRows))
			return
		}
		if limit == 0 {
			// Open enumeration: run one past the row cap so the summary can
			// tell "exhausted exactly at the cap" from "cut off by it".
			limit = int64(s.cfg.MaxStreamRows) + 1
		}
		query = stablerank.EnumerateQuery{Limit: int(limit)}
	case "toph":
		h, err := intParam(q.Get("h"), 10)
		if err != nil || h < 1 || h > int64(s.cfg.MaxStreamRows) {
			writeError(w, errBadRequest("h must be in [1, %d]", s.cfg.MaxStreamRows))
			return
		}
		query = stablerank.TopHQuery{H: int(h)}
	case "above":
		threshold, err := floatParam(q.Get("s"), -1)
		if err != nil || threshold <= 0 || threshold > 1 {
			writeError(w, errBadRequest("s must be in (0, 1]"))
			return
		}
		query = stablerank.AboveQuery{Threshold: threshold}
	default:
		writeError(w, errBadRequest("op must be enumerate, toph or above"))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // disable proxy buffering
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	count, mass := 0, 0.0
	truncated := false
	for res, err := range qc.analyzer.Stream(r.Context(), query) {
		if err != nil {
			// Before the first line the status code is still open: report
			// client hang-ups and real failures properly. Mid-stream, the
			// error goes in-band as the terminal line.
			if count == 0 {
				writeError(w, err)
				return
			}
			if !errors.Is(err, r.Context().Err()) {
				_ = enc.Encode(streamError{Error: err.Error()})
			}
			return
		}
		// The cap is checked before emitting, so a stream that ends exactly
		// at MaxStreamRows by its own bound or exhaustion is not marked
		// truncated — only one the cap actually cut off.
		if count >= s.cfg.MaxStreamRows {
			truncated = true
			break
		}
		st := res.Stable
		count++
		mass += st.Stability
		line := streamLine{
			Rank:            count,
			Stability:       st.Stability,
			ConfidenceError: st.ConfidenceError,
			Cumulative:      mass,
			Exact:           st.Exact,
			Items:           s.itemRefs(qc.ds, st.Ranking.Order),
			Weights:         st.Weights,
		}
		if err := enc.Encode(line); err != nil {
			return // client went away mid-write
		}
		s.streamedRows.Add(1)
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(streamSummary{Done: true, Count: count, Cumulative: mass, Truncated: truncated})
	if flusher != nil {
		flusher.Flush()
	}
}
