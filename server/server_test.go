package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stablerank"
)

// newTestServer builds a Server over Figure 1 (2D, exact engine) and a small
// 3D simulated dataset (Monte-Carlo engine), mounted on an httptest server.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Add("fig1", stablerank.Figure1()); err != nil {
		t.Fatal(err)
	}
	ds3 := stablerank.Independent(rand.New(rand.NewSource(7)), 12, 3)
	if err := reg.Add("ind3", ds3); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Registry:           reg,
		DefaultSampleCount: 20_000,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

// get fetches path and decodes the JSON body into v (when non-nil),
// returning the response status and headers.
func get(t *testing.T, ts *httptest.Server, path string, v any) (int, http.Header) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: bad JSON (%v):\n%s", path, err, body)
		}
	}
	return resp.StatusCode, resp.Header
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var got struct {
		Status   string `json:"status"`
		Datasets int    `json:"datasets"`
	}
	code, _ := get(t, ts, "/healthz", &got)
	if code != http.StatusOK || got.Status != "ok" || got.Datasets != 2 {
		t.Fatalf("healthz = %d %+v", code, got)
	}
}

func TestVerifyExact2D(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var got struct {
		Dataset string `json:"dataset"`
		Ranking []struct {
			Index int    `json:"index"`
			ID    string `json:"id"`
		} `json:"ranking"`
		Stability float64 `json:"stability"`
		Exact     bool    `json:"exact"`
	}
	code, _ := get(t, ts, "/v1/fig1/verify?weights=1,1", &got)
	if code != http.StatusOK {
		t.Fatalf("verify = %d", code)
	}
	if !got.Exact {
		t.Error("2D verify should be exact")
	}
	if got.Stability <= 0 || got.Stability > 1 {
		t.Errorf("stability %v out of (0,1]", got.Stability)
	}
	// Figure 1's ranking under f = x1+x2 is t2 > t4 > t3 > t5 > t1.
	want := []string{"t2", "t4", "t3", "t5", "t1"}
	if len(got.Ranking) != 5 {
		t.Fatalf("ranking has %d items", len(got.Ranking))
	}
	for i, w := range want {
		if got.Ranking[i].ID != w {
			t.Errorf("ranking[%d] = %s, want %s", i, got.Ranking[i].ID, w)
		}
	}
}

func TestVerifyMonteCarlo3D(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var got struct {
		Stability       float64 `json:"stability"`
		ConfidenceError float64 `json:"confidence_error"`
		Exact           bool    `json:"exact"`
		SampleCount     int     `json:"sample_count"`
	}
	code, _ := get(t, ts, "/v1/ind3/verify?weights=1,1,1&samples=5000", &got)
	if code != http.StatusOK {
		t.Fatalf("verify = %d", code)
	}
	if got.Exact {
		t.Error("3D verify should be Monte-Carlo")
	}
	if got.ConfidenceError <= 0 {
		t.Errorf("confidence error %v", got.ConfidenceError)
	}
	if got.SampleCount != 5000 {
		t.Errorf("sample_count = %d, want 5000", got.SampleCount)
	}
}

func TestVerifyErrors(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name, path string
		want       int
	}{
		{"unknown dataset", "/v1/nope/verify?weights=1,1", http.StatusNotFound},
		{"missing weights", "/v1/fig1/verify", http.StatusBadRequest},
		{"wrong weight count", "/v1/fig1/verify?weights=1,2,3", http.StatusBadRequest},
		{"bad weight", "/v1/fig1/verify?weights=1,x", http.StatusBadRequest},
		{"theta and cosine", "/v1/fig1/verify?weights=1,1&theta=0.1&cosine=0.9", http.StatusBadRequest},
		{"theta without weights", "/v1/fig1/verify?theta=0.1", http.StatusBadRequest},
		{"bad samples", "/v1/fig1/verify?weights=1,1&samples=0", http.StatusBadRequest},
		{"huge samples", "/v1/fig1/verify?weights=1,1&samples=999999999", http.StatusBadRequest},
		{"non-finite weight", "/v1/fig1/verify?weights=1,NaN", http.StatusBadRequest},
		{"negative theta", "/v1/fig1/verify?weights=1,1&theta=-0.05", http.StatusBadRequest},
		{"NaN cosine", "/v1/fig1/verify?weights=1,1&cosine=NaN", http.StatusBadRequest},
		{"cosine above 1", "/v1/fig1/verify?weights=1,1&cosine=1.5", http.StatusBadRequest},
		{"overflowing page", "/v1/fig1/rankings?page=922337203685477580&per_page=100", http.StatusBadRequest},
		{"partial ranking", "/v1/fig1/verify?ranking=t1,t2", http.StatusBadRequest},
		{"unknown ranking item", "/v1/fig1/verify?ranking=t1,t2,t3,t4,zz", http.StatusBadRequest},
		{"repeated ranking item", "/v1/fig1/verify?ranking=t1,t1,t3,t4,t5", http.StatusBadRequest},
		// No scoring function in a tight cone around (1,1) puts t1 first:
		// the published ranking is infeasible in the region, 422.
		{"infeasible ranking", "/v1/fig1/verify?weights=1,1&theta=0.001&ranking=t1,t5,t3,t4,t2", http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		var e struct {
			Error string `json:"error"`
		}
		code, _ := get(t, ts, tc.path, &e)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
		if e.Error == "" {
			t.Errorf("%s: missing error message", tc.name)
		}
	}
}

func TestVerifyPublishedRanking(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var got struct {
		Stability float64 `json:"stability"`
		Exact     bool    `json:"exact"`
	}
	code, _ := get(t, ts, "/v1/fig1/verify?ranking=t2,t4,t3,t5,t1", &got)
	if code != http.StatusOK || !got.Exact || got.Stability <= 0 {
		t.Fatalf("published-ranking verify = %d %+v", code, got)
	}
	// Same answer as the weights form that induces the same ranking.
	var byWeights struct {
		Stability float64 `json:"stability"`
	}
	get(t, ts, "/v1/fig1/verify?weights=1,1", &byWeights)
	if got.Stability != byWeights.Stability {
		t.Errorf("ranking form %v != weights form %v", got.Stability, byWeights.Stability)
	}
}

func TestTopH(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var got struct {
		H        int `json:"h"`
		Rankings []struct {
			Rank      int     `json:"rank"`
			Stability float64 `json:"stability"`
			Exact     bool    `json:"exact"`
			Items     []struct {
				ID string `json:"id"`
			} `json:"items"`
		} `json:"rankings"`
	}
	code, _ := get(t, ts, "/v1/fig1/toph?h=3", &got)
	if code != http.StatusOK || len(got.Rankings) != 3 {
		t.Fatalf("toph = %d with %d rankings", code, len(got.Rankings))
	}
	prev := 2.0
	for i, r := range got.Rankings {
		if r.Rank != i+1 {
			t.Errorf("rank[%d] = %d", i, r.Rank)
		}
		if r.Stability > prev {
			t.Error("toph not sorted by stability")
		}
		prev = r.Stability
		if !r.Exact || len(r.Items) != 5 {
			t.Errorf("ranking %d: exact=%v items=%d", i, r.Exact, len(r.Items))
		}
	}
	if code, _ := get(t, ts, "/v1/fig1/toph?h=0", nil); code != http.StatusBadRequest {
		t.Errorf("h=0 status %d", code)
	}
	if code, _ := get(t, ts, "/v1/fig1/toph?h=99999", nil); code != http.StatusBadRequest {
		t.Errorf("h over cap status %d", code)
	}
}

func TestAboveThreshold(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var got struct {
		Rankings []struct {
			Stability float64 `json:"stability"`
		} `json:"rankings"`
	}
	code, _ := get(t, ts, "/v1/fig1/above?s=0.2", &got)
	if code != http.StatusOK {
		t.Fatalf("above = %d", code)
	}
	if len(got.Rankings) == 0 {
		t.Fatal("no rankings above 0.2; Figure 1 has at least one")
	}
	for _, r := range got.Rankings {
		if r.Stability < 0.2 {
			t.Errorf("stability %v below threshold", r.Stability)
		}
	}
	if code, _ := get(t, ts, "/v1/fig1/above?s=0", nil); code != http.StatusBadRequest {
		t.Errorf("s=0 status %d", code)
	}
	if code, _ := get(t, ts, "/v1/fig1/above?s=1.5", nil); code != http.StatusBadRequest {
		t.Errorf("s=1.5 status %d", code)
	}
}

func TestRankingsPagination(t *testing.T) {
	_, ts := newTestServer(t, nil)
	type page struct {
		Page    int  `json:"page"`
		PerPage int  `json:"per_page"`
		HasMore bool `json:"has_more"`
		Results []struct {
			Rank      int     `json:"rank"`
			Stability float64 `json:"stability"`
		} `json:"results"`
	}
	// Figure 1 has exactly 11 ranking regions (Figure 1c).
	var pages []page
	seen := 0
	for p := 0; ; p++ {
		var got page
		code, _ := get(t, ts, fmt.Sprintf("/v1/fig1/rankings?page=%d&per_page=4", p), &got)
		if code != http.StatusOK {
			t.Fatalf("page %d = %d", p, code)
		}
		pages = append(pages, got)
		seen += len(got.Results)
		if !got.HasMore {
			break
		}
		if p > 10 {
			t.Fatal("pagination never terminated")
		}
	}
	if seen != 11 {
		t.Errorf("paginated enumeration found %d rankings, want 11", seen)
	}
	if len(pages) != 3 || len(pages[0].Results) != 4 || len(pages[2].Results) != 3 {
		t.Errorf("page sizes: %d pages, first %d, last %d",
			len(pages), len(pages[0].Results), len(pages[len(pages)-1].Results))
	}
	// Global rank continuity and sortedness across pages.
	wantRank := 1
	prev := 2.0
	for _, pg := range pages {
		for _, r := range pg.Results {
			if r.Rank != wantRank {
				t.Errorf("rank %d, want %d", r.Rank, wantRank)
			}
			wantRank++
			if r.Stability > prev {
				t.Error("stability not non-increasing across pages")
			}
			prev = r.Stability
		}
	}
	// Past-the-end page is empty without has_more.
	var empty page
	if code, _ := get(t, ts, "/v1/fig1/rankings?page=5&per_page=4", &empty); code != http.StatusOK {
		t.Fatalf("past-the-end page = %d", code)
	}
	if len(empty.Results) != 0 || empty.HasMore {
		t.Errorf("past-the-end page: %d results, has_more=%v", len(empty.Results), empty.HasMore)
	}
}

func TestItemRank(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var got struct {
		Item struct {
			ID    string `json:"id"`
			Index int    `json:"index"`
		} `json:"item"`
		Samples        int            `json:"samples"`
		Best           int            `json:"best"`
		Worst          int            `json:"worst"`
		Median         int            `json:"median"`
		Counts         map[string]int `json:"counts"`
		ProbabilityTop struct {
			K           int     `json:"k"`
			Probability float64 `json:"probability"`
		} `json:"probability_top"`
	}
	code, _ := get(t, ts, "/v1/fig1/itemrank?item=t2&n=2000&k=2", &got)
	if code != http.StatusOK {
		t.Fatalf("itemrank = %d", code)
	}
	if got.Item.ID != "t2" || got.Item.Index != 1 || got.Samples != 2000 {
		t.Errorf("item %+v samples %d", got.Item, got.Samples)
	}
	if got.Best < 1 || got.Worst > 5 || got.Best > got.Worst || got.Median < got.Best || got.Median > got.Worst {
		t.Errorf("rank bounds best=%d worst=%d median=%d", got.Best, got.Worst, got.Median)
	}
	total := 0
	for _, c := range got.Counts {
		total += c
	}
	if total != 2000 {
		t.Errorf("counts sum to %d, want 2000", total)
	}
	// t2 is in the Figure 1 top-2 for a large share of the function space.
	if got.ProbabilityTop.K != 2 || got.ProbabilityTop.Probability <= 0 || got.ProbabilityTop.Probability > 1 {
		t.Errorf("probability_top %+v", got.ProbabilityTop)
	}
	if code, _ := get(t, ts, "/v1/fig1/itemrank?item=missing", nil); code != http.StatusNotFound {
		t.Errorf("unknown item status %d", code)
	}
	if code, _ := get(t, ts, "/v1/fig1/itemrank", nil); code != http.StatusBadRequest {
		t.Errorf("missing item status %d", code)
	}
}

func TestRequestTimeoutMapsTo504(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.RequestTimeout = time.Nanosecond })
	for _, path := range []string{
		"/v1/ind3/verify?weights=1,1,1",
		"/v1/fig1/toph?h=3",
		"/v1/fig1/itemrank?item=t1",
	} {
		var e struct {
			Error string `json:"error"`
		}
		code, _ := get(t, ts, path, &e)
		if code != http.StatusGatewayTimeout {
			t.Errorf("%s: status %d, want 504", path, code)
		}
	}
}

func TestDatasetLifecycle(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// Upload a new dataset.
	csv := "id,x1,x2\na,1,2\nb,2,1\nc,3,3\n"
	resp, err := http.Post(ts.URL+"/datasets/fresh", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		Name string `json:"name"`
		N    int    `json:"n"`
		D    int    `json:"d"`
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.N != 3 || created.D != 2 {
		t.Errorf("created %+v", created)
	}
	// It is listed and queryable.
	var list struct {
		Datasets []struct {
			Name string `json:"name"`
			N    int    `json:"n"`
			D    int    `json:"d"`
		} `json:"datasets"`
	}
	if code, _ := get(t, ts, "/datasets", &list); code != http.StatusOK || len(list.Datasets) != 3 {
		t.Fatalf("datasets list: %d entries", len(list.Datasets))
	}
	if code, _ := get(t, ts, "/v1/fresh/verify?weights=1,1", nil); code != http.StatusOK {
		t.Errorf("query on uploaded dataset = %d", code)
	}

	// Replacing a dataset invalidates cached answers: same query, new data.
	var before struct {
		Ranking []struct {
			ID string `json:"id"`
		} `json:"ranking"`
	}
	get(t, ts, "/v1/fresh/verify?weights=1,1", &before)
	resp, err = http.Post(ts.URL+"/datasets/fresh", "text/csv",
		strings.NewReader("id,x1,x2\nz,9,9\ny,1,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var after struct {
		Ranking []struct {
			ID string `json:"id"`
		} `json:"ranking"`
	}
	get(t, ts, "/v1/fresh/verify?weights=1,1", &after)
	if len(after.Ranking) != 2 || after.Ranking[0].ID != "z" {
		t.Errorf("replaced dataset still serves stale results: %+v", after.Ranking)
	}

	// Error paths.
	for _, tc := range []struct {
		name, csv string
	}{
		{"bad..name!", "id,x1,x2\na,1,2\n"},
		{"ragged", "id,x1,x2\na,1\n"},
		{"one-attr", "id,x1\na,1\n"},
		{"empty", ""},
	} {
		resp, err := http.Post(ts.URL+"/datasets/"+tc.name, "text/csv", strings.NewReader(tc.csv))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

func TestFullSpaceQueriesShareOneAnalyzer(t *testing.T) {
	s, ts := newTestServer(t, nil)
	// Different weights without a region parameter all verify against the
	// same full-space analyzer: weights pick the ranking, not the region.
	for _, w := range []string{"1,1", "0.3,0.7", "0.9,0.1"} {
		if code, _ := get(t, ts, "/v1/fig1/verify?weights="+w, nil); code != http.StatusOK {
			t.Fatalf("weights %s: %d", w, code)
		}
	}
	if _, builds, _, _, _ := s.analyzers.snapshot(); builds != 1 {
		t.Errorf("full-space queries built %d analyzers, want 1", builds)
	}
}

func TestAnalyzerPoolIsBounded(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.MaxAnalyzers = 2 })
	// Sweep seeds to force distinct analyzer keys beyond the bound.
	for seed := 1; seed <= 5; seed++ {
		path := fmt.Sprintf("/v1/fig1/verify?weights=1,1&seed=%d", seed)
		if code, _ := get(t, ts, path, nil); code != http.StatusOK {
			t.Fatalf("seed %d: %d", seed, code)
		}
	}
	stats, builds, _, _, evictions := s.analyzers.snapshot()
	if len(stats) > 2 {
		t.Errorf("%d resident analyzers, bound is 2", len(stats))
	}
	if builds != 5 || evictions != 3 {
		t.Errorf("builds=%d evictions=%d, want 5/3", builds, evictions)
	}
}

func TestOversizedUploadGets413(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxUploadBytes = 64 })
	big := "id,x1,x2\n" + strings.Repeat("item,0.5,0.5\n", 50)
	resp, err := http.Post(ts.URL+"/datasets/big", "text/csv", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload = %d, want 413", resp.StatusCode)
	}
}

func TestCacheServesRepeatedQueries(t *testing.T) {
	_, ts := newTestServer(t, nil)
	path := "/v1/fig1/toph?h=4"
	code, hdr := get(t, ts, path, nil)
	if code != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first request: %d cache=%q", code, hdr.Get("X-Cache"))
	}
	code, hdr = get(t, ts, path, nil)
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("second request: %d cache=%q", code, hdr.Get("X-Cache"))
	}
	var stats struct {
		Cache struct {
			Hits    int64   `json:"hits"`
			Misses  int64   `json:"misses"`
			HitRate float64 `json:"hit_rate"`
			Size    int     `json:"size"`
		} `json:"cache"`
		Analyzers struct {
			Builds   int64 `json:"builds"`
			Resident []struct {
				Key        string `json:"key"`
				PoolBuilt  bool   `json:"pool_built"`
				PoolBuilds int64  `json:"pool_builds"`
			} `json:"resident"`
		} `json:"analyzers"`
	}
	if code, _ := get(t, ts, "/statsz", &stats); code != http.StatusOK {
		t.Fatalf("statsz = %d", code)
	}
	if stats.Cache.Hits < 1 || stats.Cache.Misses < 1 || stats.Cache.HitRate <= 0 || stats.Cache.Size < 1 {
		t.Errorf("cache stats %+v", stats.Cache)
	}
	if stats.Analyzers.Builds < 1 || len(stats.Analyzers.Resident) < 1 {
		t.Errorf("analyzer stats %+v", stats.Analyzers)
	}
}
