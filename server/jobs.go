package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Async jobs: POST /v1/jobs accepts the same body as POST /v1/query,
// validates it synchronously, and runs it on a bounded worker pool instead
// of holding the connection open — the serving shape for enumerations far
// deeper than a synchronous response should carry. Results are retrievable
// for a TTL after completion; DELETE cancels a queued or running job.

// jobState is a job's lifecycle phase.
type jobState string

const (
	jobQueued    jobState = "queued"
	jobRunning   jobState = "running"
	jobDone      jobState = "done"
	jobFailed    jobState = "failed"
	jobCancelled jobState = "cancelled"
)

// job is one asynchronous query request. Mutable fields are guarded by the
// store's mutex; result/errMsg are written exactly once, before the state
// leaves jobRunning.
type job struct {
	id      string
	cq      *compiledQuery
	state   jobState
	created time.Time
	started time.Time
	ended   time.Time
	expires time.Time // zero until finished; finished + TTL
	cancel  context.CancelFunc
	result  *queryResponse
	errMsg  string
}

// jobStore owns the queue, the worker pool and the TTL'd results. Expired
// jobs are purged lazily on every access (no background janitor: the store
// must not outlive Server.Close).
type jobStore struct {
	mu   sync.Mutex
	jobs map[string]*job // guarded by mu

	queue   chan *job
	workers int
	ttl     time.Duration
	timeout time.Duration
	exec    func(context.Context, *job) (*queryResponse, error)
	persist *jobPersister // nil = no persistence

	baseCtx   context.Context //srlint:ctxflow worker-pool lifetime context, owned by the store and cancelled in close()
	cancelAll context.CancelFunc
	wg        sync.WaitGroup
	seq       atomic.Int64

	completed atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
}

// newJobStore starts the worker pool. workers < 0 disables the subsystem
// (submit answers 503).
func newJobStore(workers, queueSize int, ttl, timeout time.Duration, exec func(context.Context, *job) (*queryResponse, error), persist *jobPersister) *jobStore {
	if workers < 0 {
		workers = 0
	}
	if queueSize < 1 {
		queueSize = 1
	}
	ctx, cancel := context.WithCancel(context.Background()) //srlint:ctxflow jobs outlive the submitting request by design; the pool root is cancelled in close()
	st := &jobStore{
		jobs:      make(map[string]*job),
		queue:     make(chan *job, queueSize),
		workers:   workers,
		ttl:       ttl,
		timeout:   timeout,
		exec:      exec,
		persist:   persist,
		baseCtx:   ctx,
		cancelAll: cancel,
	}
	for w := 0; w < workers; w++ {
		st.wg.Add(1)
		go st.worker()
	}
	return st
}

// close cancels the base context — which cancels every running job — and
// waits for the workers to drain.
func (st *jobStore) close() {
	st.cancelAll()
	st.wg.Wait()
}

func (st *jobStore) worker() {
	defer st.wg.Done()
	for {
		//srlint:ordered shutdown-vs-dequeue race; in-flight jobs are cancelled through baseCtx either way
		select {
		case <-st.baseCtx.Done():
			return
		case j := <-st.queue:
			st.run(j)
		}
	}
}

func (st *jobStore) run(j *job) {
	st.mu.Lock()
	if j.state != jobQueued { // cancelled while waiting
		st.mu.Unlock()
		return
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if st.timeout > 0 {
		ctx, cancel = context.WithTimeout(st.baseCtx, st.timeout)
	} else {
		ctx, cancel = context.WithCancel(st.baseCtx)
	}
	j.state = jobRunning
	j.started = time.Now()
	j.cancel = cancel
	st.mu.Unlock()
	if st.persist != nil {
		st.persist.saveJob(j)
	}
	defer cancel()

	resp, err := st.exec(ctx, j)

	st.mu.Lock()
	defer st.mu.Unlock()
	j.ended = time.Now()
	if st.ttl >= 0 {
		j.expires = j.ended.Add(st.ttl)
	}
	if j.state == jobCancelled {
		// A DELETE raced the completion; the cancellation verdict stands.
		if st.persist != nil {
			st.persist.saveJob(j)
		}
		return
	}
	if err != nil {
		if st.baseCtx.Err() != nil {
			// Shutdown cancelled the job. Leave the persisted record in its
			// running state — exec already checkpointed the progress — so the
			// next boot re-enqueues and resumes it. The in-memory state is
			// moot: the process is exiting.
			return
		}
		j.state = jobFailed
		j.errMsg = err.Error()
		st.failed.Add(1)
	} else {
		j.state = jobDone
		j.result = resp
		st.completed.Add(1)
	}
	if st.persist != nil {
		st.persist.saveJob(j)
	}
}

// submit registers and enqueues a compiled query; it fails when the queue is
// full or the subsystem is disabled/closed.
func (st *jobStore) submit(cq *compiledQuery) (*job, error) {
	if st.workers == 0 {
		return nil, statusError{code: http.StatusServiceUnavailable, msg: "async jobs are disabled"}
	}
	if st.baseCtx.Err() != nil {
		return nil, statusError{code: http.StatusServiceUnavailable, msg: "server is shutting down"}
	}
	j := &job{
		id:      fmt.Sprintf("j%d", st.seq.Add(1)),
		cq:      cq,
		state:   jobQueued,
		created: time.Now(),
	}
	st.mu.Lock()
	st.purgeLocked()
	st.jobs[j.id] = j
	// Persist before enqueueing: once a worker can see the job, its own
	// lifecycle writes must be the newest ones.
	if st.persist != nil {
		st.persist.saveJob(j)
	}
	st.mu.Unlock()
	select {
	case st.queue <- j:
		return j, nil
	default:
		st.mu.Lock()
		delete(st.jobs, j.id)
		st.mu.Unlock()
		if st.persist != nil {
			st.persist.forget(j.id)
		}
		return nil, statusError{code: http.StatusServiceUnavailable, msg: "job queue is full"}
	}
}

// get returns the job by id.
func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.purgeLocked()
	j, ok := st.jobs[id]
	return j, ok
}

// stop cancels a queued or running job, or discards a finished one. The
// returned state is the job's state after the call.
func (st *jobStore) stop(id string) (jobState, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.purgeLocked()
	j, ok := st.jobs[id]
	if !ok {
		return "", false
	}
	switch j.state {
	case jobQueued:
		j.state = jobCancelled
		j.ended = time.Now()
		if st.ttl >= 0 {
			j.expires = j.ended.Add(st.ttl)
		}
		st.cancelled.Add(1)
		if st.persist != nil {
			st.persist.saveJob(j)
		}
	case jobRunning:
		j.state = jobCancelled
		st.cancelled.Add(1)
		if st.persist != nil {
			st.persist.saveJob(j)
		}
		if j.cancel != nil {
			j.cancel()
		}
	default:
		// Finished: DELETE discards the record.
		delete(st.jobs, id)
		if st.persist != nil {
			st.persist.forget(id)
		}
	}
	return j.state, true
}

// purgeLocked forgets finished jobs past their TTL. Callers hold st.mu.
func (st *jobStore) purgeLocked() {
	now := time.Now()
	for id, j := range st.jobs { //srlint:ordered expiry test and delete are per-entry; no cross-entry order dependence
		if !j.expires.IsZero() && now.After(j.expires) {
			switch j.state {
			case jobDone, jobFailed, jobCancelled:
				delete(st.jobs, id)
				if st.persist != nil {
					st.persist.forget(id)
				}
			}
		}
	}
}

// jobCounts is the /statsz summary.
type jobCounts struct {
	queued, running, resident  int
	completed, failed, stopped int64
}

func (st *jobStore) counts() jobCounts {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.purgeLocked()
	c := jobCounts{
		resident:  len(st.jobs),
		completed: st.completed.Load(),
		failed:    st.failed.Load(),
		stopped:   st.cancelled.Load(),
	}
	for _, j := range st.jobs { //srlint:ordered counting is commutative
		switch j.state {
		case jobQueued:
			c.queued++
		case jobRunning:
			c.running++
		}
	}
	return c
}

// jobResponse is the wire form of a job.
type jobResponse struct {
	ID       string         `json:"id"`
	Status   string         `json:"status"`
	Created  time.Time      `json:"created"`
	Started  *time.Time     `json:"started,omitempty"`
	Finished *time.Time     `json:"finished,omitempty"`
	Error    string         `json:"error,omitempty"`
	Result   *queryResponse `json:"result,omitempty"`
}

func (st *jobStore) render(j *job) jobResponse {
	st.mu.Lock()
	defer st.mu.Unlock()
	resp := jobResponse{
		ID:      j.id,
		Status:  string(j.state),
		Created: j.created,
		Error:   j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		resp.Started = &t
	}
	if !j.ended.IsZero() {
		t := j.ended
		resp.Finished = &t
	}
	if j.state == jobDone {
		resp.Result = j.result
	}
	return resp
}

// handleSubmitJob is POST /v1/jobs: validate synchronously (the client
// learns about malformed requests immediately), run asynchronously.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	req, err := decodeQueryRequest(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	cq, err := s.compileQuery(req, s.jobLimits())
	if err != nil {
		writeError(w, err)
		return
	}
	j, err := s.jobs.submit(cq)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.jobs.render(j))
}

// handleGetJob is GET /v1/jobs/{id}, dispatched via handleV1Get.
func (s *Server) handleGetJob(w http.ResponseWriter, _ *http.Request, id string) {
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, errNotFound("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.render(j))
}

// handleDeleteJob is DELETE /v1/jobs/{id}: cancel a queued or running job,
// or discard a finished one.
func (s *Server) handleDeleteJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	state, ok := s.jobs.stop(id)
	if !ok {
		writeError(w, errNotFound("unknown job %q", id))
		return
	}
	status := string(state)
	if state != jobCancelled {
		status = "removed"
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "status": status})
}
