package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"stablerank"
	"stablerank/internal/store"
)

// postRaw posts a JSON body and returns the raw response body, for
// bit-identity assertions that a decode/re-encode round trip would launder.
func postRaw(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.String()
}

// TestRestartDurability is the warm-restart round trip: boot with a data
// dir, upload a dataset, run a pool-building query, restart — the uploaded
// dataset is still registered, and the same query is answered bit-identically
// from a restored pool snapshot without a single pool build.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	query := `{"dataset":"ind3","samples":5000,"queries":[{"op":"toph","h":3}]}`

	s1, ts1 := newTestServer(t, func(c *Config) { c.DataDir = dir })
	resp, err := http.Post(ts1.URL+"/datasets/up3", "text/csv",
		strings.NewReader("id,a,b,c\nx,1,2,3\ny,3,2,1\nz,2,3,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload = %d", resp.StatusCode)
	}
	code, cold := postRaw(t, ts1, "/v1/query", query)
	if code != http.StatusOK {
		t.Fatalf("cold query = %d: %s", code, cold)
	}
	if w := s1.snapshots.writes.Load(); w < 1 {
		t.Fatalf("snapshot writes after cold query = %d, want >= 1", w)
	}
	s1.Close()
	ts1.Close()

	s2, ts2 := newTestServer(t, func(c *Config) { c.DataDir = dir })
	var listing struct {
		Datasets []struct {
			Name string `json:"name"`
		} `json:"datasets"`
	}
	if code, _ := get(t, ts2, "/datasets", &listing); code != http.StatusOK {
		t.Fatalf("datasets = %d", code)
	}
	names := map[string]bool{}
	for _, d := range listing.Datasets {
		names[d.Name] = true
	}
	if !names["up3"] {
		t.Fatalf("uploaded dataset lost across restart; have %v", listing.Datasets)
	}
	code, warm := postRaw(t, ts2, "/v1/query", query)
	if code != http.StatusOK {
		t.Fatalf("warm query = %d: %s", code, warm)
	}
	if warm != cold {
		t.Errorf("warm restart changed the response:\ncold: %s\nwarm: %s", cold, warm)
	}
	if h := s2.snapshots.hits.Load(); h < 1 {
		t.Errorf("snapshot hits after warm query = %d, want >= 1", h)
	}
	stats, _, _, _, _ := s2.analyzers.snapshot()
	found := false
	for _, st := range stats {
		if !strings.HasPrefix(st.Key, "ind3@") {
			continue
		}
		found = true
		if st.PoolBuilds != 0 {
			t.Errorf("warm analyzer PoolBuilds = %d, want 0", st.PoolBuilds)
		}
		if st.PoolRestores != 1 {
			t.Errorf("warm analyzer PoolRestores = %d, want 1", st.PoolRestores)
		}
		if st.SnapshotKey == "" {
			t.Error("warm analyzer has no snapshot key")
		}
		if st.PoolBytes <= int64(len(st.SnapshotKey)) {
			t.Errorf("PoolBytes = %d does not cover matrix + key", st.PoolBytes)
		}
	}
	if !found {
		t.Fatalf("no ind3 analyzer in stats: %+v", stats)
	}
	var statsz struct {
		Store struct {
			Enabled        bool  `json:"enabled"`
			Bytes          int64 `json:"bytes"`
			DatasetsLoaded int   `json:"datasets_loaded"`
			Snapshots      struct {
				Hits int64 `json:"hits"`
			} `json:"snapshots"`
		} `json:"store"`
	}
	if code, _ := get(t, ts2, "/statsz", &statsz); code != http.StatusOK {
		t.Fatalf("statsz = %d", code)
	}
	if !statsz.Store.Enabled || statsz.Store.Bytes < 1 || statsz.Store.DatasetsLoaded < 1 || statsz.Store.Snapshots.Hits < 1 {
		t.Errorf("statsz store section = %+v", statsz.Store)
	}
}

// TestCorruptSnapshotQuarantine damages a persisted pool snapshot on disk and
// checks the restart degrades gracefully: the query is answered identically
// (pool rebuilt), the bad file is quarantined for inspection, and a fresh
// snapshot is written back — never a crash, never a corrupt answer.
func TestCorruptSnapshotQuarantine(t *testing.T) {
	dir := t.TempDir()
	query := `{"dataset":"ind3","samples":5000,"queries":[{"op":"toph","h":3}]}`

	s1, ts1 := newTestServer(t, func(c *Config) { c.DataDir = dir })
	code, cold := postRaw(t, ts1, "/v1/query", query)
	if code != http.StatusOK {
		t.Fatalf("cold query = %d", code)
	}
	s1.Close()
	ts1.Close()

	pools, err := filepath.Glob(filepath.Join(dir, store.NSPools, "*.kv"))
	if err != nil || len(pools) != 1 {
		t.Fatalf("pool snapshot files = %v, %v", pools, err)
	}
	raw, err := os.ReadFile(pools[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(pools[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, func(c *Config) { c.DataDir = dir })
	code, rebuilt := postRaw(t, ts2, "/v1/query", query)
	if code != http.StatusOK {
		t.Fatalf("query over corrupt snapshot = %d: %s", code, rebuilt)
	}
	if rebuilt != cold {
		t.Errorf("rebuild changed the response:\ncold: %s\nrebuilt: %s", cold, rebuilt)
	}
	if q := s2.snapshots.quarantined.Load(); q != 1 {
		t.Errorf("quarantined = %d, want 1", q)
	}
	if w := s2.snapshots.writes.Load(); w < 1 {
		t.Errorf("snapshot not re-written after rebuild: writes = %d", w)
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, store.NSPools, "*.corrupt"))
	if len(quarantined) != 1 {
		t.Errorf("quarantined files = %v, want exactly one", quarantined)
	}
}

// TestJobResumeAcrossRestart seeds the store with a mid-flight job — a
// running record plus a checkpoint holding the first 4 rendered rankings —
// and boots a server over it: the job must be re-enqueued, resume past the
// checkpoint, and complete with a result identical to an uninterrupted run.
func TestJobResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	query := `{"dataset":"fig1","queries":[{"op":"enumerate","limit":11}]}`

	s1, ts1 := newTestServer(t, func(c *Config) { c.DataDir = dir })
	var sync queryResponse
	if code, _ := postJSON(t, ts1.URL, "/v1/query", query, &sync); code != http.StatusOK {
		t.Fatalf("sync query = %d", code)
	}
	if len(sync.Results[0].Rankings) != 11 {
		t.Fatalf("sync rankings = %d, want 11", len(sync.Results[0].Rankings))
	}
	s1.Close()
	ts1.Close()

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recBytes, err := json.Marshal(jobRecord{
		ID:      "j7",
		State:   string(jobRunning),
		Created: time.Now(),
		Request: &queryRequest{Dataset: "fig1", Queries: []querySpec{{Op: "enumerate", Limit: 11}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(store.NSJobs, "j7", recBytes); err != nil {
		t.Fatal(err)
	}
	ckBytes, err := json.Marshal(checkpointRecord{
		ID:          "j7",
		DatasetHash: fmt.Sprintf("%016x", stablerank.Figure1().Hash()),
		Rows:        sync.Results[0].Rankings[:4],
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(store.NSCheckpoints, "j7", ckBytes); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, func(c *Config) { c.DataDir = dir })
	done := pollJob(t, ts2, "j7", 10*time.Second)
	if done.Status != string(jobDone) || done.Result == nil {
		t.Fatalf("restored job = %+v", done)
	}
	if s2.persister.restoredJobs.Load() != 1 {
		t.Errorf("restored jobs = %d, want 1", s2.persister.restoredJobs.Load())
	}
	if s2.persister.resumes.Load() != 1 {
		t.Errorf("checkpoint resumes = %d, want 1", s2.persister.resumes.Load())
	}
	gotJSON, _ := json.Marshal(done.Result)
	wantJSON, _ := json.Marshal(&sync)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("resumed job result differs from uninterrupted run:\ngot:  %s\nwant: %s", gotJSON, wantJSON)
	}
	// Fresh ids must continue past restored ones.
	next, code := submitJob(t, ts2, `{"dataset":"fig1","queries":[{"op":"toph","h":1}]}`)
	if code != http.StatusAccepted || next.ID != "j8" {
		t.Errorf("post-restore submit = %d %q, want id j8", code, next.ID)
	}
}

// TestCloseCheckpointsRunningJobs pins the shutdown ordering contract: Close
// first stops the job workers — the running job writes a final checkpoint on
// its way out and its persisted record stays "running" (resumable) — and
// only then flushes and closes the store, so everything written during the
// drain is durable when Close returns.
func TestCloseCheckpointsRunningJobs(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, func(c *Config) {
		c.DataDir = dir
		c.CheckpointEvery = 1
		c.JobWorkers = 1
		c.DefaultSampleCount = 30_000
	})
	addDeepDataset(t, s)

	// An exhaustive 4D enumeration: runs until cancelled.
	j, code := submitJob(t, ts, `{"dataset":"deep","queries":[{"op":"enumerate"}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.persister.checkpointWrites.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("job never checkpointed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts.Close()
	s.Close()

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recBytes, err := st.Get(store.NSJobs, j.ID)
	if err != nil {
		t.Fatalf("job record after Close: %v", err)
	}
	var rec jobRecord
	if err := json.Unmarshal(recBytes, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != string(jobRunning) {
		t.Errorf("persisted state after shutdown = %q, want running (resumable)", rec.State)
	}
	if rec.Request == nil {
		t.Error("persisted record carries no request to recompile")
	}
	ckBytes, err := st.Get(store.NSCheckpoints, j.ID)
	if err != nil {
		t.Fatalf("checkpoint after Close: %v", err)
	}
	var ck checkpointRecord
	if err := json.Unmarshal(ckBytes, &ck); err != nil {
		t.Fatal(err)
	}
	if len(ck.Rows) < 1 {
		t.Error("final checkpoint holds no rows")
	}
}
