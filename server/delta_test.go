package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"stablerank"
	"stablerank/internal/store"
)

// patchRaw sends a PATCH with a JSON delta body and returns status + body.
func patchRaw(t *testing.T, base, name, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPatch, base+"/v1/datasets/"+name, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestPatchDatasetSplicesState is the end-to-end delta flow: a warmed
// analyzer and populated cache, then a PATCH, then the accounting — the
// mutated dataset's analyzer migrates (no rebuild), only its cache entries
// die, and /statsz's deltas section reflects all of it.
func TestPatchDatasetSplicesState(t *testing.T) {
	s, ts := newTestServer(t, nil)

	// Warm: one Monte-Carlo query on ind3 (builds its pool and caches the
	// response) and one on fig1 (a second dataset's cache entry that must
	// survive the PATCH).
	var before struct {
		Stability float64 `json:"stability"`
	}
	if code, _ := get(t, ts, "/v1/ind3/verify?weights=1,1,1&samples=5000", &before); code != http.StatusOK {
		t.Fatalf("warm ind3 = %d", code)
	}
	if code, _ := get(t, ts, "/v1/fig1/verify?weights=1,1", nil); code != http.StatusOK {
		t.Fatalf("warm fig1 = %d", code)
	}
	buildsBefore := s.analyzers.builds.Load()

	var pr deltaResponse
	code, body := patchRaw(t, ts.URL, "ind3",
		`{"deltas":[{"op":"update","id":"i0","attrs":[9,9,9]},{"op":"add","id":"neo","attrs":[1,2,3]}]}`)
	if code != http.StatusOK {
		t.Fatalf("patch = %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatalf("patch body: %v\n%s", err, body)
	}
	if pr.Version != 1 || pr.Applied != 2 || pr.N != 13 {
		t.Fatalf("patch response = %+v, want version 1, applied 2, n 13", pr)
	}
	if pr.AnalyzersMigrated < 1 {
		t.Fatalf("analyzers_migrated = %d, want >= 1", pr.AnalyzersMigrated)
	}
	if pr.Spliced+pr.Resorted < 2 {
		t.Fatalf("spliced %d + resorted %d < 2 applied deltas", pr.Spliced, pr.Resorted)
	}
	if pr.CacheInvalidated < 1 || pr.CacheSurvived < 1 {
		t.Fatalf("cache invalidated %d / survived %d, want >= 1 each", pr.CacheInvalidated, pr.CacheSurvived)
	}

	// The post-delta query answers against the new dataset from the MIGRATED
	// analyzer: no new pool build, a cache miss (the old entry died), and a
	// 13-item ranking that includes the added item.
	var after struct {
		Stability float64   `json:"stability"`
		Ranking   []itemRef `json:"ranking"`
	}
	code, hdr := get(t, ts, "/v1/ind3/verify?weights=1,1,1&samples=5000", &after)
	if code != http.StatusOK {
		t.Fatalf("post-patch verify = %d", code)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("post-patch verify X-Cache = %q, want miss", hdr.Get("X-Cache"))
	}
	if got := s.analyzers.builds.Load(); got != buildsBefore {
		t.Fatalf("PATCH triggered %d pool builds, want 0", got-buildsBefore)
	}
	if len(after.Ranking) != 13 {
		t.Fatalf("post-patch ranking has %d items, want 13", len(after.Ranking))
	}
	found := false
	for _, ref := range after.Ranking {
		found = found || ref.ID == "neo"
	}
	if !found {
		t.Fatal("added item missing from the post-patch ranking")
	}
	// The fig1 entry survived: an immediate repeat is a cache hit.
	if _, hdr := get(t, ts, "/v1/fig1/verify?weights=1,1", nil); hdr.Get("X-Cache") != "hit" {
		t.Fatalf("fig1 X-Cache = %q, want hit (entry should survive another dataset's PATCH)", hdr.Get("X-Cache"))
	}

	var stats struct {
		Deltas struct {
			Applied           int64 `json:"applied"`
			Spliced           int64 `json:"spliced"`
			Resorted          int64 `json:"resorted"`
			CacheInvalidated  int64 `json:"cache_invalidated"`
			CacheSurvivals    int64 `json:"cache_survivals"`
			AnalyzersMigrated int64 `json:"analyzers_migrated"`
		} `json:"deltas"`
	}
	if code, _ := get(t, ts, "/statsz", &stats); code != http.StatusOK {
		t.Fatalf("statsz = %d", code)
	}
	d := stats.Deltas
	if d.Applied != 2 || d.Spliced+d.Resorted < 2 || d.AnalyzersMigrated < 1 {
		t.Fatalf("statsz deltas = %+v, want applied 2, spliced+resorted >= 2, migrated >= 1", d)
	}
	if d.CacheInvalidated < 1 || d.CacheSurvivals < 1 {
		t.Fatalf("statsz deltas cache accounting = %+v, want >= 1 each", d)
	}
}

// TestPatchDropsStaleGenerationAnalyzers: an analyzer left resident after a
// full dataset replacement (Add bumps the generation but never purges the
// pool) holds state derived from the replaced content, so a later PATCH must
// drop it rather than splice it forward — the next query rebuilds against
// the current dataset.
func TestPatchDropsStaleGenerationAnalyzers(t *testing.T) {
	s, ts := newTestServer(t, nil)
	if code, _ := get(t, ts, "/v1/ind3/verify?weights=1,1,1", nil); code != http.StatusOK {
		t.Fatalf("warm ind3 = %d", code)
	}
	// Replace ind3 wholesale: generation 1 -> 2, the gen-1 analyzer stays
	// resident.
	if err := s.registry.Add("ind3", seedDataset(12, 3, 99)); err != nil {
		t.Fatal(err)
	}
	buildsBefore := s.analyzers.builds.Load()

	var pr deltaResponse
	code, body := patchRaw(t, ts.URL, "ind3", `{"deltas":[{"op":"update","id":"i0","attrs":[9,9,9]}]}`)
	if code != http.StatusOK {
		t.Fatalf("patch = %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatalf("patch body: %v\n%s", err, body)
	}
	if pr.AnalyzersMigrated != 0 || pr.AnalyzersDropped != 1 {
		t.Fatalf("migrated %d / dropped %d, want 0 / 1: a stale-generation analyzer must not be spliced forward", pr.AnalyzersMigrated, pr.AnalyzersDropped)
	}

	// The next query cannot be served from the dropped analyzer: it rebuilds
	// against the replaced-and-patched dataset.
	var after struct {
		Ranking []itemRef `json:"ranking"`
	}
	if code, _ := get(t, ts, "/v1/ind3/verify?weights=1,1,1", &after); code != http.StatusOK {
		t.Fatalf("post-patch verify = %d", code)
	}
	if got := s.analyzers.builds.Load(); got != buildsBefore+1 {
		t.Fatalf("post-patch verify triggered %d builds, want 1 (stale analyzer must be gone)", got-buildsBefore)
	}
	if len(after.Ranking) != 12 {
		t.Fatalf("post-patch ranking has %d items, want 12", len(after.Ranking))
	}
}

// TestPatchDatasetValidation pins the PATCH error surface, including batch
// atomicity: one bad op rejects the whole batch and nothing changes.
func TestPatchDatasetValidation(t *testing.T) {
	s, ts := newTestServer(t, nil)
	cases := []struct {
		name, dataset, body string
		want                int
	}{
		{"unknown dataset", "nope", `{"deltas":[{"op":"remove","id":"x"}]}`, http.StatusNotFound},
		{"malformed json", "ind3", `{"deltas":[`, http.StatusBadRequest},
		{"unknown field", "ind3", `{"deltas":[{"op":"remove","id":"x","extra":1}]}`, http.StatusBadRequest},
		{"trailing data", "ind3", `{"deltas":[{"op":"remove","id":"i0"}]} {"more":1}`, http.StatusBadRequest},
		{"empty batch", "ind3", `{"deltas":[]}`, http.StatusBadRequest},
		{"bad op", "ind3", `{"deltas":[{"op":"upsert","id":"i0","attrs":[1,2,3]}]}`, http.StatusBadRequest},
		{"missing id", "ind3", `{"deltas":[{"op":"remove"}]}`, http.StatusBadRequest},
		{"wrong dimension", "ind3", `{"deltas":[{"op":"update","id":"i0","attrs":[1,2]}]}`, http.StatusBadRequest},
		{"remove with attrs", "ind3", `{"deltas":[{"op":"remove","id":"i0","attrs":[1,2,3]}]}`, http.StatusBadRequest},
		{"unknown item", "ind3", `{"deltas":[{"op":"update","id":"i0","attrs":[5,5,5]},{"op":"remove","id":"ghost"}]}`, http.StatusBadRequest},
		{"duplicate add", "ind3", `{"deltas":[{"op":"add","id":"i0","attrs":[1,2,3]}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, body := patchRaw(t, ts.URL, tc.dataset, tc.body); code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.want, body)
		}
	}
	// Atomicity: the valid first op of the "unknown item" batch did not land.
	if _, _, ver, _ := s.registry.Get("ind3"); ver != 0 {
		t.Fatalf("dataset version = %d after only rejected batches, want 0", ver)
	}
	if got := s.deltasApplied.Load(); got != 0 {
		t.Fatalf("deltas applied counter = %d after only rejected batches", got)
	}
}

// TestDriftStream subscribes to a dataset's drift feed, applies a PATCH, and
// requires the per-delta drift lines to arrive on the open stream.
func TestDriftStream(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/ind3/drift")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("drift Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no hello line: %v", sc.Err())
	}
	var hello driftHello
	if err := json.Unmarshal(sc.Bytes(), &hello); err != nil {
		t.Fatalf("hello line: %v\n%s", err, sc.Text())
	}
	if hello.Dataset != "ind3" || hello.N != 12 || !hello.Streaming {
		t.Fatalf("hello = %+v", hello)
	}

	// The hello line is written after subscribing, so this PATCH must land in
	// the live stream.
	done := make(chan struct{})
	go func() {
		defer close(done)
		code, body := patchRaw(t, ts.URL, "ind3",
			`{"deltas":[{"op":"update","id":"i1","attrs":[8,8,8]},{"op":"remove","id":"i2"}]}`)
		if code != http.StatusOK {
			t.Errorf("patch = %d: %s", code, body)
		}
	}()

	var events []driftEvent
	for len(events) < 2 && sc.Scan() {
		var ev driftEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("drift line: %v\n%s", err, sc.Text())
		}
		events = append(events, ev)
	}
	if len(events) < 2 {
		t.Fatalf("got %d drift events, want 2 (%v)", len(events), sc.Err())
	}
	<-done
	if events[0].Op != "update" || events[0].ID != "i1" || events[1].Op != "remove" || events[1].ID != "i2" {
		t.Fatalf("drift events = %+v", events)
	}
	for _, ev := range events {
		if ev.Dataset != "ind3" || ev.Version != 1 || ev.PoolRows <= 0 || ev.RankRows <= 0 {
			t.Fatalf("drift event = %+v, want dataset ind3, version 1, positive rows", ev)
		}
	}
	// Removing an item must rank it below everything afterwards: its mean
	// rank after the delta is n+1 of the post-delta dataset.
	if rm := events[1]; rm.MeanRankAfter <= rm.MeanRankBefore {
		t.Fatalf("removed item mean rank before %v, after %v — removal should sink it", rm.MeanRankBefore, rm.MeanRankAfter)
	}
}

// TestPatchClusterRouting pins the cluster contract: a PATCH serializes at
// the dataset's ring owner, and the forwarded marker keeps the hop from
// looping (a forwarded PATCH always applies locally).
func TestPatchClusterRouting(t *testing.T) {
	nodes := startCluster(t, 2, clusterOpts{peered: true})
	owner := nodes[0].srv.cluster.ring.Owner("dataset:ind3")
	var ownerNode, otherNode *clusterNode
	for _, n := range nodes {
		if n.url == owner {
			ownerNode = n
		} else {
			otherNode = n
		}
	}
	if ownerNode == nil || otherNode == nil {
		t.Fatalf("owner %q not among nodes", owner)
	}

	body := `{"deltas":[{"op":"update","id":"i0","attrs":[7,7,7]}]}`
	req, err := http.NewRequest(http.MethodPatch, otherNode.url+"/v1/datasets/ind3", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed patch = %d", resp.StatusCode)
	}
	if sb := resp.Header.Get(servedByHeader); sb != owner {
		t.Fatalf("patch served by %q, want owner %q", sb, owner)
	}
	if _, _, ver, _ := ownerNode.srv.registry.Get("ind3"); ver != 1 {
		t.Fatalf("owner version = %d, want 1", ver)
	}
	if _, _, ver, _ := otherNode.srv.registry.Get("ind3"); ver != 0 {
		t.Fatalf("non-owner version = %d, want 0 (PATCH must route away)", ver)
	}

	// Loop guard: a request already carrying the forwarded marker is applied
	// locally no matter what the ring says.
	req, err = http.NewRequest(http.MethodPatch, otherNode.url+"/v1/datasets/ind3", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(forwardedHeader, "test")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded patch = %d", resp.StatusCode)
	}
	if sb := resp.Header.Get(servedByHeader); sb != otherNode.url {
		t.Fatalf("forwarded patch served by %q, want %q", sb, otherNode.url)
	}
	if _, _, ver, _ := otherNode.srv.registry.Get("ind3"); ver != 1 {
		t.Fatalf("non-owner version after forwarded patch = %d, want 1", ver)
	}
}

// TestSnapshotSweepAtBoot seeds the pool-snapshot namespace with entries no
// current analyzer can load — the old content-hash key format and a stale
// layout version — and requires boot to reclaim exactly those.
func TestSnapshotSweepAtBoot(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep := fmt.Sprintf("d=3|full|seed=42|n=5000|layout=%d", stablerank.PoolLayoutVersion)
	stale := []string{
		"a1b2c3d4|full|seed=42|n=5000|layout=1",                                        // pre-delta format: content-hash keyed
		fmt.Sprintf("d=3|full|seed=7|n=100|layout=%d", stablerank.PoolLayoutVersion-1), // old codec layout
	}
	for _, key := range append(stale, keep) {
		if err := st.Put(store.NSPools, key, []byte("snapshot-bytes")); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, func(c *Config) { c.DataDir = dir })
	var stats struct {
		Store struct {
			Snapshots struct {
				Swept int64 `json:"swept"`
			} `json:"snapshots"`
		} `json:"store"`
	}
	if code, _ := get(t, ts, "/statsz", &stats); code != http.StatusOK {
		t.Fatalf("statsz = %d", code)
	}
	if got := stats.Store.Snapshots.Swept; got != int64(len(stale)) {
		t.Fatalf("swept = %d, want %d", got, len(stale))
	}
	entries, err := s.store.Entries(store.NSPools)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Key != keep {
		t.Fatalf("surviving entries = %+v, want only %q", entries, keep)
	}
}

// TestDriftStreamUnknownDataset: the stream 404s before any NDJSON framing.
func TestDriftStreamUnknownDataset(t *testing.T) {
	_, ts := newTestServer(t, nil)
	if code, _ := get(t, ts, "/v1/ghost/drift", nil); code != http.StatusNotFound {
		t.Fatalf("drift on unknown dataset = %d, want 404", code)
	}
}

// FuzzApplyDelta fuzzes the PATCH decode surface and, when a body decodes,
// pushes the deltas through the real apply path: whatever JSON arrives, the
// server must either reject it cleanly or mutate the dataset atomically —
// never panic, never corrupt.
func FuzzApplyDelta(f *testing.F) {
	f.Add([]byte(`{"deltas":[{"op":"add","id":"x","attrs":[1,2,3]}]}`))
	f.Add([]byte(`{"deltas":[{"op":"update","id":"i0","attrs":[0.5,0.5,0.5]},{"op":"remove","id":"i1"}]}`))
	f.Add([]byte(`{"deltas":[{"op":"add","id":"i0","attrs":[1,2,3]},{"op":"add","id":"i0","attrs":[1,2,3]}]}`))
	f.Add([]byte(`{"deltas":[{"op":"update","id":"i0","attrs":[1e999,0,0]}]}`))
	f.Add([]byte(`{"deltas":[{"op":"remove","id":""}]}`))
	f.Add([]byte(`{"deltas":[{"op":"frobnicate","id":"x"}]}`))
	f.Add([]byte(`{"deltas":[]}`))
	f.Add([]byte(`{"deltas":[{"op":"remove","id":"i0"}]} trailing`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		deltas, err := decodeDeltas(data, 3, 64)
		if err != nil {
			return
		}
		if len(deltas) == 0 || len(deltas) > 64 {
			t.Fatalf("decode accepted %d deltas outside (0, 64]", len(deltas))
		}
		base := seedDataset(12, 3, 7)
		nds, err := stablerank.ApplyDeltas(base, deltas...)
		if err != nil {
			return // semantically invalid (unknown id, duplicate add, ...) — rejected atomically
		}
		if nds.D() != 3 {
			t.Fatalf("apply changed dimension to %d", nds.D())
		}
		// The mutated dataset must be rebuildable item by item: the delta
		// path's output is always a well-formed dataset.
		check := stablerank.MustDataset(3)
		for i := 0; i < nds.N(); i++ {
			it := nds.Item(i)
			if err := check.Add(it.ID, it.Attrs); err != nil {
				t.Fatalf("delta output not rebuildable at item %d: %v", i, err)
			}
		}
		if check.Hash() != nds.Hash() {
			t.Fatalf("rebuilt hash diverged")
		}
	})
}

// seedDataset mirrors the test fixture ind3 without touching the registry.
func seedDataset(n, d int, seed int64) *stablerank.Dataset {
	return stablerank.Independent(rand.New(rand.NewSource(seed)), n, d)
}
