package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
)

// GET /v1/{dataset}/drift: a live NDJSON feed of stability drift. Every
// PATCH to the dataset publishes one line per applied delta describing how
// the touched item's score and rank moved across the Monte-Carlo pool — the
// "how much did this mutation destabilize the ranking" signal, measured on
// the same weight-space samples the stability queries integrate over. The
// stream opens with a hello line carrying the dataset's current identity and
// stays up until the client disconnects.

// driftEvent is one applied delta's drift measurement on the wire.
type driftEvent struct {
	Dataset          string  `json:"dataset"`
	Generation       int64   `json:"generation"`
	Version          int64   `json:"version"`
	Op               string  `json:"op"`
	ID               string  `json:"id"`
	PoolRows         int     `json:"pool_rows"`
	MeanScoreDelta   float64 `json:"mean_score_delta"`
	MaxAbsScoreDelta float64 `json:"max_abs_score_delta"`
	RankRows         int     `json:"rank_rows"`
	RankChanged      int     `json:"rank_changed"`
	MeanRankBefore   float64 `json:"mean_rank_before"`
	MeanRankAfter    float64 `json:"mean_rank_after"`
	MeanAbsRankShift float64 `json:"mean_abs_rank_shift"`
	MaxAbsRankShift  int     `json:"max_abs_rank_shift"`
	RankImproved     int     `json:"rank_improved"`
	RankWorsened     int     `json:"rank_worsened"`
}

// driftHello is the first NDJSON line of a drift stream.
type driftHello struct {
	Dataset    string `json:"dataset"`
	N          int    `json:"n"`
	D          int    `json:"d"`
	Generation int64  `json:"generation"`
	Version    int64  `json:"version"`
	Streaming  bool   `json:"streaming"`
}

// driftChanCap buffers per-subscriber events; a subscriber this far behind a
// burst of PATCHes loses the overflow (counted) rather than stalling writers.
const driftChanCap = 16

// driftHub fans drift events out to per-dataset subscribers. Publishing never
// blocks: PATCH handling must not be hostage to a slow stream reader.
type driftHub struct {
	mu   sync.Mutex
	subs map[string]map[chan driftEvent]struct{} // guarded by mu

	events   atomic.Int64 // events published (per delta, not per PATCH)
	dropped  atomic.Int64 // events lost to full subscriber buffers
	streamed atomic.Int64 // NDJSON lines actually written to clients
}

func newDriftHub() *driftHub {
	return &driftHub{subs: make(map[string]map[chan driftEvent]struct{})}
}

// subscribe registers a new drift listener for the named dataset.
func (h *driftHub) subscribe(name string) chan driftEvent {
	ch := make(chan driftEvent, driftChanCap)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.subs[name] == nil {
		h.subs[name] = make(map[chan driftEvent]struct{})
	}
	h.subs[name][ch] = struct{}{}
	return ch
}

// unsubscribe removes a listener; its channel is never closed (the publisher
// may hold a reference mid-send), the subscriber just stops reading.
func (h *driftHub) unsubscribe(name string, ch chan driftEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if set := h.subs[name]; set != nil {
		delete(set, ch)
		if len(set) == 0 {
			delete(h.subs, name)
		}
	}
}

// hasSubscribers reports whether anyone is listening — the PATCH path uses it
// to skip drift measurement entirely when nobody would see the result.
func (h *driftHub) hasSubscribers(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs[name]) > 0
}

// publish delivers the events to every subscriber of the named dataset,
// dropping (and counting) what a full buffer cannot take.
func (h *driftHub) publish(name string, events []driftEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.events.Add(int64(len(events)))
	for ch := range h.subs[name] { //srlint:ordered each subscriber sees events in order; delivery order across subscribers is unobservable
		for _, ev := range events {
			select {
			case ch <- ev:
			default:
				h.dropped.Add(1)
			}
		}
	}
}

// handleDrift is GET /v1/{dataset}/drift.
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request, name string) {
	ds, gen, ver, ok := s.registry.Get(name)
	if !ok {
		writeError(w, errNotFound("unknown dataset %q", name))
		return
	}
	s.markServedLocally(w)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // disable proxy buffering
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	// Subscribe before the hello line: a PATCH racing the stream open lands
	// in the buffer instead of the gap.
	ch := s.drift.subscribe(name)
	defer s.drift.unsubscribe(name, ch)
	if err := enc.Encode(driftHello{Dataset: name, N: ds.N(), D: ds.D(), Generation: gen, Version: ver, Streaming: true}); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		//srlint:ordered disconnect-vs-event race; events within ch stay ordered and a lost final event is indistinguishable from disconnecting earlier
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if err := enc.Encode(ev); err != nil {
				return // client went away mid-write
			}
			s.drift.streamed.Add(1)
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
