package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"stablerank"
)

// The cluster integration tests boot real multi-node stablerankd clusters on
// loopback listeners and pin the distributed layer's one load-bearing
// invariant: a clustered deployment answers every query bit-identically to a
// single node — across routing, remote chunk fill, worker death, and owner
// fallback. The CI cluster lane runs exactly these (go test -race -run
// 'TestCluster').

// clusterNode is one running stablerankd replica.
type clusterNode struct {
	srv *Server
	url string
	hs  *http.Server
	ln  net.Listener
}

// kill stops the node's listener and HTTP server immediately (the "node
// died" scenario; Cleanup-registered closes tolerate a prior kill).
func (n *clusterNode) kill() {
	n.hs.Close()
	n.ln.Close()
}

type clusterOpts struct {
	// mutate adjusts node i's config; urls lists every node (i included).
	mutate func(i int, urls []string, cfg *Config)
	// wrap, when set, wraps node i's root handler (fault injection).
	wrap func(i int, h http.Handler) http.Handler
	// peered wires Peers/SelfURL so the nodes route to each other.
	peered bool
}

// startCluster boots n nodes with identical registries (same fixture seeds,
// so identical dataset hashes) on loopback listeners. Listeners are bound
// before any server is built so every node knows the full URL set.
func startCluster(t *testing.T, n int, opts clusterOpts) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		reg := NewRegistry()
		if err := reg.Add("fig1", stablerank.Figure1()); err != nil {
			t.Fatal(err)
		}
		if err := reg.Add("ind3", stablerank.Independent(rand.New(rand.NewSource(7)), 12, 3)); err != nil {
			t.Fatal(err)
		}
		cfg := Config{Registry: reg, DefaultSampleCount: 20_000}
		if opts.peered {
			cfg.Peers = urls
			cfg.SelfURL = urls[i]
		}
		if opts.mutate != nil {
			opts.mutate(i, urls, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h := s.Handler()
		if opts.wrap != nil {
			h = opts.wrap(i, h)
		}
		hs := &http.Server{Handler: h}
		go func(ln net.Listener) { _ = hs.Serve(ln) }(lns[i])
		nodes[i] = &clusterNode{srv: s, url: urls[i], hs: hs, ln: lns[i]}
		t.Cleanup(func() { hs.Close(); s.Close() })
	}
	return nodes
}

// postQuery sends a /v1/query body to base and returns status, headers and
// the raw response body.
func postQuery(t *testing.T, base, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

func getRaw(t *testing.T, base, path string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

func TestClusterQueriesBitIdenticalToSingleNode(t *testing.T) {
	_, single := newTestServer(t, nil)
	nodes := startCluster(t, 3, clusterOpts{peered: true})

	queries := []string{
		`{"dataset":"ind3","seed":5,"samples":13000,"queries":[{"op":"verify","weights":[1,1,1]},{"op":"toph","h":5}]}`,
		`{"dataset":"ind3","seed":5,"samples":13000,"theta":0.4,"weights":[0.5,0.3,0.2],"queries":[{"op":"verify","weights":[0.5,0.3,0.2]}]}`,
		`{"dataset":"fig1","seed":9,"samples":9000,"queries":[{"op":"toph","h":4},{"op":"above","s":0.1}]}`,
	}
	for qi, body := range queries {
		wantStatus, _, want := postQuery(t, single.URL, body)
		if wantStatus != http.StatusOK {
			t.Fatalf("query %d: single-node answered %d: %s", qi, wantStatus, want)
		}
		var owner string
		for ni, node := range nodes {
			gotStatus, hdr, got := postQuery(t, node.url, body)
			if gotStatus != http.StatusOK {
				t.Fatalf("query %d via node %d: status %d: %s", qi, ni, gotStatus, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("query %d via node %d: response differs from single node\n got: %s\nwant: %s", qi, ni, got, want)
			}
			served := hdr.Get(servedByHeader)
			if served == "" {
				t.Fatalf("query %d via node %d: no %s header", qi, ni, servedByHeader)
			}
			if owner == "" {
				owner = served
			} else if served != owner {
				t.Fatalf("query %d: node %d says owner %s, earlier nodes said %s", qi, ni, served, owner)
			}
		}
	}

	// The GET surface routes identically.
	path := "/v1/ind3/verify?weights=1,1,1&seed=5&samples=13000"
	_, _, want := getRaw(t, single.URL, path)
	var owner string
	for ni, node := range nodes {
		status, hdr, got := getRaw(t, node.url, path)
		if status != http.StatusOK {
			t.Fatalf("GET via node %d: status %d: %s", ni, status, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("GET via node %d: response differs from single node", ni)
		}
		if served := hdr.Get(servedByHeader); owner == "" {
			owner = served
		} else if served != owner {
			t.Fatalf("GET via node %d: owner flapped %s -> %s", ni, owner, served)
		}
	}
}

func TestClusterPlacementIsDisjointAndStable(t *testing.T) {
	nodes := startCluster(t, 3, clusterOpts{peered: true})

	// Sweep seeds so the keys spread over the ring; every node must agree
	// on each key's owner, and the analyzers must end up only on owners.
	owners := map[int]string{}
	for seed := 1; seed <= 12; seed++ {
		body := fmt.Sprintf(`{"dataset":"ind3","seed":%d,"samples":4000,"queries":[{"op":"verify","weights":[1,1,1]}]}`, seed)
		for ni, node := range nodes {
			status, hdr, got := postQuery(t, node.url, body)
			if status != http.StatusOK {
				t.Fatalf("seed %d via node %d: status %d: %s", seed, ni, status, got)
			}
			served := hdr.Get(servedByHeader)
			if prev, ok := owners[seed]; ok && prev != served {
				t.Fatalf("seed %d: owner flapped %s -> %s", seed, prev, served)
			}
			owners[seed] = served
		}
	}
	distinct := map[string]bool{}
	for _, o := range owners {
		distinct[o] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("12 seeds all landed on one node %v — ring not spreading", owners)
	}

	// Each key's analyzer lives only on its owner: the per-node resident
	// counts must sum to the number of distinct keys, not 3x.
	total := 0
	for _, node := range nodes {
		var stats struct {
			Analyzers struct {
				Resident []json.RawMessage `json:"resident"`
			} `json:"analyzers"`
		}
		_, _, raw := getRaw(t, node.url, "/statsz?scope=local")
		if err := json.Unmarshal(raw, &stats); err != nil {
			t.Fatal(err)
		}
		total += len(stats.Analyzers.Resident)
	}
	if total != len(owners) {
		t.Fatalf("analyzers resident across cluster = %d, want %d (one per key, on its owner only)", total, len(owners))
	}
}

// dieAfterOneChunk lets one fill frame through, then aborts the connection:
// a worker dying mid-stream, reproducibly.
type dieAfterOneChunk struct {
	http.ResponseWriter
	flushes int
}

func (d *dieAfterOneChunk) Flush() {
	d.flushes++
	if f, ok := d.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (d *dieAfterOneChunk) Write(b []byte) (int, error) {
	if d.flushes >= 1 {
		panic(http.ErrAbortHandler)
	}
	return d.ResponseWriter.Write(b)
}

func TestClusterRemoteFillSurvivesWorkerDeath(t *testing.T) {
	_, single := newTestServer(t, nil)
	// Node 0 coordinates its pool builds across nodes 1 and 2; node 2's fill
	// endpoint dies after its first chunk of every request.
	nodes := startCluster(t, 3, clusterOpts{
		mutate: func(i int, urls []string, cfg *Config) {
			if i == 0 {
				cfg.FillWorkers = []string{urls[1], urls[2]}
				cfg.FillTimeout = 5 * time.Second
			}
		},
		wrap: func(i int, h http.Handler) http.Handler {
			if i != 2 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/cluster/v1/fill" {
					w = &dieAfterOneChunk{ResponseWriter: w}
				}
				h.ServeHTTP(w, r)
			})
		},
	})

	// 13000 samples = 4 chunks, so each worker owns 2 and the mid-stream
	// death is observable; the retry pass recovers the lost chunk remotely.
	body := `{"dataset":"ind3","seed":21,"samples":13000,"queries":[{"op":"verify","weights":[1,1,1]},{"op":"toph","h":5}]}`
	_, _, want := postQuery(t, single.URL, body)
	status, _, got := postQuery(t, nodes[0].url, body)
	if status != http.StatusOK {
		t.Fatalf("clustered query: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("remote-filled response differs from single node — determinism contract broken")
	}

	// Now node 2 drops dead entirely; a fresh pool (new seed) must still
	// build bit-identically, re-filling the dead worker's share.
	nodes[2].kill()
	body2 := `{"dataset":"ind3","seed":22,"samples":13000,"queries":[{"op":"verify","weights":[1,1,1]}]}`
	_, _, want2 := postQuery(t, single.URL, body2)
	status2, _, got2 := postQuery(t, nodes[0].url, body2)
	if status2 != http.StatusOK {
		t.Fatalf("query after worker death: status %d: %s", status2, got2)
	}
	if !bytes.Equal(got2, want2) {
		t.Fatal("response after worker death differs from single node")
	}

	// The coordinator's counters must show the whole story: remote chunks,
	// worker failures, and the local re-fill of the dead worker's share.
	var stats struct {
		Fill struct {
			Coordinator struct {
				RemoteChunks int64 `json:"remote_chunks"`
				LocalChunks  int64 `json:"local_fallback_chunks"`
				WorkerErrors int64 `json:"worker_errors"`
				PoolsFilled  int64 `json:"pools_filled"`
			} `json:"coordinator"`
		} `json:"fill"`
	}
	_, _, raw := getRaw(t, nodes[0].url, "/statsz")
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	c := stats.Fill.Coordinator
	if c.PoolsFilled < 2 || c.RemoteChunks == 0 || c.WorkerErrors == 0 || c.LocalChunks == 0 {
		t.Fatalf("coordinator stats %+v: want remote chunks, worker errors and local re-fills all recorded", c)
	}
}

func TestClusterHealthAndStatsAggregation(t *testing.T) {
	nodes := startCluster(t, 3, clusterOpts{peered: true})

	var health struct {
		Status  string `json:"status"`
		Cluster struct {
			Self  string       `json:"self"`
			Peers []peerHealth `json:"peers"`
		} `json:"cluster"`
	}
	_, _, raw := getRaw(t, nodes[0].url, "/healthz")
	if err := json.Unmarshal(raw, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.Cluster.Peers) != 3 {
		t.Fatalf("healthz = %s", raw)
	}
	selves, oks := 0, 0
	for _, p := range health.Cluster.Peers {
		switch p.Status {
		case "self":
			selves++
		case "ok":
			oks++
		}
	}
	if selves != 1 || oks != 2 {
		t.Fatalf("peer statuses wrong: %s", raw)
	}

	var stats struct {
		Cluster struct {
			Nodes     int            `json:"nodes"`
			Reachable int            `json:"reachable"`
			Peers     []peerStatsRow `json:"peers"`
			Aggregate map[string]int64
		} `json:"cluster"`
	}
	_, _, raw = getRaw(t, nodes[0].url, "/statsz")
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cluster.Nodes != 3 || stats.Cluster.Reachable != 3 || len(stats.Cluster.Peers) != 3 {
		t.Fatalf("cluster stats = %s", raw)
	}
	if got := stats.Cluster.Aggregate["datasets"]; got != 6 {
		t.Fatalf("aggregate datasets = %d, want 6 (2 datasets x 3 nodes)", got)
	}

	// Kill a node: health degrades, stats keep aggregating the survivors.
	nodes[2].kill()
	_, _, raw = getRaw(t, nodes[0].url, "/healthz")
	if err := json.Unmarshal(raw, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Fatalf("healthz after kill = %s", raw)
	}
	_, _, raw = getRaw(t, nodes[0].url, "/statsz")
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cluster.Reachable != 2 {
		t.Fatalf("reachable after kill = %d, want 2", stats.Cluster.Reachable)
	}
	if got := stats.Cluster.Aggregate["datasets"]; got != 4 {
		t.Fatalf("aggregate datasets after kill = %d, want 4", got)
	}
}

func TestClusterOwnerDownFallsBackLocally(t *testing.T) {
	_, single := newTestServer(t, nil)
	nodes := startCluster(t, 3, clusterOpts{peered: true})

	// Find a seed owned by node 2, then kill node 2: the entry node must
	// answer the query itself, bit-identically.
	target := ""
	for seed := 1; seed <= 64 && target == ""; seed++ {
		body := fmt.Sprintf(`{"dataset":"ind3","seed":%d,"samples":4000,"queries":[{"op":"verify","weights":[1,1,1]}]}`, seed)
		_, hdr, _ := postQuery(t, nodes[0].url, body)
		if hdr.Get(servedByHeader) == nodes[2].url {
			target = body
		}
	}
	if target == "" {
		t.Fatal("no seed in 1..64 owned by node 2 — ring badly skewed")
	}
	_, _, want := postQuery(t, single.URL, target)

	nodes[2].kill()
	status, hdr, got := postQuery(t, nodes[0].url, target)
	if status != http.StatusOK {
		t.Fatalf("query with dead owner: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fallback response differs from single node")
	}
	if served := hdr.Get(servedByHeader); served != nodes[0].url {
		t.Fatalf("served by %s, want the entry node %s after owner death", served, nodes[0].url)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{Peers: []string{"http://a", "http://b"}}); err == nil {
		t.Fatal("Peers without SelfURL accepted")
	}
	if _, err := New(Config{Peers: []string{"http://a", "http://b"}, SelfURL: "http://c"}); err == nil {
		t.Fatal("SelfURL outside Peers accepted")
	}
	s, err := New(Config{Peers: []string{"http://a/", " http://b"}, SelfURL: "http://a"})
	if err != nil {
		t.Fatalf("normalized peer list rejected: %v", err)
	}
	s.Close()
}
