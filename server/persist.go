package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"stablerank"
	"stablerank/internal/store"
)

// Persistence glue: how the server's three durable layers ride on the
// pluggable internal/store subsystem.
//
//   - Dataset catalog: Registry.AttachStore (registry.go) reloads persisted
//     datasets at boot and persists every Add.
//   - Pool snapshots: snapshotCache hands each analyzer a keyed PoolCache,
//     so a warm restart reinstalls previously drawn Monte-Carlo pools
//     (PoolBuilds == 0) instead of resampling them.
//   - Job checkpoints: jobPersister records every job's lifecycle and, for
//     enumeration-shaped jobs, a periodic checkpoint of the rendered result
//     prefix; a restart re-enqueues unfinished jobs and resumes them past
//     their last checkpoint.

// ---------------------------------------------------------------------------
// Pool snapshot cache.

// snapshotCache adapts the store's pools namespace to stablerank.PoolCache.
// Snapshots are keyed by (dimension, region, seed, samples, layout-version):
// exactly what the deterministic weight-space draw depends on, plus the codec
// version so a format change reads as a miss. Dataset content is deliberately
// NOT part of the key — pool samples are weight-space points, so replacing or
// patching a dataset of the same dimension reuses the snapshot verbatim. (An
// earlier scheme keyed on the dataset content hash; those entries were
// orphaned by every re-upload and are garbage-collected by sweepStale at
// boot.)
type snapshotCache struct {
	st       store.Store
	maxBytes int64 // whole-store cap; snapshots are evicted oldest-first under it
	logf     func(format string, args ...any)

	hits         atomic.Int64
	misses       atomic.Int64
	writes       atomic.Int64
	bytesWritten atomic.Int64
	quarantined  atomic.Int64
	evictions    atomic.Int64
	swept        atomic.Int64
}

func newSnapshotCache(st store.Store, maxBytes int64, logf func(string, ...any)) *snapshotCache {
	return &snapshotCache{st: st, maxBytes: maxBytes, logf: logf}
}

// snapshotKey renders the canonical pool identity for one analyzer key. The
// dimension is included because the draw emits d components per sample; name,
// generation and content hash are not, because the draw depends on none of
// them.
func snapshotKey(d int, key analyzerKey) string {
	return fmt.Sprintf("d=%d|%s|seed=%d|n=%d|layout=%d",
		d, key.region, key.seed, key.samples, stablerank.PoolLayoutVersion)
}

// cacheFor returns the PoolCache an analyzer built for key should use.
func (c *snapshotCache) cacheFor(ds *stablerank.Dataset, key analyzerKey) stablerank.PoolCache {
	return &keyedPoolCache{c: c, key: snapshotKey(ds.D(), key)}
}

// poolKeyRE matches the current snapshot key format's prefix.
var poolKeyRE = regexp.MustCompile(`^d=\d+\|`)

// sweepStale garbage-collects pool snapshots that no analyzer can ever load
// again: entries in an old key format (content-hash keyed, orphaned by each
// dataset replacement and never reclaimed — the bug this sweep fixes) or an
// old snapshot layout version. Runs once at boot; the count lands in
// /statsz store.snapshots.swept.
func (c *snapshotCache) sweepStale() int {
	entries, err := c.st.Entries(store.NSPools)
	if err != nil {
		c.logf("stablerankd: listing pool snapshots for sweep: %v", err)
		return 0
	}
	layoutSuffix := fmt.Sprintf("|layout=%d", stablerank.PoolLayoutVersion)
	removed := 0
	for _, e := range entries {
		if poolKeyRE.MatchString(e.Key) && strings.HasSuffix(e.Key, layoutSuffix) {
			continue
		}
		if c.st.Delete(store.NSPools, e.Key) == nil {
			removed++
		}
	}
	if removed > 0 {
		c.swept.Add(int64(removed))
		c.logf("stablerankd: swept %d stale pool snapshot(s)", removed)
	}
	return removed
}

// keyedPoolCache is one (snapshotCache, key) binding; the analyzer calls it
// lazily on first pool need.
type keyedPoolCache struct {
	c   *snapshotCache
	key string
}

func (k *keyedPoolCache) Key() string { return k.key }

// Load fetches the snapshot bytes. Corruption is already quarantined by the
// store; here it only counts and degrades to a miss, so the analyzer
// rebuilds — a damaged snapshot must never surface as an error.
func (k *keyedPoolCache) Load() ([]byte, bool) {
	data, err := k.c.st.Get(store.NSPools, k.key)
	switch {
	case err == nil:
		k.c.hits.Add(1)
		return data, true
	case errors.Is(err, store.ErrCorrupt):
		k.c.quarantined.Add(1)
		k.c.logf("stablerankd: pool snapshot %s corrupt, quarantined and rebuilding: %v", k.key, err)
	case errors.Is(err, store.ErrNotFound):
		// Plain miss.
	default:
		k.c.logf("stablerankd: pool snapshot %s read failed: %v", k.key, err)
	}
	k.c.misses.Add(1)
	return nil, false
}

// Save persists a freshly built pool, evicting the oldest snapshots first
// when a store byte cap is configured. Saving is best-effort: a full disk
// costs warm restarts, not queries.
func (k *keyedPoolCache) Save(snapshot []byte) {
	c := k.c
	if c.maxBytes > 0 {
		if int64(len(snapshot)) > c.maxBytes {
			c.logf("stablerankd: pool snapshot %s (%d bytes) exceeds -max-store-bytes %d, not cached", k.key, len(snapshot), c.maxBytes)
			return
		}
		if c.st.SizeBytes()+int64(len(snapshot)) > c.maxBytes {
			entries, err := c.st.Entries(store.NSPools)
			if err == nil {
				for _, e := range entries { // oldest first
					if c.st.SizeBytes()+int64(len(snapshot)) <= c.maxBytes {
						break
					}
					if c.st.Delete(store.NSPools, e.Key) == nil {
						c.evictions.Add(1)
					}
				}
			}
		}
		if c.st.SizeBytes()+int64(len(snapshot)) > c.maxBytes {
			c.logf("stablerankd: store at -max-store-bytes cap, pool snapshot %s not cached", k.key)
			return
		}
	}
	if err := c.st.Put(store.NSPools, k.key, snapshot); err != nil {
		c.logf("stablerankd: persisting pool snapshot %s: %v", k.key, err)
		return
	}
	c.writes.Add(1)
	c.bytesWritten.Add(int64(len(snapshot)))
}

// ---------------------------------------------------------------------------
// Job records and checkpoints.

// jobRecord is the persisted lifecycle of one async job. The original
// request travels with it so an unfinished job can be recompiled against the
// reloaded registry after a restart.
type jobRecord struct {
	ID      string         `json:"id"`
	State   string         `json:"state"`
	Created time.Time      `json:"created"`
	Started *time.Time     `json:"started,omitempty"`
	Ended   *time.Time     `json:"ended,omitempty"`
	Request *queryRequest  `json:"request,omitempty"`
	Error   string         `json:"error,omitempty"`
	Result  *queryResponse `json:"result,omitempty"`
}

// checkpointRecord is the resumable progress of one enumeration-shaped job:
// the rendered result prefix. The enumeration itself is deterministic (same
// pool, same delayed-arrangement walk), so "resume" re-drives it and skips
// the first len(Rows) rankings — the expensive partition work for the prefix
// is avoided only when the pool snapshot also warm-starts, but the already
// rendered rows are never recomputed and a completed prefix always survives.
// DatasetHash guards resumption against the dataset changing between runs:
// a mismatch discards the prefix instead of splicing two enumerations.
type checkpointRecord struct {
	ID          string           `json:"id"`
	DatasetHash string           `json:"dataset_hash"`
	Rows        []stableResponse `json:"rows"`
}

// jobPersister writes job records and checkpoints through the store.
type jobPersister struct {
	st   store.Store
	logf func(format string, args ...any)

	checkpointWrites atomic.Int64
	resumes          atomic.Int64
	restoredJobs     atomic.Int64
}

func newJobPersister(st store.Store, logf func(string, ...any)) *jobPersister {
	return &jobPersister{st: st, logf: logf}
}

// terminalJobState reports whether a state can no longer change.
func terminalJobState(st jobState) bool {
	return st == jobDone || st == jobFailed || st == jobCancelled
}

// saveJob persists j's current lifecycle state; reaching a terminal state
// retires the checkpoint (the record now carries the result or verdict).
func (p *jobPersister) saveJob(j *job) {
	var req *queryRequest
	if j.cq != nil {
		req = j.cq.req
	}
	rec := jobRecord{
		ID:      j.id,
		State:   string(j.state),
		Created: j.created,
		Request: req,
		Error:   j.errMsg,
		Result:  j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		rec.Started = &t
	}
	if !j.ended.IsZero() {
		t := j.ended
		rec.Ended = &t
	}
	data, err := json.Marshal(rec)
	if err != nil {
		p.logf("stablerankd: encoding job %s record: %v", j.id, err)
		return
	}
	if err := p.st.Put(store.NSJobs, j.id, data); err != nil {
		p.logf("stablerankd: persisting job %s: %v", j.id, err)
		return
	}
	if terminalJobState(j.state) {
		_ = p.st.Delete(store.NSCheckpoints, j.id)
	}
}

// forget removes a job's record and checkpoint (DELETE, TTL purge).
func (p *jobPersister) forget(id string) {
	_ = p.st.Delete(store.NSJobs, id)
	_ = p.st.Delete(store.NSCheckpoints, id)
}

// saveCheckpoint persists the rendered prefix of a running enumeration.
func (p *jobPersister) saveCheckpoint(id, datasetHash string, rows []stableResponse) {
	data, err := json.Marshal(checkpointRecord{ID: id, DatasetHash: datasetHash, Rows: rows})
	if err != nil {
		p.logf("stablerankd: encoding job %s checkpoint: %v", id, err)
		return
	}
	if err := p.st.Put(store.NSCheckpoints, id, data); err != nil {
		p.logf("stablerankd: persisting job %s checkpoint: %v", id, err)
		return
	}
	p.checkpointWrites.Add(1)
}

// loadCheckpoint returns a job's persisted progress, if intact.
func (p *jobPersister) loadCheckpoint(id string) (checkpointRecord, bool) {
	data, err := p.st.Get(store.NSCheckpoints, id)
	if err != nil {
		if !errors.Is(err, store.ErrNotFound) {
			p.logf("stablerankd: job %s checkpoint unreadable, restarting enumeration: %v", id, err)
		}
		return checkpointRecord{}, false
	}
	var rec checkpointRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		p.logf("stablerankd: job %s checkpoint malformed, restarting enumeration: %v", id, err)
		return checkpointRecord{}, false
	}
	return rec, true
}

// jobSeq extracts the numeric suffix of a job id ("j17" -> 17).
func jobSeq(id string) int64 {
	n, err := strconv.ParseInt(strings.TrimPrefix(id, "j"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// ---------------------------------------------------------------------------
// Checkpointed job execution.

// checkpointable reports whether a compiled query runs under the
// checkpointing executor: a single enumeration-shaped operation, the only
// job shape with meaningful incremental progress (deep enumerations are why
// the jobs endpoint exists). Mixed batches run atomically via execQuery.
func checkpointable(cq *compiledQuery) bool {
	if len(cq.specs) != 1 {
		return false
	}
	switch cq.specs[0].Op {
	case "toph", "above", "enumerate":
		return true
	}
	return false
}

// execJob runs one async job. Enumeration-shaped jobs stream their single
// query and checkpoint the rendered prefix every CheckpointEvery rows — plus
// once more on cancellation, so a drain-time shutdown persists the exact
// progress a restart resumes from. Results are bit-identical to execQuery's
// batch path: same analyzer, same deterministic enumeration, same rendering.
func (s *Server) execJob(ctx context.Context, j *job) (*queryResponse, error) {
	cq := j.cq
	p := s.jobs.persist
	if p == nil || s.cfg.CheckpointEvery < 0 || !checkpointable(cq) {
		return s.execQuery(ctx, cq)
	}
	ds, gen, ver, ok := s.registry.Get(cq.dataset)
	if !ok {
		return nil, errNotFound("unknown dataset %q", cq.dataset)
	}
	queries, err := cq.buildQueries(s, ds)
	if err != nil {
		return nil, err
	}
	key := analyzerKey{dataset: cq.dataset, gen: gen, ver: ver, region: cq.spec.canonical(), seed: cq.seed, samples: cq.samples, adaptive: cq.adaptive}
	a, err := s.analyzers.get(key, ds, cq.spec)
	if err != nil {
		if _, isStatus := err.(statusError); isStatus {
			return nil, err
		}
		return nil, errBadRequest("building analyzer: %v", err)
	}
	spec, q := cq.specs[0], queries[0]
	hash := fmt.Sprintf("%016x", ds.Hash())

	var rows []stableResponse
	if ck, ok := p.loadCheckpoint(j.id); ok {
		if ck.DatasetHash == hash {
			rows = ck.Rows
			p.resumes.Add(1)
			s.logf("stablerankd: job %s resuming past %d checkpointed rows", j.id, len(rows))
		} else {
			s.logf("stablerankd: job %s checkpoint is for a different dataset content, restarting enumeration", j.id)
		}
	}
	skip, seen := len(rows), 0
	for res, err := range a.Stream(ctx, q) {
		if err != nil {
			if ctx.Err() != nil {
				// Cancelled mid-enumeration (shutdown, timeout or DELETE):
				// persist the progress. A shutdown leaves the job record
				// running, so a restart resumes right here; terminal
				// transitions retire the checkpoint via saveJob.
				p.saveCheckpoint(j.id, hash, rows)
			}
			return nil, err
		}
		seen++
		if seen <= skip {
			continue // deterministic re-enumeration of the restored prefix
		}
		st := *res.Stable
		rows = append(rows, stableResponse{
			Rank:            seen,
			Stability:       st.Stability,
			Exact:           st.Exact,
			Items:           s.itemRefs(ds, st.Ranking.Order),
			Weights:         st.Weights,
			ConfidenceError: st.ConfidenceError,
		})
		if s.cfg.CheckpointEvery > 0 && len(rows)%s.cfg.CheckpointEvery == 0 {
			p.saveCheckpoint(j.id, hash, rows)
		}
	}
	out := opResult{Op: spec.Op, Rankings: rows}
	switch spec.Op {
	case "toph":
		out.H = spec.H
	case "above":
		out.Threshold = spec.S
	case "enumerate":
		out.Limit = q.(stablerank.EnumerateQuery).Limit
	}
	return &queryResponse{Dataset: cq.dataset, Results: []opResult{out}}, nil
}

// ---------------------------------------------------------------------------
// Restore at boot.

// restore reloads persisted jobs into a fresh jobStore: terminal records
// become retrievable results again (their TTL restarts from their original
// end time), unfinished ones are recompiled against the reloaded registry
// and re-enqueued to resume from their last checkpoint. Called from New,
// before the server handles requests.
func (st *jobStore) restore(s *Server) {
	p := st.persist
	entries, err := p.st.Entries(store.NSJobs)
	if err != nil {
		p.logf("stablerankd: listing persisted jobs: %v", err)
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var maxSeq int64
	for _, e := range entries {
		data, err := p.st.Get(store.NSJobs, e.Key)
		if err != nil {
			p.logf("stablerankd: job record %q unreadable, dropped: %v", e.Key, err)
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			p.logf("stablerankd: job record %q malformed, dropped: %v", e.Key, err)
			_ = p.st.Delete(store.NSJobs, e.Key)
			continue
		}
		if n := jobSeq(rec.ID); n > maxSeq {
			maxSeq = n
		}
		j := &job{
			id:      rec.ID,
			state:   jobState(rec.State),
			created: rec.Created,
			errMsg:  rec.Error,
			result:  rec.Result,
		}
		if rec.Started != nil {
			j.started = *rec.Started
		}
		if rec.Ended != nil {
			j.ended = *rec.Ended
			if st.ttl >= 0 {
				j.expires = j.ended.Add(st.ttl)
			}
		}
		switch j.state {
		case jobDone, jobFailed, jobCancelled:
			// A finished job: its result (or verdict) is served again.
		case jobQueued, jobRunning:
			j.started = time.Time{}
			j.result = nil
			j.state = jobQueued
			fail := func(msg string) {
				j.state = jobFailed
				j.errMsg = msg
				j.ended = time.Now()
				if st.ttl >= 0 {
					j.expires = j.ended.Add(st.ttl)
				}
				p.saveJob(j)
			}
			if rec.Request == nil {
				fail("job record has no request to recompile after restart")
				break
			}
			cq, err := s.compileQuery(rec.Request, s.jobLimits())
			if err != nil {
				fail(fmt.Sprintf("recompiling after restart: %v", err))
				break
			}
			j.cq = cq
		default:
			p.logf("stablerankd: job record %q has unknown state %q, dropped", rec.ID, rec.State)
			continue
		}
		st.jobs[j.id] = j
		if j.state == jobQueued {
			select {
			case st.queue <- j:
				p.restoredJobs.Add(1)
			default:
				j.state = jobFailed
				j.errMsg = "job queue full at restart"
				j.ended = time.Now()
				if st.ttl >= 0 {
					j.expires = j.ended.Add(st.ttl)
				}
				p.saveJob(j)
			}
		}
	}
	// Fresh ids must never collide with restored ones.
	for {
		cur := st.seq.Load()
		if cur >= maxSeq || st.seq.CompareAndSwap(cur, maxSeq) {
			break
		}
	}
}

// storeStats is the /statsz "store" section.
func (s *Server) storeStats() map[string]any {
	if s.store == nil {
		return map[string]any{"enabled": false}
	}
	out := map[string]any{
		"enabled":         true,
		"path":            s.cfg.DataDir,
		"bytes":           s.store.SizeBytes(),
		"max_bytes":       s.cfg.MaxStoreBytes,
		"datasets_loaded": s.datasetsLoaded,
	}
	if c := s.snapshots; c != nil {
		out["snapshots"] = map[string]any{
			"enabled":       true,
			"hits":          c.hits.Load(),
			"misses":        c.misses.Load(),
			"writes":        c.writes.Load(),
			"bytes_written": c.bytesWritten.Load(),
			"quarantined":   c.quarantined.Load(),
			"evictions":     c.evictions.Load(),
			"swept":         c.swept.Load(),
		}
	} else {
		out["snapshots"] = map[string]any{"enabled": false}
	}
	if p := s.persister; p != nil {
		out["checkpoints"] = map[string]any{
			"writes":        p.checkpointWrites.Load(),
			"resumes":       p.resumes.Load(),
			"restored_jobs": p.restoredJobs.Load(),
		}
	}
	return out
}
