package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"stablerank"
)

// statusError is an error with an HTTP status; handlers return it to pick
// the response code without the router knowing endpoint specifics.
type statusError struct {
	code int
	msg  string
}

func (e statusError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) error {
	return statusError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func errNotFound(format string, args ...any) error {
	return statusError{code: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// statusClientClosedRequest is nginx's conventional code for a request whose
// client went away before the response; kept distinct from 504 so timeout
// dashboards are not polluted by client hang-ups.
const statusClientClosedRequest = 499

// statusOf maps an error to its HTTP status code: explicit statusErrors keep
// their code, a fired per-request deadline becomes 504, a client-initiated
// cancellation becomes 499, infeasible rankings become 422, everything else
// is a 500.
func statusOf(err error) int {
	var se statusError
	switch {
	case errors.As(err, &se):
		return se.code
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, stablerank.ErrInfeasibleRanking):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// statusWriter records the status code written to the wrapped ResponseWriter
// for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer so the NDJSON streaming endpoint can
// push each line to the client as it is produced; without this promotion
// the middleware wrapper would hide the underlying http.Flusher.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController users.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// wrap applies the service middleware stack to next: panic recovery, the
// per-request timeout (wired into the request context, which the facade
// plumbs into its sampling loops), an in-flight request gauge, and request
// logging.
func (s *Server) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		s.inflightRequests.Add(1)
		defer s.inflightRequests.Add(-1)
		defer func() {
			if rec := recover(); rec != nil {
				if sw.status == 0 {
					writeError(sw, fmt.Errorf("internal panic: %v", rec))
				}
				s.logf("panic %s %s: %v", r.Method, r.URL.Path, rec)
				return
			}
			s.logf("%s %s -> %d (%s)", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
		}()
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(sw, r)
	})
}
