package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"stablerank"
)

// JSON response shapes. Item references are rendered as IDs (with their
// dataset index alongside) so responses stay meaningful when clients never
// saw the CSV row order.

type itemRef struct {
	Index int    `json:"index"`
	ID    string `json:"id"`
}

type verifyResponse struct {
	Dataset         string    `json:"dataset"`
	Ranking         []itemRef `json:"ranking"`
	Stability       float64   `json:"stability"`
	ConfidenceError float64   `json:"confidence_error"`
	Exact           bool      `json:"exact"`
	SampleCount     int       `json:"sample_count,omitempty"`
}

type stableResponse struct {
	Rank            int       `json:"rank"`
	Stability       float64   `json:"stability"`
	Exact           bool      `json:"exact"`
	Items           []itemRef `json:"items"`
	Weights         []float64 `json:"weights,omitempty"`
	ConfidenceError float64   `json:"confidence_error,omitempty"`
}

type topHResponse struct {
	Dataset  string           `json:"dataset"`
	H        int              `json:"h"`
	Rankings []stableResponse `json:"rankings"`
}

type aboveResponse struct {
	Dataset   string           `json:"dataset"`
	Threshold float64          `json:"threshold"`
	Rankings  []stableResponse `json:"rankings"`
}

type rankingsResponse struct {
	Dataset string           `json:"dataset"`
	Page    int              `json:"page"`
	PerPage int              `json:"per_page"`
	HasMore bool             `json:"has_more"`
	Results []stableResponse `json:"results"`
}

type itemRankResponse struct {
	Dataset        string         `json:"dataset"`
	Item           itemRef        `json:"item"`
	Samples        int            `json:"samples"`
	Best           int            `json:"best"`
	Worst          int            `json:"worst"`
	Mode           int            `json:"mode"`
	Median         int            `json:"median"`
	Counts         map[string]int `json:"counts"`
	ProbabilityTop map[string]any `json:"probability_top,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusOf(err), errorResponse{Error: err.Error()})
}

// routes wires every endpoint into a fresh mux.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /datasets", s.handleListDatasets)
	mux.HandleFunc("POST /datasets/{name}", s.handleAddDataset)
	mux.HandleFunc("PATCH /datasets/{name}", s.handlePatchDataset)
	mux.HandleFunc("PATCH /v1/datasets/{name}", s.handlePatchDataset)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/query/stream", s.handleQueryStream)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDeleteJob)
	// GET /v1/jobs/{id} and GET /v1/{dataset}/{op} cannot coexist as
	// ServeMux patterns (neither is more specific), so all two-segment /v1
	// GETs share one dispatcher; "jobs" is therefore a reserved dataset name.
	mux.HandleFunc("GET /v1/{dataset}/{op}", s.handleV1Get)
	mux.HandleFunc("POST /batch", s.handleBatch)
	// The chunk-fill protocol (ping + fill): every node serves fills, so
	// replicas can be configured as each other's fill workers.
	mux.Handle("/cluster/v1/", s.fillWorker.Handler())
	return mux
}

// handleV1Get dispatches GET /v1/{dataset}/{op} between the job-status
// endpoint (dataset == "jobs") and the per-dataset query endpoints.
func (s *Server) handleV1Get(w http.ResponseWriter, r *http.Request) {
	name, op := r.PathValue("dataset"), r.PathValue("op")
	if name == "jobs" {
		s.handleGetJob(w, r, op)
		return
	}
	if op == "drift" {
		s.handleDrift(w, r, name)
		return
	}
	var h queryHandler
	switch op {
	case "verify":
		h = s.handleVerify
	case "toph":
		h = s.handleTopH
	case "above":
		h = s.handleAbove
	case "itemrank":
		h = s.handleItemRank
	case "rankings":
		h = s.handleRankings
	default:
		writeError(w, errNotFound("unknown endpoint /v1/%s/%s", name, op))
		return
	}
	s.serveQuery(w, r, name, h)
}

// queryContext is everything a query handler needs: the resolved dataset,
// the shared analyzer for the request's (dataset, region, seed, samples)
// key, and the canonical cache-key prefix identifying that tuple.
type queryContext struct {
	name     string
	ds       *stablerank.Dataset
	analyzer *stablerank.Analyzer
	keybase  string
}

// queryHandler parses endpoint-specific parameters and returns the canonical
// cache key of the query plus a closure computing the response. The closure
// only runs on a cache miss.
type queryHandler func(r *http.Request, qc *queryContext) (key string, compute func() (any, error), err error)

// serveQuery runs a queryHandler for the named dataset: it parses the
// shared region/seed/samples parameters, obtains the deduplicated analyzer,
// and serves the handler's answer from the LRU cache when an identical
// query was answered before.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, name string, h queryHandler) {
	qp, err := s.parseQueryParams(r, name)
	if err != nil {
		writeError(w, err)
		return
	}
	// In a cluster, hand the request to the analyzer key's owner so every
	// replica holds a disjoint slice of the analyzers (and their pools). A
	// failed hop falls through to local serving: any node can answer any
	// key bit-identically, so the fallback is invisible to the client.
	if s.cluster != nil {
		if owner, remote := s.cluster.owner(r, routingKey(qp.name, qp.spec, qp.seed, qp.samples, 0)); remote {
			if s.proxy(w, r, owner, nil) {
				return
			}
		}
	}
	s.markServedLocally(w)
	qc, err := s.queryContextFor(qp)
	if err != nil {
		writeError(w, err)
		return
	}
	key, compute, err := h(r, qc)
	if err != nil {
		writeError(w, err)
		return
	}
	if body, ok := s.cache.get(key); ok {
		serveBody(w, body, "hit")
		return
	}
	resp, err := compute()
	if err != nil {
		writeError(w, err)
		return
	}
	body, err := json.Marshal(resp)
	if err != nil {
		writeError(w, err)
		return
	}
	s.cache.put(key, body)
	serveBody(w, body, "miss")
}

func serveBody(w http.ResponseWriter, body []byte, cache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	_, _ = w.Write(body)
	_, _ = w.Write([]byte("\n"))
}

// queryParams is the parsed shared query parameters of one GET request —
// everything cluster routing and analyzer construction need, parsed cheaply
// enough to run BEFORE deciding which replica serves the request.
type queryParams struct {
	name    string
	ds      *stablerank.Dataset
	gen     int64
	ver     int64
	spec    regionSpec
	seed    int64
	samples int
}

// parseQueryParams resolves the named dataset and the shared query
// parameters; the per-dataset endpoints supply the name from the path, the
// stream endpoint from ?dataset=. It is also the earliest point at which an
// already-expired per-request deadline surfaces as a 504 instead of burning
// analyzer work.
func (s *Server) parseQueryParams(r *http.Request, name string) (*queryParams, error) {
	if err := r.Context().Err(); err != nil {
		return nil, err
	}
	ds, gen, ver, ok := s.registry.Get(name)
	if !ok {
		return nil, errNotFound("unknown dataset %q", name)
	}
	q := r.URL.Query()
	spec := regionSpec{}
	if wstr := q.Get("weights"); wstr != "" {
		w, err := parseWeights(wstr, ds.D())
		if err != nil {
			return nil, err
		}
		spec.weights = w
	}
	var err error
	if spec.theta, err = floatParam(q.Get("theta"), 0); err != nil {
		return nil, errBadRequest("bad theta: %v", err)
	}
	if spec.cosine, err = floatParam(q.Get("cosine"), 0); err != nil {
		return nil, errBadRequest("bad cosine: %v", err)
	}
	if err := spec.validate(ds.D(), q.Get("theta") != "", q.Get("cosine") != ""); err != nil {
		return nil, err
	}
	seed, err := intParam(q.Get("seed"), s.cfg.DefaultSeed)
	if err != nil {
		return nil, errBadRequest("bad seed: %v", err)
	}
	samples, err := intParam(q.Get("samples"), int64(s.cfg.DefaultSampleCount))
	if err != nil {
		return nil, errBadRequest("bad samples: %v", err)
	}
	if samples < 1 || samples > int64(s.cfg.MaxSampleCount) {
		return nil, errBadRequest("samples %d out of range [1, %d]", samples, s.cfg.MaxSampleCount)
	}
	return &queryParams{name: name, ds: ds, gen: gen, ver: ver, spec: spec, seed: seed, samples: int(samples)}, nil
}

// queryContextFor obtains the deduplicated analyzer for parsed parameters.
func (s *Server) queryContextFor(qp *queryParams) (*queryContext, error) {
	key := analyzerKey{dataset: qp.name, gen: qp.gen, ver: qp.ver, region: qp.spec.canonical(), seed: qp.seed, samples: qp.samples}
	a, err := s.analyzers.get(key, qp.ds, qp.spec)
	if err != nil {
		if _, isStatus := err.(statusError); isStatus {
			return nil, err
		}
		return nil, errBadRequest("building analyzer: %v", err)
	}
	return &queryContext{name: qp.name, ds: qp.ds, analyzer: a, keybase: key.String()}, nil
}

// queryContextNamed is parseQueryParams + queryContextFor in one step, for
// callers that never route (the stream endpoint is node-local).
func (s *Server) queryContextNamed(r *http.Request, name string) (*queryContext, error) {
	qp, err := s.parseQueryParams(r, name)
	if err != nil {
		return nil, err
	}
	return s.queryContextFor(qp)
}

func (s *Server) handleVerify(r *http.Request, qc *queryContext) (string, func() (any, error), error) {
	q := r.URL.Query()
	wstr, rstr := q.Get("weights"), q.Get("ranking")
	var ranking stablerank.Ranking
	switch {
	case rstr != "":
		// A published ranking to verify, as comma-separated item IDs (the
		// consumer form of Problem 1: the ranking need not be achievable in
		// the region at all).
		var err error
		ranking, err = parseRanking(rstr, qc.ds)
		if err != nil {
			return "", nil, err
		}
	case wstr != "":
		w, err := parseWeights(wstr, qc.ds.D())
		if err != nil {
			return "", nil, err
		}
		ranking = stablerank.RankingOf(qc.ds, w)
	default:
		return "", nil, errBadRequest("verify requires weights or ranking")
	}
	key := qc.keybase + "|verify|" + wstr + "|" + rstr
	return key, func() (any, error) {
		v, err := qc.analyzer.VerifyStability(r.Context(), ranking)
		if err != nil {
			return nil, err
		}
		resp := verifyResponse{
			Dataset:         qc.name,
			Ranking:         s.itemRefs(qc.ds, ranking.Order),
			Stability:       v.Stability,
			ConfidenceError: v.ConfidenceError,
			Exact:           v.Exact,
		}
		if !v.Exact {
			resp.SampleCount = qc.analyzer.SampleCount()
		}
		return resp, nil
	}, nil
}

func (s *Server) handleTopH(r *http.Request, qc *queryContext) (string, func() (any, error), error) {
	h, err := intParam(r.URL.Query().Get("h"), 10)
	if err != nil || h < 1 || h > int64(s.cfg.MaxEnumerate) {
		return "", nil, errBadRequest("h must be in [1, %d]", s.cfg.MaxEnumerate)
	}
	key := fmt.Sprintf("%s|toph|%d", qc.keybase, h)
	return key, func() (any, error) {
		stables, err := qc.analyzer.TopH(r.Context(), int(h))
		if err != nil {
			return nil, err
		}
		return topHResponse{Dataset: qc.name, H: int(h), Rankings: s.stableResponses(qc.ds, stables, 0)}, nil
	}, nil
}

func (s *Server) handleAbove(r *http.Request, qc *queryContext) (string, func() (any, error), error) {
	threshold, err := floatParam(r.URL.Query().Get("s"), -1)
	if err != nil || threshold <= 0 || threshold > 1 {
		return "", nil, errBadRequest("s must be in (0, 1]")
	}
	key := fmt.Sprintf("%s|above|%g", qc.keybase, threshold)
	return key, func() (any, error) {
		stables, err := qc.analyzer.AboveThreshold(r.Context(), threshold)
		if err != nil {
			return nil, err
		}
		return aboveResponse{Dataset: qc.name, Threshold: threshold, Rankings: s.stableResponses(qc.ds, stables, 0)}, nil
	}, nil
}

func (s *Server) handleRankings(r *http.Request, qc *queryContext) (string, func() (any, error), error) {
	q := r.URL.Query()
	page, err := intParam(q.Get("page"), 0)
	if err != nil || page < 0 {
		return "", nil, errBadRequest("page must be >= 0")
	}
	perPage, err := intParam(q.Get("per_page"), 10)
	if err != nil || perPage < 1 || perPage > int64(s.cfg.MaxEnumerate) {
		return "", nil, errBadRequest("per_page must be in [1, %d]", s.cfg.MaxEnumerate)
	}
	// Bound page before multiplying so a huge page value cannot overflow
	// int64 and slip past the enumeration cap.
	if page > int64(s.cfg.MaxEnumerate) {
		return "", nil, errBadRequest("page*per_page exceeds the enumeration cap %d", s.cfg.MaxEnumerate)
	}
	want := (page + 1) * perPage
	if want > int64(s.cfg.MaxEnumerate) {
		return "", nil, errBadRequest("page*per_page exceeds the enumeration cap %d", s.cfg.MaxEnumerate)
	}
	key := fmt.Sprintf("%s|rankings|%d|%d", qc.keybase, page, perPage)
	return key, func() (any, error) {
		// Enumerate one past the page so has_more is exact even when the page
		// is full and the enumeration is exhausted right behind it.
		stables, err := qc.analyzer.TopH(r.Context(), int(want)+1)
		if err != nil {
			return nil, err
		}
		// The enumeration just produced every earlier page as a by-product;
		// cache them all so a client walking backwards (or re-reading) never
		// re-runs the prefix.
		for p := int64(0); p < page; p++ {
			resp := s.rankingsPage(qc, stables, p, perPage)
			if body, err := json.Marshal(resp); err == nil {
				s.cache.put(fmt.Sprintf("%s|rankings|%d|%d", qc.keybase, p, perPage), body)
			}
		}
		return s.rankingsPage(qc, stables, page, perPage), nil
	}, nil
}

// rankingsPage slices page p (per_page entries) out of an enumerated prefix
// that extends at least one entry past the page or to exhaustion.
func (s *Server) rankingsPage(qc *queryContext, stables []stablerank.Stable, p, perPage int64) rankingsResponse {
	start := int(p * perPage)
	resp := rankingsResponse{Dataset: qc.name, Page: int(p), PerPage: int(perPage), Results: []stableResponse{}}
	if start < len(stables) {
		end := min(start+int(perPage), len(stables))
		resp.Results = s.stableResponses(qc.ds, stables[start:end], start)
		resp.HasMore = len(stables) > end && int64(end) == (p+1)*perPage
	}
	return resp
}

func (s *Server) handleItemRank(r *http.Request, qc *queryContext) (string, func() (any, error), error) {
	q := r.URL.Query()
	itemID := q.Get("item")
	if itemID == "" {
		return "", nil, errBadRequest("itemrank requires item (an item id)")
	}
	n, err := intParam(q.Get("n"), 10_000)
	if err != nil || n < 1 || n > int64(s.cfg.MaxSampleCount) {
		return "", nil, errBadRequest("n must be in [1, %d]", s.cfg.MaxSampleCount)
	}
	k, err := intParam(q.Get("k"), 0)
	if err != nil || k < 0 {
		return "", nil, errBadRequest("k must be >= 0")
	}
	key := fmt.Sprintf("%s|itemrank|%s|%d|%d", qc.keybase, itemID, n, k)
	return key, func() (any, error) {
		// Resolved inside the compute closure so cache hits skip the O(N)
		// catalog scan; unknown-item errors are never cached.
		idx, ok := itemIndex(qc.ds, itemID)
		if !ok {
			return nil, errNotFound("item %q not in dataset %q", itemID, qc.name)
		}
		dist, err := qc.analyzer.ItemRankDistribution(r.Context(), idx, int(n))
		if err != nil {
			return nil, err
		}
		counts := make(map[string]int, len(dist.Counts))
		for rnk, c := range dist.Counts { //srlint:ordered map-to-map rekey; json.Marshal renders object keys sorted
			counts[strconv.Itoa(rnk)] = c
		}
		resp := itemRankResponse{
			Dataset: qc.name,
			Item:    itemRef{Index: idx, ID: itemID},
			Samples: dist.Samples,
			Best:    dist.Best,
			Worst:   dist.Worst,
			Mode:    dist.Mode(),
			Median:  dist.Quantile(0.5),
			Counts:  counts,
		}
		if k > 0 {
			resp.ProbabilityTop = map[string]any{
				"k":           k,
				"probability": dist.ProbabilityTopK(int(k)),
			}
		}
		return resp, nil
	}, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"status":   "ok",
		"datasets": s.registry.Len(),
		"uptime":   s.now().Sub(s.start).Round(time.Millisecond).String(),
	}
	// scope=local answers for this node only; it is also what peer probes
	// request, so probes never fan out transitively.
	if s.cluster != nil && r.URL.Query().Get("scope") != "local" {
		peers := s.probePeers(r.Context())
		for _, p := range peers {
			if p.Status == "unreachable" {
				resp["status"] = "degraded"
				break
			}
		}
		resp["cluster"] = map[string]any{"self": s.cluster.self, "peers": peers}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.cache.stats()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	analyzers, builds, dedupHits, inflight, evictions := s.analyzers.snapshot()
	var poolBytes int64
	for _, a := range analyzers {
		poolBytes += a.PoolBytes
	}
	jobs := s.jobs.counts()
	resp := map[string]any{
		"cache": map[string]any{
			"hits":     hits,
			"misses":   misses,
			"size":     size,
			"capacity": s.cfg.CacheSize,
			"hit_rate": hitRate,
		},
		"analyzers": map[string]any{
			"resident":         analyzers,
			"capacity":         s.cfg.MaxAnalyzers,
			"builds":           builds,
			"dedup_hits":       dedupHits,
			"inflight_builds":  inflight,
			"evictions":        evictions,
			"pool_bytes_total": poolBytes,
		},
		"jobs": map[string]any{
			"workers":        s.cfg.JobWorkers,
			"queue_capacity": s.cfg.JobQueueSize,
			"queued":         jobs.queued,
			"active":         jobs.running,
			"resident":       jobs.resident,
			"completed":      jobs.completed,
			"failed":         jobs.failed,
			"cancelled":      jobs.stopped,
		},
		"store":             s.storeStats(),
		"deltas":            s.deltaStats(),
		"streamed_rows":     s.streamedRows.Load(),
		"inflight_requests": s.inflightRequests.Load(),
		"workers":           s.workerCount(),
		"datasets":          s.registry.Names(),
	}
	// The chunk-fill counters: every node serves fills, coordinators also
	// delegate their own builds.
	fill := map[string]any{"worker": s.fillWorker.Stats()}
	if s.coordinator != nil {
		fill["coordinator"] = s.coordinator.Stats()
	}
	resp["fill"] = fill
	// The cluster-wide section fans out to every peer's local stats.
	// ?scope=local suppresses it — which is exactly how the fan-out itself
	// asks, so two clustered nodes never recurse into each other.
	if s.cluster != nil && r.URL.Query().Get("scope") != "local" {
		resp["cluster"] = s.clusterStats(r.Context())
	}
	writeJSON(w, http.StatusOK, resp)
}

// workerCount resolves the configured per-analyzer worker count for display:
// 0 means "all cores", reported as the actual GOMAXPROCS value.
func (s *Server) workerCount() int {
	if s.cfg.Workers > 0 {
		return s.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	type dsInfo struct {
		Name string `json:"name"`
		N    int    `json:"n"`
		D    int    `json:"d"`
	}
	names := s.registry.Names()
	infos := make([]dsInfo, 0, len(names))
	for _, n := range names {
		if ds, _, _, ok := s.registry.Get(n); ok {
			infos = append(infos, dsInfo{Name: n, N: ds.N(), D: ds.D()})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": infos})
}

func (s *Server) handleAddDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	hasHeader := true
	if h := r.URL.Query().Get("header"); h != "" {
		v, err := strconv.ParseBool(h)
		if err != nil {
			writeError(w, errBadRequest("bad header: %v", err))
			return
		}
		hasHeader = v
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	if err := s.registry.AddCSV(name, body, hasHeader); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, statusError{
				code: http.StatusRequestEntityTooLarge,
				msg:  fmt.Sprintf("dataset exceeds the %d-byte upload limit", s.cfg.MaxUploadBytes),
			})
			return
		}
		writeError(w, errBadRequest("loading dataset: %v", err))
		return
	}
	ds, _, _, _ := s.registry.Get(name)
	writeJSON(w, http.StatusCreated, map[string]any{"name": name, "n": ds.N(), "d": ds.D()})
}

// Helpers.

func (s *Server) itemRefs(ds *stablerank.Dataset, order []int) []itemRef {
	limit := min(len(order), s.cfg.MaxRankingItems)
	refs := make([]itemRef, limit)
	for i := 0; i < limit; i++ {
		refs[i] = itemRef{Index: order[i], ID: ds.Item(order[i]).ID}
	}
	return refs
}

func (s *Server) stableResponses(ds *stablerank.Dataset, stables []stablerank.Stable, rankOffset int) []stableResponse {
	out := make([]stableResponse, len(stables))
	for i, st := range stables {
		out[i] = stableResponse{
			Rank:            rankOffset + i + 1,
			Stability:       st.Stability,
			Exact:           st.Exact,
			Items:           s.itemRefs(ds, st.Ranking.Order),
			Weights:         st.Weights,
			ConfidenceError: st.ConfidenceError,
		}
	}
	return out
}

// parseRanking parses comma-separated item IDs into a full ranking of ds.
func parseRanking(s string, ds *stablerank.Dataset) (stablerank.Ranking, error) {
	ids := strings.Split(s, ",")
	if len(ids) != ds.N() {
		return stablerank.Ranking{}, errBadRequest("ranking has %d items, dataset has %d", len(ids), ds.N())
	}
	index := make(map[string]int, ds.N())
	for i := 0; i < ds.N(); i++ {
		index[ds.Item(i).ID] = i
	}
	order := make([]int, len(ids))
	seen := make(map[int]bool, len(ids))
	for i, id := range ids {
		id = strings.TrimSpace(id)
		idx, ok := index[id]
		if !ok {
			return stablerank.Ranking{}, errBadRequest("ranking item %q not in dataset", id)
		}
		if seen[idx] {
			return stablerank.Ranking{}, errBadRequest("ranking repeats item %q", id)
		}
		seen[idx] = true
		order[i] = idx
	}
	return stablerank.Ranking{Order: order}, nil
}

func parseWeights(s string, d int) ([]float64, error) {
	w, err := stablerank.ParseWeights(s, d)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	return w, nil
}

func floatParam(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseFloat(s, 64)
}

func intParam(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseInt(s, 10, 64)
}
