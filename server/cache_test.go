package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", []byte("1"))
	c.put("b", []byte("2"))
	if v, ok := c.get("a"); !ok || string(v) != "1" {
		t.Fatalf("get a = %q, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.put("c", []byte("3"))
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a was evicted despite being recently used")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing")
	}
	hits, misses, size := c.stats()
	if size != 2 {
		t.Errorf("size = %d, want 2", size)
	}
	if hits != 3 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 3/1", hits, misses)
	}
}

func TestLRUCacheRefresh(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", []byte("1"))
	c.put("a", []byte("1'"))
	if v, _ := c.get("a"); string(v) != "1'" {
		t.Errorf("refresh kept old value %q", v)
	}
	_, _, size := c.stats()
	if size != 1 {
		t.Errorf("size = %d after double put, want 1", size)
	}
}

func TestLRUCacheDisabled(t *testing.T) {
	c := newLRUCache(0)
	c.put("a", []byte("1"))
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache returned a value")
	}
}

func TestLRUCacheConcurrent(t *testing.T) {
	c := newLRUCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%24)
				c.put(key, []byte(key))
				if v, ok := c.get(key); ok && string(v) != key {
					t.Errorf("key %s holds %q", key, v)
				}
			}
		}(g)
	}
	wg.Wait()
	if _, _, size := c.stats(); size > 16 {
		t.Errorf("size %d exceeds capacity", size)
	}
}
