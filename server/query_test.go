package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// postJSON posts body to path and decodes the JSON response into v (when
// non-nil), returning status and headers.
func postJSON(t *testing.T, ts string, path, body string, v any) (int, http.Header) {
	t.Helper()
	resp, err := http.Post(ts+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(buf.Bytes(), v); err != nil {
			t.Fatalf("POST %s: bad JSON (%v):\n%s", path, err, buf.String())
		}
	}
	return resp.StatusCode, resp.Header
}

// TestQueryHeterogeneous drives one POST /v1/query mixing all six operation
// kinds against the 3D dataset and checks each payload.
func TestQueryHeterogeneous(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := `{
		"dataset": "ind3",
		"samples": 5000,
		"queries": [
			{"op": "verify", "weights": [1, 1, 1]},
			{"op": "toph", "h": 3},
			{"op": "above", "s": 0.05},
			{"op": "itemrank", "item": "i1", "n": 2000, "k": 3},
			{"op": "boundary", "weights": [1, 1, 1]},
			{"op": "enumerate", "limit": 5}
		]
	}`
	var got queryResponse
	code, _ := postJSON(t, ts.URL, "/v1/query", body, &got)
	if code != http.StatusOK {
		t.Fatalf("query = %d: %+v", code, got)
	}
	if got.Dataset != "ind3" || len(got.Results) != 6 {
		t.Fatalf("response = %+v", got)
	}
	for i, r := range got.Results {
		if r.Error != "" {
			t.Fatalf("results[%d] (%s) errored: %s", i, r.Op, r.Error)
		}
	}
	v := got.Results[0]
	if v.Op != "verify" || v.Stability == nil || *v.Stability <= 0 || *v.Stability > 1 || v.Exact == nil || *v.Exact {
		t.Errorf("verify result = %+v", v)
	}
	if v.SampleCount != 5000 || v.ConfidenceError == nil || *v.ConfidenceError <= 0 {
		t.Errorf("verify MC metadata = %+v", v)
	}
	if n := len(got.Results[1].Rankings); n != 3 || got.Results[1].H != 3 {
		t.Errorf("toph returned %d rankings", n)
	}
	for i, r := range got.Results[2].Rankings {
		if r.Stability < 0.05 {
			t.Errorf("above[%d] stability %v below threshold", i, r.Stability)
		}
	}
	ir := got.Results[3]
	if ir.Samples != 2000 || ir.Best < 1 || ir.Item == nil || ir.Item.ID != "i1" || ir.ProbabilityTop == nil {
		t.Errorf("itemrank result = %+v", ir)
	}
	if len(got.Results[4].Facets) == 0 {
		t.Error("boundary returned no facets")
	}
	if n := len(got.Results[5].Rankings); n == 0 || n > 5 {
		t.Errorf("enumerate returned %d rankings", n)
	}
	// The whole list shares one cursor: toph must be a prefix of enumerate.
	for i := range got.Results[1].Rankings {
		if got.Results[1].Rankings[i].Stability != got.Results[5].Rankings[i].Stability {
			t.Errorf("toph[%d] diverges from the shared enumeration", i)
		}
	}
}

// TestQueryPerOpError checks one failing operation doesn't fail the batch.
func TestQueryPerOpError(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// t1..t5 reversed: t1 is dominated, so this explicit ranking is
	// infeasible while the weights-induced one succeeds.
	body := `{
		"dataset": "fig1",
		"queries": [
			{"op": "verify", "ranking": "t1,t5,t3,t4,t2"},
			{"op": "verify", "weights": [1, 1]}
		]
	}`
	var got queryResponse
	code, _ := postJSON(t, ts.URL, "/v1/query", body, &got)
	if code != http.StatusOK {
		t.Fatalf("query = %d", code)
	}
	if got.Results[0].Error == "" {
		t.Error("infeasible ranking should carry a per-op error")
	}
	if got.Results[1].Error != "" || got.Results[1].Stability == nil {
		t.Errorf("good op alongside a failing one: %+v", got.Results[1])
	}
}

// TestQueryValidation covers the request-level failure modes, including the
// 413 operation cap.
func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBatchOps = 3 })
	cases := []struct {
		name, body string
		want       int
	}{
		{"unknown dataset", `{"dataset":"nope","queries":[{"op":"toph","h":1}]}`, http.StatusNotFound},
		{"no queries", `{"dataset":"fig1","queries":[]}`, http.StatusBadRequest},
		{"unknown op", `{"dataset":"fig1","queries":[{"op":"wat"}]}`, http.StatusBadRequest},
		{"bad h", `{"dataset":"fig1","queries":[{"op":"toph","h":0}]}`, http.StatusBadRequest},
		{"bad s", `{"dataset":"fig1","queries":[{"op":"above","s":2}]}`, http.StatusBadRequest},
		{"verify needs target", `{"dataset":"fig1","queries":[{"op":"verify"}]}`, http.StatusBadRequest},
		{"verify both targets", `{"dataset":"fig1","queries":[{"op":"verify","weights":[1,1],"ranking":"t1,t2,t3,t4,t5"}]}`, http.StatusBadRequest},
		{"unknown item", `{"dataset":"fig1","queries":[{"op":"itemrank","item":"zz"}]}`, http.StatusBadRequest},
		{"open enumerate", `{"dataset":"fig1","queries":[{"op":"enumerate"}]}`, http.StatusBadRequest},
		{"bad region", `{"dataset":"fig1","theta":9,"queries":[{"op":"toph","h":1}]}`, http.StatusBadRequest},
		{"ops over cap", `{"dataset":"fig1","queries":[{"op":"toph","h":1},{"op":"toph","h":1},{"op":"toph","h":1},{"op":"toph","h":1}]}`, http.StatusRequestEntityTooLarge},
		{"trailing data", `{"dataset":"fig1","queries":[{"op":"toph","h":1}]} garbage`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _ := postJSON(t, ts.URL, "/v1/query", tc.body, nil)
			if code != tc.want {
				t.Errorf("%s: code = %d, want %d", tc.name, code, tc.want)
			}
		})
	}
}

// TestBatchDeprecatedEquivalence pins the migration contract: POST /batch
// answers with a Deprecation header, and its verify/toph numbers are
// identical to the same operations through POST /v1/query.
func TestBatchDeprecatedEquivalence(t *testing.T) {
	_, ts := newTestServer(t, nil)
	batchBody := `{
		"dataset": "ind3",
		"samples": 5000,
		"verify": [{"weights": [1, 1, 1]}, {"weights": [3, 1, 1]}],
		"toph": [4]
	}`
	var old struct {
		Verify []struct {
			Stability       float64 `json:"stability"`
			ConfidenceError float64 `json:"confidence_error"`
		} `json:"verify"`
		TopH []struct {
			Rankings []stableResponse `json:"rankings"`
		} `json:"toph"`
	}
	code, hdr := postJSON(t, ts.URL, "/batch", batchBody, &old)
	if code != http.StatusOK {
		t.Fatalf("batch = %d", code)
	}
	if hdr.Get("Deprecation") != "true" {
		t.Error("batch response missing Deprecation header")
	}
	if link := hdr.Get("Link"); !strings.Contains(link, "/v1/query") {
		t.Errorf("batch Link header = %q, want successor /v1/query", link)
	}

	queryBody := `{
		"dataset": "ind3",
		"samples": 5000,
		"queries": [
			{"op": "verify", "weights": [1, 1, 1]},
			{"op": "verify", "weights": [3, 1, 1]},
			{"op": "toph", "h": 4}
		]
	}`
	var neu queryResponse
	code, _ = postJSON(t, ts.URL, "/v1/query", queryBody, &neu)
	if code != http.StatusOK {
		t.Fatalf("query = %d", code)
	}
	for i := 0; i < 2; i++ {
		if got := *neu.Results[i].Stability; got != old.Verify[i].Stability {
			t.Errorf("verify[%d]: /v1/query %v != /batch %v", i, got, old.Verify[i].Stability)
		}
		if got := *neu.Results[i].ConfidenceError; got != old.Verify[i].ConfidenceError {
			t.Errorf("verify[%d] confidence: /v1/query %v != /batch %v", i, got, old.Verify[i].ConfidenceError)
		}
	}
	oldTop, newTop := old.TopH[0].Rankings, neu.Results[2].Rankings
	if len(oldTop) != len(newTop) {
		t.Fatalf("toph lengths: /batch %d, /v1/query %d", len(oldTop), len(newTop))
	}
	for i := range oldTop {
		if oldTop[i].Stability != newTop[i].Stability {
			t.Errorf("toph[%d]: /v1/query %v != /batch %v", i, newTop[i].Stability, oldTop[i].Stability)
		}
	}
}

// TestQueryConcurrent hammers POST /v1/query from many goroutines sharing
// one analyzer key; meaningful under -race, and the pool must build once.
func TestQueryConcurrent(t *testing.T) {
	s, ts := newTestServer(t, nil)
	body := `{"dataset":"ind3","samples":3000,"queries":[{"op":"verify","weights":[1,1,1]},{"op":"toph","h":2}]}`
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats, builds, _, _, _ := s.analyzers.snapshot()
	if builds != 1 {
		t.Errorf("%d analyzer builds for identical concurrent queries, want 1", builds)
	}
	for _, st := range stats {
		if st.PoolBuilds != 1 {
			t.Errorf("analyzer %s built its pool %d times", st.Key, st.PoolBuilds)
		}
	}
}

// TestQueryAdaptive drives adaptive verification through POST /v1/query: an
// adaptive request stops early (sample_count < samples, adaptive true) while
// staying keyed apart from the exact analyzer, the parameter is validated,
// and /statsz reports the early stops.
func TestQueryAdaptive(t *testing.T) {
	s, ts := newTestServer(t, nil)
	adaptiveBody := `{"dataset":"ind3","samples":20000,"adaptive":0.02,"queries":[{"op":"verify","weights":[1,1,1]}]}`
	exactBody := `{"dataset":"ind3","samples":20000,"queries":[{"op":"verify","weights":[1,1,1]}]}`

	var adaptive, exact queryResponse
	if code, _ := postJSON(t, ts.URL, "/v1/query", adaptiveBody, &adaptive); code != http.StatusOK {
		t.Fatalf("adaptive query = %d: %+v", code, adaptive)
	}
	if code, _ := postJSON(t, ts.URL, "/v1/query", exactBody, &exact); code != http.StatusOK {
		t.Fatalf("exact query = %d", code)
	}
	av, ev := adaptive.Results[0], exact.Results[0]
	if av.Error != "" || ev.Error != "" {
		t.Fatalf("verify errored: %q / %q", av.Error, ev.Error)
	}
	if !av.Adaptive || av.SampleCount >= 20000 || av.SampleCount < 1 {
		t.Errorf("adaptive verify = adaptive=%v sample_count=%d, want early stop", av.Adaptive, av.SampleCount)
	}
	if *av.ConfidenceError > 0.02 {
		t.Errorf("adaptive confidence error %v above the 0.02 target", *av.ConfidenceError)
	}
	if ev.Adaptive || ev.SampleCount != 20000 {
		t.Errorf("exact verify = adaptive=%v sample_count=%d", ev.Adaptive, ev.SampleCount)
	}
	// Same seed and pool: the adaptive estimate is the prefix estimate, close
	// to (but in general not equal to) the full-pool one.
	if diff := *av.Stability - *ev.Stability; diff > 0.05 || diff < -0.05 {
		t.Errorf("adaptive stability %v far from exact %v", *av.Stability, *ev.Stability)
	}

	// Adaptive and exact requests must not share an analyzer key.
	stats, builds, _, _, _ := s.analyzers.snapshot()
	if builds != 2 {
		t.Errorf("adaptive + exact requests made %d analyzer builds, want 2", builds)
	}
	sawAdaptive := false
	for _, st := range stats {
		if st.AdaptiveTarget == 0.02 {
			sawAdaptive = true
			if !strings.Contains(st.Key, "adaptive=0.02") {
				t.Errorf("adaptive analyzer key %q lacks the adaptive term", st.Key)
			}
			if st.AdaptiveStops < 1 || st.AdaptiveRowsSaved < 1 {
				t.Errorf("adaptive analyzer stats = stops %d, rows saved %d", st.AdaptiveStops, st.AdaptiveRowsSaved)
			}
		}
	}
	if !sawAdaptive {
		t.Error("no resident analyzer reports the adaptive target")
	}

	// /statsz surfaces the same counters.
	var statsz struct {
		Analyzers struct {
			Resident []analyzerStat `json:"resident"`
		} `json:"analyzers"`
	}
	if code, _ := get(t, ts, "/statsz", &statsz); code != http.StatusOK {
		t.Fatalf("statsz = %d", code)
	}
	sawAdaptive = false
	for _, st := range statsz.Analyzers.Resident {
		if st.AdaptiveTarget == 0.02 && st.AdaptiveStops >= 1 {
			sawAdaptive = true
		}
	}
	if !sawAdaptive {
		t.Error("/statsz does not report the adaptive analyzer's early stops")
	}

	// Validation: adaptive must be in [0, 1).
	for _, bad := range []string{"-0.1", "1", "1.5"} {
		body := `{"dataset":"ind3","adaptive":` + bad + `,"queries":[{"op":"verify","weights":[1,1,1]}]}`
		if code, _ := postJSON(t, ts.URL, "/v1/query", body, nil); code != http.StatusBadRequest {
			t.Errorf("adaptive=%s accepted with status %d", bad, code)
		}
	}
}

// TestJobAdaptive: the async jobs path carries the adaptive parameter —
// a job's verify result matches the synchronous adaptive answer bit for bit.
func TestJobAdaptive(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := `{"dataset":"ind3","samples":20000,"adaptive":0.02,"queries":[{"op":"verify","weights":[1,1,1]}]}`

	j, code := submitJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d %+v", code, j)
	}
	done := pollJob(t, ts, j.ID, 10*time.Second)
	if done.Status != string(jobDone) || done.Result == nil {
		t.Fatalf("job finished as %+v", done)
	}
	jv := done.Result.Results[0]
	if jv.Error != "" || !jv.Adaptive {
		t.Fatalf("job verify = %+v", jv)
	}

	var sync queryResponse
	if code, _ := postJSON(t, ts.URL, "/v1/query", body, &sync); code != http.StatusOK {
		t.Fatalf("sync query = %d", code)
	}
	sv := sync.Results[0]
	if *jv.Stability != *sv.Stability || jv.SampleCount != sv.SampleCount || jv.Adaptive != sv.Adaptive {
		t.Errorf("job adaptive verify %+v != sync %+v", jv, sv)
	}
}
