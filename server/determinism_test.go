package server

import (
	"io"
	"net/http"
	"testing"
	"time"
)

// fetchBody GETs path and returns the raw response bytes.
func fetchBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestStatszRendersByteIdentical pins the determinism contract srlint's
// detrange analyzer enforces structurally: with no intervening traffic, two
// consecutive /statsz renders are byte-identical. Before the PR 10 sweep the
// analyzers.resident list came straight out of a map range, so its order —
// and therefore the response bytes — changed run to run.
func TestStatszRendersByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// Populate the analyzer pool with several resident analyzers so the
	// resident list has an order worth pinning.
	for _, path := range []string{
		"/v1/fig1/verify?weights=1,1",
		"/v1/ind3/verify?weights=1,1,1&samples=2000",
		"/v1/ind3/verify?weights=2,1,1&samples=2000",
	} {
		if status, _ := get(t, ts, path, nil); status != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, status)
		}
	}

	first := fetchBody(t, ts.URL+"/statsz")
	second := fetchBody(t, ts.URL+"/statsz")
	if string(first) != string(second) {
		t.Errorf("consecutive /statsz renders differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestHealthzRendersByteIdentical: same contract for /healthz. Uptime is
// genuinely time-dependent, so the test pins the server's clock hook; with
// the clock frozen the whole render must be stable.
func TestHealthzRendersByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.now = func() time.Time { return s.start.Add(1500 * time.Millisecond) }

	first := fetchBody(t, ts.URL+"/healthz")
	second := fetchBody(t, ts.URL+"/healthz")
	if string(first) != string(second) {
		t.Errorf("consecutive /healthz renders differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}
