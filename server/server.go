// Package server implements stablerankd, the HTTP serving layer over the
// stablerank library: a named-dataset registry, one shared concurrency-safe
// Analyzer per (dataset, region, seed, samples) key behind singleflight
// deduplication — so concurrent identical queries share a single Monte-Carlo
// sample pool build — an LRU cache of rendered responses, per-request
// timeouts plumbed into the library's context plumbing, and /healthz +
// /statsz observability.
//
// Endpoints (all responses JSON):
//
//	GET  /healthz                      liveness
//	GET  /statsz                       cache hit rate, analyzer pool, in-flight
//	GET  /datasets                     registered datasets
//	POST /datasets/{name}?header=      register a CSV dataset (request body)
//	GET  /v1/{dataset}/verify          Problem 1: stability of ?weights=
//	GET  /v1/{dataset}/toph            Problem 2: ?h= most stable rankings
//	GET  /v1/{dataset}/above           Problem 2: rankings with stability >= ?s=
//	GET  /v1/{dataset}/itemrank        Example 1: rank distribution of ?item=
//	GET  /v1/{dataset}/rankings        Problem 3: paginated enumeration
//	POST /batch                        many verify/toph queries in one pass
//
// Query endpoints share the region parameters ?weights= (comma-separated)
// with optional ?theta= (hypercone half-angle) or ?cosine= (minimum cosine
// similarity), plus ?seed= and ?samples=. Identical parameter tuples map to
// one shared Analyzer and one cache slot. POST /batch takes the same
// region/seed/samples fields in its JSON body plus verify and toph operation
// lists; its verify operations share one sweep of the sample pool and its
// toph operations share one enumeration.
package server

import (
	"net/http"
	"sync/atomic"
	"time"
)

// Config parameterizes a Server. The zero value is usable; Defaults fills
// unset fields.
type Config struct {
	// Registry is the dataset catalog; nil means start empty.
	Registry *Registry
	// RequestTimeout bounds each request's computation (default 30s;
	// negative disables).
	RequestTimeout time.Duration
	// CacheSize is the LRU response cache capacity in entries (default 512;
	// negative disables caching).
	CacheSize int
	// MaxUploadBytes caps POST /datasets bodies (default 32 MiB).
	MaxUploadBytes int64
	// DefaultSampleCount is the Monte-Carlo pool size when ?samples= is
	// absent (default 100,000 — the paper's Section 6.3 choice).
	DefaultSampleCount int
	// MaxSampleCount rejects ?samples= and ?n= beyond this bound
	// (default 2,000,000).
	MaxSampleCount int
	// DefaultSeed is the sampler seed when ?seed= is absent (default 1).
	DefaultSeed int64
	// MaxEnumerate caps ?h=, ?per_page= and page*per_page (default 1,000).
	MaxEnumerate int
	// MaxAnalyzers bounds the resident analyzers (and with them the retained
	// Monte-Carlo sample pools); least recently used ones are evicted beyond
	// it (default 64).
	MaxAnalyzers int
	// MaxRankingItems truncates rankings in responses to this many leading
	// items (default 100).
	MaxRankingItems int
	// Workers is the per-analyzer worker count for sample-pool builds and
	// batch sweeps (default 0 = GOMAXPROCS). Results are deterministic
	// regardless of this value; it is a throughput knob only.
	Workers int
	// MaxBatchOps caps the number of operations in one POST /batch request
	// (default 256).
	MaxBatchOps int
	// Logf receives one line per request; nil disables logging.
	Logf func(format string, args ...any)
}

// Defaults returns a copy of c with every unset field at its default.
func (c Config) Defaults() Config {
	if c.Registry == nil {
		c.Registry = NewRegistry()
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 512
	}
	if c.MaxUploadBytes == 0 {
		c.MaxUploadBytes = 32 << 20
	}
	if c.DefaultSampleCount == 0 {
		c.DefaultSampleCount = 100_000
	}
	if c.MaxSampleCount == 0 {
		c.MaxSampleCount = 2_000_000
	}
	if c.DefaultSeed == 0 {
		c.DefaultSeed = 1
	}
	if c.MaxEnumerate == 0 {
		c.MaxEnumerate = 1_000
	}
	if c.MaxAnalyzers == 0 {
		c.MaxAnalyzers = 64
	}
	if c.MaxRankingItems == 0 {
		c.MaxRankingItems = 100
	}
	if c.MaxBatchOps == 0 {
		c.MaxBatchOps = 256
	}
	return c
}

// Server is the stablerankd request processor. Create with New, mount with
// Handler, and run it under any http.Server (cmd/stablerankd adds the
// listener and graceful SIGTERM drain).
type Server struct {
	cfg       Config
	registry  *Registry
	analyzers *analyzerPool
	cache     *lruCache
	handler   http.Handler
	start     time.Time

	inflightRequests atomic.Int64
}

// New builds a Server from cfg (zero value fine).
func New(cfg Config) *Server {
	cfg = cfg.Defaults()
	s := &Server{
		cfg:       cfg,
		registry:  cfg.Registry,
		analyzers: newAnalyzerPool(cfg.MaxAnalyzers, cfg.Workers),
		cache:     newLRUCache(cfg.CacheSize),
		start:     time.Now(),
	}
	s.handler = s.wrap(s.routes())
	return s
}

// Handler returns the fully middleware-wrapped root handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Registry returns the server's dataset registry, for startup loading.
func (s *Server) Registry() *Registry { return s.registry }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
