// Package server implements stablerankd, the HTTP serving layer over the
// stablerank library: a named-dataset registry, one shared concurrency-safe
// Analyzer per (dataset, region, seed, samples) key behind singleflight
// deduplication — so concurrent identical queries share a single Monte-Carlo
// sample pool build — an LRU cache of rendered responses, per-request
// timeouts plumbed into the library's context plumbing, and /healthz +
// /statsz observability.
//
// Endpoints (all responses JSON):
//
//	GET    /healthz                    liveness
//	GET    /statsz                     cache hit rate, analyzers, jobs, streams
//	GET    /datasets                   registered datasets
//	POST   /datasets/{name}?header=    register a CSV dataset (request body)
//	POST   /v1/query                   any mix of queries in one shared plan
//	GET    /v1/query/stream            NDJSON incremental enumeration
//	POST   /v1/jobs                    run a query list asynchronously
//	GET    /v1/jobs/{id}               job status + result
//	DELETE /v1/jobs/{id}               cancel (or discard) a job
//	GET    /v1/{dataset}/verify        Problem 1: stability of ?weights=
//	GET    /v1/{dataset}/toph          Problem 2: ?h= most stable rankings
//	GET    /v1/{dataset}/above         Problem 2: rankings with stability >= ?s=
//	GET    /v1/{dataset}/itemrank      Example 1: rank distribution of ?item=
//	GET    /v1/{dataset}/rankings      Problem 3: paginated enumeration
//	POST   /batch                      DEPRECATED: use POST /v1/query
//
// POST /v1/query is the uniform surface over the library's query model: the
// body names a dataset, the shared region/seed/samples parameters, and a
// heterogeneous list of operations ({"op":"verify",...}, {"op":"toph",...},
// {"op":"above",...}, {"op":"itemrank",...}, {"op":"boundary",...},
// {"op":"enumerate",...}) answered by one Analyzer.Do call — one sample-pool
// build and one fused sweep for the whole list. GET /v1/query/stream emits
// one NDJSON line per enumerated ranking with the running stability mass,
// and POST /v1/jobs runs the same request body on a bounded worker pool for
// enumerations too long to hold a connection open.
//
// Query endpoints share the region parameters ?weights= (comma-separated)
// with optional ?theta= (hypercone half-angle) or ?cosine= (minimum cosine
// similarity), plus ?seed= and ?samples=. Identical parameter tuples map to
// one shared Analyzer and one cache slot. POST /batch remains for
// compatibility (it answers with a Deprecation header); new clients should
// send the same operations to POST /v1/query.
package server

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Server. The zero value is usable; Defaults fills
// unset fields.
type Config struct {
	// Registry is the dataset catalog; nil means start empty.
	Registry *Registry
	// RequestTimeout bounds each request's computation (default 30s;
	// negative disables).
	RequestTimeout time.Duration
	// CacheSize is the LRU response cache capacity in entries (default 512;
	// negative disables caching).
	CacheSize int
	// MaxUploadBytes caps POST /datasets bodies (default 32 MiB).
	MaxUploadBytes int64
	// DefaultSampleCount is the Monte-Carlo pool size when ?samples= is
	// absent (default 100,000 — the paper's Section 6.3 choice).
	DefaultSampleCount int
	// MaxSampleCount rejects ?samples= and ?n= beyond this bound
	// (default 2,000,000).
	MaxSampleCount int
	// DefaultSeed is the sampler seed when ?seed= is absent (default 1).
	DefaultSeed int64
	// MaxEnumerate caps ?h=, ?per_page= and page*per_page (default 1,000).
	MaxEnumerate int
	// MaxAnalyzers bounds the resident analyzers (and with them the retained
	// Monte-Carlo sample pools); least recently used ones are evicted beyond
	// it (default 64).
	MaxAnalyzers int
	// MaxRankingItems truncates rankings in responses to this many leading
	// items (default 100).
	MaxRankingItems int
	// Workers is the per-analyzer worker count for sample-pool builds and
	// batch sweeps (default 0 = GOMAXPROCS). Results are deterministic
	// regardless of this value; it is a throughput knob only.
	Workers int
	// MaxBatchOps caps the number of operations in one POST /batch or
	// POST /v1/query request (default 256; /v1/query answers 413 beyond it).
	MaxBatchOps int
	// MaxStreamRows caps the rankings emitted by one GET /v1/query/stream
	// response and the enumeration depth of async jobs (default 100,000).
	MaxStreamRows int
	// JobWorkers is the size of the async job worker pool (default 2;
	// negative disables the jobs endpoints).
	JobWorkers int
	// JobQueueSize bounds the queued-but-not-running jobs; submissions
	// beyond it are answered 503 (default 16).
	JobQueueSize int
	// JobTTL is how long a finished job's result stays retrievable before
	// the store forgets it (default 10m; negative keeps results until
	// DELETEd).
	JobTTL time.Duration
	// JobTimeout bounds one job's computation (default 5m; negative
	// disables).
	JobTimeout time.Duration
	// Logf receives one line per request; nil disables logging.
	Logf func(format string, args ...any)
}

// Defaults returns a copy of c with every unset field at its default.
func (c Config) Defaults() Config {
	if c.Registry == nil {
		c.Registry = NewRegistry()
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 512
	}
	if c.MaxUploadBytes == 0 {
		c.MaxUploadBytes = 32 << 20
	}
	if c.DefaultSampleCount == 0 {
		c.DefaultSampleCount = 100_000
	}
	if c.MaxSampleCount == 0 {
		c.MaxSampleCount = 2_000_000
	}
	if c.DefaultSeed == 0 {
		c.DefaultSeed = 1
	}
	if c.MaxEnumerate == 0 {
		c.MaxEnumerate = 1_000
	}
	if c.MaxAnalyzers == 0 {
		c.MaxAnalyzers = 64
	}
	if c.MaxRankingItems == 0 {
		c.MaxRankingItems = 100
	}
	if c.MaxBatchOps == 0 {
		c.MaxBatchOps = 256
	}
	if c.MaxStreamRows == 0 {
		c.MaxStreamRows = 100_000
	}
	if c.JobWorkers == 0 {
		c.JobWorkers = 2
	}
	if c.JobQueueSize == 0 {
		c.JobQueueSize = 16
	}
	if c.JobTTL == 0 {
		c.JobTTL = 10 * time.Minute
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 5 * time.Minute
	}
	return c
}

// Server is the stablerankd request processor. Create with New, mount with
// Handler, and run it under any http.Server (cmd/stablerankd adds the
// listener and graceful SIGTERM drain).
type Server struct {
	cfg       Config
	registry  *Registry
	analyzers *analyzerPool
	cache     *lruCache
	jobs      *jobStore
	handler   http.Handler
	start     time.Time
	closeOnce sync.Once

	inflightRequests atomic.Int64
	// streamedRows counts NDJSON enumeration lines served by
	// GET /v1/query/stream, for /statsz.
	streamedRows atomic.Int64
}

// New builds a Server from cfg (zero value fine).
func New(cfg Config) *Server {
	cfg = cfg.Defaults()
	s := &Server{
		cfg:       cfg,
		registry:  cfg.Registry,
		analyzers: newAnalyzerPool(cfg.MaxAnalyzers, cfg.Workers),
		cache:     newLRUCache(cfg.CacheSize),
		start:     time.Now(),
	}
	s.jobs = newJobStore(cfg.JobWorkers, cfg.JobQueueSize, cfg.JobTTL, cfg.JobTimeout, s.execQuery)
	s.handler = s.wrap(s.routes())
	return s
}

// Handler returns the fully middleware-wrapped root handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Close stops the async job workers, cancelling any running jobs, and waits
// for them to exit. The HTTP handler itself holds no background state; after
// Close the jobs endpoints answer 503. Close is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(s.jobs.close)
}

// Registry returns the server's dataset registry, for startup loading.
func (s *Server) Registry() *Registry { return s.registry }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
