// Package server implements stablerankd, the HTTP serving layer over the
// stablerank library: a named-dataset registry, one shared concurrency-safe
// Analyzer per (dataset, region, seed, samples) key behind singleflight
// deduplication — so concurrent identical queries share a single Monte-Carlo
// sample pool build — an LRU cache of rendered responses, per-request
// timeouts plumbed into the library's context plumbing, and /healthz +
// /statsz observability.
//
// Endpoints (all responses JSON):
//
//	GET    /healthz                    liveness
//	GET    /statsz                     cache hit rate, analyzers, jobs, streams
//	GET    /datasets                   registered datasets
//	POST   /datasets/{name}?header=    register a CSV dataset (request body)
//	PATCH  /v1/datasets/{name}         apply a JSON delta list (add/remove/update)
//	GET    /v1/{dataset}/drift         NDJSON stream of per-delta stability drift
//	POST   /v1/query                   any mix of queries in one shared plan
//	GET    /v1/query/stream            NDJSON incremental enumeration
//	POST   /v1/jobs                    run a query list asynchronously
//	GET    /v1/jobs/{id}               job status + result
//	DELETE /v1/jobs/{id}               cancel (or discard) a job
//	GET    /v1/{dataset}/verify        Problem 1: stability of ?weights=
//	GET    /v1/{dataset}/toph          Problem 2: ?h= most stable rankings
//	GET    /v1/{dataset}/above         Problem 2: rankings with stability >= ?s=
//	GET    /v1/{dataset}/itemrank      Example 1: rank distribution of ?item=
//	GET    /v1/{dataset}/rankings      Problem 3: paginated enumeration
//	POST   /batch                      DEPRECATED: use POST /v1/query
//	*      /cluster/v1/{ping,fill}     chunk-fill worker protocol (binary)
//
// POST /v1/query is the uniform surface over the library's query model: the
// body names a dataset, the shared region/seed/samples parameters, and a
// heterogeneous list of operations ({"op":"verify",...}, {"op":"toph",...},
// {"op":"above",...}, {"op":"itemrank",...}, {"op":"boundary",...},
// {"op":"enumerate",...}) answered by one Analyzer.Do call — one sample-pool
// build and one fused sweep for the whole list. GET /v1/query/stream emits
// one NDJSON line per enumerated ranking with the running stability mass,
// and POST /v1/jobs runs the same request body on a bounded worker pool for
// enumerations too long to hold a connection open.
//
// Query endpoints share the region parameters ?weights= (comma-separated)
// with optional ?theta= (hypercone half-angle) or ?cosine= (minimum cosine
// similarity), plus ?seed= and ?samples=. Identical parameter tuples map to
// one shared Analyzer and one cache slot. POST /batch remains for
// compatibility (it answers with a Deprecation header); new clients should
// send the same operations to POST /v1/query.
//
// Datasets are mutable in place: PATCH /v1/datasets/{name} applies a JSON
// delta list ({"deltas":[{"op":"update","id":"x","attrs":[...]}, ...]})
// without invalidating derived state wholesale. Pool samples are weight-space
// points — independent of dataset content — so resident analyzers migrate by
// splicing the changed items into their maintained ranking state and keep
// their sample pools; pool snapshots survive deltas entirely; and the
// response cache is invalidated per dataset, not globally. Each PATCH's
// stability drift (score and rank displacement of the touched items across
// the pool) is published to GET /v1/{dataset}/drift subscribers as NDJSON.
//
// With Config.DataDir set the server is durable: registered datasets, built
// Monte-Carlo sample pools (as checksummed snapshots keyed by dimension,
// region, seed, samples and codec layout version — dataset content is
// irrelevant to the draw) and async
// job state all persist under that directory, so a restart reloads the
// catalog, answers its first query from a restored pool without resampling
// (PoolBuilds stays 0 and results are bit-identical — the pool draw is
// deterministic, so a restored pool IS the pool that would have been drawn),
// and resumes unfinished jobs past their last checkpoint. Corrupt entries
// are quarantined and rebuilt, never fatal. The /statsz "store" section
// reports snapshot hits/misses/bytes and checkpoint resume counters.
//
// Servers cluster two ways, separately or together. Config.Peers/SelfURL
// shard analyzer keys across replicas on a consistent-hash ring: every node
// computes the same owner for a key, non-owners forward POST /v1/query and
// GET /v1/{dataset}/{op} one hop (X-Stablerank-Served-By names the
// answering node), streams and jobs stay local. Config.FillWorkers
// assembles sample pools from remote chunk fills over /cluster/v1/fill
// instead of drawing locally. Both are placement-only: chunk contents
// depend only on (region, seed, chunk index), so any configuration —
// including every failure fallback — produces byte-identical answers to a
// single node. /healthz gains per-peer status (status "degraded" when a
// peer is down) and /statsz gains "fill" and "cluster" sections;
// ?scope=local confines either endpoint to the queried node.
package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"stablerank/internal/cluster"
	"stablerank/internal/store"
)

// Config parameterizes a Server. The zero value is usable; Defaults fills
// unset fields.
type Config struct {
	// Registry is the dataset catalog; nil means start empty.
	Registry *Registry
	// RequestTimeout bounds each request's computation (default 30s;
	// negative disables).
	RequestTimeout time.Duration
	// CacheSize is the LRU response cache capacity in entries (default 512;
	// negative disables caching).
	CacheSize int
	// MaxUploadBytes caps POST /datasets bodies (default 32 MiB).
	MaxUploadBytes int64
	// DefaultSampleCount is the Monte-Carlo pool size when ?samples= is
	// absent (default 100,000 — the paper's Section 6.3 choice).
	DefaultSampleCount int
	// MaxSampleCount rejects ?samples= and ?n= beyond this bound
	// (default 2,000,000).
	MaxSampleCount int
	// DefaultSeed is the sampler seed when ?seed= is absent (default 1).
	DefaultSeed int64
	// MaxEnumerate caps ?h=, ?per_page= and page*per_page (default 1,000).
	MaxEnumerate int
	// MaxAnalyzers bounds the resident analyzers (and with them the retained
	// Monte-Carlo sample pools); least recently used ones are evicted beyond
	// it (default 64).
	MaxAnalyzers int
	// MaxRankingItems truncates rankings in responses to this many leading
	// items (default 100).
	MaxRankingItems int
	// Workers is the per-analyzer worker count for sample-pool builds and
	// batch sweeps (default 0 = GOMAXPROCS). Results are deterministic
	// regardless of this value; it is a throughput knob only.
	Workers int
	// MaxBatchOps caps the number of operations in one POST /batch or
	// POST /v1/query request (default 256; /v1/query answers 413 beyond it).
	MaxBatchOps int
	// MaxStreamRows caps the rankings emitted by one GET /v1/query/stream
	// response and the enumeration depth of async jobs (default 100,000).
	MaxStreamRows int
	// JobWorkers is the size of the async job worker pool (default 2;
	// negative disables the jobs endpoints).
	JobWorkers int
	// JobQueueSize bounds the queued-but-not-running jobs; submissions
	// beyond it are answered 503 (default 16).
	JobQueueSize int
	// JobTTL is how long a finished job's result stays retrievable before
	// the store forgets it (default 10m; negative keeps results until
	// DELETEd).
	JobTTL time.Duration
	// JobTimeout bounds one job's computation (default 5m; negative
	// disables).
	JobTimeout time.Duration
	// DataDir enables persistence: datasets, pool snapshots and job
	// checkpoints are stored under this directory and reloaded on the next
	// boot. Empty (the default) keeps the server fully in-memory.
	DataDir string
	// DisableSnapshotCache turns off pool-snapshot persistence while keeping
	// the dataset catalog and job checkpoints (only meaningful with DataDir).
	DisableSnapshotCache bool
	// MaxStoreBytes caps the on-disk store; beyond it the oldest pool
	// snapshots are evicted first and, at the floor, new snapshots are simply
	// not cached (0 = unlimited).
	MaxStoreBytes int64
	// CheckpointEvery is how many enumerated rankings an async job streams
	// between checkpoints (default 1000; negative disables checkpointing).
	CheckpointEvery int
	// Peers is the full replica set of a sharded cluster, this node
	// included, as base URLs. Analyzer keys are placed on the set by
	// consistent hashing and POST /v1/query plus the GET /v1/{dataset}/{op}
	// endpoints are forwarded to each key's owner; an unreachable owner
	// degrades to serving locally (the pool draw is deterministic, so every
	// node answers every key bit-identically). Empty (the default) runs
	// standalone. Every node must be configured with the same set — order
	// and duplicates do not matter.
	Peers []string
	// SelfURL is this node's own entry in Peers (required when Peers is
	// set): how the node recognizes the keys it owns.
	SelfURL string
	// FillWorkers lists remote fill workers (base URLs of stablerankd
	// nodes, or of -worker processes) that Monte-Carlo pool builds are
	// farmed out to, chunk by chunk. Failed or corrupt chunks are re-filled
	// locally, bit-identically. Empty keeps pool builds local.
	FillWorkers []string
	// FillTimeout bounds one chunk-range fill request to one worker
	// (default 30s).
	FillTimeout time.Duration
	// DriftSamples is how many pool rows the per-delta rank-shift measurement
	// sweeps when publishing to GET /v1/{dataset}/drift (default 2048). Rank
	// shift costs O(n) per pool row, so this bounds the extra work a PATCH
	// does when drift subscribers are connected.
	DriftSamples int
	// Logf receives one line per request; nil disables logging.
	Logf func(format string, args ...any)
}

// Defaults returns a copy of c with every unset field at its default.
func (c Config) Defaults() Config {
	if c.Registry == nil {
		c.Registry = NewRegistry()
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 512
	}
	if c.MaxUploadBytes == 0 {
		c.MaxUploadBytes = 32 << 20
	}
	if c.DefaultSampleCount == 0 {
		c.DefaultSampleCount = 100_000
	}
	if c.MaxSampleCount == 0 {
		c.MaxSampleCount = 2_000_000
	}
	if c.DefaultSeed == 0 {
		c.DefaultSeed = 1
	}
	if c.MaxEnumerate == 0 {
		c.MaxEnumerate = 1_000
	}
	if c.MaxAnalyzers == 0 {
		c.MaxAnalyzers = 64
	}
	if c.MaxRankingItems == 0 {
		c.MaxRankingItems = 100
	}
	if c.MaxBatchOps == 0 {
		c.MaxBatchOps = 256
	}
	if c.MaxStreamRows == 0 {
		c.MaxStreamRows = 100_000
	}
	if c.JobWorkers == 0 {
		c.JobWorkers = 2
	}
	if c.JobQueueSize == 0 {
		c.JobQueueSize = 16
	}
	if c.JobTTL == 0 {
		c.JobTTL = 10 * time.Minute
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1_000
	}
	if c.FillTimeout == 0 {
		c.FillTimeout = 30 * time.Second
	}
	if c.DriftSamples == 0 {
		c.DriftSamples = 2048
	}
	return c
}

// Server is the stablerankd request processor. Create with New, mount with
// Handler, and run it under any http.Server (cmd/stablerankd adds the
// listener and graceful SIGTERM drain).
type Server struct {
	cfg       Config
	registry  *Registry
	analyzers *analyzerPool
	cache     *lruCache
	jobs      *jobStore
	handler   http.Handler
	start     time.Time
	now       func() time.Time // clock hook; tests pin it for byte-stable /statsz
	closeOnce sync.Once

	// Persistence (nil/zero without Config.DataDir).
	store          store.Store
	snapshots      *snapshotCache
	persister      *jobPersister
	datasetsLoaded int

	// Cluster state (nil without Config.Peers) and the chunk-fill protocol:
	// every node serves fills (fillWorker); nodes with Config.FillWorkers
	// also delegate their own pool builds (coordinator).
	cluster     *clusterState
	coordinator *cluster.Coordinator
	fillWorker  *cluster.Worker

	inflightRequests atomic.Int64
	// streamedRows counts NDJSON enumeration lines served by
	// GET /v1/query/stream, for /statsz.
	streamedRows atomic.Int64

	// Dataset-delta state: deltaMu serializes PATCH application per process
	// (registry mutation, analyzer migration and cache invalidation move as
	// one unit), drift fans events out to GET /v1/{dataset}/drift
	// subscribers, and the counters feed /statsz "deltas" (see delta.go).
	deltaMu          sync.Mutex
	drift            *driftHub
	deltasApplied    atomic.Int64
	deltaSpliced     atomic.Int64
	deltaResorted    atomic.Int64
	deltaMigrated    atomic.Int64
	deltaDropped     atomic.Int64
	cacheInvalidated atomic.Int64
	cacheSurvivals   atomic.Int64
}

// New builds a Server from cfg (zero value fine). With Config.DataDir set it
// opens the store, reloads the persisted dataset catalog, re-enqueues
// unfinished async jobs (resuming from their checkpoints), and hands every
// analyzer a pool-snapshot cache so warm restarts skip Monte-Carlo pool
// builds entirely.
func New(cfg Config) (*Server, error) {
	cfg = cfg.Defaults()
	s := &Server{
		cfg:       cfg,
		registry:  cfg.Registry,
		analyzers: newAnalyzerPool(cfg.MaxAnalyzers, cfg.Workers),
		cache:     newLRUCache(cfg.CacheSize),
		start:     time.Now(),
		now:       time.Now,
		fillWorker: &cluster.Worker{
			MaxSamples: cfg.MaxSampleCount,
			Logf:       cfg.Logf,
		},
		drift: newDriftHub(),
	}
	if len(cfg.Peers) > 0 {
		cs, err := newClusterState(cfg.Peers, cfg.SelfURL, cfg.RequestTimeout)
		if err != nil {
			return nil, err
		}
		s.cluster = cs
	}
	if len(cfg.FillWorkers) > 0 {
		s.coordinator = cluster.NewCoordinator(cluster.CoordinatorConfig{
			Workers:        cfg.FillWorkers,
			RequestTimeout: cfg.FillTimeout,
			LocalWorkers:   cfg.Workers,
			Logf:           cfg.Logf,
		})
		s.analyzers.coord = s.coordinator
	}
	if cfg.DataDir != "" {
		st, err := store.Open(cfg.DataDir)
		if err != nil {
			return nil, fmt.Errorf("server: opening data dir %q: %w", cfg.DataDir, err)
		}
		s.store = st
		if s.datasetsLoaded, err = s.registry.AttachStore(st, s.logf); err != nil {
			st.Close()
			return nil, err
		}
		if !cfg.DisableSnapshotCache {
			s.snapshots = newSnapshotCache(st, cfg.MaxStoreBytes, s.logf)
			s.analyzers.snaps = s.snapshots
			// Reclaim snapshots no analyzer can load anymore (old key formats
			// were content-hash keyed and leaked one entry per replacement).
			s.snapshots.sweepStale()
		}
		s.persister = newJobPersister(st, s.logf)
	}
	s.jobs = newJobStore(cfg.JobWorkers, cfg.JobQueueSize, cfg.JobTTL, cfg.JobTimeout, s.execJob, s.persister)
	if s.persister != nil {
		s.jobs.restore(s)
	}
	s.handler = s.wrap(s.routes())
	return s, nil
}

// Handler returns the fully middleware-wrapped root handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Close shuts the server down in dependency order: first the async job
// workers stop (cancelling running jobs, which persist a final checkpoint on
// the way out), then the store is flushed and closed — so every checkpoint
// write strictly precedes the flush and a kill right after Close loses
// nothing. The HTTP handler itself holds no background state; after Close
// the jobs endpoints answer 503. Close is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.jobs.close()
		if s.store != nil {
			if err := s.store.Flush(); err != nil {
				s.logf("stablerankd: flushing store: %v", err)
			}
			if err := s.store.Close(); err != nil {
				s.logf("stablerankd: closing store: %v", err)
			}
		}
	})
}

// Registry returns the server's dataset registry, for startup loading.
func (s *Server) Registry() *Registry { return s.registry }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
