package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"

	"stablerank"
)

// PATCH /v1/datasets/{name}: mutate a registered dataset in place with a JSON
// delta list, splicing every piece of derived state instead of rebuilding it.
//
//	{"deltas": [
//	  {"op": "update", "id": "x12", "attrs": [0.3, 0.7]},
//	  {"op": "add",    "id": "x99", "attrs": [0.1, 0.2]},
//	  {"op": "remove", "id": "x04"}
//	]}
//
// The batch is atomic: one invalid op (unknown or duplicate ID, wrong
// dimension, non-finite attribute) rejects the whole request and nothing
// changes. On success the dataset's version is bumped, resident analyzers
// migrate by splicing (their Monte-Carlo pools carry over verbatim — pool
// samples are weight-space points, independent of dataset content), the
// response cache drops only this dataset's entries, and the drift of each
// delta is published to GET /v1/{dataset}/drift subscribers.

// maxDeltaOps bounds one PATCH's delta list; batches beyond it are rejected
// before any dataset work happens.
const maxDeltaOps = 10_000

// deltaOpJSON is one delta on the wire.
type deltaOpJSON struct {
	Op    string    `json:"op"`
	ID    string    `json:"id"`
	Attrs []float64 `json:"attrs,omitempty"`
}

// deltaRequest is the PATCH body.
type deltaRequest struct {
	Deltas []deltaOpJSON `json:"deltas"`
}

// decodeDeltas parses and validates a PATCH body against dimension d. It is
// the fuzzed surface between untrusted JSON and the delta machinery, so every
// structural rule is enforced here: known ops only, non-empty IDs, attrs
// present with exactly d finite values for add/update and absent for remove.
// (Duplicate-ID rules depend on the evolving dataset and are enforced by
// stablerank.ApplyDeltas.)
func decodeDeltas(data []byte, d, maxOps int) ([]stablerank.Delta, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req deltaRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad delta body: %v", err)
	}
	if dec.More() {
		return nil, errors.New("bad delta body: trailing data after the delta object")
	}
	if len(req.Deltas) == 0 {
		return nil, errors.New("delta body has no deltas")
	}
	if len(req.Deltas) > maxOps {
		return nil, fmt.Errorf("delta body has %d ops, limit is %d", len(req.Deltas), maxOps)
	}
	out := make([]stablerank.Delta, len(req.Deltas))
	for i, op := range req.Deltas {
		if op.ID == "" {
			return nil, fmt.Errorf("delta %d: missing id", i)
		}
		var kind stablerank.DeltaOp
		switch op.Op {
		case "add":
			kind = stablerank.ItemAdd
		case "remove":
			kind = stablerank.ItemRemove
		case "update":
			kind = stablerank.AttrUpdate
		default:
			return nil, fmt.Errorf("delta %d: op must be add, remove or update, got %q", i, op.Op)
		}
		if kind == stablerank.ItemRemove {
			if len(op.Attrs) != 0 {
				return nil, fmt.Errorf("delta %d: remove takes no attrs", i)
			}
		} else {
			if len(op.Attrs) != d {
				return nil, fmt.Errorf("delta %d: attrs has %d values, dataset dimension is %d", i, len(op.Attrs), d)
			}
			for j, v := range op.Attrs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("delta %d: attrs[%d] is not finite", i, j)
				}
			}
		}
		out[i] = stablerank.Delta{Op: kind, ID: op.ID, Attrs: append([]float64(nil), op.Attrs...)}
	}
	return out, nil
}

// deltaResponse is the PATCH response: the dataset's new identity plus an
// accounting of exactly how much derived state the deltas touched.
type deltaResponse struct {
	Dataset           string `json:"dataset"`
	N                 int    `json:"n"`
	D                 int    `json:"d"`
	Generation        int64  `json:"generation"`
	Version           int64  `json:"version"`
	Applied           int    `json:"applied"`
	Spliced           int64  `json:"spliced"`
	Resorted          int64  `json:"resorted"`
	AnalyzersMigrated int    `json:"analyzers_migrated"`
	AnalyzersDropped  int    `json:"analyzers_dropped"`
	CacheInvalidated  int    `json:"cache_invalidated"`
	CacheSurvived     int    `json:"cache_survived"`
}

// handlePatchDataset is PATCH /v1/datasets/{name} (and its unversioned alias).
func (s *Server) handlePatchDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, statusError{
				code: http.StatusRequestEntityTooLarge,
				msg:  fmt.Sprintf("delta body exceeds the %d-byte upload limit", s.cfg.MaxUploadBytes),
			})
			return
		}
		writeError(w, errBadRequest("reading delta body: %v", err))
		return
	}
	// In a cluster, each dataset's deltas serialize at one replica: the ring
	// owner of the dataset name (registries are node-local, so ownership is a
	// write-serialization point, not replication). The forwarded marker keeps
	// the hop from looping, and an unreachable owner degrades to applying
	// locally, same as query routing.
	if s.cluster != nil {
		if owner, remote := s.cluster.owner(r, "dataset:"+name); remote {
			if s.proxy(w, r, owner, body) {
				return
			}
		}
	}
	s.markServedLocally(w)
	ds, _, _, ok := s.registry.Get(name)
	if !ok {
		writeError(w, errNotFound("unknown dataset %q", name))
		return
	}
	deltas, err := decodeDeltas(body, ds.D(), maxDeltaOps)
	if err != nil {
		writeError(w, errBadRequest("%v", err))
		return
	}
	resp, err := s.applyDeltas(name, deltas)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// applyDeltas moves the whole server to the post-delta dataset as one unit:
// registry version bump, resident-analyzer splice migration, per-dataset
// cache invalidation, and counters. deltaMu serializes concurrent PATCHes so
// two batches can never interleave their migrations; the pre-PATCH (gen, ver)
// read under the lock is what gates which resident analyzers may be spliced
// forward. Drift is priced after the lock is released — LastDrift sweeps the
// analyzer's whole pool, and holding deltaMu for that would block every
// PATCH to every dataset for the duration.
func (s *Server) applyDeltas(name string, deltas []stablerank.Delta) (deltaResponse, error) {
	s.deltaMu.Lock()
	oldDS, oldGen, oldVer, ok := s.registry.Get(name)
	if !ok {
		s.deltaMu.Unlock()
		return deltaResponse{}, errNotFound("unknown dataset %q", name)
	}
	ds, gen, ver, err := s.registry.ApplyDeltas(name, deltas)
	if err != nil {
		s.deltaMu.Unlock()
		return deltaResponse{}, errBadRequest("applying deltas: %v", err)
	}
	migrated, dropped, spliced, resorted, driftA := s.analyzers.applyDeltas(name, oldGen, oldVer, gen, ver, deltas)
	removed, survived := s.cache.invalidateDataset(name)

	s.deltasApplied.Add(int64(len(deltas)))
	s.deltaSpliced.Add(spliced)
	s.deltaResorted.Add(resorted)
	s.deltaMigrated.Add(int64(migrated))
	s.deltaDropped.Add(int64(dropped))
	s.cacheInvalidated.Add(int64(removed))
	s.cacheSurvivals.Add(int64(survived))
	s.deltaMu.Unlock()

	if s.drift.hasSubscribers(name) {
		s.publishDrift(name, gen, ver, oldDS, deltas, driftA)
	}
	return deltaResponse{
		Dataset:           name,
		N:                 ds.N(),
		D:                 ds.D(),
		Generation:        gen,
		Version:           ver,
		Applied:           len(deltas),
		Spliced:           spliced,
		Resorted:          resorted,
		AnalyzersMigrated: migrated,
		AnalyzersDropped:  dropped,
		CacheInvalidated:  removed,
		CacheSurvived:     survived,
	}, nil
}

// publishDrift prices the batch's stability drift and fans it out to the
// dataset's drift subscribers. migrated, when non-nil, is a full-space
// migrated analyzer with an already built pool (analyzerPool.applyDeltas
// selects it deterministically), so LastDrift never draws a pool here and
// the published numbers have stable semantics; with none resident, a
// throwaway DriftSamples-row pool prices the batch instead — either way the
// rank-shift cost is bounded by DriftSamples rank passes, so a PATCH with
// subscribers stays cheap.
func (s *Server) publishDrift(name string, gen, ver int64, oldDS *stablerank.Dataset, deltas []stablerank.Delta, migrated *stablerank.Analyzer) {
	ctx := context.Background() //srlint:ctxflow drift pricing runs after the PATCH response; tying it to the request context would cancel published numbers
	var (
		drifts []stablerank.Drift
		err    error
	)
	if migrated != nil {
		drifts, err = migrated.LastDrift(ctx, s.cfg.DriftSamples)
	} else {
		drifts, err = stablerank.DriftOf(ctx, oldDS, deltas, s.cfg.DefaultSeed, s.cfg.DriftSamples, s.cfg.DriftSamples)
	}
	if err != nil {
		s.logf("stablerankd: measuring drift for dataset %q: %v", name, err)
		return
	}
	events := make([]driftEvent, len(drifts))
	for i, d := range drifts {
		events[i] = driftEvent{
			Dataset:          name,
			Generation:       gen,
			Version:          ver,
			Op:               d.Op.String(),
			ID:               d.ID,
			PoolRows:         d.PoolRows,
			MeanScoreDelta:   d.MeanScoreDelta,
			MaxAbsScoreDelta: d.MaxAbsScoreDelta,
			RankRows:         d.Shift.Rows,
			RankChanged:      d.Shift.Changed,
			MeanRankBefore:   d.Shift.MeanBefore,
			MeanRankAfter:    d.Shift.MeanAfter,
			MeanAbsRankShift: d.Shift.MeanAbsShift,
			MaxAbsRankShift:  d.Shift.MaxAbsShift,
			RankImproved:     d.Shift.Improved,
			RankWorsened:     d.Shift.Worsened,
		}
	}
	s.drift.publish(name, events)
}

// deltaStats is the /statsz "deltas" section.
func (s *Server) deltaStats() map[string]any {
	return map[string]any{
		"applied":            s.deltasApplied.Load(),
		"spliced":            s.deltaSpliced.Load(),
		"resorted":           s.deltaResorted.Load(),
		"cache_invalidated":  s.cacheInvalidated.Load(),
		"cache_survivals":    s.cacheSurvivals.Load(),
		"analyzers_migrated": s.deltaMigrated.Load(),
		"analyzers_dropped":  s.deltaDropped.Load(),
		"drift_events":       s.drift.events.Load(),
		"drift_dropped":      s.drift.dropped.Load(),
		"drift_streamed":     s.drift.streamed.Load(),
	}
}
