package server

import (
	"container/list"
	"strings"
	"sync"
)

// lruCache is a mutex-guarded LRU cache mapping canonical query keys to
// rendered JSON responses. Entries are immutable byte slices, so a value
// handed out under the lock can be written to a response after it without
// copying.
type lruCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses int64
}

type lruEntry struct {
	key string
	val []byte
}

// newLRUCache returns a cache holding at most max entries; max < 1 disables
// caching (every get misses, every put is dropped).
func newLRUCache(max int) *lruCache {
	return &lruCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached value for key, marking it most recently used.
func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put stores val under key, evicting the least recently used entry when the
// cache is full. Storing an existing key refreshes its value and recency.
func (c *lruCache) put(key string, val []byte) {
	if c.max < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, val: val})
}

// invalidateDataset removes every cached response belonging to the named
// dataset (keys start with "name@"; see analyzerKey.String) and reports how
// many entries were removed and how many — belonging to other datasets —
// survived. This is the fine-grained path dataset deltas use: a PATCH to one
// dataset leaves every other dataset's cached responses untouched, where the
// old whole-generation scheme would simply have orphaned them.
func (c *lruCache) invalidateDataset(name string) (removed, survived int) {
	prefix := name + "@"
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*lruEntry)
		if strings.HasPrefix(ent.key, prefix) {
			c.order.Remove(el)
			delete(c.entries, ent.key)
			removed++
		} else {
			survived++
		}
		el = next
	}
	return removed, survived
}

// stats returns the cumulative hit/miss counters and the current size.
func (c *lruCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}
