package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postBatch posts body to /batch and decodes the JSON response into v (when
// non-nil), returning the status code.
func postBatch(t *testing.T, ts *httptest.Server, body string, v any) int {
	t.Helper()
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("POST /batch: bad JSON (%v):\n%s", err, raw)
		}
	}
	return resp.StatusCode
}

// TestBatchVerifyAndTopH: a mixed batch over the Monte-Carlo 3D dataset
// agrees with the corresponding single-query endpoints.
func TestBatchVerifyAndTopH(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var batch batchResponse
	code := postBatch(t, ts, `{
		"dataset": "ind3",
		"verify": [{"weights": [1, 1, 1]}, {"weights": [2, 1, 0.5]}],
		"toph": [3, 5]
	}`, &batch)
	if code != http.StatusOK {
		t.Fatalf("batch = %d", code)
	}
	if len(batch.Verify) != 2 || len(batch.TopH) != 2 {
		t.Fatalf("batch shape: %d verify, %d toph", len(batch.Verify), len(batch.TopH))
	}
	// Cross-check each verify entry against the single-query endpoint (same
	// seed and sample count select the same shared analyzer and pool).
	for i, wstr := range []string{"1,1,1", "2,1,0.5"} {
		var single verifyResponse
		sc, _ := get(t, ts, "/v1/ind3/verify?weights="+wstr, &single)
		if sc != http.StatusOK {
			t.Fatalf("single verify %d = %d", i, sc)
		}
		if batch.Verify[i].Error != "" {
			t.Fatalf("verify[%d]: unexpected error %q", i, batch.Verify[i].Error)
		}
		if batch.Verify[i].Stability != single.Stability {
			t.Errorf("verify[%d]: batch %v vs single %v", i, batch.Verify[i].Stability, single.Stability)
		}
	}
	if batch.TopH[0].H != 3 || batch.TopH[1].H != 5 {
		t.Errorf("toph h = %d, %d", batch.TopH[0].H, batch.TopH[1].H)
	}
	if len(batch.TopH[0].Rankings) > 3 {
		t.Errorf("toph[0] returned %d rankings for h=3", len(batch.TopH[0].Rankings))
	}
	// The h=3 answer must be a prefix of the h=5 answer.
	for i, r := range batch.TopH[0].Rankings {
		if r.Stability != batch.TopH[1].Rankings[i].Stability {
			t.Errorf("toph prefix mismatch at %d", i)
		}
	}
}

// TestBatchExact2D: batch verification against the exact 2D engine.
func TestBatchExact2D(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var batch batchResponse
	code := postBatch(t, ts, `{"dataset": "fig1", "verify": [{"weights": [1, 1]}]}`, &batch)
	if code != http.StatusOK || len(batch.Verify) != 1 {
		t.Fatalf("batch = %d %+v", code, batch)
	}
	if !batch.Verify[0].Exact || batch.Verify[0].Stability <= 0 {
		t.Errorf("2D batch verify: %+v", batch.Verify[0])
	}
}

// TestBatchPerItemError: an infeasible ranking reports its own error while
// the rest of the batch succeeds.
func TestBatchPerItemError(t *testing.T) {
	s, ts := newTestServer(t, nil)
	ds, _, _, _ := s.registry.Get("ind3")
	// Build a worst-to-best id list; with 12 independent items some adjacent
	// pair is dominated, making the reversed ranking infeasible. If not,
	// the entry still answers (with stability ~0), so only assert on the
	// feasible entry and on batch integrity.
	ids := make([]string, ds.N())
	for i := 0; i < ds.N(); i++ {
		ids[ds.N()-1-i] = ds.Item(i).ID
	}
	body, err := json.Marshal(map[string]any{
		"dataset": "ind3",
		"verify": []map[string]any{
			{"weights": []float64{1, 1, 1}},
			{"ranking": strings.Join(ids, ",")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var batch batchResponse
	code := postBatch(t, ts, string(body), &batch)
	if code != http.StatusOK || len(batch.Verify) != 2 {
		t.Fatalf("batch = %d %+v", code, batch)
	}
	if batch.Verify[0].Error != "" || batch.Verify[0].Stability <= 0 {
		t.Errorf("feasible entry: %+v", batch.Verify[0])
	}
}

func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBatchOps = 4 })
	cases := []struct {
		name, body string
		code       int
	}{
		{"empty ops", `{"dataset": "ind3"}`, http.StatusBadRequest},
		{"unknown dataset", `{"dataset": "nope", "toph": [1]}`, http.StatusNotFound},
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown field", `{"dataset": "ind3", "topk": [1]}`, http.StatusBadRequest},
		{"both weights and ranking", `{"dataset": "ind3", "verify": [{"weights": [1,1,1], "ranking": "a,b"}]}`, http.StatusBadRequest},
		{"verify without either", `{"dataset": "ind3", "verify": [{}]}`, http.StatusBadRequest},
		{"h out of range", `{"dataset": "ind3", "toph": [0]}`, http.StatusBadRequest},
		{"too many ops", `{"dataset": "ind3", "toph": [1, 1, 1, 1, 1]}`, http.StatusBadRequest},
		{"bad region weights", `{"dataset": "ind3", "weights": [1, 2], "toph": [1]}`, http.StatusBadRequest},
		{"bad theta", `{"dataset": "ind3", "weights": [1,1,1], "theta": -2, "toph": [1]}`, http.StatusBadRequest},
		{"bad samples", `{"dataset": "ind3", "samples": 0, "toph": [1]}`, http.StatusBadRequest},
		{"trailing data", `{"dataset": "ind3", "toph": [1]} {"x": 1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e errorResponse
			if code := postBatch(t, ts, tc.body, &e); code != tc.code {
				t.Errorf("code = %d, want %d (error %q)", code, tc.code, e.Error)
			}
		})
	}
}

// TestBatchBodyTooLarge: an oversized body maps to 413.
func TestBatchBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// A syntactically valid prefix forces the decoder to read past the
	// limit, so the MaxBytesReader (not a syntax error) rejects it.
	big := append([]byte(`{"dataset": "`), bytes.Repeat([]byte("x"), maxBatchBody+1)...)
	big = append(big, []byte(`"}`)...)
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("code = %d, want 413", resp.StatusCode)
	}
}

// TestBatchSharesAnalyzer: a batch and the equivalent GET queries coalesce
// onto one analyzer, so the pool is built exactly once.
func TestBatchSharesAnalyzer(t *testing.T) {
	_, ts := newTestServer(t, nil)
	if code := postBatch(t, ts, `{"dataset": "ind3", "toph": [2]}`, nil); code != http.StatusOK {
		t.Fatalf("batch = %d", code)
	}
	if code, _ := get(t, ts, "/v1/ind3/verify?weights=1,1,1", nil); code != http.StatusOK {
		t.Fatalf("verify = %d", code)
	}
	var stats struct {
		Analyzers struct {
			Resident []analyzerStat `json:"resident"`
		} `json:"analyzers"`
		Workers int `json:"workers"`
	}
	if code, _ := get(t, ts, "/statsz", &stats); code != http.StatusOK {
		t.Fatal("statsz failed")
	}
	if stats.Workers < 1 {
		t.Errorf("statsz workers = %d, want >= 1", stats.Workers)
	}
	if len(stats.Analyzers.Resident) != 1 {
		t.Fatalf("%d resident analyzers, want 1 (batch and GET should share)", len(stats.Analyzers.Resident))
	}
	st := stats.Analyzers.Resident[0]
	if st.PoolBuilds != 1 || !st.PoolBuilt {
		t.Errorf("pool builds = %d built = %v, want exactly 1 shared build", st.PoolBuilds, st.PoolBuilt)
	}
	if st.Workers < 1 {
		t.Errorf("analyzer workers = %d, want >= 1", st.Workers)
	}
	if st.PoolBuildMS <= 0 {
		t.Errorf("pool_build_ms = %v, want > 0", st.PoolBuildMS)
	}
}
