package server

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stablerank"
)

// submitJob posts a /v1/jobs body and returns the decoded response.
func submitJob(t *testing.T, ts *httptest.Server, body string) (jobResponse, int) {
	t.Helper()
	var j jobResponse
	code, _ := postJSON(t, ts.URL, "/v1/jobs", body, &j)
	return j, code
}

// pollJob polls GET /v1/jobs/{id} until the job leaves queued/running or the
// deadline passes.
func pollJob(t *testing.T, ts *httptest.Server, id string, deadline time.Duration) jobResponse {
	t.Helper()
	var j jobResponse
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		code, _ := get(t, ts, "/v1/jobs/"+id, &j)
		if code != http.StatusOK {
			t.Fatalf("job poll = %d", code)
		}
		if j.Status != string(jobQueued) && j.Status != string(jobRunning) {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s still %s after %s", id, j.Status, deadline)
	return j
}

// deleteJob issues DELETE /v1/jobs/{id} and returns the status code.
func deleteJob(t *testing.T, ts *httptest.Server, id string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// addDeepDataset registers a 4D dataset whose exhaustive enumeration runs
// far longer than any test deadline — the workload for cancellation tests.
func addDeepDataset(t *testing.T, s *Server) {
	t.Helper()
	ds := stablerank.Diamonds(rand.New(rand.NewSource(7)), 120)
	deep, err := ds.Project(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Registry().Add("deep", deep); err != nil {
		t.Fatal(err)
	}
}

// TestJobLifecycle submits a job, polls it to completion and reads the
// result; the result matches the synchronous endpoint's.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := `{"dataset":"ind3","samples":5000,"queries":[{"op":"verify","weights":[1,1,1]},{"op":"toph","h":3}]}`

	j, code := submitJob(t, ts, body)
	if code != http.StatusAccepted || j.ID == "" || j.Status != string(jobQueued) {
		t.Fatalf("submit = %d %+v", code, j)
	}
	done := pollJob(t, ts, j.ID, 10*time.Second)
	if done.Status != string(jobDone) || done.Result == nil {
		t.Fatalf("job finished as %+v", done)
	}
	if len(done.Result.Results) != 2 || done.Result.Results[0].Stability == nil {
		t.Fatalf("job result = %+v", done.Result)
	}

	// Bit-identical to the synchronous answer (same analyzer key).
	var sync queryResponse
	if code, _ := postJSON(t, ts.URL, "/v1/query", body, &sync); code != http.StatusOK {
		t.Fatalf("sync query = %d", code)
	}
	if *sync.Results[0].Stability != *done.Result.Results[0].Stability {
		t.Errorf("job stability %v != sync %v", *done.Result.Results[0].Stability, *sync.Results[0].Stability)
	}

	// Unknown job id.
	if code, _ := get(t, ts, "/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown job = %d", code)
	}
	// Validation failures surface synchronously at submit time.
	if _, code := submitJob(t, ts, `{"dataset":"nope","queries":[{"op":"toph","h":1}]}`); code != http.StatusNotFound {
		t.Errorf("bad submit = %d", code)
	}
	if _, code := submitJob(t, ts, `{"dataset":"ind3","queries":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty submit = %d", code)
	}
	// Jobs allow open enumeration (unlike the sync endpoint).
	j2, code := submitJob(t, ts, `{"dataset":"fig1","queries":[{"op":"enumerate"}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("open enumerate job = %d", code)
	}
	done2 := pollJob(t, ts, j2.ID, 10*time.Second)
	if done2.Status != string(jobDone) || len(done2.Result.Results[0].Rankings) != 11 {
		t.Fatalf("open enumerate job = %+v", done2)
	}
	// DELETE on a finished job discards the record.
	if code := deleteJob(t, ts, j2.ID); code != http.StatusOK {
		t.Fatalf("delete finished = %d", code)
	}
	if code, _ := get(t, ts, "/v1/jobs/"+j2.ID, nil); code != http.StatusNotFound {
		t.Errorf("deleted job still retrievable: %d", code)
	}
}

// TestJobCancellation cancels a long-running job via DELETE and checks the
// worker comes free promptly.
func TestJobCancellation(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.JobWorkers = 1
		c.DefaultSampleCount = 30_000
	})
	addDeepDataset(t, s)

	// An exhaustive 4D enumeration: far too deep to finish quickly.
	j, code := submitJob(t, ts, `{"dataset":"deep","queries":[{"op":"enumerate"}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	time.Sleep(50 * time.Millisecond) // let the worker take it
	if code := deleteJob(t, ts, j.ID); code != http.StatusOK {
		t.Fatalf("delete = %d", code)
	}
	var got jobResponse
	if code, _ := get(t, ts, "/v1/jobs/"+j.ID, &got); code != http.StatusOK {
		t.Fatalf("poll after cancel = %d", code)
	}
	if got.Status != string(jobCancelled) {
		t.Fatalf("job after DELETE = %s, want cancelled", got.Status)
	}
	// The single worker must be released promptly: a follow-up job runs to
	// completion within the poll deadline.
	j2, code := submitJob(t, ts, `{"dataset":"fig1","queries":[{"op":"toph","h":1}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("post-cancel submit = %d", code)
	}
	done := pollJob(t, ts, j2.ID, 10*time.Second)
	if done.Status != string(jobDone) {
		t.Fatalf("post-cancel job = %+v", done)
	}
}

// TestJobQueueFullAndTTL checks the 503 on a saturated queue and the TTL
// purge of finished jobs.
func TestJobQueueFullAndTTL(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.JobWorkers = 1
		c.JobQueueSize = 1
		c.JobTTL = 50 * time.Millisecond
		c.DefaultSampleCount = 30_000
	})
	addDeepDataset(t, s)

	// One long job occupies the worker, one fills the queue; the third is
	// rejected 503.
	long := `{"dataset":"deep","queries":[{"op":"enumerate"}]}`
	j1, code := submitJob(t, ts, long)
	if code != http.StatusAccepted {
		t.Fatalf("submit 1 = %d", code)
	}
	time.Sleep(20 * time.Millisecond) // let the worker take j1
	j2, code := submitJob(t, ts, long)
	if code != http.StatusAccepted {
		t.Fatalf("submit 2 = %d", code)
	}
	if _, code = submitJob(t, ts, long); code != http.StatusServiceUnavailable {
		t.Errorf("submit to a full queue = %d, want 503", code)
	}
	// Cancel the queued job (it must never run) and the running one (the
	// worker comes free), then a fast job completes and its record expires
	// after the TTL.
	if code := deleteJob(t, ts, j2.ID); code != http.StatusOK {
		t.Fatalf("delete queued = %d", code)
	}
	if code := deleteJob(t, ts, j1.ID); code != http.StatusOK {
		t.Fatalf("delete running = %d", code)
	}
	quick, code := submitJob(t, ts, `{"dataset":"fig1","queries":[{"op":"toph","h":1}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("quick submit = %d", code)
	}
	done := pollJob(t, ts, quick.ID, 10*time.Second)
	if done.Status != string(jobDone) {
		t.Fatalf("quick job = %+v", done)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := get(t, ts, "/v1/jobs/"+quick.ID, nil)
		if code == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReservedDatasetName checks a dataset cannot shadow the /v1/jobs
// routes: registration rejects the reserved name instead of creating a
// dataset unreachable through the GET endpoints.
func TestReservedDatasetName(t *testing.T) {
	s, ts := newTestServer(t, nil)
	resp, err := http.Post(ts.URL+"/datasets/jobs", "text/csv",
		strings.NewReader("id,a,b\nx,1,2\ny,2,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("registering dataset %q = %d, want 400", "jobs", resp.StatusCode)
	}
	if err := s.Registry().Add("jobs", stablerank.Figure1()); err == nil {
		t.Error("Registry.Add accepted the reserved name \"jobs\"")
	}
}

// TestStatszJobsAndStreams checks the new observability counters.
func TestStatszJobsAndStreams(t *testing.T) {
	_, ts := newTestServer(t, nil)
	j, code := submitJob(t, ts, `{"dataset":"fig1","queries":[{"op":"toph","h":2}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	pollJob(t, ts, j.ID, 10*time.Second)
	if code, _ := get(t, ts, "/v1/query/stream?dataset=fig1&op=toph&h=3", nil); code != http.StatusOK {
		t.Fatalf("stream = %d", code)
	}
	var stats struct {
		Jobs struct {
			Workers   int   `json:"workers"`
			Completed int64 `json:"completed"`
			Active    int   `json:"active"`
			Queued    int   `json:"queued"`
		} `json:"jobs"`
		StreamedRows int64 `json:"streamed_rows"`
	}
	if code, _ := get(t, ts, "/statsz", &stats); code != http.StatusOK {
		t.Fatalf("statsz = %d", code)
	}
	if stats.Jobs.Workers < 1 || stats.Jobs.Completed < 1 {
		t.Errorf("jobs stats = %+v", stats.Jobs)
	}
	if stats.StreamedRows < 3 {
		t.Errorf("streamed_rows = %d, want >= 3", stats.StreamedRows)
	}
}
