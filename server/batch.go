package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"stablerank"
)

// POST /batch: many stability queries against one analyzer in one request.
// DEPRECATED: POST /v1/query supersedes it — the same verify/toph operations
// (plus above, itemrank, boundary and enumerate) expressed as one
// heterogeneous query list, answered by a single Analyzer.Do plan. This
// endpoint remains for compatibility; every response carries a Deprecation
// header and a Link to the successor. The verify operations are answered by
// Analyzer.VerifyBatch and the toph operations by Analyzer.TopHBatch, both
// of which are themselves wrappers over Do, so old and new endpoints return
// identical numbers for identical operations. Responses are not LRU cached
// (the analyzer and its sample pool are still shared through the analyzer
// pool, which is where the dominant cost lives).

// batchVerifySpec is one verify operation: either the ranking induced by
// weights, or an explicit ranking as comma-separated item IDs.
type batchVerifySpec struct {
	Weights []float64 `json:"weights,omitempty"`
	Ranking string    `json:"ranking,omitempty"`
}

// batchRequest is the POST /batch body. Region, seed and samples have the
// same semantics and defaults as the GET query parameters of the same names
// and select the shared analyzer; verify and toph list the operations.
type batchRequest struct {
	Dataset string    `json:"dataset"`
	Weights []float64 `json:"weights,omitempty"`
	Theta   float64   `json:"theta,omitempty"`
	Cosine  float64   `json:"cosine,omitempty"`
	Seed    *int64    `json:"seed,omitempty"`
	Samples *int      `json:"samples,omitempty"`

	Verify []batchVerifySpec `json:"verify,omitempty"`
	TopH   []int             `json:"toph,omitempty"`
}

// batchVerifyResult is one verify operation's outcome; exactly one of the
// stability fields and Error is meaningful.
type batchVerifyResult struct {
	Ranking         []itemRef `json:"ranking,omitempty"`
	Stability       float64   `json:"stability"`
	ConfidenceError float64   `json:"confidence_error"`
	Exact           bool      `json:"exact"`
	Error           string    `json:"error,omitempty"`
}

type batchResponse struct {
	Dataset string              `json:"dataset"`
	Verify  []batchVerifyResult `json:"verify,omitempty"`
	TopH    []topHResponse      `json:"toph,omitempty"`
}

// maxBatchBody bounds the request body; batch requests are parameter lists,
// not dataset uploads.
const maxBatchBody = 1 << 20

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	// RFC 8594-style deprecation signalling, set before any write so error
	// responses carry it too.
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/query>; rel="successor-version"`)
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, statusError{code: http.StatusRequestEntityTooLarge, msg: "batch body exceeds 1 MiB"})
			return
		}
		writeError(w, errBadRequest("decoding batch request: %v", err))
		return
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		writeError(w, errBadRequest("batch request has trailing data"))
		return
	}
	resp, err := s.computeBatch(r, &req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) computeBatch(r *http.Request, req *batchRequest) (*batchResponse, error) {
	if err := r.Context().Err(); err != nil {
		return nil, err
	}
	if len(req.Verify)+len(req.TopH) == 0 {
		return nil, errBadRequest("batch requires at least one verify or toph operation")
	}
	if ops := len(req.Verify) + len(req.TopH); ops > s.cfg.MaxBatchOps {
		return nil, errBadRequest("batch has %d operations, limit %d", ops, s.cfg.MaxBatchOps)
	}
	ds, gen, ver, ok := s.registry.Get(req.Dataset)
	if !ok {
		return nil, errNotFound("unknown dataset %q", req.Dataset)
	}
	spec := regionSpec{weights: req.Weights, theta: req.Theta, cosine: req.Cosine}
	if err := spec.validate(ds.D(), req.Theta != 0, req.Cosine != 0); err != nil {
		return nil, err
	}
	seed := s.cfg.DefaultSeed
	if req.Seed != nil {
		seed = *req.Seed
	}
	samples := s.cfg.DefaultSampleCount
	if req.Samples != nil {
		samples = *req.Samples
	}
	if samples < 1 || samples > s.cfg.MaxSampleCount {
		return nil, errBadRequest("samples %d out of range [1, %d]", samples, s.cfg.MaxSampleCount)
	}

	// Parse every operation before touching the analyzer, so a malformed
	// entry rejects the request instead of surfacing after partial work.
	rankings := make([]stablerank.Ranking, len(req.Verify))
	for i, spec := range req.Verify {
		switch {
		case spec.Ranking != "" && len(spec.Weights) > 0:
			return nil, errBadRequest("verify[%d]: use weights or ranking, not both", i)
		case spec.Ranking != "":
			rk, err := parseRanking(spec.Ranking, ds)
			if err != nil {
				return nil, errBadRequest("verify[%d]: %v", i, err)
			}
			rankings[i] = rk
		case len(spec.Weights) > 0:
			if len(spec.Weights) != ds.D() {
				return nil, errBadRequest("verify[%d]: weights have %d components, dataset has %d attributes", i, len(spec.Weights), ds.D())
			}
			rankings[i] = stablerank.RankingOf(ds, spec.Weights)
		default:
			return nil, errBadRequest("verify[%d]: requires weights or ranking", i)
		}
	}
	for i, h := range req.TopH {
		if h < 1 || h > s.cfg.MaxEnumerate {
			return nil, errBadRequest("toph[%d]: h must be in [1, %d]", i, s.cfg.MaxEnumerate)
		}
	}

	key := analyzerKey{dataset: req.Dataset, gen: gen, ver: ver, region: spec.canonical(), seed: seed, samples: samples}
	a, err := s.analyzers.get(key, ds, spec)
	if err != nil {
		if _, isStatus := err.(statusError); isStatus {
			return nil, err
		}
		return nil, errBadRequest("building analyzer: %v", err)
	}

	resp := &batchResponse{Dataset: req.Dataset}
	if len(rankings) > 0 {
		verifications, err := a.VerifyBatch(r.Context(), rankings)
		if err != nil {
			return nil, err
		}
		resp.Verify = make([]batchVerifyResult, len(verifications))
		for i, v := range verifications {
			if v.Err != nil {
				resp.Verify[i] = batchVerifyResult{Error: v.Err.Error()}
				continue
			}
			resp.Verify[i] = batchVerifyResult{
				Ranking:         s.itemRefs(ds, rankings[i].Order),
				Stability:       v.Stability,
				ConfidenceError: v.ConfidenceError,
				Exact:           v.Exact,
			}
		}
	}
	if len(req.TopH) > 0 {
		batches, err := a.TopHBatch(r.Context(), req.TopH)
		if err != nil {
			return nil, err
		}
		resp.TopH = make([]topHResponse, len(batches))
		for i, stables := range batches {
			resp.TopH[i] = topHResponse{
				Dataset:  req.Dataset,
				H:        req.TopH[i],
				Rankings: s.stableResponses(ds, stables, 0),
			}
		}
	}
	return resp, nil
}
