package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"stablerank"
)

// POST /v1/query: the uniform query surface. One request names a dataset,
// the shared region/seed/samples parameters, and a heterogeneous list of
// operations; the whole list is answered by one Analyzer.Do call, so every
// verify and item-rank operation shares a single fused sweep of the sample
// pool and every enumeration-shaped operation shares one cursor. It
// supersedes POST /batch (kept for compatibility with a Deprecation header).

// querySpec is one operation in the request's queries list. Op selects the
// operation; the remaining fields are op-specific and ignored otherwise.
type querySpec struct {
	// Op is one of verify, toph, above, itemrank, boundary, enumerate.
	Op string `json:"op"`
	// Weights/Ranking identify the ranking for verify and boundary: either
	// the ranking induced by weights, or an explicit comma-separated item-ID
	// list.
	Weights []float64 `json:"weights,omitempty"`
	Ranking string    `json:"ranking,omitempty"`
	// H is the toph depth.
	H int `json:"h,omitempty"`
	// S is the above stability threshold.
	S float64 `json:"s,omitempty"`
	// Item is the itemrank item ID; N its sample count (0 = the analyzer's
	// pool size); K adds a top-K membership probability.
	Item string `json:"item,omitempty"`
	N    int    `json:"n,omitempty"`
	K    int    `json:"k,omitempty"`
	// Limit is the enumerate depth.
	Limit int `json:"limit,omitempty"`
}

// queryRequest is the POST /v1/query (and POST /v1/jobs) body. Region, seed
// and samples have the same semantics and defaults as the GET query
// parameters of the same names and select the shared analyzer.
type queryRequest struct {
	Dataset string    `json:"dataset"`
	Weights []float64 `json:"weights,omitempty"`
	Theta   float64   `json:"theta,omitempty"`
	Cosine  float64   `json:"cosine,omitempty"`
	Seed    *int64    `json:"seed,omitempty"`
	Samples *int      `json:"samples,omitempty"`
	// Adaptive > 0 enables adaptive verification at that target confidence
	// error (0 < adaptive < 1): verify operations stop sweeping the sample
	// pool early once their confidence half-width reaches the target, and
	// report the rows actually used in sample_count with adaptive set. 0 (the
	// default) keeps exact full-pool sweeps.
	Adaptive float64 `json:"adaptive,omitempty"`

	Queries []querySpec `json:"queries"`
}

// facetResponse is one boundary facet: the adjacent pair whose exchange the
// facet realizes, plus the constraint normal (positive side = inside).
type facetResponse struct {
	Upper  itemRef   `json:"upper"`
	Lower  itemRef   `json:"lower"`
	Normal []float64 `json:"normal"`
}

// opResult is one operation's outcome; the fields matching the echoed Op are
// populated, or Error alone when that operation failed.
type opResult struct {
	Op    string `json:"op"`
	Error string `json:"error,omitempty"`

	// verify
	Ranking         []itemRef `json:"ranking,omitempty"`
	Stability       *float64  `json:"stability,omitempty"`
	ConfidenceError *float64  `json:"confidence_error,omitempty"`
	Exact           *bool     `json:"exact,omitempty"`
	SampleCount     int       `json:"sample_count,omitempty"`
	// Adaptive reports that this verify stopped early under the request's
	// adaptive target; sample_count is then the rows actually swept.
	Adaptive bool `json:"adaptive,omitempty"`

	// toph / above / enumerate
	H         int              `json:"h,omitempty"`
	Threshold float64          `json:"threshold,omitempty"`
	Limit     int              `json:"limit,omitempty"`
	Rankings  []stableResponse `json:"rankings,omitempty"`

	// itemrank
	Item           *itemRef       `json:"item,omitempty"`
	Samples        int            `json:"samples,omitempty"`
	Best           int            `json:"best,omitempty"`
	Worst          int            `json:"worst,omitempty"`
	Mode           int            `json:"mode,omitempty"`
	Median         int            `json:"median,omitempty"`
	Counts         map[string]int `json:"counts,omitempty"`
	ProbabilityTop map[string]any `json:"probability_top,omitempty"`

	// boundary
	Facets []facetResponse `json:"facets,omitempty"`
}

type queryResponse struct {
	Dataset string     `json:"dataset"`
	Results []opResult `json:"results"`
}

// queryLimits separates the synchronous caps from the async ones: the jobs
// path exists precisely to run enumerations deeper than a held-open
// connection should serve.
type queryLimits struct {
	// maxDepth caps toph h and enumerate limit.
	maxDepth int
	// openEnumerate allows enumerate without a limit (capped to maxDepth).
	openEnumerate bool
}

func (s *Server) syncLimits() queryLimits {
	return queryLimits{maxDepth: s.cfg.MaxEnumerate}
}

func (s *Server) jobLimits() queryLimits {
	return queryLimits{maxDepth: s.cfg.MaxStreamRows, openEnumerate: true}
}

// compiledQuery is a validated request, ready to execute (possibly later,
// on a job worker). The dataset and item IDs are re-resolved at execution
// time so a dataset replaced in between fails loudly instead of answering
// with stale indices.
type compiledQuery struct {
	dataset  string
	spec     regionSpec
	seed     int64
	samples  int
	adaptive float64
	specs    []querySpec
	limits   queryLimits
	// req is the original request body, retained so persisted jobs can be
	// recompiled after a restart.
	req *queryRequest
}

// readQueryRequest reads and decodes a /v1/query-shaped body with the
// standard size cap and strictness, returning the raw bytes alongside so a
// clustered node can replay the body when forwarding to the key's owner.
func readQueryRequest(w http.ResponseWriter, r *http.Request) ([]byte, *queryRequest, error) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, nil, statusError{code: http.StatusRequestEntityTooLarge, msg: "request body exceeds 1 MiB"}
		}
		return nil, nil, errBadRequest("reading query request: %v", err)
	}
	var req queryRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, errBadRequest("decoding query request: %v", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, nil, errBadRequest("query request has trailing data")
	}
	return raw, &req, nil
}

// decodeQueryRequest is readQueryRequest for callers that never forward
// (jobs are node-local).
func decodeQueryRequest(w http.ResponseWriter, r *http.Request) (*queryRequest, error) {
	_, req, err := readQueryRequest(w, r)
	return req, err
}

// compileQuery validates the request against the current dataset and caps.
// A list longer than MaxBatchOps is answered 413: the request is
// well-formed, just bigger than this server accepts.
func (s *Server) compileQuery(req *queryRequest, limits queryLimits) (*compiledQuery, error) {
	ds, _, _, ok := s.registry.Get(req.Dataset)
	if !ok {
		return nil, errNotFound("unknown dataset %q", req.Dataset)
	}
	spec := regionSpec{weights: req.Weights, theta: req.Theta, cosine: req.Cosine}
	if err := spec.validate(ds.D(), req.Theta != 0, req.Cosine != 0); err != nil {
		return nil, err
	}
	seed := s.cfg.DefaultSeed
	if req.Seed != nil {
		seed = *req.Seed
	}
	samples := s.cfg.DefaultSampleCount
	if req.Samples != nil {
		samples = *req.Samples
	}
	if samples < 1 || samples > s.cfg.MaxSampleCount {
		return nil, errBadRequest("samples %d out of range [1, %d]", samples, s.cfg.MaxSampleCount)
	}
	if req.Adaptive < 0 || req.Adaptive >= 1 {
		return nil, errBadRequest("adaptive %v out of [0, 1)", req.Adaptive)
	}
	if len(req.Queries) == 0 {
		return nil, errBadRequest("query request requires at least one operation")
	}
	if len(req.Queries) > s.cfg.MaxBatchOps {
		return nil, statusError{
			code: http.StatusRequestEntityTooLarge,
			msg:  fmt.Sprintf("query list has %d operations, limit %d", len(req.Queries), s.cfg.MaxBatchOps),
		}
	}
	cq := &compiledQuery{
		dataset:  req.Dataset,
		spec:     spec,
		seed:     seed,
		samples:  samples,
		adaptive: req.Adaptive,
		specs:    req.Queries,
		limits:   limits,
		req:      req,
	}
	// Parse every operation now so a malformed entry rejects the request
	// before any work (the result is rebuilt at execution time).
	if _, err := cq.buildQueries(s, ds); err != nil {
		return nil, err
	}
	return cq, nil
}

// buildQueries translates the operation specs into library queries against
// ds, validating every entry.
func (cq *compiledQuery) buildQueries(s *Server, ds *stablerank.Dataset) ([]stablerank.Query, error) {
	queries := make([]stablerank.Query, len(cq.specs))
	for i, spec := range cq.specs {
		switch spec.Op {
		case "verify", "boundary":
			rk, err := rankingOfSpec(spec, ds)
			if err != nil {
				return nil, errBadRequest("queries[%d]: %v", i, err)
			}
			if spec.Op == "verify" {
				queries[i] = stablerank.VerifyQuery{Ranking: rk}
			} else {
				queries[i] = stablerank.BoundaryQuery{Ranking: rk}
			}
		case "toph":
			if spec.H < 1 || spec.H > cq.limits.maxDepth {
				return nil, errBadRequest("queries[%d]: h must be in [1, %d]", i, cq.limits.maxDepth)
			}
			queries[i] = stablerank.TopHQuery{H: spec.H}
		case "above":
			if !(spec.S > 0 && spec.S <= 1) {
				return nil, errBadRequest("queries[%d]: s must be in (0, 1]", i)
			}
			queries[i] = stablerank.AboveQuery{Threshold: spec.S}
		case "itemrank":
			if spec.Item == "" {
				return nil, errBadRequest("queries[%d]: itemrank requires item (an item id)", i)
			}
			idx, ok := itemIndex(ds, spec.Item)
			if !ok {
				return nil, errBadRequest("queries[%d]: item %q not in dataset %q", i, spec.Item, cq.dataset)
			}
			if spec.N < 0 || spec.N > s.cfg.MaxSampleCount {
				return nil, errBadRequest("queries[%d]: n must be in [0, %d]", i, s.cfg.MaxSampleCount)
			}
			if spec.K < 0 {
				return nil, errBadRequest("queries[%d]: k must be >= 0", i)
			}
			queries[i] = stablerank.ItemRankQuery{Item: idx, Samples: spec.N}
		case "enumerate":
			limit := spec.Limit
			if limit <= 0 {
				if !cq.limits.openEnumerate {
					return nil, errBadRequest("queries[%d]: enumerate limit must be in [1, %d] (use /v1/jobs or /v1/query/stream for open enumeration)", i, cq.limits.maxDepth)
				}
				limit = cq.limits.maxDepth
			}
			if limit > cq.limits.maxDepth {
				return nil, errBadRequest("queries[%d]: enumerate limit must be in [1, %d]", i, cq.limits.maxDepth)
			}
			queries[i] = stablerank.EnumerateQuery{Limit: limit}
		default:
			return nil, errBadRequest("queries[%d]: unknown op %q", i, spec.Op)
		}
	}
	return queries, nil
}

// rankingOfSpec resolves a verify/boundary target: an explicit ranking, or
// the one induced by weights.
func rankingOfSpec(spec querySpec, ds *stablerank.Dataset) (stablerank.Ranking, error) {
	switch {
	case spec.Ranking != "" && len(spec.Weights) > 0:
		return stablerank.Ranking{}, errors.New("use weights or ranking, not both")
	case spec.Ranking != "":
		return parseRanking(spec.Ranking, ds)
	case len(spec.Weights) > 0:
		if len(spec.Weights) != ds.D() {
			return stablerank.Ranking{}, fmt.Errorf("weights have %d components, dataset has %d attributes", len(spec.Weights), ds.D())
		}
		return stablerank.RankingOf(ds, spec.Weights), nil
	default:
		return stablerank.Ranking{}, errors.New("requires weights or ranking")
	}
}

func itemIndex(ds *stablerank.Dataset, id string) (int, bool) {
	for i := 0; i < ds.N(); i++ {
		if ds.Item(i).ID == id {
			return i, true
		}
	}
	return -1, false
}

// execQuery runs a compiled query now, under ctx: it re-resolves the
// dataset, obtains the shared analyzer, answers the whole list with one
// Analyzer.Do call, and renders the response. It is shared by the
// synchronous handler and the job workers.
func (s *Server) execQuery(ctx context.Context, cq *compiledQuery) (*queryResponse, error) {
	ds, gen, ver, ok := s.registry.Get(cq.dataset)
	if !ok {
		return nil, errNotFound("unknown dataset %q", cq.dataset)
	}
	queries, err := cq.buildQueries(s, ds)
	if err != nil {
		return nil, err
	}
	key := analyzerKey{dataset: cq.dataset, gen: gen, ver: ver, region: cq.spec.canonical(), seed: cq.seed, samples: cq.samples, adaptive: cq.adaptive}
	a, err := s.analyzers.get(key, ds, cq.spec)
	if err != nil {
		if _, isStatus := err.(statusError); isStatus {
			return nil, err
		}
		return nil, errBadRequest("building analyzer: %v", err)
	}
	results, err := a.Do(ctx, queries...)
	if err != nil {
		return nil, err
	}
	resp := &queryResponse{Dataset: cq.dataset, Results: make([]opResult, len(results))}
	for i, res := range results {
		resp.Results[i] = s.renderOpResult(ds, cq.specs[i], queries[i], res)
	}
	return resp, nil
}

// renderOpResult maps one library Result onto the wire shape.
func (s *Server) renderOpResult(ds *stablerank.Dataset, spec querySpec, q stablerank.Query, res stablerank.Result) opResult {
	out := opResult{Op: spec.Op}
	if res.Err != nil {
		out.Error = res.Err.Error()
		return out
	}
	switch spec.Op {
	case "verify":
		v := res.Verification
		out.Ranking = s.itemRefs(ds, q.(stablerank.VerifyQuery).Ranking.Order)
		out.Stability = &v.Stability
		out.ConfidenceError = &v.ConfidenceError
		out.Exact = &v.Exact
		out.SampleCount = v.SampleCount
		out.Adaptive = v.Adaptive
	case "toph":
		out.H = spec.H
		out.Rankings = s.stableResponses(ds, res.Stables, 0)
	case "above":
		out.Threshold = spec.S
		out.Rankings = s.stableResponses(ds, res.Stables, 0)
	case "enumerate":
		out.Limit = q.(stablerank.EnumerateQuery).Limit
		out.Rankings = s.stableResponses(ds, res.Stables, 0)
	case "itemrank":
		dist := res.RankDistribution
		idx := q.(stablerank.ItemRankQuery).Item
		counts := make(map[string]int, len(dist.Counts))
		for rnk, c := range dist.Counts { //srlint:ordered map-to-map rekey; json.Marshal renders object keys sorted
			counts[strconv.Itoa(rnk)] = c
		}
		out.Item = &itemRef{Index: idx, ID: spec.Item}
		out.Samples = dist.Samples
		out.Best = dist.Best
		out.Worst = dist.Worst
		out.Mode = dist.Mode()
		out.Median = dist.Quantile(0.5)
		out.Counts = counts
		if spec.K > 0 {
			out.ProbabilityTop = map[string]any{
				"k":           spec.K,
				"probability": dist.ProbabilityTopK(spec.K),
			}
		}
	case "boundary":
		facets := make([]facetResponse, len(res.Facets))
		for i, f := range res.Facets {
			facets[i] = facetResponse{
				Upper:  itemRef{Index: f.Upper, ID: ds.Item(f.Upper).ID},
				Lower:  itemRef{Index: f.Lower, ID: ds.Item(f.Lower).ID},
				Normal: f.Halfspace.Normal,
			}
		}
		out.Facets = facets
	}
	return out
}

// handleQuery is POST /v1/query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	raw, req, err := readQueryRequest(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	// Cluster routing mirrors the GET path: the analyzer key's owner serves
	// the request unless it is this node or unreachable. The key is derived
	// from the raw body without validation — an invalid request fails
	// identically on every replica, so forwarding it first is harmless.
	if s.cluster != nil {
		spec := regionSpec{weights: req.Weights, theta: req.Theta, cosine: req.Cosine}
		seed := s.cfg.DefaultSeed
		if req.Seed != nil {
			seed = *req.Seed
		}
		samples := s.cfg.DefaultSampleCount
		if req.Samples != nil {
			samples = *req.Samples
		}
		if owner, remote := s.cluster.owner(r, routingKey(req.Dataset, spec, seed, samples, req.Adaptive)); remote {
			if s.proxy(w, r, owner, raw) {
				return
			}
		}
	}
	s.markServedLocally(w)
	cq, err := s.compileQuery(req, s.syncLimits())
	if err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.execQuery(r.Context(), cq)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
