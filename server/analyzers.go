package server

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"stablerank"
	"stablerank/internal/cluster"
)

// regionSpec is the canonical form of the region-of-interest query
// parameters. Exactly one of theta/cosine may be set, and both require
// weights; weights alone (or nothing) means the whole function space.
type regionSpec struct {
	weights []float64
	theta   float64 // > 0: hypercone half-angle around weights
	cosine  float64 // > 0: minimum cosine similarity with weights
}

// canonical renders the spec as a stable string usable inside map and cache
// keys: identical queries collapse to identical analyzers and cache slots.
// Without theta/cosine the region is the full function space regardless of
// the weights (they then only pick the ranking being asked about, which is
// keyed per endpoint), so all full-space queries share one analyzer.
func (rs regionSpec) canonical() string {
	if rs.theta <= 0 && rs.cosine <= 0 {
		return "full"
	}
	var b strings.Builder
	if rs.theta > 0 {
		b.WriteString("cone:")
	} else {
		b.WriteString("cosine:")
	}
	for i, w := range rs.weights {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(w, 'g', -1, 64))
	}
	if rs.theta > 0 {
		fmt.Fprintf(&b, ";theta=%s", strconv.FormatFloat(rs.theta, 'g', -1, 64))
	} else {
		fmt.Fprintf(&b, ";cos=%s", strconv.FormatFloat(rs.cosine, 'g', -1, 64))
	}
	return b.String()
}

// validate enforces the semantic region contract shared by the GET query
// parameters and the POST /batch body fields: weights must match the dataset
// dimension, and a present-but-unusable theta/cosine must fail loudly
// (silently falling back to the full function space would answer a very
// different question with a 200). thetaSet/cosineSet distinguish "absent"
// from an explicit zero, which the GET path derives from parameter presence
// and the batch path from a non-zero JSON field.
func (rs regionSpec) validate(d int, thetaSet, cosineSet bool) error {
	if len(rs.weights) > 0 && len(rs.weights) != d {
		return errBadRequest("region weights have %d components, dataset has %d attributes", len(rs.weights), d)
	}
	if thetaSet && !(rs.theta > 0 && rs.theta <= math.Pi) {
		return errBadRequest("theta must be in (0, pi], got %v", rs.theta)
	}
	if cosineSet && !(rs.cosine > 0 && rs.cosine <= 1) {
		return errBadRequest("cosine must be in (0, 1], got %v", rs.cosine)
	}
	return nil
}

// options translates the spec into analyzer options. workers is a pure
// throughput knob (deterministic seeding makes results independent of it),
// which is why it is configured per pool rather than keyed per analyzer;
// adaptive changes reported results, so it IS part of the analyzer key.
func (rs regionSpec) options(seed int64, samples, workers int, adaptive float64) ([]stablerank.Option, error) {
	opts := []stablerank.Option{
		stablerank.WithSeed(seed),
		stablerank.WithSampleCount(samples),
		stablerank.WithWorkers(workers),
	}
	if adaptive > 0 {
		opts = append(opts, stablerank.WithAdaptive(adaptive))
	}
	region, err := stablerank.RegionOption(rs.weights, rs.theta, rs.cosine)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	if region != nil {
		opts = append(opts, region)
	}
	return opts, nil
}

// analyzerKey identifies one shared Analyzer. Two requests with equal keys
// are guaranteed identical results, so they may share an Analyzer — and with
// it the expensive Monte-Carlo sample pool.
type analyzerKey struct {
	dataset string
	gen     int64
	// ver is the dataset's delta version within the generation. A PATCH bumps
	// it, and resident analyzers are migrated to the new key via ApplyDelta
	// (splicing their state) instead of being rebuilt.
	ver     int64
	region  string
	seed    int64
	samples int
	// adaptive is the adaptive-verification target error (0 = exact sweeps).
	// Adaptive and exact requests must not share an analyzer: equal keys
	// promise identical results.
	adaptive float64
}

func (k analyzerKey) String() string {
	s := fmt.Sprintf("%s@%d.%d|%s|seed=%d|n=%d", k.dataset, k.gen, k.ver, k.region, k.seed, k.samples)
	if k.adaptive > 0 {
		s += fmt.Sprintf("|adaptive=%s", strconv.FormatFloat(k.adaptive, 'g', -1, 64))
	}
	return s
}

// analyzerPool deduplicates Analyzer construction per key, singleflight
// style: the first request for a key builds, concurrent requests for the
// same key wait for that build, and later requests get the cached Analyzer.
// Since an Analyzer draws its sample pool once and shares it across calls,
// this collapses N concurrent identical queries into one pool build.
//
// Residency is bounded: the pool holds at most max completed analyzers and
// evicts the least recently used one beyond that, so clients sweeping seeds,
// sample counts, or regions (or datasets being replaced, which bumps the
// generation in the key) cannot pin sample pools in memory without bound.
// Evicted analyzers stay alive for requests already holding them and are
// collected when those finish.
type analyzerPool struct {
	mu      sync.Mutex
	max     int
	workers int            // sample-pool build workers per analyzer (0 = GOMAXPROCS)
	snaps   *snapshotCache // nil = no pool-snapshot persistence
	// coord, when set, assembles sample pools from remote chunk fills
	// instead of drawing them locally (bit-identically either way; see
	// cluster.Coordinator). The snapshot cache still takes precedence.
	coord   *cluster.Coordinator
	order   *list.List                    // guarded by mu; front = most recently used; values *poolItem
	entries map[analyzerKey]*list.Element // guarded by mu

	builds    atomic.Int64 // Analyzer constructions started
	dedupHits atomic.Int64 // requests served by an existing entry
	inflight  atomic.Int64 // builds currently running
	evictions atomic.Int64 // completed analyzers dropped by the LRU bound
}

type poolItem struct {
	key analyzerKey
	e   *analyzerEntry
}

type analyzerEntry struct {
	ready chan struct{} // closed when the build finishes
	a     *stablerank.Analyzer
	err   error
}

// done reports whether the entry's build has finished.
func (e *analyzerEntry) done() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

func newAnalyzerPool(max, workers int) *analyzerPool {
	if max < 1 {
		max = 1
	}
	if workers < 0 {
		workers = 0
	}
	return &analyzerPool{
		max:     max,
		workers: workers,
		order:   list.New(),
		entries: make(map[analyzerKey]*list.Element),
	}
}

// get returns the shared Analyzer for key, building it (at most once per
// key, regardless of concurrency) from ds and spec. A failed build is
// forgotten so the key can be retried — deterministic misconfigurations
// surface the same error again, transient conditions get a fresh chance.
func (p *analyzerPool) get(key analyzerKey, ds *stablerank.Dataset, spec regionSpec) (*stablerank.Analyzer, error) {
	p.mu.Lock()
	if el, ok := p.entries[key]; ok {
		p.order.MoveToFront(el)
		e := el.Value.(*poolItem).e
		p.mu.Unlock()
		p.dedupHits.Add(1)
		<-e.ready
		return e.a, e.err
	}
	e := &analyzerEntry{ready: make(chan struct{})}
	p.entries[key] = p.order.PushFront(&poolItem{key: key, e: e})
	// Evict the least recently used *completed* analyzers beyond the bound;
	// in-flight builds are skipped (their requests still need the entry for
	// deduplication).
	for el := p.order.Back(); p.order.Len() > p.max && el != nil; {
		prev := el.Prev()
		if item := el.Value.(*poolItem); item.e != e && item.e.done() {
			p.order.Remove(el)
			delete(p.entries, item.key)
			p.evictions.Add(1)
		}
		el = prev
	}
	p.mu.Unlock()

	p.builds.Add(1)
	p.inflight.Add(1)
	opts, err := spec.options(key.seed, key.samples, p.workers, key.adaptive)
	if err == nil {
		if p.snaps != nil {
			// The analyzer restores its sample pool from a persisted snapshot
			// instead of redrawing it, and persists the pool it does draw.
			opts = append(opts, stablerank.WithPoolCache(p.snaps.cacheFor(ds, key)))
		}
		if p.coord != nil {
			opts = append(opts, stablerank.WithPoolFiller(poolFillerFor(p.coord, ds, key, spec)))
		}
		e.a, e.err = stablerank.New(ds, opts...)
	} else {
		e.err = err
	}
	p.inflight.Add(-1)
	close(e.ready)

	if e.err != nil {
		p.mu.Lock()
		// Only forget the entry if it is still ours; a concurrent retry may
		// already have replaced it.
		if el, ok := p.entries[key]; ok && el.Value.(*poolItem).e == e {
			p.order.Remove(el)
			delete(p.entries, key)
		}
		p.mu.Unlock()
	}
	return e.a, e.err
}

// applyDeltas migrates resident analyzers of the named dataset from the
// exact pre-PATCH (oldGen, oldVer) key to the new (gen, ver) key by splicing
// the deltas into their derived state — ApplyDelta shares the built
// Monte-Carlo pool, so the migrated analyzers answer queries against the
// mutated dataset without drawing a sample. Every other name-matching entry
// is dropped, not spliced: an analyzer left over from an older generation
// (or inserted by a racing build against a different version) holds state
// derived from different dataset content, and splicing the deltas into it
// would rekey stale results under the current key. In-flight or failed
// builds are likewise dropped (the next request rebuilds under the new key,
// exactly as before deltas existed). Returns how many analyzers were
// migrated and dropped, the total splice/re-sort work, and the drift
// analyzer: the full-space migrated analyzer with a built pool whose key
// sorts first (deterministic regardless of map iteration order), or nil when
// none qualifies — region-restricted analyzers sample a different weight
// space, so pricing drift on one would publish numbers that depend on which
// analyzers happen to be resident.
func (p *analyzerPool) applyDeltas(name string, oldGen, oldVer, gen, ver int64, deltas []stablerank.Delta) (migrated, dropped int, spliced, resorted int64, driftA *stablerank.Analyzer) {
	p.mu.Lock()
	matches := make([]*poolItem, 0, 4)
	for key, el := range p.entries {
		if key.dataset != name {
			continue
		}
		matches = append(matches, el.Value.(*poolItem))
	}
	p.mu.Unlock()
	// Migrate in sorted-key order so splice/resort counters and eviction
	// order don't depend on map iteration order.
	sort.Slice(matches, func(i, j int) bool { return matches[i].key.String() < matches[j].key.String() })

	var driftKey string
	for _, item := range matches {
		var na *stablerank.Analyzer
		if item.key.gen == oldGen && item.key.ver == oldVer &&
			item.e.done() && item.e.err == nil && item.e.a != nil {
			beforeSp, beforeRs := item.e.a.DeltaSplices(), item.e.a.DeltaResorts()
			a, err := item.e.a.ApplyDelta(context.Background(), deltas...) //srlint:ctxflow splice must complete atomically for every resident analyzer, not just the patching request's
			if err == nil {
				na = a
				spliced += na.DeltaSplices() - beforeSp
				resorted += na.DeltaResorts() - beforeRs
			}
		}
		nkey := item.key
		nkey.gen, nkey.ver = gen, ver
		p.mu.Lock()
		if el, ok := p.entries[item.key]; ok && el.Value.(*poolItem) == item {
			p.order.Remove(el)
			delete(p.entries, item.key)
		}
		if na != nil {
			if _, exists := p.entries[nkey]; !exists {
				e := &analyzerEntry{ready: make(chan struct{}), a: na}
				close(e.ready)
				p.entries[nkey] = p.order.PushFront(&poolItem{key: nkey, e: e})
			}
		}
		p.mu.Unlock()
		if na != nil {
			migrated++
			if item.key.region == "full" && na.PoolBuilt() {
				if k := nkey.String(); driftA == nil || k < driftKey {
					driftA, driftKey = na, k
				}
			}
		} else {
			dropped++
		}
	}
	return migrated, dropped, spliced, resorted, driftA
}

// analyzerStat is one resident analyzer's /statsz row. PoolBytes is the full
// retained footprint: the sample matrix plus the interned snapshot key.
type analyzerStat struct {
	Key          string  `json:"key"`
	SampleCount  int     `json:"sample_count"`
	PoolBuilt    bool    `json:"pool_built"`
	PoolBuilds   int64   `json:"pool_builds"`
	PoolRestores int64   `json:"pool_restores"`
	Workers      int     `json:"workers"`
	PoolBuildMS  float64 `json:"pool_build_ms"`
	PoolBytes    int64   `json:"pool_bytes"`
	SnapshotKey  string  `json:"snapshot_key,omitempty"`
	// AdaptiveTarget/AdaptiveStops/AdaptiveRowsSaved report adaptive
	// verification on this analyzer: the configured target error, how many
	// verifies stopped early, and the pool rows those stops skipped.
	AdaptiveTarget    float64 `json:"adaptive_target,omitempty"`
	AdaptiveStops     int64   `json:"adaptive_stops,omitempty"`
	AdaptiveRowsSaved int64   `json:"adaptive_rows_saved,omitempty"`
}

// snapshot reports the resident analyzers and the pool counters.
func (p *analyzerPool) snapshot() (stats []analyzerStat, builds, dedupHits, inflight, evictions int64) {
	p.mu.Lock()
	items := make([]*poolItem, 0, len(p.entries))
	for _, el := range p.entries {
		items = append(items, el.Value.(*poolItem))
	}
	p.mu.Unlock()
	// Sorted keys pin the /statsz resident list: two consecutive renders of
	// an idle server must be byte-identical.
	sort.Slice(items, func(i, j int) bool { return items[i].key.String() < items[j].key.String() })
	stats = make([]analyzerStat, 0, len(items))
	for _, item := range items {
		if !item.e.done() {
			continue // build still in flight; skip rather than block /statsz
		}
		if item.e.err != nil || item.e.a == nil {
			continue
		}
		stats = append(stats, analyzerStat{
			Key:          item.key.String(),
			SampleCount:  item.e.a.SampleCount(),
			PoolBuilt:    item.e.a.PoolBuilt(),
			PoolBuilds:   item.e.a.PoolBuilds(),
			PoolRestores: item.e.a.PoolRestores(),
			Workers:      item.e.a.Workers(),
			PoolBuildMS:  float64(item.e.a.PoolBuildDuration().Microseconds()) / 1000,
			PoolBytes:    item.e.a.PoolMemoryBytes(),
			SnapshotKey:  item.e.a.PoolSnapshotKey(),

			AdaptiveTarget:    item.e.a.AdaptiveTargetError(),
			AdaptiveStops:     item.e.a.AdaptiveStops(),
			AdaptiveRowsSaved: item.e.a.AdaptiveRowsSaved(),
		})
	}
	return stats, p.builds.Load(), p.dedupHits.Load(), p.inflight.Load(), p.evictions.Load()
}
