package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stablerank"
	"stablerank/internal/cluster"
	"stablerank/internal/vecmat"
)

// Cluster glue: how one stablerankd process becomes a replica in a sharded
// cluster.
//
//   - Placement: every node builds the same consistent-hash ring over
//     Config.Peers (cluster.Ring sorts and dedups, so peer-list order never
//     matters) and routes each analyzer key to its owner. Ownership is a
//     LOCALITY hint only — the pool draw is deterministic in (region, seed,
//     n), so any node answers any key bit-identically; an unreachable owner
//     degrades to serving locally, never to an error.
//   - Routing: POST /v1/query and the GET /v1/{dataset}/{op} endpoints are
//     forwarded to the key's owner unless this node IS the owner or the
//     request already carries the forwarded marker (one hop, never loops).
//     Streams and jobs stay node-local by design: they hold per-node state.
//   - Remote fill: with Config.FillWorkers set, analyzers assemble their
//     Monte-Carlo pools through a cluster.Coordinator that farms pool chunks
//     out to the workers and splices the streams back together; every node
//     also mounts the fill-worker endpoints, so peers can serve as each
//     other's fill workers.
//   - Observability: /healthz gains per-peer reachability, /statsz a cluster
//     section with per-peer totals and a cluster-wide aggregate
//     (?scope=local suppresses the fan-out, which is also how the fan-out
//     itself asks, so peers never recurse).

// forwardedHeader marks a request that already crossed one replica hop; the
// receiving node must serve it locally no matter what its ring says.
const forwardedHeader = "X-Stablerank-Forwarded"

// servedByHeader names the node that actually computed a routed response.
const servedByHeader = "X-Stablerank-Served-By"

// peerProbeTimeout bounds one /healthz or /statsz probe of one peer.
const peerProbeTimeout = 2 * time.Second

// clusterState is the routing half of a clustered server (nil when
// Config.Peers is empty).
type clusterState struct {
	self   string
	ring   *cluster.Ring
	client *http.Client

	forwards  atomic.Int64 // requests proxied to their owner
	received  atomic.Int64 // forwarded requests served on this node
	fallbacks atomic.Int64 // owner unreachable, served locally instead
}

// newClusterState validates the peer configuration. SelfURL must appear in
// the peer list — a node that cannot find itself would forward every key and
// count every response as somebody else's.
func newClusterState(peers []string, self string, timeout time.Duration) (*clusterState, error) {
	normalized := make([]string, 0, len(peers))
	for _, p := range peers {
		if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
			normalized = append(normalized, p)
		}
	}
	self = strings.TrimRight(strings.TrimSpace(self), "/")
	if self == "" {
		return nil, fmt.Errorf("server: Peers configured without SelfURL")
	}
	ring := cluster.NewRing(normalized, 0)
	found := false
	for _, n := range ring.Nodes() {
		if n == self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("server: SelfURL %q not in Peers %v", self, ring.Nodes())
	}
	return &clusterState{
		self:   self,
		ring:   ring,
		client: &http.Client{Timeout: timeout},
	}, nil
}

// routingKey is the placement identity of one analyzer: the analyzer key
// minus the dataset generation (generations advance independently per node,
// and a textual difference here only costs locality, never correctness).
func routingKey(name string, spec regionSpec, seed int64, samples int, adaptive float64) string {
	return analyzerKey{dataset: name, region: spec.canonical(), seed: seed, samples: samples, adaptive: adaptive}.String()
}

// owner resolves where a routed request should run: ("", false) means here.
func (cs *clusterState) owner(r *http.Request, key string) (string, bool) {
	if r.Header.Get(forwardedHeader) != "" {
		cs.received.Add(1)
		return "", false
	}
	o := cs.ring.Owner(key)
	if o == "" || o == cs.self {
		return "", false
	}
	return o, true
}

// proxy forwards the request to its owner and relays the response verbatim
// (plus the origin's Served-By header). body replaces the request body when
// non-nil (the POST path has already consumed it). A false return means the
// owner was unreachable and the caller must serve the request locally — the
// determinism contract makes that substitution invisible to the client.
func (s *Server) proxy(w http.ResponseWriter, r *http.Request, owner string, body []byte) bool {
	cs := s.cluster
	target := owner + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target, reader)
	if err != nil {
		cs.fallbacks.Add(1)
		return false
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set(forwardedHeader, cs.self)
	resp, err := cs.client.Do(req)
	if err != nil {
		cs.fallbacks.Add(1)
		s.logf("stablerankd: forwarding %s %s to %s failed, serving locally: %v", r.Method, r.URL.Path, owner, err)
		return false
	}
	defer resp.Body.Close()
	cs.forwards.Add(1)
	if sb := resp.Header.Get(servedByHeader); sb != "" {
		w.Header().Set(servedByHeader, sb)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "" {
		w.Header().Set("X-Cache", xc)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// markServedLocally stamps the Served-By header on clustered nodes so
// clients (and the cluster tests) can see which replica computed a routed
// response.
func (s *Server) markServedLocally(w http.ResponseWriter) {
	if s.cluster != nil {
		w.Header().Set(servedByHeader, s.cluster.self)
	}
}

// ---------------------------------------------------------------------------
// Remote pool fill.

// coordinatorFiller adapts the cluster coordinator to stablerank.PoolFiller
// for one analyzer's (region, seed) identity.
type coordinatorFiller struct {
	coord *cluster.Coordinator
	spec  cluster.RegionSpec
	seed  int64
	hash  string
}

func (f *coordinatorFiller) FillPool(ctx context.Context, total, d int) (vecmat.Matrix, error) {
	return f.coord.FillPool(ctx, f.spec, f.seed, total, f.hash)
}

// poolFillerFor binds the coordinator to one analyzer key. The wire spec
// reconstructs the region exactly as the analyzer options do (same
// constructors, same float64 values), which is what makes remote chunks
// bit-identical to the local draw.
func poolFillerFor(coord *cluster.Coordinator, ds *stablerank.Dataset, key analyzerKey, spec regionSpec) stablerank.PoolFiller {
	return &coordinatorFiller{
		coord: coord,
		spec: cluster.RegionSpec{
			D:       ds.D(),
			Weights: append([]float64(nil), spec.weights...),
			Theta:   spec.theta,
			Cosine:  spec.cosine,
		},
		seed: key.seed,
		hash: fmt.Sprintf("%016x", ds.Hash()),
	}
}

// ---------------------------------------------------------------------------
// Cluster observability.

// peerHealth is one peer's row in /healthz.
type peerHealth struct {
	URL    string `json:"url"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// probePeers checks every peer's /healthz in parallel (self reports "self"
// without a round trip).
func (s *Server) probePeers(ctx context.Context) []peerHealth {
	cs := s.cluster
	nodes := cs.ring.Nodes()
	out := make([]peerHealth, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		out[i] = peerHealth{URL: n, Status: "ok"}
		if n == cs.self {
			out[i].Status = "self"
			continue
		}
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, peerProbeTimeout)
			defer cancel()
			// scope=local keeps the peer from probing its own peers in
			// turn — probes would otherwise bounce between replicas until
			// every hop's deadline expired.
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, n+"/healthz?scope=local", nil)
			if err == nil {
				var resp *http.Response
				if resp, err = cs.client.Do(req); err == nil {
					io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("status %d", resp.StatusCode)
					}
				}
			}
			if err != nil {
				out[i] = peerHealth{URL: n, Status: "unreachable", Error: err.Error()}
			}
		}(i, n)
	}
	wg.Wait()
	return out
}

// peerStatsRow is one peer's contribution to the /statsz cluster section:
// the slice of its local /statsz the aggregate is built from.
type peerStatsRow struct {
	URL              string `json:"url"`
	Reachable        bool   `json:"reachable"`
	Error            string `json:"error,omitempty"`
	Datasets         int    `json:"datasets,omitempty"`
	Analyzers        int    `json:"analyzers,omitempty"`
	PoolBytes        int64  `json:"pool_bytes,omitempty"`
	CacheHits        int64  `json:"cache_hits,omitempty"`
	CacheMisses      int64  `json:"cache_misses,omitempty"`
	StreamedRows     int64  `json:"streamed_rows,omitempty"`
	InflightRequests int64  `json:"inflight_requests,omitempty"`
}

// localStatsSummary is the node-local slice of /statsz the cluster section
// aggregates; identical shape whether read locally or fetched from a peer.
func (s *Server) localStatsSummary() peerStatsRow {
	hits, misses, _ := s.cache.stats()
	analyzers, _, _, _, _ := s.analyzers.snapshot()
	var poolBytes int64
	for _, a := range analyzers {
		poolBytes += a.PoolBytes
	}
	return peerStatsRow{
		Reachable:        true,
		Datasets:         s.registry.Len(),
		Analyzers:        len(analyzers),
		PoolBytes:        poolBytes,
		CacheHits:        hits,
		CacheMisses:      misses,
		StreamedRows:     s.streamedRows.Load(),
		InflightRequests: s.inflightRequests.Load(),
	}
}

// clusterStats builds the /statsz "cluster" section: routing counters,
// per-peer local summaries (fetched in parallel with ?scope=local so peers
// never fan out in turn), and the cluster-wide aggregate.
func (s *Server) clusterStats(ctx context.Context) map[string]any {
	cs := s.cluster
	nodes := cs.ring.Nodes()
	rows := make([]peerStatsRow, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		if n == cs.self {
			rows[i] = s.localStatsSummary()
			rows[i].URL = n
			continue
		}
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			rows[i] = fetchPeerStats(ctx, cs.client, n)
		}(i, n)
	}
	wg.Wait()

	agg := map[string]int64{}
	reachable := 0
	for _, row := range rows {
		if !row.Reachable {
			continue
		}
		reachable++
		agg["datasets"] += int64(row.Datasets)
		agg["analyzers"] += int64(row.Analyzers)
		agg["pool_bytes"] += row.PoolBytes
		agg["cache_hits"] += row.CacheHits
		agg["cache_misses"] += row.CacheMisses
		agg["streamed_rows"] += row.StreamedRows
		agg["inflight_requests"] += row.InflightRequests
	}
	return map[string]any{
		"self":               cs.self,
		"nodes":              len(nodes),
		"reachable":          reachable,
		"forwards":           cs.forwards.Load(),
		"forwarded_received": cs.received.Load(),
		"owner_fallbacks":    cs.fallbacks.Load(),
		"peers":              rows,
		"aggregate":          agg,
	}
}

// fetchPeerStats reads one peer's local stats summary off its /statsz.
func fetchPeerStats(ctx context.Context, client *http.Client, peer string) peerStatsRow {
	row := peerStatsRow{URL: peer}
	pctx, cancel := context.WithTimeout(ctx, peerProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, peer+"/statsz?scope=local", nil)
	if err != nil {
		row.Error = err.Error()
		return row
	}
	resp, err := client.Do(req)
	if err != nil {
		row.Error = err.Error()
		return row
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		row.Error = fmt.Sprintf("status %d", resp.StatusCode)
		return row
	}
	var body struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		Analyzers struct {
			Resident       []json.RawMessage `json:"resident"`
			PoolBytesTotal int64             `json:"pool_bytes_total"`
		} `json:"analyzers"`
		Datasets         []string `json:"datasets"`
		StreamedRows     int64    `json:"streamed_rows"`
		InflightRequests int64    `json:"inflight_requests"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&body); err != nil {
		row.Error = fmt.Sprintf("decoding stats: %v", err)
		return row
	}
	row.Reachable = true
	row.Datasets = len(body.Datasets)
	row.Analyzers = len(body.Analyzers.Resident)
	row.PoolBytes = body.Analyzers.PoolBytesTotal
	row.CacheHits = body.Cache.Hits
	row.CacheMisses = body.Cache.Misses
	row.StreamedRows = body.StreamedRows
	row.InflightRequests = body.InflightRequests
	return row
}
