// Tests for adaptive verification: the statistical acceptance guarantee
// (early-stopped answers disagree with full-pool answers no more often than
// the confidence level allows), determinism in the seed and worker count,
// and race-checked concurrent use with a goroutine-census assertion.
package stablerank_test

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"stablerank"
)

// adaptiveTrialPool is large enough that the first confidence checkpoint
// (4096 rows) is a small prefix, so early stops save well over half the
// sweep.
const adaptiveTrialPool = 50_000

// adaptiveVerify runs one seeded trial: the same verify query against the
// same pool, once adaptively at target and once exactly, returning both.
func adaptiveVerify(t *testing.T, seed int64, target float64, workers int) (adaptive, exact *stablerank.Verification) {
	t.Helper()
	ds := stablerank.Independent(rand.New(rand.NewSource(seed)), 8, 3)
	ranking := stablerank.RankingOf(ds, []float64{1, 1, 1})
	opts := []stablerank.Option{
		stablerank.WithSeed(seed),
		stablerank.WithSampleCount(adaptiveTrialPool),
		stablerank.WithWorkers(workers),
	}
	aa, err := stablerank.New(ds, append(opts, stablerank.WithAdaptive(target))...)
	if err != nil {
		t.Fatal(err)
	}
	ae, err := stablerank.New(ds, opts...)
	if err != nil {
		t.Fatal(err)
	}
	va, err := aa.VerifyStability(ctx, ranking)
	if err != nil {
		t.Fatal(err)
	}
	ve, err := ae.VerifyStability(ctx, ranking)
	if err != nil {
		t.Fatal(err)
	}
	return &va, &ve
}

// TestAdaptiveStatisticalAcceptance is the acceptance pin for adaptive mode:
// over 200 seeded trials, early-stopped estimates disagree with the
// full-pool estimates by more than the two confidence half-widths combined
// no more often than the 95% level allows (each interval misses the true
// stability with probability at most alpha, so the disagreement rate is
// bounded by 2*alpha plus sampling noise). It is deterministic: the trial
// seeds are fixed, and every trial's answer is a pure function of its seed.
func TestAdaptiveStatisticalAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical acceptance lane; run without -short")
	}
	const (
		trials = 200
		target = 0.02
		alpha  = 0.05
	)
	violations, stops, rowsTotal := 0, 0, 0
	for seed := int64(1); seed <= trials; seed++ {
		va, ve := adaptiveVerify(t, seed, target, 0)
		if ve.Adaptive || ve.SampleCount != adaptiveTrialPool {
			t.Fatalf("seed %d: exact analyzer reported adaptive=%v n=%d", seed, ve.Adaptive, ve.SampleCount)
		}
		if va.Adaptive {
			stops++
			if va.ConfidenceError > target {
				t.Fatalf("seed %d: stopped with confidence error %v above target %v", seed, va.ConfidenceError, target)
			}
			if va.SampleCount >= adaptiveTrialPool {
				t.Fatalf("seed %d: adaptive stop consumed the whole pool (n=%d)", seed, va.SampleCount)
			}
		}
		rowsTotal += va.SampleCount
		if math.Abs(va.Stability-ve.Stability) > va.ConfidenceError+ve.ConfidenceError {
			violations++
		}
	}
	// Most trials must actually stop early — a 50k pool at a 0.02 target
	// needs only a few thousand rows — and the average sweep must be less
	// than half the pool (the >= 2x work saving adaptive mode exists for).
	if stops < trials*3/4 {
		t.Errorf("only %d/%d trials stopped early at target %v", stops, trials, target)
	}
	if avg := float64(rowsTotal) / trials; avg > adaptiveTrialPool/2 {
		t.Errorf("average rows swept %v, want < %d (2x saving)", avg, adaptiveTrialPool/2)
	}
	// Disagreement bound: each interval misses truth w.p. <= alpha, so the
	// two-interval disagreement rate is <= 2*alpha; allow 3 sigma of
	// binomial noise on top. (The shared pool prefix correlates the two
	// estimates, making the true rate far lower still.)
	allowed := 2*alpha*trials + 3*math.Sqrt(trials*2*alpha*(1-2*alpha))
	if float64(violations) > allowed {
		t.Errorf("%d/%d adaptive answers disagreed beyond combined confidence widths (allowed %.0f)",
			violations, trials, allowed)
	}
}

// TestAdaptiveDeterministic: an adaptive answer — estimate, stopping point
// and confidence width — is a pure function of the seed, identical across
// fresh analyzers and worker counts.
func TestAdaptiveDeterministic(t *testing.T) {
	base, _ := adaptiveVerify(t, 77, 0.02, 1)
	if !base.Adaptive {
		t.Fatalf("seed 77 did not stop early: %+v", base)
	}
	for _, workers := range []int{1, 2, 8} {
		got, _ := adaptiveVerify(t, 77, 0.02, workers)
		if got.Stability != base.Stability || got.SampleCount != base.SampleCount ||
			got.ConfidenceError != base.ConfidenceError || got.Adaptive != base.Adaptive {
			t.Errorf("workers=%d: adaptive answer diverged (%+v vs %+v)", workers, got, base)
		}
	}
}

// TestAdaptiveObservability: the facade counters expose early stopping —
// AdaptiveStops counts stopped verifies, AdaptiveRowsSaved the skipped rows
// — and a mixed adaptive batch still builds one pool.
func TestAdaptiveObservability(t *testing.T) {
	ds := stablerank.Independent(rand.New(rand.NewSource(31)), 8, 3)
	a, err := stablerank.New(ds,
		stablerank.WithSeed(31),
		stablerank.WithSampleCount(adaptiveTrialPool),
		stablerank.WithAdaptive(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if got := a.AdaptiveTargetError(); got != 0.02 {
		t.Fatalf("AdaptiveTargetError = %v", got)
	}
	r1 := stablerank.RankingOf(ds, []float64{1, 1, 1})
	r2 := stablerank.RankingOf(ds, []float64{3, 1, 1})
	results, err := a.Do(ctx,
		stablerank.VerifyQuery{Ranking: r1},
		stablerank.VerifyQuery{Ranking: r2},
		stablerank.ItemRankQuery{Item: r1.Order[0], Samples: 5000},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
	}
	if a.PoolBuilds() != 1 {
		t.Errorf("adaptive batch built the pool %d times, want 1", a.PoolBuilds())
	}
	stopped := 0
	for _, r := range results[:2] {
		if r.Verification.Adaptive {
			stopped++
		}
	}
	if int64(stopped) != a.AdaptiveStops() {
		t.Errorf("AdaptiveStops = %d, results show %d early stops", a.AdaptiveStops(), stopped)
	}
	if stopped > 0 && a.AdaptiveRowsSaved() <= 0 {
		t.Errorf("AdaptiveRowsSaved = %d with %d stops", a.AdaptiveRowsSaved(), stopped)
	}
	// The item-rank query must still cover its full requested prefix.
	if n := results[2].RankDistribution.Samples; n != 5000 {
		t.Errorf("item-rank swept %d samples under adaptive mode, want 5000", n)
	}
	// WithAdaptive rejects out-of-range targets.
	for _, bad := range []float64{0, -0.1, 1, 2} {
		if _, err := stablerank.New(ds, stablerank.WithAdaptive(bad)); err == nil {
			t.Errorf("WithAdaptive(%v) accepted", bad)
		}
	}
}

// TestAdaptiveConcurrency is the race-checked concurrency pin: one shared
// adaptive analyzer serving Do and Stream from many goroutines must return
// identical results everywhere, leak no goroutines (census assertion like
// TestStreamCancellation), and keep its counters consistent.
func TestAdaptiveConcurrency(t *testing.T) {
	ds := stablerank.Independent(rand.New(rand.NewSource(41)), 8, 3)
	a, err := stablerank.New(ds,
		stablerank.WithSeed(41),
		stablerank.WithSampleCount(adaptiveTrialPool),
		stablerank.WithAdaptive(0.02))
	if err != nil {
		t.Fatal(err)
	}
	ranking := stablerank.RankingOf(ds, []float64{1, 1, 1})
	before := runtime.NumGoroutine()

	const goroutines = 8
	verifications := make([]*stablerank.Verification, goroutines)
	streamed := make([]*stablerank.Verification, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results, err := a.Do(context.Background(),
				stablerank.VerifyQuery{Ranking: ranking},
				stablerank.TopHQuery{H: 2})
			if err != nil || results[0].Err != nil {
				t.Errorf("goroutine %d: Do failed: %v / %v", g, err, results[0].Err)
				return
			}
			verifications[g] = results[0].Verification
			// Stream of a verify query yields its single batch result.
			for res, err := range a.Stream(context.Background(), stablerank.VerifyQuery{Ranking: ranking}) {
				if err != nil {
					t.Errorf("goroutine %d: Stream failed: %v", g, err)
					return
				}
				streamed[g] = res.Verification
			}
		}(g)
	}
	wg.Wait()

	base := verifications[0]
	if base == nil || !base.Adaptive {
		t.Fatalf("shared adaptive analyzer did not stop early: %+v", base)
	}
	for g := 1; g < goroutines; g++ {
		v := verifications[g]
		if v == nil || v.Stability != base.Stability || v.SampleCount != base.SampleCount || v.Adaptive != base.Adaptive {
			t.Errorf("goroutine %d: Do verification diverged (%+v vs %+v)", g, v, base)
		}
	}
	for g := 0; g < goroutines; g++ {
		v := streamed[g]
		if v == nil || v.Stability != base.Stability || v.SampleCount != base.SampleCount {
			t.Errorf("goroutine %d: Stream verification diverged (%+v vs %+v)", g, v, base)
		}
	}
	if a.PoolBuilds() != 1 {
		t.Errorf("concurrent adaptive use built the pool %d times, want 1", a.PoolBuilds())
	}
	// 2 early-stopping verifies per goroutine (one Do, one Stream).
	if got, want := a.AdaptiveStops(), int64(2*goroutines); got != want {
		t.Errorf("AdaptiveStops = %d, want %d", got, want)
	}
	if saved := a.AdaptiveRowsSaved(); saved != int64(2*goroutines)*int64(adaptiveTrialPool-base.SampleCount) {
		t.Errorf("AdaptiveRowsSaved = %d, inconsistent with %d stops at n=%d",
			saved, 2*goroutines, base.SampleCount)
	}

	// Goroutine census: every sweep worker must have exited.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across concurrent adaptive queries: %d -> %d", before, after)
	}
}

// TestAdaptiveCancellation: cancelling mid-adaptive-sweep returns the
// context error, leaves no partial verification behind, and the next call on
// the same analyzer succeeds.
func TestAdaptiveCancellation(t *testing.T) {
	ds := stablerank.Independent(rand.New(rand.NewSource(43)), 8, 3)
	a, err := stablerank.New(ds,
		stablerank.WithSeed(43),
		stablerank.WithSampleCount(adaptiveTrialPool),
		stablerank.WithAdaptive(0.02))
	if err != nil {
		t.Fatal(err)
	}
	ranking := stablerank.RankingOf(ds, []float64{1, 1, 1})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.VerifyStability(cancelled, ranking); err == nil {
		t.Fatal("cancelled adaptive verify succeeded")
	}
	v, err := a.VerifyStability(ctx, ranking)
	if err != nil {
		t.Fatalf("adaptive verify after cancellation: %v", err)
	}
	if v.Stability <= 0 || v.Stability >= 1 {
		t.Errorf("implausible stability %v", v.Stability)
	}
}
