module stablerank

go 1.24
