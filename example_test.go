package stablerank_test

import (
	"context"
	"fmt"
	"log"

	"stablerank"
)

// ExampleAnalyzer_Do answers a heterogeneous batch — a consumer's stability
// question and a producer's top-3 enumeration — with one call sharing one
// plan. In 2D both answers are exact, so the output is deterministic.
func ExampleAnalyzer_Do() {
	ds := stablerank.Figure1()
	a, err := stablerank.New(ds)
	if err != nil {
		log.Fatal(err)
	}
	published := stablerank.RankingOf(ds, []float64{1, 1})
	results, err := a.Do(context.Background(),
		stablerank.VerifyQuery{Ranking: published},
		stablerank.TopHQuery{H: 3},
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
	}
	fmt.Printf("published stability: %.4f\n", results[0].Verification.Stability)
	for i, s := range results[1].Stables {
		fmt.Printf("top %d: stability %.4f\n", i+1, s.Stability)
	}
	// Output:
	// published stability: 0.0880
	// top 1: stability 0.3949
	// top 2: stability 0.1444
	// top 3: stability 0.1013
}

// ExampleAnalyzer_Stream consumes an enumeration incrementally: one result
// per ranking in decreasing stability, without materializing the full
// answer. Breaking out of the loop stops the enumeration.
func ExampleAnalyzer_Stream() {
	a, err := stablerank.New(stablerank.Figure1())
	if err != nil {
		log.Fatal(err)
	}
	mass := 0.0
	count := 0
	for res, err := range a.Stream(context.Background(), stablerank.EnumerateQuery{}) {
		if err != nil {
			log.Fatal(err)
		}
		mass += res.Stable.Stability
		count++
		if mass > 0.75 {
			break // enough of the distribution; stop enumerating
		}
	}
	fmt.Printf("%d rankings cover %.0f%% of the stability mass\n", count, 100*mass)
	// Output:
	// 5 rankings cover 80% of the stability mass
}
