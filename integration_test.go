// Integration tests spanning the whole stack: the exact 2D algorithms, the
// exact 3D Girard oracle, the multi-dimensional engine, the randomized
// operators, the LP substrate and the core facade are cross-validated
// against each other on shared inputs.
package stablerank_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"stablerank"

	"stablerank/internal/datagen"
	"stablerank/internal/dataset"
	"stablerank/internal/geom"
	"stablerank/internal/lp"
	"stablerank/internal/mc"
	"stablerank/internal/md"
	"stablerank/internal/rank"
	"stablerank/internal/sampling"
	"stablerank/internal/twod"
)

// ctx is the default context threaded through the cancellable public API.
var ctx = context.Background()

// TestAllPathsAgreeIn2D checks that every implementation strategy reports
// the same most-stable ranking with consistent stability on the same 2D
// input: exact ray sweep, MD engine over samples, randomized operator, and
// the core facade.
func TestAllPathsAgreeIn2D(t *testing.T) {
	rr := rand.New(rand.NewSource(171))
	ds := dataset.MustNew(2)
	for i := 0; i < 15; i++ {
		ds.MustAdd("", rr.Float64(), rr.Float64())
	}
	full2 := geom.Interval2D{Lo: 0, Hi: math.Pi / 2}

	exact, err := twod.EnumerateAll(ds, full2)
	if err != nil {
		t.Fatal(err)
	}
	topKey := exact[0].Ranking.Key()
	topStab := exact[0].Stability

	// MD engine path.
	pool := benchPool(geom.FullSpace{D: 2}, 40000, 172)
	engine, err := md.NewEngine(ds, geom.FullSpace{D: 2}, pool, md.SamplePartition)
	if err != nil {
		t.Fatal(err)
	}
	mdFirst, err := engine.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if mdFirst.Ranking.Key() != topKey {
		t.Errorf("engine top %s != exact top %s", mdFirst.Ranking.Key(), topKey)
	}
	if math.Abs(mdFirst.Stability-topStab) > 0.02 {
		t.Errorf("engine stability %v vs exact %v", mdFirst.Stability, topStab)
	}

	// Randomized path.
	s, err := sampling.NewUniform(2, rand.New(rand.NewSource(173)))
	if err != nil {
		t.Fatal(err)
	}
	op, err := mc.NewOperator(ds, s)
	if err != nil {
		t.Fatal(err)
	}
	mcFirst, err := op.NextFixedBudget(ctx, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if mcFirst.Key != topKey {
		t.Errorf("randomized top %s != exact top %s", mcFirst.Key, topKey)
	}
	if math.Abs(mcFirst.Stability-topStab) > 0.02 {
		t.Errorf("randomized stability %v vs exact %v", mcFirst.Stability, topStab)
	}

	// Facade path.
	a, err := stablerank.New(ds)
	if err != nil {
		t.Fatal(err)
	}
	top, err := a.TopH(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].Ranking.Key() != topKey || math.Abs(top[0].Stability-topStab) > 1e-12 {
		t.Errorf("facade top (%s, %v) != exact (%s, %v)",
			top[0].Ranking.Key(), top[0].Stability, topKey, topStab)
	}
}

// TestEngineStabilitiesMatchGirardIn3D enumerates the full arrangement of a
// 3D dataset and validates every Monte-Carlo stability against the exact
// spherical-polygon area, and the total against 1.
func TestEngineStabilitiesMatchGirardIn3D(t *testing.T) {
	rr := rand.New(rand.NewSource(174))
	ds := dataset.MustNew(3)
	for i := 0; i < 7; i++ {
		ds.MustAdd("", rr.Float64(), rr.Float64(), rr.Float64())
	}
	pool := benchPool(geom.FullSpace{D: 3}, 60000, 175)
	all, err := md.FullArrangement(ctx, ds, geom.FullSpace{D: 3}, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mcSum, exactSum float64
	for _, r := range all {
		exact, err := md.VerifyExact3D(ds, r.Ranking)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Stability-exact) > 0.02 {
			t.Errorf("ranking %s: MC %v vs Girard %v", r.Ranking.Key(), r.Stability, exact)
		}
		mcSum += r.Stability
		exactSum += exact
	}
	if math.Abs(mcSum-1) > 1e-9 {
		t.Errorf("MC stabilities sum to %v", mcSum)
	}
	// Exact areas of the discovered regions should cover nearly everything
	// (slivers without samples may be missing).
	if exactSum < 0.97 || exactSum > 1+1e-9 {
		t.Errorf("exact stabilities sum to %v", exactSum)
	}
}

// TestConstraintRegionPipeline exercises the full constraint-region path:
// central ray and bounding cone via LP, rejection sampling, engine
// enumeration, and representative membership.
func TestConstraintRegionPipeline(t *testing.T) {
	rr := rand.New(rand.NewSource(176))
	ds := dataset.MustNew(3)
	for i := 0; i < 10; i++ {
		ds.MustAdd("", rr.Float64(), rr.Float64(), rr.Float64())
	}
	region, err := geom.NewConstraintRegion(3,
		geom.Halfspace{Normal: geom.Vector{1, -1, 0}, Positive: true}, // w1 >= w2
		geom.Halfspace{Normal: geom.Vector{0, 1, -1}, Positive: true}, // w2 >= w3
	)
	if err != nil {
		t.Fatal(err)
	}
	axis, theta, err := lp.CentralRay(region)
	if err != nil {
		t.Fatal(err)
	}
	if !region.Contains(axis) {
		t.Fatal("central ray outside region")
	}
	// Every region sample is inside the bounding cone.
	samp, err := sampling.ForRegion(region, rand.New(rand.NewSource(177)))
	if err != nil {
		t.Fatal(err)
	}
	pool := make([]geom.Vector, 20000)
	for i := range pool {
		w, err := samp.Sample()
		if err != nil {
			t.Fatal(err)
		}
		a, err := geom.Angle(w, axis)
		if err != nil {
			t.Fatal(err)
		}
		if a > theta+1e-9 {
			t.Fatalf("region sample at angle %v outside bounding cone %v", a, theta)
		}
		pool[i] = w
	}
	engine, err := md.NewEngine(ds, region, pool, md.SamplePartition)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for {
		r, err := engine.Next(ctx)
		if errors.Is(err, md.ErrExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !region.Contains(r.Weights) {
			t.Errorf("representative %v outside the constraint region", r.Weights)
		}
		sum += r.Stability
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("constraint-region stabilities sum to %v", sum)
	}
}

// TestCSVThroughFullPipeline round-trips a generated catalog through CSV and
// verifies analysis results survive the encoding.
func TestCSVThroughFullPipeline(t *testing.T) {
	ds := datagen.Diamonds(rand.New(rand.NewSource(178)), 300)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{1, 1, 1, 1, 1}
	r1 := stablerank.RankingOf(ds, w)
	r2 := stablerank.RankingOf(back, w)
	if !r1.Equal(r2) {
		t.Fatal("ranking changed across CSV round trip")
	}
	a1, err := stablerank.New(ds, stablerank.WithSampleCount(20000), stablerank.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := stablerank.New(back, stablerank.WithSampleCount(20000), stablerank.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := a1.VerifyStability(ctx, r1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := a2.VerifyStability(ctx, r2)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Stability != v2.Stability {
		t.Errorf("stability changed across CSV round trip: %v vs %v", v1.Stability, v2.Stability)
	}
}

// TestTopKSelectionInsideOperators confirms that the top-k fast path and the
// full-sort path count identical keys, end to end through the operator.
func TestTopKSelectionInsideOperators(t *testing.T) {
	rr := rand.New(rand.NewSource(179))
	ds := dataset.MustNew(3)
	for i := 0; i < 200; i++ {
		ds.MustAdd("", rr.Float64(), rr.Float64(), rr.Float64())
	}
	k := 7
	// Fast path (operator internally uses TopKSelect).
	sFast, _ := sampling.NewUniform(3, rand.New(rand.NewSource(180)))
	fast, err := mc.NewOperator(ds, sFast, mc.WithMode(mc.TopKRanked, k))
	if err != nil {
		t.Fatal(err)
	}
	resFast, err := fast.NextFixedBudget(ctx, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: count full-sort prefixes with the identical sample stream.
	sRef, _ := sampling.NewUniform(3, rand.New(rand.NewSource(180)))
	counts := map[string]int{}
	comp := rank.NewComputer(ds)
	for i := 0; i < 4000; i++ {
		w, err := sRef.Sample()
		if err != nil {
			t.Fatal(err)
		}
		counts[comp.Compute(w).Clone().TopKRankedKey(k)]++
	}
	bestKey, bestCount := "", -1
	for key, c := range counts {
		if c > bestCount || (c == bestCount && key < bestKey) {
			bestKey, bestCount = key, c
		}
	}
	if resFast.Key != bestKey {
		t.Errorf("operator key %s != reference key %s", resFast.Key, bestKey)
	}
	if math.Abs(resFast.Stability-float64(bestCount)/4000) > 1e-12 {
		t.Errorf("operator stability %v != reference %v", resFast.Stability, float64(bestCount)/4000)
	}
}
