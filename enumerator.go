package stablerank

import (
	"context"
	"errors"
	"iter"

	"stablerank/internal/core"
)

// Enumerator yields rankings in decreasing stability (the GET-NEXT operator
// of Problem 3). In two dimensions it is exact; otherwise it runs the
// delayed arrangement construction over the analyzer's Monte-Carlo sample
// pool.
//
// An Enumerator is a single iteration cursor and is not safe for concurrent
// use. Cancelling the context passed to Next (or driving Rankings) stops the
// current refinement promptly and leaves the cursor consistent, so a later
// call with a live context resumes the enumeration.
type Enumerator struct {
	core *core.Enumerator
}

// Next returns the next most stable ranking, or ErrExhausted.
func (e *Enumerator) Next(ctx context.Context) (Stable, error) {
	return e.core.Next(orBackground(ctx))
}

// Rankings returns a Go 1.23 range-over-func iterator over the remaining
// rankings in decreasing stability:
//
//	for s, err := range e.Rankings(ctx) {
//		if err != nil {
//			return err // cancellation or an internal failure
//		}
//		use(s)
//	}
//
// The sequence ends cleanly at exhaustion (ErrExhausted is consumed, not
// yielded). Any other error — including ctx's error after cancellation — is
// yielded once with a zero Stable, and the sequence stops. The iterator is
// single-use in the sense that it advances the Enumerator it was created
// from; breaking out of the loop and ranging again continues from where the
// first loop stopped.
func (e *Enumerator) Rankings(ctx context.Context) iter.Seq2[Stable, error] {
	return func(yield func(Stable, error) bool) {
		for {
			s, err := e.Next(ctx)
			if errors.Is(err, ErrExhausted) {
				return
			}
			if !yield(s, err) || err != nil {
				return
			}
		}
	}
}
