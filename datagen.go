package stablerank

import (
	"math/rand"

	"stablerank/internal/datagen"
)

// Simulated datasets mirroring the paper's evaluation workloads
// (Section 6), re-exported so examples, tools and tests can build realistic
// catalogs through the public API alone. All generators are deterministic
// for a fixed *rand.Rand state.

// CorrelationKind selects the attribute correlation of Synthetic data.
type CorrelationKind = datagen.CorrelationKind

const (
	// KindIndependent draws attributes independently.
	KindIndependent CorrelationKind = datagen.KindIndependent
	// KindCorrelated draws positively correlated attributes.
	KindCorrelated CorrelationKind = datagen.KindCorrelated
	// KindAntiCorrelated draws anti-correlated attributes.
	KindAntiCorrelated CorrelationKind = datagen.KindAntiCorrelated
)

// Independent generates n items with d independent uniform attributes.
func Independent(rng *rand.Rand, n, d int) *Dataset { return datagen.Independent(rng, n, d) }

// Correlated generates n items with d positively correlated attributes.
func Correlated(rng *rand.Rand, n, d int) *Dataset { return datagen.Correlated(rng, n, d) }

// AntiCorrelated generates n items with d anti-correlated attributes.
func AntiCorrelated(rng *rand.Rand, n, d int) *Dataset { return datagen.AntiCorrelated(rng, n, d) }

// Synthetic generates n items with d attributes of the given correlation.
func Synthetic(rng *rand.Rand, kind CorrelationKind, n, d int) *Dataset {
	return datagen.Synthetic(rng, kind, n, d)
}

// CSMetrics simulates the CSMetrics institution crawl of Section 6.2
// (d = 2: measured and predicted citations, log-linearized).
func CSMetrics(rng *rand.Rand, n int) *Dataset { return datagen.CSMetrics(rng, n) }

// CSMetricsReferenceWeights returns the site-default scoring weights
// (alpha = 0.3).
func CSMetricsReferenceWeights() []float64 { return datagen.CSMetricsReferenceWeights() }

// FIFA simulates the FIFA men's ranking table of Section 6.2 (d = 4: four
// years of performance).
func FIFA(rng *rand.Rand, n int) *Dataset { return datagen.FIFA(rng, n) }

// FIFAReferenceWeights returns FIFA's published scoring weights
// (1, 0.5, 0.3, 0.2).
func FIFAReferenceWeights() []float64 { return datagen.FIFAReferenceWeights() }

// Diamonds simulates a Blue Nile-style diamond catalog (d = 5: cheapness,
// carat, depth, length/width ratio, table), the Section 6.3 workhorse.
func Diamonds(rng *rand.Rand, n int) *Dataset { return datagen.Diamonds(rng, n) }

// Flights simulates Department of Transportation on-time records (d = 3:
// air time, taxi-in, taxi-out), the Figure 18 scalability workload.
func Flights(rng *rand.Rand, n int) *Dataset { return datagen.Flights(rng, n) }
