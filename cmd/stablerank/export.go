package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"stablerank"
)

// The export subcommand emits the stability decomposition of a dataset as
// JSON, the machine-readable form of the Figure 7-9 distributions: one
// record per ranking region with its stability, representative weights, and
// (optionally truncated) ranking, ready for external plotting.

// exportRecord is one ranking region in the JSON output.
type exportRecord struct {
	Rank      int       `json:"rank"`
	Stability float64   `json:"stability"`
	Exact     bool      `json:"exact"`
	Weights   []float64 `json:"weights"`
	ItemIDs   []string  `json:"items"`
}

// exportDoc is the top-level JSON document.
type exportDoc struct {
	N        int            `json:"n"`
	D        int            `json:"d"`
	Region   string         `json:"region"`
	Rankings []exportRecord `json:"rankings"`
}

// regionName labels the region of interest without leaking internal type
// paths into the JSON output.
func regionName(r stablerank.Region) string {
	name := fmt.Sprintf("%T", r)
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	return strings.ToLower(name)
}

func cmdExport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	c := addCommon(fs)
	h := fs.Int("h", 100, "maximum rankings to export")
	show := fs.Int("show", 10, "ranked items to include per record (0 = all)")
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	ds, err := c.load()
	if err != nil {
		return err
	}
	w, err := c.parseWeights(ds.D())
	if err != nil {
		return err
	}
	opts, err := c.analyzerOptions(w)
	if err != nil {
		return err
	}
	a, err := stablerank.New(ds, opts...)
	if err != nil {
		return err
	}
	res, err := a.Do(ctx, stablerank.TopHQuery{H: *h})
	if err != nil {
		return err
	}
	results := res[0].Stables
	doc := exportDoc{
		N:      ds.N(),
		D:      ds.D(),
		Region: regionName(a.Region()),
	}
	for i, s := range results {
		limit := len(s.Ranking.Order)
		if *show > 0 && *show < limit {
			limit = *show
		}
		ids := make([]string, limit)
		for j := 0; j < limit; j++ {
			ids[j] = ds.Item(s.Ranking.Order[j]).ID
		}
		doc.Rankings = append(doc.Rankings, exportRecord{
			Rank:      i + 1,
			Stability: s.Stability,
			Exact:     s.Exact,
			Weights:   s.Weights,
			ItemIDs:   ids,
		})
	}
	if len(doc.Rankings) == 0 {
		return errors.New("no rankings found in the region of interest")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
